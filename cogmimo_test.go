package cogmimo

import (
	"math"
	"strings"
	"testing"
)

func newSys(t *testing.T) *System {
	t.Helper()
	s, err := NewSystem(SystemConfig{BandwidthHz: 40e3})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSystemValidation(t *testing.T) {
	if _, err := NewSystem(SystemConfig{}); err == nil {
		t.Error("zero bandwidth should fail")
	}
	if _, err := NewSystem(SystemConfig{BandwidthHz: 40e3, EbSolver: 99}); err == nil {
		t.Error("unknown solver should fail")
	}
	if _, err := NewSystem(SystemConfig{BandwidthHz: 40e3, EbSolver: EbMonteCarlo, MonteCarloSamples: 2000}); err != nil {
		t.Errorf("Monte-Carlo system: %v", err)
	}
	if _, err := NewSystem(SystemConfig{BandwidthHz: 40e3, ArrayConvention: true}); err != nil {
		t.Errorf("array-convention system: %v", err)
	}
}

func TestAnalyzeOverlayFacade(t *testing.T) {
	s := newSys(t)
	r, err := s.AnalyzeOverlay(OverlayScenario{
		PrimarySeparationM: 250, Relays: 3,
		DirectBER: 0.005, RelayBER: 0.0005,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.DirectEnergyJPerBit <= 0 || r.MaxDistToTxM <= 0 || r.MaxDistToRxM <= 0 {
		t.Fatalf("incomplete result %+v", r)
	}
	if r.DirectB < 1 || r.SIMOB < 1 || r.MISOB < 1 {
		t.Errorf("constellations missing: %+v", r)
	}
	// Errors propagate.
	if _, err := s.AnalyzeOverlay(OverlayScenario{PrimarySeparationM: 250}); err == nil {
		t.Error("zero relays should fail")
	}
}

func TestAnalyzeUnderlayFacade(t *testing.T) {
	s := newSys(t)
	r, err := s.AnalyzeUnderlay(UnderlayScenario{
		TxNodes: 2, RxNodes: 3, ClusterSpanM: 1,
		HopDistanceM: 200, TargetBER: 0.001,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.TotalPAJPerBit <= 0 || r.PeakPAJPerBit <= 0 {
		t.Fatalf("incomplete result %+v", r)
	}
	if r.NoiseFloorMargin <= 0 || r.NoiseFloorMargin >= 0.12 {
		t.Errorf("margin = %v, expect well under 1", r.NoiseFloorMargin)
	}
	// SISO is its own reference.
	siso, err := s.AnalyzeUnderlay(UnderlayScenario{
		TxNodes: 1, RxNodes: 1, HopDistanceM: 200, TargetBER: 0.001,
	})
	if err != nil {
		t.Fatal(err)
	}
	if siso.NoiseFloorMargin != 1 {
		t.Errorf("SISO margin = %v, want 1", siso.NoiseFloorMargin)
	}
	if _, err := s.AnalyzeUnderlay(UnderlayScenario{}); err == nil {
		t.Error("empty scenario should fail")
	}
}

func TestAnalyzeInterweaveFacade(t *testing.T) {
	s := newSys(t)
	r, err := s.AnalyzeInterweave(InterweaveScenario{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if r.MeanAmplitudeAtSr < 1.5 || r.MeanAmplitudeAtSr > 2.0 {
		t.Errorf("amplitude = %v, paper reports 1.87", r.MeanAmplitudeAtSr)
	}
	if r.WorstResidualAtPr > 0.2 {
		t.Errorf("residual at Pr = %v, want near zero", r.WorstResidualAtPr)
	}
	// Custom geometry flows through.
	r2, err := s.AnalyzeInterweave(InterweaveScenario{
		Seed: 5, PairSpacingM: 15, WavelengthM: 30,
		ReceiverDistM: 120, CandidatePUs: 20, PUDiscRadiusM: 150, Trials: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r2.MeanAmplitudeAtSr <= 1 {
		t.Errorf("custom scenario amplitude = %v", r2.MeanAmplitudeAtSr)
	}
}

func TestEbBarFacade(t *testing.T) {
	s := newSys(t)
	siso, err := s.EbBar(0.001, 2, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	mimo, err := s.EbBar(0.001, 2, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if siso/mimo < 30 {
		t.Errorf("SISO/MIMO ēb ratio %v, want orders of magnitude", siso/mimo)
	}
	if math.Abs(siso/1.9e-18-1) > 0.15 {
		t.Errorf("ēb SISO = %v, paper anchor 1.9e-18", siso)
	}
	if _, err := s.EbBar(0, 2, 1, 1); err == nil {
		t.Error("p=0 should fail")
	}
}

func TestLongHaulTxEnergy(t *testing.T) {
	s := newSys(t)
	near, err := s.LongHaulTxEnergy(0.001, 2, 2, 2, 100)
	if err != nil {
		t.Fatal(err)
	}
	far, err := s.LongHaulTxEnergy(0.001, 2, 2, 2, 300)
	if err != nil {
		t.Fatal(err)
	}
	if far <= near {
		t.Errorf("energy should grow with distance: %v vs %v", near, far)
	}
}

func TestExperimentFacade(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) != 17 { // 8 paper artifacts + 9 ext- studies
		t.Fatalf("IDs = %v", ids)
	}
	out, err := RunExperiment("table1", 3, true)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "table1") || !strings.Contains(out, "Amplitude") {
		t.Errorf("report missing content:\n%s", out)
	}
	if _, err := RunExperiment("nope", 1, true); err == nil {
		t.Error("unknown experiment should fail")
	}
}

func TestBuildNetworkFacade(t *testing.T) {
	s := newSys(t)
	n, err := s.BuildNetwork(NetworkConfig{
		Nodes: 60, FieldWM: 300, FieldHM: 300,
		CommRangeM: 60, ClusterDiamM: 25, MaxLinkM: 220, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	cls := n.Clusters()
	if len(cls) == 0 {
		t.Fatal("no clusters")
	}
	total := 0
	for _, c := range cls {
		total += c.Members
		if c.DiameterM > 25+1e-9 {
			t.Errorf("cluster %d diameter %v exceeds bound", c.ID, c.DiameterM)
		}
	}
	if total != 60 {
		t.Errorf("clusters cover %d of 60 nodes", total)
	}
	if n.Links() == 0 {
		t.Error("no cooperative links at 220 m on a 300 m field")
	}
	// A route between the first and last cluster, if connected, costs
	// positive energy.
	route := n.Route(cls[0].ID, cls[len(cls)-1].ID)
	if route != nil {
		e, err := n.RouteEnergy(route, 0.001)
		if err != nil {
			t.Fatal(err)
		}
		if e <= 0 {
			t.Errorf("route energy = %v", e)
		}
	}
	if _, err := n.RouteEnergy([]int{0}, 0.001); err == nil {
		t.Error("single-cluster route should fail")
	}
	if _, err := s.BuildNetwork(NetworkConfig{}); err == nil {
		t.Error("empty config should fail")
	}
}

func TestRouteTransport(t *testing.T) {
	s := newSys(t)
	n, err := s.BuildNetwork(NetworkConfig{
		Nodes: 60, FieldWM: 300, FieldHM: 300,
		CommRangeM: 60, ClusterDiamM: 25, MaxLinkM: 220, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	cls := n.Clusters()
	route := n.Route(cls[0].ID, cls[len(cls)-1].ID)
	if route == nil {
		t.Skip("seed produced a disconnected backbone")
	}
	// A PA budget sized from the energy model itself: what a 2x2 hop at
	// 200 m needs for BER 1e-3.
	ref, err := s.AnalyzeUnderlay(UnderlayScenario{
		TxNodes: 2, RxNodes: 2, ClusterSpanM: 1,
		HopDistanceM: 200, TargetBER: 0.001,
	})
	if err != nil {
		t.Fatal(err)
	}
	perNodePA := ref.TotalPAJPerBit / 2
	r, err := n.RouteTransport(route, perNodePA, 1, 60000, 9)
	if err != nil {
		t.Fatal(err)
	}
	if r.Bits < 60000 {
		t.Errorf("transported only %d bits", r.Bits)
	}
	if len(r.PerHopBER) != len(route)-1 {
		t.Errorf("%d hop BERs for %d hops", len(r.PerHopBER), len(route)-1)
	}
	// The budget was sized for ~1e-3 at 200 m; shorter hops do better,
	// so the end-to-end BER should be small but is allowed to wander
	// with hop lengths.
	if r.EndToEndBER > 0.2 {
		t.Errorf("end-to-end BER %v unreasonably high", r.EndToEndBER)
	}
	// Doubling the PA budget must not hurt.
	r2, err := n.RouteTransport(route, perNodePA*4, 1, 60000, 9)
	if err != nil {
		t.Fatal(err)
	}
	if r2.EndToEndBER > r.EndToEndBER+1e-3 {
		t.Errorf("more PA energy should not hurt: %v vs %v", r2.EndToEndBER, r.EndToEndBER)
	}
	// Validation.
	if _, err := n.RouteTransport(route, 0, 1, 1000, 1); err == nil {
		t.Error("zero budget should fail")
	}
	if _, err := n.RouteTransport([]int{0}, 1e-9, 1, 1000, 1); err == nil {
		t.Error("short route should fail")
	}
}

func TestOptimizeRoute(t *testing.T) {
	s := newSys(t)
	n, err := s.BuildNetwork(NetworkConfig{
		Nodes: 60, FieldWM: 300, FieldHM: 300,
		CommRangeM: 60, ClusterDiamM: 25, MaxLinkM: 220, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	cls := n.Clusters()
	route := n.Route(cls[0].ID, cls[len(cls)-1].ID)
	if route == nil {
		t.Skip("disconnected backbone at this seed")
	}
	loose, err := n.OptimizeRoute(route, 0.001, 12000, 40e3, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	if len(loose.PerHopB) != len(route)-1 {
		t.Fatalf("%d choices for %d hops", len(loose.PerHopB), len(route)-1)
	}
	if loose.TotalEnergyJ <= 0 || loose.TotalTimeS <= 0 {
		t.Fatalf("empty plan %+v", loose)
	}
	// A tighter deadline costs energy, never saves it.
	tight, err := n.OptimizeRoute(route, 0.001, 12000, 40e3, loose.TotalTimeS/2)
	if err != nil {
		t.Fatal(err)
	}
	if tight.TotalTimeS > loose.TotalTimeS/2*(1+1e-9) {
		t.Errorf("deadline missed: %v > %v", tight.TotalTimeS, loose.TotalTimeS/2)
	}
	if tight.TotalEnergyJ < loose.TotalEnergyJ*(1-1e-9) {
		t.Errorf("tight plan cheaper than loose: %v vs %v", tight.TotalEnergyJ, loose.TotalEnergyJ)
	}
	// Errors propagate.
	if _, err := n.OptimizeRoute([]int{0}, 0.001, 1000, 40e3, 1); err == nil {
		t.Error("short route should fail")
	}
	if _, err := n.OptimizeRoute(route, 0.001, 12000, 40e3, 1e-12); err == nil {
		t.Error("impossible deadline should fail")
	}
}
