// Scheme BER curves: push bits through the Section 2.2 cooperative
// schemes at symbol level across an SNR sweep and compare the measured
// error rates against the closed-form eq. (5)/(6) averages — the
// diversity gain of cooperation made visible, including what happens
// when the intra-cluster broadcast itself is noisy.
package main

import (
	"fmt"
	"log"

	cogmimo "repro"
)

func main() {
	schemes := []struct {
		mt, mr int
	}{
		{1, 1}, {2, 1}, {1, 2}, {2, 2},
	}

	fmt.Println("BPSK over flat Rayleigh fading, ideal intra-cluster links")
	fmt.Printf("%-10s", "SNR dB")
	for _, s := range schemes {
		fmt.Printf("  %-22s", fmt.Sprintf("%dx%d meas/theory", s.mt, s.mr))
	}
	fmt.Println()
	for snr := 0.0; snr <= 16; snr += 4 {
		fmt.Printf("%-10.0f", snr)
		for _, s := range schemes {
			r, err := cogmimo.SimulateHop(cogmimo.HopConfig{
				TxNodes: s.mt, RxNodes: s.mr, ConstellationBits: 1,
				SNRPerBitDB: snr, IdealLocal: true,
				Bits: 100000, Seed: 7,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-22s", fmt.Sprintf("%.2e/%.2e", r.BER, r.PredictedBER))
		}
		fmt.Println()
	}

	fmt.Println("\neffect of a noisy Step 1 broadcast (2x1 MISO, long-haul 30 dB):")
	for _, local := range []float64{0, 2, 6, 12} {
		cfg := cogmimo.HopConfig{
			TxNodes: 2, RxNodes: 1, ConstellationBits: 1,
			SNRPerBitDB: 30, Bits: 100000, Seed: 8,
		}
		if local == 0 {
			cfg.IdealLocal = true
		} else {
			cfg.LocalSNRPerBitDB = local
		}
		r, err := cogmimo.SimulateHop(cfg)
		if err != nil {
			log.Fatal(err)
		}
		label := "ideal"
		if local > 0 {
			label = fmt.Sprintf("%.0f dB", local)
		}
		fmt.Printf("  local %-6s  broadcast BER %.2e  end-to-end BER %.2e\n",
			label, r.LocalBER, r.BER)
	}
}
