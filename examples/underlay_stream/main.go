// Underlay multi-hop streaming: deploy a CoMIMONet, route between two
// clusters over the spanning-tree backbone, account the cooperative
// relay energy per hop, and check the noise-floor margin of each hop's
// configuration — Algorithm 2 end to end.
package main

import (
	"fmt"
	"log"

	cogmimo "repro"
)

func main() {
	sys, err := cogmimo.NewSystem(cogmimo.SystemConfig{BandwidthHz: 40e3})
	if err != nil {
		log.Fatal(err)
	}

	net, err := sys.BuildNetwork(cogmimo.NetworkConfig{
		Nodes: 80, FieldWM: 400, FieldHM: 400,
		CommRangeM: 80, ClusterDiamM: 30, MaxLinkM: 260, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	clusters := net.Clusters()
	fmt.Printf("CoMIMONet: %d clusters, %d cooperative links\n", len(clusters), net.Links())
	for _, c := range clusters {
		fmt.Printf("  cluster %-3d members=%-2d head=node-%d span=%.1f m\n",
			c.ID, c.Members, c.HeadNode, c.DiameterM)
	}

	src, dst := clusters[0].ID, clusters[len(clusters)-1].ID
	route := net.Route(src, dst)
	if route == nil {
		fmt.Printf("clusters %d and %d are disconnected at this link length\n", src, dst)
		return
	}
	fmt.Printf("backbone route %d -> %d: %v\n", src, dst, route)

	energy, err := net.RouteEnergy(route, 0.001)
	if err != nil {
		log.Fatal(err)
	}
	const imageBits = 474 * 1506 * 8 // the paper's 474-packet image
	fmt.Printf("per-bit relay energy: %.3g J; the 474-packet image costs %.3g J end to end\n",
		energy, energy*imageBits)

	// The underlay constraint, hop-type by hop-type.
	fmt.Println("\nnoise-floor margins at 200 m (relative to the SISO primary reference):")
	for _, pair := range [][2]int{{1, 2}, {2, 2}, {2, 3}, {3, 3}} {
		r, err := sys.AnalyzeUnderlay(cogmimo.UnderlayScenario{
			TxNodes: pair[0], RxNodes: pair[1], ClusterSpanM: 1,
			HopDistanceM: 200, TargetBER: 0.001,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %dx%d: b=%-2d total PA %.3g J/bit, margin %.4f\n",
			pair[0], pair[1], r.Constellation, r.TotalPAJPerBit, r.NoiseFloorMargin)
	}
}
