// Cognitive cycle: the interweave loop end to end. Primary users come
// and go on several channels; the secondary cluster senses with
// cooperative energy detection, grabs idle spectrum, and vacates when a
// primary returns. The run contrasts sensing against blind transmission
// and shows the throughput/protection trade of the fusion rule.
package main

import (
	"fmt"
	"log"

	cogmimo "repro"
)

func main() {
	base := cogmimo.CognitiveCycleConfig{
		Channels: 3, PUDutyCycle: 0.4, PUHoldS: 2,
		SensePeriodS: 0.5,
		Sensing: cogmimo.SensingConfig{
			Samples: 800, TargetPfa: 0.05, Sensors: 3, Fusion: "or",
		},
		PrimarySNRDB: -3,
		FrameTimeS:   0.05,
		HorizonS:     2000,
		Seed:         1,
	}

	fmt.Println("interweave cognitive cycle: 3 channels, PUs busy 40% of the time")
	fmt.Printf("%-22s  %-12s  %-14s  %s\n", "policy", "utilization", "collision rate", "frames")

	for _, c := range []struct {
		name   string
		mutate func(*cogmimo.CognitiveCycleConfig)
	}{
		{"blind (no sensing)", func(c *cogmimo.CognitiveCycleConfig) { c.Blind = true }},
		{"OR fusion x3", func(c *cogmimo.CognitiveCycleConfig) {}},
		{"majority fusion x3", func(c *cogmimo.CognitiveCycleConfig) { c.Sensing.Fusion = "majority" }},
		{"single sensor", func(c *cogmimo.CognitiveCycleConfig) { c.Sensing.Sensors = 1 }},
	} {
		cfg := base
		c.mutate(&cfg)
		r, err := cogmimo.RunCognitiveCycle(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s  %-12.3f  %-14.4f  %d\n", c.name, r.Utilization, r.CollisionRate, r.FramesSent)
	}

	fmt.Println("\nmore channels, more opportunity:")
	for _, ch := range []int{1, 2, 4, 8} {
		cfg := base
		cfg.Channels = ch
		r, err := cogmimo.RunCognitiveCycle(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %d channel(s): utilization %.3f, collisions %.4f\n", ch, r.Utilization, r.CollisionRate)
	}
}
