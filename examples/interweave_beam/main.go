// Interweave beamforming exploration: steer the pairwise null across
// candidate primary directions, render the resulting pattern as ASCII,
// and run the Table 1 trial to see the diversity amplitude a broadside
// secondary receiver keeps.
package main

import (
	"fmt"
	"log"
	"math"
	"strings"

	cogmimo "repro"
)

func main() {
	sys, err := cogmimo.NewSystem(cogmimo.SystemConfig{BandwidthHz: 40e3})
	if err != nil {
		log.Fatal(err)
	}

	// Table 1 scenario: 15 m pair, 20 random PUs, broadside receiver.
	res, err := sys.AnalyzeInterweave(cogmimo.InterweaveScenario{
		Seed: 2, Trials: 10,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pairwise beamformer: %.2fx SISO amplitude at Sr, worst leak at Pr %.3f\n\n",
		res.MeanAmplitudeAtSr, res.WorstResidualAtPr)

	// Pattern sketches for several steered nulls with a half-wavelength
	// pair. Each row is one look angle; the bar length is the beamformed
	// amplitude (2.0 = full pairwise diversity, SISO = 1.0).
	for _, null := range []float64{60, 90, 120} {
		fmt.Printf("null steered to %.0f degrees:\n", null)
		for deg := 0.0; deg <= 180; deg += 10 {
			amp := twoElementAmplitude(deg, null)
			bar := strings.Repeat("#", int(amp*20+0.5))
			fmt.Printf("  %3.0f deg  %-42s %.2f\n", deg, bar, amp)
		}
		fmt.Println()
	}

	// The Figure 8 measurement (with indoor multipath) as a report.
	out, err := cogmimo.RunExperiment("fig8", 2, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(out)
}

// twoElementAmplitude evaluates |1 + e^{j(delta + k r cos(theta))}| for
// a half-wavelength pair (k r = pi) with the phase delta chosen so the
// total relative phase reaches pi toward nullDeg.
func twoElementAmplitude(deg, nullDeg float64) float64 {
	rad := deg * math.Pi / 180
	nullRad := nullDeg * math.Pi / 180
	delta := math.Pi + math.Pi*math.Cos(nullRad)
	phase := delta - math.Pi*math.Cos(rad)
	return math.Abs(2 * math.Cos(phase/2))
}
