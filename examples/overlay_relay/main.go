// Overlay relay planning: for a primary pair at growing separations,
// find how far a cooperative SU cluster can sit from both primaries
// while relaying at a 10x tighter BER on the primary's own energy
// budget — the Section 6.1 analysis as a planning tool.
package main

import (
	"fmt"
	"log"

	cogmimo "repro"
)

func main() {
	fmt.Println("overlay relay placement (direct BER 0.005, relayed BER 0.0005)")
	fmt.Printf("%-10s  %-8s  %-14s  %-14s\n", "D(Pt,Pr)", "relays", "max dist to Pt", "max dist to Pr")

	for _, m := range []int{2, 3, 4} {
		// The array convention matches the paper's evaluated Figure 6
		// ratios (D3/D2 = sqrt(m)); see DESIGN.md.
		sys, err := cogmimo.NewSystem(cogmimo.SystemConfig{
			BandwidthHz:     40e3,
			ArrayConvention: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		for d1 := 150.0; d1 <= 350; d1 += 50 {
			r, err := sys.AnalyzeOverlay(cogmimo.OverlayScenario{
				PrimarySeparationM: d1, Relays: m,
				DirectBER: 0.005, RelayBER: 0.0005,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-10.0f  %-8d  %-14.0f  %-14.0f\n", d1, m, r.MaxDistToTxM, r.MaxDistToRxM)
		}
		fmt.Println()
	}

	// Energy ledger for the paper's worked point: who pays what per bit.
	sys, err := cogmimo.NewSystem(cogmimo.SystemConfig{BandwidthHz: 40e3})
	if err != nil {
		log.Fatal(err)
	}
	e, err := sys.LongHaulTxEnergy(0.0005, 1, 3, 1, 406)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("per-SU transmit energy on a 3x1 MISO leg at 406 m: %.3g J/bit\n", e)
}
