// Quickstart: build a System with the paper's constants, query the ēb
// table, and run one analysis from each of the three cooperative MIMO
// paradigms.
package main

import (
	"fmt"
	"log"

	cogmimo "repro"
)

func main() {
	sys, err := cogmimo.NewSystem(cogmimo.SystemConfig{BandwidthHz: 40e3})
	if err != nil {
		log.Fatal(err)
	}

	// The quantity everything builds on: the per-bit receive energy an
	// mt-by-mr cooperative link needs for a target BER. Cooperation
	// slashes it by orders of magnitude.
	siso, err := sys.EbBar(0.001, 2, 1, 1)
	if err != nil {
		log.Fatal(err)
	}
	mimo, err := sys.EbBar(0.001, 2, 2, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ēb at BER 0.001, QPSK: SISO %.3g J, 2x3 MIMO %.3g J (%.0fx less)\n",
		siso, mimo, siso/mimo)

	// Overlay: three SUs relay a 250 m primary link at 10x better BER
	// on the same energy budget.
	ov, err := sys.AnalyzeOverlay(cogmimo.OverlayScenario{
		PrimarySeparationM: 250, Relays: 3,
		DirectBER: 0.005, RelayBER: 0.0005,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("overlay: budget %.3g J/bit; SUs may sit %.0f m from Pt and %.0f m from Pr\n",
		ov.DirectEnergyJPerBit, ov.MaxDistToTxM, ov.MaxDistToRxM)

	// Underlay: a 2x3 cooperative hop over 200 m.
	un, err := sys.AnalyzeUnderlay(cogmimo.UnderlayScenario{
		TxNodes: 2, RxNodes: 3, ClusterSpanM: 1,
		HopDistanceM: 200, TargetBER: 0.001,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("underlay: optimal b=%d, total PA %.3g J/bit, %.4fx the SISO reference\n",
		un.Constellation, un.TotalPAJPerBit, un.NoiseFloorMargin)

	// Interweave: a null-steering pair protects the primary receiver
	// while beating SISO amplitude at the secondary receiver.
	iw, err := sys.AnalyzeInterweave(cogmimo.InterweaveScenario{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("interweave: amplitude at Sr %.2fx SISO, residual at Pr %.3f\n",
		iw.MeanAmplitudeAtSr, iw.WorstResidualAtPr)
}
