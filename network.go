package cogmimo

import (
	"fmt"

	"repro/internal/crosslayer"
	"repro/internal/energy"
	"repro/internal/mathx"
	"repro/internal/multihop"
	"repro/internal/network"
	"repro/internal/units"
)

// NetworkConfig describes a CoMIMONet deployment (Section 2.1).
type NetworkConfig struct {
	// Nodes is the SU count.
	Nodes int
	// FieldWM and FieldHM size the deployment field in metres.
	FieldWM, FieldHM float64
	// CommRangeM is the per-node communication range r.
	CommRangeM float64
	// ClusterDiamM is the d-clustering bound (d <= r).
	ClusterDiamM float64
	// MaxLinkM is the longest cooperative MIMO link D.
	MaxLinkM float64
	// Seed drives node placement.
	Seed int64
}

// Network is a built CoMIMONet.
type Network struct {
	net *network.CoMIMONet
	sys *System
}

// ClusterInfo summarises one cooperative MIMO node.
type ClusterInfo struct {
	ID       int
	Members  int
	HeadNode int
	// DiameterM is the largest member spacing.
	DiameterM float64
}

// BuildNetwork deploys SUs uniformly at random, d-clusters them, and
// builds the G_MIMO backbone.
func (s *System) BuildNetwork(cfg NetworkConfig) (*Network, error) {
	if cfg.Nodes < 1 {
		return nil, fmt.Errorf("cogmimo: need at least one node, got %d", cfg.Nodes)
	}
	if cfg.FieldWM <= 0 || cfg.FieldHM <= 0 {
		return nil, fmt.Errorf("cogmimo: field %gx%g must be positive", cfg.FieldWM, cfg.FieldHM)
	}
	rng := mathx.NewRand(cfg.Seed)
	dep := network.RandomDeployment(rng, cfg.Nodes, cfg.FieldWM, cfg.FieldHM, 1, 10)
	g, err := network.NewGraph(dep, cfg.CommRangeM)
	if err != nil {
		return nil, err
	}
	cl, err := network.DCluster(g, cfg.ClusterDiamM)
	if err != nil {
		return nil, err
	}
	if err := cl.Validate(); err != nil {
		return nil, err
	}
	net, err := network.BuildCoMIMONet(cl, cfg.MaxLinkM)
	if err != nil {
		return nil, err
	}
	return &Network{net: net, sys: s}, nil
}

// Clusters lists the cooperative MIMO nodes.
func (n *Network) Clusters() []ClusterInfo {
	cl := n.net.Clustering
	out := make([]ClusterInfo, 0, len(cl.Clusters))
	for i := range cl.Clusters {
		c := &cl.Clusters[i]
		out = append(out, ClusterInfo{
			ID:        int(c.ID),
			Members:   c.Size(),
			HeadNode:  int(c.Head),
			DiameterM: cl.Diameter(c),
		})
	}
	return out
}

// Links returns the number of cooperative MIMO links in G_MIMO.
func (n *Network) Links() int { return len(n.net.Edges) }

// Route returns the backbone cluster path between two clusters, or nil
// when disconnected.
func (n *Network) Route(src, dst int) []int {
	r := n.net.Route(network.ClusterID(src), network.ClusterID(dst))
	out := make([]int, len(r))
	for i, id := range r {
		out[i] = int(id)
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// hopCoster adapts the underlay energy accounting to network routing.
type hopCoster struct {
	model *energy.Model
	ber   float64
}

func (h hopCoster) HopEnergy(mt, mr int, d, D float64) (units.JoulePerBit, error) {
	// Degenerate clusters have zero diameter; local steps need a
	// positive span only when they exist.
	if d <= 0 {
		d = 0.1
	}
	best, err := h.model.OptimalMIMOB(h.ber, mt, mr, D, nil)
	if err != nil {
		return 0, err
	}
	total := units.JoulePerBit(float64(mt)) * best.Cost.Total()
	if mt > 1 {
		lt, err := h.model.LocalTx(h.ber, best.B, d)
		if err != nil {
			return 0, err
		}
		total += lt.Total()
	}
	if mr > 1 {
		lt, err := h.model.LocalTx(h.ber, best.B, d)
		if err != nil {
			return 0, err
		}
		total += units.JoulePerBit(float64(mr-1)) * lt.Total()
	}
	rx, err := h.model.MIMORx(best.B)
	if err != nil {
		return 0, err
	}
	total += units.JoulePerBit(float64(mr)) * rx.Total()
	return total, nil
}

// RouteTransport pushes bits through the route at symbol level: every
// hop's long-haul SNR comes from the energy model's link budget — each
// transmitting node spends paJoulePerBit of PA energy, so the delivered
// per-bit energy is paJoulePerBit * mt / ((1+alpha) * pathLoss(D)) and
// the per-bit SNR that divided by N0. This ties the paper's energy
// equations to actual delivered bits.
func (n *Network) RouteTransport(route []int, paJoulePerBit float64, constellationBits, bits int, seed int64) (HopTransportResult, error) {
	if len(route) < 2 {
		return HopTransportResult{}, fmt.Errorf("cogmimo: route needs at least two clusters")
	}
	if paJoulePerBit <= 0 {
		return HopTransportResult{}, fmt.Errorf("cogmimo: PA energy %g must be positive", paJoulePerBit)
	}
	model := n.sys.model
	var hops []multihop.Hop
	for i := 0; i+1 < len(route); i++ {
		a := &n.net.Clustering.Clusters[route[i]]
		b := &n.net.Clustering.Clusters[route[i+1]]
		e, ok := n.net.EdgeBetween(a.ID, b.ID)
		if !ok {
			return HopTransportResult{}, fmt.Errorf("cogmimo: hop %d-%d is not a cooperative link", a.ID, b.ID)
		}
		mt := a.Size()
		if mt > 4 {
			mt = 4
		}
		mr := b.Size()
		if mr > 4 {
			mr = 4
		}
		ebDelivered := paJoulePerBit * float64(mt) /
			((1 + energy.Alpha(constellationBits)) * model.P.LongHaulLoss().Gain(e.D))
		hops = append(hops, multihop.Hop{
			Mt: mt, Mr: mr,
			SNRPerBit: ebDelivered / model.P.N0,
		})
	}
	r, err := multihop.Run(multihop.Config{
		Hops: hops, B: constellationBits, Bits: bits, Seed: seed,
	})
	if err != nil {
		return HopTransportResult{}, err
	}
	return HopTransportResult{
		EndToEndBER:  r.EndToEndBER,
		PerHopBER:    r.PerHopBER,
		PredictedBER: r.PredictedBER,
		Bits:         r.Bits,
	}, nil
}

// HopTransportResult reports a route-level symbol simulation.
type HopTransportResult struct {
	// EndToEndBER compares delivered bits against the source.
	EndToEndBER float64
	// PerHopBER lists each hop's own error rate.
	PerHopBER []float64
	// PredictedBER is the closed-form per-hop sum.
	PredictedBER float64
	// Bits transported (rounded up to whole blocks).
	Bits int
}

// RoutePlan is a cross-layer schedule for one backbone route.
type RoutePlan struct {
	// PerHopB lists the chosen constellation per hop.
	PerHopB []int
	// TotalEnergyJ for the payload across all hops and nodes.
	TotalEnergyJ float64
	// TotalTimeS is the end-to-end airtime.
	TotalTimeS float64
}

// OptimizeRoute jointly picks per-hop constellation sizes along the
// backbone route to minimise total energy while delivering bits within
// deadlineS of airtime at symbolRate — the cross-layer optimisation of
// the CoMIMONet's design lineage.
func (n *Network) OptimizeRoute(route []int, targetBER float64, bits int, symbolRate, deadlineS float64) (RoutePlan, error) {
	if len(route) < 2 {
		return RoutePlan{}, fmt.Errorf("cogmimo: route needs at least two clusters")
	}
	var hops []crosslayer.Hop
	for i := 0; i+1 < len(route); i++ {
		a := &n.net.Clustering.Clusters[route[i]]
		b := &n.net.Clustering.Clusters[route[i+1]]
		e, ok := n.net.EdgeBetween(a.ID, b.ID)
		if !ok {
			return RoutePlan{}, fmt.Errorf("cogmimo: hop %d-%d is not a cooperative link", a.ID, b.ID)
		}
		mt, mr := a.Size(), b.Size()
		if mt > 4 {
			mt = 4
		}
		if mr > 4 {
			mr = 4
		}
		d := n.net.Clustering.Diameter(a)
		if db := n.net.Clustering.Diameter(b); db > d {
			d = db
		}
		hops = append(hops, crosslayer.Hop{Mt: mt, Mr: mr, IntraD: d, LinkD: e.D})
	}
	plan, err := crosslayer.Optimize(crosslayer.Config{
		Model: n.sys.model, Hops: hops,
		BER: targetBER, Bits: bits,
		SymbolRate: symbolRate, DeadlineS: deadlineS,
	})
	if err != nil {
		return RoutePlan{}, err
	}
	out := RoutePlan{
		TotalEnergyJ: plan.TotalEnergyJ,
		TotalTimeS:   plan.TotalTimeS,
	}
	for _, c := range plan.Choices {
		out.PerHopB = append(out.PerHopB, c.B)
	}
	return out, nil
}

// RouteEnergy estimates the per-bit energy of cooperatively relaying
// data along the backbone route at the given BER target.
func (n *Network) RouteEnergy(route []int, targetBER float64) (float64, error) {
	if len(route) < 2 {
		return 0, fmt.Errorf("cogmimo: route needs at least two clusters")
	}
	ids := make([]network.ClusterID, len(route))
	for i, r := range route {
		ids[i] = network.ClusterID(r)
	}
	e, err := n.net.RouteEnergy(ids, hopCoster{model: n.sys.model, ber: targetBER})
	if err != nil {
		return 0, err
	}
	return float64(e), nil
}
