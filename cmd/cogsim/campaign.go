package main

import (
	"context"
	"fmt"
	"log/slog"
	"os"

	"repro/internal/campaign"
	"repro/internal/obs"
	"repro/internal/store"
)

// runCampaign executes a campaign spec against a durable store and
// returns the assembled report. Interrupting the run (Ctrl-C, or even
// SIGKILL) loses at most one checkpoint interval of Monte-Carlo work:
// rerunning the same command resumes from the persisted checkpoints
// and produces a report byte-identical to an uninterrupted run.
func runCampaign(ctx context.Context, specPath, dataDir string, workers int, showProgress bool) (string, error) {
	if dataDir == "" {
		return "", fmt.Errorf("-campaign needs -data-dir for checkpoints and results")
	}
	payload, err := os.ReadFile(specPath)
	if err != nil {
		return "", err
	}
	spec, err := campaign.ParseSpec(payload)
	if err != nil {
		return "", fmt.Errorf("%s: %w", specPath, err)
	}
	st, err := store.Open(store.Options{Dir: dataDir, Logger: slog.Default()})
	if err != nil {
		return "", err
	}
	defer st.Close()

	runner := campaign.Runner{
		Store:   st,
		Workers: workers,
		Logger:  slog.Default(),
	}
	if showProgress {
		runner.Observer = &progressObserver{}
	}
	fmt.Fprintf(os.Stderr, "cogsim: campaign %s (%s): %d experiments\n",
		spec.ID(), spec.Name, len(spec.Experiments))
	_, stats, err := runner.Run(ctx, spec)
	if err != nil {
		if ctx.Err() != nil {
			fmt.Fprintln(os.Stderr, "cogsim: interrupted; rerun the same command to resume from checkpoints")
		}
		return "", err
	}
	fmt.Fprintf(os.Stderr, "cogsim: campaign done: %d computed, %d cached, %d chunks resumed\n",
		stats.Computed, stats.Cached, stats.ChunksResumed)
	// The report comes from the store rather than the Run return so the
	// printed bytes are exactly the durable ones.
	report, _, ok := st.Get("campaign/" + spec.ID() + "/report")
	if !ok {
		return "", fmt.Errorf("campaign finished but report missing from store")
	}
	return string(report), nil
}

// progressObserver renders a live per-experiment progress line on
// stderr while a campaign entry runs.
type progressObserver struct {
	stop func()
}

func (p *progressObserver) ExperimentStarted(i int, name string, tracker *obs.Tracker) {
	p.stop = obs.StartProgressPrinter(os.Stderr, name, tracker, 0)
}

func (p *progressObserver) ExperimentFinished(i int, name string, cached bool, err error) {
	if p.stop != nil {
		p.stop()
		p.stop = nil
	}
	switch {
	case err != nil:
		fmt.Fprintf(os.Stderr, "cogsim: %s failed: %v\n", name, err)
	case cached:
		fmt.Fprintf(os.Stderr, "cogsim: %s: cached\n", name)
	}
}
