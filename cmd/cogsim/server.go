package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/httpapi"
	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/tenant"
)

// runViaServer submits the experiment to a cogmimod daemon and follows
// the job over its SSE event stream instead of computing locally. The
// daemon's progress events feed the same tracker the local path uses,
// so the terminal progress line looks identical either way; the report
// printed at the end is the one the server rendered. -tenant names the
// submitting tenant via the X-Tenant-Id header, so the job lands in
// that tenant's queue and is billed against its quota.
func runViaServer(ctx context.Context, base, tenantID string, req service.Request, tracker *obs.Tracker) (string, error) {
	base = strings.TrimRight(base, "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}

	body, err := json.Marshal(req)
	if err != nil {
		return "", err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/experiments", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	hreq.Header.Set("Content-Type", "application/json")
	if tenantID != "" {
		hreq.Header.Set(tenant.Header, tenantID)
	}
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		return "", fmt.Errorf("submitting to %s: %w", base, err)
	}
	var submitted struct {
		Job   string `json:"job"`
		Error string `json:"error"`
	}
	decodeErr := json.NewDecoder(resp.Body).Decode(&submitted)
	resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusTooManyRequests:
		return "", fmt.Errorf("server over quota for tenant %q: retry after %ss",
			tenantID, resp.Header.Get("Retry-After"))
	case resp.StatusCode != http.StatusAccepted:
		if decodeErr == nil && submitted.Error != "" {
			return "", fmt.Errorf("server rejected the job: %s", submitted.Error)
		}
		return "", fmt.Errorf("server rejected the job: status %d", resp.StatusCode)
	case decodeErr != nil:
		return "", fmt.Errorf("decoding submit response: %w", decodeErr)
	}

	return followJob(ctx, base, submitted.Job, tracker)
}

// followJob consumes the job's SSE stream to its terminal event,
// mirroring progress into the tracker as deltas (the stream reports
// absolute counts; the tracker accumulates).
func followJob(ctx context.Context, base, jobID string, tracker *obs.Tracker) (string, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/jobs/"+jobID+"/events", nil)
	if err != nil {
		return "", err
	}
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		return "", fmt.Errorf("opening event stream: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return "", fmt.Errorf("event stream for %s: status %d", jobID, resp.StatusCode)
	}

	var report string
	var terminal struct {
		state string
		errs  string
	}
	var prevDone, prevTotal int64
	err = httpapi.ReadSSE(resp.Body, func(ev httpapi.Event) error {
		var jv struct {
			State    string                `json:"state"`
			Error    string                `json:"error"`
			Report   string                `json:"report"`
			Progress *service.ProgressInfo `json:"progress"`
		}
		if err := json.Unmarshal(ev.Data, &jv); err != nil {
			return fmt.Errorf("event payload: %w", err)
		}
		if p := jv.Progress; p != nil {
			tracker.AddTotal(p.TotalTrials - prevTotal)
			tracker.Add(p.DoneTrials - prevDone)
			prevDone, prevTotal = p.DoneTrials, p.TotalTrials
		}
		if ev.Name == "complete" {
			terminal.state = jv.State
			terminal.errs = jv.Error
			report = jv.Report
		}
		return nil
	})
	if err != nil {
		// A cancelled context surfaces as a read error on the stream;
		// report the interruption, not the transport detail.
		if ctx.Err() != nil {
			return "", ctx.Err()
		}
		return "", fmt.Errorf("reading event stream: %w", err)
	}
	switch terminal.state {
	case string(service.StateDone):
		return report, nil
	case "":
		return "", fmt.Errorf("event stream for %s ended without a terminal event", jobID)
	default:
		return "", fmt.Errorf("job %s ended %s: %s", jobID, terminal.state, terminal.errs)
	}
}

// waitServerHealthy polls /healthz until the daemon answers, for
// scripts that start cogmimod and immediately submit through cogsim.
func waitServerHealthy(ctx context.Context, base string, timeout time.Duration) error {
	base = strings.TrimRight(base, "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	deadline := time.Now().Add(timeout)
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/healthz", nil)
		if err != nil {
			return err
		}
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			if err != nil {
				return fmt.Errorf("server %s not healthy after %v: %w", base, timeout, err)
			}
			return fmt.Errorf("server %s not healthy after %v", base, timeout)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(50 * time.Millisecond):
		}
	}
}
