package main

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"repro/internal/cluster"
	"repro/internal/experiments"
)

func TestSplitPeers(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"a:1,b:2", []string{"a:1", "b:2"}},
		{" a:1 , b:2 ,", []string{"a:1", "b:2"}},
		{",,", nil},
		{"", nil},
	}
	for _, tc := range cases {
		if got := splitPeers(tc.in); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("splitPeers(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

// shardServer is a minimal cogmimod worker: the same two endpoints the
// HTTP transport speaks, backed by the same ExecuteShard a real node
// uses.
func shardServer(t *testing.T, id string) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("POST /v1/shards", func(w http.ResponseWriter, r *http.Request) {
		var req cluster.ShardRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		res, err := cluster.ExecuteShard(r.Context(), id, 1, req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(res)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

// TestRemoteMatchesLocal runs ext-coopber with -remote wiring against
// two real HTTP worker servers and expects the report byte-identical to
// the plain local run — the user-facing form of the cluster guarantee.
func TestRemoteMatchesLocal(t *testing.T) {
	opts := experiments.Options{Seed: 1, Quick: true, Workers: 2}
	local, err := experiments.RunCtx(context.Background(), "ext-coopber", opts)
	if err != nil {
		t.Fatalf("local run: %v", err)
	}

	w1 := shardServer(t, "w1")
	w2 := shardServer(t, "w2")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ctx = withRemote(ctx, []string{w1.URL, w2.URL}, 2)

	remote, err := experiments.RunCtx(ctx, "ext-coopber", opts)
	if err != nil {
		t.Fatalf("remote run: %v", err)
	}
	if remote.String() != local.String() {
		t.Fatalf("remote report differs from local:\n--- remote ---\n%s\n--- local ---\n%s", remote.String(), local.String())
	}
}
