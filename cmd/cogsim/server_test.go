package main

import (
	"context"
	"log/slog"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/httpapi"
	"repro/internal/obs"
	"repro/internal/service"
)

func startDaemon(t *testing.T, cfg service.Config) *httptest.Server {
	t.Helper()
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.DiscardHandler)
	}
	svc, err := service.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	svc.Start()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		svc.Stop(ctx)
	})
	ts := httptest.NewServer(httpapi.NewMux(svc, httpapi.Config{Logger: cfg.Logger}))
	t.Cleanup(ts.Close)
	return ts
}

// TestRunViaServerFollowsToReport: the -server path submits, streams
// progress into the tracker without polling, and returns the report the
// daemon rendered.
func TestRunViaServerFollowsToReport(t *testing.T) {
	const steps = 3
	runner := func(ctx context.Context, req service.Request) (string, error) {
		p := obs.ProgressFrom(ctx)
		p.AddTotal(steps)
		for i := 0; i < steps; i++ {
			select {
			case <-ctx.Done():
				return "", ctx.Err()
			case <-time.After(2 * time.Millisecond):
			}
			p.Add(1)
		}
		return "server-rendered report for " + req.ID, nil
	}
	ts := startDaemon(t, service.Config{Workers: 1, Runner: runner})

	if err := waitServerHealthy(context.Background(), ts.URL, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	tracker := obs.NewTracker()
	report, err := runViaServer(context.Background(), ts.URL, "acme",
		service.Request{ID: "fig7", Seed: 3}, tracker)
	if err != nil {
		t.Fatal(err)
	}
	if report != "server-rendered report for fig7" {
		t.Fatalf("report = %q", report)
	}
	if snap := tracker.Snapshot(); snap.Done != steps || snap.Total != steps {
		t.Fatalf("tracker = %d/%d, want %d/%d", snap.Done, snap.Total, steps, steps)
	}
}

// TestRunViaServerSurfacesFailure: a failing job turns into an error
// naming the terminal state, not a silent empty report.
func TestRunViaServerSurfacesFailure(t *testing.T) {
	ts := startDaemon(t, service.Config{
		Workers: 1,
		Runner: func(ctx context.Context, req service.Request) (string, error) {
			return "", context.DeadlineExceeded
		},
	})
	_, err := runViaServer(context.Background(), ts.URL, "",
		service.Request{ID: "fig7", Seed: 4}, obs.NewTracker())
	if err == nil || !strings.Contains(err.Error(), "failed") {
		t.Fatalf("err = %v, want terminal-state failure", err)
	}
}

// TestRunViaServerRejectsBadSubmission: a 400 from the daemon (invalid
// tenant id) surfaces the server's error message.
func TestRunViaServerRejectsBadSubmission(t *testing.T) {
	ts := startDaemon(t, service.Config{
		Workers: 1,
		Runner: func(ctx context.Context, req service.Request) (string, error) {
			return "r", nil
		},
	})
	_, err := runViaServer(context.Background(), ts.URL, "not a tenant!",
		service.Request{ID: "fig7", Seed: 5}, obs.NewTracker())
	if err == nil || !strings.Contains(err.Error(), "rejected") {
		t.Fatalf("err = %v, want submit rejection", err)
	}
}
