// Command cogsim regenerates the paper's evaluation artifacts.
//
// Usage:
//
//	cogsim -list
//	cogsim -id table2
//	cogsim -all -seed 7
//	cogsim -id fig7 -quick
//	cogsim -id ext-coopber -remote localhost:8346,localhost:8347
//	cogsim -id fig7 -server localhost:8080 -tenant acme
//	cogsim -campaign campaigns/figures.json -data-dir ./data
//	cogsim -id ext-coopber -quick -trace-out run.json
//
// -remote shards kernel-based Monte-Carlo runs across cogmimod worker
// nodes (see internal/cluster); output is bit-identical to a local run.
//
// -trace-out records the invocation as a structural trace (per-chunk
// Monte-Carlo spans, and per-shard dispatch when combined with -remote)
// and writes it as Chrome trace_event JSON — load the file in
// chrome://tracing or https://ui.perfetto.dev to see the timeline.
// Recording never changes results; reports stay bit-identical.
//
// -server submits the experiment to a running cogmimod daemon instead
// of computing locally and follows the job's SSE event stream: the
// usual progress line tracks the server-side run live, and the report
// the daemon rendered is printed on completion. -tenant names the
// submitting tenant (the X-Tenant-Id header), so the job queues and is
// quota-billed under that tenant; unset means the default tenant.
//
// -campaign runs a named list of experiments with per-chunk durable
// checkpoints (see internal/campaign): an interrupted run — Ctrl-C or a
// hard kill — resumes from the checkpoints in -data-dir on the next
// invocation and still prints a report byte-identical to an
// uninterrupted run.
//
// On a terminal, a live progress line on stderr tracks completed work
// (sweep points, testbed runs, Monte-Carlo trials) while the tables
// render to stdout; -progress on/off overrides the terminal detection.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"time"

	"repro/internal/adaptive"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/service"
)

func main() {
	var (
		id        = flag.String("id", "", "experiment to run (see -list)")
		all       = flag.Bool("all", false, "run every experiment")
		list      = flag.Bool("list", false, "list experiment IDs and exit")
		seed      = flag.Int64("seed", 1, "master random seed")
		quick     = flag.Bool("quick", false, "shrink workloads for a fast smoke run")
		format    = flag.String("format", "text", "output format: text, csv or json")
		plot      = flag.Bool("plot", false, "render numeric reports as an ASCII chart")
		logY      = flag.Bool("logy", false, "log-scale the plot's y axis (use with fig7)")
		workers   = flag.Int("workers", 0, "sweep-row concurrency; 0 means GOMAXPROCS (results are identical for any value)")
		remote    = flag.String("remote", "", "comma-separated cogmimod worker addresses; shard Monte-Carlo kernels across them (results are identical)")
		server    = flag.String("server", "", "cogmimod base URL; submit there and follow the job over SSE instead of computing locally (use with -id)")
		tenantID  = flag.String("tenant", "", "tenant id for -server submissions (X-Tenant-Id); empty means the default tenant")
		campSpec  = flag.String("campaign", "", "campaign spec file; runs it with durable checkpoints (needs -data-dir)")
		dataDir   = flag.String("data-dir", "", "durable store directory for -campaign checkpoints and results")
		targetCI  = flag.Float64("target-ci", 0, "adaptive stop: target relative 95% CI half-width, e.g. 0.05 for ±5% (0 = fixed budgets)")
		maxTrials = flag.Int("max-trials", 0, "adaptive stop: per-cell trial budget cap (required with -target-ci)")
		minTrials = flag.Int("min-trials", 0, "adaptive stop: floor on trials before stopping may trigger")
		progress  = flag.String("progress", "auto", "live progress line on stderr: auto, on or off")
		logLevel  = flag.String("log-level", "warn", "log level: debug, info, warn or error")
		traceOut  = flag.String("trace-out", "", "record the run as a trace and write Chrome trace_event JSON here (open in chrome://tracing or https://ui.perfetto.dev)")
	)
	flag.Parse()

	// -target-ci/-max-trials compile to an adaptive budget threaded into
	// every execution path: local runs take it via experiments.Options,
	// server submissions encode it as request params so the budget
	// participates in the result cache key.
	budget := adaptive.Budget{TargetRelCI: *targetCI, MaxTrials: *maxTrials, MinTrials: *minTrials}
	if err := budget.Validate(); err != nil {
		fatal(err)
	}
	if *targetCI > 0 && *maxTrials <= 0 {
		fatal(fmt.Errorf("-target-ci needs -max-trials to bound the spend"))
	}

	var lv slog.Level
	if err := lv.UnmarshalText([]byte(*logLevel)); err != nil {
		fatal(fmt.Errorf("bad -log-level %q: %w", *logLevel, err))
	}
	slog.SetDefault(slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lv})))

	// Ctrl-C cancels the run between sweep points instead of killing
	// the process mid-write: completed output stays intact and the exit
	// path reports the interruption.
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	// Experiment drivers and sim.MonteCarlo report completed work into
	// the tracker; on a terminal a printer renders it live.
	tracker := obs.NewTracker()
	ctx = obs.WithProgress(ctx, tracker)
	if *remote != "" {
		peers := splitPeers(*remote)
		if len(peers) == 0 {
			fatal(fmt.Errorf("bad -remote %q: no addresses", *remote))
		}
		ctx = withRemote(ctx, peers, *workers)
	}
	// -trace-out records the whole invocation as one structural trace
	// under a cogsim.run root span and exports it as a Chrome trace on
	// success. The recorder only exists when asked for, so the default
	// run keeps the no-tracing fast path.
	var traceRec *obs.TraceRecorder
	var rootSpan *obs.Span
	if *traceOut != "" {
		traceRec = obs.NewTraceRecorder(4, 1<<16)
		ctx = obs.WithRecorder(ctx, traceRec)
		ctx, rootSpan = obs.StartSpan(ctx, "cogsim.run")
		rootSpan.SetAttr("id", *id).SetAttr("seed", fmt.Sprint(*seed))
	}

	showProgress := *progress == "on" || (*progress == "auto" && obs.IsTerminal(os.Stderr))
	watch := func(label string) (stop func()) {
		if !showProgress {
			return func() {}
		}
		return obs.StartProgressPrinter(os.Stderr, label, tracker, 0)
	}

	render := func(rep *experiments.Report) (string, error) {
		if *plot {
			return rep.Plot(64, 18, *logY)
		}
		return rep.Format(*format)
	}

	switch {
	case *list:
		fmt.Println(strings.Join(experiments.IDs(), "\n"))
	case *campSpec != "":
		report, err := runCampaign(ctx, *campSpec, *dataDir, *workers, showProgress)
		if err != nil {
			fatal(err)
		}
		fmt.Print(report)
	case *all:
		stop := watch("all")
		reps, err := experiments.RunAllCtx(ctx, experiments.Options{Seed: *seed, Quick: *quick, Workers: *workers, Budget: budget})
		stop()
		if err != nil {
			fatal(err)
		}
		for i, r := range reps {
			if i > 0 {
				fmt.Println()
			}
			out, err := render(r)
			if err != nil {
				fatal(err)
			}
			fmt.Print(out)
		}
	case *id != "" && *server != "":
		if err := waitServerHealthy(ctx, *server, 5*time.Second); err != nil {
			fatal(err)
		}
		stop := watch(*id)
		report, err := runViaServer(ctx, *server, *tenantID,
			service.Request{ID: *id, Seed: *seed, Quick: *quick, Params: budgetParams(budget)}, tracker)
		stop()
		if err != nil {
			fatal(err)
		}
		fmt.Print(report)
	case *id != "":
		stop := watch(*id)
		rep, err := experiments.RunCtx(ctx, *id, experiments.Options{Seed: *seed, Quick: *quick, Workers: *workers, Budget: budget})
		stop()
		if err != nil {
			fatal(err)
		}
		out, err := render(rep)
		if err != nil {
			fatal(err)
		}
		fmt.Print(out)
	default:
		fmt.Fprintln(os.Stderr, "cogsim: need -id, -all, -list or -campaign")
		flag.Usage()
		os.Exit(2)
	}

	if traceRec != nil {
		if err := writeTrace(traceRec, rootSpan, *traceOut); err != nil {
			fatal(fmt.Errorf("writing trace: %w", err))
		}
		fmt.Fprintf(os.Stderr, "cogsim: trace written to %s\n", *traceOut)
	}
}

// budgetParams encodes an adaptive budget as request params for -server
// submissions; the server decodes them with service.BudgetFromParams. A
// disabled budget returns nil so the request matches pre-adaptive cache
// keys exactly.
func budgetParams(b adaptive.Budget) map[string]string {
	if !b.Enabled() {
		return nil
	}
	p := map[string]string{
		"target_ci":  fmt.Sprintf("%g", b.TargetRelCI),
		"max_trials": fmt.Sprintf("%d", b.MaxTrials),
	}
	if b.MinTrials > 0 {
		p["min_trials"] = fmt.Sprintf("%d", b.MinTrials)
	}
	return p
}

// writeTrace ends the root span and exports the invocation's trace as
// Chrome trace_event JSON.
func writeTrace(rec *obs.TraceRecorder, root *obs.Span, path string) error {
	root.End()
	tr, ok := rec.Trace(root.TraceID())
	if !ok {
		return fmt.Errorf("no spans recorded")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteChromeTrace(f, tr); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	if errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "cogsim: interrupted")
		os.Exit(130)
	}
	fmt.Fprintln(os.Stderr, "cogsim:", err)
	os.Exit(1)
}
