package main

import (
	"context"
	"strings"

	"repro/internal/cluster"
	"repro/internal/sim"
)

// withRemote turns the run into a distributed one: kernel-based
// Monte-Carlo experiments (ext-coopber) shard their chunk ranges across
// the given cogmimod worker nodes over HTTP, while everything else runs
// locally as usual. Results are bit-identical to a local run — the
// chunk-seeded reproducibility contract holds across process
// boundaries — so -remote changes wall-clock time, never output.
// LocalFallback keeps the run alive when every peer is down.
func withRemote(ctx context.Context, peers []string, localWorkers int) context.Context {
	tr := &cluster.HTTPTransport{}
	reg := cluster.NewRegistry(tr, peers...)
	go reg.Run(ctx, 0) // default probe interval
	co := cluster.NewCoordinator(tr, reg, cluster.Config{
		LocalFallback: true,
		LocalWorkers:  localWorkers,
	})
	return sim.WithExecutor(ctx, co)
}

// splitPeers parses the -remote list, dropping empty entries so a
// trailing comma is harmless.
func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
