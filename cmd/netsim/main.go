// Command netsim deploys a random CoMIMONet, prints its d-clusters and
// routing backbone, and estimates the cooperative relay energy of a
// sample route — the Section 2 network model made inspectable.
//
// Usage:
//
//	netsim -nodes 80 -field 400 -range 80 -d 30 -link 250 -seed 3
//
// On a terminal, a live progress line on stderr tracks the pipeline
// stages (deploy, cluster, link, route, cost); -progress on/off
// overrides the terminal detection.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/ebtable"
	"repro/internal/energy"
	"repro/internal/mathx"
	"repro/internal/network"
	"repro/internal/obs"
	"repro/internal/units"
)

func main() {
	var (
		nodes = flag.Int("nodes", 60, "number of SU nodes")
		field = flag.Float64("field", 300, "square field side in metres")
		rng_  = flag.Float64("range", 60, "communication range r in metres")
		d     = flag.Float64("d", 25, "cluster diameter bound d")
		link  = flag.Float64("link", 200, "max cooperative link length D")
		seed  = flag.Int64("seed", 1, "deployment seed")
		ber   = flag.Float64("ber", 0.001, "route BER target")
		prog  = flag.String("progress", "auto", "live progress line on stderr: auto, on or off")
	)
	flag.Parse()

	// Ctrl-C stops cleanly between pipeline stages — deploy, cluster,
	// link, route, cost — so whatever was printed is complete output,
	// never a half-written table.
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	interrupted := func() {
		if ctx.Err() != nil {
			fmt.Fprintln(os.Stderr, "netsim: interrupted")
			os.Exit(130)
		}
	}

	// The pipeline reports its five stages — deploy, cluster, link,
	// route, cost — through a progress tracker; on a terminal a live
	// line on stderr shows how far a large deployment has come.
	tracker := obs.NewTracker()
	tracker.AddTotal(5)
	if *prog == "on" || (*prog == "auto" && obs.IsTerminal(os.Stderr)) {
		stop := obs.StartProgressPrinter(os.Stderr, "netsim", tracker, 0)
		defer stop()
	}

	rng := mathx.NewRand(*seed)
	dep := network.RandomDeployment(rng, *nodes, *field, *field, 1, 10)
	g, err := network.NewGraph(dep, *rng_)
	if err != nil {
		fatal(err)
	}
	tracker.Add(1) // deploy
	cl, err := network.DCluster(g, *d)
	if err != nil {
		fatal(err)
	}
	if err := cl.Validate(); err != nil {
		fatal(err)
	}
	tracker.Add(1) // cluster
	interrupted()
	net, err := network.BuildCoMIMONet(cl, *link)
	if err != nil {
		fatal(err)
	}
	tracker.Add(1) // link

	fmt.Printf("deployment: %d nodes on %gx%g m, r=%g m\n", *nodes, *field, *field, *rng_)
	fmt.Printf("clusters (d=%g m): %d\n", *d, len(cl.Clusters))
	for i := range cl.Clusters {
		c := &cl.Clusters[i]
		fmt.Printf("  cluster %-3d members=%-2d head=%-3d centroid=%v diameter=%.1f m\n",
			c.ID, c.Size(), c.Head, cl.Centroid(c), cl.Diameter(c))
	}
	fmt.Printf("cooperative MIMO links (D<=%g m): %d\n", *link, len(net.Edges))
	for _, e := range net.Edges {
		fmt.Printf("  %d <-> %d  D=%.1f m  %s\n", e.A, e.B, e.D, e.Kind)
	}

	interrupted()
	if len(cl.Clusters) >= 2 {
		src := cl.Clusters[0].ID
		dst := cl.Clusters[len(cl.Clusters)-1].ID
		route := net.Route(src, dst)
		if route == nil {
			fmt.Printf("route %d -> %d: disconnected\n", src, dst)
			return
		}
		tracker.Add(1) // route
		fmt.Printf("backbone route %d -> %d: %v\n", src, dst, route)
		model, err := energy.New(energy.Paper(40e3), ebtable.Analytic{})
		if err != nil {
			fatal(err)
		}
		e, err := net.RouteEnergy(route, coster{model: model, ber: *ber})
		if err != nil {
			fatal(err)
		}
		tracker.Add(1) // cost
		fmt.Printf("estimated cooperative relay energy: %v at BER %g\n", e, *ber)
	}
}

type coster struct {
	model *energy.Model
	ber   float64
}

func (c coster) HopEnergy(mt, mr int, d, D float64) (units.JoulePerBit, error) {
	if d <= 0 {
		d = 0.1
	}
	best, err := c.model.OptimalMIMOB(c.ber, mt, mr, D, nil)
	if err != nil {
		return 0, err
	}
	total := units.JoulePerBit(float64(mt)) * best.Cost.Total()
	rx, err := c.model.MIMORx(best.B)
	if err != nil {
		return 0, err
	}
	total += units.JoulePerBit(float64(mr)) * rx.Total()
	if mt > 1 || mr > 1 {
		lt, err := c.model.LocalTx(c.ber, best.B, d)
		if err != nil {
			return 0, err
		}
		locals := 0
		if mt > 1 {
			locals++
		}
		if mr > 1 {
			locals += mr - 1
		}
		total += units.JoulePerBit(float64(locals)) * lt.Total()
	}
	return total, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "netsim:", err)
	os.Exit(1)
}
