// Command coopsim runs symbol-level cooperative hop simulations
// (Section 2.2 schemes) from the command line.
//
// Usage:
//
//	coopsim -mt 2 -mr 2 -b 1 -snr 10 -bits 200000
//	coopsim -mt 3 -mr 1 -b 2 -snr 12 -local 6
package main

import (
	"flag"
	"fmt"
	"os"

	cogmimo "repro"
)

func main() {
	var (
		mt    = flag.Int("mt", 2, "cooperating transmitters (1..4)")
		mr    = flag.Int("mr", 2, "cooperating receivers (1..4)")
		b     = flag.Int("b", 1, "constellation size in bits per symbol")
		snr   = flag.Float64("snr", 10, "long-haul per-bit SNR in dB")
		local = flag.Float64("local", 0, "intra-cluster per-bit SNR in dB (0 = ideal)")
		bits  = flag.Int("bits", 200000, "information bits to transport")
		seed  = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	cfg := cogmimo.HopConfig{
		TxNodes: *mt, RxNodes: *mr, ConstellationBits: *b,
		SNRPerBitDB: *snr, Bits: *bits, Seed: *seed,
	}
	if *local == 0 {
		cfg.IdealLocal = true
	} else {
		cfg.LocalSNRPerBitDB = *local
	}
	r, err := cogmimo.SimulateHop(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "coopsim:", err)
		os.Exit(1)
	}
	fmt.Printf("scheme            %s (%dx%d, b=%d)\n", r.Scheme, *mt, *mr, *b)
	fmt.Printf("long-haul SNR     %.1f dB per bit\n", *snr)
	if cfg.IdealLocal {
		fmt.Printf("local broadcast   ideal\n")
	} else {
		fmt.Printf("local broadcast   %.1f dB (BER %.3e)\n", *local, r.LocalBER)
	}
	fmt.Printf("measured BER      %.4e\n", r.BER)
	fmt.Printf("closed-form BER   %.4e (ideal local links)\n", r.PredictedBER)
}
