// Command cogmimod serves the paper's experiments as a long-lived
// simulation service: a bounded job queue in front of a worker pool,
// with a content-addressed result cache so identical requests are
// answered in microseconds.
//
// Usage:
//
//	cogmimod -addr :8345 -workers 4 -queue 64 -cache 256
//	cogmimod -data-dir /var/lib/cogmimod -store-max-bytes 268435456
//	cogmimod -log-level debug -log-json -pprof
//	cogmimod -addr :8345 -peers localhost:8346,localhost:8347
//
// With -peers the node becomes a cluster coordinator: kernel-based
// Monte-Carlo experiments shard their chunk ranges across the listed
// worker nodes (each just a plain cogmimod) and merge to results
// bit-identical to a local run; see internal/cluster.
//
// With -data-dir the result cache is backed by a durable
// content-addressed store (internal/store): computed reports survive
// restarts and are served as cache hits, the in-memory LRU is warmed
// from disk at boot, and the campaign endpoints come alive — campaigns
// checkpoint per Monte-Carlo chunk and any campaign interrupted by a
// crash (even SIGKILL) resumes on the next boot, byte-identically; see
// internal/campaign.
//
// The server is multi-tenant: callers identify themselves with the
// X-Tenant-Id header (anonymous requests map to the "default" tenant)
// and jobs are dispatched weighted-fairly across tenants instead of
// global FIFO, so one tenant's backlog cannot starve another. -quota-
// rate/-quota-burst add per-tenant token-bucket admission control;
// over-quota submissions answer 429 with a Retry-After derived from
// that tenant's own budget. Scheduling only reorders jobs — reports
// stay bit-identical regardless of tenancy.
//
// API (JSON; see internal/httpapi):
//
//	POST   /v1/experiments       {"id":"fig6a","seed":1,"quick":true,"wait":true}
//	GET    /v1/experiments       list runnable experiment IDs
//	GET    /v1/jobs/{id}         job state, timestamps and live progress
//	GET    /v1/jobs/{id}/events  server-sent events: progress stream until completion
//	DELETE /v1/jobs/{id}         cancel a job
//	GET    /v1/results/{key}     fetch a cached report by content key
//	POST   /v1/campaigns         submit a campaign spec (requires -data-dir)
//	GET    /v1/campaigns         list campaigns, live and stored
//	GET    /v1/campaigns/{id}    campaign status with per-experiment progress
//	GET    /v1/stats             service counters as JSON
//	GET    /v1/tenants           per-tenant queue/running/weight snapshots
//	POST   /v1/shards            execute a Monte-Carlo chunk range (worker side)
//	GET    /v1/traces/{id}       merged distributed trace; ?format=chrome for
//	                             a chrome://tracing / Perfetto file
//	GET    /debug/traces         recent trace index (id, root, duration)
//	GET    /healthz              liveness probe with queue/tenant/worker detail;
//	                             503 {"status":"draining"} during shutdown
//	GET    /metrics              expvar dump (legacy surface)
//	GET    /metrics/prom         Prometheus text exposition
//	GET    /debug/pprof/         profiling endpoints (with -pprof)
//
// Every response carries an X-Trace-Id header (generated, or echoed
// from the request); the same id tags all log lines of the request and
// of any job it submitted. With -trace-buffer > 0 (the default) the id
// also names a structural trace: request, queue wait, driver and — in
// coordinator mode — per-worker shard spans merge into one timeline
// served by GET /v1/traces/{id}. Jobs slower than -trace-slow get
// their trace pinned against eviction and a warning naming the id.
// A full queue answers 429 with a Retry-After
// hint. SIGINT/SIGTERM drain the server gracefully: in-flight handlers
// get a shutdown grace period and running jobs are cancelled between
// sweep points.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/adaptive"
	"repro/internal/campaign"
	"repro/internal/cluster"
	"repro/internal/httpapi"
	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/tenant"
)

func main() {
	var (
		addr     = flag.String("addr", ":8345", "listen address")
		workers  = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		queue    = flag.Int("queue", 64, "job queue depth before 429s")
		cacheN   = flag.Int("cache", 256, "result cache entries")
		grace    = flag.Duration("grace", 10*time.Second, "shutdown grace period")
		drainFor = flag.Duration("drain", time.Second, "how long /healthz advertises draining (503) before the listener closes")
		logLevel = flag.String("log-level", "info", "log level: debug, info, warn or error")
		logJSON  = flag.Bool("log-json", false, "emit logs as JSON instead of text")
		pprofOn  = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")

		dataDir  = flag.String("data-dir", "", "durable result store directory; empty keeps everything in memory")
		storeMax = flag.Int64("store-max-bytes", 256<<20, "size bound the store GC enforces over unprotected entries (0 = unbounded)")

		quotaRate   = flag.Float64("quota-rate", 0, "per-tenant admission rate in jobs/second (0 = no admission control)")
		quotaBurst  = flag.Int("quota-burst", 0, "per-tenant burst budget (0 = derive from -quota-rate)")
		tenantQueue = flag.Int("tenant-queue", 0, "per-tenant queue bound before 429s (0 = the global -queue bound)")

		traceBuf  = flag.Int("trace-buffer", 256, "traces kept in the in-process recorder ring (0 disables tracing)")
		traceSlow = flag.Duration("trace-slow", 10*time.Second, "pin the trace of any job slower than this (0 = off; needs -trace-buffer > 0)")

		targetCI  = flag.Float64("target-ci", 0, "default adaptive stop for requests without budget params: target relative 95% CI half-width (0 = fixed budgets)")
		maxTrials = flag.Int("max-trials", 0, "default adaptive per-cell trial cap (required with -target-ci)")

		peers      = flag.String("peers", "", "comma-separated worker node addresses; enables coordinator mode")
		shards     = flag.Int("shards", 0, "shards per Monte-Carlo run in coordinator mode (0 = one per ready peer)")
		hedgeAfter = flag.Duration("hedge-after", 0, "re-dispatch straggler shards after this long (0 = off)")
		probeEvery = flag.Duration("probe-interval", 5*time.Second, "peer health probe interval in coordinator mode")
	)
	flag.Parse()

	logger, err := newLogger(*logLevel, *logJSON)
	if err != nil {
		fatal(err)
	}
	slog.SetDefault(logger)

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	// The durable store opens first: corrupted entries are quarantined
	// during open, and everything downstream (cache, campaigns) treats
	// the handle as ready state.
	var st *store.Store
	if *dataDir != "" {
		var err error
		st, err = store.Open(store.Options{Dir: *dataDir, MaxBytes: *storeMax, Logger: logger})
		if err != nil {
			fatal(err)
		}
		defer st.Close()
		stats := st.Stats()
		logger.Info("durable store open",
			"dir", *dataDir, "entries", stats.Entries, "bytes", stats.Bytes,
			"quarantined", stats.Quarantined)
	}

	// In coordinator mode every job's Monte-Carlo work fans out to the
	// peer nodes: the runner attaches a cluster coordinator to the job
	// context, and kernel-based experiments (sim.RunKernelCtx) shard
	// automatically — with bit-identical results, so a coordinator node
	// answers exactly what a standalone one would.
	runner := service.ExperimentRunner
	if *peers != "" {
		addrs := splitPeers(*peers)
		tr := &cluster.HTTPTransport{}
		reg := cluster.NewRegistry(tr, addrs...)
		go reg.Run(ctx, *probeEvery)
		co := cluster.NewCoordinator(tr, reg, cluster.Config{
			Shards:        *shards,
			HedgeAfter:    *hedgeAfter,
			LocalFallback: true,
			LocalWorkers:  *workers,
		})
		runner = func(jctx context.Context, req service.Request) (string, error) {
			return service.ExperimentRunner(sim.WithExecutor(jctx, co), req)
		}
		logger.Info("coordinator mode", "peers", addrs, "shards", *shards, "hedge_after", *hedgeAfter)
	}
	// -target-ci/-max-trials set a node-wide default adaptive budget:
	// requests that carry no budget params run under it, while explicit
	// per-request params always win. The wrapper composes with
	// coordinator mode — the defaulted budget's chunk rounds still shard
	// across peers.
	if *targetCI > 0 {
		def := adaptive.Budget{TargetRelCI: *targetCI, MaxTrials: *maxTrials}
		if *maxTrials <= 0 {
			fatal(fmt.Errorf("-target-ci needs -max-trials to bound the spend"))
		}
		if err := def.Validate(); err != nil {
			fatal(err)
		}
		runner = service.WithDefaultBudget(runner, def)
		logger.Info("default adaptive budget", "target_ci", *targetCI, "max_trials", *maxTrials)
	}

	// The trace recorder is shared by the service (job/driver spans,
	// slow-job pinning) and the HTTP layer (request spans, the
	// /v1/traces endpoints). Nil keeps every span structureless: just
	// the histogram observation, no allocation.
	var recorder *obs.TraceRecorder
	if *traceBuf > 0 {
		recorder = obs.NewTraceRecorder(*traceBuf, 0)
		logger.Info("tracing on", "buffer", *traceBuf, "slow_threshold", *traceSlow)
	}

	svc, err := service.New(service.Config{
		Workers:      *workers,
		QueueDepth:   *queue,
		CacheEntries: *cacheN,
		Runner:       runner,
		KnownIDs:     service.KnownExperimentIDs(),
		Logger:       logger,
		Store:        st,
		Tenants:      tenant.Options{QueueDepth: *tenantQueue},
		Quota:        tenant.Quota{Rate: *quotaRate, Burst: *quotaBurst},
		Recorder:     recorder,
		SlowTrace:    *traceSlow,
	})
	if err != nil {
		fatal(err)
	}
	svc.WarmFromStore()
	svc.Start()
	httpapi.PublishMetrics(svc)
	if *quotaRate > 0 {
		logger.Info("per-tenant quotas on", "rate", *quotaRate, "burst", *quotaBurst)
	}

	// Campaigns need durability for their checkpoints; without -data-dir
	// the endpoints answer 503 instead of pretending to be crash-safe.
	var campaigns *campaign.Manager
	if st != nil {
		campaigns = campaign.NewManager(st, *workers, logger)
		if n := campaigns.ResumeAll(); n > 0 {
			logger.Info("resumed interrupted campaigns", "count", n)
		}
	}

	var draining atomic.Bool
	srv := &http.Server{
		Addr: *addr,
		Handler: httpapi.NewMux(svc, httpapi.Config{
			Logger:       logger,
			Pprof:        *pprofOn,
			Draining:     &draining,
			NodeID:       *addr,
			ShardWorkers: *workers,
			Campaigns:    campaigns,
			Recorder:     recorder,
		}),
		ReadHeaderTimeout: 5 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	logger.Info("listening", "addr", *addr, "pprof", *pprofOn)

	select {
	case <-ctx.Done():
		// Flip health to draining first and keep the listener up for a
		// beat: /healthz must answer 503 {"status":"draining"} so
		// coordinators and load balancers observe the drain and stop
		// routing here before the socket disappears. Shutdown closes
		// listeners immediately, so without this window the 503 would
		// be unreachable in practice.
		draining.Store(true)
		logger.Info("shutting down", "drain_window", *drainFor)
		select {
		case <-time.After(*drainFor):
		case err := <-errCh:
			if !errors.Is(err, http.ErrServerClosed) {
				fatal(err)
			}
		}
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	}

	shutdownCtx, cancelShutdown := context.WithTimeout(context.Background(), *grace)
	defer cancelShutdown()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		logger.Error("shutdown", "error", err)
	}
	if campaigns != nil {
		// Interrupted campaigns keep their durable "running" state and
		// resume on the next boot.
		if err := campaigns.Stop(shutdownCtx); err != nil {
			logger.Error("campaign stop", "error", err)
		}
	}
	if err := svc.Stop(shutdownCtx); err != nil {
		logger.Error("service stop", "error", err)
	}
}

// splitPeers parses the -peers list, dropping empty entries so a
// trailing comma is harmless.
func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// newLogger builds the process logger on stderr at the given level.
func newLogger(level string, asJSON bool) (*slog.Logger, error) {
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q: %w", level, err)
	}
	opts := &slog.HandlerOptions{Level: lv}
	var h slog.Handler
	if asJSON {
		h = slog.NewJSONHandler(os.Stderr, opts)
	} else {
		h = slog.NewTextHandler(os.Stderr, opts)
	}
	return slog.New(h), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cogmimod:", err)
	os.Exit(1)
}
