// Command cogmimod serves the paper's experiments as a long-lived
// simulation service: a bounded job queue in front of a worker pool,
// with a content-addressed result cache so identical requests are
// answered in microseconds.
//
// Usage:
//
//	cogmimod -addr :8345 -workers 4 -queue 64 -cache 256
//
// API (JSON):
//
//	POST   /v1/experiments      {"id":"fig6a","seed":1,"quick":true,"wait":true}
//	GET    /v1/experiments      list runnable experiment IDs
//	GET    /v1/jobs/{id}        job state (queued/running/done/failed/canceled)
//	DELETE /v1/jobs/{id}        cancel a job
//	GET    /v1/results/{key}    fetch a cached report by content key
//	GET    /v1/stats            service counters as JSON
//	GET    /healthz             liveness probe
//	GET    /metrics             expvar dump (includes the service counters)
//
// A full queue answers 429 with a Retry-After hint. SIGINT/SIGTERM
// drain the server gracefully: in-flight handlers get a shutdown grace
// period and running jobs are cancelled between sweep points.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/service"
)

func main() {
	var (
		addr    = flag.String("addr", ":8345", "listen address")
		workers = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		queue   = flag.Int("queue", 64, "job queue depth before 429s")
		cacheN  = flag.Int("cache", 256, "result cache entries")
		grace   = flag.Duration("grace", 10*time.Second, "shutdown grace period")
	)
	flag.Parse()

	svc, err := service.New(service.Config{
		Workers:      *workers,
		QueueDepth:   *queue,
		CacheEntries: *cacheN,
		Runner:       service.ExperimentRunner,
		KnownIDs:     service.KnownExperimentIDs(),
	})
	if err != nil {
		fatal(err)
	}
	svc.Start()
	publishMetrics(svc)

	srv := &http.Server{
		Addr:              *addr,
		Handler:           newMux(svc),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "cogmimod: listening on %s\n", *addr)

	select {
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "cogmimod: shutting down")
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	}

	shutdownCtx, cancelShutdown := context.WithTimeout(context.Background(), *grace)
	defer cancelShutdown()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintln(os.Stderr, "cogmimod: shutdown:", err)
	}
	if err := svc.Stop(shutdownCtx); err != nil {
		fmt.Fprintln(os.Stderr, "cogmimod: service stop:", err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cogmimod:", err)
	os.Exit(1)
}
