// Command cogmimod serves the paper's experiments as a long-lived
// simulation service: a bounded job queue in front of a worker pool,
// with a content-addressed result cache so identical requests are
// answered in microseconds.
//
// Usage:
//
//	cogmimod -addr :8345 -workers 4 -queue 64 -cache 256
//	cogmimod -log-level debug -log-json -pprof
//
// API (JSON):
//
//	POST   /v1/experiments      {"id":"fig6a","seed":1,"quick":true,"wait":true}
//	GET    /v1/experiments      list runnable experiment IDs
//	GET    /v1/jobs/{id}        job state, timestamps and live progress
//	DELETE /v1/jobs/{id}        cancel a job
//	GET    /v1/results/{key}    fetch a cached report by content key
//	GET    /v1/stats            service counters as JSON
//	GET    /healthz             liveness probe
//	GET    /metrics             expvar dump (legacy surface)
//	GET    /metrics/prom        Prometheus text exposition
//	GET    /debug/pprof/        profiling endpoints (with -pprof)
//
// Every response carries an X-Trace-Id header (generated, or echoed
// from the request); the same id tags all log lines of the request and
// of any job it submitted. A full queue answers 429 with a Retry-After
// hint. SIGINT/SIGTERM drain the server gracefully: in-flight handlers
// get a shutdown grace period and running jobs are cancelled between
// sweep points.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/service"
)

func main() {
	var (
		addr     = flag.String("addr", ":8345", "listen address")
		workers  = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		queue    = flag.Int("queue", 64, "job queue depth before 429s")
		cacheN   = flag.Int("cache", 256, "result cache entries")
		grace    = flag.Duration("grace", 10*time.Second, "shutdown grace period")
		logLevel = flag.String("log-level", "info", "log level: debug, info, warn or error")
		logJSON  = flag.Bool("log-json", false, "emit logs as JSON instead of text")
		pprofOn  = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	)
	flag.Parse()

	logger, err := newLogger(*logLevel, *logJSON)
	if err != nil {
		fatal(err)
	}
	slog.SetDefault(logger)

	svc, err := service.New(service.Config{
		Workers:      *workers,
		QueueDepth:   *queue,
		CacheEntries: *cacheN,
		Runner:       service.ExperimentRunner,
		KnownIDs:     service.KnownExperimentIDs(),
		Logger:       logger,
	})
	if err != nil {
		fatal(err)
	}
	svc.Start()
	publishMetrics(svc)

	srv := &http.Server{
		Addr:              *addr,
		Handler:           newMux(svc, muxConfig{Logger: logger, Pprof: *pprofOn}),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	logger.Info("listening", "addr", *addr, "pprof", *pprofOn)

	select {
	case <-ctx.Done():
		logger.Info("shutting down")
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	}

	shutdownCtx, cancelShutdown := context.WithTimeout(context.Background(), *grace)
	defer cancelShutdown()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		logger.Error("shutdown", "error", err)
	}
	if err := svc.Stop(shutdownCtx); err != nil {
		logger.Error("service stop", "error", err)
	}
}

// newLogger builds the process logger on stderr at the given level.
func newLogger(level string, asJSON bool) (*slog.Logger, error) {
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q: %w", level, err)
	}
	opts := &slog.HandlerOptions{Level: lv}
	var h slog.Handler
	if asJSON {
		h = slog.NewJSONHandler(os.Stderr, opts)
	} else {
		h = slog.NewTextHandler(os.Stderr, opts)
	}
	return slog.New(h), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cogmimod:", err)
	os.Exit(1)
}
