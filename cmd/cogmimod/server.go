package main

import (
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"net/http"
	"strings"
	"time"

	"repro/internal/service"
)

// submitRequest is the POST /v1/experiments body: a service.Request
// plus transport-level options.
type submitRequest struct {
	service.Request
	// Wait blocks the response until the job finishes; cancellation of
	// the HTTP request (client disconnect, timeout) cancels the job.
	Wait bool `json:"wait,omitempty"`
}

// jobResponse is the JSON envelope for job state; Report is attached
// once the job is done.
type jobResponse struct {
	service.JobView
	Report string `json:"report,omitempty"`
}

// newMux wires the service into the v1 JSON API.
func newMux(svc *service.Service) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/experiments", func(w http.ResponseWriter, r *http.Request) {
		var req submitRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
			return
		}
		if strings.TrimSpace(req.ID) == "" {
			httpError(w, http.StatusBadRequest, "missing experiment id")
			return
		}
		jv, err := svc.Submit(req.Request)
		switch {
		case errors.Is(err, service.ErrUnknownExperiment):
			httpError(w, http.StatusBadRequest, err.Error())
			return
		case errors.Is(err, service.ErrQueueFull):
			w.Header().Set("Retry-After", "1")
			httpError(w, http.StatusTooManyRequests, err.Error())
			return
		case errors.Is(err, service.ErrStopped):
			httpError(w, http.StatusServiceUnavailable, err.Error())
			return
		case err != nil:
			httpError(w, http.StatusInternalServerError, err.Error())
			return
		}
		if !req.Wait {
			writeJSON(w, http.StatusAccepted, jobResponse{JobView: jv})
			return
		}
		done, err := svc.Wait(r.Context(), jv.ID)
		if err != nil {
			// The waiting client went away: release the worker.
			svc.Cancel(jv.ID)
			httpError(w, http.StatusServiceUnavailable, "request cancelled while waiting")
			return
		}
		writeJSON(w, statusFor(done), withReport(svc, done))
	})

	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		jv, err := svc.Job(r.PathValue("id"))
		if err != nil {
			httpError(w, http.StatusNotFound, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, withReport(svc, jv))
	})

	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		jv, err := svc.Cancel(r.PathValue("id"))
		if err != nil {
			httpError(w, http.StatusNotFound, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, jobResponse{JobView: jv})
	})

	mux.HandleFunc("GET /v1/results/{key}", func(w http.ResponseWriter, r *http.Request) {
		key := service.Key(r.PathValue("key"))
		report, ok := svc.Result(key)
		if !ok {
			httpError(w, http.StatusNotFound, "no result for key")
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"key": string(key), "report": report})
	})

	mux.HandleFunc("GET /v1/experiments", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"experiments": service.KnownExperimentIDs()})
	})

	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, svc.Stats())
	})

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})

	mux.Handle("GET /metrics", expvar.Handler())
	return mux
}

// withReport attaches the cached report to terminal done jobs.
func withReport(svc *service.Service, jv service.JobView) jobResponse {
	resp := jobResponse{JobView: jv}
	if jv.State == service.StateDone {
		if report, ok := svc.Result(jv.Key); ok {
			resp.Report = report
		}
	}
	return resp
}

// statusFor maps a terminal job state to a response code.
func statusFor(jv service.JobView) int {
	switch jv.State {
	case service.StateDone:
		return http.StatusOK
	case service.StateCanceled:
		return http.StatusConflict
	default:
		return http.StatusInternalServerError
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

// uptime publishes process start time under expvar for /metrics.
func publishMetrics(svc *service.Service) {
	start := time.Now()
	expvar.Publish("cogmimod_uptime_seconds", expvar.Func(func() any {
		return time.Since(start).Seconds()
	}))
	expvar.Publish("cogmimod", expvar.Func(func() any {
		return svc.Stats()
	}))
}
