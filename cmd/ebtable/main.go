// Command ebtable precomputes and inspects the ēb(p, b, mt, mr) table —
// the "Preprocessing" step of Algorithms 1 and 2 that every SU node
// loads before choosing constellation sizes.
//
// Usage:
//
//	ebtable -build -out eb.gob                 # analytic solver, paper grid
//	ebtable -build -solver mc -samples 50000 -out eb.gob
//	ebtable -show eb.gob                       # dump the stored cells
//	ebtable -query -p 0.001 -b 2 -mt 2 -mr 3   # one live solve
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/ebtable"
)

func main() {
	var (
		build   = flag.Bool("build", false, "build a table over the paper grid")
		show    = flag.String("show", "", "print the cells of a stored table")
		query   = flag.Bool("query", false, "solve one ēb value")
		out     = flag.String("out", "ebtable.gob", "output path for -build")
		solver  = flag.String("solver", "analytic", "solver: analytic or mc")
		samples = flag.Int("samples", 20000, "Monte-Carlo channel samples")
		seed    = flag.Int64("seed", 1, "Monte-Carlo seed")
		conv    = flag.String("conv", "paper", "gamma_b convention: paper or array")
		p       = flag.Float64("p", 0.001, "target BER for -query")
		b       = flag.Int("b", 2, "constellation size for -query")
		mt      = flag.Int("mt", 1, "transmit nodes for -query")
		mr      = flag.Int("mr", 1, "receive nodes for -query")
	)
	flag.Parse()

	convention := ebtable.ConvPaper
	switch *conv {
	case "paper":
	case "array":
		convention = ebtable.ConvArray
	default:
		fatal(fmt.Errorf("unknown convention %q", *conv))
	}
	var s ebtable.Solver
	switch *solver {
	case "analytic":
		s = ebtable.Analytic{Convention: convention}
	case "mc":
		s = &ebtable.MonteCarlo{Samples: *samples, Seed: *seed, Convention: convention}
	default:
		fatal(fmt.Errorf("unknown solver %q", *solver))
	}

	switch {
	case *build:
		tab, err := ebtable.Build(s, ebtable.DefaultGrid())
		if err != nil {
			fatal(err)
		}
		if err := tab.SaveFile(*out); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d cells to %s\n", tab.Len(), *out)
	case *show != "":
		tab, err := ebtable.LoadFile(*show)
		if err != nil {
			fatal(err)
		}
		keys := make([]ebtable.Key, 0, tab.Len())
		for k := range tab.Vals {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			a, b := keys[i], keys[j]
			if a.PIdx != b.PIdx {
				return a.PIdx < b.PIdx
			}
			if a.B != b.B {
				return a.B < b.B
			}
			if a.Mt != b.Mt {
				return a.Mt < b.Mt
			}
			return a.Mr < b.Mr
		})
		for _, k := range keys {
			fmt.Printf("p=%-7g b=%-2d mt=%d mr=%d  ēb=%.4e J\n",
				tab.Grid.Ps[k.PIdx], k.B, k.Mt, k.Mr, tab.Vals[k])
		}
	case *query:
		eb, err := s.EbBar(*p, *b, *mt, *mr)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("ēb(p=%g, b=%d, %dx%d) = %.4e J\n", *p, *b, *mt, *mr, eb)
	default:
		fmt.Fprintln(os.Stderr, "ebtable: need -build, -show or -query")
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ebtable:", err)
	os.Exit(1)
}
