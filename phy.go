package cogmimo

import (
	"fmt"
	"math"

	"repro/internal/cognitive"
	"repro/internal/coop"
	"repro/internal/sensing"
)

// HopConfig drives a symbol-level simulation of one cooperative hop
// (the Section 2.2 MIMO/MISO/SIMO schemes): Step 1 intra-cluster
// broadcast, Step 2 long-haul space-time-coded transmission, Step 3
// sample collection at the receive head.
type HopConfig struct {
	// TxNodes and RxNodes are mt and mr (1..4).
	TxNodes, RxNodes int
	// ConstellationBits is b.
	ConstellationBits int
	// SNRPerBitDB is the long-haul mean per-bit SNR in dB.
	SNRPerBitDB float64
	// LocalSNRPerBitDB is the intra-cluster SNR in dB; set Ideal to skip
	// local errors entirely.
	LocalSNRPerBitDB float64
	// IdealLocal disables Step 1 corruption.
	IdealLocal bool
	// Bits to transport.
	Bits int
	// Seed drives the run.
	Seed int64
}

// HopResult reports the measured rates.
type HopResult struct {
	// Scheme is SISO/MISO/SIMO/MIMO.
	Scheme string
	// BER is the end-to-end bit error rate.
	BER float64
	// LocalBER is the Step 1 broadcast error rate.
	LocalBER float64
	// PredictedBER is the closed-form eq. (5)/(6) average for ideal
	// local links (code rate folded in).
	PredictedBER float64
}

// SimulateHop transports bits through one cooperative hop.
func SimulateHop(cfg HopConfig) (HopResult, error) {
	c := coop.Config{
		Mt: cfg.TxNodes, Mr: cfg.RxNodes,
		B:         cfg.ConstellationBits,
		SNRPerBit: dbToLinear(cfg.SNRPerBitDB),
		Bits:      cfg.Bits,
		Seed:      cfg.Seed,
	}
	if !cfg.IdealLocal {
		c.LocalSNRPerBit = dbToLinear(cfg.LocalSNRPerBitDB)
	}
	r, err := coop.Run(c)
	if err != nil {
		return HopResult{}, err
	}
	return HopResult{
		Scheme:       r.Scheme,
		BER:          r.BER,
		LocalBER:     r.LocalBER,
		PredictedBER: coop.PredictBER(c),
	}, nil
}

func dbToLinear(db float64) float64 {
	return math.Pow(10, db/10)
}

// SensingConfig designs a cooperative energy-detection stage.
type SensingConfig struct {
	// Samples is the sensing window length.
	Samples int
	// TargetPfa is the per-SU false-alarm probability.
	TargetPfa float64
	// Sensors is the number of cooperating SUs.
	Sensors int
	// Fusion picks the decision rule: "or", "and" or "majority".
	Fusion string
}

// SensingDesign reports the operating characteristics of a designed
// cooperative detector.
type SensingDesign struct {
	// Threshold on the normalised energy statistic.
	Threshold float64
	// SinglePd and FusedPd give detection probabilities at the queried
	// SNR for one SU and after fusion.
	SinglePd, FusedPd float64
	// FusedPfa is the false-alarm probability after fusion.
	FusedPfa float64
}

// DesignSensing sizes an energy detector and reports its cooperative
// operating point at the given primary per-sample SNR (dB).
func DesignSensing(cfg SensingConfig, primarySNRDB float64) (SensingDesign, error) {
	det, err := sensing.NewDetectorForPfa(cfg.Samples, cfg.TargetPfa)
	if err != nil {
		return SensingDesign{}, err
	}
	rule, err := fusionRule(cfg.Fusion)
	if err != nil {
		return SensingDesign{}, err
	}
	pd := det.Pd(dbToLinear(primarySNRDB))
	fusedPd, err := sensing.CooperativePd(rule, cfg.Sensors, pd)
	if err != nil {
		return SensingDesign{}, err
	}
	fusedPfa, err := sensing.CooperativePd(rule, cfg.Sensors, det.Pfa())
	if err != nil {
		return SensingDesign{}, err
	}
	return SensingDesign{
		Threshold: det.Threshold,
		SinglePd:  pd,
		FusedPd:   fusedPd,
		FusedPfa:  fusedPfa,
	}, nil
}

// CognitiveCycleConfig drives an end-to-end interweave run: primary
// users come and go on several channels; the secondary cluster senses,
// transmits on idle spectrum, and vacates when the primary returns.
type CognitiveCycleConfig struct {
	// Channels is the number of primary bands.
	Channels int
	// PUDutyCycle is the stationary busy fraction of each primary.
	PUDutyCycle float64
	// PUHoldS is the mean busy holding time in seconds.
	PUHoldS float64
	// SensePeriodS is the sensing cadence.
	SensePeriodS float64
	// Sensing sizes the cooperative detector.
	Sensing SensingConfig
	// PrimarySNRDB is the primary's per-sample SNR at the sensors.
	PrimarySNRDB float64
	// FrameTimeS is one secondary frame's airtime.
	FrameTimeS float64
	// HorizonS is the simulated duration.
	HorizonS float64
	// Blind disables sensing (the no-cognition baseline).
	Blind bool
	// Seed drives the run.
	Seed int64
}

// CognitiveCycleResult reports a run.
type CognitiveCycleResult struct {
	// Utilization is the secondary airtime fraction.
	Utilization float64
	// CollisionRate is the fraction of secondary frames that landed on
	// a busy primary.
	CollisionRate float64
	// FramesSent counts transmissions.
	FramesSent int
}

// RunCognitiveCycle executes the interweave sense-transmit-vacate loop.
func RunCognitiveCycle(cfg CognitiveCycleConfig) (CognitiveCycleResult, error) {
	if cfg.PUDutyCycle <= 0 || cfg.PUDutyCycle >= 1 {
		return CognitiveCycleResult{}, fmt.Errorf("cogmimo: duty cycle %g outside (0, 1)", cfg.PUDutyCycle)
	}
	if cfg.PUHoldS <= 0 {
		return CognitiveCycleResult{}, fmt.Errorf("cogmimo: PU hold time %g must be positive", cfg.PUHoldS)
	}
	rule, err := fusionRule(cfg.Sensing.Fusion)
	if err != nil {
		return CognitiveCycleResult{}, err
	}
	meanBusy := cfg.PUHoldS
	meanIdle := meanBusy * (1 - cfg.PUDutyCycle) / cfg.PUDutyCycle
	r, err := cognitive.Run(cognitive.CycleConfig{
		Channels: cfg.Channels,
		MeanBusy: meanBusy, MeanIdle: meanIdle,
		SensePeriod:  cfg.SensePeriodS,
		SenseSamples: cfg.Sensing.Samples,
		TargetPfa:    cfg.Sensing.TargetPfa,
		Sensors:      cfg.Sensing.Sensors,
		Rule:         rule,
		PUSNR:        dbToLinear(cfg.PrimarySNRDB),
		FrameTime:    cfg.FrameTimeS,
		Horizon:      cfg.HorizonS,
		Blind:        cfg.Blind,
		Seed:         cfg.Seed,
	})
	if err != nil {
		return CognitiveCycleResult{}, err
	}
	return CognitiveCycleResult{
		Utilization:   r.Utilization,
		CollisionRate: r.CollisionRate,
		FramesSent:    r.FramesSent,
	}, nil
}

func fusionRule(name string) (sensing.FusionRule, error) {
	switch name {
	case "", "or":
		return sensing.FusionOR, nil
	case "and":
		return sensing.FusionAND, nil
	case "majority":
		return sensing.FusionMajority, nil
	default:
		return 0, fmt.Errorf("cogmimo: unknown fusion rule %q", name)
	}
}
