# Tier-1 verification plus the race detector. `make verify` is what CI
# and pre-merge checks should run.

.PHONY: verify vet fmt-check build test race bench bench-compare bench-batch metrics-smoke cluster-smoke campaign-smoke loadgen-smoke trace-smoke cellfree-smoke adaptive-smoke

BENCH_DATE := $(shell date +%Y-%m-%d)
BENCH_JSON := BENCH_$(BENCH_DATE).json
# Newest committed artifact other than today's, used as the baseline.
BENCH_BASE := $(lastword $(sort $(filter-out $(BENCH_JSON),$(wildcard BENCH_*.json))))

verify: vet fmt-check build race

vet:
	go vet ./...

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

# Runs the repo-root benchmark suite and records ns/op, B/op and
# allocs/op into BENCH_<date>.json via internal/tools/benchjson.
# Three repetitions per benchmark; benchjson keeps each benchmark's
# fastest repetition, which denoises the short benchmarks enough for
# bench-compare to gate on.
bench:
	go test -run=NONE -bench=. -benchmem -benchtime=100x -count=3 . | go run ./internal/tools/benchjson -o $(BENCH_JSON)

# Re-measures and fails when any benchmark regressed against the newest
# committed BENCH_*.json: ns/op grew by more than 20%, a 0-alloc
# benchmark allocated at all, or allocs/op grew by more than 20%.
# Benchmarks absent from the baseline are reported as "new", never as
# failures; with no baseline at all, today's artifact simply becomes
# the first one.
bench-compare: bench
	@if [ -z "$(BENCH_BASE)" ]; then \
		echo "bench-compare: no baseline BENCH_*.json; $(BENCH_JSON) is the first artifact"; \
	else \
		go run ./internal/tools/benchjson -compare $(BENCH_BASE) $(BENCH_JSON); \
	fi

# Scalar-vs-batched comparison of the cooperative trial engine: runs
# the interleaved min-of-rounds A/B harness over the 1x1/2x2/4x4
# shapes, printing ns/op for both tiers, and fails when the worst
# shape's speedup drops below 2x or the batched tier allocates.
bench-batch:
	go run ./internal/tools/benchbatch

# Boots a cogmimod daemon, scrapes /metrics/prom and checks the core
# metric names are exposed. A cheap end-to-end observability check.
metrics-smoke:
	go run ./internal/tools/metricssmoke

# Runs ext-coopber through a loopback coordinator with 3 workers, kills
# one mid-run, and requires the merged report to match the serial
# golden file byte-for-byte. End-to-end determinism check of
# internal/cluster.
cluster-smoke:
	go run ./internal/tools/clustersmoke

# Serves the full HTTP stack over a 3-worker loopback cluster with one
# induced shard failure, fetches the merged trace from /v1/traces/{id}
# and requires per-worker shard spans, retry evidence, a valid Chrome
# export and a golden-identical report. End-to-end check of
# distributed tracing.
trace-smoke:
	go run ./internal/tools/tracesmoke

# Drives 50 tenants — one with a 10× burst submitted first — through
# the real HTTP stack and fails if the light tenants' p99 queue wait
# exceeds 2× the fair share or 1× the heavy tenant's p99. Also follows
# jobs over SSE and checks progress monotonicity. End-to-end fairness
# check of internal/tenant scheduling.
loadgen-smoke:
	go run ./internal/tools/loadgen/cmd

# Runs ext-cellfree serially — asserting MMSE combining beats MR at
# every SE quantile, an exact seed-sharing invariant — then through a
# 3-worker loopback cluster with one induced death, requiring the
# merged report to match the serial golden byte-for-byte. End-to-end
# check of the cell-free scenario kernels (internal/cellfree).
cellfree-smoke:
	go run ./internal/tools/cellfreesmoke

# Runs one deep-BER point under a Wilson-stopped adaptive budget and
# asserts the CI target is certified, the realized spend is >=10x below
# the fixed budget with a statistically identical answer, and the
# recorded plan trace replays bit-identically both serially and across
# a 3-worker loopback cluster with one worker killed. End-to-end check
# of internal/adaptive.
adaptive-smoke:
	go run ./internal/tools/adaptivesmoke

# Runs a checkpointing campaign in a child process, SIGKILLs it
# mid-experiment, resumes from the durable checkpoints and requires the
# resumed report to match an uninterrupted serial run byte-for-byte.
# End-to-end crash-safety check of internal/store + internal/campaign.
campaign-smoke:
	go run ./internal/tools/campaignsmoke
