# Tier-1 verification plus the race detector. `make verify` is what CI
# and pre-merge checks should run.

.PHONY: verify vet fmt-check build test race bench metrics-smoke

verify: vet fmt-check build race

vet:
	go vet ./...

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

bench:
	go test -bench=. -benchtime=1x ./...

# Boots a cogmimod daemon, scrapes /metrics/prom and checks the core
# metric names are exposed. A cheap end-to-end observability check.
metrics-smoke:
	go run ./internal/tools/metricssmoke
