# Tier-1 verification plus the race detector. `make verify` is what CI
# and pre-merge checks should run.

.PHONY: verify vet build test race bench

verify: vet build race

vet:
	go vet ./...

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

bench:
	go test -bench=. -benchtime=1x ./...
