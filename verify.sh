#!/bin/sh
# verify.sh — the repo's tier-1 gate plus the race detector.
# Usage: ./verify.sh  (or: make verify)
set -eu

echo ">> go vet ./..."
go vet ./...

echo ">> go build ./..."
go build ./...

echo ">> go test -race ./..."
go test -race ./...

echo "verify: ok"
