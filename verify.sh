#!/bin/sh
# verify.sh — the repo's tier-1 gate plus formatting and the race detector.
# Usage: ./verify.sh  (or: make verify)
set -eu

echo ">> go vet ./..."
go vet ./...

echo ">> gofmt -l ."
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo ">> go build ./..."
go build ./...

echo ">> go test -race ./internal/obs ./internal/service ./internal/httpapi"
go test -race ./internal/obs ./internal/service ./internal/httpapi

echo ">> go test -race ./..."
go test -race ./...

echo ">> bench smoke (1 iteration)"
go test -run=NONE -bench=. -benchtime=1x . >/dev/null

echo ">> bench compare (ns/op + allocs/op gate vs committed baseline)"
make bench-compare

echo ">> cluster smoke (loopback coordinator, 3 workers, 1 induced death)"
go run ./internal/tools/clustersmoke

echo ">> trace smoke (distributed trace merge, retry evidence, chrome export)"
go run ./internal/tools/tracesmoke

echo ">> cellfree smoke (MMSE >= MR per quantile, distributed golden identity)"
go run ./internal/tools/cellfreesmoke

echo ">> adaptive smoke (CI target, >=10x trial savings, replay identity)"
go run ./internal/tools/adaptivesmoke

echo ">> campaign smoke (SIGKILL mid-experiment, resume from checkpoints)"
go run ./internal/tools/campaignsmoke

echo ">> loadgen smoke (50 tenants, one 10x-heavier, fairness + SSE)"
go run ./internal/tools/loadgen/cmd

echo "verify: ok"
