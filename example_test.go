package cogmimo_test

import (
	"fmt"
	"log"

	cogmimo "repro"
)

// ExampleSystem_EbBar shows the quantity the whole paper builds on: the
// per-bit receive energy an mt-by-mr cooperative link needs for a BER
// target, and how dramatically cooperation reduces it.
func ExampleSystem_EbBar() {
	sys, err := cogmimo.NewSystem(cogmimo.SystemConfig{BandwidthHz: 40e3})
	if err != nil {
		log.Fatal(err)
	}
	siso, _ := sys.EbBar(0.001, 2, 1, 1)
	mimo, _ := sys.EbBar(0.001, 2, 2, 3)
	fmt.Printf("SISO needs %.0fx the energy of a 2x3 cooperative link\n", siso/mimo)
	// Output:
	// SISO needs 97x the energy of a 2x3 cooperative link
}

// ExampleSystem_AnalyzeOverlay reproduces the Section 6.1 relay
// placement question for the paper's worked point.
func ExampleSystem_AnalyzeOverlay() {
	sys, err := cogmimo.NewSystem(cogmimo.SystemConfig{BandwidthHz: 40e3})
	if err != nil {
		log.Fatal(err)
	}
	r, _ := sys.AnalyzeOverlay(cogmimo.OverlayScenario{
		PrimarySeparationM: 250, Relays: 3,
		DirectBER: 0.005, RelayBER: 0.0005,
	})
	fmt.Printf("3 relays serve a 250 m primary pair from %.0f m (Pt) and %.0f m (Pr)\n",
		r.MaxDistToTxM, r.MaxDistToRxM)
	// Output:
	// 3 relays serve a 250 m primary pair from 721 m (Pt) and 671 m (Pr)
}

// ExampleSystem_AnalyzeUnderlay shows the Algorithm 2 energy ledger of
// one cooperative hop.
func ExampleSystem_AnalyzeUnderlay() {
	sys, err := cogmimo.NewSystem(cogmimo.SystemConfig{BandwidthHz: 40e3})
	if err != nil {
		log.Fatal(err)
	}
	r, _ := sys.AnalyzeUnderlay(cogmimo.UnderlayScenario{
		TxNodes: 2, RxNodes: 3, ClusterSpanM: 1,
		HopDistanceM: 200, TargetBER: 0.001,
	})
	fmt.Printf("optimal b=%d, %.1f%% of the SISO reference's PA energy\n",
		r.Constellation, 100*r.NoiseFloorMargin)
	// Output:
	// optimal b=1, 1.0% of the SISO reference's PA energy
}
