package cogmimo

import (
	"math"
	"testing"
)

func TestSimulateHop(t *testing.T) {
	r, err := SimulateHop(HopConfig{
		TxNodes: 2, RxNodes: 2, ConstellationBits: 1,
		SNRPerBitDB: 6, IdealLocal: true,
		Bits: 150000, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Scheme != "MIMO" {
		t.Errorf("scheme = %s", r.Scheme)
	}
	if math.Abs(r.BER-r.PredictedBER) > 0.2*r.PredictedBER+2e-4 {
		t.Errorf("measured %v vs predicted %v", r.BER, r.PredictedBER)
	}
	if r.LocalBER != 0 {
		t.Errorf("ideal local reported %v", r.LocalBER)
	}
	// Validation errors propagate.
	if _, err := SimulateHop(HopConfig{}); err == nil {
		t.Error("empty config should fail")
	}
}

func TestSimulateHopLocalErrors(t *testing.T) {
	r, err := SimulateHop(HopConfig{
		TxNodes: 3, RxNodes: 1, ConstellationBits: 1,
		SNRPerBitDB: 30, LocalSNRPerBitDB: 2,
		Bits: 60000, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.LocalBER <= 0 {
		t.Errorf("noisy local links reported zero BER")
	}
	if r.BER <= 0 {
		t.Errorf("local errors should leak through: %v", r.BER)
	}
}

func TestDesignSensing(t *testing.T) {
	d, err := DesignSensing(SensingConfig{
		Samples: 400, TargetPfa: 0.05, Sensors: 3, Fusion: "or",
	}, -7)
	if err != nil {
		t.Fatal(err)
	}
	if d.Threshold <= 400 {
		t.Errorf("threshold %v should exceed the noise mean", d.Threshold)
	}
	if !(d.FusedPd > d.SinglePd) {
		t.Errorf("OR fusion should raise Pd: %v vs %v", d.FusedPd, d.SinglePd)
	}
	if !(d.FusedPfa > 0.05) {
		t.Errorf("OR fusion raises Pfa too: %v", d.FusedPfa)
	}
	// Majority keeps Pfa lower than OR.
	m, err := DesignSensing(SensingConfig{
		Samples: 400, TargetPfa: 0.05, Sensors: 3, Fusion: "majority",
	}, -7)
	if err != nil {
		t.Fatal(err)
	}
	if m.FusedPfa >= d.FusedPfa {
		t.Errorf("majority Pfa %v should be below OR %v", m.FusedPfa, d.FusedPfa)
	}
	// Unknown rule and bad params fail.
	if _, err := DesignSensing(SensingConfig{Samples: 100, TargetPfa: 0.05, Sensors: 2, Fusion: "xor"}, 0); err == nil {
		t.Error("unknown fusion should fail")
	}
	if _, err := DesignSensing(SensingConfig{Samples: 0, TargetPfa: 0.05, Sensors: 2}, 0); err == nil {
		t.Error("zero samples should fail")
	}
	if _, err := DesignSensing(SensingConfig{Samples: 100, TargetPfa: 0.05, Sensors: 0}, 0); err == nil {
		t.Error("zero sensors should fail")
	}
}

func TestPlanInterweaveTransmission(t *testing.T) {
	s := newSys(t)
	p, err := s.PlanInterweaveTransmission(4, 2, 1, 200, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if p.Pairs != 2 || p.Receivers != 2 {
		t.Errorf("effective link %dx%d", p.Pairs, p.Receivers)
	}
	if p.TotalPAJPerBit <= 0 || p.Constellation < 1 {
		t.Errorf("incomplete plan %+v", p)
	}
	if p.NullOverheadRatio <= 1 {
		t.Errorf("null overhead %v should exceed 1", p.NullOverheadRatio)
	}
	if _, err := s.PlanInterweaveTransmission(1, 2, 1, 200, 0.001); err == nil {
		t.Error("single transmitter cannot pair")
	}
}

func TestRunCognitiveCycle(t *testing.T) {
	cfg := CognitiveCycleConfig{
		Channels: 3, PUDutyCycle: 0.4, PUHoldS: 2,
		SensePeriodS: 0.5,
		Sensing:      SensingConfig{Samples: 600, TargetPfa: 0.05, Sensors: 3, Fusion: "or"},
		PrimarySNRDB: -3,
		FrameTimeS:   0.05,
		HorizonS:     800,
		Seed:         2,
	}
	sensed, err := RunCognitiveCycle(cfg)
	if err != nil {
		t.Fatal(err)
	}
	blind := cfg
	blind.Blind = true
	blindRes, err := RunCognitiveCycle(blind)
	if err != nil {
		t.Fatal(err)
	}
	if sensed.FramesSent == 0 {
		t.Fatal("sensed run sent nothing")
	}
	if sensed.CollisionRate >= blindRes.CollisionRate/2 {
		t.Errorf("sensing should protect the PU: %v vs blind %v",
			sensed.CollisionRate, blindRes.CollisionRate)
	}
	// Validation.
	bad := cfg
	bad.PUDutyCycle = 0
	if _, err := RunCognitiveCycle(bad); err == nil {
		t.Error("zero duty cycle should fail")
	}
	bad = cfg
	bad.PUHoldS = 0
	if _, err := RunCognitiveCycle(bad); err == nil {
		t.Error("zero hold should fail")
	}
	bad = cfg
	bad.Sensing.Fusion = "xor"
	if _, err := RunCognitiveCycle(bad); err == nil {
		t.Error("unknown fusion should fail")
	}
}
