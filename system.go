package cogmimo

import (
	"fmt"

	"repro/internal/ebtable"
	"repro/internal/energy"
	"repro/internal/interweave"
	"repro/internal/mathx"
	"repro/internal/overlay"
	"repro/internal/underlay"
)

// SystemConfig selects the radio constants of a System.
type SystemConfig struct {
	// BandwidthHz is the system bandwidth B (the paper sweeps 10-100 kHz).
	BandwidthHz float64
	// EbSolver selects how ēb(p, b, mt, mr) is obtained.
	EbSolver EbSolverKind
	// MonteCarloSamples sizes the sampling when EbSolver is
	// EbMonteCarlo; 0 means 20000.
	MonteCarloSamples int
	// Seed drives the Monte-Carlo solver.
	Seed int64
	// ArrayConvention switches gamma_b to the mt-division-free form the
	// paper's Figure 6 evaluation used (see DESIGN.md); leave false for
	// the printed equations.
	ArrayConvention bool
}

// EbSolverKind names an ēb solver.
type EbSolverKind int

// Solvers.
const (
	// EbAnalytic solves the exact Rayleigh closed form (default).
	EbAnalytic EbSolverKind = iota
	// EbMonteCarlo averages sampled channels, as the paper's
	// preprocessing describes.
	EbMonteCarlo
)

// System owns an energy model and answers the paper's three paradigm
// analyses.
type System struct {
	model *energy.Model
}

// NewSystem builds a System with the paper's Section 2.3 constants.
func NewSystem(cfg SystemConfig) (*System, error) {
	if cfg.BandwidthHz <= 0 {
		return nil, fmt.Errorf("cogmimo: bandwidth %g Hz must be positive", cfg.BandwidthHz)
	}
	conv := ebtable.ConvPaper
	if cfg.ArrayConvention {
		conv = ebtable.ConvArray
	}
	var provider energy.EbProvider
	switch cfg.EbSolver {
	case EbAnalytic:
		provider = ebtable.Analytic{Convention: conv}
	case EbMonteCarlo:
		provider = &ebtable.MonteCarlo{
			Samples:    cfg.MonteCarloSamples,
			Seed:       cfg.Seed,
			Convention: conv,
		}
	default:
		return nil, fmt.Errorf("cogmimo: unknown ēb solver %d", cfg.EbSolver)
	}
	model, err := energy.New(energy.Paper(unitsHertz(cfg.BandwidthHz)), provider)
	if err != nil {
		return nil, err
	}
	return &System{model: model}, nil
}

// OverlayScenario describes an Algorithm 1 relay deployment.
type OverlayScenario struct {
	// PrimarySeparationM is D1, the Pt-Pr distance in metres.
	PrimarySeparationM float64
	// Relays is m, the number of cooperating SUs.
	Relays int
	// DirectBER is the primary link's own target (paper: 0.005).
	DirectBER float64
	// RelayBER is the relayed path's target (paper: 0.0005).
	RelayBER float64
}

// OverlayResult reports the Section 6.1 distances.
type OverlayResult struct {
	// DirectEnergyJPerBit is E1, the per-bit budget of the direct link.
	DirectEnergyJPerBit float64
	// MaxDistToTxM is D2: how far the SUs can sit from Pt.
	MaxDistToTxM float64
	// MaxDistToRxM is D3: how far the SUs can sit from Pr.
	MaxDistToRxM float64
	// Constellations chosen per leg: direct, SIMO, MISO.
	DirectB, SIMOB, MISOB int
}

// AnalyzeOverlay runs the overlay relay analysis.
func (s *System) AnalyzeOverlay(sc OverlayScenario) (OverlayResult, error) {
	a, err := overlay.Analyze(overlay.Config{
		Model: s.model, M: sc.Relays,
		DirectBER: sc.DirectBER, RelayBER: sc.RelayBER,
	}, sc.PrimarySeparationM)
	if err != nil {
		return OverlayResult{}, err
	}
	return OverlayResult{
		DirectEnergyJPerBit: float64(a.E1),
		MaxDistToTxM:        a.D2,
		MaxDistToRxM:        a.D3,
		DirectB:             a.BDirect,
		SIMOB:               a.B2,
		MISOB:               a.B3,
	}, nil
}

// UnderlayScenario describes an Algorithm 2 cooperative hop.
type UnderlayScenario struct {
	// TxNodes and RxNodes are mt and mr.
	TxNodes, RxNodes int
	// ClusterSpanM is the intra-cluster distance d.
	ClusterSpanM float64
	// HopDistanceM is the long-haul link length D.
	HopDistanceM float64
	// TargetBER is p_b.
	TargetBER float64
}

// UnderlayResult reports the Algorithm 2 energy accounting.
type UnderlayResult struct {
	// Constellation is the optimal b.
	Constellation int
	// TotalPAJPerBit is the summed PA energy of all SUs per bit.
	TotalPAJPerBit float64
	// PeakPAJPerBit is the largest instantaneous PA energy (the
	// Section 4 constraint E_PA).
	PeakPAJPerBit float64
	// TotalJPerBit includes circuit energy.
	TotalJPerBit float64
	// NoiseFloorMargin is the ratio to the SISO primary reference;
	// well below 1 satisfies the underlay constraint.
	NoiseFloorMargin float64
}

// AnalyzeUnderlay runs the underlay hop analysis.
func (s *System) AnalyzeUnderlay(sc UnderlayScenario) (UnderlayResult, error) {
	cfg := underlay.Config{
		Model: s.model, Mt: sc.TxNodes, Mr: sc.RxNodes,
		IntraD: sc.ClusterSpanM, LinkD: sc.HopDistanceM, BER: sc.TargetBER,
	}
	r, err := underlay.Analyze(cfg)
	if err != nil {
		return UnderlayResult{}, err
	}
	out := UnderlayResult{
		Constellation:  r.B,
		TotalPAJPerBit: float64(r.TotalPA),
		PeakPAJPerBit:  float64(r.PeakPA),
		TotalJPerBit:   float64(r.TotalEnergy),
	}
	if sc.TxNodes > 1 || sc.RxNodes > 1 {
		m, err := underlay.NoiseFloorMargin(cfg, r)
		if err != nil {
			return UnderlayResult{}, err
		}
		out.NoiseFloorMargin = m
	} else {
		out.NoiseFloorMargin = 1
	}
	return out, nil
}

// InterweaveScenario describes an Algorithm 3 trial.
type InterweaveScenario struct {
	// PairSpacingM separates the two transmitters (paper: 15 m with
	// wavelength 2x that, i.e. r = w/2).
	PairSpacingM float64
	// WavelengthM is the carrier wavelength.
	WavelengthM float64
	// ReceiverDistM places the secondary receiver broadside.
	ReceiverDistM float64
	// CandidatePUs scatters this many primary receivers (paper: 20).
	CandidatePUs int
	// PUDiscRadiusM bounds the scatter disc (paper: 150).
	PUDiscRadiusM float64
	// Trials repeats the experiment (paper: 10).
	Trials int
	// Seed drives placement.
	Seed int64
}

// InterweaveResult reports the Table 1 quantities.
type InterweaveResult struct {
	// MeanAmplitudeAtSr is the pair's amplitude at the secondary
	// receiver relative to SISO = 1 (paper: 1.87).
	MeanAmplitudeAtSr float64
	// WorstResidualAtPr is the largest leaked amplitude at any picked
	// primary receiver (near zero = interference avoided).
	WorstResidualAtPr float64
}

// AnalyzeInterweave runs the pairwise null-steering trials.
func (s *System) AnalyzeInterweave(sc InterweaveScenario) (InterweaveResult, error) {
	cfg := interweave.PaperTrialConfig()
	if sc.PairSpacingM > 0 {
		cfg.St1.Y = sc.PairSpacingM / 2
		cfg.St2.Y = -sc.PairSpacingM / 2
	}
	if sc.WavelengthM > 0 {
		cfg.Wavelength = sc.WavelengthM
	}
	if sc.ReceiverDistM > 0 {
		cfg.Sr.X = sc.ReceiverDistM
	}
	if sc.CandidatePUs > 0 {
		cfg.NumPUs = sc.CandidatePUs
	}
	if sc.PUDiscRadiusM > 0 {
		cfg.PUDiscRadius = sc.PUDiscRadiusM
	}
	trials := sc.Trials
	if trials <= 0 {
		trials = 10
	}
	rows, avg, err := interweave.RunTable(cfg, mathx.NewRand(sc.Seed), trials)
	if err != nil {
		return InterweaveResult{}, err
	}
	worst := 0.0
	for _, r := range rows {
		if r.AmplitudeAtPr > worst {
			worst = r.AmplitudeAtPr
		}
	}
	return InterweaveResult{MeanAmplitudeAtSr: avg, WorstResidualAtPr: worst}, nil
}

// InterweavePlan sizes Algorithm 3's data phase: mt transmitters pair
// into null-steering couples and run Algorithm 2 over the effective
// floor(mt/2)-by-mr link. NullOverheadRatio quantifies the energy cost
// of the interference protection relative to transmitting unpaired.
type InterweavePlan struct {
	Pairs, Receivers  int
	Constellation     int
	TotalPAJPerBit    float64
	NullOverheadRatio float64
}

// PlanInterweaveTransmission runs the interweave data-phase sizing.
func (s *System) PlanInterweaveTransmission(txNodes, rxNodes int, clusterSpanM, hopDistanceM, targetBER float64) (InterweavePlan, error) {
	p, err := interweave.PlanTransmission(s.model, txNodes, rxNodes, clusterSpanM, hopDistanceM, targetBER)
	if err != nil {
		return InterweavePlan{}, err
	}
	return InterweavePlan{
		Pairs:             p.Pairs,
		Receivers:         p.Receivers,
		Constellation:     p.Report.B,
		TotalPAJPerBit:    float64(p.Report.TotalPA),
		NullOverheadRatio: p.NullOverheadRatio,
	}, nil
}

// EbBar exposes the solved ēb(p, b, mt, mr) in joules — the quantity the
// paper's preprocessing tabulates.
func (s *System) EbBar(targetBER float64, constellationBits, txNodes, rxNodes int) (float64, error) {
	return s.model.Eb.EbBar(targetBER, constellationBits, txNodes, rxNodes)
}

// LongHaulTxEnergy evaluates eq. (3): per-node per-bit energy of an
// mt-by-mr cooperative link of length distM.
func (s *System) LongHaulTxEnergy(targetBER float64, constellationBits, txNodes, rxNodes int, distM float64) (float64, error) {
	c, err := s.model.MIMOTx(targetBER, constellationBits, txNodes, rxNodes, distM)
	if err != nil {
		return 0, err
	}
	return float64(c.Total()), nil
}
