package beamform

import (
	"math"
	"testing"

	"repro/internal/geom"
)

func arrayPositions(n int) []geom.Point {
	// Nodes along the vertical axis, 15 m apart.
	out := make([]geom.Point, n)
	for i := range out {
		out[i] = geom.Pt(0, float64(i)*15)
	}
	return out
}

func TestNewArrayValidation(t *testing.T) {
	if _, err := NewArray(arrayPositions(1), geom.Pt(0, -300), 30); err == nil {
		t.Error("one transmitter should fail")
	}
	if _, err := NewArray(arrayPositions(2), geom.Pt(0, -300), 0); err == nil {
		t.Error("zero wavelength should fail")
	}
}

func TestArrayPairCount(t *testing.T) {
	for _, c := range []struct{ n, pairs int }{{2, 1}, {3, 1}, {4, 2}, {6, 3}, {7, 3}} {
		arr, err := NewArray(arrayPositions(c.n), geom.Pt(0, -300), 30)
		if err != nil {
			t.Fatal(err)
		}
		if len(arr.Pairs) != c.pairs {
			t.Errorf("n=%d: %d pairs, want floor(n/2)=%d", c.n, len(arr.Pairs), c.pairs)
		}
	}
}

func TestArrayNullAtPr(t *testing.T) {
	pr := geom.Pt(0, -600)
	for _, n := range []int{2, 4, 6} {
		arr, err := NewArray(arrayPositions(n), pr, 30)
		if err != nil {
			t.Fatal(err)
		}
		if a := arr.AmplitudeAt(pr); a > 0.12*float64(len(arr.Pairs)) {
			t.Errorf("n=%d: amplitude at Pr = %v, want near zero", n, a)
		}
	}
}

// TestCoPhaseFullGain: after co-phasing toward Sr the array reaches
// close to the full 2*pairs amplitude there, and the null at Pr is
// untouched (common per-pair rotations preserve pair-internal
// cancellation).
func TestCoPhaseFullGain(t *testing.T) {
	pr := geom.Pt(0, -600)
	sr := geom.Pt(400, 40)
	arr, err := NewArray(arrayPositions(6), pr, 30)
	if err != nil {
		t.Fatal(err)
	}
	before := arr.AmplitudeAt(sr)
	nullBefore := arr.AmplitudeAt(pr)
	arr.CoPhase(sr)
	after := arr.AmplitudeAt(sr)
	nullAfter := arr.AmplitudeAt(pr)
	if after < before-1e-9 {
		t.Errorf("co-phasing reduced amplitude: %v -> %v", before, after)
	}
	full := 2 * float64(len(arr.Pairs))
	if after < 0.85*full {
		t.Errorf("co-phased amplitude %v, want near %v", after, full)
	}
	if math.Abs(nullAfter-nullBefore) > 0.05 {
		t.Errorf("co-phasing disturbed the null: %v -> %v", nullBefore, nullAfter)
	}
	// ResetPhases restores the uncophased field.
	arr.ResetPhases()
	if got := arr.AmplitudeAt(sr); math.Abs(got-before) > 1e-9 {
		t.Errorf("reset did not restore: %v vs %v", got, before)
	}
}

func TestPairSpacings(t *testing.T) {
	arr, err := NewArray(arrayPositions(4), geom.Pt(0, -600), 30)
	if err != nil {
		t.Fatal(err)
	}
	sp := arr.PairSpacings()
	if len(sp) != 2 {
		t.Fatalf("%d spacings", len(sp))
	}
	// Greedy nearest pairing on a regular line pairs adjacent nodes.
	for _, s := range sp {
		if math.Abs(s-15) > 1e-9 {
			t.Errorf("spacing %v, want 15", s)
		}
	}
}

// TestArrayBeatsSinglePair: co-phased multi-pair beamforming delivers
// more amplitude at the secondary receiver than one pair alone — the
// scaling Algorithm 3's pairing buys.
func TestArrayBeatsSinglePair(t *testing.T) {
	pr := geom.Pt(0, -600)
	sr := geom.Pt(400, 0)
	single, err := NewArray(arrayPositions(2), pr, 30)
	if err != nil {
		t.Fatal(err)
	}
	triple, err := NewArray(arrayPositions(6), pr, 30)
	if err != nil {
		t.Fatal(err)
	}
	single.CoPhase(sr)
	triple.CoPhase(sr)
	if triple.AmplitudeAt(sr) < 2.5*single.AmplitudeAt(sr) {
		t.Errorf("3 pairs (%v) should far exceed 1 pair (%v)",
			triple.AmplitudeAt(sr), single.AmplitudeAt(sr))
	}
}
