// Package beamform implements the pairwise null-steering transmit
// beamformer of Section 5: two cooperating secondary transmitters, one of
// which is given the phase shift delta = pi*(2 r cos(alpha)/w - 1) so the
// pair's waves cancel along the direction to the primary receiver while
// still combining (near-)constructively toward the secondary receiver.
//
// Two signal models are provided and cross-checked in tests:
//
//   - exact: each wave accrues phase -2*pi*d/w over its true path length
//     d, so the predicted field is valid at any range;
//   - far field: the paper's formulas, valid when the observation point
//     is far from the pair relative to its spacing r.
package beamform

import (
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/geom"
)

// PhaseDelay is the paper's formula: the phase imposed on St1 so its wave
// cancels St2's along the direction at angle alpha = angle(Pr, St1, St2).
// r is the element spacing and w the wavelength, both in metres.
func PhaseDelay(r, alpha, w float64) float64 {
	return math.Pi * (2*r*math.Cos(alpha)/w - 1)
}

// Pair is a two-element null-steering transmitter. St1 carries the
// imposed phase Delta1; St2 transmits unshifted.
type Pair struct {
	St1, St2 geom.Point
	// Wavelength w in metres.
	Wavelength float64
	// Delta1 is the phase shift applied at St1, in radians.
	Delta1 float64
	// Amp1 and Amp2 are the per-element field amplitudes (gamma_1 and
	// gamma_2 of Section 5); both 1 by default.
	Amp1, Amp2 float64
}

// NewNullPair builds the pair that nulls toward pr: it computes
// alpha = angle(Pr, St1, St2) and applies the paper's phase delay at St1.
func NewNullPair(st1, st2, pr geom.Point, wavelength float64) (*Pair, error) {
	if wavelength <= 0 {
		return nil, fmt.Errorf("beamform: wavelength %g must be positive", wavelength)
	}
	r := st1.Dist(st2)
	if r == 0 {
		return nil, fmt.Errorf("beamform: coincident elements")
	}
	alpha := geom.AngleAt(st1, pr, st2)
	return &Pair{
		St1: st1, St2: st2,
		Wavelength: wavelength,
		Delta1:     PhaseDelay(r, alpha, wavelength),
		Amp1:       1, Amp2: 1,
	}, nil
}

// Spacing returns the element separation r.
func (p *Pair) Spacing() float64 { return p.St1.Dist(p.St2) }

// FieldAt returns the complex field at point q under the exact model:
// each element contributes amp * exp(j(phase - 2 pi d / w)) / 1 with d
// its true distance to q (free-space amplitude decay is omitted, as in
// the paper's Table 1 evaluation, which reports pure array gain).
func (p *Pair) FieldAt(q geom.Point) complex128 {
	a1, a2 := p.Amp1, p.Amp2
	if a1 == 0 && a2 == 0 {
		return 0
	}
	k := 2 * math.Pi / p.Wavelength
	f1 := complex(a1, 0) * cmplx.Exp(complex(0, p.Delta1-k*p.St1.Dist(q)))
	f2 := complex(a2, 0) * cmplx.Exp(complex(0, -k*p.St2.Dist(q)))
	return f1 + f2
}

// AmplitudeAt returns |FieldAt(q)|: 2 means full pairwise diversity gain
// over a single-element (SISO) transmitter of amplitude 1.
func (p *Pair) AmplitudeAt(q geom.Point) float64 {
	return cmplx.Abs(p.FieldAt(q))
}

// AmplitudeFarField evaluates the paper's far-field expression at q:
// Delta = delta + 2 pi (d2 - d1)/w reduces, for |q| >> r, to the
// projection of the spacing on the look direction, and the amplitude is
// sqrt(g1^2 + g2^2 + 2 g1 g2 cos Delta).
func (p *Pair) AmplitudeFarField(q geom.Point) float64 {
	// Path difference via projection on the unit look direction from the
	// pair midpoint — the far-field limit of d2 - d1.
	mid := geom.Midpoint(p.St1, p.St2)
	u := q.Sub(mid).Unit()
	// d_i ~ R - (P_i - mid).u, so d2 - d1 = (P1 - P2).u.
	diff := p.St1.Sub(p.St2).Dot(u)
	delta := p.Delta1 + 2*math.Pi*diff/p.Wavelength
	return math.Sqrt(p.Amp1*p.Amp1 + p.Amp2*p.Amp2 + 2*p.Amp1*p.Amp2*math.Cos(delta))
}

// Pattern samples the far-field radiation amplitude at the given angles
// (radians, measured at the pair midpoint from the +X axis), at range
// rangeM. Figure 8 plots exactly this for the designed beamformer.
func (p *Pair) Pattern(angles []float64, rangeM float64) []float64 {
	mid := geom.Midpoint(p.St1, p.St2)
	out := make([]float64, len(angles))
	for i, th := range angles {
		out[i] = p.AmplitudeAt(geom.PolarPoint(mid, rangeM, th))
	}
	return out
}

// DesignNullAt returns the phase shift for St1 that steers the pattern
// null to the given angle (radians from the +X axis at the midpoint,
// with the elements on the line from St1 to St2): the Figure 8 testbed
// "puts a null in the direction of 120 degree".
func DesignNullAt(st1, st2 geom.Point, wavelength, nullAngle float64) float64 {
	axis := geom.Bearing(st1, st2)
	r := st1.Dist(st2)
	// Toward angle theta off the pair axis, d2 - d1 = -r cos(theta); the
	// null needs total relative phase delta + k(d2 - d1) = pi.
	theta := nullAngle - axis
	return math.Pi + 2*math.Pi*r*math.Cos(theta)/wavelength
}

// NullDepthDB measures the pattern null at angle relative to the pattern
// peak, in dB (negative numbers; deeper is better).
func (p *Pair) NullDepthDB(nullAngle float64, rangeM float64) float64 {
	const steps = 720
	peak := 0.0
	for i := 0; i < steps; i++ {
		a := p.AmplitudeAt(geom.PolarPoint(geom.Midpoint(p.St1, p.St2), rangeM, 2*math.Pi*float64(i)/steps))
		if a > peak {
			peak = a
		}
	}
	at := p.AmplitudeAt(geom.PolarPoint(geom.Midpoint(p.St1, p.St2), rangeM, nullAngle))
	if peak == 0 {
		return 0
	}
	if at == 0 {
		return math.Inf(-1)
	}
	return 20 * math.Log10(at/peak)
}
