package beamform

import (
	"fmt"
	"math/cmplx"
	"sort"

	"repro/internal/geom"
)

// Array is Algorithm 3's full transmit side: floor(mt/2) null-steering
// pairs, each cancelling toward the protected primary receiver. An
// unpaired odd node stays silent, exactly as the algorithm's pairing
// implies.
//
// Because both elements of a pair share any common phase shift, rotating
// a whole pair never disturbs its null; CoPhase exploits that to align
// the pairs' fields at the secondary receiver for the full
// 2*floor(mt/2) array amplitude.
type Array struct {
	Pairs []*Pair
	// phase[i] is the common rotation applied to pair i.
	phase []complex128
}

// NewArray pairs up the transmit positions (greedily, nearest remaining
// neighbour, in slice order) and builds one null-steering pair per
// couple, all nulled toward pr. At least two positions are required; an
// odd leftover node is excluded.
func NewArray(positions []geom.Point, pr geom.Point, wavelength float64) (*Array, error) {
	if len(positions) < 2 {
		return nil, fmt.Errorf("beamform: need at least 2 transmitters, got %d", len(positions))
	}
	remaining := append([]geom.Point(nil), positions...)
	arr := &Array{}
	for len(remaining) >= 2 {
		anchor := remaining[0]
		// Nearest remaining partner keeps pair spacings small, which
		// keeps the far-field delay formula accurate.
		best, bestDist := 1, anchor.Dist(remaining[1])
		for i := 2; i < len(remaining); i++ {
			if d := anchor.Dist(remaining[i]); d < bestDist {
				best, bestDist = i, d
			}
		}
		partner := remaining[best]
		remaining = append(remaining[1:best], remaining[best+1:]...)
		p, err := NewNullPair(anchor, partner, pr, wavelength)
		if err != nil {
			return nil, err
		}
		arr.Pairs = append(arr.Pairs, p)
		arr.phase = append(arr.phase, 1)
	}
	return arr, nil
}

// FieldAt sums the pairs' exact fields, with each pair rotated by its
// common phase.
func (a *Array) FieldAt(q geom.Point) complex128 {
	var f complex128
	for i, p := range a.Pairs {
		f += a.phase[i] * p.FieldAt(q)
	}
	return f
}

// AmplitudeAt returns |FieldAt(q)|.
func (a *Array) AmplitudeAt(q geom.Point) float64 {
	return cmplx.Abs(a.FieldAt(q))
}

// CoPhase rotates every pair so its field at q is real-positive: the
// pairs then add fully coherently toward q, while every pair-internal
// null (which is phase-invariant under a common rotation) is preserved.
func (a *Array) CoPhase(q geom.Point) {
	for i, p := range a.Pairs {
		f := p.FieldAt(q)
		if m := cmplx.Abs(f); m > 1e-12 {
			a.phase[i] = cmplx.Conj(f) / complex(m, 0)
		} else {
			a.phase[i] = 1
		}
	}
}

// ResetPhases removes any co-phasing.
func (a *Array) ResetPhases() {
	for i := range a.phase {
		a.phase[i] = 1
	}
}

// PairSpacings reports the element separations, sorted ascending —
// useful to sanity-check a pairing.
func (a *Array) PairSpacings() []float64 {
	out := make([]float64, len(a.Pairs))
	for i, p := range a.Pairs {
		out[i] = p.Spacing()
	}
	sort.Float64s(out)
	return out
}
