package beamform

import (
	"math"
	"testing"

	"repro/internal/geom"
)

func TestPhaseDelayPaperExample(t *testing.T) {
	// "delta = pi when r = w and alpha = 0" (Section 5).
	if d := PhaseDelay(1, 0, 1); math.Abs(d-math.Pi) > 1e-12 {
		t.Errorf("delta(r=w, alpha=0) = %v, want pi", d)
	}
	// r = w/2, alpha = 0 gives delta = 0.
	if d := PhaseDelay(0.5, 0, 1); math.Abs(d) > 1e-12 {
		t.Errorf("delta(r=w/2, alpha=0) = %v, want 0", d)
	}
}

func TestNewNullPairValidation(t *testing.T) {
	if _, err := NewNullPair(geom.Pt(0, 0), geom.Pt(0, 1), geom.Pt(5, 5), 0); err == nil {
		t.Error("zero wavelength should fail")
	}
	if _, err := NewNullPair(geom.Pt(0, 0), geom.Pt(0, 0), geom.Pt(5, 5), 1); err == nil {
		t.Error("coincident elements should fail")
	}
}

// TestNullAtPr verifies the core Section 5 claim: the field at the
// primary receiver vanishes (far field) and is tiny under exact
// propagation.
func TestNullAtPr(t *testing.T) {
	w := 30.0
	st1, st2 := geom.Pt(0, 7.5), geom.Pt(0, -7.5)
	for _, pr := range []geom.Point{
		geom.Pt(0, -500), geom.Pt(0, 700), geom.Pt(30, -600), geom.Pt(-100, 800),
	} {
		p, err := NewNullPair(st1, st2, pr, w)
		if err != nil {
			t.Fatal(err)
		}
		if a := p.AmplitudeFarField(pr); a > 0.02 {
			t.Errorf("far-field amplitude at Pr %v = %v, want ~0", pr, a)
		}
		if a := p.AmplitudeAt(pr); a > 0.08 {
			t.Errorf("exact amplitude at Pr %v = %v, want near 0", pr, a)
		}
	}
}

// TestGainTowardSr reproduces the Table 1 situation: Pr on (or near) the
// pair axis, Sr broadside — the pair should deliver close to the full
// 2x diversity amplitude at Sr while nulling Pr.
func TestGainTowardSr(t *testing.T) {
	w := 30.0
	st1, st2 := geom.Pt(0, 7.5), geom.Pt(0, -7.5)
	pr := geom.Pt(0, -300) // on-axis primary
	sr := geom.Pt(150, 0)  // broadside secondary
	p, err := NewNullPair(st1, st2, pr, w)
	if err != nil {
		t.Fatal(err)
	}
	a := p.AmplitudeAt(sr)
	if a < 1.7 || a > 2.0 {
		t.Errorf("amplitude at Sr = %v, want ~1.87-2.0", a)
	}
	if p.AmplitudeAt(pr) > 0.1 {
		t.Errorf("Pr not nulled: %v", p.AmplitudeAt(pr))
	}
}

func TestExactMatchesFarFieldAtRange(t *testing.T) {
	w := 2.0
	st1, st2 := geom.Pt(0, 1), geom.Pt(0, -1)
	pr := geom.Pt(0, -400)
	p, err := NewNullPair(st1, st2, pr, w)
	if err != nil {
		t.Fatal(err)
	}
	// Sample directions well away from the pair: models must agree.
	for deg := 0; deg < 360; deg += 15 {
		th := float64(deg) * math.Pi / 180
		q := geom.PolarPoint(geom.Pt(0, 0), 500, th)
		exact := p.AmplitudeAt(q)
		ff := p.AmplitudeFarField(q)
		if math.Abs(exact-ff) > 0.02 {
			t.Errorf("theta=%d: exact %v vs far-field %v", deg, exact, ff)
		}
	}
}

func TestFieldAtSuperposition(t *testing.T) {
	p := &Pair{
		St1: geom.Pt(0, 1), St2: geom.Pt(0, -1),
		Wavelength: 1, Amp1: 1, Amp2: 1,
	}
	// Equidistant point with zero imposed phase: waves add to amplitude 2.
	q := geom.Pt(50, 0)
	if a := p.AmplitudeAt(q); math.Abs(a-2) > 1e-9 {
		t.Errorf("in-phase amplitude = %v, want 2", a)
	}
	// Zero-amplitude pair radiates nothing.
	dead := &Pair{St1: p.St1, St2: p.St2, Wavelength: 1}
	if dead.AmplitudeAt(q) != 0 {
		t.Error("zero-amplitude pair should radiate 0")
	}
	// Asymmetric amplitudes bound the field by |a1 - a2| and a1 + a2.
	p.Amp2 = 0.5
	for deg := 0; deg < 360; deg += 30 {
		a := p.AmplitudeAt(geom.PolarPoint(geom.Pt(0, 0), 40, float64(deg)*math.Pi/180))
		if a < 0.5-1e-9 || a > 1.5+1e-9 {
			t.Errorf("amplitude %v outside [0.5, 1.5]", a)
		}
	}
}

// TestDesignNullAt checks the Figure 8 design: a null steered to 120
// degrees with half-wavelength spacing.
func TestDesignNullAt(t *testing.T) {
	w := 0.1224 // 2.45 GHz
	st1 := geom.Pt(-w/4, 0)
	st2 := geom.Pt(w/4, 0)
	null := 120 * math.Pi / 180
	p := &Pair{
		St1: st1, St2: st2, Wavelength: w,
		Delta1: DesignNullAt(st1, st2, w, null),
		Amp1:   1, Amp2: 1,
	}
	// The far-field null sits at 120 degrees.
	if a := p.AmplitudeFarField(geom.PolarPoint(geom.Pt(0, 0), 10, null)); a > 1e-9 {
		t.Errorf("far-field amplitude at null = %v", a)
	}
	// Exact model at the testbed's 1 m range: deep but not perfect.
	if depth := p.NullDepthDB(null, 1); depth > -25 {
		t.Errorf("null depth = %.1f dB, want deeper than -25 dB", depth)
	}
	// Away from the null the pattern should exceed SISO amplitude 1
	// (the diversity gain claim of Figure 8) over most directions.
	angles := []float64{0, 20, 40, 60, 80, 100, 160, 180}
	for i := range angles {
		angles[i] *= math.Pi / 180
	}
	pat := p.Pattern(angles, 1)
	above := 0
	for _, a := range pat {
		if a > 1 {
			above++
		}
	}
	if above < len(pat)-2 {
		t.Errorf("pattern exceeds SISO in only %d of %d sampled directions: %v", above, len(pat), pat)
	}
}

func TestPatternLength(t *testing.T) {
	p := &Pair{St1: geom.Pt(0, 1), St2: geom.Pt(0, -1), Wavelength: 1, Amp1: 1, Amp2: 1}
	if got := p.Pattern(nil, 5); len(got) != 0 {
		t.Error("empty angle list")
	}
	if got := p.Pattern(make([]float64, 7), 5); len(got) != 7 {
		t.Error("pattern length mismatch")
	}
	if s := p.Spacing(); s != 2 {
		t.Errorf("Spacing = %v", s)
	}
}
