// Package overlay implements Algorithm 1 and the Section 6.1 analysis:
// m secondary users cooperatively relay a primary transmission — the
// primary transmitter reaches the SU cluster over a 1-by-m SIMO link,
// and the cluster forwards to the primary receiver over an m-by-1 MISO
// link — under the constraint that every party spends no more per-bit
// energy than the direct SISO primary link would have.
package overlay

import (
	"fmt"

	"repro/internal/energy"
	"repro/internal/units"
)

// Config sets up the overlay relay analysis.
type Config struct {
	// Model is the energy model (constants + ēb provider).
	Model *energy.Model
	// M is the number of cooperating relay SUs.
	M int
	// DirectBER is the BER the direct primary link tolerates (paper:
	// 0.005).
	DirectBER float64
	// RelayBER is the (tighter) BER target of the relayed path (paper:
	// 0.0005 — ten times better).
	RelayBER float64
}

// Validate rejects nonsensical configurations.
func (c Config) Validate() error {
	switch {
	case c.Model == nil:
		return fmt.Errorf("overlay: nil energy model")
	case c.M < 1:
		return fmt.Errorf("overlay: m=%d relays, need at least 1", c.M)
	case c.DirectBER <= 0 || c.DirectBER >= 1:
		return fmt.Errorf("overlay: direct BER %g outside (0, 1)", c.DirectBER)
	case c.RelayBER <= 0 || c.RelayBER >= 1:
		return fmt.Errorf("overlay: relay BER %g outside (0, 1)", c.RelayBER)
	}
	return nil
}

// Analysis is the outcome of the three-step distance computation of
// Section 6.1 for one primary-pair separation D1.
type Analysis struct {
	// D1 is the Pt-Pr separation in metres.
	D1 float64
	// E1 is the per-bit energy of the direct SISO primary link at D1 and
	// the direct BER target, minimised over the constellation size.
	E1 units.JoulePerBit
	// BDirect is the constellation that achieves E1.
	BDirect int
	// D2 is the largest Pt-to-SUs distance: the 1-by-m SIMO link Pt can
	// drive with energy E1 at the relay BER target, maximised over b.
	D2 float64
	// B2 is the constellation achieving D2.
	B2 int
	// D3 is the largest SUs-to-Pr distance: the m-by-1 MISO link each SU
	// can drive with per-node budget E1 (transmit + long-haul receive
	// cost), maximised over b.
	D3 float64
	// B3 is the constellation achieving D3.
	B3 int
}

// Analyze runs the Section 6.1 procedure for one D1.
func Analyze(cfg Config, d1 float64) (Analysis, error) {
	if err := cfg.Validate(); err != nil {
		return Analysis{}, err
	}
	if d1 <= 0 {
		return Analysis{}, fmt.Errorf("overlay: D1=%g must be positive", d1)
	}
	m := cfg.Model
	// Step 1: E1 = min_b e_MIMOt(1, 1) at D1 and the loose direct target.
	direct, err := m.OptimalMIMOB(cfg.DirectBER, 1, 1, d1, nil)
	if err != nil {
		return Analysis{}, fmt.Errorf("overlay: direct link at D1=%g: %w", d1, err)
	}
	a := Analysis{D1: d1, E1: direct.Cost.Total(), BDirect: direct.B}

	// Step 2: D2 from E_Pt = E1 on the 1-by-m SIMO link at the tight
	// relay target, taking the best constellation.
	a.D2, a.B2, err = maxDistanceOverB(m, a.E1, cfg.RelayBER, 1, cfg.M, 0)
	if err != nil {
		return Analysis{}, fmt.Errorf("overlay: SIMO step: %w", err)
	}

	// Step 3: D3 from E_S = e_MIMOt(m, 1) + e_MIMOr = E1; the long-haul
	// receive cost e_MIMOr(b) comes off the budget first.
	a.D3, a.B3, err = maxDistanceOverB(m, a.E1, cfg.RelayBER, cfg.M, 1, 1)
	if err != nil {
		return Analysis{}, fmt.Errorf("overlay: MISO step: %w", err)
	}
	return a, nil
}

// maxDistanceOverB maximises the reachable link length over b given a
// per-node budget. rxLegs counts how many long-haul receive costs are
// charged against the budget before transmitting.
func maxDistanceOverB(m *energy.Model, budget units.JoulePerBit, p float64, mt, mr, rxLegs int) (float64, int, error) {
	bestD, bestB := 0.0, -1
	for b := 1; b <= m.P.BMax; b++ {
		avail := budget
		if rxLegs > 0 {
			rx, err := m.MIMORx(b)
			if err != nil {
				continue
			}
			avail -= units.JoulePerBit(rxLegs) * rx.Total()
		}
		if avail <= 0 {
			continue
		}
		d, err := m.MIMOTxDistance(avail, p, b, mt, mr)
		if err != nil {
			continue
		}
		if d > bestD {
			bestD, bestB = d, b
		}
	}
	if bestB < 0 {
		return 0, 0, fmt.Errorf("overlay: no constellation reaches any distance within budget %v", budget)
	}
	return bestD, bestB, nil
}

// EnergyBreakdown itemises who spends what per relayed bit when the
// relay distances are fixed (Algorithm 1's accounting).
type EnergyBreakdown struct {
	// EPt is the primary transmitter's cost on the 1-by-m SIMO leg.
	EPt units.JoulePerBit
	// ESr is each SU's receive cost on that leg (e_MIMOr).
	ESr units.JoulePerBit
	// ESt is each SU's transmit cost on the m-by-1 MISO leg.
	ESt units.JoulePerBit
	// EPr is the primary receiver's cost (e_MIMOr).
	EPr units.JoulePerBit
}

// ES returns the total per-SU cost E_S = E_St + E_Sr.
func (e EnergyBreakdown) ES() units.JoulePerBit { return e.ESt + e.ESr }

// Breakdown evaluates Algorithm 1's per-party energies for concrete leg
// lengths dPtSU (Pt to the cluster) and dSUPr (cluster to Pr), choosing
// the constellation that minimises each leg's transmit cost.
func Breakdown(cfg Config, dPtSU, dSUPr float64) (EnergyBreakdown, error) {
	if err := cfg.Validate(); err != nil {
		return EnergyBreakdown{}, err
	}
	if dPtSU <= 0 || dSUPr <= 0 {
		return EnergyBreakdown{}, fmt.Errorf("overlay: leg lengths must be positive, got %g and %g", dPtSU, dSUPr)
	}
	m := cfg.Model
	simo, err := m.OptimalMIMOB(cfg.RelayBER, 1, cfg.M, dPtSU, nil)
	if err != nil {
		return EnergyBreakdown{}, fmt.Errorf("overlay: SIMO leg: %w", err)
	}
	miso, err := m.OptimalMIMOB(cfg.RelayBER, cfg.M, 1, dSUPr, nil)
	if err != nil {
		return EnergyBreakdown{}, fmt.Errorf("overlay: MISO leg: %w", err)
	}
	rxSIMO, err := m.MIMORx(simo.B)
	if err != nil {
		return EnergyBreakdown{}, err
	}
	rxMISO, err := m.MIMORx(miso.B)
	if err != nil {
		return EnergyBreakdown{}, err
	}
	return EnergyBreakdown{
		EPt: simo.Cost.Total(),
		ESr: rxSIMO.Total(),
		ESt: miso.Cost.Total(),
		EPr: rxMISO.Total(),
	}, nil
}

// Sweep runs Analyze over a D1 range with the given step, producing the
// series behind Figures 6(a) and 6(b).
func Sweep(cfg Config, d1Lo, d1Hi, step float64) ([]Analysis, error) {
	if step <= 0 || d1Hi < d1Lo {
		return nil, fmt.Errorf("overlay: bad sweep [%g, %g] step %g", d1Lo, d1Hi, step)
	}
	var out []Analysis
	for d1 := d1Lo; d1 <= d1Hi+1e-9; d1 += step {
		a, err := Analyze(cfg, d1)
		if err != nil {
			return nil, err
		}
		out = append(out, a)
	}
	return out, nil
}
