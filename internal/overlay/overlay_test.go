package overlay

import (
	"math"
	"testing"

	"repro/internal/ebtable"
	"repro/internal/energy"
	"repro/internal/units"
)

func cfg(t *testing.T, m int, bandwidth units.Hertz) Config {
	t.Helper()
	model, err := energy.New(energy.Paper(bandwidth), ebtable.Analytic{})
	if err != nil {
		t.Fatal(err)
	}
	return Config{Model: model, M: m, DirectBER: 0.005, RelayBER: 0.0005}
}

func TestConfigValidate(t *testing.T) {
	good := cfg(t, 3, 40e3)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Model = nil
	if bad.Validate() == nil {
		t.Error("nil model should fail")
	}
	bad = good
	bad.M = 0
	if bad.Validate() == nil {
		t.Error("m=0 should fail")
	}
	bad = good
	bad.DirectBER = 0
	if bad.Validate() == nil {
		t.Error("p=0 should fail")
	}
	bad = good
	bad.RelayBER = 1
	if bad.Validate() == nil {
		t.Error("p=1 should fail")
	}
}

func TestAnalyzeBasicShape(t *testing.T) {
	c := cfg(t, 3, 40e3)
	a, err := Analyze(c, 250)
	if err != nil {
		t.Fatal(err)
	}
	if a.E1 <= 0 {
		t.Fatalf("E1 = %v", a.E1)
	}
	if a.D2 <= 0 || a.D3 <= 0 {
		t.Fatalf("distances D2=%v D3=%v", a.D2, a.D3)
	}
	// Under the paper's printed gamma_b (ConvPaper) the SIMO and MISO
	// coefficients are symmetric, so D3 trails D2 only by the charged
	// receive leg: within a few percent.
	if a.D3 > a.D2 || a.D3 < 0.9*a.D2 {
		t.Errorf("D3 (%v) should sit just below D2 (%v)", a.D3, a.D2)
	}
	// The headline claim: SUs relay from far away — both leg lengths
	// exceed the original link length at a 10x tighter BER.
	if a.D2 < a.D1 || a.D3 < a.D1 {
		t.Errorf("relays should outrange the direct link: D2=%v D3=%v D1=%v", a.D2, a.D3, a.D1)
	}
	if a.BDirect < 1 || a.B2 < 1 || a.B3 < 1 {
		t.Errorf("constellations not recorded: %+v", a)
	}
}

// TestPaperDistanceRatio reproduces the Figure 6 shape under the
// convention the paper's evaluation actually used (ConvArray — see
// DESIGN.md): the reported D3/D2 = 406/235 is exactly sqrt(m) for m = 3,
// i.e. "the distance from SUs to Pr is larger than from SUs to Pt".
func TestPaperDistanceRatio(t *testing.T) {
	model, err := energy.New(energy.Paper(40e3), ebtable.Analytic{Convention: ebtable.ConvArray})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []int{2, 3, 4} {
		c := Config{Model: model, M: m, DirectBER: 0.005, RelayBER: 0.0005}
		a, err := Analyze(c, 250)
		if err != nil {
			t.Fatal(err)
		}
		// The receive leg charged against the MISO budget shaves ~7%
		// off the ideal sqrt(m).
		ratio := a.D3 / a.D2
		want := math.Sqrt(float64(m))
		if ratio > want || ratio < 0.88*want {
			t.Errorf("m=%d: D3/D2 = %v, want just below sqrt(m)=%v", m, ratio, want)
		}
	}
}

// TestPaperSpotCheck pins the Section 6.1 worked example's qualitative
// content: at D1 = 250 m, m = 3, B = 40 kHz the paper reports D2 ~ 235 m
// and D3 ~ 406 m. Our exact ēb solutions place both distances higher by
// a common factor (~2.8x; the paper's table has weaker receive diversity
// than ideal MRC — see EXPERIMENTS.md), so the assertions are: both legs
// are hundreds of metres, the relays outrange the direct link, and the
// values stay within one small multiple of the paper's.
func TestPaperSpotCheck(t *testing.T) {
	c := cfg(t, 3, 40e3)
	a, err := Analyze(c, 250)
	if err != nil {
		t.Fatal(err)
	}
	if a.D2 < 235 || a.D2 > 235*4 {
		t.Errorf("D2 = %v m, paper reports ~235 m (expect within 4x above)", a.D2)
	}
	if a.D3 < 406/2.0 || a.D3 > 406*4 {
		t.Errorf("D3 = %v m, paper reports ~406 m (expect within 4x)", a.D3)
	}
	if a.D3 <= a.D1 {
		t.Errorf("relays should outrange the direct link: D3=%v <= D1=%v", a.D3, a.D1)
	}
}

func TestDistancesGrowWithD1(t *testing.T) {
	c := cfg(t, 2, 20e3)
	sweep, err := Sweep(c, 150, 350, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep) != 5 {
		t.Fatalf("%d points", len(sweep))
	}
	for i := 1; i < len(sweep); i++ {
		if sweep[i].E1 <= sweep[i-1].E1 {
			t.Errorf("E1 not increasing at D1=%v", sweep[i].D1)
		}
		if sweep[i].D2 <= sweep[i-1].D2 || sweep[i].D3 <= sweep[i-1].D3 {
			t.Errorf("distances not increasing at D1=%v", sweep[i].D1)
		}
	}
}

func TestBandwidthEffect(t *testing.T) {
	// Narrower bandwidth raises the circuit energy per bit, so the direct
	// link's budget E1 grows; because the same circuit cost is charged
	// back on the relay legs, the reachable distances barely move. (The
	// paper's Figure 6 shows a visible bandwidth gap; its stated per-bit
	// energy model cannot produce one — a documented deviation, see
	// EXPERIMENTS.md.)
	a20, err := Analyze(cfg(t, 3, 20e3), 250)
	if err != nil {
		t.Fatal(err)
	}
	a40, err := Analyze(cfg(t, 3, 40e3), 250)
	if err != nil {
		t.Fatal(err)
	}
	if a20.E1 <= a40.E1 {
		t.Errorf("E1 at 20k (%v) should exceed 40k (%v)", a20.E1, a40.E1)
	}
	if math.Abs(a40.D2/a20.D2-1) > 0.10 {
		t.Errorf("D2 should be nearly bandwidth-independent: %v vs %v", a40.D2, a20.D2)
	}
}

func TestMoreRelaysHelpAtLargeD1(t *testing.T) {
	// Figure 6(b): under the same bandwidth the m=3 curve overtakes m=2
	// beyond moderate separations.
	a2, err := Analyze(cfg(t, 2, 40e3), 300)
	if err != nil {
		t.Fatal(err)
	}
	a3, err := Analyze(cfg(t, 3, 40e3), 300)
	if err != nil {
		t.Fatal(err)
	}
	if a3.D3 < a2.D3*0.95 {
		t.Errorf("m=3 D3 (%v) should not trail m=2 (%v) at D1=300", a3.D3, a2.D3)
	}
}

func TestAnalyzeRejectsBadD1(t *testing.T) {
	c := cfg(t, 3, 40e3)
	if _, err := Analyze(c, 0); err == nil {
		t.Error("D1=0 should fail")
	}
	if _, err := Analyze(c, -5); err == nil {
		t.Error("negative D1 should fail")
	}
}

func TestBreakdown(t *testing.T) {
	c := cfg(t, 3, 40e3)
	bd, err := Breakdown(c, 235, 406)
	if err != nil {
		t.Fatal(err)
	}
	if bd.EPt <= 0 || bd.ESr <= 0 || bd.ESt <= 0 || bd.EPr <= 0 {
		t.Fatalf("non-positive energies: %+v", bd)
	}
	if bd.ES() != bd.ESt+bd.ESr {
		t.Error("ES() accounting wrong")
	}
	// Transmission dominates reception at hundreds of metres.
	if bd.ESt <= bd.ESr {
		t.Errorf("ESt (%v) should exceed ESr (%v)", bd.ESt, bd.ESr)
	}
	if _, err := Breakdown(c, 0, 10); err == nil {
		t.Error("zero leg should fail")
	}
}

func TestSweepValidation(t *testing.T) {
	c := cfg(t, 2, 40e3)
	if _, err := Sweep(c, 100, 50, 10); err == nil {
		t.Error("inverted range should fail")
	}
	if _, err := Sweep(c, 100, 200, 0); err == nil {
		t.Error("zero step should fail")
	}
}

func TestRelayBudgetNeverExceeded(t *testing.T) {
	// Invariant of the whole construction: transmitting back at distance
	// D3 costs at most E1 including the receive leg.
	c := cfg(t, 3, 40e3)
	a, err := Analyze(c, 300)
	if err != nil {
		t.Fatal(err)
	}
	tx, err := c.Model.MIMOTx(c.RelayBER, a.B3, c.M, 1, a.D3)
	if err != nil {
		t.Fatal(err)
	}
	rx, err := c.Model.MIMORx(a.B3)
	if err != nil {
		t.Fatal(err)
	}
	total := tx.Total() + rx.Total()
	if float64(total) > float64(a.E1)*(1+1e-6) {
		t.Errorf("per-SU spend %v exceeds budget %v", total, a.E1)
	}
	if math.Abs(float64(total)-float64(a.E1))/float64(a.E1) > 0.01 {
		t.Errorf("budget should be nearly exhausted at the max distance: spend %v vs %v", total, a.E1)
	}
}
