package cellfree

import (
	"math"
	"sync"

	"repro/internal/mathx"
)

// Workspace holds every buffer one trial needs, so the Monte-Carlo hot
// path allocates nothing per trial. It follows the repository's
// workspace convention (coop.Workspace, multihop.Workspace): get one
// from the pool, hand it to RunWith, put it back when the chunk ends.
// A Workspace is not safe for concurrent use.
type Workspace struct {
	rng *mathx.ReusableRand

	// Setup-scale state, sized L, K or L*K (row-major l*K+k).
	apX, apY []float64
	ueX, ueY []float64
	shAP     []float64
	shUE     []float64
	betaBar  []float64 // noise-normalized large-scale SNR rho*beta
	pilot    []int     // pilot index per UE
	master   []int     // master AP per UE
	serve    []bool    // DCC membership, l*K+k
	psi      []float64 // pilot-signal energy per (AP, pilot), l*TauP+t
	gammaBar []float64 // per-antenna estimate variance, l*K+k
	zAP      []float64 // effective noise+error variance per AP antenna

	// Realization-scale state, antenna-major (antenna a = l*N+m).
	hbar *mathx.CMat // true channels, LN x K
	np   *mathx.CMat // pilot noise, then despread pilot signal, LN x TauP
	ghat *mathx.CMat // channel estimates, LN x K

	// Combining state.
	gram  *mathx.CMat      // MMSE Gram matrix, LN x LN (lower triangle)
	chol  mathx.Cholesky   // factorization of gram
	rhs   *mathx.BatchCF64 // batched MMSE solves, LN lanes x K vectors
	dots  []complex128     // per-UE combiner outputs v^H ghat_i
	ants  []int            // MR cluster antenna indices
	seSum []float64        // per-UE accumulated log2(1+SINR)
	se    []float64        // per-UE SE of the finished trial
	sortb []float64        // quantile scratch
}

var wsPool = sync.Pool{New: func() any { return NewWorkspace() }}

// NewWorkspace returns an empty workspace; buffers grow on first use.
func NewWorkspace() *Workspace {
	return &Workspace{rng: mathx.NewReusableRand()}
}

// GetWorkspace takes a workspace from the package pool.
func GetWorkspace() *Workspace { return wsPool.Get().(*Workspace) }

// PutWorkspace returns a workspace to the pool.
func PutWorkspace(ws *Workspace) { wsPool.Put(ws) }

func growF(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growI(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func growB(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

func growC(s []complex128, n int) []complex128 {
	if cap(s) < n {
		return make([]complex128, n)
	}
	return s[:n]
}

// ensure shapes every buffer for cfg, reusing backing storage.
func (ws *Workspace) ensure(cfg *Config) {
	l, k, ln := cfg.L, cfg.K, cfg.L*cfg.N
	ws.apX = growF(ws.apX, l)
	ws.apY = growF(ws.apY, l)
	ws.ueX = growF(ws.ueX, k)
	ws.ueY = growF(ws.ueY, k)
	ws.shAP = growF(ws.shAP, l)
	ws.shUE = growF(ws.shUE, k)
	ws.betaBar = growF(ws.betaBar, l*k)
	ws.pilot = growI(ws.pilot, k)
	ws.master = growI(ws.master, k)
	ws.serve = growB(ws.serve, l*k)
	ws.psi = growF(ws.psi, l*cfg.TauP)
	ws.gammaBar = growF(ws.gammaBar, l*k)
	ws.zAP = growF(ws.zAP, l)
	ws.hbar = mathx.EnsureShape(ws.hbar, ln, k)
	ws.np = mathx.EnsureShape(ws.np, ln, cfg.TauP)
	ws.ghat = mathx.EnsureShape(ws.ghat, ln, k)
	if cfg.Combiner == CombinerMMSE {
		ws.gram = mathx.EnsureShape(ws.gram, ln, ln)
		if ws.rhs == nil {
			ws.rhs = mathx.NewBatchCF64(ln, k)
		} else {
			ws.rhs.Resize(ln, k)
		}
	}
	ws.dots = growC(ws.dots, k)
	ws.ants = growI(ws.ants, ln)
	ws.seSum = growF(ws.seSum, k)
	ws.se = growF(ws.se, k)
	ws.sortb = growF(ws.sortb, k)
}

// wrapDist is the torus metric of the wrapped-around square: the
// shortest of the nine periodic displacements, computed per axis.
func wrapDist(x1, y1, x2, y2, side float64) float64 {
	dx := math.Abs(x1 - x2)
	if w := side - dx; w < dx {
		dx = w
	}
	dy := math.Abs(y1 - y2)
	if w := side - dy; w < dy {
		dy = w
	}
	return math.Hypot(dx, dy)
}

// genSetup draws one network snapshot and derives every large-scale
// quantity: gains, pilots, masters, DCC sets and the estimation
// statistics. The draw order is part of the determinism contract (see
// the package comment).
func (ws *Workspace) genSetup(cfg *Config) {
	rng := ws.rng.Rand
	l, k := cfg.L, cfg.K
	side := cfg.SquareLength
	for i := 0; i < l; i++ {
		ws.apX[i] = rng.Float64() * side
		ws.apY[i] = rng.Float64() * side
	}
	for i := 0; i < k; i++ {
		ws.ueX[i] = rng.Float64() * side
		ws.ueY[i] = rng.Float64() * side
	}
	for i := 0; i < l; i++ {
		ws.shAP[i] = rng.NormFloat64()
	}
	for i := 0; i < k; i++ {
		ws.shUE[i] = rng.NormFloat64()
	}

	// Large-scale gains, noise-normalized: betaBar = rho * 10^(g/10).
	// Shadowing uses the two-component correlation model: the offset of
	// link (l, k) is sigma*(a_l + b_k)/sqrt(2), so links sharing an AP
	// or a UE stay correlated while distinct pairs are independent.
	rho := cfg.snr()
	const invSqrt2 = 1 / math.Sqrt2
	for li := 0; li < l; li++ {
		row := ws.betaBar[li*k:]
		for ki := 0; ki < k; ki++ {
			d := wrapDist(ws.apX[li], ws.apY[li], ws.ueX[ki], ws.ueY[ki], side)
			g := cfg.PathLoss.GainDB(d)
			if d > cfg.PathLoss.D1 && cfg.SigmaShadowDB > 0 {
				g += cfg.SigmaShadowDB * (ws.shAP[li] + ws.shUE[ki]) * invSqrt2
			}
			row[ki] = rho * math.Pow(10, g/10)
		}
	}

	// Master AP: the strongest large-scale link.
	for ki := 0; ki < k; ki++ {
		best, bestGain := 0, ws.betaBar[ki]
		for li := 1; li < l; li++ {
			if g := ws.betaBar[li*k+ki]; g > bestGain {
				best, bestGain = li, g
			}
		}
		ws.master[ki] = best
	}

	// Pilot assignment: the first TauP UEs take orthogonal pilots; each
	// later UE picks the pilot with the least accumulated contamination
	// at its master AP (the scalable cell-free rule).
	for ki := 0; ki < k; ki++ {
		if ki < cfg.TauP {
			ws.pilot[ki] = ki
			continue
		}
		row := ws.betaBar[ws.master[ki]*k:]
		bestT, bestLoad := 0, math.Inf(1)
		for t := 0; t < cfg.TauP; t++ {
			load := 0.0
			for i := 0; i < ki; i++ {
				if ws.pilot[i] == t {
					load += row[i]
				}
			}
			if load < bestLoad {
				bestT, bestLoad = t, load
			}
		}
		ws.pilot[ki] = bestT
	}

	// DCC: per (AP, pilot) the AP serves the UE it hears strongest;
	// every UE is also served by its master AP, so no cluster is empty.
	for i := range ws.serve[:l*k] {
		ws.serve[i] = false
	}
	for li := 0; li < l; li++ {
		row := ws.betaBar[li*k:]
		for t := 0; t < cfg.TauP; t++ {
			best, bestGain := -1, 0.0
			for ki := 0; ki < k; ki++ {
				if ws.pilot[ki] == t && (best < 0 || row[ki] > bestGain) {
					best, bestGain = ki, row[ki]
				}
			}
			if best >= 0 {
				ws.serve[li*k+best] = true
			}
		}
	}
	for ki := 0; ki < k; ki++ {
		ws.serve[ws.master[ki]*k+ki] = true
	}

	// Estimation statistics under pilot contamination: psi is the
	// despread pilot-signal energy at one AP antenna, gammaBar the
	// per-antenna variance of the MMSE channel estimate, and zAP the
	// per-antenna effective noise floor (thermal plus the estimation
	// error of every UE) the combiners see.
	tauP := float64(cfg.TauP)
	for li := 0; li < l; li++ {
		row := ws.betaBar[li*k:]
		for t := 0; t < cfg.TauP; t++ {
			s := 1.0
			for ki := 0; ki < k; ki++ {
				if ws.pilot[ki] == t {
					s += tauP * row[ki]
				}
			}
			ws.psi[li*cfg.TauP+t] = s
		}
		z := 1.0
		for ki := 0; ki < k; ki++ {
			gm := tauP * row[ki] * row[ki] / ws.psi[li*cfg.TauP+ws.pilot[ki]]
			ws.gammaBar[li*k+ki] = gm
			z += row[ki] - gm
		}
		ws.zAP[li] = z
	}
}
