package cellfree

import (
	"math"
	"testing"
)

func TestRunDeterministic(t *testing.T) {
	for _, comb := range []Combiner{CombinerMR, CombinerMMSE} {
		cfg := Quick()
		cfg.Combiner = comb
		cfg.Seed = 42
		a, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// A fresh workspace and a reused one must agree bit for bit.
		ws := NewWorkspace()
		for round := 0; round < 2; round++ {
			b, err := RunWith(ws, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for i := range a.SE {
				if a.SE[i] != b.SE[i] {
					t.Fatalf("%v round %d: SE[%d] = %v != %v", comb, round, i, b.SE[i], a.SE[i])
				}
			}
		}
	}
}

// TestWorkspaceShapeReuse runs configs of different sizes through one
// workspace and checks each still matches a fresh-workspace run, so
// buffer reuse can never leak state across shapes.
func TestWorkspaceShapeReuse(t *testing.T) {
	ws := NewWorkspace()
	big := Quick()
	big.L, big.K, big.N = 30, 10, 2
	big.Combiner = CombinerMMSE
	small := Quick()
	small.Combiner = CombinerMMSE
	for _, cfg := range []Config{big, small, big} {
		got, err := RunWith(ws, cfg)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want.SE {
			if got.SE[i] != want.SE[i] {
				t.Fatalf("L=%d: SE[%d] = %v, fresh workspace %v", cfg.L, i, got.SE[i], want.SE[i])
			}
		}
	}
}

// TestMMSEDominatesMR pins the ordering the smoke gate asserts, at its
// strongest form: on the same seed (hence the same snapshot and the
// same channel draws) MMSE combining achieves at least MR's SE for
// every single user, because the MMSE combiner maximizes the SINR both
// are scored by.
func TestMMSEDominatesMR(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		mr := Quick()
		mr.Seed = seed
		mm := mr
		mm.Combiner = CombinerMMSE
		a, err := Run(mr)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(mm)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a.SE {
			if !(a.SE[i] > 0) || math.IsInf(a.SE[i], 0) {
				t.Fatalf("seed %d: MR SE[%d] = %v not positive finite", seed, i, a.SE[i])
			}
			if b.SE[i] < a.SE[i] {
				t.Fatalf("seed %d: MMSE SE[%d] = %v < MR %v", seed, i, b.SE[i], a.SE[i])
			}
		}
	}
}

// TestSetupStructure checks the combinatorial invariants of pilot
// assignment and dynamic cooperation clustering on many snapshots.
func TestSetupStructure(t *testing.T) {
	cfg := Quick()
	ws := NewWorkspace()
	for seed := int64(1); seed <= 50; seed++ {
		cfg.Seed = seed
		if _, err := RunWith(ws, cfg); err != nil {
			t.Fatal(err)
		}
		counts := make([]int, cfg.TauP)
		for ki := 0; ki < cfg.K; ki++ {
			p := ws.pilot[ki]
			if p < 0 || p >= cfg.TauP {
				t.Fatalf("seed %d: pilot[%d] = %d out of range", seed, ki, p)
			}
			counts[p]++
			if ki < cfg.TauP && p != ki {
				t.Fatalf("seed %d: UE %d should hold orthogonal pilot %d, got %d", seed, ki, ki, p)
			}
			if !ws.serve[ws.master[ki]*cfg.K+ki] {
				t.Fatalf("seed %d: UE %d not served by its master AP", seed, ki)
			}
		}
		// K > TauP forces reuse somewhere.
		if cfg.K > cfg.TauP {
			reused := false
			for _, c := range counts {
				if c > 1 {
					reused = true
				}
			}
			if !reused {
				t.Fatalf("seed %d: no pilot reused despite K=%d > TauP=%d", seed, cfg.K, cfg.TauP)
			}
		}
		// An AP serves at most one UE per pilot, plus masters: never
		// more than TauP + masters-forced extras, and trivially never
		// more than K; check the per-pilot rule directly.
		for li := 0; li < cfg.L; li++ {
			perPilot := make(map[int]int)
			for ki := 0; ki < cfg.K; ki++ {
				if ws.serve[li*cfg.K+ki] && ws.master[ki] != li {
					perPilot[ws.pilot[ki]]++
				}
			}
			for p, c := range perPilot {
				if c > 1 {
					t.Fatalf("seed %d: AP %d serves %d non-master UEs on pilot %d", seed, li, c, p)
				}
			}
		}
		// Estimation statistics are sane: 0 < gammaBar <= betaBar.
		for i, gm := range ws.gammaBar[:cfg.L*cfg.K] {
			if !(gm > 0) || gm > ws.betaBar[i] {
				t.Fatalf("seed %d: gammaBar[%d] = %v outside (0, betaBar=%v]", seed, i, gm, ws.betaBar[i])
			}
		}
	}
}

// TestContaminationReducesGamma pins the pilot-contamination
// accounting: adding a co-pilot UE strictly lowers the estimate
// quality of the UE it contaminates.
func TestContaminationReducesGamma(t *testing.T) {
	cfg := Quick()
	cfg.Seed = 7
	ws := NewWorkspace()
	if _, err := RunWith(ws, cfg); err != nil {
		t.Fatal(err)
	}
	// Find a contaminated pair and an AP: gammaBar must be below the
	// contamination-free value tauP*beta^2/(tauP*beta+1).
	tauP := float64(cfg.TauP)
	found := false
	for ki := 0; ki < cfg.K && !found; ki++ {
		for kj := 0; kj < cfg.K; kj++ {
			if kj == ki || ws.pilot[kj] != ws.pilot[ki] {
				continue
			}
			b := ws.betaBar[ki] // AP 0
			clean := tauP * b * b / (tauP*b + 1)
			if got := ws.gammaBar[ki]; got >= clean {
				t.Fatalf("UE %d contaminated by %d but gammaBar %v >= clean %v", ki, kj, got, clean)
			}
			found = true
			break
		}
	}
	if !found {
		t.Skip("no contaminated pair in this snapshot")
	}
}

func TestQuantile(t *testing.T) {
	r := Result{SE: []float64{3, 1, 2, 4}}
	med, scratch := r.Quantile(0.5, nil)
	if med != 2.5 {
		t.Fatalf("median = %v, want 2.5", med)
	}
	if lo, _ := r.Quantile(0, scratch); lo != 1 {
		t.Fatalf("q0 = %v, want 1", lo)
	}
	if hi, _ := r.Quantile(1, scratch); hi != 4 {
		t.Fatalf("q1 = %v, want 4", hi)
	}
	if q, _ := r.Quantile(0.25, scratch); q != 1.75 {
		t.Fatalf("q25 = %v, want 1.75", q)
	}
}

func TestValidate(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.L = 0 },
		func(c *Config) { c.N = 0 },
		func(c *Config) { c.K = 0 },
		func(c *Config) { c.TauP = 0 },
		func(c *Config) { c.TauC = c.TauP },
		func(c *Config) { c.SquareLength = 0 },
		func(c *Config) { c.PowerMW = 0 },
		func(c *Config) { c.NoiseMW = -1 },
		func(c *Config) { c.SigmaShadowDB = -1 },
		func(c *Config) { c.PathLoss.D0 = 0 },
		func(c *Config) { c.Realizations = 0 },
		func(c *Config) { c.Combiner = Combiner(9) },
	}
	for i, mut := range bad {
		cfg := Quick()
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: bad config validated", i)
		}
	}
	if err := Quick().Validate(); err != nil {
		t.Errorf("Quick preset invalid: %v", err)
	}
	if err := Paper(4).Validate(); err != nil {
		t.Errorf("Paper preset invalid: %v", err)
	}
}
