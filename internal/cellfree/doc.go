// Package cellfree simulates the uplink of a cell-free massive MIMO
// network: the paper's cooperate-as-a-virtual-array idea pushed to its
// modern extreme, where L distributed access points (APs) with N
// antennas each jointly serve K users over the same time-frequency
// resource (Björnson/Sanguinetti, "Scalable Cell-Free Massive MIMO
// Systems"). Where the cooperative-hop kernels of internal/coop work
// on mt x mr <= 4 clusters, this package runs 25-400 APs — the workload
// that stresses internal/mathx at 100+ dimensions.
//
// One trial is one network snapshot, evaluated end to end:
//
//  1. Setup generation: APs and UEs dropped uniformly on a
//     wrapped-around (torus) square, large-scale gains from the
//     three-slope path loss model (channel.ThreeSlopePathLoss) with
//     correlated log-normal shadowing (one AP term plus one UE term,
//     so two links sharing an endpoint are correlated).
//  2. Pilot assignment: the first TauP UEs get orthogonal pilots;
//     every later UE picks the pilot with the least contamination at
//     its master AP. Contamination is carried through every later
//     stage — estimates of co-pilot UEs are parallel vectors, which is
//     exactly the impairment MMSE combining exploits and MR cannot.
//  3. Per-AP MMSE channel estimation from the contaminated pilot
//     observations.
//  4. Dynamic cooperation clustering (DCC): each AP serves, per pilot,
//     the UE it hears strongest; every UE is additionally served by
//     its master AP.
//  5. Combining and spectral efficiency: maximum-ratio (MR) combining
//     over each UE's DCC cluster, or centralized MMSE combining over
//     the whole array — a Hermitian solve of dimension L*N per
//     realization, batched over the K users through one Cholesky
//     factorization (mathx.Cholesky.SolveBatchInto). The per-user
//     uplink SE averages log2(1+SINR) over channel realizations with
//     the (1 - TauP/TauC) pilot-overhead prelog.
//
// Because the MMSE combiner maximizes the instantaneous SINR that both
// combiners are scored by, MMSE SE >= MR SE holds per user per
// realization — the ordering the ext-cellfree experiment and the
// cellfree-smoke gate assert.
//
// Determinism: a Config fully determines the result. The PRNG walk
// from Config.Seed is fixed (AP positions, UE positions, AP shadowing,
// UE shadowing, then per realization the channels UE-major and the
// pilot noise pilot-major), so a trial replays bit-for-bit anywhere —
// the property the registered cellfree.se kernels inherit from the
// chunk-seeded Monte-Carlo plan.
package cellfree
