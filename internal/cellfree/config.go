package cellfree

import (
	"fmt"

	"repro/internal/channel"
)

// Combiner selects the uplink receive combining scheme.
type Combiner int

const (
	// CombinerMR is maximum-ratio combining over the UE's DCC cluster:
	// fully distributed, no matrix inversion anywhere.
	CombinerMR Combiner = iota
	// CombinerMMSE is centralized MMSE combining over the full array:
	// one L*N-dimensional Hermitian solve per realization, shared by
	// all K users through a batched Cholesky solve.
	CombinerMMSE
)

func (c Combiner) String() string {
	switch c {
	case CombinerMR:
		return "mr"
	case CombinerMMSE:
		return "mmse"
	default:
		return fmt.Sprintf("combiner(%d)", int(c))
	}
}

// Config describes one cell-free scenario. Equal Configs reproduce
// bit-identical results.
type Config struct {
	// L is the number of access points.
	L int
	// N is the number of antennas per AP.
	N int
	// K is the number of user equipments.
	K int
	// TauP is the number of mutually orthogonal pilots per coherence
	// block; K > TauP forces pilot reuse and hence contamination.
	TauP int
	// TauC is the coherence block length in samples; the SE prelog is
	// 1 - TauP/TauC.
	TauC int
	// SquareLength is the side of the wrapped-around deployment square
	// in metres.
	SquareLength float64
	// PowerMW is the uplink transmit power per UE in milliwatts.
	PowerMW float64
	// NoiseMW is the receiver noise power in milliwatts (20 MHz at a
	// 9 dB noise figure gives about 6.3e-10).
	NoiseMW float64
	// SigmaShadowDB is the log-normal shadowing standard deviation in
	// dB, applied beyond the outer path-loss breakpoint; 0 disables
	// shadowing.
	SigmaShadowDB float64
	// PathLoss is the three-slope large-scale model.
	PathLoss channel.ThreeSlopePathLoss
	// Realizations is the number of small-scale channel realizations
	// the per-user SE averages over within one setup.
	Realizations int
	// Combiner selects MR or MMSE combining.
	Combiner Combiner
	// Seed drives every random draw of the trial.
	Seed int64
}

// Quick returns the test-scale preset: 25 single-antenna APs serving 8
// UEs with 4 pilots on a 500 m square. Small enough for golden tests
// and smoke gates, large enough that pilot contamination and DCC are
// both exercised (8 UEs on 4 pilots).
func Quick() Config {
	return Config{
		L: 25, N: 1, K: 8,
		TauP: 4, TauC: 200,
		SquareLength:  500,
		PowerMW:       100,
		NoiseMW:       6.3e-10,
		SigmaShadowDB: 8,
		PathLoss:      channel.ThreeSlopePathLoss{LRefDB: 140.7, D0: 10, D1: 50},
		Realizations:  1,
		Seed:          1,
	}
}

// Paper returns the Figure-6-scale preset of the cell-free exemplars:
// L=100 APs with n antennas each serving K=40 UEs with 10 pilots on a
// 1 km square, 4 channel realizations per setup.
func Paper(n int) Config {
	cfg := Quick()
	cfg.L, cfg.N, cfg.K = 100, n, 40
	cfg.TauP = 10
	cfg.SquareLength = 1000
	cfg.Realizations = 4
	return cfg
}

// Validate checks the configuration; every error is a configuration
// mistake a kernel build must surface before trials start.
func (c Config) Validate() error {
	switch {
	case c.L < 1 || c.L > 4096:
		return fmt.Errorf("cellfree: L = %d outside [1, 4096]", c.L)
	case c.N < 1 || c.N > 64:
		return fmt.Errorf("cellfree: N = %d outside [1, 64]", c.N)
	case c.K < 1 || c.K > 4096:
		return fmt.Errorf("cellfree: K = %d outside [1, 4096]", c.K)
	case c.TauP < 1:
		return fmt.Errorf("cellfree: TauP = %d, need >= 1", c.TauP)
	case c.TauC <= c.TauP:
		return fmt.Errorf("cellfree: TauC = %d must exceed TauP = %d", c.TauC, c.TauP)
	case !(c.SquareLength > 0):
		return fmt.Errorf("cellfree: SquareLength = %g, need > 0", c.SquareLength)
	case !(c.PowerMW > 0):
		return fmt.Errorf("cellfree: PowerMW = %g, need > 0", c.PowerMW)
	case !(c.NoiseMW > 0):
		return fmt.Errorf("cellfree: NoiseMW = %g, need > 0", c.NoiseMW)
	case c.SigmaShadowDB < 0:
		return fmt.Errorf("cellfree: SigmaShadowDB = %g, need >= 0", c.SigmaShadowDB)
	case !(c.PathLoss.D0 > 0) || c.PathLoss.D1 < c.PathLoss.D0:
		return fmt.Errorf("cellfree: path-loss breakpoints D0 = %g, D1 = %g need 0 < D0 <= D1",
			c.PathLoss.D0, c.PathLoss.D1)
	case c.Realizations < 1:
		return fmt.Errorf("cellfree: Realizations = %d, need >= 1", c.Realizations)
	case c.Combiner != CombinerMR && c.Combiner != CombinerMMSE:
		return fmt.Errorf("cellfree: unknown combiner %d", int(c.Combiner))
	}
	return nil
}

// snr returns the per-antenna transmit SNR rho = p/sigma2 that the
// noise-normalized channel units are scaled by.
func (c Config) snr() float64 { return c.PowerMW / c.NoiseMW }

// prelog returns the pilot-overhead factor 1 - TauP/TauC.
func (c Config) prelog() float64 {
	return 1 - float64(c.TauP)/float64(c.TauC)
}
