package cellfree

import (
	"math"
	"math/cmplx"
	"sort"

	"repro/internal/mathx"
)

// Result is one trial's outcome: the per-user uplink spectral
// efficiencies of a single network snapshot.
type Result struct {
	// SE holds bit/s/Hz per UE. From RunWith it aliases workspace
	// storage and is valid until the workspace's next trial; Run
	// returns a private copy.
	SE []float64
}

// Quantile returns the q-th quantile of the per-user SE distribution,
// interpolated between order statistics. scratch (grown as needed) is
// reused for sorting so hot loops stay allocation-free; pass nil when
// that doesn't matter.
func (r Result) Quantile(q float64, scratch []float64) (float64, []float64) {
	if cap(scratch) < len(r.SE) {
		scratch = make([]float64, len(r.SE))
	}
	scratch = scratch[:len(r.SE)]
	copy(scratch, r.SE)
	sort.Float64s(scratch)
	return mathx.Quantile(scratch, q), scratch
}

// Run executes one trial with a pooled workspace and returns a
// self-contained result.
func Run(cfg Config) (Result, error) {
	ws := GetWorkspace()
	defer PutWorkspace(ws)
	r, err := RunWith(ws, cfg)
	if err != nil {
		return Result{}, err
	}
	return Result{SE: append([]float64(nil), r.SE...)}, nil
}

// RunWith executes one trial — setup generation, Realizations channel
// draws, combining, SE — on the given workspace. The returned SE slice
// aliases the workspace.
func RunWith(ws *Workspace, cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	ws.ensure(&cfg)
	ws.rng.Reseed(cfg.Seed)
	ws.genSetup(&cfg)

	for i := range ws.seSum[:cfg.K] {
		ws.seSum[i] = 0
	}
	for r := 0; r < cfg.Realizations; r++ {
		ws.drawRealization(&cfg)
		ws.estimate(&cfg)
		if cfg.Combiner == CombinerMMSE {
			ws.mmseStep(&cfg)
		} else {
			ws.mrStep(&cfg)
		}
	}

	inv := cfg.prelog() / float64(cfg.Realizations)
	for ki := 0; ki < cfg.K; ki++ {
		ws.se[ki] = ws.seSum[ki] * inv
	}
	return Result{SE: ws.se[:cfg.K]}, nil
}

// drawRealization fills hbar with one small-scale channel draw
// (UE-major, antenna-minor) and np with fresh unit pilot noise
// (pilot-major, antenna-minor). The order is fixed: it is the part of
// the determinism contract both combiners share, which is what lets
// the experiment drivers run MR and MMSE on identical snapshots.
func (ws *Workspace) drawRealization(cfg *Config) {
	rng := ws.rng.Rand
	ln, k := cfg.L*cfg.N, cfg.K
	const invSqrt2 = 1 / math.Sqrt2
	for ki := 0; ki < k; ki++ {
		for a := 0; a < ln; a++ {
			s := math.Sqrt(ws.betaBar[(a/cfg.N)*k+ki]) * invSqrt2
			ws.hbar.Data[a*k+ki] = complex(rng.NormFloat64()*s, rng.NormFloat64()*s)
		}
	}
	for t := 0; t < cfg.TauP; t++ {
		for a := 0; a < ln; a++ {
			ws.np.Data[a*cfg.TauP+t] = complex(rng.NormFloat64()*invSqrt2, rng.NormFloat64()*invSqrt2)
		}
	}
}

// estimate despreads the pilots and forms the per-AP MMSE channel
// estimates. np is overwritten in place with the despread observation
// y_t = sqrt(TauP) * sum_{i on pilot t} hbar_i + noise; the estimate of
// UE k at antenna a is then a deterministic rescaling of its pilot's
// observation, so co-pilot UEs get parallel (contaminated) estimates.
func (ws *Workspace) estimate(cfg *Config) {
	ln, k, tp := cfg.L*cfg.N, cfg.K, cfg.TauP
	sqrtTP := math.Sqrt(float64(tp))
	for a := 0; a < ln; a++ {
		y := ws.np.Data[a*tp : (a+1)*tp]
		h := ws.hbar.Data[a*k : (a+1)*k]
		for ki := 0; ki < k; ki++ {
			y[ws.pilot[ki]] += complex(sqrtTP, 0) * h[ki]
		}
		li := a / cfg.N
		g := ws.ghat.Data[a*k : (a+1)*k]
		for ki := 0; ki < k; ki++ {
			coef := sqrtTP * ws.betaBar[li*k+ki] / ws.psi[li*tp+ws.pilot[ki]]
			g[ki] = complex(coef, 0) * y[ws.pilot[ki]]
		}
	}
}

// sinrFrom scores one UE's combiner: dots[i] = v^H ghat_i must already
// be filled and zq = v^H Z v computed over the combiner's support. The
// expression is the instantaneous SINR with channel estimates in the
// numerator and estimation-error-plus-noise power in the denominator —
// the quantity the MMSE combiner maximizes.
func (ws *Workspace) sinrFrom(k, ki int, zq float64) float64 {
	num := 0.0
	inter := 0.0
	for i := 0; i < k; i++ {
		p := real(ws.dots[i])*real(ws.dots[i]) + imag(ws.dots[i])*imag(ws.dots[i])
		if i == ki {
			num = p
		} else {
			inter += p
		}
	}
	return num / (inter + zq)
}

// mrStep accumulates one realization of MR combining over each UE's
// DCC cluster: v = ghat_k restricted to the serving APs' antennas.
func (ws *Workspace) mrStep(cfg *Config) {
	k := cfg.K
	for ki := 0; ki < k; ki++ {
		ants := ws.ants[:0]
		for li := 0; li < cfg.L; li++ {
			if ws.serve[li*k+ki] {
				for m := 0; m < cfg.N; m++ {
					ants = append(ants, li*cfg.N+m)
				}
			}
		}
		for i := range ws.dots[:k] {
			ws.dots[i] = 0
		}
		zq := 0.0
		for _, a := range ants {
			row := ws.ghat.Data[a*k : (a+1)*k]
			v := row[ki]
			c := cmplx.Conj(v)
			for i := 0; i < k; i++ {
				ws.dots[i] += c * row[i]
			}
			zq += (real(v)*real(v) + imag(v)*imag(v)) * ws.zAP[a/cfg.N]
		}
		ws.seSum[ki] += math.Log2(1 + ws.sinrFrom(k, ki, zq))
	}
}

// mmseStep accumulates one realization of centralized MMSE combining:
// all K combiners come out of one Cholesky factorization of the
// full-array Gram matrix A = Ghat Ghat^H + diag(z), solved against the
// K estimate columns in one lane-major batch.
func (ws *Workspace) mmseStep(cfg *Config) {
	ln, k := cfg.L*cfg.N, cfg.K
	// Lower triangle of the Gram matrix; Factor never reads above the
	// diagonal. Rows of ghat are contiguous, so each entry is one
	// contiguous K-length dot product.
	for r := 0; r < ln; r++ {
		gr := ws.ghat.Data[r*k : (r+1)*k]
		for c := 0; c <= r; c++ {
			gc := ws.ghat.Data[c*k : (c+1)*k]
			var s complex128
			for i := 0; i < k; i++ {
				s += gr[i] * cmplx.Conj(gc[i])
			}
			if c == r {
				s += complex(ws.zAP[r/cfg.N], 0)
			}
			ws.gram.Data[r*ln+c] = s
		}
	}
	if err := ws.chol.Factor(ws.gram); err != nil {
		// diag(z) >= 1 makes the Gram matrix positive definite; a
		// failure here is a programming error, not a data condition.
		panic(err)
	}
	// ghat's row-major LN x K layout is exactly the lane-major staging
	// of the batch solver: lane a carries antenna a of all K vectors.
	copy(ws.rhs.Data, ws.ghat.Data[:ln*k])
	ws.chol.SolveBatchInto(ws.rhs)

	for ki := 0; ki < k; ki++ {
		for i := range ws.dots[:k] {
			ws.dots[i] = 0
		}
		zq := 0.0
		for a := 0; a < ln; a++ {
			v := ws.rhs.Data[a*k+ki]
			if v == 0 {
				continue
			}
			c := cmplx.Conj(v)
			row := ws.ghat.Data[a*k : (a+1)*k]
			for i := 0; i < k; i++ {
				ws.dots[i] += c * row[i]
			}
			zq += (real(v)*real(v) + imag(v)*imag(v)) * ws.zAP[a/cfg.N]
		}
		ws.seSum[ki] += math.Log2(1 + ws.sinrFrom(k, ki, zq))
	}
}
