package campaign

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"strconv"
	"strings"

	"repro/internal/experiments"
	"repro/internal/mathx"
	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/sim"
	"repro/internal/store"
)

// defaultCheckpointChunks is the chunk interval between checkpoint
// persists when neither the spec nor the runner chooses one.
const defaultCheckpointChunks = 4

// An Observer watches a campaign run; the cogmimod Manager uses it to
// expose per-experiment progress over HTTP. Callbacks arrive from the
// runner's goroutine, in experiment order.
type Observer interface {
	// ExperimentStarted fires when entry i begins computing (cache hits
	// skip it). tracker carries the entry's live trial progress.
	ExperimentStarted(i int, name string, tracker *obs.Tracker)
	// ExperimentFinished fires when entry i resolves, cached or not.
	ExperimentFinished(i int, name string, cached bool, err error)
}

// RunStats summarises what one campaign run actually did — how much
// work checkpoints and the result cache saved.
type RunStats struct {
	Experiments    int   `json:"experiments"`
	Computed       int   `json:"computed"`
	Cached         int   `json:"cached"`
	ChunksResumed  int64 `json:"chunks_resumed"`
	ChunksComputed int64 `json:"chunks_computed"`
	Checkpoints    int64 `json:"checkpoints"`
}

// stateRecord is the campaign/<id>/state payload.
type stateRecord struct {
	Status string `json:"status"` // running | done | failed
	Error  string `json:"error,omitempty"`
}

// Runner executes campaign specs against a durable store.
type Runner struct {
	// Store persists specs, checkpoints, results and reports. Required.
	Store *store.Store
	// Workers caps Monte-Carlo and sweep-row concurrency; 0 means
	// GOMAXPROCS. Any value yields bit-identical reports.
	Workers int
	// CheckpointEvery is the default chunk interval between checkpoint
	// persists for specs that do not set checkpoint_chunks; 0 means 4.
	CheckpointEvery int
	// Logger receives campaign lifecycle logs; nil means slog.Default().
	Logger *slog.Logger
	// Observer, when non-nil, watches experiment transitions.
	Observer Observer
}

// Run executes spec to completion and returns the campaign report. The
// run is crash-safe: every completed experiment persists its result
// before its checkpoints are dropped, every in-flight kernel run
// checkpoints its chunk prefix, and rerunning the same spec — after a
// crash, a cancellation or a clean finish — replays everything durable
// and produces a byte-identical report.
//
// A context cancellation returns ctx's error and leaves the campaign's
// durable state "running" so resume-on-boot picks it back up; any
// other failure marks it "failed".
func (r *Runner) Run(ctx context.Context, spec Spec) (string, RunStats, error) {
	if r.Store == nil {
		return "", RunStats{}, fmt.Errorf("campaign: Runner.Store is required")
	}
	if err := spec.Validate(); err != nil {
		return "", RunStats{}, err
	}
	logger := r.Logger
	if logger == nil {
		logger = slog.Default()
	}
	cid := spec.ID()
	logger = logger.With("campaign", cid, "name", spec.Name)

	every := spec.CheckpointChunks
	if every <= 0 {
		every = r.CheckpointEvery
	}
	if every <= 0 {
		every = defaultCheckpointChunks
	}

	specJSON, err := json.Marshal(spec)
	if err != nil {
		return "", RunStats{}, fmt.Errorf("campaign: encoding spec: %w", err)
	}
	if err := r.Store.Put(specKey(cid), specJSON, store.Meta{Kind: "campaign-spec", Experiment: spec.Name}); err != nil {
		return "", RunStats{}, fmt.Errorf("campaign: persisting spec: %w", err)
	}
	r.putState(cid, stateRecord{Status: "running"})
	logger.Info("campaign started", "experiments", len(spec.Experiments), "checkpoint_chunks", every)

	stats := RunStats{Experiments: len(spec.Experiments)}
	counters := &runCounters{}
	sections := make([]string, 0, len(spec.Experiments))
	for i, e := range spec.Experiments {
		section, cached, err := r.runExperiment(ctx, cid, i, e, every, counters)
		if err != nil {
			stats.flushCounters(counters)
			if ctx.Err() != nil {
				// Interrupted, not failed: durable state stays "running"
				// so ResumeAll re-enters at the first unfinished chunk.
				metRuns.With("interrupted").Inc()
				logger.Info("campaign interrupted", "experiment", e.DisplayName(), "cause", ctx.Err())
				return "", stats, err
			}
			metExperiments.With("failed").Inc()
			metRuns.With("failed").Inc()
			r.putState(cid, stateRecord{Status: "failed", Error: err.Error()})
			logger.Error("campaign failed", "experiment", e.DisplayName(), "error", err)
			return "", stats, fmt.Errorf("campaign %s: experiment %d (%s): %w", cid, i, e.DisplayName(), err)
		}
		if cached {
			stats.Cached++
			metExperiments.With("cached").Inc()
		} else {
			stats.Computed++
			metExperiments.With("computed").Inc()
		}
		sections = append(sections, section)
	}
	stats.flushCounters(counters)

	report := renderReport(spec, sections)
	if err := r.Store.Put(reportKey(cid), []byte(report), store.Meta{Kind: "campaign-report", Experiment: spec.Name}); err != nil {
		return "", stats, fmt.Errorf("campaign: persisting report: %w", err)
	}
	r.putState(cid, stateRecord{Status: "done"})
	metRuns.With("done").Inc()
	logger.Info("campaign done",
		"computed", stats.Computed, "cached", stats.Cached,
		"chunks_resumed", stats.ChunksResumed, "chunks_computed", stats.ChunksComputed)
	return report, stats, nil
}

// runExperiment resolves one entry: from the durable result if present,
// otherwise by computing it under a checkpointing executor. The result
// persists before the entry's checkpoints are deleted, so a crash
// between the two at worst leaves dead checkpoints that the next GC or
// completed rerun clears.
func (r *Runner) runExperiment(ctx context.Context, cid string, i int, e Experiment, every int, counters *runCounters) (section string, cached bool, err error) {
	name := e.DisplayName()
	key, meta := resultKey(e)
	if payload, _, ok := r.Store.Get(key); ok {
		if r.Observer != nil {
			r.Observer.ExperimentFinished(i, name, true, nil)
		}
		return string(payload), true, nil
	}

	tracker := obs.NewTracker()
	if r.Observer != nil {
		r.Observer.ExperimentStarted(i, name, tracker)
	}
	ex := &ckptExecutor{
		store: r.Store, cid: cid, expIdx: i,
		every: every, workers: r.Workers, stats: counters,
	}
	rctx := obs.WithProgress(ctx, tracker)
	rctx = sim.WithExecutor(rctx, ex)

	if e.ID != "" {
		rep, rerr := experiments.RunCtx(rctx, e.ID, experiments.Options{
			Seed: e.Seed, Quick: e.Quick, Workers: r.Workers,
		})
		if rerr == nil {
			section = rep.String()
		}
		err = rerr
	} else {
		section, err = r.runKernelEntry(rctx, ex, e)
	}
	if r.Observer != nil {
		r.Observer.ExperimentFinished(i, name, false, err)
	}
	if err != nil {
		return "", false, err
	}

	if perr := r.Store.Put(key, []byte(section), meta); perr != nil {
		return "", false, fmt.Errorf("persisting result: %w", perr)
	}
	r.Store.DeletePrefix(ckptPrefix(cid, i))
	return section, false, nil
}

// runKernelEntry executes a raw kernel entry through the checkpointing
// executor and renders its statistics as a one-row report section.
func (r *Runner) runKernelEntry(ctx context.Context, ex *ckptExecutor, e Experiment) (string, error) {
	run := sim.KernelRun{Kernel: e.Kernel, Params: e.KernelParams, Seed: e.Seed, Trials: e.Trials}
	parts, err := ex.RunShards(ctx, run)
	if err != nil {
		return "", err
	}
	var total mathx.Running
	for _, p := range parts {
		total.Merge(p)
	}
	title := fmt.Sprintf("%d trials, seed %d", e.Trials, e.Seed)
	if len(e.KernelParams) > 0 {
		pairs := make([]string, 0, len(e.KernelParams))
		for _, k := range sortedFloatKeys(e.KernelParams) {
			pairs = append(pairs, k+"="+strconv.FormatFloat(e.KernelParams[k], 'g', -1, 64))
		}
		title += ", " + strings.Join(pairs, " ")
	}
	rep := &experiments.Report{
		ID:     "kernel:" + e.Kernel,
		Title:  title,
		Header: []string{"n", "mean", "stderr", "ci95"},
		Rows: [][]string{{
			strconv.FormatInt(total.N(), 10),
			strconv.FormatFloat(total.Mean(), 'g', -1, 64),
			strconv.FormatFloat(total.StdErr(), 'g', -1, 64),
			strconv.FormatFloat(total.CI95(), 'g', -1, 64),
		}},
	}
	return rep.String(), nil
}

// resultKey maps an entry onto its durable result address. Registry
// entries use the service's canonical request key so a campaign result
// doubles as a warm cogmimod cache entry; kernel entries use the run's
// content hash.
func resultKey(e Experiment) (string, store.Meta) {
	if e.ID != "" {
		key := service.CanonicalKey(service.Request{
			ID: e.ID, Seed: e.Seed, Quick: e.Quick, Params: e.Params,
		})
		return string(key), store.Meta{Kind: "result", Experiment: e.ID, Seed: e.Seed}
	}
	run := sim.KernelRun{Kernel: e.Kernel, Params: e.KernelParams, Seed: e.Seed, Trials: e.Trials}
	return "kernel/" + runHash(run), store.Meta{Kind: "kernel-result", Experiment: e.Kernel, Seed: e.Seed}
}

// renderReport assembles the final campaign report. Sections are the
// per-entry reports (each already newline-terminated) separated by
// blank lines, under a small header — entirely a function of the spec
// and the entry statistics, so resumed runs reproduce it byte for byte.
func renderReport(spec Spec, sections []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== campaign: %s ==\n", spec.Name)
	fmt.Fprintf(&b, "experiments: %d\n\n", len(spec.Experiments))
	b.WriteString(strings.Join(sections, "\n"))
	return b.String()
}

// putState best-effort persists the campaign lifecycle record; state is
// advisory (resume decisions read it) while correctness rests on
// results and checkpoints, so a write failure logs rather than aborts.
func (r *Runner) putState(cid string, st stateRecord) {
	payload, _ := json.Marshal(st)
	if err := r.Store.Put(stateKey(cid), payload, store.Meta{Kind: "campaign-state"}); err != nil {
		lg := r.Logger
		if lg == nil {
			lg = slog.Default()
		}
		lg.Warn("campaign state write failed", "campaign", cid, "error", err)
	}
}

// flushCounters folds the executor's atomic counters into the stats
// snapshot.
func (s *RunStats) flushCounters(c *runCounters) {
	s.ChunksResumed = c.chunksResumed.Load()
	s.ChunksComputed = c.chunksComputed.Load()
	s.Checkpoints = c.checkpoints.Load()
}
