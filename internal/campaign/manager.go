package campaign

import (
	"context"
	"encoding/json"
	"log/slog"
	"sort"
	"strings"
	"sync"

	"repro/internal/obs"
	"repro/internal/store"
)

// ExpStatus is one experiment's live view inside a campaign status.
type ExpStatus struct {
	Name   string `json:"name"`
	Status string `json:"status"` // pending | running | done | cached | failed
	// Trial progress while running, fed by the entry's obs.Tracker.
	DoneTrials  int64 `json:"done_trials,omitempty"`
	TotalTrials int64 `json:"total_trials,omitempty"`
}

// Status is the HTTP-facing snapshot of a campaign.
type Status struct {
	ID          string      `json:"campaign"`
	Name        string      `json:"name"`
	Status      string      `json:"status"` // running | done | failed
	Error       string      `json:"error,omitempty"`
	Stats       *RunStats   `json:"stats,omitempty"`
	Experiments []ExpStatus `json:"experiments,omitempty"`
	Report      string      `json:"report,omitempty"`
}

// expTrack is the manager-owned mutable record behind an ExpStatus;
// all fields are guarded by the owning campaignRun's mutex.
type expTrack struct {
	name    string
	status  string
	tracker *obs.Tracker
}

// campaignRun is one tracked campaign execution. Its own mutex guards
// the mutable fields so observer callbacks (runner goroutine) never
// race status snapshots (HTTP goroutines).
type campaignRun struct {
	spec Spec
	done chan struct{} // closed on terminal state

	mu     sync.Mutex
	status string // running | done | failed
	errMsg string
	report string
	stats  RunStats
	exps   []*expTrack
}

// Manager owns campaign executions for a long-lived process (cogmimod):
// it deduplicates submissions by content-addressed ID, runs each
// campaign on its own goroutine, surfaces live per-experiment progress,
// and on boot resumes every campaign the previous process left
// unfinished.
type Manager struct {
	runner  Runner
	baseCtx context.Context
	stop    context.CancelFunc

	mu   sync.Mutex
	runs map[string]*campaignRun
	wg   sync.WaitGroup
}

// NewManager builds a manager executing campaigns through st.
func NewManager(st *store.Store, workers int, logger *slog.Logger) *Manager {
	if logger == nil {
		logger = slog.Default()
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Manager{
		runner:  Runner{Store: st, Workers: workers, Logger: logger},
		baseCtx: ctx,
		stop:    cancel,
		runs:    make(map[string]*campaignRun),
	}
}

// Submit starts spec unless the same campaign is already tracked.
// Submission is idempotent by construction: the ID is a content hash,
// so resubmitting a spec returns the existing run (started reports
// false) instead of racing a duplicate against it.
func (m *Manager) Submit(spec Spec) (id string, started bool, err error) {
	if err := spec.Validate(); err != nil {
		return "", false, err
	}
	cid := spec.ID()
	m.mu.Lock()
	if _, ok := m.runs[cid]; ok {
		m.mu.Unlock()
		return cid, false, nil
	}
	run := &campaignRun{
		spec:   spec,
		done:   make(chan struct{}),
		status: "running",
		exps:   make([]*expTrack, len(spec.Experiments)),
	}
	for i, e := range spec.Experiments {
		run.exps[i] = &expTrack{name: e.DisplayName(), status: "pending"}
	}
	m.runs[cid] = run
	m.wg.Add(1)
	m.mu.Unlock()

	go func() {
		defer m.wg.Done()
		r := m.runner // copy: per-run Observer must not race other runs
		r.Observer = (*runObserver)(run)
		report, stats, rerr := r.Run(m.baseCtx, spec)
		run.mu.Lock()
		defer run.mu.Unlock()
		run.stats = stats
		switch {
		case rerr == nil:
			run.status, run.report = "done", report
		case m.baseCtx.Err() != nil:
			// Shutdown interruption: durable state is still "running",
			// and the next boot's ResumeAll will finish the campaign.
			run.errMsg = rerr.Error()
		default:
			run.status, run.errMsg = "failed", rerr.Error()
		}
		close(run.done)
	}()
	return cid, true, nil
}

// runObserver adapts a campaignRun to the runner's Observer interface.
type runObserver campaignRun

func (o *runObserver) ExperimentStarted(i int, name string, tracker *obs.Tracker) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.exps[i].tracker = tracker
	o.exps[i].status = "running"
}

func (o *runObserver) ExperimentFinished(i int, name string, cached bool, err error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	switch {
	case err != nil:
		o.exps[i].status = "failed"
	case cached:
		o.exps[i].status = "cached"
	default:
		o.exps[i].status = "done"
	}
}

// Get returns a campaign's status. Live runs answer from memory;
// otherwise the durable store is consulted, so campaigns finished by a
// previous process remain queryable after a restart.
func (m *Manager) Get(id string) (Status, bool) {
	m.mu.Lock()
	run, ok := m.runs[id]
	m.mu.Unlock()
	if ok {
		return statusOf(id, run), true
	}
	return m.storedStatus(id)
}

// List returns every known campaign — live and durable — sorted by ID.
func (m *Manager) List() []Status {
	seen := make(map[string]bool)
	var out []Status
	m.mu.Lock()
	ids := make([]string, 0, len(m.runs))
	for id := range m.runs {
		ids = append(ids, id)
	}
	m.mu.Unlock()
	for _, id := range ids {
		if st, ok := m.Get(id); ok {
			out = append(out, st)
			seen[id] = true
		}
	}
	for _, e := range m.runner.Store.EntriesByKind("campaign-spec") {
		id := strings.TrimSuffix(strings.TrimPrefix(e.Key, "campaign/"), "/spec")
		if seen[id] {
			continue
		}
		if st, ok := m.storedStatus(id); ok {
			out = append(out, st)
			seen[id] = true
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ResumeAll restarts every stored campaign whose durable state is not
// terminal — the crash-recovery path cogmimod runs at boot. Completed
// experiments replay from stored results and in-flight kernel runs
// re-enter their chunk plans at the first unfinished chunk, so resuming
// is cheap and byte-identical. Returns how many campaigns were resumed.
func (m *Manager) ResumeAll() int {
	resumed := 0
	for _, e := range m.runner.Store.EntriesByKind("campaign-spec") {
		payload, _, ok := m.runner.Store.Get(e.Key)
		if !ok {
			continue
		}
		spec, err := ParseSpec(payload)
		if err != nil {
			m.runner.Logger.Warn("stored campaign spec no longer parses; skipping",
				"key", e.Key, "error", err)
			continue
		}
		cid := spec.ID()
		if st, ok := m.storedStatus(cid); ok && st.Status != "running" {
			continue // done or failed: nothing to resume
		}
		if _, started, err := m.Submit(spec); err == nil && started {
			m.runner.Logger.Info("resuming campaign", "campaign", cid, "name", spec.Name)
			resumed++
		}
	}
	return resumed
}

// Wait blocks until the campaign reaches a terminal state or ctx
// expires, then returns its status.
func (m *Manager) Wait(ctx context.Context, id string) (Status, error) {
	m.mu.Lock()
	run, ok := m.runs[id]
	m.mu.Unlock()
	if !ok {
		if st, found := m.storedStatus(id); found {
			return st, nil
		}
		return Status{}, ErrNoSuchCampaign
	}
	select {
	case <-run.done:
		return statusOf(id, run), nil
	case <-ctx.Done():
		return statusOf(id, run), ctx.Err()
	}
}

// Stop cancels running campaigns and waits for their goroutines; their
// durable state stays "running", so the next boot resumes them.
func (m *Manager) Stop(ctx context.Context) error {
	m.stop()
	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// ErrNoSuchCampaign reports an unknown campaign ID.
var ErrNoSuchCampaign = errNoSuchCampaign{}

type errNoSuchCampaign struct{}

func (errNoSuchCampaign) Error() string { return "campaign: no such campaign" }

// statusOf snapshots a live run.
func statusOf(id string, run *campaignRun) Status {
	run.mu.Lock()
	defer run.mu.Unlock()
	st := Status{
		ID:     id,
		Name:   run.spec.Name,
		Status: run.status,
		Error:  run.errMsg,
		Report: run.report,
	}
	if run.status != "running" {
		stats := run.stats
		st.Stats = &stats
	}
	for _, e := range run.exps {
		es := ExpStatus{Name: e.name, Status: e.status}
		if snap := e.tracker.Snapshot(); snap.Total > 0 {
			es.DoneTrials, es.TotalTrials = snap.Done, snap.Total
		}
		st.Experiments = append(st.Experiments, es)
	}
	return st
}

// storedStatus reconstructs a status from the durable store alone —
// the view of campaigns run by previous processes. A spec with no
// state record counts as "running": the writer crashed before its
// first state write, and ResumeAll should pick it up.
func (m *Manager) storedStatus(id string) (Status, bool) {
	st := m.runner.Store
	specPayload, _, ok := st.Get(specKey(id))
	if !ok {
		return Status{}, false
	}
	var spec Spec
	status := Status{ID: id, Status: "running"}
	if json.Unmarshal(specPayload, &spec) == nil {
		status.Name = spec.Name
		for _, e := range spec.Experiments {
			es := ExpStatus{Name: e.DisplayName(), Status: "pending"}
			if key, _ := resultKey(e); st.Has(key) {
				es.Status = "done"
			}
			status.Experiments = append(status.Experiments, es)
		}
	}
	if payload, _, ok := st.Get(stateKey(id)); ok {
		var rec stateRecord
		if json.Unmarshal(payload, &rec) == nil && rec.Status != "" {
			status.Status, status.Error = rec.Status, rec.Error
		}
	}
	if payload, _, ok := st.Get(reportKey(id)); ok {
		status.Report = string(payload)
	}
	return status, true
}
