package campaign

import (
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/sim"
	"repro/internal/store"
)

func discardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

func openStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(store.Options{Dir: dir, Logger: discardLogger()})
	if err != nil {
		t.Fatalf("opening store: %v", err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

// kernelSpec is the resume witness: one raw kernel entry spanning
// exactly trials/ChunkSize chunks, checkpointing after every chunk.
func kernelSpec(trials int) Spec {
	return Spec{
		Name:             "resume-witness",
		CheckpointChunks: 1,
		Experiments: []Experiment{{
			Kernel: "coop.ber",
			Seed:   7,
			KernelParams: map[string]float64{
				"mt": 2, "mr": 2, "snr_db": 8, "bits": 16,
			},
			Trials: trials,
		}},
	}
}

// trackerObserver hands the test the first experiment's progress
// tracker so it can cancel the run at a chosen amount of work.
type trackerObserver struct{ ch chan *obs.Tracker }

func (o *trackerObserver) ExperimentStarted(i int, name string, tr *obs.Tracker) {
	select {
	case o.ch <- tr:
	default:
	}
}
func (o *trackerObserver) ExperimentFinished(int, string, bool, error) {}

// TestInterruptResumeByteIdentical is the in-process half of the crash
// contract: cancel a kernel campaign after at least two chunks, resume
// it with a different worker budget, and demand the exact bytes an
// uninterrupted run produces. The SIGKILL half lives in crash_test.go.
func TestInterruptResumeByteIdentical(t *testing.T) {
	const chunks = 12
	spec := kernelSpec(chunks * sim.ChunkSize)

	golden, goldenStats, err := (&Runner{
		Store: openStore(t, t.TempDir()), Workers: 2, Logger: discardLogger(),
	}).Run(context.Background(), spec)
	if err != nil {
		t.Fatalf("golden run: %v", err)
	}
	if goldenStats.ChunksComputed != chunks || goldenStats.ChunksResumed != 0 {
		t.Fatalf("golden stats = %+v, want %d computed, 0 resumed", goldenStats, chunks)
	}

	st := openStore(t, t.TempDir())
	watch := &trackerObserver{ch: make(chan *obs.Tracker, 1)}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		tr := <-watch.ch
		// Two completed chunks guarantee the first chunk's checkpoint is
		// durable: the runner persists a range's checkpoint before the
		// next range starts computing.
		for tr.Snapshot().Done < 2*sim.ChunkSize {
			time.Sleep(100 * time.Microsecond)
		}
		cancel()
	}()
	if _, _, err := (&Runner{
		Store: st, Workers: 2, Logger: discardLogger(), Observer: watch,
	}).Run(ctx, spec); err == nil {
		t.Fatal("interrupted run reported success")
	}
	if len(st.EntriesByKind("checkpoint")) == 0 {
		t.Fatal("no checkpoint persisted before the interruption")
	}
	payload, _, ok := st.Get(stateKey(spec.ID()))
	if !ok {
		t.Fatal("interrupted campaign has no durable state record")
	}
	var rec stateRecord
	if err := json.Unmarshal(payload, &rec); err != nil || rec.Status != "running" {
		t.Fatalf("interrupted campaign state = %q (%v), want running", rec.Status, err)
	}

	report, stats, err := (&Runner{
		Store: st, Workers: 3, Logger: discardLogger(),
	}).Run(context.Background(), spec)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if report != golden {
		t.Errorf("resumed report differs from uninterrupted run:\n--- resumed\n%s\n--- golden\n%s", report, golden)
	}
	if stats.ChunksResumed == 0 {
		t.Error("resume recomputed everything; expected replayed chunks")
	}
	if got := stats.ChunksResumed + stats.ChunksComputed; got != chunks {
		t.Errorf("resumed %d + computed %d = %d chunks, want %d",
			stats.ChunksResumed, stats.ChunksComputed, got, chunks)
	}
	if n := len(st.EntriesByKind("checkpoint")); n != 0 {
		t.Errorf("%d checkpoints survived completion; want 0", n)
	}

	// A third run replays the stored result without touching a kernel.
	again, againStats, err := (&Runner{Store: st, Logger: discardLogger()}).Run(context.Background(), spec)
	if err != nil {
		t.Fatalf("cached rerun: %v", err)
	}
	if again != golden {
		t.Error("cached rerun report differs from golden")
	}
	if againStats.Cached != 1 || againStats.ChunksComputed != 0 {
		t.Errorf("cached rerun stats = %+v, want 1 cached, 0 computed chunks", againStats)
	}
}

// TestRegistryEntryStoresServiceKey pins the cache-warming contract:
// a campaign's registry-experiment result lands under the service's
// canonical request key, so cogmimod can serve it as a cache hit.
func TestRegistryEntryStoresServiceKey(t *testing.T) {
	st := openStore(t, t.TempDir())
	spec := Spec{Name: "analytic", Experiments: []Experiment{{ID: "ext-conv", Seed: 1}}}
	report, stats, err := (&Runner{Store: st, Logger: discardLogger()}).Run(context.Background(), spec)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if stats.Computed != 1 || stats.Cached != 0 {
		t.Fatalf("stats = %+v, want exactly one computed entry", stats)
	}
	if !strings.Contains(report, "ext-conv") {
		t.Fatalf("report does not mention the experiment:\n%s", report)
	}
	key := string(service.CanonicalKey(service.Request{ID: "ext-conv", Seed: 1}))
	payload, meta, ok := st.Get(key)
	if !ok {
		t.Fatal("result not stored under the service canonical key")
	}
	if meta.Kind != "result" || meta.Experiment != "ext-conv" {
		t.Fatalf("result meta = %+v", meta)
	}
	if !strings.Contains(report, string(payload)) {
		t.Error("stored section is not part of the campaign report")
	}
	if _, _, ok := st.Get(reportKey(spec.ID())); !ok {
		t.Error("campaign report not persisted")
	}

	again, againStats, err := (&Runner{Store: st, Logger: discardLogger()}).Run(context.Background(), spec)
	if err != nil {
		t.Fatalf("rerun: %v", err)
	}
	if againStats.Cached != 1 {
		t.Errorf("rerun stats = %+v, want the entry cached", againStats)
	}
	if again != report {
		t.Error("cached rerun produced different bytes")
	}
}

func TestManagerLifecycleAndRestartVisibility(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	mgr := NewManager(st, 0, discardLogger())
	spec := Spec{Name: "analytic", Experiments: []Experiment{{ID: "ext-conv", Seed: 1}}}

	id, started, err := mgr.Submit(spec)
	if err != nil || !started {
		t.Fatalf("Submit = (%q, %t, %v), want a fresh start", id, started, err)
	}
	if id2, started2, _ := mgr.Submit(spec); id2 != id || started2 {
		t.Fatalf("resubmit = (%q, %t), want existing run %q", id2, started2, id)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	view, err := mgr.Wait(ctx, id)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if view.Status != "done" || view.Report == "" {
		t.Fatalf("campaign view = %+v, want done with a report", view)
	}
	if len(view.Experiments) != 1 || view.Experiments[0].Status != "done" {
		t.Fatalf("experiment statuses = %+v", view.Experiments)
	}
	if got := len(mgr.List()); got != 1 {
		t.Fatalf("List has %d campaigns, want 1", got)
	}
	if err := mgr.Stop(ctx); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	st.Close()

	// A fresh process sees the finished campaign from the store alone.
	st2 := openStore(t, dir)
	mgr2 := NewManager(st2, 0, discardLogger())
	view2, ok := mgr2.Get(id)
	if !ok {
		t.Fatal("restarted manager cannot see the stored campaign")
	}
	if view2.Status != "done" || view2.Report != view.Report {
		t.Fatalf("restarted view = status %q, report match %t", view2.Status, view2.Report == view.Report)
	}
	if len(view2.Experiments) != 1 || view2.Experiments[0].Status != "done" {
		t.Fatalf("restarted experiment statuses = %+v", view2.Experiments)
	}
	if n := mgr2.ResumeAll(); n != 0 {
		t.Fatalf("ResumeAll resumed %d finished campaigns", n)
	}
	if _, ok := mgr2.Get("c0000000000000000"); ok {
		t.Error("Get invented a campaign that does not exist")
	}
}

func TestManagerResumeAllFinishesInterrupted(t *testing.T) {
	dir := t.TempDir()
	spec := kernelSpec(4 * sim.ChunkSize)
	st := openStore(t, dir)

	// Interrupt before any chunk runs: the spec and a "running" state
	// are durable, which is all resume discovery needs.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := (&Runner{Store: st, Logger: discardLogger()}).Run(ctx, spec); err == nil {
		t.Fatal("cancelled run reported success")
	}
	st.Close()

	st2 := openStore(t, dir)
	mgr := NewManager(st2, 2, discardLogger())
	if n := mgr.ResumeAll(); n != 1 {
		t.Fatalf("ResumeAll resumed %d campaigns, want 1", n)
	}
	wctx, wcancel := context.WithTimeout(context.Background(), time.Minute)
	defer wcancel()
	view, err := mgr.Wait(wctx, spec.ID())
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if view.Status != "done" || view.Report == "" {
		t.Fatalf("resumed campaign = %+v, want done with a report", view)
	}
	if n := mgr.ResumeAll(); n != 0 {
		t.Errorf("second ResumeAll resumed %d campaigns, want 0", n)
	}
	if err := mgr.Stop(wctx); err != nil {
		t.Fatalf("Stop: %v", err)
	}
}
