package campaign

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strconv"
	"sync/atomic"

	"repro/internal/mathx"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/store"
)

// checkpoint is the durable progress record of one kernel run: the
// per-chunk partials for chunks [0, len(Partials)). It stores per-chunk
// snapshots rather than a folded prefix because sim.RunKernelCtx
// demands one partial per chunk and folds them itself — resume must
// hand back exactly the operation sequence an uninterrupted run folds.
type checkpoint struct {
	Version   int                     `json:"version"`
	Kernel    string                  `json:"kernel"`
	Params    map[string]float64      `json:"params"`
	Seed      int64                   `json:"seed"`
	Trials    int                     `json:"trials"`
	ChunkSize int                     `json:"chunk_size"`
	Partials  []mathx.RunningSnapshot `json:"partials"`
	// Trace is the realized plan of an adaptive run, recorded when the
	// run completes (RecordPlanTrace). A resumed campaign replays the
	// traced prefix instead of re-deciding the budget, so the resumed
	// result is byte-identical to the uninterrupted one. Absent for
	// fixed-budget runs and for checkpoints written before the trace
	// field existed — both read back fine.
	Trace *sim.PlanTrace `json:"trace,omitempty"`
}

const checkpointVersion = 1

// runHash content-addresses one kernel run, independent of map
// ordering. It names both checkpoints and kernel-entry results.
func runHash(run sim.KernelRun) string {
	h := sha256.New()
	fmt.Fprintf(h, "kernel=%s\n", run.Kernel)
	fmt.Fprintf(h, "seed=%d\n", run.Seed)
	fmt.Fprintf(h, "trials=%d\n", run.Trials)
	fmt.Fprintf(h, "chunksize=%d\n", sim.ChunkSize)
	for _, k := range sortedFloatKeys(run.Params) {
		fmt.Fprintf(h, "param.%s=%s\n", k,
			strconv.FormatFloat(run.Params[k], 'g', -1, 64))
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// ckptExecutor is a sim.Executor that persists chunk progress through
// the result store. Attached to an experiment's context it intercepts
// every kernel-named Monte-Carlo run, replays any checkpointed chunk
// prefix, computes the remaining chunks in bounded ranges and persists
// a new checkpoint after each range. It is safe for concurrent
// RunShards calls (sweep drivers evaluate rows in parallel): distinct
// runs checkpoint under distinct content-addressed keys.
type ckptExecutor struct {
	store   *store.Store
	cid     string
	expIdx  int
	every   int // chunks per checkpoint interval, >= 1
	workers int
	stats   *runCounters
}

// runCounters aggregates executor activity with atomics; RunShards
// runs concurrently under sweep parallelism.
type runCounters struct {
	chunksResumed  atomic.Int64
	chunksComputed atomic.Int64
	checkpoints    atomic.Int64
}

func (e *ckptExecutor) RunShards(ctx context.Context, run sim.KernelRun) ([]mathx.Running, error) {
	plan := run.Plan()
	chunks := plan.Chunks()
	key := ckptPrefix(e.cid, e.expIdx) + runHash(run)

	ck := e.loadFull(key, run, chunks)
	resumed := len(ck.Partials)

	// The local chunk pool reports AddTotal when it runs; with an
	// executor attached nothing else accounts for this run, so report
	// the budget here and credit the replayed prefix as already done.
	progress := obs.ProgressFrom(ctx)
	progress.AddTotal(int64(run.Trials))
	if resumed > 0 {
		var replayedTrials int64
		for c := 0; c < resumed; c++ {
			replayedTrials += int64(plan.ChunkTrials(c))
		}
		progress.Add(replayedTrials)
		e.stats.chunksResumed.Add(int64(resumed))
		metChunksResumed.Add(int64(resumed))
	}

	mc := sim.MonteCarlo{Seed: run.Seed, Workers: e.workers}
	for lo := resumed; lo < chunks; lo += e.every {
		hi := lo + e.every
		if hi > chunks {
			hi = chunks
		}
		parts, err := mc.RunKernelChunksCtx(ctx, run.Kernel, run.Params, run.Trials, lo, hi)
		if err != nil {
			return nil, err
		}
		for _, p := range parts {
			ck.Partials = append(ck.Partials, p.Snapshot())
		}
		e.stats.chunksComputed.Add(int64(hi - lo))
		metChunksComputed.Add(int64(hi - lo))
		if err := e.save(key, run, ck); err != nil {
			return nil, fmt.Errorf("campaign: persisting checkpoint: %w", err)
		}
	}

	out := make([]mathx.Running, len(ck.Partials))
	for i, s := range ck.Partials {
		out[i] = mathx.RunningFromSnapshot(s)
	}
	return out, nil
}

// RunChunkRange implements sim.RangeExecutor for adaptive runs: one
// call per stopping round, each round extending the same checkpointed
// chunk prefix. A replayed prefix (resume) is served from the
// checkpoint without recomputation; the remainder computes in bounded
// ranges with a checkpoint after each, exactly like RunShards. The
// progress total is NOT grown here — the adaptive driver accounts the
// budget — but replayed chunks are credited as done.
func (e *ckptExecutor) RunChunkRange(ctx context.Context, run sim.KernelRun, lo, hi int) ([]mathx.Running, error) {
	plan := run.Plan()
	chunks := plan.Chunks()
	if lo < 0 || hi > chunks || lo >= hi {
		return nil, fmt.Errorf("campaign: chunk range [%d, %d) outside plan of %d chunks", lo, hi, chunks)
	}
	key := ckptPrefix(e.cid, e.expIdx) + runHash(run)

	ck := e.loadFull(key, run, chunks)
	resumed := len(ck.Partials)
	if replayHi := min(resumed, hi); replayHi > lo {
		var replayedTrials int64
		for c := lo; c < replayHi; c++ {
			replayedTrials += int64(plan.ChunkTrials(c))
		}
		obs.ProgressFrom(ctx).Add(replayedTrials)
		n := int64(replayHi - lo)
		e.stats.chunksResumed.Add(n)
		metChunksResumed.Add(n)
	}

	mc := sim.MonteCarlo{Seed: run.Seed, Workers: e.workers}
	for rlo := max(resumed, lo); rlo < hi; rlo += e.every {
		rhi := rlo + e.every
		if rhi > hi {
			rhi = hi
		}
		parts, err := mc.RunKernelChunksCtx(ctx, run.Kernel, run.Params, run.Trials, rlo, rhi)
		if err != nil {
			return nil, err
		}
		for _, p := range parts {
			ck.Partials = append(ck.Partials, p.Snapshot())
		}
		e.stats.chunksComputed.Add(int64(rhi - rlo))
		metChunksComputed.Add(int64(rhi - rlo))
		if err := e.save(key, run, ck); err != nil {
			return nil, fmt.Errorf("campaign: persisting checkpoint: %w", err)
		}
	}

	out := make([]mathx.Running, hi-lo)
	for i := range out {
		out[i] = mathx.RunningFromSnapshot(ck.Partials[lo+i])
	}
	return out, nil
}

// RecordPlanTrace implements sim.TraceSink: the realized plan of a
// completed adaptive run lands in the run's checkpoint, making the
// spend auditable and the resumed campaign replayable.
func (e *ckptExecutor) RecordPlanTrace(run sim.KernelRun, trace sim.PlanTrace) {
	key := ckptPrefix(e.cid, e.expIdx) + runHash(run)
	ck := e.loadFull(key, run, run.Plan().Chunks())
	ck.Trace = &trace
	if err := e.save(key, run, ck); err != nil {
		obs.Logger(context.Background()).Warn("campaign: persisting plan trace", "err", err)
	}
}

// PlanTraceFor returns the recorded plan trace of a run, if its
// checkpoint holds one.
func (e *ckptExecutor) PlanTraceFor(run sim.KernelRun) (sim.PlanTrace, bool) {
	key := ckptPrefix(e.cid, e.expIdx) + runHash(run)
	ck := e.loadFull(key, run, run.Plan().Chunks())
	if ck.Trace == nil {
		return sim.PlanTrace{}, false
	}
	return *ck.Trace, true
}

// loadFull returns the stored checkpoint for run, or an empty matching
// one when there is none or the stored record does not match the run
// (a stale record for a different budget, kernel version or chunk size
// is discarded — never trusted, never fatal).
func (e *ckptExecutor) loadFull(key string, run sim.KernelRun, chunks int) checkpoint {
	base := checkpoint{
		Version:   checkpointVersion,
		Kernel:    run.Kernel,
		Params:    run.Params,
		Seed:      run.Seed,
		Trials:    run.Trials,
		ChunkSize: sim.ChunkSize,
	}
	payload, _, ok := e.store.Get(key)
	if !ok {
		return base
	}
	var ck checkpoint
	if err := json.Unmarshal(payload, &ck); err != nil {
		_ = e.store.Delete(key)
		return base
	}
	if ck.Version != checkpointVersion ||
		ck.Kernel != run.Kernel ||
		ck.Seed != run.Seed ||
		ck.Trials != run.Trials ||
		ck.ChunkSize != sim.ChunkSize ||
		len(ck.Partials) > chunks ||
		!sameParams(ck.Params, run.Params) {
		_ = e.store.Delete(key)
		return base
	}
	return ck
}

func (e *ckptExecutor) save(key string, run sim.KernelRun, ck checkpoint) error {
	payload, err := json.Marshal(ck)
	if err != nil {
		return err
	}
	if err := e.store.Put(key, payload, store.Meta{
		Kind: "checkpoint", Experiment: run.Kernel, Seed: run.Seed,
	}); err != nil {
		return err
	}
	e.stats.checkpoints.Add(1)
	metCheckpoints.Inc()
	return nil
}

func sameParams(a, b map[string]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		bv, ok := b[k]
		if !ok || bv != v {
			return false
		}
	}
	return true
}
