package campaign

import (
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/store"
)

const crashDirEnv = "CAMPAIGN_CRASH_DIR"

// crashSpec is shared between the parent test and the helper process;
// both must address the identical campaign.
func crashSpec() Spec { return kernelSpec(40 * sim.ChunkSize) }

// TestCampaignCrashHelper is not a test of its own: it is the
// subprocess body of TestSIGKILLResumeByteIdentical, re-executed from
// the test binary and killed without warning partway through.
func TestCampaignCrashHelper(t *testing.T) {
	dir := os.Getenv(crashDirEnv)
	if dir == "" {
		t.Skip("helper: only runs as a crash-test subprocess")
	}
	st, err := store.Open(store.Options{Dir: dir, Logger: discardLogger()})
	if err != nil {
		t.Fatalf("helper: opening store: %v", err)
	}
	defer st.Close()
	if _, _, err := (&Runner{
		Store: st, Workers: 2, Logger: discardLogger(),
	}).Run(context.Background(), crashSpec()); err != nil {
		t.Fatalf("helper run: %v", err)
	}
}

// TestSIGKILLResumeByteIdentical is the acceptance witness for the
// whole subsystem: a campaign process killed with SIGKILL — no
// deferred cleanup, no flushes, possibly mid-write — resumes from its
// durable checkpoints and produces a final report byte-identical to a
// never-interrupted run.
func TestSIGKILLResumeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills a subprocess")
	}
	spec := crashSpec()
	wantChunks := int64(spec.Experiments[0].Trials / sim.ChunkSize)

	golden, _, err := (&Runner{
		Store: openStore(t, t.TempDir()), Workers: 2, Logger: discardLogger(),
	}).Run(context.Background(), spec)
	if err != nil {
		t.Fatalf("golden run: %v", err)
	}

	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run=TestCampaignCrashHelper$", "-test.v")
	cmd.Env = append(os.Environ(), crashDirEnv+"="+dir)
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting helper: %v", err)
	}

	// The index log is fsynced per record, so two visible checkpoint
	// puts mean at least one checkpoint object is fully durable while
	// most of the campaign is still ahead of the helper.
	indexPath := filepath.Join(dir, "index.log")
	deadline := time.Now().Add(2 * time.Minute)
	for {
		data, _ := os.ReadFile(indexPath)
		if strings.Count(string(data), `"kind":"checkpoint"`) >= 2 {
			break
		}
		if time.Now().After(deadline) {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
			t.Fatal("helper produced no checkpoints within the deadline")
		}
		time.Sleep(time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatalf("killing helper: %v", err)
	}
	_ = cmd.Wait() // the kill is the expected exit

	st := openStore(t, dir)
	report, stats, err := (&Runner{
		Store: st, Workers: 4, Logger: discardLogger(),
	}).Run(context.Background(), spec)
	if err != nil {
		t.Fatalf("resume after SIGKILL: %v", err)
	}
	if report != golden {
		t.Errorf("post-crash report differs from uninterrupted run:\n--- resumed\n%s\n--- golden\n%s", report, golden)
	}
	if stats.ChunksResumed == 0 {
		t.Error("resume replayed no checkpointed chunks")
	}
	if got := stats.ChunksResumed + stats.ChunksComputed; got != wantChunks {
		t.Errorf("resumed %d + computed %d = %d chunks, want %d",
			stats.ChunksResumed, stats.ChunksComputed, got, wantChunks)
	}
}
