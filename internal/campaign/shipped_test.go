package campaign

import (
	"os"
	"path/filepath"
	"testing"
)

// TestShippedSpecsValidate keeps the ready-made specs under campaigns/
// honest: every shipped file must parse and validate against the live
// experiment and kernel registries, so a renamed experiment id cannot
// silently strand them.
func TestShippedSpecsValidate(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "campaigns", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no shipped campaign specs found under campaigns/")
	}
	seen := make(map[string]string)
	for _, path := range paths {
		payload, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		spec, err := ParseSpec(payload)
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		if prev, dup := seen[spec.ID()]; dup {
			t.Errorf("%s has the same campaign id as %s", path, prev)
		}
		seen[spec.ID()] = path
	}
}
