package campaign

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/experiments"
	"repro/internal/sim"
)

// Spec is a campaign: a named list of experiment requests and trial
// budgets. See the package documentation for the JSON shape.
type Spec struct {
	Name string `json:"name"`
	// CheckpointChunks is how many Monte-Carlo chunks run between
	// checkpoint persists; 0 means 4. Smaller values bound the work a
	// crash can lose at the cost of more fsyncs.
	CheckpointChunks int          `json:"checkpoint_chunks,omitempty"`
	Experiments      []Experiment `json:"experiments"`
}

// Experiment is one campaign entry: exactly one of ID (a registry
// experiment) or Kernel (a raw Monte-Carlo kernel run) must be set.
type Experiment struct {
	// Name labels the entry in progress reports; defaults to the ID or
	// kernel name.
	Name string `json:"name,omitempty"`

	// Registry experiment fields, mirroring a service request.
	ID     string            `json:"id,omitempty"`
	Seed   int64             `json:"seed"`
	Quick  bool              `json:"quick,omitempty"`
	Params map[string]string `json:"params,omitempty"`

	// Raw kernel run fields. Trials is the entry's trial budget and is
	// required for kernel entries.
	Kernel       string             `json:"kernel,omitempty"`
	KernelParams map[string]float64 `json:"kernel_params,omitempty"`
	Trials       int                `json:"trials,omitempty"`
}

// DisplayName returns the entry's human label.
func (e Experiment) DisplayName() string {
	if e.Name != "" {
		return e.Name
	}
	if e.ID != "" {
		return e.ID
	}
	return e.Kernel
}

// ParseSpec decodes and validates a campaign spec. Unknown fields are
// rejected so a typoed budget cannot silently vanish.
func ParseSpec(data []byte) (Spec, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("campaign: parsing spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// Validate checks the spec against the experiment and kernel
// registries.
func (s Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("campaign: spec has no name")
	}
	if len(s.Experiments) == 0 {
		return fmt.Errorf("campaign: spec %q has no experiments", s.Name)
	}
	if s.CheckpointChunks < 0 {
		return fmt.Errorf("campaign: negative checkpoint_chunks %d", s.CheckpointChunks)
	}
	knownIDs := make(map[string]bool)
	for _, id := range experiments.IDs() {
		knownIDs[id] = true
	}
	knownKernels := make(map[string]bool)
	for _, k := range sim.Kernels() {
		knownKernels[k] = true
	}
	for i, e := range s.Experiments {
		switch {
		case e.ID != "" && e.Kernel != "":
			return fmt.Errorf("campaign: experiment %d sets both id %q and kernel %q", i, e.ID, e.Kernel)
		case e.ID == "" && e.Kernel == "":
			return fmt.Errorf("campaign: experiment %d sets neither id nor kernel", i)
		case e.ID != "":
			if !knownIDs[e.ID] {
				return fmt.Errorf("campaign: experiment %d: unknown id %q (have %s)",
					i, e.ID, strings.Join(experiments.IDs(), ", "))
			}
			if e.Trials != 0 {
				return fmt.Errorf("campaign: experiment %d: trials budget only applies to kernel entries", i)
			}
		default:
			if !knownKernels[e.Kernel] {
				return fmt.Errorf("campaign: experiment %d: unknown kernel %q (have %s)",
					i, e.Kernel, strings.Join(sim.Kernels(), ", "))
			}
			if e.Trials <= 0 {
				return fmt.Errorf("campaign: experiment %d: kernel entry needs a positive trials budget", i)
			}
		}
	}
	return nil
}

// ID is the campaign's content address: "c" plus the first 16 hex
// digits of the SHA-256 of the spec's canonical form. Field order,
// JSON layout and map ordering never perturb it, so resubmitting the
// same spec addresses the same campaign — and its checkpoints.
func (s Spec) ID() string {
	h := sha256.New()
	fmt.Fprintf(h, "name=%s\n", s.Name)
	fmt.Fprintf(h, "ckpt=%d\n", s.CheckpointChunks)
	for i, e := range s.Experiments {
		fmt.Fprintf(h, "exp.%d.id=%s\n", i, e.ID)
		fmt.Fprintf(h, "exp.%d.seed=%d\n", i, e.Seed)
		fmt.Fprintf(h, "exp.%d.quick=%t\n", i, e.Quick)
		for _, k := range sortedKeys(e.Params) {
			fmt.Fprintf(h, "exp.%d.param.%s=%s\n", i, k, e.Params[k])
		}
		fmt.Fprintf(h, "exp.%d.kernel=%s\n", i, e.Kernel)
		for _, k := range sortedFloatKeys(e.KernelParams) {
			fmt.Fprintf(h, "exp.%d.kparam.%s=%s\n", i, k,
				strconv.FormatFloat(e.KernelParams[k], 'g', -1, 64))
		}
		fmt.Fprintf(h, "exp.%d.trials=%d\n", i, e.Trials)
	}
	return "c" + hex.EncodeToString(h.Sum(nil))[:16]
}

func sortedKeys(m map[string]string) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

func sortedFloatKeys(m map[string]float64) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// Store key layout. All campaign state lives under campaign/<id>/ so
// one prefix scan finds everything a campaign owns.
func specKey(cid string) string   { return "campaign/" + cid + "/spec" }
func stateKey(cid string) string  { return "campaign/" + cid + "/state" }
func reportKey(cid string) string { return "campaign/" + cid + "/report" }
func ckptPrefix(cid string, exp int) string {
	return fmt.Sprintf("campaign/%s/ckpt/%d/", cid, exp)
}
