package campaign

import (
	"context"
	"testing"

	"repro/internal/mathx"
	"repro/internal/sim"
	"repro/internal/store"

	_ "repro/internal/simkern" // register coop.ber
)

// ckptStop stops at a fixed prefix length so checkpoint tests are
// statistically noise-free.
type ckptStop struct{ n int64 }

func (s ckptStop) Done(prefix mathx.Running) bool { return prefix.N() >= s.n }

func newTestExecutor(t *testing.T, every int) (*ckptExecutor, *runCounters) {
	t.Helper()
	st, err := store.Open(store.Options{Dir: t.TempDir(), Logger: discardLogger()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	counters := &runCounters{}
	return &ckptExecutor{store: st, cid: "ctest", expIdx: 0, every: every, workers: 1, stats: counters}, counters
}

// TestAdaptiveRunPersistsTrace: an adaptive run under the campaign
// executor checkpoints its chunks AND its realized plan trace; a
// second pass serves every chunk from the checkpoint and recomputes
// nothing, byte-identically.
func TestAdaptiveRunPersistsTrace(t *testing.T) {
	ex, counters := newTestExecutor(t, 2)
	kernel := "coop.ber"
	params := map[string]float64{"mt": 2, "mr": 2, "snr_db": 6, "bits": 16}
	budget := 8 * sim.ChunkSize

	ctx := sim.WithExecutor(context.Background(), ex)
	mc := sim.MonteCarlo{Seed: 21}
	res, err := mc.RunAdaptiveCtx(ctx, kernel, params, budget, ckptStop{n: 3 * sim.ChunkSize})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Trace.Stopped {
		t.Fatalf("trace %+v not stopped; test wants a mid-budget stop", res.Trace)
	}
	if counters.chunksComputed.Load() != int64(res.Trace.Chunks()) {
		t.Fatalf("computed %d chunks, trace covers %d", counters.chunksComputed.Load(), res.Trace.Chunks())
	}

	// The trace landed in the run's checkpoint.
	run := sim.KernelRun{Kernel: kernel, Params: params, Seed: 21, Trials: budget}
	stored, ok := ex.PlanTraceFor(run)
	if !ok {
		t.Fatal("no plan trace persisted")
	}
	if stored.Trials != res.Trace.Trials || stored.Chunks() != res.Trace.Chunks() || !stored.Stopped {
		t.Fatalf("stored trace %+v != run trace %+v", stored, res.Trace)
	}

	// Second pass over the same store: everything resumes, nothing
	// recomputes, statistics identical — the campaign-resume contract
	// extended to adaptive runs.
	ex2 := &ckptExecutor{store: ex.store, cid: "ctest", expIdx: 0, every: 2, workers: 1, stats: &runCounters{}}
	ctx2 := sim.WithExecutor(context.Background(), ex2)
	res2, err := mc.RunAdaptiveCtx(ctx2, kernel, params, budget, ckptStop{n: 3 * sim.ChunkSize})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stats.Snapshot() != res.Stats.Snapshot() {
		t.Fatalf("resumed adaptive run %+v != original %+v", res2.Stats.Snapshot(), res.Stats.Snapshot())
	}
	if got := ex2.stats.chunksComputed.Load(); got != 0 {
		t.Fatalf("resume recomputed %d chunks, want 0", got)
	}
	if got := ex2.stats.chunksResumed.Load(); got != int64(res.Trace.Chunks()) {
		t.Fatalf("resume credited %d chunks, want %d", got, res.Trace.Chunks())
	}

	// Replaying the persisted trace through the executor also serves
	// from the checkpoint.
	rep, err := mc.RunTraceCtx(ctx2, kernel, params, stored)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.Snapshot() != res.Stats.Snapshot() {
		t.Fatalf("trace replay %+v != original %+v", rep.Stats.Snapshot(), res.Stats.Snapshot())
	}
}

// TestCkptRunChunkRangeValidates: the range entry point refuses ranges
// outside the run's plan.
func TestCkptRunChunkRangeValidates(t *testing.T) {
	ex, _ := newTestExecutor(t, 4)
	run := sim.KernelRun{Kernel: "coop.ber", Params: map[string]float64{"bits": 16}, Seed: 1, Trials: 2 * sim.ChunkSize}
	ctx := context.Background()
	for _, r := range [][2]int{{-1, 1}, {0, 3}, {1, 1}} {
		if _, err := ex.RunChunkRange(ctx, run, r[0], r[1]); err == nil {
			t.Errorf("range %v accepted", r)
		}
	}
	parts, err := ex.RunChunkRange(ctx, run, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 2 {
		t.Fatalf("got %d partials, want 2", len(parts))
	}
}
