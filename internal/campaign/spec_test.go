package campaign

import (
	"strings"
	"testing"
)

func TestParseSpecValidation(t *testing.T) {
	cases := []struct {
		name, json, wantErr string
	}{
		{"no name", `{"experiments":[{"id":"fig6a","seed":1}]}`, "no name"},
		{"no experiments", `{"name":"x"}`, "no experiments"},
		{"unknown field", `{"name":"x","experimets":[]}`, "unknown field"},
		{"unknown id", `{"name":"x","experiments":[{"id":"fig99","seed":1}]}`, "unknown id"},
		{"unknown kernel", `{"name":"x","experiments":[{"kernel":"nope.ber","seed":1,"trials":100}]}`, "unknown kernel"},
		{"both id and kernel", `{"name":"x","experiments":[{"id":"fig6a","kernel":"coop.ber","seed":1}]}`, "both id"},
		{"neither", `{"name":"x","experiments":[{"seed":1}]}`, "neither id nor kernel"},
		{"kernel without trials", `{"name":"x","experiments":[{"kernel":"coop.ber","seed":1}]}`, "trials budget"},
		{"trials on registry entry", `{"name":"x","experiments":[{"id":"fig6a","seed":1,"trials":5}]}`, "only applies to kernel"},
		{"negative checkpoint interval", `{"name":"x","checkpoint_chunks":-1,"experiments":[{"id":"fig6a","seed":1}]}`, "checkpoint_chunks"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParseSpec([]byte(c.json))
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("ParseSpec error = %v, want mention of %q", err, c.wantErr)
			}
		})
	}

	good := `{"name":"ok","experiments":[
		{"id":"fig6a","seed":1,"quick":true},
		{"kernel":"coop.ber","seed":2,"kernel_params":{"mt":2,"mr":2,"snr_db":8,"bits":16},"trials":4096}]}`
	spec, err := ParseSpec([]byte(good))
	if err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	if len(spec.Experiments) != 2 {
		t.Fatalf("parsed %d experiments, want 2", len(spec.Experiments))
	}
}

func TestSpecIDContentAddressed(t *testing.T) {
	a := Spec{Name: "x", Experiments: []Experiment{{
		Kernel: "coop.ber", Seed: 1, Trials: 4096,
		KernelParams: map[string]float64{"mt": 2, "mr": 2, "snr_db": 8, "bits": 16},
	}}}
	b := Spec{Name: "x", Experiments: []Experiment{{
		Kernel: "coop.ber", Seed: 1, Trials: 4096,
		KernelParams: map[string]float64{"bits": 16, "snr_db": 8, "mr": 2, "mt": 2},
	}}}
	if a.ID() != b.ID() {
		t.Error("map ordering perturbed the campaign ID")
	}
	if !strings.HasPrefix(a.ID(), "c") || len(a.ID()) != 17 {
		t.Errorf("ID %q has unexpected shape", a.ID())
	}
	c := a
	c.Experiments = []Experiment{{Kernel: "coop.ber", Seed: 2, Trials: 4096,
		KernelParams: a.Experiments[0].KernelParams}}
	if a.ID() == c.ID() {
		t.Error("different seeds collapsed onto one campaign ID")
	}
	d := a
	d.Name = "y"
	if a.ID() == d.ID() {
		t.Error("different names collapsed onto one campaign ID")
	}
}

func TestDisplayName(t *testing.T) {
	if got := (Experiment{Name: "custom", ID: "fig6a"}).DisplayName(); got != "custom" {
		t.Errorf("DisplayName = %q, want custom", got)
	}
	if got := (Experiment{ID: "fig6a"}).DisplayName(); got != "fig6a" {
		t.Errorf("DisplayName = %q, want fig6a", got)
	}
	if got := (Experiment{Kernel: "coop.ber"}).DisplayName(); got != "coop.ber" {
		t.Errorf("DisplayName = %q, want coop.ber", got)
	}
}
