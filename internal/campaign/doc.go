// Package campaign executes named batches of experiments with durable,
// crash-safe progress: a campaign killed at any instant — including
// SIGKILL, with no graceful shutdown — resumes from its last checkpoint
// and produces a final report byte-identical to an uninterrupted run.
//
// # Why this is possible
//
// Every Monte-Carlo run in the repository decomposes into the chunk
// Plan (internal/sim): chunk i always covers the same trial indices and
// always draws from the i-th seed of a prefix-stable splitmix64 walk,
// and per-chunk partial statistics merge strictly in chunk order. The
// distributed executor (internal/cluster) exploited that to survive
// worker death; this package extends the same contract across process
// death. A checkpoint is the list of per-chunk mathx.RunningSnapshot
// partials for chunks [0, k): resume re-enters the Plan at chunk k,
// computes the remaining chunks, and the final left-to-right fold is
// the identical operation sequence an uninterrupted run performs — so
// the statistics, and therefore the rendered report, match bit for bit.
// The invariant is pinned by mathx's fold property tests and this
// package's SIGKILL crash test.
//
// # Spec
//
// A Spec is a named list of entries. Each entry is either a registry
// experiment (any of the cogsim IDs: fig6a, table2, ext-coopber, ...)
// or a raw Monte-Carlo kernel run with an explicit trial budget:
//
//	{
//	  "name": "paper-figures",
//	  "checkpoint_chunks": 4,
//	  "experiments": [
//	    {"id": "fig6a", "seed": 1},
//	    {"id": "ext-coopber", "seed": 1, "quick": true},
//	    {"kernel": "coop.ber", "seed": 9,
//	     "kernel_params": {"mt": 2, "mr": 2, "snr_db": 8, "bits": 32},
//	     "trials": 65536}
//	  ]
//	}
//
// Registry entries run through the experiments package with a
// checkpointing sim.Executor attached, so kernel-based experiments
// (ext-coopber) checkpoint at chunk granularity; other drivers
// checkpoint at whole-experiment granularity via the result store.
// Kernel entries run the named kernel directly and render a one-row
// report. Campaign IDs are content addresses of the spec, so
// resubmitting the same spec resumes rather than restarts.
//
// # Storage
//
// Everything persists through internal/store under structured keys:
//
//	campaign/<id>/spec      the submitted spec (resume-on-boot reads these)
//	campaign/<id>/state     {"status": "running" | "done" | "failed"}
//	campaign/<id>/ckpt/...  per-kernel-run chunk checkpoints (deleted on completion)
//	campaign/<id>/report    the final rendered report
//
// Completed experiment results are stored under the service's canonical
// request key (kind "result"), so a campaign that computed fig6a warms
// the cogmimod cache for the equivalent POST /v1/experiments request.
package campaign
