package campaign

import "repro/internal/obs"

// Campaign metrics in the stack's Default registry, served by cogmimod
// at /metrics/prom alongside the store and service series.
var (
	metRuns = obs.Default.CounterVec("cogmimod_campaign_runs_total",
		"Campaign runs by terminal status (interrupted counts a run that stopped on context cancellation and can resume).",
		"status")
	metExperiments = obs.Default.CounterVec("cogmimod_campaign_experiments_total",
		"Campaign experiment entries by outcome.", "status")
	metCheckpoints = obs.Default.Counter("cogmimod_campaign_checkpoints_total",
		"Chunk checkpoints durably persisted.")
	metChunksResumed = obs.Default.Counter("cogmimod_campaign_chunks_resumed_total",
		"Monte-Carlo chunks replayed from checkpoints instead of recomputed.")
	metChunksComputed = obs.Default.Counter("cogmimod_campaign_chunks_computed_total",
		"Monte-Carlo chunks computed under campaign checkpointing.")
)

// init pre-seeds the labeled series so every outcome scrapes as 0
// before any traffic.
func init() {
	for _, s := range []string{"done", "failed", "interrupted"} {
		metRuns.With(s).Add(0)
	}
	for _, s := range []string{"computed", "cached", "failed"} {
		metExperiments.With(s).Add(0)
	}
}
