// Package fec provides the channel-coding block Section 2.3 deliberately
// omits and flags as the natural extension ("the methodology used here
// can be extended to ... include the signal processing blocks"): a
// Hamming(7,4) code with single-error correction per block, pluggable
// under the testbed's frame path.
package fec

import "fmt"

// Hamming74 encodes 4 data bits into 7 coded bits and corrects any
// single bit error per block. The systematic generator places data in
// positions 3, 5, 6, 7 (1-indexed) and even parity in 1, 2, 4.
type Hamming74 struct{}

// Rate returns the code rate 4/7.
func (Hamming74) Rate() float64 { return 4.0 / 7.0 }

// BlockData and BlockCoded are the block sizes in bits.
const (
	BlockData  = 4
	BlockCoded = 7
)

// Encode maps data bits (len a multiple of 4) to coded bits.
func (Hamming74) Encode(data []byte) ([]byte, error) {
	if len(data)%BlockData != 0 {
		return nil, fmt.Errorf("fec: %d data bits not a multiple of %d", len(data), BlockData)
	}
	out := make([]byte, 0, len(data)/BlockData*BlockCoded)
	for i := 0; i < len(data); i += BlockData {
		d := data[i : i+BlockData]
		// c[1..7], 1-indexed positions; d1..d4 at 3, 5, 6, 7.
		var c [8]byte
		c[3], c[5], c[6], c[7] = d[0]&1, d[1]&1, d[2]&1, d[3]&1
		c[1] = c[3] ^ c[5] ^ c[7]
		c[2] = c[3] ^ c[6] ^ c[7]
		c[4] = c[5] ^ c[6] ^ c[7]
		out = append(out, c[1], c[2], c[3], c[4], c[5], c[6], c[7])
	}
	return out, nil
}

// Decode maps coded bits (len a multiple of 7) back to data bits,
// correcting up to one error per block. It returns the data and the
// number of blocks in which it corrected an error.
func (Hamming74) Decode(coded []byte) ([]byte, int, error) {
	if len(coded)%BlockCoded != 0 {
		return nil, 0, fmt.Errorf("fec: %d coded bits not a multiple of %d", len(coded), BlockCoded)
	}
	out := make([]byte, 0, len(coded)/BlockCoded*BlockData)
	corrected := 0
	var c [8]byte
	for i := 0; i < len(coded); i += BlockCoded {
		for j := 0; j < BlockCoded; j++ {
			c[j+1] = coded[i+j] & 1
		}
		// Syndrome bits address the error position directly.
		s1 := c[1] ^ c[3] ^ c[5] ^ c[7]
		s2 := c[2] ^ c[3] ^ c[6] ^ c[7]
		s4 := c[4] ^ c[5] ^ c[6] ^ c[7]
		pos := int(s1) | int(s2)<<1 | int(s4)<<2
		if pos != 0 {
			c[pos] ^= 1
			corrected++
		}
		out = append(out, c[3], c[5], c[6], c[7])
	}
	return out, corrected, nil
}
