package fec

import (
	"math"
	"testing"

	"repro/internal/mathx"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	h := Hamming74{}
	rng := mathx.NewRand(301)
	data := make([]byte, 400)
	for i := range data {
		data[i] = byte(rng.Intn(2))
	}
	coded, err := h.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(coded) != 700 {
		t.Fatalf("%d coded bits", len(coded))
	}
	back, corrected, err := h.Decode(coded)
	if err != nil {
		t.Fatal(err)
	}
	if corrected != 0 {
		t.Errorf("clean channel corrected %d blocks", corrected)
	}
	for i := range data {
		if back[i] != data[i] {
			t.Fatalf("bit %d corrupted without noise", i)
		}
	}
}

func TestLengthValidation(t *testing.T) {
	h := Hamming74{}
	if _, err := h.Encode(make([]byte, 5)); err == nil {
		t.Error("non-multiple-of-4 should fail")
	}
	if _, _, err := h.Decode(make([]byte, 6)); err == nil {
		t.Error("non-multiple-of-7 should fail")
	}
	if h.Rate() != 4.0/7.0 {
		t.Errorf("rate = %v", h.Rate())
	}
}

// TestSingleErrorCorrection: flipping any one of the 7 positions in any
// block is always repaired.
func TestSingleErrorCorrection(t *testing.T) {
	h := Hamming74{}
	for pattern := 0; pattern < 16; pattern++ {
		data := []byte{byte(pattern & 1), byte(pattern >> 1 & 1), byte(pattern >> 2 & 1), byte(pattern >> 3 & 1)}
		coded, err := h.Encode(data)
		if err != nil {
			t.Fatal(err)
		}
		for pos := 0; pos < BlockCoded; pos++ {
			corrupt := append([]byte(nil), coded...)
			corrupt[pos] ^= 1
			back, corrected, err := h.Decode(corrupt)
			if err != nil {
				t.Fatal(err)
			}
			if corrected != 1 {
				t.Errorf("pattern %d pos %d: corrected %d blocks, want 1", pattern, pos, corrected)
			}
			for i := range data {
				if back[i] != data[i] {
					t.Errorf("pattern %d pos %d: data bit %d wrong", pattern, pos, i)
				}
			}
		}
	}
}

// TestDoubleErrorsMiscorrect documents the code's limit: two errors per
// block exceed the minimum distance and decode wrongly (Hamming(7,4)
// without the extra parity bit cannot detect them).
func TestDoubleErrorsMiscorrect(t *testing.T) {
	h := Hamming74{}
	data := []byte{1, 0, 1, 1}
	coded, _ := h.Encode(data)
	corrupt := append([]byte(nil), coded...)
	corrupt[0] ^= 1
	corrupt[3] ^= 1
	back, _, err := h.Decode(corrupt)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range data {
		if back[i] != data[i] {
			same = false
		}
	}
	if same {
		t.Error("double error decoded correctly — minimum distance would be > 3")
	}
}

// TestFECCrossover: at moderate raw BER the code helps; at very high raw
// BER the 7/4 expansion plus miscorrection hurts — the classic coding
// crossover.
func TestFECCrossover(t *testing.T) {
	h := Hamming74{}
	rng := mathx.NewRand(302)
	run := func(p float64) (coded, uncoded float64) {
		const n = 40000
		data := make([]byte, n)
		for i := range data {
			data[i] = byte(rng.Intn(2))
		}
		enc, _ := h.Encode(data)
		for i := range enc {
			if rng.Float64() < p {
				enc[i] ^= 1
			}
		}
		dec, _, _ := h.Decode(enc)
		errs := 0
		for i := range data {
			if dec[i] != data[i] {
				errs++
			}
		}
		coded = float64(errs) / n
		raw := 0
		for i := 0; i < n; i++ {
			if rng.Float64() < p {
				raw++
			}
		}
		uncoded = float64(raw) / n
		return coded, uncoded
	}
	c, u := run(0.01)
	if c >= u/2 {
		t.Errorf("at p=0.01 coding should help: coded %v vs raw %v", c, u)
	}
	c, u = run(0.4)
	if c <= u {
		t.Errorf("at p=0.4 coding should hurt: coded %v vs raw %v", c, u)
	}
}

// TestTheoreticalBlockErrorRate: the post-decoding block error
// probability is 1 - (1-p)^7 - 7p(1-p)^6; the measured rate must track it.
func TestTheoreticalBlockErrorRate(t *testing.T) {
	h := Hamming74{}
	rng := mathx.NewRand(303)
	const p = 0.03
	const blocks = 60000
	data := make([]byte, blocks*BlockData)
	for i := range data {
		data[i] = byte(rng.Intn(2))
	}
	enc, _ := h.Encode(data)
	for i := range enc {
		if rng.Float64() < p {
			enc[i] ^= 1
		}
	}
	dec, _, _ := h.Decode(enc)
	blockErrs := 0
	for blk := 0; blk < blocks; blk++ {
		for i := 0; i < BlockData; i++ {
			if dec[blk*BlockData+i] != data[blk*BlockData+i] {
				blockErrs++
				break
			}
		}
	}
	got := float64(blockErrs) / blocks
	q := 1 - p
	want := 1 - math.Pow(q, 7) - 7*p*math.Pow(q, 6)
	if math.Abs(got-want) > 0.15*want {
		t.Errorf("block error rate %v vs theory %v", got, want)
	}
}
