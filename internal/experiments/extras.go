package experiments

import (
	"context"
	"fmt"
	"math"

	"repro/internal/cognitive"
	"repro/internal/ebtable"
	"repro/internal/energy"
	"repro/internal/geom"
	"repro/internal/mathx"
	"repro/internal/multihop"
	"repro/internal/network"
	"repro/internal/obs"
	"repro/internal/overlay"
	"repro/internal/powergame"
	"repro/internal/sensing"
	"repro/internal/underlay"
)

// The "ext-" experiments go beyond the paper's evaluation: studies its
// text motivates (sensing, reconfiguration, multi-hop transport) or that
// its internal inconsistencies demand (the gamma_b convention ablation).

func init() {
	registry["ext-roc"] = ExtROC
	registry["ext-lifetime"] = ExtLifetime
	registry["ext-multihop"] = ExtMultihop
	registry["ext-conv"] = ExtConvention
	registry["ext-cycle"] = ExtCycle
	registry["ext-game"] = ExtGame
}

// ExtROC sweeps the cooperative energy detector's operating points: the
// interweave paradigm's "sensed environment" quantified.
func ExtROC(ctx context.Context, opts Options) (*Report, error) {
	samples := 600
	if opts.Quick {
		samples = 200
	}
	rep := &Report{
		ID:     "ext-roc",
		Title:  "cooperative spectrum sensing operating points (energy detection)",
		Header: []string{"target Pfa", "single Pd", "OR-3 Pd", "OR-3 Pfa", "MAJ-3 Pd", "MAJ-3 Pfa"},
		Notes: []string{
			fmt.Sprintf("N = %d samples, primary at -7 dB per sample, 3 cooperating SUs", samples),
			"extension experiment: not a paper artifact (see DESIGN.md)",
		},
	}
	const snr = 0.19952623149688797 // -7 dB
	pfas := []float64{0.1, 0.05, 0.01, 0.001}
	var err error
	rep.Rows, err = sweepRows(ctx, opts, len(pfas), 6, func(a *RowArena, i int) error {
		pfa := pfas[i]
		det, err := sensing.NewDetectorForPfa(samples, pfa)
		if err != nil {
			return err
		}
		pd := det.Pd(snr)
		orPd, err := sensing.CooperativePd(sensing.FusionOR, 3, pd)
		if err != nil {
			return err
		}
		orPfa, _ := sensing.CooperativePd(sensing.FusionOR, 3, det.Pfa())
		majPd, _ := sensing.CooperativePd(sensing.FusionMajority, 3, pd)
		majPfa, _ := sensing.CooperativePd(sensing.FusionMajority, 3, det.Pfa())
		a.Float(pfa, 'g', -1)
		a.Float(pd, 'f', 4)
		a.Float(orPd, 'f', 4)
		a.Float(orPfa, 'f', 4)
		a.Float(majPd, 'f', 4)
		a.Float(majPfa, 'f', 4)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rep, nil
}

// ExtLifetime contrasts static cluster heads against battery-driven head
// rotation — the payoff of the CoMIMONet's reconfigurability.
func ExtLifetime(ctx context.Context, opts Options) (*Report, error) {
	progress := obs.ProgressFrom(ctx)
	progress.AddTotal(2)
	run := func(reconf int) (network.LifetimeResult, error) {
		if err := ctx.Err(); err != nil {
			return network.LifetimeResult{}, err
		}
		defer progress.Add(1)
		rng := mathx.NewRand(opts.Seed)
		dep := network.RandomDeployment(rng, 24, 40, 40, 100, 100)
		g, err := network.NewGraph(dep, 60)
		if err != nil {
			return network.LifetimeResult{}, err
		}
		cl, err := network.DCluster(g, 50)
		if err != nil {
			return network.LifetimeResult{}, err
		}
		return network.SimulateLifetime(cl, network.LifetimeConfig{
			HeadCostJ: 5, MemberCostJ: 1,
			Reconfigure: reconf, MaxRounds: 100000,
		})
	}
	static, err := run(0)
	if err != nil {
		return nil, err
	}
	rotated, err := run(1)
	if err != nil {
		return nil, err
	}
	gain := float64(rotated.Rounds) / math.Max(1, float64(static.Rounds))
	return &Report{
		ID:     "ext-lifetime",
		Title:  "network lifetime: static heads vs battery-driven rotation",
		Header: []string{"policy", "rounds to first death", "head elections"},
		Rows: [][]string{
			{"static heads", fmt.Sprintf("%d", static.Rounds), "0"},
			{"rotate each round", fmt.Sprintf("%d", rotated.Rounds), fmt.Sprintf("%d", rotated.Elections)},
		},
		Notes: []string{
			fmt.Sprintf("rotation extends first-death lifetime %.1fx", gain),
			"extension experiment: not a paper artifact (see DESIGN.md)",
		},
	}, nil
}

// ExtMultihop transports bits across 1..4 cooperative hops at symbol
// level, showing the near-additive error accumulation of Section 2.2's
// relay path.
func ExtMultihop(ctx context.Context, opts Options) (*Report, error) {
	bits := 120000
	if opts.Quick {
		bits = 24000
	}
	rep := &Report{
		ID:     "ext-multihop",
		Title:  "end-to-end BER across cooperative 2x2 hops (BPSK, 11 dB per hop)",
		Header: []string{"hops", "end-to-end BER", "closed-form sum"},
		Notes: []string{
			"errors accumulate near-additively while per-hop BER is small",
			"extension experiment: not a paper artifact (see DESIGN.md)",
		},
	}
	snr := math.Pow(10, 1.1)
	var err error
	rep.Rows, err = sweepRows(ctx, opts, 4, 3, func(a *RowArena, i int) error {
		hops := i + 1
		route := make([]multihop.Hop, hops)
		for i := range route {
			route[i] = multihop.Hop{Mt: 2, Mr: 2, SNRPerBit: snr}
		}
		r, err := multihop.Run(multihop.Config{
			Hops: route, B: 1, Bits: bits, Seed: opts.Seed,
		})
		if err != nil {
			return err
		}
		a.Int(int64(hops))
		a.Float(r.EndToEndBER, 'e', 3)
		a.Float(r.PredictedBER, 'e', 3)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rep, nil
}

// ExtConvention ablates the gamma_b normalisation that the paper's
// Figure 6 quietly changes: overlay distances under the printed
// equations (ConvPaper) against the evaluated ones (ConvArray).
func ExtConvention(ctx context.Context, opts Options) (*Report, error) {
	rep := &Report{
		ID:     "ext-conv",
		Title:  "overlay distances under the two gamma_b conventions (m = 3, B = 40k, D1 = 250 m)",
		Header: []string{"convention", "D2 (to Pt)", "D3 (to Pr)", "D3/D2"},
		Notes: []string{
			"the paper's Figure 6 ratio D3/D2 = sqrt(3) only arises under ConvArray",
			"extension experiment: not a paper artifact (see DESIGN.md)",
		},
	}
	progress := obs.ProgressFrom(ctx)
	progress.AddTotal(2)
	for _, c := range []struct {
		name string
		conv ebtable.Convention
	}{
		{"paper equations (/mt)", ebtable.ConvPaper},
		{"as evaluated (no /mt)", ebtable.ConvArray},
	} {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		model, err := energy.New(energy.Paper(40e3), ebtable.Analytic{Convention: c.conv})
		if err != nil {
			return nil, err
		}
		a, err := overlay.Analyze(overlay.Config{
			Model: model, M: 3, DirectBER: 0.005, RelayBER: 0.0005,
		}, 250)
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, []string{
			c.name,
			fmt.Sprintf("%.0f", a.D2),
			fmt.Sprintf("%.0f", a.D3),
			fmt.Sprintf("%.2f", a.D3/a.D2),
		})
		progress.Add(1)
	}
	return rep, nil
}

// ExtCycle contrasts the interweave cognitive cycle with blind
// transmission: utilization and primary-collision rate per policy.
func ExtCycle(ctx context.Context, opts Options) (*Report, error) {
	horizon := 2000.0
	if opts.Quick {
		horizon = 300
	}
	run := func(blind bool, rule sensing.FusionRule) (cognitive.CycleResult, error) {
		if err := ctx.Err(); err != nil {
			return cognitive.CycleResult{}, err
		}
		return cognitive.Run(cognitive.CycleConfig{
			Channels: 3,
			MeanBusy: 2, MeanIdle: 3,
			SensePeriod:  0.5,
			SenseSamples: 800, TargetPfa: 0.05,
			Sensors: 3, Rule: rule,
			PUSNR:     0.5,
			FrameTime: 0.05,
			Horizon:   horizon,
			Blind:     blind,
			Seed:      opts.Seed,
		})
	}
	rep := &Report{
		ID:     "ext-cycle",
		Title:  "interweave cognitive cycle: sensing policies vs blind transmission",
		Header: []string{"policy", "utilization", "collision rate", "frames"},
		Notes: []string{
			"3 channels, PUs busy 40% of the time, 0.5 s sensing cadence",
			"extension experiment: not a paper artifact (see DESIGN.md)",
		},
	}
	progress := obs.ProgressFrom(ctx)
	progress.AddTotal(3)
	for _, c := range []struct {
		name  string
		blind bool
		rule  sensing.FusionRule
	}{
		{"blind", true, sensing.FusionOR},
		{"OR fusion x3", false, sensing.FusionOR},
		{"majority x3", false, sensing.FusionMajority},
	} {
		r, err := run(c.blind, c.rule)
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, []string{
			c.name,
			fmt.Sprintf("%.3f", r.Utilization),
			fmt.Sprintf("%.4f", r.CollisionRate),
			fmt.Sprintf("%d", r.FramesSent),
		})
		progress.Add(1)
	}
	return rep, nil
}

// ExtGame contrasts the game-theoretic underlay baseline (Section 1's
// refs [1, 4, 5]) against Algorithm 2's cooperative scheme on the one
// property the paper cares about: the interference at the primary
// receiver. The game's Nash point ignores the PU entirely, so moving
// the PU close blows through the noise floor; the cooperative budget is
// below the SISO reference at any distance by construction.
func ExtGame(ctx context.Context, opts Options) (*Report, error) {
	rep := &Report{
		ID:     "ext-game",
		Title:  "underlay interference at the PU: power-control game vs cooperative MIMO",
		Header: []string{"PU distance m", "game interference/noise", "game converged", "coop margin (vs SISO ref)"},
		Notes: []string{
			"the game's utility gives an incentive, not a guarantee (Section 1's criticism, quantified)",
			"coop margin from Algorithm 2 (2x3 hop, BER 0.001) is distance-independent by construction",
			"extension experiment: not a paper artifact (see DESIGN.md)",
		},
	}
	model, err := energy.New(energy.Paper(40e3), ebtable.Analytic{})
	if err != nil {
		return nil, err
	}
	coopCfg := underlay.Config{
		Model: model, Mt: 2, Mr: 3, IntraD: 1, LinkD: 200, BER: 0.001,
	}
	coopRep, err := underlay.Analyze(coopCfg)
	if err != nil {
		return nil, err
	}
	coopMargin, err := underlay.NoiseFloorMargin(coopCfg, coopRep)
	if err != nil {
		return nil, err
	}
	puDists := []float64{500, 100, 30, 12}
	rep.Rows, err = sweepRows(ctx, opts, len(puDists), 4, func(a *RowArena, i int) error {
		puDist := puDists[i]
		g := powergame.Config{
			Players: []powergame.Player{
				{Tx: geom.Pt(0, 0), Rx: geom.Pt(10, 0)},
				{Tx: geom.Pt(0, 50), Rx: geom.Pt(10, 50)},
				{Tx: geom.Pt(0, 100), Rx: geom.Pt(10, 100)},
			},
			PrimaryRx:     geom.Pt(puDist, 50),
			NoisePower:    1e-9,
			PriceC:        1e4,
			MaxPower:      1e-3,
			PathLossExp:   3,
			MaxIterations: 200,
			Tolerance:     1e-9,
		}
		r, err := powergame.Run(g)
		if err != nil {
			return err
		}
		a.Float(puDist, 'f', 0)
		a.Float(r.InterferenceMargin(g.NoisePower), 'g', 3)
		a.Bool(r.Converged)
		a.Float(coopMargin, 'f', 4)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rep, nil
}
