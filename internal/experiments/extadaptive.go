package experiments

import (
	"context"
	"fmt"

	"repro/internal/adaptive"
	"repro/internal/mathx"
	"repro/internal/sim"
)

func init() {
	registry["ext-adaptive"] = ExtAdaptive
}

// ExtAdaptive sweeps the 2x2 cooperative hop's deep-BER points under an
// adaptive trial budget: each cell runs the coop.ber.adaptive kernel
// with Wilson-interval sequential stopping, so easy points stop after a
// chunk or two while deep points spend toward the budget cap. It is the
// adaptive subsystem's determinism witness — the golden file pins the
// realized trial counts and stopping rounds, serial and parallel alike,
// because stopping is a pure function of the chunk-prefix statistics.
// Options.Budget overrides the default budget below.
func ExtAdaptive(ctx context.Context, opts Options) (*Report, error) {
	bits := 128
	snrs := []float64{4, 8, 12}
	budget := opts.Budget
	if opts.Quick {
		bits = 32
		if !budget.Enabled() {
			budget = adaptive.Budget{TargetRelCI: 0.25, MaxTrials: 8 * sim.ChunkSize}
		}
	} else if !budget.Enabled() {
		budget = adaptive.Budget{TargetRelCI: 0.10, MaxTrials: 64 * sim.ChunkSize}
	}

	rep := &Report{
		ID:     "ext-adaptive",
		Title:  "2x2 cooperative hop BER under adaptive (CI-stopped) trial budgets",
		Header: []string{"Eb/N0 dB", "2x2 BER", "rel ci95", "trials", "rounds", "stopped"},
		Notes: []string{
			fmt.Sprintf("kernel coop.ber.adaptive, %d bits per trial, target ±%g%% CI, budget %d trials per cell",
				bits, 100*budget.TargetRelCI, budget.MaxTrials),
			"Wilson-interval stopping at chunk boundaries; realized plan replayable via sim.PlanTrace",
			"extension experiment: not a paper artifact (see DESIGN.md)",
		},
	}

	seeds := mathx.DeriveSeeds(opts.Seed, len(snrs))
	var err error
	rep.Rows, err = sweepRows(ctx, opts, len(snrs), 6, func(a *RowArena, i int) error {
		mc := sim.MonteCarlo{Seed: seeds[i], Workers: opts.Workers}
		params := map[string]float64{
			"mt":     2,
			"mr":     2,
			"snr_db": snrs[i],
			"bits":   float64(bits),
		}
		res, err := adaptive.Run(ctx, mc, "coop.ber.adaptive", params, budget)
		if err != nil {
			return err
		}
		a.Float(snrs[i], 'g', -1)
		a.Float(res.Stats.Mean(), 'e', 3)
		// Relative Wilson half-width over trials*bits Bernoulli units —
		// the same quantity the stopping rule targeted.
		units := float64(res.Stats.N()) * float64(bits)
		rel := 0.0
		if p := res.Stats.Mean(); p > 0 && units > 0 {
			lo, hi := adaptive.Wilson(p*units, units, adaptive.Z95)
			rel = (hi - lo) / 2 / p
		}
		a.Float(rel, 'f', 4)
		a.Int(int64(res.Trace.Trials))
		a.Int(int64(len(res.Trace.Rounds)))
		a.Bool(res.Trace.Stopped)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rep, nil
}
