package experiments

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// plotSymbols mark the series in a Plot, in column order.
var plotSymbols = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Plot renders the report's numeric columns as an ASCII chart: the
// first column is the x axis, every further column one series. Figure
// experiments (fig6a, fig6b, fig7, fig8) regenerate the paper's plots
// this way in a terminal; logY suits fig7's orders-of-magnitude spread.
func (r *Report) Plot(width, height int, logY bool) (string, error) {
	if width < 16 || height < 4 {
		return "", fmt.Errorf("experiments: plot needs at least 16x4, got %dx%d", width, height)
	}
	if len(r.Header) < 2 || len(r.Rows) < 2 {
		return "", fmt.Errorf("experiments: plot needs >=2 columns and >=2 rows")
	}
	nSeries := len(r.Header) - 1
	if nSeries > len(plotSymbols) {
		nSeries = len(plotSymbols)
	}
	xs := make([]float64, len(r.Rows))
	ys := make([][]float64, nSeries)
	for s := range ys {
		ys[s] = make([]float64, len(r.Rows))
	}
	for i, row := range r.Rows {
		x, err := strconv.ParseFloat(strings.TrimSpace(row[0]), 64)
		if err != nil {
			return "", fmt.Errorf("experiments: non-numeric x %q (row %d)", row[0], i)
		}
		xs[i] = x
		for s := 0; s < nSeries; s++ {
			v, err := strconv.ParseFloat(strings.TrimSuffix(strings.TrimSpace(row[s+1]), "%"), 64)
			if err != nil {
				return "", fmt.Errorf("experiments: non-numeric cell %q (row %d col %d)", row[s+1], i, s+1)
			}
			ys[s][i] = v
		}
	}
	tr := func(v float64) float64 { return v }
	if logY {
		tr = func(v float64) float64 {
			if v <= 0 {
				return math.Inf(-1)
			}
			return math.Log10(v)
		}
	}
	yLo, yHi := math.Inf(1), math.Inf(-1)
	xLo, xHi := xs[0], xs[0]
	for _, x := range xs {
		xLo = math.Min(xLo, x)
		xHi = math.Max(xHi, x)
	}
	for s := 0; s < nSeries; s++ {
		for _, v := range ys[s] {
			t := tr(v)
			if math.IsInf(t, -1) {
				continue
			}
			yLo = math.Min(yLo, t)
			yHi = math.Max(yHi, t)
		}
	}
	if xHi == xLo {
		xHi = xLo + 1
	}
	if yHi <= yLo {
		yHi = yLo + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for s := 0; s < nSeries; s++ {
		for i := range xs {
			t := tr(ys[s][i])
			if math.IsInf(t, -1) {
				continue
			}
			cx := int(math.Round((xs[i] - xLo) / (xHi - xLo) * float64(width-1)))
			cy := int(math.Round((t - yLo) / (yHi - yLo) * float64(height-1)))
			row := height - 1 - cy
			grid[row][cx] = plotSymbols[s]
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%s)\n", r.Title, yAxisLabel(logY))
	fmt.Fprintf(&b, "y: %.4g .. %.4g\n", untr(yLo, logY), untr(yHi, logY))
	for _, row := range grid {
		b.WriteString("| ")
		b.Write(row)
		b.WriteByte('\n')
	}
	b.WriteString("+-")
	b.WriteString(strings.Repeat("-", width))
	b.WriteByte('\n')
	fmt.Fprintf(&b, "x: %.4g .. %.4g (%s)\n", xLo, xHi, r.Header[0])
	for s := 0; s < nSeries; s++ {
		fmt.Fprintf(&b, "  %c %s\n", plotSymbols[s], r.Header[s+1])
	}
	return b.String(), nil
}

func yAxisLabel(logY bool) string {
	if logY {
		return "log scale"
	}
	return "linear scale"
}

func untr(v float64, logY bool) float64 {
	if logY {
		return math.Pow(10, v)
	}
	return v
}
