package experiments

import (
	"context"
	"fmt"
	"sync/atomic"

	"repro/internal/adaptive"
	"repro/internal/mathx"
	"repro/internal/sim"

	_ "repro/internal/simkern" // register the named Monte-Carlo kernels
)

func init() {
	registry["ext-coopber"] = ExtCoopBER
}

// ExtCoopBER sweeps the cooperative hop's BER over Eb/N0 through the
// named-kernel Monte-Carlo path (sim.RunKernelCtx). It is the one
// experiment whose trial work is expressed as a transportable kernel,
// which makes it the distribution witness: run locally it uses the
// in-process pool; run under a cluster coordinator (cogmimod -peers,
// cogsim -remote) the same call fans out to worker nodes — and the
// report is byte-identical either way, which the cluster tests pin
// against this experiment's golden file.
func ExtCoopBER(ctx context.Context, opts Options) (*Report, error) {
	trials := 8 * sim.ChunkSize
	bits := 128
	if opts.Quick {
		trials = 3 * sim.ChunkSize
		bits = 16
	}
	snrs := []float64{0, 4, 8, 12}
	pairs := []struct{ mt, mr int }{{1, 1}, {2, 2}}

	rep := &Report{
		ID:     "ext-coopber",
		Title:  "cooperative hop BER via the distributable Monte-Carlo kernel",
		Header: []string{"Eb/N0 dB", "1x1 BER", "1x1 ci95", "2x2 BER", "2x2 ci95"},
		Notes: []string{
			fmt.Sprintf("%d trials x %d bits per cell, kernel coop.ber, chunk size %d", trials, bits, sim.ChunkSize),
			"distribution witness: bit-identical under the cluster shard executor (see internal/cluster)",
			"extension experiment: not a paper artifact (see DESIGN.md)",
		},
	}

	// An enabled budget swaps the fixed trial count for sequential
	// stopping per cell; the zero budget keeps the golden-pinned fixed
	// path byte-identical.
	budget := opts.Budget
	if budget.Enabled() && budget.MaxTrials > trials {
		budget.MaxTrials = trials
	}
	var realized atomic.Int64

	// One derived seed per cell, row-major, so every cell's chunk walk
	// is independent of sweep shape and worker count.
	seeds := mathx.DeriveSeeds(opts.Seed, len(snrs)*len(pairs))
	var err error
	rep.Rows, err = sweepRows(ctx, opts, len(snrs), 5, func(a *RowArena, i int) error {
		a.Float(snrs[i], 'g', -1)
		for p, pair := range pairs {
			mc := sim.MonteCarlo{Seed: seeds[i*len(pairs)+p], Workers: opts.Workers}
			params := map[string]float64{
				"mt":     float64(pair.mt),
				"mr":     float64(pair.mr),
				"snr_db": snrs[i],
				"bits":   float64(bits),
			}
			var st mathx.Running
			if budget.Enabled() {
				res, err := adaptive.Run(ctx, mc, "coop.ber", params, budget)
				if err != nil {
					return err
				}
				st = res.Stats
				realized.Add(int64(res.Trace.Trials))
			} else {
				var err error
				st, err = mc.RunKernelCtx(ctx, "coop.ber", params, trials)
				if err != nil {
					return err
				}
			}
			a.Float(st.Mean(), 'e', 3)
			a.Float(st.CI95(), 'e', 2)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if budget.Enabled() {
		cells := len(snrs) * len(pairs)
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"adaptive budget: target ±%g%% CI, %d trials max per cell; realized %d of %d budgeted trials",
			100*budget.TargetRelCI, budget.MaxTrials, realized.Load(), int64(cells)*int64(budget.MaxTrials)))
	}
	return rep, nil
}
