package experiments

import (
	"context"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// RowArena formats report cells into one growing backing buffer and
// slices each cell out as a substring, so a whole sweep's rows cost a
// handful of allocations instead of one per cell. Cells sliced from
// earlier snapshots stay valid when the buffer grows (growth copies;
// the old array is left untouched). Not safe for concurrent use;
// parallel sweeps keep one arena per worker.
type RowArena struct {
	sb    strings.Builder
	start int
	cells []string
	num   [40]byte
}

// NewRowArena returns an arena with capHint bytes of cell storage
// preallocated.
func NewRowArena(capHint int) *RowArena {
	a := &RowArena{}
	a.sb.Grow(capHint)
	return a
}

// BeginRow starts a fresh row expected to hold the given cell count.
func (a *RowArena) BeginRow(cells int) {
	a.cells = make([]string, 0, cells)
	a.start = a.sb.Len()
}

// Row finishes the current row and returns its cells.
func (a *RowArena) Row() []string {
	cells := a.cells
	a.cells = nil
	return cells
}

func (a *RowArena) endCell() {
	s := a.sb.String()
	a.cells = append(a.cells, s[a.start:])
	a.start = a.sb.Len()
}

// Float appends one float cell; format and prec follow
// strconv.FormatFloat, matching fmt's %.<prec><format> verbs.
func (a *RowArena) Float(v float64, format byte, prec int) {
	a.sb.Write(strconv.AppendFloat(a.num[:0], v, format, prec, 64))
	a.endCell()
}

// Int appends one integer cell.
func (a *RowArena) Int(v int64) {
	a.sb.Write(strconv.AppendInt(a.num[:0], v, 10))
	a.endCell()
}

// Bool appends one boolean cell ("true"/"false", as %v prints).
func (a *RowArena) Bool(v bool) {
	a.sb.Write(strconv.AppendBool(a.num[:0], v))
	a.endCell()
}

// String appends one preformatted cell.
func (a *RowArena) String(s string) {
	a.sb.WriteString(s)
	a.endCell()
}

// sweepRows evaluates n independent sweep rows and returns them indexed
// by row. row(a, i) must format row i's cells into a; rows may run
// concurrently under the Options.Workers budget, but results always
// merge in row order and every row is driven only by its index, so any
// worker count yields bit-identical reports. Cancellation is observed
// between rows: completed rows are exactly what a serial run prints.
// Each completed row is reported to the context's progress sink;
// sweepRows declares those n row ticks itself, so drivers must not
// AddTotal for them — only for work they Add beyond the row ticks
// (Monte-Carlo kernels account their own trials). Keeping the
// declaration next to the Add preserves done <= total at every
// instant, the invariant the SSE progress stream advertises.
func sweepRows(ctx context.Context, opts Options, n, cellsPerRow int, row func(a *RowArena, i int) error) ([][]string, error) {
	progress := obs.ProgressFrom(ctx)
	progress.AddTotal(int64(n))
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	arenaHint := n * cellsPerRow * 12

	if workers <= 1 {
		a := NewRowArena(arenaHint)
		rows := make([][]string, 0, n)
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			a.BeginRow(cellsPerRow)
			if err := row(a, i); err != nil {
				return nil, err
			}
			rows = append(rows, a.Row())
			progress.Add(1)
		}
		return rows, nil
	}

	rows := make([][]string, n)
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			a := NewRowArena(arenaHint / workers)
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				a.BeginRow(cellsPerRow)
				if err := row(a, i); err != nil {
					errs[i] = err
					return
				}
				rows[i] = a.Row()
				progress.Add(1)
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return rows, nil
}
