package experiments

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/ebtable"
	"repro/internal/energy"
	"repro/internal/interweave"
	"repro/internal/mathx"
	"repro/internal/obs"
	"repro/internal/overlay"
	"repro/internal/underlay"
	"repro/internal/units"
)

// fig6Cases are the (m, bandwidth) series the paper plots.
var fig6Cases = []struct {
	M int
	B units.Hertz
}{
	{2, 20e3}, {3, 20e3}, {2, 40e3}, {3, 40e3},
}

// fig6Header is built once: the column set never varies between runs.
var fig6Header = sync.OnceValue(func() []string {
	h := []string{"D(Pt,Pr) m"}
	for _, c := range fig6Cases {
		h = append(h, fmt.Sprintf("m=%d B=%gk", c.M, float64(c.B)/1e3))
	}
	return h
})

// fig6Cols caches the per-series overlay configurations. The energy
// models and the memoized ēb solver are immutable and concurrency-safe,
// so one shared instance serves every run (and both figures), letting
// repeated sweeps skip the bisection entirely.
var fig6Cols = sync.OnceValues(func() ([]overlay.Config, error) {
	cols := make([]overlay.Config, len(fig6Cases))
	for i, c := range fig6Cases {
		model, err := energy.New(energy.Paper(c.B),
			ebtable.Memoize(ebtable.Analytic{Convention: ebtable.ConvArray}))
		if err != nil {
			return nil, err
		}
		cols[i] = overlay.Config{
			Model: model, M: c.M, DirectBER: 0.005, RelayBER: 0.0005,
		}
	}
	return cols, nil
})

// fig6Sweep runs the overlay analysis over the paper's D1 range.
// pick selects D2 or D3 from each analysis point.
func fig6Sweep(ctx context.Context, opts Options, id, title string, pick func(overlay.Analysis) float64) (*Report, error) {
	rep := &Report{
		ID:     id,
		Title:  title,
		Header: fig6Header(),
		Notes: []string{
			"direct BER 0.005, relayed BER 0.0005 (10x better), equal per-node energy",
			"gamma_b convention: ConvArray (matches the paper's evaluated D3/D2 = sqrt(m); see DESIGN.md)",
			"absolute distances exceed the paper's by ~2.8x (ideal-MRC ebtable); trends match",
		},
	}
	cols, err := fig6Cols()
	if err != nil {
		return nil, err
	}
	n := (350-150)/25 + 1
	rep.Rows, err = sweepRows(ctx, opts, n, 1+len(cols), func(a *RowArena, i int) error {
		d1 := 150 + 25*float64(i)
		a.Float(d1, 'f', 0)
		for _, cfg := range cols {
			an, err := overlay.Analyze(cfg, d1)
			if err != nil {
				return err
			}
			a.Float(pick(an), 'f', 0)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rep, nil
}

// Fig6a regenerates Figure 6(a): the largest distance the cooperative
// SUs can stay away from the primary transmitter Pt.
func Fig6a(ctx context.Context, opts Options) (*Report, error) {
	return fig6Sweep(ctx, opts, "fig6a",
		"largest SU distance from the primary transmitter Pt vs D(Pt, Pr)",
		func(a overlay.Analysis) float64 { return a.D2 })
}

// Fig6b regenerates Figure 6(b): the largest distance from the primary
// receiver Pr.
func Fig6b(ctx context.Context, opts Options) (*Report, error) {
	return fig6Sweep(ctx, opts, "fig6b",
		"largest SU distance from the primary receiver Pr vs D(Pt, Pr)",
		func(a overlay.Analysis) float64 { return a.D3 })
}

// fig7Pairs are the (mt, mr) series of Figure 7; (1,1) is the
// no-cooperation SISO reference modelling the primary users.
var fig7Pairs = [][2]int{{1, 1}, {1, 2}, {2, 1}, {1, 3}, {2, 2}, {2, 3}}

// fig7Header is built once: the pair set never varies between runs.
var fig7Header = sync.OnceValue(func() []string {
	h := []string{"D m"}
	for _, p := range fig7Pairs {
		h = append(h, fmt.Sprintf("mt=%d mr=%d", p[0], p[1]))
	}
	return h
})

// fig7Model caches the paper-parameter energy model with a memoized ēb
// solver: ēb is distance-independent, so the 9 distances x 6 pairs of
// the sweep re-solve only 6 distinct operating points — and repeated
// runs none at all.
var fig7Model = sync.OnceValues(func() (*energy.Model, error) {
	return energy.New(energy.Paper(40e3), ebtable.Memoize(ebtable.Analytic{}))
})

// Fig7 regenerates Figure 7 (upper and lower plots as one table): total
// PA energy per bit of all SU nodes vs link distance for each (mt, mr).
func Fig7(ctx context.Context, opts Options) (*Report, error) {
	model, err := fig7Model()
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:     "fig7",
		Title:  "total PA energy per bit (J/bit), d = 1 m, BER 0.001",
		Header: fig7Header(),
		Notes: []string{
			"mt=1 mr=1 is the no-cooperation SISO reference (the primary model)",
			"paper reports 2-4 orders SISO/coop; exact-MRC ebtable gives 1.2-2.3 orders (see EXPERIMENTS.md)",
		},
	}
	n := (300-100)/25 + 1
	rep.Rows, err = sweepRows(ctx, opts, n, 1+len(fig7Pairs), func(a *RowArena, i int) error {
		d := 100 + 25*float64(i)
		a.Float(d, 'f', 0)
		for _, p := range fig7Pairs {
			r, err := underlay.Analyze(underlay.Config{
				Model: model, Mt: p[0], Mr: p[1],
				IntraD: 1, LinkD: d, BER: 0.001,
			})
			if err != nil {
				return err
			}
			a.Float(float64(r.TotalPA), 'e', 3)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rep, nil
}

// Table1 regenerates the interweave amplitude table: ten trials of the
// null-steering pair with randomly scattered primary receivers.
func Table1(ctx context.Context, opts Options) (*Report, error) {
	trials := 10
	if opts.Quick {
		trials = 3
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	progress := obs.ProgressFrom(ctx)
	progress.AddTotal(int64(trials))
	rng := mathx.NewRand(opts.Seed)
	rows, avg, err := interweave.RunTable(interweave.PaperTrialConfig(), rng, trials)
	if err != nil {
		return nil, err
	}
	progress.Add(int64(trials))
	rep := &Report{
		ID:     "table1",
		Title:  "amplitude of signal waves from two cooperative SUs (interweave)",
		Header: []string{"Test", "Picked Pr", "Amplitude at Sr", "Residual at Pr"},
		Notes: []string{
			fmt.Sprintf("average amplitude at Sr = %.2f (paper: 1.87; SISO = 1.00)", avg),
		},
	}
	for i, r := range rows {
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%d", i+1),
			fmt.Sprintf("(%.0f, %.0f)", r.PickedPr.X, r.PickedPr.Y),
			fmt.Sprintf("%.2f", r.AmplitudeAtSr),
			fmt.Sprintf("%.3f", r.AmplitudeAtPr),
		})
	}
	return rep, nil
}
