package experiments

import (
	"context"
	"fmt"

	"repro/internal/ebtable"
	"repro/internal/energy"
	"repro/internal/interweave"
	"repro/internal/mathx"
	"repro/internal/obs"
	"repro/internal/overlay"
	"repro/internal/underlay"
	"repro/internal/units"
)

// fig6Cases are the (m, bandwidth) series the paper plots.
var fig6Cases = []struct {
	M int
	B units.Hertz
}{
	{2, 20e3}, {3, 20e3}, {2, 40e3}, {3, 40e3},
}

// fig6Sweep runs the overlay analysis over the paper's D1 range.
// pick selects D2 or D3 from each analysis point.
func fig6Sweep(ctx context.Context, id, title, distName string, pick func(overlay.Analysis) float64) (*Report, error) {
	rep := &Report{
		ID:     id,
		Title:  title,
		Header: []string{"D(Pt,Pr) m"},
		Notes: []string{
			"direct BER 0.005, relayed BER 0.0005 (10x better), equal per-node energy",
			"gamma_b convention: ConvArray (matches the paper's evaluated D3/D2 = sqrt(m); see DESIGN.md)",
			"absolute distances exceed the paper's by ~2.8x (ideal-MRC ebtable); trends match",
		},
	}
	for _, c := range fig6Cases {
		rep.Header = append(rep.Header, fmt.Sprintf("m=%d B=%gk", c.M, float64(c.B)/1e3))
	}
	type col struct {
		cfg overlay.Config
	}
	cols := make([]col, len(fig6Cases))
	for i, c := range fig6Cases {
		model, err := energy.New(energy.Paper(c.B), ebtable.Analytic{Convention: ebtable.ConvArray})
		if err != nil {
			return nil, err
		}
		cols[i] = col{cfg: overlay.Config{
			Model: model, M: c.M, DirectBER: 0.005, RelayBER: 0.0005,
		}}
	}
	progress := obs.ProgressFrom(ctx)
	progress.AddTotal(int64((350-150)/25) + 1)
	for d1 := 150.0; d1 <= 350+1e-9; d1 += 25 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		row := []string{fmt.Sprintf("%.0f", d1)}
		for _, c := range cols {
			a, err := overlay.Analyze(c.cfg, d1)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.0f", pick(a)))
		}
		rep.Rows = append(rep.Rows, row)
		progress.Add(1)
	}
	_ = distName
	return rep, nil
}

// Fig6a regenerates Figure 6(a): the largest distance the cooperative
// SUs can stay away from the primary transmitter Pt.
func Fig6a(ctx context.Context, opts Options) (*Report, error) {
	return fig6Sweep(ctx, "fig6a",
		"largest SU distance from the primary transmitter Pt vs D(Pt, Pr)",
		"D2", func(a overlay.Analysis) float64 { return a.D2 })
}

// Fig6b regenerates Figure 6(b): the largest distance from the primary
// receiver Pr.
func Fig6b(ctx context.Context, opts Options) (*Report, error) {
	return fig6Sweep(ctx, "fig6b",
		"largest SU distance from the primary receiver Pr vs D(Pt, Pr)",
		"D3", func(a overlay.Analysis) float64 { return a.D3 })
}

// fig7Pairs are the (mt, mr) series of Figure 7; (1,1) is the
// no-cooperation SISO reference modelling the primary users.
var fig7Pairs = [][2]int{{1, 1}, {1, 2}, {2, 1}, {1, 3}, {2, 2}, {2, 3}}

// Fig7 regenerates Figure 7 (upper and lower plots as one table): total
// PA energy per bit of all SU nodes vs link distance for each (mt, mr).
func Fig7(ctx context.Context, opts Options) (*Report, error) {
	model, err := energy.New(energy.Paper(40e3), ebtable.Analytic{})
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:     "fig7",
		Title:  "total PA energy per bit (J/bit), d = 1 m, BER 0.001",
		Header: []string{"D m"},
		Notes: []string{
			"mt=1 mr=1 is the no-cooperation SISO reference (the primary model)",
			"paper reports 2-4 orders SISO/coop; exact-MRC ebtable gives 1.2-2.3 orders (see EXPERIMENTS.md)",
		},
	}
	for _, p := range fig7Pairs {
		rep.Header = append(rep.Header, fmt.Sprintf("mt=%d mr=%d", p[0], p[1]))
	}
	progress := obs.ProgressFrom(ctx)
	progress.AddTotal(int64((300-100)/25) + 1)
	for d := 100.0; d <= 300+1e-9; d += 25 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		row := []string{fmt.Sprintf("%.0f", d)}
		for _, p := range fig7Pairs {
			r, err := underlay.Analyze(underlay.Config{
				Model: model, Mt: p[0], Mr: p[1],
				IntraD: 1, LinkD: d, BER: 0.001,
			})
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.3e", float64(r.TotalPA)))
		}
		rep.Rows = append(rep.Rows, row)
		progress.Add(1)
	}
	return rep, nil
}

// Table1 regenerates the interweave amplitude table: ten trials of the
// null-steering pair with randomly scattered primary receivers.
func Table1(ctx context.Context, opts Options) (*Report, error) {
	trials := 10
	if opts.Quick {
		trials = 3
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	progress := obs.ProgressFrom(ctx)
	progress.AddTotal(int64(trials))
	rng := mathx.NewRand(opts.Seed)
	rows, avg, err := interweave.RunTable(interweave.PaperTrialConfig(), rng, trials)
	if err != nil {
		return nil, err
	}
	progress.Add(int64(trials))
	rep := &Report{
		ID:     "table1",
		Title:  "amplitude of signal waves from two cooperative SUs (interweave)",
		Header: []string{"Test", "Picked Pr", "Amplitude at Sr", "Residual at Pr"},
		Notes: []string{
			fmt.Sprintf("average amplitude at Sr = %.2f (paper: 1.87; SISO = 1.00)", avg),
		},
	}
	for i, r := range rows {
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%d", i+1),
			fmt.Sprintf("(%.0f, %.0f)", r.PickedPr.X, r.PickedPr.Y),
			fmt.Sprintf("%.2f", r.AmplitudeAtSr),
			fmt.Sprintf("%.3f", r.AmplitudeAtPr),
		})
	}
	return rep, nil
}
