package experiments

import (
	"strings"
	"testing"
)

func TestPlotValidation(t *testing.T) {
	r := sampleReport()
	if _, err := r.Plot(8, 2, false); err == nil {
		t.Error("tiny plot should fail")
	}
	// sampleReport has a non-numeric row value "a".
	if _, err := r.Plot(40, 10, false); err == nil {
		t.Error("non-numeric x should fail")
	}
	thin := &Report{Header: []string{"x", "y"}, Rows: [][]string{{"1", "2"}}}
	if _, err := thin.Plot(40, 10, false); err == nil {
		t.Error("single row should fail")
	}
}

func TestPlotFig6a(t *testing.T) {
	rep, err := Run("fig6a", Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	out, err := rep.Plot(60, 16, false)
	if err != nil {
		t.Fatal(err)
	}
	// All four series legends present.
	for _, sym := range []string{"* m=2 B=20k", "o m=3 B=20k", "+ m=2 B=40k", "x m=3 B=40k"} {
		if !strings.Contains(out, sym) {
			t.Errorf("legend missing %q:\n%s", sym, out)
		}
	}
	if !strings.Contains(out, "x: 150 .. 350") {
		t.Errorf("x range missing:\n%s", out)
	}
	// The canvas is the requested height.
	lines := strings.Split(out, "\n")
	canvas := 0
	for _, l := range lines {
		if strings.HasPrefix(l, "| ") {
			canvas++
		}
	}
	if canvas != 16 {
		t.Errorf("canvas %d rows, want 16", canvas)
	}
}

func TestPlotFig7Log(t *testing.T) {
	rep, err := Run("fig7", Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	out, err := rep.Plot(60, 18, true)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "log scale") {
		t.Errorf("log label missing:\n%s", out)
	}
	// The SISO series (*) and cheapest coop series must both be drawn.
	body := out[:strings.Index(out, "+-")]
	if !strings.Contains(body, "*") {
		t.Error("SISO series not drawn")
	}
}

func TestPlotPercentCells(t *testing.T) {
	// Percent-suffixed cells (table formats) parse.
	r := &Report{
		ID: "p", Title: "percent", Header: []string{"x", "y"},
		Rows: [][]string{{"1", "10.5%"}, {"2", "20%"}, {"3", "40%"}},
	}
	out, err := r.Plot(30, 8, false)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "*") {
		t.Error("series not drawn")
	}
}
