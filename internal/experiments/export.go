package experiments

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// WriteCSV emits the report as RFC-4180 CSV: the header row, then data
// rows; notes become trailing comment-style rows prefixed with "#".
func (r *Report) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(r.Header); err != nil {
		return fmt.Errorf("experiments: csv header: %w", err)
	}
	for _, row := range r.Rows {
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("experiments: csv row: %w", err)
		}
	}
	for _, n := range r.Notes {
		// Pad to the header width so strict RFC-4180 readers (which
		// require a uniform field count) accept the stream.
		row := make([]string, len(r.Header))
		row[0] = "# " + n
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("experiments: csv note: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSON emits the report as a single JSON object.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Format renders the report in the named format: "text" (default),
// "csv" or "json".
func (r *Report) Format(format string) (string, error) {
	switch format {
	case "", "text":
		return r.String(), nil
	case "csv":
		var b strings.Builder
		if err := r.WriteCSV(&b); err != nil {
			return "", err
		}
		return b.String(), nil
	case "json":
		var b strings.Builder
		if err := r.WriteJSON(&b); err != nil {
			return "", err
		}
		return b.String(), nil
	default:
		return "", fmt.Errorf("experiments: unknown format %q (text, csv, json)", format)
	}
}
