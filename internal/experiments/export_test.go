package experiments

import (
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"
)

func sampleReport() *Report {
	return &Report{
		ID:     "fig0",
		Title:  "sample",
		Header: []string{"x", "y"},
		Rows:   [][]string{{"1", "2"}, {"3", "4,5"}},
		Notes:  []string{"a note"},
	}
}

func TestWriteCSV(t *testing.T) {
	var b strings.Builder
	if err := sampleReport().WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(strings.NewReader(b.String())).ReadAll()
	if err != nil {
		t.Fatalf("emitted invalid CSV: %v\n%s", err, b.String())
	}
	if len(recs) != 4 { // header + 2 rows + 1 note
		t.Fatalf("%d records", len(recs))
	}
	if recs[0][0] != "x" || recs[2][1] != "4,5" {
		t.Errorf("records mangled: %v", recs)
	}
	if !strings.HasPrefix(recs[3][0], "# ") {
		t.Errorf("note row = %v", recs[3])
	}
}

func TestWriteJSON(t *testing.T) {
	var b strings.Builder
	if err := sampleReport().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal([]byte(b.String()), &back); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if back.ID != "fig0" || len(back.Rows) != 2 || back.Rows[1][1] != "4,5" {
		t.Errorf("round trip mangled: %+v", back)
	}
}

func TestFormat(t *testing.T) {
	r := sampleReport()
	for _, f := range []string{"", "text", "csv", "json"} {
		out, err := r.Format(f)
		if err != nil {
			t.Fatalf("format %q: %v", f, err)
		}
		if !strings.Contains(out, "fig0") && f != "csv" {
			t.Errorf("format %q output missing id:\n%s", f, out)
		}
		if out == "" {
			t.Errorf("format %q empty", f)
		}
	}
	if _, err := r.Format("yaml"); err == nil {
		t.Error("unknown format should fail")
	}
}

func TestRealReportFormats(t *testing.T) {
	rep, err := Run("table1", Options{Seed: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	csvOut, err := rep.Format("csv")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := csv.NewReader(strings.NewReader(csvOut)).ReadAll(); err != nil {
		t.Errorf("table1 CSV invalid: %v", err)
	}
	jsonOut, err := rep.Format("json")
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid([]byte(jsonOut)) {
		t.Error("table1 JSON invalid")
	}
}
