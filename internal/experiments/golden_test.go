package experiments

import (
	"strings"
	"testing"
)

// TestGoldenRendering pins the exact text layout of the report renderer
// on a synthetic report, so accidental formatting drift is caught by CI
// rather than by readers of regenerated artifacts.
func TestGoldenRendering(t *testing.T) {
	r := &Report{
		ID:     "fig0",
		Title:  "golden sample",
		Header: []string{"col", "value"},
		Rows: [][]string{
			{"a", "1"},
			{"long-row", "2.5"},
		},
		Notes: []string{"a note"},
	}
	want := strings.Join([]string{
		"== fig0: golden sample ==",
		"col       value",
		"--------  -----",
		"a         1    ",
		"long-row  2.5  ",
		"note: a note",
		"",
	}, "\n")
	if got := r.String(); got != want {
		t.Errorf("rendering drifted:\n--- got ---\n%q\n--- want ---\n%q", got, want)
	}
}

// TestGoldenExtConv pins the ext-conv experiment end to end: it is fully
// deterministic (no Monte Carlo), so the exact numbers are a regression
// anchor for the whole analytic stack (ebtable -> energy -> overlay).
func TestGoldenExtConv(t *testing.T) {
	rep, err := Run("ext-conv", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("rows: %v", rep.Rows)
	}
	// Paper-equation row: symmetric coefficients, D3 just under D2.
	if rep.Rows[0][1] != "721" || rep.Rows[0][2] != "671" {
		t.Errorf("ConvPaper row drifted: %v", rep.Rows[0])
	}
	// As-evaluated row: D3/D2 approaches sqrt(3).
	if rep.Rows[1][1] != "721" || rep.Rows[1][2] != "1162" {
		t.Errorf("ConvArray row drifted: %v", rep.Rows[1])
	}
	if rep.Rows[1][3] != "1.61" {
		t.Errorf("ratio drifted: %v", rep.Rows[1][3])
	}
}
