package experiments

import (
	"context"
	"fmt"

	"repro/internal/mathx"
	"repro/internal/sim"
)

func init() {
	registry["ext-cellfree"] = ExtCellfree
}

// ExtCellfree reports the CDF of the per-user uplink spectral
// efficiency in a cell-free massive MIMO deployment (internal/cellfree)
// for MR and centralized MMSE combining, through the distributable
// cellfree.se / cellfree.se.mmse kernels. Each row is one quantile of
// one deployment scale; both combiners in a row run from the same
// derived seed, so they score identical network snapshots and the
// MMSE column dominates the MR column exactly, not just in expectation
// — the invariant the cellfree-smoke gate asserts on the median row.
func ExtCellfree(ctx context.Context, opts Options) (*Report, error) {
	type scale struct{ l, n, k, tauP int }
	trials := 256
	scales := []scale{{100, 1, 40, 10}, {100, 4, 40, 10}}
	quantiles := []float64{0.05, 0.25, 0.5, 0.75, 0.95}
	realizations := 4
	square := 1000.0
	if opts.Quick {
		// Quick preset: small network, one realization, enough trials
		// to span several chunks so the cluster golden test exercises
		// real sharding.
		trials = 3 * sim.ChunkSize
		scales = []scale{{25, 1, 8, 4}}
		quantiles = []float64{0.25, 0.5, 0.75}
		realizations = 1
		square = 500
	}

	rep := &Report{
		ID:     "ext-cellfree",
		Title:  "cell-free massive MIMO uplink SE: CDF quantiles, MR vs centralized MMSE",
		Header: []string{"L", "N", "K", "quantile", "MR SE", "MR ci95", "MMSE SE", "MMSE ci95"},
		Notes: []string{
			fmt.Sprintf("%d trials per cell, %d realizations per snapshot, kernels cellfree.se{,.mmse}, chunk size %d", trials, realizations, sim.ChunkSize),
			"SE in bit/s/Hz per UE; MR and MMSE columns share seeds, so MMSE >= MR holds per cell",
			"distribution witness: bit-identical under the cluster shard executor (see internal/cluster)",
			"extension experiment: not a paper artifact (see DESIGN.md)",
		},
	}

	// One derived seed per (scale, quantile) cell, row-major; the MR and
	// MMSE runs of a cell deliberately reuse the cell's seed.
	seeds := mathx.DeriveSeeds(opts.Seed, len(scales)*len(quantiles))
	var err error
	rep.Rows, err = sweepRows(ctx, opts, len(scales)*len(quantiles), 8, func(a *RowArena, i int) error {
		sc, q := scales[i/len(quantiles)], quantiles[i%len(quantiles)]
		a.Int(int64(sc.l))
		a.Int(int64(sc.n))
		a.Int(int64(sc.k))
		a.Float(q, 'g', -1)
		params := map[string]float64{
			"l":            float64(sc.l),
			"n":            float64(sc.n),
			"k":            float64(sc.k),
			"tau_p":        float64(sc.tauP),
			"square":       square,
			"realizations": float64(realizations),
			"q":            q,
		}
		for _, kernel := range []string{"cellfree.se", "cellfree.se.mmse"} {
			mc := sim.MonteCarlo{Seed: seeds[i], Workers: opts.Workers}
			st, err := mc.RunKernelCtx(ctx, kernel, params, trials)
			if err != nil {
				return err
			}
			a.Float(st.Mean(), 'f', 4)
			a.Float(st.CI95(), 'e', 2)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rep, nil
}
