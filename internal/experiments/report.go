// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 6): Figures 6(a), 6(b), 7 and 8, and Tables 1-4.
// Each driver returns a Report — the same rows/series the paper prints —
// and a registry maps experiment IDs to drivers for the CLI and the
// benchmark harness.
package experiments

import (
	"context"
	"fmt"
	"log/slog"
	"sort"
	"strings"
	"time"

	"repro/internal/adaptive"
	"repro/internal/obs"
)

// expDuration records driver wall-clock time by experiment ID, for
// the "which sweep is slow" question the service cannot answer from
// job totals alone (a job may be a cache hit).
var expDuration = obs.Default.HistogramVec("cogmimod_experiment_duration_seconds",
	"Driver wall-clock time by experiment ID.", "experiment", nil)

// Report is one regenerated artifact.
type Report struct {
	// ID is the registry key ("fig6a", "table2", ...).
	ID string
	// Title describes the artifact.
	Title string
	// Header names the columns.
	Header []string
	// Rows are the data cells, already formatted.
	Rows [][]string
	// Notes carry paper-vs-measured commentary.
	Notes []string
}

// String renders the report as an aligned text table.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(r.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Options parameterise a driver run.
type Options struct {
	// Seed drives all randomness; equal seeds reproduce bit-for-bit.
	Seed int64
	// Quick shrinks workloads (fewer bits/trials) for smoke tests and
	// benchmarks; the full configuration matches the paper.
	Quick bool
	// Workers caps how many sweep rows a driver evaluates concurrently;
	// 0 means GOMAXPROCS. Rows merge in row order whatever the budget,
	// so any value yields bit-identical reports.
	Workers int
	// Budget, when enabled, lets kernel-path drivers stop each
	// Monte-Carlo cell early once its 95% CI shrinks below
	// Budget.TargetRelCI of the estimate, spending at most
	// Budget.MaxTrials. The zero Budget keeps every driver on its fixed
	// trial counts — existing goldens are untouched. Adaptive runs stay
	// deterministic for a given (seed, budget): stopping is evaluated at
	// chunk boundaries only (see internal/adaptive).
	Budget adaptive.Budget
}

// Driver regenerates one artifact. Drivers poll ctx between sweep
// points and runs — never inside one — so cancellation is prompt while
// every row that is produced matches what an uncancelled run prints.
type Driver func(ctx context.Context, opts Options) (*Report, error)

var registry = map[string]Driver{
	"fig6a":  Fig6a,
	"fig6b":  Fig6b,
	"fig7":   Fig7,
	"fig8":   Fig8,
	"table1": Table1,
	"table2": Table2,
	"table3": Table3,
	"table4": Table4,
}

// IDs lists the registered experiments in stable order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run executes one experiment by ID.
func Run(id string, opts Options) (*Report, error) {
	return RunCtx(context.Background(), id, opts)
}

// RunCtx executes one experiment by ID under ctx; a cancelled or expired
// context aborts the driver between sweep points and surfaces ctx.Err().
// Each completed driver run is timed into the per-experiment duration
// histogram and logged at debug level through the context logger.
func RunCtx(ctx context.Context, id string, opts Options) (*Report, error) {
	d, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown id %q (have %s)", id, strings.Join(IDs(), ", "))
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start := time.Now()
	rep, err := d(ctx, opts)
	if err == nil {
		elapsed := time.Since(start)
		expDuration.With(id).Observe(elapsed.Seconds())
		// Gate on Enabled: slog boxes its arguments before checking the
		// level, which would put several allocations on every driver run
		// even with debug logging off.
		if lg := obs.Logger(ctx); lg.Enabled(ctx, slog.LevelDebug) {
			lg.Debug("experiment finished",
				"experiment", id, "duration", elapsed, "quick", opts.Quick)
		}
	}
	return rep, err
}

// RunAll executes every experiment in ID order.
func RunAll(opts Options) ([]*Report, error) {
	return RunAllCtx(context.Background(), opts)
}

// RunAllCtx executes every experiment in ID order under ctx.
func RunAllCtx(ctx context.Context, opts Options) ([]*Report, error) {
	var out []*Report
	for _, id := range IDs() {
		r, err := RunCtx(ctx, id, opts)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", id, err)
		}
		out = append(out, r)
	}
	return out, nil
}
