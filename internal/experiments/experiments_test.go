package experiments

import (
	"context"
	"strconv"
	"strings"
	"testing"
)

func TestIDsComplete(t *testing.T) {
	want := []string{
		"ext-adaptive", "ext-cellfree", "ext-conv", "ext-coopber", "ext-cycle", "ext-game", "ext-lifetime", "ext-multihop", "ext-roc",
		"fig6a", "fig6b", "fig7", "fig8",
		"table1", "table2", "table3", "table4",
	}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("IDs = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("IDs[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("fig99", Options{}); err == nil {
		t.Error("unknown id should fail")
	}
}

func TestRunAllQuick(t *testing.T) {
	reps, err := RunAll(Options{Seed: 21, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 17 {
		t.Fatalf("%d reports", len(reps))
	}
	for _, r := range reps {
		if r.ID == "" || r.Title == "" || len(r.Header) == 0 || len(r.Rows) == 0 {
			t.Errorf("report %q incomplete", r.ID)
		}
		s := r.String()
		if !strings.Contains(s, r.ID) || !strings.Contains(s, r.Header[0]) {
			t.Errorf("rendering of %q missing parts:\n%s", r.ID, s)
		}
		for _, row := range r.Rows {
			if len(row) != len(r.Header) && r.ID != "table3" {
				t.Errorf("%s: row width %d vs header %d", r.ID, len(row), len(r.Header))
			}
		}
	}
}

func TestFig6Shapes(t *testing.T) {
	a, err := Fig6a(context.Background(), Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig6b(context.Background(), Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// 150..350 step 25 = 9 rows; 4 series + D1 column.
	if len(a.Rows) != 9 || len(a.Header) != 5 {
		t.Fatalf("fig6a shape %dx%d", len(a.Rows), len(a.Header))
	}
	// Distances increase down each column.
	for col := 1; col < 5; col++ {
		for i := 1; i < len(a.Rows); i++ {
			prev, _ := strconv.ParseFloat(a.Rows[i-1][col], 64)
			cur, _ := strconv.ParseFloat(a.Rows[i][col], 64)
			if cur <= prev {
				t.Errorf("fig6a col %d not increasing at row %d", col, i)
			}
		}
	}
	// Figure 6(b) distances exceed 6(a)'s (D3 = sqrt(m) D2 under
	// ConvArray).
	for i := range a.Rows {
		d2, _ := strconv.ParseFloat(a.Rows[i][2], 64) // m=3 B=20k column
		d3, _ := strconv.ParseFloat(b.Rows[i][2], 64)
		if d3 <= d2 {
			t.Errorf("row %d: D3 (%v) should exceed D2 (%v)", i, d3, d2)
		}
	}
}

func TestFig7SISODominates(t *testing.T) {
	r, err := Fig7(context.Background(), Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		siso, _ := strconv.ParseFloat(row[1], 64)
		for col := 2; col < len(row); col++ {
			coop, _ := strconv.ParseFloat(row[col], 64)
			if coop >= siso {
				t.Errorf("D=%s: coop col %d (%v) should be far below SISO (%v)",
					row[0], col, coop, siso)
			}
		}
	}
}

func TestRunCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, id := range IDs() {
		if _, err := RunCtx(ctx, id, Options{Seed: 1, Quick: true}); err != context.Canceled {
			t.Errorf("%s: err = %v, want context.Canceled", id, err)
		}
	}
	if _, err := RunAllCtx(ctx, Options{Seed: 1, Quick: true}); err == nil {
		t.Error("RunAllCtx on cancelled ctx should fail")
	}
}

func TestDeterministicReports(t *testing.T) {
	for _, id := range []string{"table1", "table2", "table4", "fig8"} {
		a, err := Run(id, Options{Seed: 33, Quick: true})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(id, Options{Seed: 33, Quick: true})
		if err != nil {
			t.Fatal(err)
		}
		if a.String() != b.String() {
			t.Errorf("%s not deterministic", id)
		}
	}
}
