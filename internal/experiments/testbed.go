package experiments

import (
	"context"
	"fmt"

	"repro/internal/obs"
	"repro/internal/testbed"
)

// Table2 regenerates the single-relay overlay BER table: three
// experiment runs plus the average, with and without cooperation.
func Table2(ctx context.Context, opts Options) (*Report, error) {
	rep := &Report{
		ID:     "table2",
		Title:  "BER results for the single-relay overlay testbed",
		Header: []string{"Experiment", "with cooperation", "without cooperation"},
		Notes: []string{
			"paper: 2.46% avg with cooperation, 10.87% without",
			"simulated indoor testbed substitute for GNU Radio/USRP (see DESIGN.md)",
		},
	}
	var sumC, sumD float64
	runs := 3
	progress := obs.ProgressFrom(ctx)
	progress.AddTotal(int64(runs))
	for i := 0; i < runs; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		x := testbed.Table2Setup(opts.Seed + int64(i))
		if opts.Quick {
			x.Bits = 20000
		}
		r, err := x.Run()
		if err != nil {
			return nil, err
		}
		progress.Add(1)
		sumC += r.CoopBER
		sumD += r.DirectBER
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%d", i+1),
			fmt.Sprintf("%.2f%%", 100*r.CoopBER),
			fmt.Sprintf("%.2f%%", 100*r.DirectBER),
		})
	}
	rep.Rows = append(rep.Rows, []string{
		"Average",
		fmt.Sprintf("%.2f%%", 100*sumC/float64(runs)),
		fmt.Sprintf("%.2f%%", 100*sumD/float64(runs)),
	})
	return rep, nil
}

// Table3 regenerates the multi-relay overlay BER table: three relays vs
// the single middle relay vs the direct link.
func Table3(ctx context.Context, opts Options) (*Report, error) {
	bits := 100000
	if opts.Quick {
		bits = 20000
	}
	progress := obs.ProgressFrom(ctx)
	progress.AddTotal(3)
	run := func(relays int) (testbed.OverlayResult, error) {
		if err := ctx.Err(); err != nil {
			return testbed.OverlayResult{}, err
		}
		x := testbed.Table3Setup(opts.Seed, relays)
		x.Bits = bits
		r, err := x.Run()
		if err == nil {
			progress.Add(1)
		}
		return r, err
	}
	direct, err := run(0)
	if err != nil {
		return nil, err
	}
	single, err := run(1)
	if err != nil {
		return nil, err
	}
	multi, err := run(3)
	if err != nil {
		return nil, err
	}
	return &Report{
		ID:     "table3",
		Title:  "BER results for the multi-relay overlay testbed",
		Header: []string{"Multi-relay", "Single-relay", "without cooperation"},
		Rows: [][]string{{
			fmt.Sprintf("%.2f%%", 100*multi.CoopBER),
			fmt.Sprintf("%.2f%%", 100*single.CoopBER),
			fmt.Sprintf("%.2f%%", 100*direct.DirectBER),
		}},
		Notes: []string{
			"paper: 2.93% / 10.57% / 22.74%",
			"more relays, lower bit errors — the ordering the experiment verifies",
		},
	}, nil
}

// Table4 regenerates the underlay PER table: image transfer at
// amplitudes 800/600/400 with two cooperative transmitters vs one.
func Table4(ctx context.Context, opts Options) (*Report, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	x := testbed.PaperUnderlay(opts.Seed)
	if opts.Quick {
		img, err := testbed.NewImage(100, 1500, opts.Seed)
		if err != nil {
			return nil, err
		}
		x.Image = img
	}
	progress := obs.ProgressFrom(ctx)
	progress.AddTotal(1)
	rows, err := x.RunTable(nil)
	if err != nil {
		return nil, err
	}
	progress.Add(1)
	rep := &Report{
		ID:     "table4",
		Title:  "PER results for the underlay testbed (474-packet image, GMSK)",
		Header: []string{"Amplitude", "with cooperation", "without cooperation"},
		Notes: []string{
			"paper: coop {0, 6.12%, 13.72%}, without {24.85%, 70.28%, 97.1%}",
		},
	}
	var sumC, sumD float64
	for _, r := range rows {
		sumC += r.CoopPER
		sumD += r.DirectPER
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%.0f", r.Amplitude),
			fmt.Sprintf("%.2f%%", 100*r.CoopPER),
			fmt.Sprintf("%.2f%%", 100*r.DirectPER),
		})
	}
	rep.Rows = append(rep.Rows, []string{
		"Average",
		fmt.Sprintf("%.2f%%", 100*sumC/float64(len(rows))),
		fmt.Sprintf("%.2f%%", 100*sumD/float64(len(rows))),
	})
	return rep, nil
}

// Fig8 regenerates the cooperative beamformer pattern: designed null at
// 120 degrees, receiver on a 1 m semicircle in 20-degree steps.
func Fig8(ctx context.Context, opts Options) (*Report, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	x := testbed.PaperInterweave(opts.Seed)
	if opts.Quick {
		x.Averages = 16
	}
	progress := obs.ProgressFrom(ctx)
	progress.AddTotal(1)
	pts, err := x.Run(nil)
	if err != nil {
		return nil, err
	}
	progress.Add(1)
	rep := &Report{
		ID:     "fig8",
		Title:  "cooperative beamformer pattern vs SISO (null at 120 deg)",
		Header: []string{"Angle deg", "simulated pattern", "measured (multipath)", "SISO"},
		Notes: []string{
			"multipath keeps the measured null above zero, as in the paper's in-door runs",
			"beamformer exceeds SISO outside +/-20 deg of the null (the diversity-gain claim)",
		},
	}
	for _, p := range pts {
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%.0f", p.AngleDeg),
			fmt.Sprintf("%.3f", p.Ideal),
			fmt.Sprintf("%.3f", p.Measured),
			fmt.Sprintf("%.3f", p.SISO),
		})
	}
	return rep, nil
}
