package experiments

import (
	"os"
	"path/filepath"
	"testing"
)

// TestGoldenReports compares every driver's Quick seed-1 output against
// the snapshots under testdata/golden, for the serial path and for a
// parallel row budget. The snapshots were captured from the original
// allocating kernels, so this test is the bit-identical-reproducibility
// contract for the workspace/in-place refactors and for sweep
// parallelism alike. Regenerate intentionally changed reports with:
//
//	go run ./internal/tools/goldengen
func TestGoldenReports(t *testing.T) {
	for _, id := range IDs() {
		t.Run(id, func(t *testing.T) {
			want, err := os.ReadFile(filepath.Join("testdata", "golden", id+"_quick_seed1.txt"))
			if err != nil {
				t.Fatalf("golden snapshot missing (run go run ./internal/tools/goldengen): %v", err)
			}
			for _, workers := range []int{1, 3} {
				rep, err := Run(id, Options{Seed: 1, Quick: true, Workers: workers})
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if got := rep.String(); got != string(want) {
					t.Errorf("workers=%d: report drifted from golden\n--- got ---\n%s\n--- want ---\n%s",
						workers, got, want)
				}
			}
		})
	}
}
