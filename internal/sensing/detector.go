// Package sensing implements the spectrum-sensing substrate the
// interweave paradigm stands on (Sections 1 and 5): primary users are
// sensed "in a nonintrusive manner" before secondary transmissions are
// planned around them. It provides an energy detector with closed-form
// operating characteristics, cooperative decision fusion across multiple
// SUs, a two-state Markov primary-activity model on the discrete-event
// engine, and the channel selector Algorithm 3's Step 1 uses.
package sensing

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/mathx"
)

// EnergyDetector integrates N complex baseband samples and compares the
// total energy against a threshold.
type EnergyDetector struct {
	// Samples is the sensing window length N.
	Samples int
	// Threshold is the decision level on the normalised statistic
	// T = sum |y_i|^2 / sigma^2.
	Threshold float64
}

// NewDetectorForPfa sizes the threshold for a target false-alarm
// probability using the Gaussian approximation of the chi-square
// statistic: under noise only, T ~ Normal(N, N).
func NewDetectorForPfa(samples int, pfa float64) (EnergyDetector, error) {
	if samples < 1 {
		return EnergyDetector{}, fmt.Errorf("sensing: sample count %d must be positive", samples)
	}
	if pfa <= 0 || pfa >= 1 {
		return EnergyDetector{}, fmt.Errorf("sensing: Pfa %g outside (0, 1)", pfa)
	}
	n := float64(samples)
	return EnergyDetector{
		Samples:   samples,
		Threshold: n + math.Sqrt(n)*mathx.QInv(pfa),
	}, nil
}

// Pfa returns the theoretical false-alarm probability.
func (d EnergyDetector) Pfa() float64 {
	n := float64(d.Samples)
	return mathx.Q((d.Threshold - n) / math.Sqrt(n))
}

// Pd returns the theoretical detection probability for a primary signal
// at the given per-sample SNR (linear): under H1 the statistic is
// approximately Normal(N(1+snr), N(1+snr)^2) for a Gaussian-like
// primary waveform.
func (d EnergyDetector) Pd(snr float64) float64 {
	if snr < 0 {
		snr = 0
	}
	n := float64(d.Samples)
	mean := n * (1 + snr)
	std := math.Sqrt(n) * (1 + snr)
	return mathx.Q((d.Threshold - mean) / std)
}

// Sense runs one detection on simulated samples: primary present with
// the given per-sample SNR (0 = absent), unit-variance complex noise.
// It returns the decision and the normalised statistic.
func (d EnergyDetector) Sense(rng *rand.Rand, present bool, snr float64) (bool, float64) {
	var t float64
	amp := math.Sqrt(snr)
	for i := 0; i < d.Samples; i++ {
		y := mathx.ComplexCN(rng, 1)
		if present {
			// Gaussian-like primary waveform at the given SNR.
			y += mathx.ComplexCN(rng, 1) * complex(amp, 0)
		}
		t += real(y)*real(y) + imag(y)*imag(y)
	}
	return t > d.Threshold, t
}

// FusionRule combines per-SU hard decisions.
type FusionRule int

// Fusion rules.
const (
	// FusionOR declares the primary present if any SU detects it — the
	// conservative choice protecting the PU hardest.
	FusionOR FusionRule = iota
	// FusionAND requires every SU to detect.
	FusionAND
	// FusionMajority requires more than half.
	FusionMajority
)

// Fuse combines hard decisions under the rule.
func Fuse(rule FusionRule, votes []bool) (bool, error) {
	if len(votes) == 0 {
		return false, fmt.Errorf("sensing: no votes to fuse")
	}
	n := 0
	for _, v := range votes {
		if v {
			n++
		}
	}
	switch rule {
	case FusionOR:
		return n > 0, nil
	case FusionAND:
		return n == len(votes), nil
	case FusionMajority:
		return 2*n > len(votes), nil
	default:
		return false, fmt.Errorf("sensing: unknown fusion rule %d", rule)
	}
}

// CooperativePd returns the fused detection probability for k SUs with
// iid per-SU probability p under the rule.
func CooperativePd(rule FusionRule, k int, p float64) (float64, error) {
	if k < 1 {
		return 0, fmt.Errorf("sensing: need at least one SU, got %d", k)
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("sensing: probability %g outside [0, 1]", p)
	}
	switch rule {
	case FusionOR:
		return 1 - math.Pow(1-p, float64(k)), nil
	case FusionAND:
		return math.Pow(p, float64(k)), nil
	case FusionMajority:
		need := k/2 + 1
		var sum float64
		for i := need; i <= k; i++ {
			sum += binom(k, i) * math.Pow(p, float64(i)) * math.Pow(1-p, float64(k-i))
		}
		return sum, nil
	default:
		return 0, fmt.Errorf("sensing: unknown fusion rule %d", rule)
	}
}

func binom(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	r := 1.0
	for i := 1; i <= k; i++ {
		r *= float64(n-k+i) / float64(i)
	}
	return r
}
