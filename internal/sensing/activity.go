package sensing

import (
	"fmt"
	"math/rand"

	"repro/internal/sim"
)

// PUActivity is a two-state (idle/busy) Markov on/off model of a primary
// user's channel occupancy, driven by the discrete-event engine with
// exponential holding times — the "short term predictions" substrate of
// the cognitive cycle.
type PUActivity struct {
	// MeanBusy and MeanIdle are the expected holding times in seconds.
	MeanBusy, MeanIdle float64

	busy     bool
	engine   *sim.Engine
	rng      *rand.Rand
	busyTime float64
	lastFlip float64
	flips    int
}

// NewPUActivity attaches an activity process to the engine, starting
// idle, and schedules its state flips.
func NewPUActivity(eng *sim.Engine, rng *rand.Rand, meanBusy, meanIdle float64) (*PUActivity, error) {
	if meanBusy <= 0 || meanIdle <= 0 {
		return nil, fmt.Errorf("sensing: holding times %g/%g must be positive", meanBusy, meanIdle)
	}
	a := &PUActivity{
		MeanBusy: meanBusy, MeanIdle: meanIdle,
		engine: eng, rng: rng,
	}
	a.scheduleFlip()
	return a, nil
}

func (a *PUActivity) scheduleFlip() {
	mean := a.MeanIdle
	if a.busy {
		mean = a.MeanBusy
	}
	a.engine.ScheduleAfter(a.rng.ExpFloat64()*mean, a.flip)
}

func (a *PUActivity) flip() {
	now := a.engine.Now()
	if a.busy {
		a.busyTime += now - a.lastFlip
	}
	a.busy = !a.busy
	a.lastFlip = now
	a.flips++
	a.scheduleFlip()
}

// Busy reports the current occupancy.
func (a *PUActivity) Busy() bool { return a.busy }

// DutyCycle returns the fraction of elapsed time spent busy.
func (a *PUActivity) DutyCycle() float64 {
	now := a.engine.Now()
	if now == 0 {
		return 0
	}
	busy := a.busyTime
	if a.busy {
		busy += now - a.lastFlip
	}
	return busy / now
}

// Flips returns the number of state transitions so far.
func (a *PUActivity) Flips() int { return a.flips }

// ExpectedDutyCycle is the stationary busy fraction.
func (a *PUActivity) ExpectedDutyCycle() float64 {
	return a.MeanBusy / (a.MeanBusy + a.MeanIdle)
}

// ChannelSelector scans a set of primary channels with an energy
// detector and picks one to share — Step 1 of Algorithm 3 ("the head
// determines the PU to share the frequency based on the sensed
// environment").
type ChannelSelector struct {
	Detector EnergyDetector
	// Sensors is the number of cooperating SUs fusing decisions.
	Sensors int
	// Rule fuses the SU votes.
	Rule FusionRule
}

// Channel is one sensed primary band.
type Channel struct {
	// Activity drives occupancy.
	Activity *PUActivity
	// SNR is the primary's per-sample SNR at the sensing SUs.
	SNR float64
}

// Select senses every channel once and returns the index of the first
// channel fused as idle, or -1 when all appear busy. The scan order is
// deterministic so results reproduce per seed.
func (s ChannelSelector) Select(rng *rand.Rand, channels []Channel) (int, error) {
	if len(channels) == 0 {
		return -1, fmt.Errorf("sensing: no channels to scan")
	}
	if s.Sensors < 1 {
		return -1, fmt.Errorf("sensing: need at least one sensor, got %d", s.Sensors)
	}
	for i, ch := range channels {
		votes := make([]bool, s.Sensors)
		for v := range votes {
			votes[v], _ = s.Detector.Sense(rng, ch.Activity.Busy(), ch.SNR)
		}
		busy, err := Fuse(s.Rule, votes)
		if err != nil {
			return -1, err
		}
		if !busy {
			return i, nil
		}
	}
	return -1, nil
}
