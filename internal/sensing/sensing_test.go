package sensing

import (
	"math"
	"testing"

	"repro/internal/mathx"
	"repro/internal/sim"
)

func TestNewDetectorForPfa(t *testing.T) {
	d, err := NewDetectorForPfa(500, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.Pfa()-0.05) > 1e-9 {
		t.Errorf("designed Pfa = %v, want 0.05", d.Pfa())
	}
	if _, err := NewDetectorForPfa(0, 0.05); err == nil {
		t.Error("zero samples should fail")
	}
	if _, err := NewDetectorForPfa(100, 0); err == nil {
		t.Error("Pfa=0 should fail")
	}
	if _, err := NewDetectorForPfa(100, 1); err == nil {
		t.Error("Pfa=1 should fail")
	}
}

func TestDetectorOperatingPoint(t *testing.T) {
	d, err := NewDetectorForPfa(400, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	rng := mathx.NewRand(91)
	const trials = 20000
	fa, det := 0, 0
	const snr = 0.2 // -7 dB per sample
	for i := 0; i < trials; i++ {
		if hit, _ := d.Sense(rng, false, 0); hit {
			fa++
		}
		if hit, _ := d.Sense(rng, true, snr); hit {
			det++
		}
	}
	gotPfa := float64(fa) / trials
	gotPd := float64(det) / trials
	if math.Abs(gotPfa-0.05) > 0.012 {
		t.Errorf("measured Pfa = %v, want ~0.05", gotPfa)
	}
	wantPd := d.Pd(snr)
	if math.Abs(gotPd-wantPd) > 0.05 {
		t.Errorf("measured Pd = %v vs theory %v", gotPd, wantPd)
	}
	if wantPd < 0.5 {
		t.Errorf("operating point too weak to be a useful test: Pd = %v", wantPd)
	}
}

func TestPdMonotonicity(t *testing.T) {
	d, _ := NewDetectorForPfa(300, 0.01)
	prev := d.Pd(0)
	for snr := 0.01; snr < 2; snr *= 2 {
		cur := d.Pd(snr)
		if cur < prev {
			t.Errorf("Pd not increasing at snr=%v", snr)
		}
		prev = cur
	}
	// Negative SNR clamps to the noise-only point.
	if d.Pd(-1) != d.Pd(0) {
		t.Error("negative SNR should clamp")
	}
	// Longer windows detect better at fixed Pfa.
	short, _ := NewDetectorForPfa(100, 0.05)
	long, _ := NewDetectorForPfa(1000, 0.05)
	if long.Pd(0.1) <= short.Pd(0.1) {
		t.Errorf("longer window should raise Pd: %v vs %v", long.Pd(0.1), short.Pd(0.1))
	}
}

func TestFuse(t *testing.T) {
	votes := []bool{true, false, false}
	if got, _ := Fuse(FusionOR, votes); !got {
		t.Error("OR should fire")
	}
	if got, _ := Fuse(FusionAND, votes); got {
		t.Error("AND should not fire")
	}
	if got, _ := Fuse(FusionMajority, votes); got {
		t.Error("majority 1/3 should not fire")
	}
	if got, _ := Fuse(FusionMajority, []bool{true, true, false}); !got {
		t.Error("majority 2/3 should fire")
	}
	if _, err := Fuse(FusionOR, nil); err == nil {
		t.Error("empty votes should fail")
	}
	if _, err := Fuse(FusionRule(9), votes); err == nil {
		t.Error("unknown rule should fail")
	}
}

func TestCooperativePd(t *testing.T) {
	// OR of 3 SUs at p=0.6: 1 - 0.4^3 = 0.936.
	if got, _ := CooperativePd(FusionOR, 3, 0.6); math.Abs(got-0.936) > 1e-12 {
		t.Errorf("OR = %v", got)
	}
	// AND: 0.6^3 = 0.216.
	if got, _ := CooperativePd(FusionAND, 3, 0.6); math.Abs(got-0.216) > 1e-12 {
		t.Errorf("AND = %v", got)
	}
	// Majority of 3 at 0.6: C(3,2)*0.36*0.4 + 0.216 = 0.648.
	if got, _ := CooperativePd(FusionMajority, 3, 0.6); math.Abs(got-0.648) > 1e-12 {
		t.Errorf("majority = %v", got)
	}
	// OR dominates single; AND is dominated.
	or, _ := CooperativePd(FusionOR, 4, 0.5)
	and, _ := CooperativePd(FusionAND, 4, 0.5)
	if !(or > 0.5 && and < 0.5) {
		t.Errorf("fusion ordering: OR %v, AND %v", or, and)
	}
	if _, err := CooperativePd(FusionOR, 0, 0.5); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := CooperativePd(FusionOR, 2, 1.5); err == nil {
		t.Error("p>1 should fail")
	}
	if _, err := CooperativePd(FusionRule(9), 2, 0.5); err == nil {
		t.Error("unknown rule should fail")
	}
}

func TestCooperativePdMatchesSimulation(t *testing.T) {
	d, _ := NewDetectorForPfa(300, 0.05)
	rng := mathx.NewRand(92)
	const snr, k, trials = 0.15, 3, 8000
	hits := 0
	for i := 0; i < trials; i++ {
		votes := make([]bool, k)
		for v := range votes {
			votes[v], _ = d.Sense(rng, true, snr)
		}
		if ok, _ := Fuse(FusionOR, votes); ok {
			hits++
		}
	}
	want, _ := CooperativePd(FusionOR, k, d.Pd(snr))
	got := float64(hits) / trials
	if math.Abs(got-want) > 0.05 {
		t.Errorf("cooperative Pd %v vs theory %v", got, want)
	}
}

func TestPUActivity(t *testing.T) {
	var eng sim.Engine
	rng := mathx.NewRand(93)
	a, err := NewPUActivity(&eng, rng, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a.Busy() {
		t.Error("should start idle")
	}
	eng.Run(20000)
	if a.Flips() < 1000 {
		t.Fatalf("only %d flips in 20000 s", a.Flips())
	}
	want := a.ExpectedDutyCycle() // 2/5
	if math.Abs(want-0.4) > 1e-12 {
		t.Fatalf("expected duty cycle = %v", want)
	}
	if got := a.DutyCycle(); math.Abs(got-want) > 0.03 {
		t.Errorf("duty cycle %v, want ~%v", got, want)
	}
	if _, err := NewPUActivity(&eng, rng, 0, 1); err == nil {
		t.Error("zero holding time should fail")
	}
}

func TestPUActivityZeroTime(t *testing.T) {
	var eng sim.Engine
	a, err := NewPUActivity(&eng, mathx.NewRand(1), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.DutyCycle() != 0 {
		t.Error("duty cycle before any time should be 0")
	}
}

func TestChannelSelector(t *testing.T) {
	var eng sim.Engine
	rng := mathx.NewRand(94)
	busyPU, _ := NewPUActivity(&eng, rng, 1e9, 1e-9) // essentially always busy
	idlePU, _ := NewPUActivity(&eng, rng, 1e-9, 1e9) // essentially always idle
	eng.Run(10)

	d, _ := NewDetectorForPfa(600, 0.01)
	sel := ChannelSelector{Detector: d, Sensors: 3, Rule: FusionOR}
	channels := []Channel{
		{Activity: busyPU, SNR: 0.5},
		{Activity: idlePU, SNR: 0.5},
	}
	// Across repeated scans, the busy channel (strong PU, OR fusion)
	// should essentially never be picked.
	pickedBusy, pickedIdle := 0, 0
	for i := 0; i < 200; i++ {
		idx, err := sel.Select(rng, channels)
		if err != nil {
			t.Fatal(err)
		}
		switch idx {
		case 0:
			pickedBusy++
		case 1:
			pickedIdle++
		}
	}
	if pickedBusy > 2 {
		t.Errorf("picked the busy channel %d times", pickedBusy)
	}
	if pickedIdle < 190 {
		t.Errorf("picked the idle channel only %d of 200", pickedIdle)
	}
	if _, err := sel.Select(rng, nil); err == nil {
		t.Error("no channels should fail")
	}
	bad := sel
	bad.Sensors = 0
	if _, err := bad.Select(rng, channels); err == nil {
		t.Error("zero sensors should fail")
	}
}
