// Package underlay implements Algorithm 2 and the Section 6.2 analysis:
// cooperative multi-hop data transport inside the secondary network —
// local broadcast in the transmit cluster, a long-haul mt-by-mr MIMO
// hop, local collection in the receive cluster — accounting the
// power-amplifier energy that must stay below the noise floor at the
// primary receiver.
package underlay

import (
	"fmt"
	"math"

	"repro/internal/energy"
	"repro/internal/units"
)

// Config describes one cooperative hop.
type Config struct {
	// Model is the energy model.
	Model *energy.Model
	// Mt and Mr are the cooperating transmitter/receiver counts.
	Mt, Mr int
	// IntraD is the intra-cluster distance d (largest member spacing).
	IntraD float64
	// LinkD is the long-haul hop length D.
	LinkD float64
	// BER is the end-to-end bit-error-rate target p_b.
	BER float64
}

// Validate rejects nonsensical configurations.
func (c Config) Validate() error {
	switch {
	case c.Model == nil:
		return fmt.Errorf("underlay: nil energy model")
	case c.Mt < 1 || c.Mr < 1:
		return fmt.Errorf("underlay: antenna counts %dx%d must be positive", c.Mt, c.Mr)
	case c.IntraD <= 0 && (c.Mt > 1 || c.Mr > 1):
		return fmt.Errorf("underlay: intra-cluster distance %g must be positive for cooperation", c.IntraD)
	case c.LinkD <= 0:
		return fmt.Errorf("underlay: link length %g must be positive", c.LinkD)
	case c.BER <= 0 || c.BER >= 1:
		return fmt.Errorf("underlay: BER %g outside (0, 1)", c.BER)
	}
	return nil
}

// HopReport itemises Algorithm 2's three steps for the chosen
// constellation size.
type HopReport struct {
	// B is the constellation that minimises the total PA energy.
	B int
	// LocalTxPA is e_PA^Lt: the PA energy of one intra-cluster broadcast.
	LocalTxPA units.JoulePerBit
	// MIMOTxPA is e_PA^MIMOt per transmitting node on the long-haul hop.
	MIMOTxPA units.JoulePerBit
	// TotalPA is the summed PA energy of all SU nodes for one bit through
	// the hop: step 1's broadcast (if mt > 1), step 2's mt simultaneous
	// transmissions, and step 3's mr-1 sequential local forwards
	// (if mr > 1).
	TotalPA units.JoulePerBit
	// PeakPA is max(e_PA^Lt, mt * e_PA^MIMOt): the largest PA energy
	// radiated at any single moment — Section 4's E_PA bound.
	PeakPA units.JoulePerBit
	// TotalEnergy adds the circuit costs of every node involved.
	TotalEnergy units.JoulePerBit
}

// Analyze runs Algorithm 2's accounting, choosing b to minimise the
// total PA energy (the underlay criterion of Section 6.2).
func Analyze(cfg Config) (HopReport, error) {
	if err := cfg.Validate(); err != nil {
		return HopReport{}, err
	}
	best := HopReport{B: -1, TotalPA: units.JoulePerBit(math.Inf(1))}
	var lastErr error
	for b := 1; b <= cfg.Model.P.BMax; b++ {
		r, err := analyzeAtB(cfg, b)
		if err != nil {
			lastErr = err
			continue
		}
		if r.TotalPA < best.TotalPA {
			best = r
		}
	}
	if best.B < 0 {
		return HopReport{}, fmt.Errorf("underlay: no feasible constellation: %w", lastErr)
	}
	return best, nil
}

// analyzeAtB evaluates one constellation choice.
func analyzeAtB(cfg Config, b int) (HopReport, error) {
	m := cfg.Model
	r := HopReport{B: b}

	mimoTx, err := m.MIMOTx(cfg.BER, b, cfg.Mt, cfg.Mr, cfg.LinkD)
	if err != nil {
		return r, err
	}
	r.MIMOTxPA = mimoTx.PA

	var localTx energy.Cost
	if cfg.Mt > 1 || cfg.Mr > 1 {
		localTx, err = m.LocalTx(cfg.BER, b, cfg.IntraD)
		if err != nil {
			return r, err
		}
		r.LocalTxPA = localTx.PA
	}

	// Step 2: all mt nodes radiate simultaneously.
	stepTwoPA := units.JoulePerBit(float64(cfg.Mt)) * mimoTx.PA
	r.TotalPA = stepTwoPA
	r.TotalEnergy = units.JoulePerBit(float64(cfg.Mt))*mimoTx.Total() +
		units.JoulePerBit(float64(cfg.Mr))*mustTotal(m.MIMORx(b))

	// Step 1: the head broadcasts once inside the transmit cluster.
	if cfg.Mt > 1 {
		r.TotalPA += localTx.PA
		r.TotalEnergy += localTx.Total() +
			units.JoulePerBit(float64(cfg.Mt-1))*mustTotal(m.LocalRx(b))
	}
	// Step 3: mr-1 members forward to the head in turn.
	if cfg.Mr > 1 {
		r.TotalPA += units.JoulePerBit(float64(cfg.Mr-1)) * localTx.PA
		r.TotalEnergy += units.JoulePerBit(float64(cfg.Mr-1))*localTx.Total() +
			units.JoulePerBit(float64(cfg.Mr-1))*mustTotal(m.LocalRx(b))
	}

	// Peak: local transmissions are sequential; the long-haul step fires
	// mt amplifiers at once.
	r.PeakPA = localTx.PA
	if stepTwoPA > r.PeakPA {
		r.PeakPA = stepTwoPA
	}
	return r, nil
}

func mustTotal(c energy.Cost, err error) units.JoulePerBit {
	if err != nil {
		// analyzeAtB validated (p, b) before any call here; a failure is
		// a programming error, not an input error.
		panic(err)
	}
	return c.Total()
}

// NoiseFloorMargin operationalises the paper's underlay constraint. The
// paper compares the cooperative PA energy against the no-cooperation
// SISO system, which it declares "the model for primary users": if the
// SUs radiate orders of magnitude less than a primary-grade transmitter
// would over the same hop, their spectral density at the primary
// receiver sits correspondingly far under the floor the PU link was
// budgeted for ("the difference of magnitude is 2 to 4 orders",
// Section 6.2). The returned ratio is the cooperative hop's total PA
// energy relative to the SISO reference at the same distance and BER;
// values well below 1 satisfy the constraint, and the paper's claim is
// ratio in [1e-4, 1e-2].
func NoiseFloorMargin(cfg Config, report HopReport) (float64, error) {
	ref := cfg
	ref.Mt, ref.Mr = 1, 1
	siso, err := Analyze(ref)
	if err != nil {
		return 0, fmt.Errorf("underlay: SISO reference: %w", err)
	}
	if siso.TotalPA == 0 {
		return 0, fmt.Errorf("underlay: SISO reference has zero PA energy")
	}
	return float64(report.TotalPA) / float64(siso.TotalPA), nil
}

// SweepResult is one (mt, mr) series point for Figure 7.
type SweepResult struct {
	Mt, Mr int
	LinkD  float64
	Report HopReport
}

// Sweep evaluates the hop over a range of link lengths for a fixed
// antenna pair — one curve of Figure 7.
func Sweep(model *energy.Model, mt, mr int, intraD float64, ber float64, dLo, dHi, step float64) ([]SweepResult, error) {
	if step <= 0 || dHi < dLo {
		return nil, fmt.Errorf("underlay: bad sweep [%g, %g] step %g", dLo, dHi, step)
	}
	var out []SweepResult
	for d := dLo; d <= dHi+1e-9; d += step {
		r, err := Analyze(Config{
			Model: model, Mt: mt, Mr: mr,
			IntraD: intraD, LinkD: d, BER: ber,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, SweepResult{Mt: mt, Mr: mr, LinkD: d, Report: r})
	}
	return out, nil
}
