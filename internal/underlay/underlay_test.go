package underlay

import (
	"math"
	"testing"

	"repro/internal/ebtable"
	"repro/internal/energy"
	"repro/internal/units"
)

func model(t *testing.T) *energy.Model {
	t.Helper()
	m, err := energy.New(energy.Paper(40e3), ebtable.Analytic{})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func baseCfg(t *testing.T, mt, mr int) Config {
	return Config{
		Model: model(t), Mt: mt, Mr: mr,
		IntraD: 1, LinkD: 200, BER: 0.001,
	}
}

func TestConfigValidate(t *testing.T) {
	good := baseCfg(t, 2, 3)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*Config){
		func(c *Config) { c.Model = nil },
		func(c *Config) { c.Mt = 0 },
		func(c *Config) { c.Mr = -1 },
		func(c *Config) { c.IntraD = 0 },
		func(c *Config) { c.LinkD = 0 },
		func(c *Config) { c.BER = 0 },
		func(c *Config) { c.BER = 1 },
	}
	for i, mutate := range cases {
		c := baseCfg(t, 2, 3)
		mutate(&c)
		if c.Validate() == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
	// SISO with zero intra distance is fine: no local steps exist.
	siso := baseCfg(t, 1, 1)
	siso.IntraD = 0
	if err := siso.Validate(); err != nil {
		t.Errorf("SISO with d=0 should validate: %v", err)
	}
}

func TestAnalyzeSISOBaseline(t *testing.T) {
	r, err := Analyze(baseCfg(t, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	// No local steps: total PA is exactly the single long-haul PA.
	if r.TotalPA != r.MIMOTxPA {
		t.Errorf("SISO TotalPA %v != MIMOTxPA %v", r.TotalPA, r.MIMOTxPA)
	}
	if r.LocalTxPA != 0 {
		t.Errorf("SISO should have no local PA, got %v", r.LocalTxPA)
	}
	if r.PeakPA != r.TotalPA {
		t.Errorf("SISO peak %v != total %v", r.PeakPA, r.TotalPA)
	}
}

// TestFigure7Headline reproduces Section 6.2's main claim: the
// no-cooperative SISO system needs orders of magnitude more PA energy
// than cooperative MIMO at the same BER and distance. The paper reports
// 2-4 orders from its private ēb table; our exact Rayleigh/MRC closed
// form yields 1.2-2.3 orders with the same ordering (savings grow with
// diversity order) — see EXPERIMENTS.md.
func TestFigure7Headline(t *testing.T) {
	siso, err := Analyze(baseCfg(t, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	best := 0.0
	for _, pair := range [][2]int{{1, 2}, {2, 1}, {1, 3}, {2, 2}, {2, 3}, {3, 3}, {4, 4}} {
		coop, err := Analyze(baseCfg(t, pair[0], pair[1]))
		if err != nil {
			t.Fatal(err)
		}
		ratio := float64(siso.TotalPA) / float64(coop.TotalPA)
		if ratio < 8 || ratio > 1e5 {
			t.Errorf("%dx%d: SISO/coop PA ratio = %v, want orders of magnitude",
				pair[0], pair[1], ratio)
		}
		if ratio > best {
			best = ratio
		}
	}
	if best < 90 {
		t.Errorf("best SISO/coop ratio = %v, want to approach two orders", best)
	}
	// Savings grow with diversity order.
	r22, _ := Analyze(baseCfg(t, 2, 2))
	r44, _ := Analyze(baseCfg(t, 4, 4))
	if r44.TotalPA >= r22.TotalPA {
		t.Errorf("4x4 (%v) should beat 2x2 (%v)", r44.TotalPA, r22.TotalPA)
	}
}

// TestReceiveSideCheaperThanTransmitSide checks the Figure 7 lower-plot
// ordering: configurations with more receivers than transmitters (1x2,
// 1x3, 2x3) need less total PA energy than their transposes (2x1, 3x1,
// 3x2) because long-haul transmission dominates.
func TestReceiveSideCheaperThanTransmitSide(t *testing.T) {
	for _, pair := range [][2]int{{1, 2}, {1, 3}, {2, 3}} {
		rxHeavy, err := Analyze(baseCfg(t, pair[0], pair[1]))
		if err != nil {
			t.Fatal(err)
		}
		txHeavy, err := Analyze(baseCfg(t, pair[1], pair[0]))
		if err != nil {
			t.Fatal(err)
		}
		if rxHeavy.TotalPA >= txHeavy.TotalPA {
			t.Errorf("%dx%d PA (%v) should be below %dx%d (%v)",
				pair[0], pair[1], rxHeavy.TotalPA, pair[1], pair[0], txHeavy.TotalPA)
		}
	}
}

func TestPeakPA(t *testing.T) {
	r, err := Analyze(baseCfg(t, 3, 2))
	if err != nil {
		t.Fatal(err)
	}
	wantPeak := units.JoulePerBit(3) * r.MIMOTxPA
	if r.LocalTxPA > wantPeak {
		wantPeak = r.LocalTxPA
	}
	if r.PeakPA != wantPeak {
		t.Errorf("peak = %v, want max(local, mt*mimo) = %v", r.PeakPA, wantPeak)
	}
	if r.PeakPA > r.TotalPA {
		t.Errorf("peak %v cannot exceed total %v", r.PeakPA, r.TotalPA)
	}
}

func TestTotalPAAccounting(t *testing.T) {
	cfg := baseCfg(t, 2, 3)
	r, err := Analyze(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// total = local bcast + 2 long-haul + (3-1) local forwards.
	want := r.LocalTxPA + 2*r.MIMOTxPA + 2*r.LocalTxPA
	if math.Abs(float64(r.TotalPA-want)) > 1e-18*math.Abs(float64(want)) {
		t.Errorf("TotalPA = %v, want %v", r.TotalPA, want)
	}
	if r.TotalEnergy <= r.TotalPA {
		t.Errorf("TotalEnergy %v should exceed TotalPA %v (circuit energy)", r.TotalEnergy, r.TotalPA)
	}
}

func TestIntraDistanceBarelyMatters(t *testing.T) {
	// Section 6.2: "the value of d doesn't give any big impact" — local
	// PA energy is orders below the long-haul PA at hundreds of metres.
	near := baseCfg(t, 2, 2)
	near.IntraD = 1
	far := baseCfg(t, 2, 2)
	far.IntraD = 16
	a, err := Analyze(near)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Analyze(far)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(float64(b.TotalPA-a.TotalPA)) / float64(a.TotalPA); rel > 0.25 {
		t.Errorf("d=1 -> d=16 changed total PA by %.0f%%, should be minor", rel*100)
	}
}

// TestNoiseFloorConstraint verifies the underlay guarantee as the paper
// evaluates it: every cooperative configuration radiates orders of
// magnitude less PA energy than the SISO primary reference, so its
// density at the primary receiver falls correspondingly below the floor
// the PU link is budgeted for.
func TestNoiseFloorConstraint(t *testing.T) {
	for mt := 1; mt <= 4; mt++ {
		for mr := 1; mr <= 4; mr++ {
			if mt == 1 && mr == 1 {
				continue // the SISO row models the primary itself
			}
			cfg := baseCfg(t, mt, mr)
			r, err := Analyze(cfg)
			if err != nil {
				t.Fatal(err)
			}
			margin, err := NoiseFloorMargin(cfg, r)
			if err != nil {
				t.Fatal(err)
			}
			// Every cooperative mode is at least ~an order below SISO;
			// high-diversity modes approach two orders (the paper's
			// private table claims 2-4 — same direction, steeper).
			if margin >= 0.12 {
				t.Errorf("%dx%d: margin %.3g, want < 0.12", mt, mr, margin)
			}
			if mr >= mt && mt*mr >= 6 && margin >= 0.012 {
				t.Errorf("%dx%d: high-diversity margin %.3g, want < 0.012", mt, mr, margin)
			}
			if margin < 1e-6 {
				t.Errorf("%dx%d: margin %.3g suspiciously small", mt, mr, margin)
			}
		}
	}
}

func TestSweepShape(t *testing.T) {
	m := model(t)
	rs, err := Sweep(m, 2, 3, 1, 0.001, 100, 300, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 5 {
		t.Fatalf("%d points", len(rs))
	}
	for i := 1; i < len(rs); i++ {
		if rs[i].Report.TotalPA <= rs[i-1].Report.TotalPA {
			t.Errorf("PA energy should grow with distance at D=%v", rs[i].LinkD)
		}
	}
	if _, err := Sweep(m, 2, 3, 1, 0.001, 300, 100, 50); err == nil {
		t.Error("inverted sweep should fail")
	}
	if _, err := Sweep(m, 2, 3, 1, 0.001, 100, 300, 0); err == nil {
		t.Error("zero step should fail")
	}
}

func TestOptimalBIsRecorded(t *testing.T) {
	r, err := Analyze(baseCfg(t, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if r.B < 1 || r.B > 16 {
		t.Errorf("B = %d", r.B)
	}
	// Exhaustive cross-check: no b beats the chosen one on total PA.
	for b := 1; b <= 16; b++ {
		alt, err := analyzeAtB(baseCfg(t, 2, 2), b)
		if err != nil {
			continue
		}
		if alt.TotalPA < r.TotalPA {
			t.Errorf("b=%d yields %v, below declared optimum %v (b=%d)",
				b, alt.TotalPA, r.TotalPA, r.B)
		}
	}
}
