package multihop

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/mathx"
)

func route(snrDB float64, pairs ...[2]int) Config {
	hops := make([]Hop, len(pairs))
	for i, p := range pairs {
		hops[i] = Hop{Mt: p[0], Mr: p[1], SNRPerBit: math.Pow(10, snrDB/10)}
	}
	return Config{Hops: hops, B: 1, Bits: 120000, Seed: 5}
}

func TestValidate(t *testing.T) {
	if err := route(10, [2]int{2, 2}).Validate(); err != nil {
		t.Fatal(err)
	}
	if (Config{}).Validate() == nil {
		t.Error("empty route should fail")
	}
	bad := route(10, [2]int{2, 2})
	bad.Bits = 0
	if bad.Validate() == nil {
		t.Error("zero bits should fail")
	}
	bad = route(10, [2]int{0, 2})
	if bad.Validate() == nil {
		t.Error("invalid hop should fail")
	}
	bad = route(0, [2]int{2, 2})
	bad.Hops[0].SNRPerBit = 0
	if bad.Validate() == nil {
		t.Error("zero SNR should fail")
	}
}

// TestErrorsAccumulateAdditively: in the small-BER regime the
// end-to-end error rate approaches the sum of per-hop rates.
func TestErrorsAccumulateAdditively(t *testing.T) {
	cfg := route(11, [2]int{2, 2}, [2]int{2, 2}, [2]int{2, 2})
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, p := range r.PerHopBER {
		sum += p
	}
	if sum == 0 {
		t.Fatal("per-hop BERs all zero; raise the noise")
	}
	if math.Abs(r.EndToEndBER-sum) > 0.25*sum+2e-4 {
		t.Errorf("end-to-end %v vs per-hop sum %v", r.EndToEndBER, sum)
	}
	if math.Abs(r.EndToEndBER-r.PredictedBER) > 0.35*r.PredictedBER+3e-4 {
		t.Errorf("end-to-end %v vs closed-form sum %v", r.EndToEndBER, r.PredictedBER)
	}
}

// TestMoreHopsMoreErrors: every extra hop costs errors.
func TestMoreHopsMoreErrors(t *testing.T) {
	one, err := Run(route(9, [2]int{2, 2}))
	if err != nil {
		t.Fatal(err)
	}
	three, err := Run(route(9, [2]int{2, 2}, [2]int{2, 2}, [2]int{2, 2}))
	if err != nil {
		t.Fatal(err)
	}
	if three.EndToEndBER <= one.EndToEndBER {
		t.Errorf("3 hops (%v) should err more than 1 (%v)", three.EndToEndBER, one.EndToEndBER)
	}
}

// TestCooperationBeatsSISORoute: the route-level version of the paper's
// claim — cooperative clusters deliver far cleaner end-to-end data than
// single-node relaying at the same per-hop SNR.
func TestCooperationBeatsSISORoute(t *testing.T) {
	siso, err := Run(route(8, [2]int{1, 1}, [2]int{1, 1}, [2]int{1, 1}))
	if err != nil {
		t.Fatal(err)
	}
	coop, err := Run(route(8, [2]int{2, 2}, [2]int{2, 2}, [2]int{2, 2}))
	if err != nil {
		t.Fatal(err)
	}
	if coop.EndToEndBER*4 > siso.EndToEndBER {
		t.Errorf("cooperative route %v should be far below SISO %v",
			coop.EndToEndBER, siso.EndToEndBER)
	}
}

func TestMixedClusterSizes(t *testing.T) {
	// Route through clusters of different sizes: 3 -> 2 -> 4 nodes.
	r, err := Run(route(10, [2]int{3, 2}, [2]int{2, 4}, [2]int{4, 1}))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.PerHopBER) != 3 {
		t.Fatalf("hops = %d", len(r.PerHopBER))
	}
	if r.Bits%6 != 0 {
		t.Errorf("bit count %d not block-aligned", r.Bits)
	}
}

func TestBitsRoundUp(t *testing.T) {
	cfg := route(10, [2]int{2, 2})
	cfg.Bits = 7 // not a multiple of any block
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Bits < 7 || r.Bits%6 != 0 {
		t.Errorf("rounded bits = %d", r.Bits)
	}
}

func TestDeterminism(t *testing.T) {
	cfg := route(10, [2]int{2, 2}, [2]int{2, 1})
	cfg.Bits = 30000
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.EndToEndBER != b.EndToEndBER {
		t.Errorf("same seed diverged: %v vs %v", a.EndToEndBER, b.EndToEndBER)
	}
}

// TestScalarMatchesTransport: the scalar oracle route and the batched
// transport route agree bit for bit per seed — same channel streams,
// same detector, different inner engine.
func TestScalarMatchesTransport(t *testing.T) {
	ws := NewWorkspace()
	cfg := route(6, [2]int{2, 2}, [2]int{1, 2})
	cfg.Bits = 600
	for seed := int64(1); seed <= 20; seed++ {
		cfg.Seed = seed
		a, err := RunWith(ws, cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := RunScalarWith(ws, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if a.EndToEndBER != b.EndToEndBER {
			t.Fatalf("seed %d: transport BER %g != scalar BER %g", seed, a.EndToEndBER, b.EndToEndBER)
		}
		for h := range a.PerHopBER {
			if a.PerHopBER[h] != b.PerHopBER[h] {
				t.Fatalf("seed %d hop %d: %g != %g", seed, h, a.PerHopBER[h], b.PerHopBER[h])
			}
		}
	}
}

// TestBatchMatchesSequential is the SoA-tier contract: RunBatchWith
// over n trials folds to exactly the statistics of n sequential RunWith
// calls drawing per-trial seeds from the same stream.
func TestBatchMatchesSequential(t *testing.T) {
	cfg := route(8, [2]int{2, 2}, [2]int{2, 1}, [2]int{1, 1})
	cfg.Bits = 240
	const n = 50
	const seed = 314159

	wsA := NewWorkspace()
	rng := rand.New(rand.NewSource(seed))
	batch, err := RunBatchWith(wsA, cfg, rng, n)
	if err != nil {
		t.Fatal(err)
	}

	wsB := NewWorkspace()
	rngB := rand.New(rand.NewSource(seed))
	var want mathx.Running
	for i := 0; i < n; i++ {
		c := cfg
		c.Seed = rngB.Int63()
		res, err := RunWith(wsB, c)
		if err != nil {
			t.Fatal(err)
		}
		want.Add(res.EndToEndBER)
	}
	if batch.Snapshot() != want.Snapshot() {
		t.Fatalf("batch fold %+v != sequential fold %+v", batch.Snapshot(), want.Snapshot())
	}
}

// TestBatchValidates: a bad route fails before any trial runs, and a
// zero batch is an empty fold.
func TestBatchValidates(t *testing.T) {
	ws := NewWorkspace()
	bad := Config{}
	if _, err := RunBatchWith(ws, bad, rand.New(rand.NewSource(1)), 5); err == nil {
		t.Fatal("invalid route accepted")
	}
	acc, err := RunBatchWith(ws, route(10, [2]int{2, 2}), rand.New(rand.NewSource(1)), 0)
	if err != nil {
		t.Fatal(err)
	}
	if acc.N() != 0 {
		t.Fatalf("zero-trial batch folded %d trials", acc.N())
	}
}
