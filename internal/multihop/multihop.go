// Package multihop chains symbol-level cooperative hops (internal/coop)
// along a CoMIMONet backbone route: "the data transmitted from the
// source node to the final destination node usually takes multiple
// hops" (Section 2.2). Each hop decodes at the receive cluster's head
// and re-encodes for the next hop, so errors accumulate hop by hop —
// approximately additively while per-hop BERs are small.
package multihop

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/coop"
	"repro/internal/mathx"
)

// Hop describes one backbone hop.
type Hop struct {
	// Mt and Mr are the cooperating node counts of the transmit and
	// receive clusters.
	Mt, Mr int
	// SNRPerBit is the hop's long-haul mean per-bit SNR (linear).
	SNRPerBit float64
}

// Config describes a route transport.
type Config struct {
	// Hops in path order.
	Hops []Hop
	// B is the constellation size used on every hop.
	B int
	// LocalSNRPerBit is the intra-cluster SNR (0 = ideal).
	LocalSNRPerBit float64
	// Bits is the payload size; rounded up to whole blocks per hop.
	Bits int
	// Seed drives the run.
	Seed int64
}

// Validate rejects unusable routes.
func (c Config) Validate() error {
	if len(c.Hops) == 0 {
		return fmt.Errorf("multihop: empty route")
	}
	if c.Bits < 1 {
		return fmt.Errorf("multihop: bit count %d must be positive", c.Bits)
	}
	for i, h := range c.Hops {
		hopCfg := coop.Config{
			Mt: h.Mt, Mr: h.Mr, B: c.B,
			SNRPerBit: h.SNRPerBit, Bits: c.Bits, Seed: 1,
		}
		if err := hopCfg.Validate(); err != nil {
			return fmt.Errorf("multihop: hop %d: %w", i, err)
		}
	}
	return nil
}

// Result reports a route transport.
type Result struct {
	// EndToEndBER compares delivered bits against the source.
	EndToEndBER float64
	// PerHopBER is each hop's own error rate (against its input).
	PerHopBER []float64
	// PredictedBER is the small-error approximation: the sum of each
	// hop's closed-form BER.
	PredictedBER float64
	// Bits transported.
	Bits int
}

// Workspace holds the reusable scratch state for one goroutine's route
// transports: a hop workspace plus the payload and ping-pong relay
// buffers, so repeated runs allocate only the returned per-hop slice.
// Not safe for concurrent use; keep one per worker.
type Workspace struct {
	rng    *mathx.ReusableRand
	hop    *coop.Workspace
	src    []byte
	pong   [2][]byte
	seeds  []int64
	perHop []float64
}

// NewWorkspace returns an empty workspace; buffers grow on first use.
func NewWorkspace() *Workspace {
	return &Workspace{rng: mathx.NewReusableRand(), hop: coop.NewWorkspace()}
}

var wsPool = sync.Pool{New: func() any { return NewWorkspace() }}

// GetWorkspace takes a workspace from the shared pool.
func GetWorkspace() *Workspace { return wsPool.Get().(*Workspace) }

// PutWorkspace returns a workspace to the shared pool.
func PutWorkspace(ws *Workspace) { wsPool.Put(ws) }

// Run transports a random payload along the route, using a pooled
// workspace.
func Run(cfg Config) (Result, error) {
	ws := GetWorkspace()
	defer PutWorkspace(ws)
	return RunWith(ws, cfg)
}

// RunWith is Run on a caller-owned workspace. Hop i's decoded bits feed
// hop i+1 through two ping-pong buffers, so the whole route reuses the
// workspace's scratch while consuming exactly the rng streams a fresh
// run would. Each hop crosses through coop's batched SoA engine.
func RunWith(ws *Workspace, cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	return runRoute(ws, cfg, coop.TransportInto, make([]float64, len(cfg.Hops)))
}

// RunScalarWith is RunWith with every hop crossed through coop's
// per-block scalar transport instead of the batched engine. It is the
// oracle the batch-vs-scalar bit-identity tests (and the
// multihop.ber.scalar kernel) pin RunWith against: both consume
// identical rng streams, so the results must match bit for bit.
func RunScalarWith(ws *Workspace, cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	return runRoute(ws, cfg, coop.TransportScalarInto, make([]float64, len(cfg.Hops)))
}

// RunBatchWith executes n Monte-Carlo trials of the route on a
// caller-owned workspace, drawing each trial's seed from rng exactly as
// the per-trial multihop.ber kernel does, and folds the per-trial
// end-to-end BERs into one running statistic. It is the chunk-level
// entry point the multihop.ber.batch kernel registers — bit-identical
// to n sequential RunWith calls with c.Seed = rng.Int63() per trial —
// and reuses a workspace-held per-hop buffer so the trial loop does not
// allocate.
func RunBatchWith(ws *Workspace, cfg Config, rng *rand.Rand, n int) (mathx.Running, error) {
	var acc mathx.Running
	if err := cfg.Validate(); err != nil {
		return acc, err
	}
	if cap(ws.perHop) < len(cfg.Hops) {
		ws.perHop = make([]float64, len(cfg.Hops))
	}
	perHop := ws.perHop[:len(cfg.Hops)]
	c := cfg
	for i := 0; i < n; i++ {
		c.Seed = rng.Int63()
		r, err := runRoute(ws, c, coop.TransportInto, perHop)
		if err != nil {
			return acc, err
		}
		acc.Add(r.EndToEndBER)
	}
	return acc, nil
}

// runRoute is the shared route engine: transport crosses one hop
// (batched or scalar), perHop receives the per-hop BERs and backs the
// returned Result.PerHopBER. The caller has validated cfg.
func runRoute(ws *Workspace, cfg Config, transport func(*coop.Workspace, coop.Config, []byte, []byte) (coop.Result, error), perHop []float64) (Result, error) {
	ws.rng.Reseed(cfg.Seed)
	rng := ws.rng.Rand
	if cap(ws.seeds) < len(cfg.Hops) {
		ws.seeds = make([]int64, len(cfg.Hops))
	}
	ws.seeds = ws.seeds[:len(cfg.Hops)]
	state := uint64(cfg.Seed)
	for i := range ws.seeds {
		ws.seeds[i] = int64(mathx.SplitMix64(&state))
	}

	// Block payloads may differ per hop (mt fixes the STBC); use a bit
	// count divisible by every hop's block size: blocks are at most
	// 3 symbols * 16 bits = 48 bits, so lcm <= 48*... simply round up to
	// a multiple of the product of distinct block sizes.
	bits := roundUpToBlocks(cfg)
	if cap(ws.src) < bits {
		ws.src = make([]byte, bits)
	}
	src := ws.src[:bits]
	for i := range src {
		src[i] = byte(rng.Intn(2))
	}

	res := Result{Bits: bits, PerHopBER: perHop}
	cur := src
	for i, h := range cfg.Hops {
		hopCfg := coop.Config{
			Mt: h.Mt, Mr: h.Mr, B: cfg.B,
			SNRPerBit:      h.SNRPerBit,
			LocalSNRPerBit: cfg.LocalSNRPerBit,
			Bits:           bits,
			Seed:           ws.seeds[i],
		}
		if cap(ws.pong[i%2]) < bits {
			ws.pong[i%2] = make([]byte, bits)
		}
		dst := ws.pong[i%2][:bits]
		hopRes, err := transport(ws.hop, hopCfg, cur, dst)
		if err != nil {
			return Result{}, fmt.Errorf("multihop: hop %d: %w", i, err)
		}
		res.PerHopBER[i] = hopRes.BER
		res.PredictedBER += coop.PredictBER(hopCfg)
		cur = dst
	}
	errs := 0
	for i := range src {
		if cur[i] != src[i] {
			errs++
		}
	}
	res.EndToEndBER = float64(errs) / float64(bits)
	return res, nil
}

// roundUpToBlocks returns the smallest bit count >= cfg.Bits divisible
// by every hop's STBC block payload. Block payloads are K*b with
// K in {1, 2, 3}, so 6*b always works as the common block unit.
func roundUpToBlocks(cfg Config) int {
	unit := 6 * cfg.B
	n := cfg.Bits
	if rem := n % unit; rem != 0 {
		n += unit - rem
	}
	return n
}
