package network

import (
	"testing"

	"repro/internal/mathx"
	"repro/internal/sim"
)

func newMedium(t *testing.T, seed int64, n int) *CSMAMedium {
	t.Helper()
	ids := make([]NodeID, n)
	for i := range ids {
		ids[i] = NodeID(i)
	}
	m, err := NewCSMAMedium(DefaultCSMA(), &sim.Engine{}, mathx.NewRand(seed), ids)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCSMAConfigValidation(t *testing.T) {
	bad := DefaultCSMA()
	bad.SlotTime = 0
	if _, err := NewCSMAMedium(bad, &sim.Engine{}, mathx.NewRand(1), nil); err == nil {
		t.Error("zero slot time should fail")
	}
	bad = DefaultCSMA()
	bad.CWMax = 1
	if _, err := NewCSMAMedium(bad, &sim.Engine{}, mathx.NewRand(1), nil); err == nil {
		t.Error("CWMax < CWMin should fail")
	}
}

func TestCSMASingleStationDeliversAll(t *testing.T) {
	m := newMedium(t, 1, 1)
	if err := m.Enqueue(0, 20, 1e-3); err != nil {
		t.Fatal(err)
	}
	st := m.Run(10)
	if st.Delivered != 20 {
		t.Errorf("delivered %d of 20", st.Delivered)
	}
	if st.Collisions != 0 {
		t.Errorf("a lone station collided %d times", st.Collisions)
	}
	if st.BusyTime < 0.019 || st.BusyTime > 0.021 {
		t.Errorf("busy time = %v, want ~0.02", st.BusyTime)
	}
}

func TestCSMAEnqueueUnknownStation(t *testing.T) {
	m := newMedium(t, 1, 2)
	if err := m.Enqueue(99, 1, 1e-3); err == nil {
		t.Error("unknown station should fail")
	}
}

func TestCSMAContentionDeliversAll(t *testing.T) {
	const stations, frames = 5, 10
	m := newMedium(t, 7, stations)
	for i := 0; i < stations; i++ {
		if err := m.Enqueue(NodeID(i), frames, 5e-4); err != nil {
			t.Fatal(err)
		}
	}
	st := m.Run(60)
	total := st.Delivered + st.Dropped
	if total != stations*frames {
		t.Errorf("accounted %d frames of %d (delivered %d, dropped %d)",
			total, stations*frames, st.Delivered, st.Dropped)
	}
	if st.Delivered < stations*frames*9/10 {
		t.Errorf("delivered only %d of %d", st.Delivered, stations*frames)
	}
}

func TestCSMACollisionsGrowWithLoad(t *testing.T) {
	run := func(n int) CSMAStats {
		m := newMedium(t, 11, n)
		for i := 0; i < n; i++ {
			m.Enqueue(NodeID(i), 20, 2e-4)
		}
		return m.Run(120)
	}
	light := run(2)
	heavy := run(10)
	if heavy.Collisions <= light.Collisions {
		t.Errorf("collisions should grow with contenders: %d (2 stn) vs %d (10 stn)",
			light.Collisions, heavy.Collisions)
	}
}

func TestCSMADeterminism(t *testing.T) {
	run := func() CSMAStats {
		m := newMedium(t, 42, 4)
		for i := 0; i < 4; i++ {
			m.Enqueue(NodeID(i), 8, 3e-4)
		}
		return m.Run(30)
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestCSMAMediumNeverDoubleBooked(t *testing.T) {
	// BusyTime can never exceed the simulated clock: the medium is a
	// single resource.
	m := newMedium(t, 3, 8)
	for i := 0; i < 8; i++ {
		m.Enqueue(NodeID(i), 12, 1e-3)
	}
	st := m.Run(50)
	if st.BusyTime > m.Engine.Now() {
		t.Errorf("busy %v exceeds elapsed %v", st.BusyTime, m.Engine.Now())
	}
}
