package network

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/geom"
)

// ClusterID identifies a cooperative MIMO node (a d-cluster).
type ClusterID int

// Cluster is a d-cluster: a set of SU nodes whose pairwise distances are
// at most d, acting together as one cooperative MIMO node. Members[0] is
// kept sorted by ID for determinism; Head is elected separately.
type Cluster struct {
	ID      ClusterID
	Members []NodeID
	Head    NodeID
}

// Size returns the antenna count the cluster can contribute.
func (c *Cluster) Size() int { return len(c.Members) }

// Clustering is a node-disjoint division of V into d-clusters.
type Clustering struct {
	Graph *Graph
	// D is the clustering diameter bound d (d <= r).
	D        float64
	Clusters []Cluster
	byNode   map[NodeID]ClusterID
}

// DCluster greedily partitions the deployment into d-clusters: nodes are
// scanned in ID order; each unassigned node seeds a cluster and absorbs
// every unassigned node within d of all current members (keeping the
// diameter invariant by construction). Greedy seeding is the baseline the
// clustering ablation benchmark compares against grid seeding.
func DCluster(g *Graph, d float64) (*Clustering, error) {
	if d <= 0 || d > g.Range {
		return nil, fmt.Errorf("network: cluster diameter %g outside (0, r=%g]", d, g.Range)
	}
	nodes := append([]Node(nil), g.Deployment.Nodes...)
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })

	assigned := make(map[NodeID]bool, len(nodes))
	cl := &Clustering{Graph: g, D: d, byNode: make(map[NodeID]ClusterID, len(nodes))}
	for _, seed := range nodes {
		if assigned[seed.ID] {
			continue
		}
		members := []Node{seed}
		assigned[seed.ID] = true
		for _, cand := range nodes {
			if assigned[cand.ID] {
				continue
			}
			ok := true
			for _, m := range members {
				if cand.Pos.Dist(m.Pos) > d {
					ok = false
					break
				}
			}
			if ok {
				members = append(members, cand)
				assigned[cand.ID] = true
			}
		}
		id := ClusterID(len(cl.Clusters))
		ids := make([]NodeID, len(members))
		for i, m := range members {
			ids[i] = m.ID
			cl.byNode[m.ID] = id
		}
		cl.Clusters = append(cl.Clusters, Cluster{ID: id, Members: ids})
	}
	cl.ElectHeads()
	return cl, nil
}

// ClusterOf returns the cluster containing the node.
func (cl *Clustering) ClusterOf(id NodeID) *Cluster {
	cid, ok := cl.byNode[id]
	if !ok {
		return nil
	}
	return &cl.Clusters[cid]
}

// ElectHeads picks each cluster's head: the member with the highest
// battery, ties broken by lowest ID. Re-running after battery drain
// implements the paper's reconfiguration.
func (cl *Clustering) ElectHeads() {
	for i := range cl.Clusters {
		c := &cl.Clusters[i]
		best := c.Members[0]
		bestJ := cl.Graph.Deployment.ByID(best).BatteryJ
		for _, id := range c.Members[1:] {
			j := cl.Graph.Deployment.ByID(id).BatteryJ
			if j > bestJ || (j == bestJ && id < best) {
				best, bestJ = id, j
			}
		}
		c.Head = best
	}
}

// MemberPositions returns the positions of the cluster's members.
func (cl *Clustering) MemberPositions(c *Cluster) []geom.Point {
	ps := make([]geom.Point, len(c.Members))
	for i, id := range c.Members {
		ps[i] = cl.Graph.Deployment.ByID(id).Pos
	}
	return ps
}

// Centroid returns the cluster's mean position.
func (cl *Clustering) Centroid(c *Cluster) geom.Point {
	return geom.Centroid(cl.MemberPositions(c))
}

// Diameter returns the largest pairwise member distance.
func (cl *Clustering) Diameter(c *Cluster) float64 {
	return geom.Diameter(cl.MemberPositions(c))
}

// Validate checks the clustering invariants: node-disjoint cover of V,
// every diameter at most d, and every head a member of its cluster.
func (cl *Clustering) Validate() error {
	seen := make(map[NodeID]bool)
	for i := range cl.Clusters {
		c := &cl.Clusters[i]
		if len(c.Members) == 0 {
			return fmt.Errorf("network: cluster %d empty", c.ID)
		}
		headOK := false
		for _, id := range c.Members {
			if seen[id] {
				return fmt.Errorf("network: node %d in two clusters", id)
			}
			seen[id] = true
			if id == c.Head {
				headOK = true
			}
		}
		if !headOK {
			return fmt.Errorf("network: head %d not a member of cluster %d", c.Head, c.ID)
		}
		if dm := cl.Diameter(c); dm > cl.D+1e-9 {
			return fmt.Errorf("network: cluster %d diameter %g exceeds d=%g", c.ID, dm, cl.D)
		}
	}
	if len(seen) != len(cl.Graph.Deployment.Nodes) {
		return fmt.Errorf("network: clustering covers %d of %d nodes", len(seen), len(cl.Graph.Deployment.Nodes))
	}
	return nil
}

// DClusterGrid partitions by spatial hashing: nodes fall into square
// cells of side d/sqrt(2), so any two nodes sharing a cell are at most d
// apart and every non-empty cell is a valid d-cluster. It is O(n) where
// the greedy DCluster is O(n^2) — the clustering ablation contrasts the
// two: grid seeding is faster but fragments clusters at cell borders.
func DClusterGrid(g *Graph, d float64) (*Clustering, error) {
	if d <= 0 || d > g.Range {
		return nil, fmt.Errorf("network: cluster diameter %g outside (0, r=%g]", d, g.Range)
	}
	cell := d / math.Sqrt2
	type cellKey struct{ X, Y int }
	buckets := make(map[cellKey][]NodeID)
	var order []cellKey
	nodes := append([]Node(nil), g.Deployment.Nodes...)
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })
	for _, n := range nodes {
		k := cellKey{int(math.Floor(n.Pos.X / cell)), int(math.Floor(n.Pos.Y / cell))}
		if len(buckets[k]) == 0 {
			order = append(order, k)
		}
		buckets[k] = append(buckets[k], n.ID)
	}
	cl := &Clustering{Graph: g, D: d, byNode: make(map[NodeID]ClusterID, len(nodes))}
	for _, k := range order {
		id := ClusterID(len(cl.Clusters))
		for _, nid := range buckets[k] {
			cl.byNode[nid] = id
		}
		cl.Clusters = append(cl.Clusters, Cluster{ID: id, Members: buckets[k]})
	}
	cl.ElectHeads()
	return cl, nil
}

// ClusterDistance returns the largest distance between a member of a and
// a member of b — the D that sizes the cooperative MIMO link between
// them (Section 2.1).
func (cl *Clustering) ClusterDistance(a, b *Cluster) float64 {
	max := 0.0
	for _, ia := range a.Members {
		pa := cl.Graph.Deployment.ByID(ia).Pos
		for _, ib := range b.Members {
			if d := pa.Dist(cl.Graph.Deployment.ByID(ib).Pos); d > max {
				max = d
			}
		}
	}
	return max
}
