package network

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/mathx"
	"repro/internal/units"
)

func TestNewDeploymentDuplicateID(t *testing.T) {
	_, err := NewDeployment([]Node{{ID: 1}, {ID: 1}})
	if err == nil {
		t.Error("duplicate IDs should fail")
	}
	d, err := NewDeployment([]Node{{ID: 1}, {ID: 2}})
	if err != nil || len(d.Nodes) != 2 {
		t.Errorf("valid deployment failed: %v", err)
	}
}

func TestRandomDeployment(t *testing.T) {
	rng := mathx.NewRand(81)
	d := RandomDeployment(rng, 50, 100, 200, 1, 5)
	if len(d.Nodes) != 50 {
		t.Fatalf("%d nodes", len(d.Nodes))
	}
	for _, n := range d.Nodes {
		if n.Pos.X < 0 || n.Pos.X > 100 || n.Pos.Y < 0 || n.Pos.Y > 200 {
			t.Fatalf("node outside field: %v", n.Pos)
		}
		if n.BatteryJ < 1 || n.BatteryJ > 5 {
			t.Fatalf("battery out of range: %v", n.BatteryJ)
		}
	}
	if d.ByID(49) == nil || d.ByID(50) != nil {
		t.Error("ByID lookup wrong")
	}
	if len(d.Positions()) != 50 {
		t.Error("Positions length")
	}
}

func TestGridDeployment(t *testing.T) {
	d := GridDeployment(3, 10, 2)
	if len(d.Nodes) != 9 {
		t.Fatalf("%d nodes", len(d.Nodes))
	}
	if d.Nodes[4].Pos != geom.Pt(10, 10) {
		t.Errorf("centre node at %v", d.Nodes[4].Pos)
	}
}

func TestGraphBasics(t *testing.T) {
	d := GridDeployment(3, 10, 1) // 3x3 grid, pitch 10
	g, err := NewGraph(d, 10.5)   // orthogonal neighbours only
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(0, 3) {
		t.Error("orthogonal neighbours should be edges")
	}
	if g.HasEdge(0, 4) {
		t.Error("diagonal (14.1 m) should not be an edge at r=10.5")
	}
	if g.Degree(4) != 4 {
		t.Errorf("centre degree = %d, want 4", g.Degree(4))
	}
	if g.Degree(0) != 2 {
		t.Errorf("corner degree = %d, want 2", g.Degree(0))
	}
	if !g.Connected() {
		t.Error("grid should be connected")
	}
	if _, err := NewGraph(d, 0); err == nil {
		t.Error("zero range should fail")
	}
}

func TestGraphComponents(t *testing.T) {
	nodes := []Node{
		{ID: 0, Pos: geom.Pt(0, 0)},
		{ID: 1, Pos: geom.Pt(1, 0)},
		{ID: 2, Pos: geom.Pt(100, 0)},
	}
	d, _ := NewDeployment(nodes)
	g, _ := NewGraph(d, 5)
	comps := g.Components()
	if len(comps) != 2 {
		t.Fatalf("%d components", len(comps))
	}
	if g.Connected() {
		t.Error("should be disconnected")
	}
}

func TestShortestPath(t *testing.T) {
	d := GridDeployment(3, 10, 1)
	g, _ := NewGraph(d, 10.5)
	p := g.ShortestPath(0, 8)
	if len(p) != 5 { // 4 hops across the grid
		t.Errorf("path %v, want 5 nodes", p)
	}
	if p[0] != 0 || p[len(p)-1] != 8 {
		t.Errorf("endpoints wrong: %v", p)
	}
	for i := 0; i+1 < len(p); i++ {
		if !g.HasEdge(p[i], p[i+1]) {
			t.Errorf("hop %d-%d not an edge", p[i], p[i+1])
		}
	}
	if p := g.ShortestPath(3, 3); len(p) != 1 || p[0] != 3 {
		t.Errorf("self path = %v", p)
	}
	// Unreachable.
	nodes := []Node{{ID: 0, Pos: geom.Pt(0, 0)}, {ID: 1, Pos: geom.Pt(100, 0)}}
	dd, _ := NewDeployment(nodes)
	gg, _ := NewGraph(dd, 1)
	if gg.ShortestPath(0, 1) != nil {
		t.Error("unreachable path should be nil")
	}
}

func TestDClusterInvariants(t *testing.T) {
	rng := mathx.NewRand(82)
	d := RandomDeployment(rng, 80, 100, 100, 1, 5)
	g, err := NewGraph(d, 20)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := DCluster(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Validate(); err != nil {
		t.Fatal(err)
	}
	// Every node belongs to exactly one cluster.
	for _, n := range d.Nodes {
		c := cl.ClusterOf(n.ID)
		if c == nil {
			t.Fatalf("node %d unclustered", n.ID)
		}
	}
	if cl.ClusterOf(NodeID(999)) != nil {
		t.Error("unknown node should have no cluster")
	}
}

func TestDClusterValidation(t *testing.T) {
	d := GridDeployment(2, 10, 1)
	g, _ := NewGraph(d, 15)
	if _, err := DCluster(g, 0); err == nil {
		t.Error("d=0 should fail")
	}
	if _, err := DCluster(g, 20); err == nil {
		t.Error("d>r should fail")
	}
}

func TestDClusterProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := mathx.NewRand(seed)
		n := 5 + rng.Intn(60)
		d := RandomDeployment(rng, n, 50, 50, 1, 2)
		g, err := NewGraph(d, 25)
		if err != nil {
			return false
		}
		cl, err := DCluster(g, 10)
		if err != nil {
			return false
		}
		return cl.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestHeadElection(t *testing.T) {
	nodes := []Node{
		{ID: 0, Pos: geom.Pt(0, 0), BatteryJ: 1},
		{ID: 1, Pos: geom.Pt(1, 0), BatteryJ: 5},
		{ID: 2, Pos: geom.Pt(0, 1), BatteryJ: 5},
	}
	d, _ := NewDeployment(nodes)
	g, _ := NewGraph(d, 10)
	cl, _ := DCluster(g, 5)
	if len(cl.Clusters) != 1 {
		t.Fatalf("%d clusters", len(cl.Clusters))
	}
	// Highest battery wins; tie broken by lowest ID (1 over 2).
	if cl.Clusters[0].Head != 1 {
		t.Errorf("head = %d, want 1", cl.Clusters[0].Head)
	}
	// Drain the head; re-election moves to node 2.
	d.ByID(1).BatteryJ = 0.5
	cl.ElectHeads()
	if cl.Clusters[0].Head != 2 {
		t.Errorf("re-elected head = %d, want 2", cl.Clusters[0].Head)
	}
}

func TestClassifyLink(t *testing.T) {
	cases := []struct {
		mt, mr int
		want   LinkKind
	}{
		{1, 1, SISOLink}, {2, 1, MISOLink}, {1, 3, SIMOLink}, {2, 2, MIMOLink},
	}
	for _, c := range cases {
		if got := ClassifyLink(c.mt, c.mr); got != c.want {
			t.Errorf("ClassifyLink(%d,%d) = %v", c.mt, c.mr, got)
		}
	}
}

func clusteredNet(t *testing.T) (*Clustering, *CoMIMONet) {
	t.Helper()
	// Three tight clusters on a line, 100 m apart.
	var nodes []Node
	id := NodeID(0)
	for c := 0; c < 3; c++ {
		for k := 0; k < 2+c; k++ { // sizes 2, 3, 4
			nodes = append(nodes, Node{
				ID:       id,
				Pos:      geom.Pt(float64(c)*100+float64(k), 0),
				BatteryJ: 1,
			})
			id++
		}
	}
	d, _ := NewDeployment(nodes)
	g, err := NewGraph(d, 10)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := DCluster(g, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(cl.Clusters) != 3 {
		t.Fatalf("expected 3 clusters, got %d", len(cl.Clusters))
	}
	net, err := BuildCoMIMONet(cl, 150)
	if err != nil {
		t.Fatal(err)
	}
	return cl, net
}

func TestCoMIMONetEdges(t *testing.T) {
	_, net := clusteredNet(t)
	// Adjacent clusters are ~100 m apart (edge), far pair ~200 m (none).
	if len(net.Edges) != 2 {
		t.Fatalf("%d edges, want 2", len(net.Edges))
	}
	e, ok := net.EdgeBetween(0, 1)
	if !ok {
		t.Fatal("missing edge 0-1")
	}
	if e.Kind != MIMOLink {
		t.Errorf("0-1 kind = %v (sizes 2 and 3)", e.Kind)
	}
	if e.D < 100 || e.D > 110 {
		t.Errorf("edge D = %v", e.D)
	}
	if _, ok := net.EdgeBetween(0, 2); ok {
		t.Error("0-2 should not be an edge")
	}
	if _, err := BuildCoMIMONet(net.Clustering, 0); err == nil {
		t.Error("zero link length should fail")
	}
}

func TestBackboneRoute(t *testing.T) {
	_, net := clusteredNet(t)
	r := net.Route(0, 2)
	if len(r) != 3 || r[0] != 0 || r[1] != 1 || r[2] != 2 {
		t.Errorf("route = %v, want [0 1 2]", r)
	}
	if r := net.Route(1, 1); len(r) != 1 {
		t.Errorf("self route = %v", r)
	}
	// Reverse direction.
	r = net.Route(2, 0)
	if len(r) != 3 || r[0] != 2 || r[2] != 0 {
		t.Errorf("reverse route = %v", r)
	}
}

func TestRouteDisconnected(t *testing.T) {
	nodes := []Node{
		{ID: 0, Pos: geom.Pt(0, 0), BatteryJ: 1},
		{ID: 1, Pos: geom.Pt(1000, 0), BatteryJ: 1},
	}
	d, _ := NewDeployment(nodes)
	g, _ := NewGraph(d, 10)
	cl, _ := DCluster(g, 5)
	net, _ := BuildCoMIMONet(cl, 100)
	if r := net.Route(0, 1); r != nil {
		t.Errorf("disconnected route = %v, want nil", r)
	}
}

type fixedCoster struct{ perHop float64 }

func (f fixedCoster) HopEnergy(mt, mr int, d, D float64) (units.JoulePerBit, error) {
	return units.JoulePerBit(f.perHop), nil
}

func TestRouteEnergy(t *testing.T) {
	_, net := clusteredNet(t)
	route := net.Route(0, 2)
	e, err := net.RouteEnergy(route, fixedCoster{perHop: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(e)-3) > 1e-12 {
		t.Errorf("route energy = %v, want 3 (2 hops)", e)
	}
	// A route with a non-edge hop errors.
	if _, err := net.RouteEnergy([]ClusterID{0, 2}, fixedCoster{1}); err == nil {
		t.Error("non-edge hop should fail")
	}
}

func TestDClusterGridInvariants(t *testing.T) {
	rng := mathx.NewRand(83)
	d := RandomDeployment(rng, 120, 150, 150, 1, 5)
	g, err := NewGraph(d, 30)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := DClusterGrid(g, 12)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := DClusterGrid(g, 0); err == nil {
		t.Error("d=0 should fail")
	}
	if _, err := DClusterGrid(g, 40); err == nil {
		t.Error("d>r should fail")
	}
}

func TestDClusterGridVsGreedy(t *testing.T) {
	// Both produce valid clusterings; the greedy pass typically merges
	// more aggressively (fewer or equal clusters) because it is not
	// constrained by cell borders.
	rng := mathx.NewRand(84)
	d := RandomDeployment(rng, 150, 120, 120, 1, 5)
	g, err := NewGraph(d, 30)
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := DCluster(g, 14)
	if err != nil {
		t.Fatal(err)
	}
	grid, err := DClusterGrid(g, 14)
	if err != nil {
		t.Fatal(err)
	}
	if err := greedy.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := grid.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(greedy.Clusters) > len(grid.Clusters) {
		t.Errorf("greedy produced %d clusters, grid %d; greedy should not fragment more",
			len(greedy.Clusters), len(grid.Clusters))
	}
}
