package network

import (
	"fmt"
	"math"
)

// LifetimeConfig drives the reconfiguration study: the paper makes the
// clusters and backbone "reconfigurable" precisely so the coordination
// burden (which falls on head nodes) rotates with remaining battery.
type LifetimeConfig struct {
	// HeadCostJ is the per-round energy a head node spends coordinating
	// and relaying for its cluster.
	HeadCostJ float64
	// MemberCostJ is the per-round cost of an ordinary member.
	MemberCostJ float64
	// Reconfigure re-elects heads by remaining battery every this many
	// rounds; 0 keeps the initial heads for the whole run (the paper's
	// reconfiguration turned off).
	Reconfigure int
	// MaxRounds bounds the simulation.
	MaxRounds int
}

// LifetimeResult summarises one run.
type LifetimeResult struct {
	// Rounds is how many full rounds completed before the first node
	// died (the standard first-death network lifetime).
	Rounds int
	// DeadNode is the first node to die, or -1 if none died within
	// MaxRounds.
	DeadNode NodeID
	// MinRemainingJ and MaxRemainingJ bound the surviving batteries.
	MinRemainingJ, MaxRemainingJ float64
	// Elections counts head re-elections performed.
	Elections int
}

// SimulateLifetime drains batteries round by round and reports the
// first-death lifetime. It mutates the deployment's battery levels; run
// it on a dedicated clustering.
func SimulateLifetime(cl *Clustering, cfg LifetimeConfig) (LifetimeResult, error) {
	if cfg.HeadCostJ <= 0 || cfg.MemberCostJ < 0 {
		return LifetimeResult{}, fmt.Errorf("network: costs must be positive (head) and non-negative (member)")
	}
	if cfg.HeadCostJ <= cfg.MemberCostJ {
		return LifetimeResult{}, fmt.Errorf("network: head cost %g must exceed member cost %g (it carries the burden)",
			cfg.HeadCostJ, cfg.MemberCostJ)
	}
	if cfg.MaxRounds < 1 {
		return LifetimeResult{}, fmt.Errorf("network: max rounds %d must be positive", cfg.MaxRounds)
	}
	res := LifetimeResult{DeadNode: -1}
	dep := cl.Graph.Deployment
	for round := 0; round < cfg.MaxRounds; round++ {
		if cfg.Reconfigure > 0 && round%cfg.Reconfigure == 0 && round > 0 {
			cl.ElectHeads()
			res.Elections++
		}
		// Drain this round.
		for i := range cl.Clusters {
			c := &cl.Clusters[i]
			for _, id := range c.Members {
				n := dep.ByID(id)
				if id == c.Head {
					n.BatteryJ -= cfg.HeadCostJ
				} else {
					n.BatteryJ -= cfg.MemberCostJ
				}
			}
		}
		// First death ends the lifetime.
		for i := range dep.Nodes {
			if dep.Nodes[i].BatteryJ <= 0 {
				res.Rounds = round
				res.DeadNode = dep.Nodes[i].ID
				res.MinRemainingJ, res.MaxRemainingJ = batteryBounds(dep)
				return res, nil
			}
		}
		res.Rounds = round + 1
	}
	res.MinRemainingJ, res.MaxRemainingJ = batteryBounds(dep)
	return res, nil
}

func batteryBounds(dep *Deployment) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, n := range dep.Nodes {
		if n.BatteryJ < lo {
			lo = n.BatteryJ
		}
		if n.BatteryJ > hi {
			hi = n.BatteryJ
		}
	}
	return lo, hi
}
