package network

import (
	"fmt"
	"sort"

	"repro/internal/units"
)

// LinkKind classifies a cooperative link by its antenna counts
// (Section 2.1).
type LinkKind string

// Link kinds.
const (
	SISOLink LinkKind = "SISO"
	MISOLink LinkKind = "MISO"
	SIMOLink LinkKind = "SIMO"
	MIMOLink LinkKind = "MIMO"
)

// ClassifyLink names the link an mt-by-mr pair forms.
func ClassifyLink(mt, mr int) LinkKind {
	switch {
	case mt == 1 && mr == 1:
		return SISOLink
	case mt > 1 && mr == 1:
		return MISOLink
	case mt == 1 && mr > 1:
		return SIMOLink
	default:
		return MIMOLink
	}
}

// MIMOEdge is one edge of G_MIMO: a cooperative link between clusters.
type MIMOEdge struct {
	A, B ClusterID
	// D is the largest member-to-member distance, sizing the link.
	D float64
	// Kind is the link class given the two cluster sizes.
	Kind LinkKind
}

// CoMIMONet is the cluster-level network G_MIMO = (V_MIMO, E_MIMO) plus
// the spanning-tree routing backbone over head nodes.
type CoMIMONet struct {
	Clustering *Clustering
	// MaxLinkD is the maximum cooperative-link length D.
	MaxLinkD float64
	Edges    []MIMOEdge
	adj      map[ClusterID][]int // cluster -> indices into Edges
	// parent encodes the spanning-tree backbone; parent[root] == root.
	parent map[ClusterID]ClusterID
	root   ClusterID
}

// BuildCoMIMONet assembles G_MIMO: clusters are vertices and an edge
// joins A and B when their largest member distance is at most maxLinkD
// (D >> d in the paper). The backbone is the minimum spanning tree over
// edge lengths (Kruskal), rooted at the lowest cluster ID.
func BuildCoMIMONet(cl *Clustering, maxLinkD float64) (*CoMIMONet, error) {
	if maxLinkD <= 0 {
		return nil, fmt.Errorf("network: max link length %g must be positive", maxLinkD)
	}
	net := &CoMIMONet{
		Clustering: cl,
		MaxLinkD:   maxLinkD,
		adj:        make(map[ClusterID][]int),
	}
	for i := range cl.Clusters {
		for j := i + 1; j < len(cl.Clusters); j++ {
			a, b := &cl.Clusters[i], &cl.Clusters[j]
			d := cl.ClusterDistance(a, b)
			if d <= maxLinkD {
				net.Edges = append(net.Edges, MIMOEdge{
					A: a.ID, B: b.ID, D: d,
					Kind: ClassifyLink(a.Size(), b.Size()),
				})
			}
		}
	}
	for idx, e := range net.Edges {
		net.adj[e.A] = append(net.adj[e.A], idx)
		net.adj[e.B] = append(net.adj[e.B], idx)
	}
	net.buildBackbone()
	return net, nil
}

// buildBackbone runs Kruskal over the MIMO edges and stores the tree as
// parent pointers from a BFS rooted at the lowest cluster ID of each
// component (a forest when G_MIMO is disconnected).
func (net *CoMIMONet) buildBackbone() {
	n := len(net.Clustering.Clusters)
	dsu := newDSU(n)
	order := make([]int, len(net.Edges))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(x, y int) bool {
		a, b := net.Edges[order[x]], net.Edges[order[y]]
		if a.D != b.D {
			return a.D < b.D
		}
		if a.A != b.A {
			return a.A < b.A
		}
		return a.B < b.B
	})
	tree := make(map[ClusterID][]ClusterID)
	for _, idx := range order {
		e := net.Edges[idx]
		if dsu.union(int(e.A), int(e.B)) {
			tree[e.A] = append(tree[e.A], e.B)
			tree[e.B] = append(tree[e.B], e.A)
		}
	}
	net.parent = make(map[ClusterID]ClusterID, n)
	visited := make(map[ClusterID]bool, n)
	for i := range net.Clustering.Clusters {
		id := net.Clustering.Clusters[i].ID
		if visited[id] {
			continue
		}
		if net.root == 0 && i == 0 {
			net.root = id
		}
		net.parent[id] = id
		visited[id] = true
		queue := []ClusterID{id}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, nb := range tree[cur] {
				if !visited[nb] {
					visited[nb] = true
					net.parent[nb] = cur
					queue = append(queue, nb)
				}
			}
		}
	}
}

// BackboneParent returns the cluster's parent on the routing tree
// (itself for a root).
func (net *CoMIMONet) BackboneParent(id ClusterID) ClusterID { return net.parent[id] }

// Route returns the cluster path from src to dst along the backbone
// tree, or nil when they sit in different components.
func (net *CoMIMONet) Route(src, dst ClusterID) []ClusterID {
	up := func(id ClusterID) []ClusterID {
		path := []ClusterID{id}
		for net.parent[id] != id {
			id = net.parent[id]
			path = append(path, id)
		}
		return path
	}
	a, b := up(src), up(dst)
	if a[len(a)-1] != b[len(b)-1] {
		return nil // different trees
	}
	// Trim the common suffix, keeping the meeting point once.
	for len(a) > 1 && len(b) > 1 && a[len(a)-2] == b[len(b)-2] {
		a = a[:len(a)-1]
		b = b[:len(b)-1]
	}
	for i := len(b) - 2; i >= 0; i-- {
		a = append(a, b[i])
	}
	return a
}

// EdgeBetween returns the G_MIMO edge joining a and b, if any.
func (net *CoMIMONet) EdgeBetween(a, b ClusterID) (MIMOEdge, bool) {
	for _, idx := range net.adj[a] {
		e := net.Edges[idx]
		if (e.A == a && e.B == b) || (e.A == b && e.B == a) {
			return e, true
		}
	}
	return MIMOEdge{}, false
}

// HopCoster evaluates the cooperative-hop energy of Section 2.2; the
// underlay package provides the concrete implementation over the energy
// model. It is an interface here so routing can be tested without the
// numeric stack.
type HopCoster interface {
	// HopEnergy returns the total per-bit energy for one cooperative hop
	// with mt transmit and mr receive nodes over link length D and
	// intra-cluster diameter d.
	HopEnergy(mt, mr int, d, D float64) (units.JoulePerBit, error)
}

// RouteEnergy sums HopEnergy along a backbone route. Each hop uses the
// full sizes of its endpoint clusters.
func (net *CoMIMONet) RouteEnergy(route []ClusterID, hc HopCoster) (units.JoulePerBit, error) {
	var total units.JoulePerBit
	for i := 0; i+1 < len(route); i++ {
		a := &net.Clustering.Clusters[route[i]]
		b := &net.Clustering.Clusters[route[i+1]]
		e, ok := net.EdgeBetween(a.ID, b.ID)
		if !ok {
			return 0, fmt.Errorf("network: route hop %d-%d is not a G_MIMO edge", a.ID, b.ID)
		}
		d := net.Clustering.Diameter(a)
		if db := net.Clustering.Diameter(b); db > d {
			d = db
		}
		cost, err := hc.HopEnergy(a.Size(), b.Size(), d, e.D)
		if err != nil {
			return 0, fmt.Errorf("network: hop %d-%d: %w", a.ID, b.ID, err)
		}
		total += cost
	}
	return total, nil
}

// dsu is a union-find over integer indices.
type dsu struct {
	parent []int
	rank   []int
}

func newDSU(n int) *dsu {
	d := &dsu{parent: make([]int, n), rank: make([]int, n)}
	for i := range d.parent {
		d.parent[i] = i
	}
	return d
}

func (d *dsu) find(x int) int {
	for d.parent[x] != x {
		d.parent[x] = d.parent[d.parent[x]]
		x = d.parent[x]
	}
	return x
}

func (d *dsu) union(a, b int) bool {
	ra, rb := d.find(a), d.find(b)
	if ra == rb {
		return false
	}
	if d.rank[ra] < d.rank[rb] {
		ra, rb = rb, ra
	}
	d.parent[rb] = ra
	if d.rank[ra] == d.rank[rb] {
		d.rank[ra]++
	}
	return true
}
