package network

import "fmt"

// Graph is the SU connectivity graph G = (V, E): an edge joins two nodes
// within communication range r of each other.
type Graph struct {
	Deployment *Deployment
	// Range is the communication range r in metres.
	Range float64
	adj   map[NodeID][]NodeID
}

// NewGraph builds the range graph over a deployment.
func NewGraph(d *Deployment, r float64) (*Graph, error) {
	if r <= 0 {
		return nil, fmt.Errorf("network: communication range %g must be positive", r)
	}
	g := &Graph{Deployment: d, Range: r, adj: make(map[NodeID][]NodeID, len(d.Nodes))}
	for i := range d.Nodes {
		for j := i + 1; j < len(d.Nodes); j++ {
			a, b := &d.Nodes[i], &d.Nodes[j]
			if a.Pos.Dist(b.Pos) <= r {
				g.adj[a.ID] = append(g.adj[a.ID], b.ID)
				g.adj[b.ID] = append(g.adj[b.ID], a.ID)
			}
		}
	}
	return g, nil
}

// Neighbors returns the IDs adjacent to id (shared slice; do not mutate).
func (g *Graph) Neighbors(id NodeID) []NodeID { return g.adj[id] }

// HasEdge reports whether (a, b) is in E.
func (g *Graph) HasEdge(a, b NodeID) bool {
	for _, n := range g.adj[a] {
		if n == b {
			return true
		}
	}
	return false
}

// Degree returns the number of neighbours of id.
func (g *Graph) Degree(id NodeID) int { return len(g.adj[id]) }

// Components returns the connected components as slices of node IDs, in
// deployment order within and across components.
func (g *Graph) Components() [][]NodeID {
	visited := make(map[NodeID]bool, len(g.Deployment.Nodes))
	var comps [][]NodeID
	for _, n := range g.Deployment.Nodes {
		if visited[n.ID] {
			continue
		}
		var comp []NodeID
		queue := []NodeID{n.ID}
		visited[n.ID] = true
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			comp = append(comp, cur)
			for _, nb := range g.adj[cur] {
				if !visited[nb] {
					visited[nb] = true
					queue = append(queue, nb)
				}
			}
		}
		comps = append(comps, comp)
	}
	return comps
}

// Connected reports whether the whole graph is one component.
func (g *Graph) Connected() bool {
	return len(g.Deployment.Nodes) == 0 || len(g.Components()) == 1
}

// ShortestPath returns a minimum-hop path from a to b (inclusive), or nil
// if unreachable.
func (g *Graph) ShortestPath(a, b NodeID) []NodeID {
	if a == b {
		return []NodeID{a}
	}
	prev := map[NodeID]NodeID{a: a}
	queue := []NodeID{a}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range g.adj[cur] {
			if _, seen := prev[nb]; seen {
				continue
			}
			prev[nb] = cur
			if nb == b {
				return tracePath(prev, a, b)
			}
			queue = append(queue, nb)
		}
	}
	return nil
}

func tracePath(prev map[NodeID]NodeID, a, b NodeID) []NodeID {
	var rev []NodeID
	for cur := b; ; cur = prev[cur] {
		rev = append(rev, cur)
		if cur == a {
			break
		}
	}
	path := make([]NodeID, len(rev))
	for i, id := range rev {
		path[len(rev)-1-i] = id
	}
	return path
}
