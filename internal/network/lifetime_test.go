package network

import (
	"testing"

	"repro/internal/mathx"
)

// lifetimeClustering builds a fresh clustering over a tight 4-node
// cluster with equal batteries for lifetime experiments.
func lifetimeClustering(t *testing.T, batteryJ float64) *Clustering {
	t.Helper()
	rng := mathx.NewRand(101)
	dep := RandomDeployment(rng, 12, 20, 20, batteryJ, batteryJ)
	g, err := NewGraph(dep, 40)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := DCluster(g, 30)
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

func TestLifetimeValidation(t *testing.T) {
	cl := lifetimeClustering(t, 100)
	bad := []LifetimeConfig{
		{HeadCostJ: 0, MemberCostJ: 0, MaxRounds: 10},
		{HeadCostJ: 1, MemberCostJ: 2, MaxRounds: 10}, // head must cost more
		{HeadCostJ: 2, MemberCostJ: 1, MaxRounds: 0},
		{HeadCostJ: 2, MemberCostJ: -1, MaxRounds: 10},
	}
	for i, cfg := range bad {
		if _, err := SimulateLifetime(cl, cfg); err == nil {
			t.Errorf("config %d should fail", i)
		}
	}
}

// TestRotationExtendsLifetime is the reconfiguration claim: re-electing
// heads by remaining battery spreads the coordination burden and delays
// the first death substantially.
func TestRotationExtendsLifetime(t *testing.T) {
	static, err := SimulateLifetime(lifetimeClustering(t, 100), LifetimeConfig{
		HeadCostJ: 5, MemberCostJ: 1, Reconfigure: 0, MaxRounds: 10000,
	})
	if err != nil {
		t.Fatal(err)
	}
	rotated, err := SimulateLifetime(lifetimeClustering(t, 100), LifetimeConfig{
		HeadCostJ: 5, MemberCostJ: 1, Reconfigure: 1, MaxRounds: 10000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if static.DeadNode < 0 || rotated.DeadNode < 0 {
		t.Fatalf("both runs should end in a death: %+v vs %+v", static, rotated)
	}
	// Static heads hit zero during round battery/headCost = 20, so 19
	// full rounds complete; rotation approaches battery over the
	// cluster-averaged cost.
	if static.Rounds != 19 {
		t.Errorf("static lifetime = %d rounds, want 19", static.Rounds)
	}
	if rotated.Rounds < static.Rounds*3/2 {
		t.Errorf("rotation should extend lifetime: %d vs %d", rotated.Rounds, static.Rounds)
	}
	if rotated.Elections == 0 {
		t.Error("rotation performed no elections")
	}
	if static.Elections != 0 {
		t.Error("static run should not elect")
	}
}

func TestLifetimeSurvivesMaxRounds(t *testing.T) {
	cl := lifetimeClustering(t, 1e9)
	r, err := SimulateLifetime(cl, LifetimeConfig{
		HeadCostJ: 2, MemberCostJ: 1, MaxRounds: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.DeadNode != -1 || r.Rounds != 50 {
		t.Errorf("huge batteries should survive: %+v", r)
	}
	if r.MinRemainingJ <= 0 || r.MaxRemainingJ < r.MinRemainingJ {
		t.Errorf("battery bounds wrong: %+v", r)
	}
}

func TestLifetimeBurdenFallsOnHeads(t *testing.T) {
	cl := lifetimeClustering(t, 1000)
	heads := map[NodeID]bool{}
	for i := range cl.Clusters {
		heads[cl.Clusters[i].Head] = true
	}
	if _, err := SimulateLifetime(cl, LifetimeConfig{
		HeadCostJ: 5, MemberCostJ: 1, MaxRounds: 10,
	}); err != nil {
		t.Fatal(err)
	}
	for _, n := range cl.Graph.Deployment.Nodes {
		want := 1000 - 10.0
		if heads[n.ID] {
			want = 1000 - 50.0
		}
		if n.BatteryJ != want {
			t.Errorf("node %d battery %v, want %v", n.ID, n.BatteryJ, want)
		}
	}
}
