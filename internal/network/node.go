// Package network implements the CoMIMONet model of Section 2.1: a graph
// of single-antenna secondary-user nodes, its d-clustering into
// cooperative MIMO nodes, head election, the spanning-tree routing
// backbone over heads, and a CSMA/CA MAC for the link layer.
package network

import (
	"fmt"
	"math/rand"

	"repro/internal/geom"
)

// NodeID identifies a secondary-user node.
type NodeID int

// Node is one single-antenna SU radio.
type Node struct {
	ID NodeID
	// Pos is the deployment position in metres.
	Pos geom.Point
	// BatteryJ is the remaining battery energy in joules. Head election
	// prefers the highest-battery member, as the head carries the
	// coordination burden.
	BatteryJ float64
}

// Deployment is an immutable set of placed nodes.
type Deployment struct {
	Nodes []Node
}

// NewDeployment copies nodes, validating unique IDs.
func NewDeployment(nodes []Node) (*Deployment, error) {
	seen := make(map[NodeID]bool, len(nodes))
	for _, n := range nodes {
		if seen[n.ID] {
			return nil, fmt.Errorf("network: duplicate node ID %d", n.ID)
		}
		seen[n.ID] = true
	}
	d := &Deployment{Nodes: append([]Node(nil), nodes...)}
	return d, nil
}

// RandomDeployment scatters n nodes uniformly over a w-by-h field with
// batteries uniform in [minJ, maxJ].
func RandomDeployment(rng *rand.Rand, n int, w, h, minJ, maxJ float64) *Deployment {
	nodes := make([]Node, n)
	for i := range nodes {
		nodes[i] = Node{
			ID:       NodeID(i),
			Pos:      geom.RandomInRect(rng, 0, 0, w, h),
			BatteryJ: minJ + (maxJ-minJ)*rng.Float64(),
		}
	}
	return &Deployment{Nodes: nodes}
}

// GridDeployment places n*n nodes on a regular grid with the given pitch
// — a deterministic layout for reproducible examples.
func GridDeployment(n int, pitch, batteryJ float64) *Deployment {
	nodes := make([]Node, 0, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			nodes = append(nodes, Node{
				ID:       NodeID(i*n + j),
				Pos:      geom.Pt(float64(j)*pitch, float64(i)*pitch),
				BatteryJ: batteryJ,
			})
		}
	}
	return &Deployment{Nodes: nodes}
}

// ByID returns the node with the given ID, or nil.
func (d *Deployment) ByID(id NodeID) *Node {
	for i := range d.Nodes {
		if d.Nodes[i].ID == id {
			return &d.Nodes[i]
		}
	}
	return nil
}

// Positions returns the node positions in deployment order.
func (d *Deployment) Positions() []geom.Point {
	ps := make([]geom.Point, len(d.Nodes))
	for i, n := range d.Nodes {
		ps[i] = n.Pos
	}
	return ps
}
