package network

import (
	"fmt"
	"math/rand"

	"repro/internal/sim"
)

// CSMAConfig parameterises the CSMA/CA MAC used "to avoid the
// communication collisions at the link layer" (Section 2.1). Times are
// in seconds of simulated time.
type CSMAConfig struct {
	// SlotTime is one backoff slot.
	SlotTime float64
	// DIFS is the idle period sensed before contending.
	DIFS float64
	// CWMin and CWMax bound the binary-exponential contention window.
	CWMin, CWMax int
	// MaxRetries aborts a frame after this many collisions.
	MaxRetries int
}

// DefaultCSMA matches 802.11-style magnitudes scaled to the paper's
// kilobit links.
func DefaultCSMA() CSMAConfig {
	return CSMAConfig{SlotTime: 20e-6, DIFS: 50e-6, CWMin: 16, CWMax: 1024, MaxRetries: 7}
}

// CSMAStats accumulates MAC-level outcomes.
type CSMAStats struct {
	Delivered  int
	Collisions int
	Dropped    int
	// BusyTime is the total simulated time the medium carried a frame.
	BusyTime float64
}

// csmaStation is one contender.
type csmaStation struct {
	id       NodeID
	pending  int
	duration float64
	cw       int
	retries  int
	backoff  int
	deferred bool
}

// CSMAMedium is a single shared broadcast medium: every station hears
// every other (the intra-cluster situation of the cooperative schemes,
// where all members are within range d of each other). The simulation is
// slot-synchronous on the discrete-event engine: any two stations whose
// backoff expires in the same slot collide.
type CSMAMedium struct {
	Config   CSMAConfig
	Engine   *sim.Engine
	Stats    CSMAStats
	rng      *rand.Rand
	stations []*csmaStation
	busy     bool
}

// NewCSMAMedium creates a medium with the given contenders.
func NewCSMAMedium(cfg CSMAConfig, eng *sim.Engine, rng *rand.Rand, ids []NodeID) (*CSMAMedium, error) {
	if cfg.SlotTime <= 0 || cfg.DIFS < 0 || cfg.CWMin < 1 || cfg.CWMax < cfg.CWMin || cfg.MaxRetries < 0 {
		return nil, fmt.Errorf("network: invalid CSMA config %+v", cfg)
	}
	m := &CSMAMedium{Config: cfg, Engine: eng, rng: rng}
	for _, id := range ids {
		m.stations = append(m.stations, &csmaStation{id: id, cw: cfg.CWMin})
	}
	return m, nil
}

// Enqueue hands a station frames to send, each occupying the medium for
// duration seconds.
func (m *CSMAMedium) Enqueue(id NodeID, frames int, duration float64) error {
	for _, s := range m.stations {
		if s.id == id {
			s.pending += frames
			s.duration = duration
			return nil
		}
	}
	return fmt.Errorf("network: station %d not on this medium", id)
}

// Run drives the contention until every queue drains or the engine
// reaches horizon, returning the accumulated stats.
func (m *CSMAMedium) Run(horizon float64) CSMAStats {
	m.scheduleSlot()
	m.Engine.Run(horizon)
	return m.Stats
}

func (m *CSMAMedium) scheduleSlot() {
	anyPending := false
	for _, s := range m.stations {
		if s.pending > 0 {
			anyPending = true
			break
		}
	}
	if !anyPending {
		return
	}
	m.Engine.ScheduleAfter(m.Config.SlotTime, m.slot)
}

// slot advances one backoff slot for every contender and resolves
// transmissions.
func (m *CSMAMedium) slot() {
	if m.busy {
		m.scheduleSlot()
		return
	}
	var ready []*csmaStation
	for _, s := range m.stations {
		if s.pending == 0 {
			continue
		}
		if !s.deferred {
			// Fresh contention: draw a backoff after DIFS.
			s.backoff = m.rng.Intn(s.cw)
			s.deferred = true
			continue
		}
		if s.backoff > 0 {
			s.backoff--
			continue
		}
		ready = append(ready, s)
	}
	switch len(ready) {
	case 0:
		// Nothing fired this slot.
	case 1:
		s := ready[0]
		m.transmit(s)
	default:
		// Collision: all colliders double their windows and redraw.
		m.Stats.Collisions += len(ready)
		for _, s := range ready {
			s.retries++
			if s.retries > m.Config.MaxRetries {
				s.pending--
				m.Stats.Dropped++
				s.retries = 0
				s.cw = m.Config.CWMin
				s.deferred = s.pending > 0
				if s.pending == 0 {
					continue
				}
			}
			if s.cw*2 <= m.Config.CWMax {
				s.cw *= 2
			}
			s.backoff = m.rng.Intn(s.cw)
		}
	}
	m.scheduleSlot()
}

func (m *CSMAMedium) transmit(s *csmaStation) {
	m.busy = true
	dur := m.Config.DIFS + s.duration
	m.Stats.BusyTime += s.duration
	m.Engine.ScheduleAfter(dur, func() {
		m.busy = false
		s.pending--
		s.retries = 0
		s.cw = m.Config.CWMin
		s.deferred = s.pending > 0
		m.Stats.Delivered++
	})
}
