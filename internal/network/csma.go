package network

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/sim"
)

// CSMAConfig parameterises the CSMA/CA MAC used "to avoid the
// communication collisions at the link layer" (Section 2.1). Times are
// in seconds of simulated time.
type CSMAConfig struct {
	// SlotTime is one backoff slot.
	SlotTime float64
	// DIFS is the idle period sensed before contending.
	DIFS float64
	// CWMin and CWMax bound the binary-exponential contention window.
	CWMin, CWMax int
	// MaxRetries aborts a frame after this many collisions.
	MaxRetries int
}

// DefaultCSMA matches 802.11-style magnitudes scaled to the paper's
// kilobit links.
func DefaultCSMA() CSMAConfig {
	return CSMAConfig{SlotTime: 20e-6, DIFS: 50e-6, CWMin: 16, CWMax: 1024, MaxRetries: 7}
}

// CSMAStats accumulates MAC-level outcomes.
type CSMAStats struct {
	Delivered  int
	Collisions int
	Dropped    int
	// BusyTime is the total simulated time the medium carried a frame.
	BusyTime float64
}

// csmaStation is one contender.
type csmaStation struct {
	id       NodeID
	pending  int
	duration float64
	cw       int
	retries  int
	backoff  int
	deferred bool
}

// CSMAMedium is a single shared broadcast medium: every station hears
// every other (the intra-cluster situation of the cooperative schemes,
// where all members are within range d of each other). The simulation is
// slot-synchronous on the discrete-event engine: any two stations whose
// backoff expires in the same slot collide.
type CSMAMedium struct {
	Config   CSMAConfig
	Engine   *sim.Engine
	Stats    CSMAStats
	rng      *rand.Rand
	stations []*csmaStation
	backing  []csmaStation // one block behind stations: a single allocation
	ready    []*csmaStation
	slotFn   func() // m.slot, bound once — slots schedule no new closures
	txDoneFn func() // frame-completion handler, bound once
	txS      *csmaStation
	txEnd    float64
	busy     bool
}

// NewCSMAMedium creates a medium with the given contenders.
func NewCSMAMedium(cfg CSMAConfig, eng *sim.Engine, rng *rand.Rand, ids []NodeID) (*CSMAMedium, error) {
	if cfg.SlotTime <= 0 || cfg.DIFS < 0 || cfg.CWMin < 1 || cfg.CWMax < cfg.CWMin || cfg.MaxRetries < 0 {
		return nil, fmt.Errorf("network: invalid CSMA config %+v", cfg)
	}
	m := &CSMAMedium{Config: cfg, Engine: eng, rng: rng}
	m.backing = make([]csmaStation, len(ids))
	m.stations = make([]*csmaStation, len(ids))
	m.ready = make([]*csmaStation, 0, len(ids))
	for i, id := range ids {
		m.backing[i] = csmaStation{id: id, cw: cfg.CWMin}
		m.stations[i] = &m.backing[i]
	}
	m.slotFn = m.slot
	m.txDoneFn = func() {
		s := m.txS
		m.busy = false
		s.pending--
		s.retries = 0
		s.cw = m.Config.CWMin
		s.deferred = s.pending > 0
		m.Stats.Delivered++
	}
	return m, nil
}

// Enqueue hands a station frames to send, each occupying the medium for
// duration seconds.
func (m *CSMAMedium) Enqueue(id NodeID, frames int, duration float64) error {
	for _, s := range m.stations {
		if s.id == id {
			s.pending += frames
			s.duration = duration
			return nil
		}
	}
	return fmt.Errorf("network: station %d not on this medium", id)
}

// Run drives the contention until every queue drains or the engine
// reaches horizon, returning the accumulated stats.
func (m *CSMAMedium) Run(horizon float64) CSMAStats {
	m.scheduleSlot()
	m.Engine.Run(horizon)
	return m.Stats
}

// scheduleSlot arms the next slot that can change station state. Slots
// that provably do nothing — polls while a frame occupies the medium,
// and pure backoff decrements while every contender counts down — are
// skipped by scheduling directly onto the future grid slot where the
// next draw, transmission or collision happens. No rng is consumed and
// no stat is touched in the skipped region, so the contention unfolds
// exactly as the slot-by-slot walk would, at a fraction of the events.
func (m *CSMAMedium) scheduleSlot() {
	anyPending := false
	fresh := false
	minBackoff := -1
	for _, s := range m.stations {
		if s.pending == 0 {
			continue
		}
		anyPending = true
		if !s.deferred || s.backoff == 0 {
			fresh = true
		} else if minBackoff < 0 || s.backoff < minBackoff {
			minBackoff = s.backoff
		}
	}
	if !anyPending {
		return
	}
	if m.busy {
		// Jump to the first grid slot at or past the frame end; the
		// completion event carries an earlier sequence number, so on an
		// exact tie the medium frees before the slot fires — the same
		// slot the per-slot poll would have found productive.
		k := math.Ceil((m.txEnd - m.Engine.Now()) / m.Config.SlotTime)
		if k < 1 {
			k = 1
		}
		m.Engine.ScheduleAfter(k*m.Config.SlotTime, m.slotFn)
		return
	}
	if !fresh && minBackoff > 0 {
		// Every contender is mid-countdown: the next minBackoff slots
		// only decrement. Apply them in bulk and fire the slot where
		// the fastest counter reaches zero and transmits.
		for _, s := range m.stations {
			if s.pending > 0 {
				s.backoff -= minBackoff
			}
		}
		m.Engine.ScheduleAfter(float64(minBackoff+1)*m.Config.SlotTime, m.slotFn)
		return
	}
	m.Engine.ScheduleAfter(m.Config.SlotTime, m.slotFn)
}

// slot advances one backoff slot for every contender and resolves
// transmissions.
func (m *CSMAMedium) slot() {
	if m.busy {
		m.scheduleSlot()
		return
	}
	ready := m.ready[:0]
	for _, s := range m.stations {
		if s.pending == 0 {
			continue
		}
		if !s.deferred {
			// Fresh contention: draw a backoff after DIFS.
			s.backoff = m.rng.Intn(s.cw)
			s.deferred = true
			continue
		}
		if s.backoff > 0 {
			s.backoff--
			continue
		}
		ready = append(ready, s)
	}
	m.ready = ready[:0]
	switch len(ready) {
	case 0:
		// Nothing fired this slot.
	case 1:
		s := ready[0]
		m.transmit(s)
	default:
		// Collision: all colliders double their windows and redraw.
		m.Stats.Collisions += len(ready)
		for _, s := range ready {
			s.retries++
			if s.retries > m.Config.MaxRetries {
				s.pending--
				m.Stats.Dropped++
				s.retries = 0
				s.cw = m.Config.CWMin
				s.deferred = s.pending > 0
				if s.pending == 0 {
					continue
				}
			}
			if s.cw*2 <= m.Config.CWMax {
				s.cw *= 2
			}
			s.backoff = m.rng.Intn(s.cw)
		}
	}
	m.scheduleSlot()
}

func (m *CSMAMedium) transmit(s *csmaStation) {
	m.busy = true
	dur := m.Config.DIFS + s.duration
	m.Stats.BusyTime += s.duration
	// One frame occupies the medium at a time, so the completion
	// handler is a single prebound closure reading txS — no per-frame
	// allocation.
	m.txS = s
	m.txEnd = m.Engine.Now() + dur
	m.Engine.ScheduleAfter(dur, m.txDoneFn)
}
