package service

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Key is the content address of a result: the hex SHA-256 of the
// request's canonical form.
type Key string

// CanonicalKey hashes a request into its content address. The hash
// covers the experiment ID, seed, quick flag and every solver parameter
// as sorted key=value lines, so two requests that differ only in field
// or parameter ordering — or in how their JSON was laid out — collapse
// onto the same Key. Parameter values are canonicalized first: numeric
// spellings of the same value ("10", "10.0", "1e1", " 10 ") address
// the same result. Workers and Tenant are excluded: both change who
// runs the computation or how fast, never what it computes.
func CanonicalKey(req Request) Key {
	h := sha256.New()
	fmt.Fprintf(h, "id=%s\n", req.ID)
	fmt.Fprintf(h, "quick=%s\n", strconv.FormatBool(req.Quick))
	fmt.Fprintf(h, "seed=%s\n", strconv.FormatInt(req.Seed, 10))
	names := make([]string, 0, len(req.Params))
	for k := range req.Params {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		fmt.Fprintf(h, "param.%s=%s\n", k, canonicalParamValue(req.Params[k]))
	}
	return Key(hex.EncodeToString(h.Sum(nil)))
}

// canonicalParamValue normalizes one parameter value for hashing:
// surrounding whitespace is trimmed, and numeric text re-renders in
// one canonical spelling. Integers within int64/uint64 stay exact
// through the integer paths; everything else numeric goes through
// float64's shortest round-trip form, so integers beyond 2^53 written
// as decimals may collapse onto nearby values — acceptable for solver
// parameters, which live nowhere near that range. NaN and the
// infinities are not meaningful parameter values and pass through as
// trimmed text, as does anything non-numeric.
func canonicalParamValue(v string) string {
	t := strings.TrimSpace(v)
	if t == "" {
		return t
	}
	if i, err := strconv.ParseInt(t, 10, 64); err == nil {
		return strconv.FormatInt(i, 10)
	}
	if u, err := strconv.ParseUint(t, 10, 64); err == nil {
		return strconv.FormatUint(u, 10)
	}
	if f, err := strconv.ParseFloat(t, 64); err == nil && !math.IsNaN(f) && !math.IsInf(f, 0) {
		return strconv.FormatFloat(f, 'g', -1, 64)
	}
	return t
}

// cacheStats counts cache traffic with atomics so snapshots never
// block the serving path.
type cacheStats struct {
	hits      atomic.Int64 // served from a completed entry
	diskHits  atomic.Int64 // served from the durable store's loader
	coalesced atomic.Int64 // waited on another caller's in-flight computation
	misses    atomic.Int64 // had to compute
	evictions atomic.Int64
}

// flight is an in-progress computation other callers can wait on.
type flight struct {
	done chan struct{}
	val  string
	err  error
}

// entry is a completed, cached result.
type entry struct {
	key Key
	val string
}

// cache is the single-flight LRU result cache. In-flight computations
// are tracked separately from completed entries so the LRU bound only
// applies to results that actually exist.
type cache struct {
	mu       sync.Mutex
	max      int
	inflight map[Key]*flight
	entries  map[Key]*list.Element // of *entry
	lru      *list.List            // front = most recent
	stats    cacheStats

	// load, when set, resolves a miss from durable storage before the
	// compute path runs. It executes outside the mutex, under the same
	// single-flight registration as a computation, so concurrent callers
	// of one key trigger one disk read.
	load func(Key) (string, bool)
}

func newCache(maxEntries int) *cache {
	if maxEntries <= 0 {
		maxEntries = 256
	}
	return &cache{
		max:      maxEntries,
		inflight: make(map[Key]*flight),
		entries:  make(map[Key]*list.Element),
		lru:      list.New(),
	}
}

// get returns a completed result without triggering computation.
func (c *cache) get(key Key) (string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return "", false
	}
	c.lru.MoveToFront(el)
	return el.Value.(*entry).val, true
}

// do returns the cached value for key, computing it at most once across
// concurrent callers. hit reports whether this caller avoided the
// computation (a completed entry or a coalesced wait on another
// caller's). A failed or cancelled computation is not cached: its
// waiters loop and recompute under their own contexts, so one caller's
// cancellation never poisons the key for everyone else.
func (c *cache) do(ctx context.Context, key Key, compute func() (string, error)) (val string, hit bool, err error) {
	for {
		c.mu.Lock()
		if el, ok := c.entries[key]; ok {
			c.lru.MoveToFront(el)
			c.mu.Unlock()
			c.stats.hits.Add(1)
			metCacheHits.Inc()
			return el.Value.(*entry).val, true, nil
		}
		if f, ok := c.inflight[key]; ok {
			c.mu.Unlock()
			select {
			case <-f.done:
				if f.err == nil {
					c.stats.coalesced.Add(1)
					metCacheCoalesced.Inc()
					return f.val, true, nil
				}
				// The computing caller failed or was cancelled and
				// removed the flight; try again as the computer.
				continue
			case <-ctx.Done():
				return "", false, ctx.Err()
			}
		}
		f := &flight{done: make(chan struct{})}
		c.inflight[key] = f
		c.mu.Unlock()

		// A durable result from a previous process counts as a hit: the
		// computation is avoided, only the disk read is paid.
		if c.load != nil {
			if val, ok := c.load(key); ok {
				f.val = val
				c.mu.Lock()
				delete(c.inflight, key)
				c.insertLocked(key, val)
				c.mu.Unlock()
				close(f.done)
				c.stats.diskHits.Add(1)
				metCacheDiskHits.Inc()
				return val, true, nil
			}
		}

		c.stats.misses.Add(1)
		metCacheMisses.Inc()
		f.val, f.err = compute()

		c.mu.Lock()
		delete(c.inflight, key)
		if f.err == nil {
			c.insertLocked(key, f.val)
		}
		c.mu.Unlock()
		close(f.done)
		return f.val, false, f.err
	}
}

// insertLocked records a completed result and evicts beyond the bound.
func (c *cache) insertLocked(key Key, val string) {
	if el, ok := c.entries[key]; ok {
		el.Value.(*entry).val = val
		c.lru.MoveToFront(el)
		return
	}
	c.entries[key] = c.lru.PushFront(&entry{key: key, val: val})
	for c.lru.Len() > c.max {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.entries, oldest.Value.(*entry).key)
		c.stats.evictions.Add(1)
		metCacheEvictions.Inc()
	}
}

// put records a completed result directly — the cache-warming path.
func (c *cache) put(key Key, val string) {
	c.mu.Lock()
	c.insertLocked(key, val)
	c.mu.Unlock()
}

// len reports the number of completed entries.
func (c *cache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}
