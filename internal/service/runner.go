package service

import (
	"context"
	"fmt"
	"strconv"

	"repro/internal/adaptive"
	"repro/internal/experiments"
)

// ExperimentRunner is the default Runner: it regenerates the paper
// artifact named by the request through the experiments registry,
// honoring ctx between sweep points. The adaptive budget parameters
// ("target_ci", "max_trials", "min_trials") are decoded into
// experiments.Options.Budget; everything else in Params rides along in
// the cache key only — drivers configure their own solvers today.
func ExperimentRunner(ctx context.Context, req Request) (string, error) {
	budget, err := BudgetFromParams(req.Params)
	if err != nil {
		return "", err
	}
	rep, err := experiments.RunCtx(ctx, req.ID,
		experiments.Options{Seed: req.Seed, Quick: req.Quick, Workers: req.Workers, Budget: budget})
	if err != nil {
		return "", err
	}
	return rep.String(), nil
}

// BudgetFromParams decodes the adaptive budget riding in a request's
// solver parameters. Budget params participate in the result cache key
// like any other param, so two requests with different targets never
// share a cached artifact. Absent keys return the zero (disabled)
// budget.
func BudgetFromParams(params map[string]string) (adaptive.Budget, error) {
	var b adaptive.Budget
	if v, ok := params["target_ci"]; ok {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f < 0 {
			return b, fmt.Errorf("service: bad target_ci %q", v)
		}
		b.TargetRelCI = f
	}
	if v, ok := params["max_trials"]; ok {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return b, fmt.Errorf("service: bad max_trials %q", v)
		}
		b.MaxTrials = n
	}
	if v, ok := params["min_trials"]; ok {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return b, fmt.Errorf("service: bad min_trials %q", v)
		}
		b.MinTrials = n
	}
	if err := b.Validate(); err != nil {
		return adaptive.Budget{}, err
	}
	return b, nil
}

// WithDefaultBudget wraps a Runner so requests carrying no budget
// params run under the given default adaptive budget. Requests with an
// explicit target_ci always win — including "target_ci":"0", which
// callers can send to force fixed budgets on a defaulted node. The
// injected params are visible to the wrapped runner only; the cache key
// was computed from the original request, so a node's default budget is
// node configuration, exactly like its -peers topology.
func WithDefaultBudget(inner Runner, def adaptive.Budget) Runner {
	if !def.Enabled() {
		return inner
	}
	return func(ctx context.Context, req Request) (string, error) {
		if _, ok := req.Params["target_ci"]; !ok {
			params := make(map[string]string, len(req.Params)+3)
			for k, v := range req.Params {
				params[k] = v
			}
			params["target_ci"] = strconv.FormatFloat(def.TargetRelCI, 'g', -1, 64)
			params["max_trials"] = strconv.Itoa(def.MaxTrials)
			if def.MinTrials > 0 {
				params["min_trials"] = strconv.Itoa(def.MinTrials)
			}
			req.Params = params
		}
		return inner(ctx, req)
	}
}

// KnownExperimentIDs lists the IDs ExperimentRunner accepts, for
// Config.KnownIDs.
func KnownExperimentIDs() []string { return experiments.IDs() }
