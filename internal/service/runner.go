package service

import (
	"context"

	"repro/internal/experiments"
)

// ExperimentRunner is the default Runner: it regenerates the paper
// artifact named by the request through the experiments registry,
// honoring ctx between sweep points. Solver parameters ride along in
// the cache key only; drivers configure their own solvers today.
func ExperimentRunner(ctx context.Context, req Request) (string, error) {
	rep, err := experiments.RunCtx(ctx, req.ID,
		experiments.Options{Seed: req.Seed, Quick: req.Quick, Workers: req.Workers})
	if err != nil {
		return "", err
	}
	return rep.String(), nil
}

// KnownExperimentIDs lists the IDs ExperimentRunner accepts, for
// Config.KnownIDs.
func KnownExperimentIDs() []string { return experiments.IDs() }
