package service

import (
	"context"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/store"
)

func openTestStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(store.Options{Dir: dir})
	if err != nil {
		t.Fatalf("opening store: %v", err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

func waitDone(t *testing.T, s *Service, id string) JobView {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	jv, err := s.Wait(ctx, id)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if jv.State != StateDone {
		t.Fatalf("job state = %s (%s), want done", jv.State, jv.Error)
	}
	return jv
}

// TestResultsSurviveRestart is the durability contract at the service
// layer: a result computed before a "restart" (a brand-new Service over
// the same store directory) is served as a cache hit, without invoking
// the runner again.
func TestResultsSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	var runs atomic.Int64
	runner := func(ctx context.Context, req Request) (string, error) {
		runs.Add(1)
		return "report:" + req.ID, nil
	}
	req := Request{ID: "fig6a", Seed: 42}

	st1 := openTestStore(t, dir)
	s1 := startService(t, Config{Workers: 1, Runner: runner, Store: st1})
	jv, err := s1.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, s1, jv.ID)
	if runs.Load() != 1 {
		t.Fatalf("runner ran %d times, want 1", runs.Load())
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s1.Stop(ctx); err != nil {
		t.Fatal(err)
	}
	st1.Close()

	// The "restarted" process: fresh store handle, fresh service, cold
	// in-memory cache.
	st2 := openTestStore(t, dir)
	s2 := startService(t, Config{Workers: 1, Runner: runner, Store: st2})
	jv2, err := s2.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	done := waitDone(t, s2, jv2.ID)
	if !done.CacheHit {
		t.Error("restarted service recomputed instead of hitting the durable store")
	}
	if runs.Load() != 1 {
		t.Errorf("runner ran %d times across restart, want 1", runs.Load())
	}
	if got := s2.Stats().CacheDiskHits; got != 1 {
		t.Errorf("disk hits = %d, want 1", got)
	}
	if report, ok := s2.Result(jv2.Key); !ok || report != "report:fig6a" {
		t.Errorf("Result = (%q, %t)", report, ok)
	}
}

// TestWarmFromStore pins the boot-warming bound: at most CacheEntries
// results are preloaded, newest first, and warmed entries answer
// without any disk read-through.
func TestWarmFromStore(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir)
	var keys []Key
	for _, id := range []string{"fig6a", "fig6b", "fig7", "fig8"} {
		req := Request{ID: id, Seed: 1}
		key := CanonicalKey(req)
		keys = append(keys, key)
		if err := st.Put(string(key), []byte("report:"+id), store.Meta{Kind: "result", Experiment: id, Seed: 1}); err != nil {
			t.Fatal(err)
		}
	}
	// Non-result kinds must not be warmed into the result cache.
	if err := st.Put("campaign/cdead/spec", []byte("{}"), store.Meta{Kind: "campaign-spec"}); err != nil {
		t.Fatal(err)
	}

	s := startService(t, Config{
		Workers: 1, CacheEntries: 3, Store: st,
		Runner: func(ctx context.Context, req Request) (string, error) {
			return "computed", nil
		},
	})
	if got := s.WarmFromStore(); got != 3 {
		t.Fatalf("WarmFromStore loaded %d entries, want 3 (cache bound)", got)
	}
	if got := s.cache.len(); got != 3 {
		t.Fatalf("cache holds %d entries after warming, want 3", got)
	}
	// The newest three results (fig6b, fig7, fig8) are in; the oldest
	// fell outside the bound but remains reachable through read-through.
	for _, key := range keys[1:] {
		if _, ok := s.cache.get(key); !ok {
			t.Errorf("key %s missing from warmed cache", key[:8])
		}
	}
	if _, ok := s.cache.get(keys[0]); ok {
		t.Error("oldest result warmed despite exceeding the cache bound")
	}
	if report, ok := s.Result(keys[0]); !ok || report != "report:fig6a" {
		t.Errorf("read-through for unwarmed key = (%q, %t)", report, ok)
	}
}

// TestWarmedCacheEvictionOrderAndReadThrough covers boot-warming when
// the LRU is smaller than the durable store: warming keeps the newest
// results in LRU order, later computations evict exactly the least
// recently used entry, and an evicted result is still answered from
// disk as a cache hit — without re-running the experiment.
func TestWarmedCacheEvictionOrderAndReadThrough(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir)
	reqs := make([]Request, 4)
	keys := make([]Key, 4)
	for i := range reqs {
		reqs[i] = Request{ID: "fig6a", Seed: int64(i)}
		keys[i] = CanonicalKey(reqs[i])
		payload := []byte("report:" + strconv.FormatInt(int64(i), 10))
		if err := st.Put(string(keys[i]), payload, store.Meta{Kind: "result", Experiment: "fig6a", Seed: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	var runs atomic.Int64
	s := startService(t, Config{
		Workers: 1, CacheEntries: 3, Store: st,
		Runner: func(ctx context.Context, req Request) (string, error) {
			runs.Add(1)
			return "computed:" + strconv.FormatInt(req.Seed, 10), nil
		},
	})
	if got := s.WarmFromStore(); got != 3 {
		t.Fatalf("warmed %d entries, want 3", got)
	}
	// The three newest results (seeds 1..3) are warmed, newest most
	// recently used; seed 0 fell outside the bound and lives on disk only.
	if _, ok := s.cache.get(keys[0]); ok {
		t.Fatal("oldest result warmed past the cache bound")
	}
	// Touch seed 1 so it is no longer the LRU tail; seed 2 becomes the
	// next eviction candidate (warm order put seed 3 in front of it).
	if _, ok := s.cache.get(keys[1]); !ok {
		t.Fatal("seed 1 missing from warmed cache")
	}

	// A fresh computation must evict exactly the tail, nothing else.
	jv, err := s.Submit(Request{ID: "fig6a", Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, s, jv.ID)
	if _, ok := s.cache.get(keys[2]); ok {
		t.Error("eviction ignored LRU order: the tail entry is still cached")
	}
	for _, i := range []int{1, 3} {
		if _, ok := s.cache.get(keys[i]); !ok {
			t.Errorf("seed %d wrongly evicted", i)
		}
	}
	if got := s.Stats().CacheEvictions; got != 1 {
		t.Errorf("evictions = %d, want 1", got)
	}

	// The evicted result still answers as a hit via disk read-through:
	// the runner must not fire again for it.
	jv2, err := s.Submit(reqs[2])
	if err != nil {
		t.Fatal(err)
	}
	done := waitDone(t, s, jv2.ID)
	if !done.CacheHit {
		t.Error("evicted result recomputed instead of reading through to disk")
	}
	if got := runs.Load(); got != 1 {
		t.Errorf("runner ran %d times, want 1 (only the fresh seed)", got)
	}
	if got := s.Stats().CacheDiskHits; got != 1 {
		t.Errorf("disk hits = %d, want 1", got)
	}
	if report, ok := s.Result(keys[2]); !ok || report != "report:2" {
		t.Errorf("evicted key Result = (%q, %t)", report, ok)
	}
}

// TestServiceWithoutStoreUnchanged guards the default path: no Store
// configured means no read-through, no warming, no disk hits.
func TestServiceWithoutStoreUnchanged(t *testing.T) {
	s := startService(t, Config{
		Workers: 1,
		Runner: func(ctx context.Context, req Request) (string, error) {
			return "r", nil
		},
	})
	if got := s.WarmFromStore(); got != 0 {
		t.Fatalf("WarmFromStore without a store loaded %d", got)
	}
	jv, err := s.Submit(Request{ID: "fig6a", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, s, jv.ID)
	if st := s.Stats(); st.CacheDiskHits != 0 {
		t.Errorf("disk hits = %d without a store", st.CacheDiskHits)
	}
}
