package service

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/tenant"
)

// TestTenantCanonicalizedAndVisible: tenant ids flow from the request
// into the job snapshot, and the anonymous default applies.
func TestTenantCanonicalizedAndVisible(t *testing.T) {
	s := startService(t, Config{
		Workers: 1,
		Runner: func(ctx context.Context, req Request) (string, error) {
			return "ok", nil
		},
	})
	jv, err := s.Submit(Request{ID: "anon", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if jv.Tenant != tenant.DefaultID || jv.Request.Tenant != tenant.DefaultID {
		t.Fatalf("anonymous submit tenant = %q / %q", jv.Tenant, jv.Request.Tenant)
	}
	jv, err = s.Submit(Request{ID: "named", Seed: 1, Tenant: "acme"})
	if err != nil {
		t.Fatal(err)
	}
	if jv.Tenant != "acme" {
		t.Fatalf("tenant = %q", jv.Tenant)
	}
	if _, err := s.Submit(Request{ID: "bad", Seed: 1, Tenant: "no spaces"}); !errors.Is(err, ErrBadTenant) {
		t.Fatalf("invalid tenant err = %v", err)
	}
}

// TestTenantExcludedFromCacheKey: two tenants asking the same question
// share one computation and one cached answer.
func TestTenantExcludedFromCacheKey(t *testing.T) {
	a := CanonicalKey(Request{ID: "fig6a", Seed: 7, Tenant: "alice"})
	b := CanonicalKey(Request{ID: "fig6a", Seed: 7, Tenant: "bob"})
	if a != b {
		t.Fatalf("tenant leaked into cache key: %s != %s", a, b)
	}
}

// TestQuotaRejection pins the admission-control contract: an exhausted
// bucket returns a *QuotaError matching ErrQuotaExceeded, with a
// usable per-tenant RetryAfter, while other tenants stay admitted.
func TestQuotaRejection(t *testing.T) {
	started := make(chan string, 8)
	release := make(chan struct{})
	defer close(release)
	s := startService(t, Config{
		Workers: 1,
		Runner:  blockingRunner(started, release),
		Quota:   tenant.Quota{Rate: 0.001, Burst: 2},
	})
	for i := 0; i < 2; i++ {
		if _, err := s.Submit(Request{ID: "fig6a", Seed: int64(i), Tenant: "greedy"}); err != nil {
			t.Fatalf("burst submit %d: %v", i, err)
		}
	}
	_, err := s.Submit(Request{ID: "fig6a", Seed: 99, Tenant: "greedy"})
	if !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("over-quota err = %v", err)
	}
	var qe *QuotaError
	if !errors.As(err, &qe) {
		t.Fatalf("err %T is not *QuotaError", err)
	}
	if qe.Tenant != "greedy" || qe.RetryAfter <= 0 {
		t.Fatalf("quota error = %+v", qe)
	}
	if _, err := s.Submit(Request{ID: "fig6a", Seed: 1, Tenant: "modest"}); err != nil {
		t.Fatalf("bystander tenant rejected: %v", err)
	}
	if got := s.Stats().QuotaRejected; got != 1 {
		t.Fatalf("stats quota rejected = %d", got)
	}
}

// TestSchedulerFairnessAcrossTenants: with one worker, a heavy tenant's
// backlog cannot starve a light tenant — the light tenant's lone job
// runs within the first few dispatches, not after the whole backlog.
func TestSchedulerFairnessAcrossTenants(t *testing.T) {
	started := make(chan string, 32)
	release := make(chan struct{}, 32)
	s := startService(t, Config{
		Workers:    1,
		QueueDepth: 32,
		Runner:     blockingRunner(started, release),
	})
	// Stall the worker on a sacrificial job so the backlog builds up
	// before any scheduling decisions are made.
	if _, err := s.Submit(Request{ID: "stall", Seed: 0, Tenant: "heavy"}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("stall job never started")
	}
	for i := 1; i <= 10; i++ {
		if _, err := s.Submit(Request{ID: "hv", Seed: int64(i), Tenant: "heavy"}); err != nil {
			t.Fatal(err)
		}
	}
	light, err := s.Submit(Request{ID: "lt", Seed: 1, Tenant: "light"})
	if err != nil {
		t.Fatal(err)
	}
	// Release jobs one at a time and record the dispatch order.
	lightPos := -1
	for i := 0; i < 12; i++ {
		release <- struct{}{}
		select {
		case id := <-started:
			if id == "lt" {
				lightPos = i
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("worker idle after %d releases", i)
		}
		if lightPos >= 0 {
			break
		}
	}
	// Dispatch 0 is the job started while light was not yet queued; the
	// light job must be among the first couple of real scheduling picks.
	if lightPos < 0 || lightPos > 2 {
		t.Fatalf("light tenant's job dispatched at position %d", lightPos)
	}
	for i := 0; i < 12; i++ { // let the rest drain for clean shutdown
		select {
		case release <- struct{}{}:
		default:
		}
	}
	if _, err := s.Wait(context.Background(), light.ID); err != nil {
		t.Fatal(err)
	}
	if s.Tenant("heavy").Weight != 1 {
		t.Fatalf("tenant snapshot = %+v", s.Tenant("heavy"))
	}
}

// TestTenantQueueBoundReturnsBothSentinels: a per-tenant overflow is
// recognizable as both a 429-able ErrQueueFull and the tenant-specific
// sentinel.
func TestTenantQueueBoundReturnsBothSentinels(t *testing.T) {
	started := make(chan string, 1)
	release := make(chan struct{})
	defer close(release)
	s := startService(t, Config{
		Workers:    1,
		QueueDepth: 16,
		Tenants:    tenant.Options{QueueDepth: 2},
		Runner:     blockingRunner(started, release),
	})
	if _, err := s.Submit(Request{ID: "stall", Seed: 0, Tenant: "a"}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("stall job never started")
	}
	for i := 0; i < 2; i++ {
		if _, err := s.Submit(Request{ID: "q", Seed: int64(i), Tenant: "a"}); err != nil {
			t.Fatalf("fill %d: %v", i, err)
		}
	}
	_, err := s.Submit(Request{ID: "q", Seed: 9, Tenant: "a"})
	if !errors.Is(err, ErrQueueFull) || !errors.Is(err, tenant.ErrTenantQueueFull) {
		t.Fatalf("per-tenant overflow err = %v", err)
	}
	// A different tenant still has room.
	if _, err := s.Submit(Request{ID: "q", Seed: 1, Tenant: "b"}); err != nil {
		t.Fatalf("tenant b blocked by a's bound: %v", err)
	}
	if got := s.Stats().Rejected; got != 1 {
		t.Fatalf("stats rejected = %d", got)
	}
}

// TestWatchStreamsMonotonicProgressToCompletion pins the SSE data
// source: snapshots arrive without polling, progress counts only up,
// and the channel closes right after a terminal snapshot.
func TestWatchStreamsMonotonicProgressToCompletion(t *testing.T) {
	const steps = 5
	gate := make(chan struct{}, steps)
	s := startService(t, Config{
		Workers: 1,
		Runner: func(ctx context.Context, req Request) (string, error) {
			p := obs.ProgressFrom(ctx)
			p.AddTotal(steps)
			for i := 0; i < steps; i++ {
				select {
				case <-gate:
				case <-ctx.Done():
					return "", ctx.Err()
				}
				p.Add(1)
			}
			return "done", nil
		},
	})
	jv, err := s.Submit(Request{ID: "fig6a", Seed: 1, Tenant: "watcher"})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	ch, err := s.Watch(ctx, jv.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for i := 0; i < steps; i++ {
			gate <- struct{}{}
			time.Sleep(2 * time.Millisecond)
		}
	}()
	var last JobView
	var prevDone int64 = -1
	snapshots := 0
	for v := range ch {
		snapshots++
		if v.ID != jv.ID || v.Tenant != "watcher" {
			t.Fatalf("snapshot for wrong job: %+v", v)
		}
		if v.Progress != nil {
			if v.Progress.DoneTrials < prevDone {
				t.Fatalf("progress went backwards: %d after %d", v.Progress.DoneTrials, prevDone)
			}
			prevDone = v.Progress.DoneTrials
		}
		last = v
	}
	if !last.State.Terminal() || last.State != StateDone {
		t.Fatalf("final snapshot state = %q after %d snapshots", last.State, snapshots)
	}
	if last.Progress == nil || last.Progress.DoneTrials != steps {
		t.Fatalf("final progress = %+v", last.Progress)
	}
	if snapshots < 2 {
		t.Fatalf("watch produced %d snapshots, want initial + updates", snapshots)
	}
	if _, err := s.Watch(ctx, "j99999999", 0); !errors.Is(err, ErrNoSuchJob) {
		t.Fatalf("watch unknown job err = %v", err)
	}
}

// TestWatchThrottleStillDeliversTerminal: a large minInterval must not
// delay the terminal snapshot.
func TestWatchThrottleStillDeliversTerminal(t *testing.T) {
	s := startService(t, Config{
		Workers: 1,
		Runner: func(ctx context.Context, req Request) (string, error) {
			p := obs.ProgressFrom(ctx)
			p.AddTotal(100)
			for i := 0; i < 100; i++ {
				p.Add(1)
			}
			return "ok", nil
		},
	})
	jv, err := s.Submit(Request{ID: "fig6a", Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	ch, err := s.Watch(ctx, jv.ID, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	var last JobView
	for v := range ch {
		last = v
	}
	if last.State != StateDone {
		t.Fatalf("terminal snapshot not delivered under throttle: %+v", last)
	}
}

// TestWatchWatcherCancelDetaches: an abandoned watcher exits without
// affecting the job.
func TestWatchWatcherCancelDetaches(t *testing.T) {
	started := make(chan string, 1)
	release := make(chan struct{})
	s := startService(t, Config{Workers: 1, Runner: blockingRunner(started, release)})
	jv, err := s.Submit(Request{ID: "fig6a", Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	ch, err := s.Watch(ctx, jv.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	<-ch // initial snapshot
	cancel()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case _, open := <-ch:
			if !open {
				goto closed
			}
		case <-deadline:
			t.Fatal("watch channel never closed after watcher cancel")
		}
	}
closed:
	close(release)
	if jv, err := s.Wait(context.Background(), jv.ID); err != nil || jv.State != StateDone {
		t.Fatalf("job after watcher detach = %+v, %v", jv, err)
	}
}

// TestStatsTenantCounters: busy workers and active tenants surface in
// Stats while work is in flight.
func TestStatsTenantCounters(t *testing.T) {
	started := make(chan string, 4)
	release := make(chan struct{})
	defer close(release)
	s := startService(t, Config{Workers: 2, Runner: blockingRunner(started, release)})
	for i := 0; i < 2; i++ {
		if _, err := s.Submit(Request{ID: "fig6a", Seed: int64(i), Tenant: fmt.Sprintf("t%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		select {
		case <-started:
		case <-time.After(5 * time.Second):
			t.Fatal("jobs never started")
		}
	}
	st := s.Stats()
	if st.BusyWorkers != 2 || st.ActiveTenants != 2 {
		t.Fatalf("stats = busy %d active %d, want 2/2", st.BusyWorkers, st.ActiveTenants)
	}
	if len(s.Tenants()) != 2 {
		t.Fatalf("tenants = %+v", s.Tenants())
	}
}
