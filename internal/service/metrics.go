package service

import "repro/internal/obs"

// Package-level metrics in the stack's Default registry. They are
// process-wide on purpose: several Service instances (as in tests)
// feed the same counters, exactly like several handlers feeding one
// Prometheus family. Gauges that need a live instance are bound in
// cmd/cogmimod's publishMetrics instead.
var (
	metJobs = obs.Default.CounterVec("cogmimod_jobs_total",
		"Jobs by lifecycle event: submitted, rejected, and the terminal states done/failed/canceled.",
		"status")
	metJobDuration = obs.Default.Histogram("cogmimod_job_duration_seconds",
		"Wall-clock runtime of jobs that reached a worker, from start to terminal state.", nil)
	metQueueWait = obs.Default.Histogram("cogmimod_job_queue_wait_seconds",
		"Time jobs spent queued before a worker picked them up.", nil)
	metCacheHits = obs.Default.Counter("cogmimod_cache_hits_total",
		"Result-cache lookups served from a completed entry.")
	metCacheDiskHits = obs.Default.Counter("cogmimod_cache_disk_hits_total",
		"Result-cache lookups served from the durable store instead of computing.")
	metCacheCoalesced = obs.Default.Counter("cogmimod_cache_coalesced_total",
		"Result-cache lookups coalesced onto another caller's in-flight computation.")
	metCacheMisses = obs.Default.Counter("cogmimod_cache_misses_total",
		"Result-cache lookups that had to compute.")
	metCacheEvictions = obs.Default.Counter("cogmimod_cache_evictions_total",
		"Completed results evicted by the LRU bound.")
	metTenantJobs = obs.Default.CounterVec("cogmimod_tenant_jobs_total",
		"Jobs accepted into the queue, by submitting tenant.",
		"tenant")
	metTenantQueueWait = obs.Default.HistogramVec("cogmimod_tenant_queue_wait_seconds",
		"Time jobs spent queued before a worker picked them up, by tenant.",
		"tenant", nil)
	metQuotaRejected = obs.Default.CounterVec("cogmimod_tenant_quota_rejected_total",
		"Submissions denied by per-tenant admission quotas, by tenant.",
		"tenant")
)

// init pre-seeds the jobs_total series so every status is visible (as
// 0) from the first scrape, before any job has moved through it.
func init() {
	for _, st := range []string{"submitted", "rejected",
		string(StateDone), string(StateFailed), string(StateCanceled)} {
		metJobs.With(st).Add(0)
	}
}
