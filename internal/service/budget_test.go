package service

import (
	"context"
	"testing"

	"repro/internal/adaptive"
)

func TestBudgetFromParams(t *testing.T) {
	b, err := BudgetFromParams(map[string]string{"target_ci": "0.05", "max_trials": "100000", "min_trials": "256"})
	if err != nil {
		t.Fatal(err)
	}
	if b.TargetRelCI != 0.05 || b.MaxTrials != 100000 || b.MinTrials != 256 {
		t.Fatalf("decoded %+v", b)
	}
	if b, err := BudgetFromParams(nil); err != nil || b.Enabled() {
		t.Fatalf("absent params: %+v, %v", b, err)
	}
	// target_ci=0 explicitly disables — the escape hatch on nodes with
	// a default budget.
	if b, err := BudgetFromParams(map[string]string{"target_ci": "0"}); err != nil || b.Enabled() {
		t.Fatalf("explicit zero: %+v, %v", b, err)
	}
	for _, params := range []map[string]string{
		{"target_ci": "nope"},
		{"target_ci": "-0.1"},
		{"max_trials": "x"},
		{"max_trials": "-5"},
		{"min_trials": "-1"},
		{"target_ci": "1.5", "max_trials": "100"},
		{"target_ci": "0.1", "max_trials": "10", "min_trials": "20"},
	} {
		if _, err := BudgetFromParams(params); err == nil {
			t.Errorf("params %v accepted", params)
		}
	}
}

func TestWithDefaultBudget(t *testing.T) {
	var seen map[string]string
	inner := func(ctx context.Context, req Request) (string, error) {
		seen = req.Params
		return "", nil
	}
	def := adaptive.Budget{TargetRelCI: 0.1, MaxTrials: 4096, MinTrials: 64}
	wrapped := WithDefaultBudget(inner, def)

	// No params: the default budget is injected.
	if _, err := wrapped(context.Background(), Request{ID: "x"}); err != nil {
		t.Fatal(err)
	}
	if seen["target_ci"] != "0.1" || seen["max_trials"] != "4096" || seen["min_trials"] != "64" {
		t.Fatalf("default not injected: %v", seen)
	}

	// Explicit budget params win untouched, including a disabling zero.
	if _, err := wrapped(context.Background(), Request{ID: "x", Params: map[string]string{"target_ci": "0"}}); err != nil {
		t.Fatal(err)
	}
	if seen["target_ci"] != "0" || seen["max_trials"] != "" {
		t.Fatalf("explicit params overridden: %v", seen)
	}

	// Unrelated params survive injection.
	if _, err := wrapped(context.Background(), Request{ID: "x", Params: map[string]string{"foo": "bar"}}); err != nil {
		t.Fatal(err)
	}
	if seen["foo"] != "bar" || seen["target_ci"] != "0.1" {
		t.Fatalf("unrelated params lost: %v", seen)
	}

	// A disabled default is the identity wrapper.
	id := WithDefaultBudget(inner, adaptive.Budget{})
	if _, err := id(context.Background(), Request{ID: "x"}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 0 {
		t.Fatalf("disabled default injected params: %v", seen)
	}
}
