package service

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/obs"
)

// findSpan returns the first span with the given name, or nil.
func findSpan(tr obs.Trace, name string) *obs.SpanData {
	for i := range tr.Spans {
		if tr.Spans[i].Name == name {
			return &tr.Spans[i]
		}
	}
	return nil
}

// TestJobRunSpanTree checks a traced job records job.run (backdated to
// submission) with queue.wait and driver.run as children, parented
// under the submitting request's span.
func TestJobRunSpanTree(t *testing.T) {
	rec := obs.NewTraceRecorder(8, 256)
	s, err := New(Config{
		Workers:  1,
		Recorder: rec,
		Runner: func(ctx context.Context, req Request) (string, error) {
			return "r", nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Stop(context.Background())

	// Simulate the HTTP middleware: a recording root span on the
	// submitting context.
	sctx := obs.WithRecorder(context.Background(), rec)
	sctx, httpSpan := obs.StartSpan(sctx, "http.request")
	sctx = obs.WithTraceID(sctx, httpSpan.TraceID())

	jv, err := s.SubmitCtx(sctx, Request{ID: "x", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	jv = waitTerminal(t, s, jv.ID)
	httpSpan.End()

	if jv.TraceID != httpSpan.TraceID() {
		t.Fatalf("job trace id %q != submit trace id %q", jv.TraceID, httpSpan.TraceID())
	}
	tr, ok := rec.Trace(httpSpan.TraceID())
	if !ok {
		t.Fatal("trace not recorded")
	}

	jobSpan := findSpan(tr, "job.run")
	if jobSpan == nil {
		t.Fatal("no job.run span")
	}
	if jobSpan.ParentID != httpSpan.SpanID() {
		t.Fatalf("job.run parent = %q, want http span %q", jobSpan.ParentID, httpSpan.SpanID())
	}
	if jobSpan.Attr("job_id") != jv.ID || jobSpan.Attr("state") != string(StateDone) {
		t.Fatalf("job.run attrs = %+v", jobSpan.Attrs)
	}
	if jobSpan.Start.After(jv.Started) {
		t.Fatal("job.run not backdated to submission")
	}

	qw := findSpan(tr, "queue.wait")
	if qw == nil {
		t.Fatal("no queue.wait span")
	}
	if qw.ParentID != jobSpan.SpanID {
		t.Fatalf("queue.wait parent = %q, want job.run %q", qw.ParentID, jobSpan.SpanID)
	}
	if qw.Attr("sched_wait") == "" {
		t.Fatal("queue.wait missing sched_wait attr")
	}

	dr := findSpan(tr, "driver.run")
	if dr == nil {
		t.Fatal("no driver.run span")
	}
	if dr.ParentID != jobSpan.SpanID {
		t.Fatalf("driver.run parent = %q, want job.run %q", dr.ParentID, jobSpan.SpanID)
	}
}

// TestJobAdoptsFreshTraceWithoutSubmitSpan checks a direct SubmitCtx
// (no trace id, no span) still yields a complete recorded trace and
// backfills the job view's trace id.
func TestJobAdoptsFreshTraceWithoutSubmitSpan(t *testing.T) {
	rec := obs.NewTraceRecorder(8, 256)
	s, err := New(Config{
		Workers:  1,
		Recorder: rec,
		Runner:   func(ctx context.Context, req Request) (string, error) { return "r", nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Stop(context.Background())

	jv, err := s.Submit(Request{ID: "x", Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	jv = waitTerminal(t, s, jv.ID)
	if jv.TraceID == "" {
		t.Fatal("job view has no backfilled trace id")
	}
	tr, ok := rec.Trace(jv.TraceID)
	if !ok {
		t.Fatalf("trace %q not recorded", jv.TraceID)
	}
	if findSpan(tr, "job.run") == nil || findSpan(tr, "driver.run") == nil {
		t.Fatalf("incomplete trace: %d spans", len(tr.Spans))
	}
}

// TestSlowJobPinsTrace checks the auto-capture: a job over the
// threshold gets its trace pinned so it survives recorder churn.
func TestSlowJobPinsTrace(t *testing.T) {
	rec := obs.NewTraceRecorder(2, 256)
	s, err := New(Config{
		Workers:   1,
		Recorder:  rec,
		SlowTrace: 10 * time.Millisecond,
		Runner: func(ctx context.Context, req Request) (string, error) {
			if req.ID == "slow" {
				time.Sleep(30 * time.Millisecond)
			}
			return "r", nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Stop(context.Background())

	jv, err := s.Submit(Request{ID: "slow", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	jv = waitTerminal(t, s, jv.ID)
	tr, ok := rec.Trace(jv.TraceID)
	if !ok {
		t.Fatal("slow trace missing")
	}
	if !tr.Pinned {
		t.Fatal("slow job's trace not pinned")
	}

	// A fast job stays unpinned.
	jv2, err := s.Submit(Request{ID: "fast", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	jv2 = waitTerminal(t, s, jv2.ID)
	if tr2, ok := rec.Trace(jv2.TraceID); ok && tr2.Pinned {
		t.Fatal("fast job's trace pinned")
	}
}

// TestTracingOffJobViewsUnchanged pins the default: no recorder, no
// trace ids invented, failures still reported cleanly.
func TestTracingOffJobViewsUnchanged(t *testing.T) {
	boom := errors.New("boom")
	s, err := New(Config{
		Workers: 1,
		Runner:  func(ctx context.Context, req Request) (string, error) { return "", boom },
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Stop(context.Background())

	jv, err := s.Submit(Request{ID: "x", Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	jv = waitTerminal(t, s, jv.ID)
	if jv.TraceID != "" {
		t.Fatalf("trace id %q invented without a recorder", jv.TraceID)
	}
	if jv.State != StateFailed {
		t.Fatalf("state = %v, want failed", jv.State)
	}
}
