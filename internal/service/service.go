package service

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/tenant"
)

// Request identifies one experiment computation. Params carries solver
// configuration (e.g. a future "solver=montecarlo samples=40000") and
// participates in the cache key; the default runner ignores unknown
// parameters rather than failing, so keys stay forward-compatible.
type Request struct {
	ID     string            `json:"id"`
	Seed   int64             `json:"seed"`
	Quick  bool              `json:"quick,omitempty"`
	Params map[string]string `json:"params,omitempty"`
	// Workers caps sweep-row concurrency inside the driver; 0 means
	// GOMAXPROCS. It is deliberately excluded from the cache key:
	// reports are bit-identical for every worker budget, so runs that
	// differ only in Workers are the same computation.
	Workers int `json:"workers,omitempty"`
	// Tenant names the submitting tenant for scheduling, quotas, logs
	// and metrics; empty means the anonymous default tenant. Like
	// Workers it is excluded from the cache key: the same computation
	// answers every tenant, whoever paid for it first.
	Tenant string `json:"tenant,omitempty"`
}

// Runner computes the report text for a request. It must honor ctx.
type Runner func(ctx context.Context, req Request) (string, error)

// State is a job lifecycle state; see the package documentation for the
// transition diagram.
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether a job in this state will never change again.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// ProgressInfo is the live work accounting of a running (or finished)
// job, fed by the drivers through the job context's obs.Progress sink.
// Trials are whatever unit the driver reports — Monte-Carlo trials for
// sim-backed experiments, sweep points or testbed runs elsewhere.
type ProgressInfo struct {
	DoneTrials     int64   `json:"done_trials"`
	TotalTrials    int64   `json:"total_trials"`
	ElapsedSeconds float64 `json:"elapsed_seconds"`
}

// JobView is an immutable snapshot of a job.
type JobView struct {
	ID       string        `json:"job"`
	Tenant   string        `json:"tenant"`
	Request  Request       `json:"request"`
	Key      Key           `json:"key"`
	State    State         `json:"state"`
	CacheHit bool          `json:"cached"`
	Error    string        `json:"error,omitempty"`
	TraceID  string        `json:"trace_id,omitempty"`
	Queued   time.Time     `json:"queued_at"`
	Started  time.Time     `json:"started_at,omitzero"`
	Finished time.Time     `json:"finished_at,omitzero"`
	Progress *ProgressInfo `json:"progress,omitempty"`
}

// job is the service-owned mutable record behind a JobView. All fields
// below mu are guarded by the service mutex.
type job struct {
	id      string
	req     Request // req.Tenant is canonical by construction
	key     Key
	traceID string
	// parent is the submitting request's span identity, captured at
	// SubmitCtx so the queued job's span tree hangs off the HTTP span
	// across the asynchronous gap. Zero when the submitter had no
	// recording span.
	parent obs.SpanContext
	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{} // closed on terminal state
	// signal is raised on every progress update and state transition,
	// so watchers (SSE streams) re-snapshot instead of polling.
	signal *obs.Signal

	state     State
	cacheHit  bool
	errMsg    string
	submitted time.Time
	started   time.Time
	finished  time.Time
	tracker   *obs.Tracker // set when the job starts running
}

// Stats is a point-in-time snapshot of service counters, published by
// cmd/cogmimod under expvar.
type Stats struct {
	Submitted      int64 `json:"jobs_submitted"`
	Rejected       int64 `json:"jobs_rejected"`
	QuotaRejected  int64 `json:"jobs_quota_rejected"`
	Done           int64 `json:"jobs_done"`
	Failed         int64 `json:"jobs_failed"`
	Canceled       int64 `json:"jobs_canceled"`
	QueueDepth     int   `json:"queue_depth"`
	QueueCapacity  int   `json:"queue_capacity"`
	Workers        int   `json:"workers"`
	BusyWorkers    int   `json:"busy_workers"`
	ActiveTenants  int   `json:"active_tenants"`
	CacheEntries   int   `json:"cache_entries"`
	CacheHits      int64 `json:"cache_hits"`
	CacheDiskHits  int64 `json:"cache_disk_hits"`
	CacheCoalesced int64 `json:"cache_coalesced"`
	CacheMisses    int64 `json:"cache_misses"`
	CacheEvictions int64 `json:"cache_evictions"`
	// CacheHitRatio is hits/(hits+misses) over completed lookups, 0
	// before any traffic. Coalesced waits count as neither.
	CacheHitRatio float64 `json:"cache_hit_ratio"`
	// MeanJobSeconds is the average wall-clock of jobs that ran to a
	// terminal state, 0 before the first one. Cache hits answered
	// without running are excluded, so the value estimates how long a
	// queued job will occupy a worker.
	MeanJobSeconds float64 `json:"mean_job_seconds"`
}

// Config sizes a Service. Zero values pick sane defaults.
type Config struct {
	// Workers is the pool size; 0 means GOMAXPROCS.
	Workers int
	// QueueDepth bounds the number of jobs waiting for a worker across
	// all tenants; 0 means 64. Submissions beyond the bound fail with
	// ErrQueueFull.
	QueueDepth int
	// CacheEntries bounds the completed-result cache; 0 means 256.
	CacheEntries int
	// MaxJobs bounds the job table; 0 means 4096. Oldest terminal jobs
	// are forgotten first.
	MaxJobs int
	// Runner computes reports. Required.
	Runner Runner
	// KnownIDs, when non-empty, restricts Submit to these experiment
	// IDs; anything else fails with ErrUnknownExperiment.
	KnownIDs []string
	// Logger receives job lifecycle logs; nil means slog.Default().
	// Each job logs through a child logger carrying job_id, tenant,
	// experiment and (when the submission had one) trace_id.
	Logger *slog.Logger
	// Store, when non-nil, backs the result cache with durable storage:
	// misses read through to it before computing, computed results
	// write through to it, and WarmFromStore preloads the LRU at boot —
	// so cache hits survive process restarts.
	Store *store.Store
	// Tenants configures the weighted-fair scheduler: per-tenant
	// weights and queue bounds, and soft concurrency shares. Zero
	// values inherit the service-wide defaults (per-tenant queue bound
	// = QueueDepth, share pool = Workers), which makes a single-tenant
	// service behave exactly like the old global FIFO.
	Tenants tenant.Options
	// Quota is the default per-tenant admission budget (token bucket);
	// the zero value disables admission control.
	Quota tenant.Quota
	// Quotas overrides admission budgets for specific tenants.
	Quotas map[string]tenant.Quota
	// Recorder, when non-nil, turns on distributed tracing: every job
	// runs under a job.run span (parented to the submitting request's
	// span when there was one) and its spans land in this recorder.
	Recorder *obs.TraceRecorder
	// SlowTrace, when positive and Recorder is set, auto-captures slow
	// jobs: a job that ran (not a cache hit) for at least this long has
	// its trace pinned against eviction and its trace id logged.
	SlowTrace time.Duration
}

// Service schedules experiment jobs onto a bounded worker pool,
// weighted-fairly across tenants.
type Service struct {
	cfg     Config
	runner  Runner
	known   map[string]bool
	cache   *cache
	logger  *slog.Logger
	sched   *tenant.Scheduler[*job]
	limiter *tenant.Limiter

	baseCtx context.Context
	stop    context.CancelFunc
	wg      sync.WaitGroup

	mu      sync.Mutex
	jobs    map[string]*job
	order   []string // submission order, for bounded forgetting
	nextID  int64
	busy    int // workers currently executing a job
	stopped bool

	submitted, rejected, quotaRejected, nDone, nFailed, nCanceled int64

	// ranSeconds/ranJobs accumulate the wall-clock of jobs that actually
	// ran (cache hits and never-started jobs excluded); their ratio is
	// Stats.MeanJobSeconds, which the HTTP layer turns into Retry-After
	// hints under queue pressure.
	ranSeconds float64
	ranJobs    int64
}

// Errors surfaced to the transport layer.
var (
	ErrQueueFull         = errors.New("service: job queue is full")
	ErrStopped           = errors.New("service: stopped")
	ErrUnknownExperiment = errors.New("service: unknown experiment id")
	ErrNoSuchJob         = errors.New("service: no such job")
	ErrBadTenant         = errors.New("service: invalid tenant id")
	// ErrQuotaExceeded matches (via errors.Is) the *QuotaError returned
	// when a tenant's token bucket is empty.
	ErrQuotaExceeded = errors.New("service: tenant quota exceeded")
)

// QuotaError reports an admission-control rejection, carrying the
// per-tenant wait until the next token.
type QuotaError struct {
	Tenant     string
	RetryAfter time.Duration
}

func (e *QuotaError) Error() string {
	return fmt.Sprintf("service: tenant %q over quota, retry in %s", e.Tenant, e.RetryAfter)
}

// Is makes errors.Is(err, ErrQuotaExceeded) work on QuotaErrors.
func (e *QuotaError) Is(target error) bool { return target == ErrQuotaExceeded }

// New builds a Service; Start must be called before jobs run.
func New(cfg Config) (*Service, error) {
	if cfg.Runner == nil {
		return nil, errors.New("service: Config.Runner is required")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.MaxJobs <= 0 {
		cfg.MaxJobs = 4096
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	topts := cfg.Tenants
	if topts.TotalDepth <= 0 {
		topts.TotalDepth = cfg.QueueDepth
	}
	if topts.QueueDepth <= 0 {
		// A lone tenant may use the whole global queue; the bound that
		// protects tenants from each other is the fair scheduler plus
		// the global depth, unless the operator sets a tighter one.
		topts.QueueDepth = cfg.QueueDepth
	}
	if topts.Workers <= 0 {
		topts.Workers = cfg.Workers
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Service{
		cfg:     cfg,
		runner:  cfg.Runner,
		logger:  cfg.Logger,
		cache:   newCache(cfg.CacheEntries),
		sched:   tenant.NewScheduler[*job](topts),
		limiter: tenant.NewLimiter(cfg.Quota, cfg.Quotas),
		baseCtx: ctx,
		stop:    cancel,
		jobs:    make(map[string]*job),
	}
	if len(cfg.KnownIDs) > 0 {
		s.known = make(map[string]bool, len(cfg.KnownIDs))
		for _, id := range cfg.KnownIDs {
			s.known[id] = true
		}
	}
	if cfg.Store != nil {
		s.cache.load = func(key Key) (string, bool) {
			payload, _, ok := cfg.Store.Get(string(key))
			return string(payload), ok
		}
	}
	return s, nil
}

// WarmFromStore preloads the in-memory LRU with the newest durable
// results, up to the cache capacity, and returns how many entries were
// loaded. Call it once at boot, before serving: reports computed by a
// previous process then answer as ordinary cache hits without touching
// the disk again.
func (s *Service) WarmFromStore() int {
	if s.cfg.Store == nil {
		return 0
	}
	entries := s.cfg.Store.EntriesByKind("result")
	if len(entries) > s.cache.max {
		entries = entries[:s.cache.max]
	}
	loaded := 0
	// Entries come newest-first; insert in reverse so the newest result
	// ends up most recently used and survives eviction the longest.
	for i := len(entries) - 1; i >= 0; i-- {
		payload, _, ok := s.cfg.Store.Get(entries[i].Key)
		if !ok {
			continue // quarantined between listing and read
		}
		s.cache.put(Key(entries[i].Key), string(payload))
		loaded++
	}
	if loaded > 0 {
		s.logger.Info("cache warmed from durable store", "entries", loaded)
	}
	return loaded
}

// Start launches the worker pool.
func (s *Service) Start() {
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
}

// Stop cancels running jobs, marks queued ones canceled and waits for
// the workers to exit or ctx to expire.
func (s *Service) Stop(ctx context.Context) error {
	s.mu.Lock()
	s.stopped = true
	s.mu.Unlock()
	s.sched.Close()
	s.stop()

	workersDone := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(workersDone)
	}()
	select {
	case <-workersDone:
	case <-ctx.Done():
		return ctx.Err()
	}

	// Workers are gone; anything still queued will never run.
	for _, j := range s.sched.Drain() {
		s.finish(j, StateCanceled, false, ErrStopped.Error())
	}
	return nil
}

// Submit validates and enqueues a request, returning the queued job's
// snapshot. A full queue fails fast with ErrQueueFull so the transport
// can tell clients to back off.
func (s *Service) Submit(req Request) (JobView, error) {
	return s.SubmitCtx(context.Background(), req)
}

// SubmitCtx is Submit with submission-scoped context: the job adopts
// ctx's trace id (obs.TraceID) so its logs and snapshot correlate with
// the HTTP request that created it. ctx does not bound the job's
// lifetime — cancellation still goes through Cancel or Stop.
//
// The request's tenant is canonicalized (empty means the anonymous
// default tenant), charged against its admission quota, and enqueued
// on its own weighted-fair queue. Quota rejections return a
// *QuotaError; backlog rejections return ErrQueueFull (global bound)
// or an error wrapping both ErrQueueFull and tenant.ErrTenantQueueFull
// (the tenant's own bound).
func (s *Service) SubmitCtx(ctx context.Context, req Request) (JobView, error) {
	if s.known != nil && !s.known[req.ID] {
		return JobView{}, fmt.Errorf("%w: %q", ErrUnknownExperiment, req.ID)
	}
	tid, err := tenant.Canonicalize(req.Tenant)
	if err != nil {
		return JobView{}, fmt.Errorf("%w: %v", ErrBadTenant, err)
	}
	req.Tenant = tid
	if retry, ok := s.limiter.Allow(tid); !ok {
		s.mu.Lock()
		s.quotaRejected++
		s.mu.Unlock()
		metQuotaRejected.With(tid).Inc()
		s.logger.Warn("job rejected: tenant over quota",
			"tenant", tid, "experiment", req.ID, "retry_after", retry,
			"trace_id", obs.TraceID(ctx))
		return JobView{}, &QuotaError{Tenant: tid, RetryAfter: retry}
	}

	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return JobView{}, ErrStopped
	}
	s.nextID++
	jctx, cancel := context.WithCancel(s.baseCtx)
	j := &job{
		id:        fmt.Sprintf("j%08d", s.nextID),
		req:       req,
		key:       CanonicalKey(req),
		traceID:   obs.TraceID(ctx),
		parent:    obs.ActiveSpan(ctx).SpanContext(),
		ctx:       jctx,
		cancel:    cancel,
		done:      make(chan struct{}),
		signal:    obs.NewSignal(),
		state:     StateQueued,
		submitted: time.Now(),
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.forgetOldLocked()
	s.submitted++
	s.mu.Unlock()

	if err := s.sched.Enqueue(tid, j); err != nil {
		s.mu.Lock()
		s.rejected++
		delete(s.jobs, j.id)
		s.mu.Unlock()
		cancel()
		metJobs.With("rejected").Inc()
		s.logger.Warn("job rejected: queue full",
			"tenant", tid, "experiment", req.ID, "error", err,
			"trace_id", obs.TraceID(ctx))
		switch {
		case errors.Is(err, tenant.ErrTenantQueueFull):
			// Satisfies errors.Is for both the global sentinel (every
			// 429 path) and the per-tenant one (so transports can hint
			// from this tenant's own backlog).
			return JobView{}, fmt.Errorf("tenant %q: %w (%w)", tid, tenant.ErrTenantQueueFull, ErrQueueFull)
		case errors.Is(err, tenant.ErrClosed):
			return JobView{}, ErrStopped
		default:
			return JobView{}, ErrQueueFull
		}
	}
	metJobs.With("submitted").Inc()
	metTenantJobs.With(tid).Inc()
	s.logger.Debug("job queued",
		"job_id", j.id, "tenant", tid, "experiment", j.req.ID, "trace_id", j.traceID)
	return s.snapshot(j), nil
}

// Job returns a snapshot by ID.
func (s *Service) Job(id string) (JobView, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobView{}, ErrNoSuchJob
	}
	return s.snapshot(j), nil
}

// Cancel cancels a job. Queued jobs flip to canceled immediately;
// running jobs have their context cancelled and reach the canceled
// state when the driver notices. Cancelling a terminal job is a no-op.
func (s *Service) Cancel(id string) (JobView, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return JobView{}, ErrNoSuchJob
	}
	if j.state == StateQueued {
		j.state = StateCanceled
		j.errMsg = "canceled before start"
		j.finished = time.Now()
		s.nCanceled++
		close(j.done)
	}
	s.mu.Unlock()
	j.cancel()
	j.signal.Raise()
	return s.snapshot(j), nil
}

// Wait blocks until the job reaches a terminal state or ctx expires.
func (s *Service) Wait(ctx context.Context, id string) (JobView, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobView{}, ErrNoSuchJob
	}
	select {
	case <-j.done:
		return s.snapshot(j), nil
	case <-ctx.Done():
		return s.snapshot(j), ctx.Err()
	}
}

// Watch streams snapshots of a job until it reaches a terminal state,
// the watcher's ctx ends, or the service stops. The returned channel
// is closed after the final (terminal) snapshot; intermediate
// snapshots are coalesced latest-wins, at most one per minInterval
// (0 means every update), so thousands of watchers cost one goroutine
// each and no polling anywhere. The first snapshot arrives
// immediately, and progress is monotonic across snapshots because the
// underlying tracker only counts up.
func (s *Service) Watch(ctx context.Context, id string, minInterval time.Duration) (<-chan JobView, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return nil, ErrNoSuchJob
	}
	ch := make(chan JobView, 1)
	go func() {
		defer close(ch)
		sub, cancelSub := j.signal.Subscribe()
		defer cancelSub()
		// send coalesces latest-wins into the 1-buffered channel: a
		// slow reader sees fewer, fresher snapshots, never stale ones.
		send := func(jv JobView) {
			for {
				select {
				case ch <- jv:
					return
				default:
					select {
					case <-ch:
					default:
					}
				}
			}
		}
		last := s.snapshot(j)
		send(last)
		for !last.State.Terminal() {
			select {
			case <-ctx.Done():
				return
			case <-s.baseCtx.Done():
				return
			case <-j.done:
			case <-sub:
				if minInterval > 0 {
					pause := time.NewTimer(minInterval)
					select {
					case <-ctx.Done():
						pause.Stop()
						return
					case <-j.done: // flush the terminal state promptly
						pause.Stop()
					case <-pause.C:
					}
				}
			}
			last = s.snapshot(j)
			send(last)
		}
	}()
	return ch, nil
}

// Result returns a completed report by cache key, falling through to
// the durable store — results computed before the last restart stay
// addressable even when the LRU has moved on.
func (s *Service) Result(key Key) (string, bool) {
	if val, ok := s.cache.get(key); ok {
		return val, true
	}
	if s.cache.load != nil {
		if val, ok := s.cache.load(key); ok {
			s.cache.put(key, val)
			return val, true
		}
	}
	return "", false
}

// Tenant snapshots one tenant's scheduler standing (backlog, running
// jobs, weight and the active-weight context), for per-tenant
// Retry-After hints and operator introspection.
func (s *Service) Tenant(id string) tenant.Snapshot {
	return s.sched.Tenant(id)
}

// Tenants lists scheduler snapshots for every tenant with queued or
// running work, sorted by id.
func (s *Service) Tenants() []tenant.Snapshot {
	return s.sched.Depths()
}

// Stats snapshots the service counters.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	st := Stats{
		Submitted:     s.submitted,
		Rejected:      s.rejected,
		QuotaRejected: s.quotaRejected,
		Done:          s.nDone,
		Failed:        s.nFailed,
		Canceled:      s.nCanceled,
		QueueCapacity: s.cfg.QueueDepth,
		Workers:       s.cfg.Workers,
		BusyWorkers:   s.busy,
	}
	if s.ranJobs > 0 {
		st.MeanJobSeconds = s.ranSeconds / float64(s.ranJobs)
	}
	s.mu.Unlock()
	st.QueueDepth = s.sched.Len()
	st.ActiveTenants = s.sched.Active()
	st.CacheEntries = s.cache.len()
	st.CacheHits = s.cache.stats.hits.Load()
	st.CacheDiskHits = s.cache.stats.diskHits.Load()
	st.CacheCoalesced = s.cache.stats.coalesced.Load()
	st.CacheMisses = s.cache.stats.misses.Load()
	st.CacheEvictions = s.cache.stats.evictions.Load()
	if looked := st.CacheHits + st.CacheMisses; looked > 0 {
		st.CacheHitRatio = float64(st.CacheHits) / float64(looked)
	}
	return st
}

func (s *Service) worker() {
	defer s.wg.Done()
	for {
		j, tid, schedWait, ok := s.sched.DequeueTimed(s.baseCtx)
		if !ok {
			return
		}
		s.mu.Lock()
		s.busy++
		s.mu.Unlock()
		s.run(j, schedWait)
		s.mu.Lock()
		s.busy--
		s.mu.Unlock()
		s.sched.Done(tid)
	}
}

// run executes one job through the single-flight cache, under a
// job-scoped logger, progress tracker and (when tracing) a job.run
// span backdated to submission. schedWait is the fair-queue portion of
// the job's queue wait, reported by the scheduler.
func (s *Service) run(j *job, schedWait time.Duration) {
	s.mu.Lock()
	if j.state != StateQueued { // cancelled while waiting
		s.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.started = time.Now()
	j.tracker = obs.NewTracker()
	s.mu.Unlock()
	j.signal.Raise()

	tid := j.req.Tenant
	logger := s.logger.With("job_id", j.id, "tenant", tid, "experiment", j.req.ID)
	if j.traceID != "" {
		logger = logger.With("trace_id", j.traceID)
	}
	ctx := obs.WithLogger(j.ctx, logger)
	ctx = obs.WithTraceID(ctx, j.traceID)
	if s.cfg.Recorder != nil {
		ctx = obs.WithRecorder(ctx, s.cfg.Recorder)
		if j.parent.TraceID != "" {
			ctx = obs.WithSpanParent(ctx, j.parent)
		}
	}
	ctx = obs.WithProgress(ctx, obs.NotifyProgress(j.tracker, j.signal))

	ctx, jobSpan := obs.StartSpan(ctx, "job.run")
	jobSpan.SetStart(j.submitted) // the job's story starts at submission
	jobSpan.SetAttr("job_id", j.id).SetAttr("tenant", tid).SetAttr("experiment", j.req.ID)
	if j.traceID == "" && jobSpan.Recording() {
		// Direct SubmitCtx callers may not carry a trace id; adopt the
		// span's so the job view and logs can name the recorded trace.
		s.mu.Lock()
		j.traceID = jobSpan.TraceID()
		s.mu.Unlock()
		logger = logger.With("trace_id", j.traceID)
	}

	wait := j.started.Sub(j.submitted)
	metQueueWait.Observe(wait.Seconds())
	metTenantQueueWait.With(tid).Observe(wait.Seconds())
	obs.RecordSpan(ctx, "queue.wait", j.submitted, j.started,
		obs.Attr{Key: "tenant", Value: tid},
		obs.Attr{Key: "sched_wait", Value: schedWait.String()})
	logger.Info("job started", "queue_wait", wait, "sched_wait", schedWait)

	val, hit, err := s.cache.do(ctx, j.key, func() (string, error) {
		dctx, span := obs.StartSpan(ctx, "driver.run")
		defer span.End()
		return s.runner(dctx, j.req)
	})
	if err == nil && !hit && s.cfg.Store != nil {
		// Write-through: a freshly computed result becomes durable before
		// the job is reported done. Persistence failure degrades to an
		// in-memory-only cache entry rather than failing the job.
		if perr := s.cfg.Store.Put(string(j.key), []byte(val), store.Meta{
			Kind: "result", Experiment: j.req.ID, Seed: j.req.Seed,
		}); perr != nil {
			logger.Warn("result not persisted", "error", perr)
		}
	}
	var st State
	var msg string
	switch {
	case err == nil:
		st = StateDone
	case j.ctx.Err() != nil:
		st, msg = StateCanceled, context.Cause(j.ctx).Error()
	default:
		st, msg = StateFailed, err.Error()
	}
	// End the job span before finish closes the done channel, so a
	// watcher that fetches the trace on completion sees it whole.
	jobSpan.SetAttr("state", string(st)).SetAttr("cache_hit", strconv.FormatBool(hit && st == StateDone))
	jobSpan.End()
	s.finish(j, st, hit && st == StateDone, msg)

	s.mu.Lock()
	state, errMsg, elapsed := j.state, j.errMsg, j.finished.Sub(j.started)
	traceID := j.traceID
	s.mu.Unlock()
	if s.cfg.Recorder != nil && s.cfg.SlowTrace > 0 && !hit &&
		elapsed >= s.cfg.SlowTrace && traceID != "" {
		if s.cfg.Recorder.Pin(traceID) {
			logger.Warn("slow job: trace pinned",
				"duration", elapsed, "threshold", s.cfg.SlowTrace)
		}
	}
	switch state {
	case StateDone:
		logger.Info("job done", "duration", elapsed, "cache_hit", hit)
	case StateCanceled:
		logger.Info("job canceled", "duration", elapsed, "cause", errMsg)
	default:
		logger.Error("job failed", "duration", elapsed, "error", errMsg)
	}
}

// finish moves a job to a terminal state exactly once.
func (s *Service) finish(j *job, st State, hit bool, msg string) {
	s.mu.Lock()
	if j.state.Terminal() {
		s.mu.Unlock()
		return
	}
	j.state = st
	j.cacheHit = hit
	j.errMsg = msg
	j.finished = time.Now()
	switch st {
	case StateDone:
		s.nDone++
	case StateFailed:
		s.nFailed++
	case StateCanceled:
		s.nCanceled++
	}
	metJobs.With(string(st)).Inc()
	if !j.started.IsZero() {
		d := j.finished.Sub(j.started).Seconds()
		metJobDuration.Observe(d)
		if !hit {
			s.ranSeconds += d
			s.ranJobs++
		}
	}
	close(j.done)
	s.mu.Unlock()
	j.cancel()
	j.signal.Raise()
}

// forgetOldLocked drops the oldest terminal jobs beyond the MaxJobs
// bound so the job table cannot grow without limit.
func (s *Service) forgetOldLocked() {
	if len(s.order) <= s.cfg.MaxJobs {
		return
	}
	kept := s.order[:0]
	excess := len(s.order) - s.cfg.MaxJobs
	for _, id := range s.order {
		j, ok := s.jobs[id]
		if excess > 0 && (!ok || j.state.Terminal()) {
			delete(s.jobs, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// snapshot copies a job into an immutable view. Progress appears once
// the job has reached a worker; a terminal snapshot freezes elapsed at
// the started→finished interval instead of the tracker's still-running
// clock.
func (s *Service) snapshot(j *job) JobView {
	s.mu.Lock()
	defer s.mu.Unlock()
	jv := JobView{
		ID:       j.id,
		Tenant:   j.req.Tenant,
		Request:  j.req,
		Key:      j.key,
		State:    j.state,
		CacheHit: j.cacheHit,
		Error:    j.errMsg,
		TraceID:  j.traceID,
		Queued:   j.submitted,
		Started:  j.started,
		Finished: j.finished,
	}
	if j.tracker != nil {
		snap := j.tracker.Snapshot()
		elapsed := snap.Elapsed
		if !j.finished.IsZero() {
			elapsed = j.finished.Sub(j.started)
		}
		jv.Progress = &ProgressInfo{
			DoneTrials:     snap.Done,
			TotalTrials:    snap.Total,
			ElapsedSeconds: elapsed.Seconds(),
		}
	}
	return jv
}
