package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestCanonicalKeyStableAcrossFieldOrder(t *testing.T) {
	a := Request{ID: "fig6a", Seed: 7, Quick: true,
		Params: map[string]string{"solver": "analytic", "samples": "20000"}}
	b := Request{Quick: true, Params: map[string]string{"samples": "20000", "solver": "analytic"},
		Seed: 7, ID: "fig6a"}
	if CanonicalKey(a) != CanonicalKey(b) {
		t.Error("literal field order changed the key")
	}

	// JSON field order must not matter either.
	var c, d Request
	if err := json.Unmarshal([]byte(`{"id":"fig6a","seed":7,"quick":true,"params":{"samples":"20000","solver":"analytic"}}`), &c); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(`{"params":{"solver":"analytic","samples":"20000"},"quick":true,"id":"fig6a","seed":7}`), &d); err != nil {
		t.Fatal(err)
	}
	if CanonicalKey(c) != CanonicalKey(a) || CanonicalKey(c) != CanonicalKey(d) {
		t.Error("JSON field order changed the key")
	}
}

func TestCanonicalKeySeparatesRequests(t *testing.T) {
	base := Request{ID: "fig6a", Seed: 1}
	for name, req := range map[string]Request{
		"different id":    {ID: "fig6b", Seed: 1},
		"different seed":  {ID: "fig6a", Seed: 2},
		"quick flag":      {ID: "fig6a", Seed: 1, Quick: true},
		"solver param":    {ID: "fig6a", Seed: 1, Params: map[string]string{"solver": "mc"}},
		"injection shape": {ID: "fig6a\nquick=true", Seed: 1},
	} {
		if CanonicalKey(req) == CanonicalKey(base) {
			t.Errorf("%s collided with the base key", name)
		}
	}
}

func TestCacheSingleFlight(t *testing.T) {
	c := newCache(16)
	var computations atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})

	compute := func() (string, error) {
		if computations.Add(1) == 1 {
			close(started)
		}
		<-release
		return "report", nil
	}

	const callers = 8
	results := make([]string, callers)
	hits := make([]bool, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, hit, err := c.do(context.Background(), Key("k"), compute)
			if err != nil {
				t.Error(err)
			}
			results[i], hits[i] = v, hit
		}(i)
	}
	<-started
	close(release)
	wg.Wait()

	if n := computations.Load(); n != 1 {
		t.Errorf("%d computations for %d identical concurrent requests, want 1", n, callers)
	}
	nHits := 0
	for i := range results {
		if results[i] != "report" {
			t.Errorf("caller %d got %q", i, results[i])
		}
		if hits[i] {
			nHits++
		}
	}
	if nHits != callers-1 {
		t.Errorf("%d callers coalesced, want %d", nHits, callers-1)
	}
}

func TestCacheFailureNotCached(t *testing.T) {
	c := newCache(16)
	boom := errors.New("boom")
	if _, _, err := c.do(context.Background(), Key("k"), func() (string, error) { return "", boom }); err != boom {
		t.Fatalf("err = %v", err)
	}
	if c.len() != 0 {
		t.Fatal("failed computation was cached")
	}
	v, hit, err := c.do(context.Background(), Key("k"), func() (string, error) { return "ok", nil })
	if err != nil || hit || v != "ok" {
		t.Errorf("retry after failure: v=%q hit=%v err=%v", v, hit, err)
	}
	if v, ok := c.get(Key("k")); !ok || v != "ok" {
		t.Error("successful retry not cached")
	}
}

func TestCacheWaiterRecomputesAfterComputerCancelled(t *testing.T) {
	c := newCache(16)
	computing := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup

	// First caller starts computing, then "gets cancelled" (fails).
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, err := c.do(context.Background(), Key("k"), func() (string, error) {
			close(computing)
			<-release
			return "", context.Canceled
		})
		if err != context.Canceled {
			t.Errorf("computer err = %v", err)
		}
	}()
	<-computing

	// Second caller waits on the flight, sees it fail, recomputes.
	wg.Add(1)
	var recomputed atomic.Bool
	go func() {
		defer wg.Done()
		v, hit, err := c.do(context.Background(), Key("k"), func() (string, error) {
			recomputed.Store(true)
			return "fresh", nil
		})
		if err != nil || v != "fresh" || hit {
			t.Errorf("waiter got v=%q hit=%v err=%v", v, hit, err)
		}
	}()
	close(release)
	wg.Wait()

	if !recomputed.Load() {
		t.Error("waiter did not recompute after the computer failed")
	}
	if v, ok := c.get(Key("k")); !ok || v != "fresh" {
		t.Error("recomputed value not cached")
	}
}

func TestCacheEvictionBound(t *testing.T) {
	c := newCache(4)
	for i := 0; i < 10; i++ {
		key := Key(fmt.Sprintf("k%d", i))
		if _, _, err := c.do(context.Background(), key, func() (string, error) {
			return fmt.Sprintf("v%d", i), nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if c.len() != 4 {
		t.Fatalf("cache holds %d entries, bound is 4", c.len())
	}
	if got := c.stats.evictions.Load(); got != 6 {
		t.Errorf("evictions = %d, want 6", got)
	}
	// Most recent four survive; the oldest are gone.
	for i := 0; i < 6; i++ {
		if _, ok := c.get(Key(fmt.Sprintf("k%d", i))); ok {
			t.Errorf("k%d should have been evicted", i)
		}
	}
	for i := 6; i < 10; i++ {
		if v, ok := c.get(Key(fmt.Sprintf("k%d", i))); !ok || v != fmt.Sprintf("v%d", i) {
			t.Errorf("k%d missing or wrong: %q %v", i, v, ok)
		}
	}
}

func TestCacheLRUTouchOnGet(t *testing.T) {
	c := newCache(2)
	mustDo := func(k, v string) {
		t.Helper()
		if _, _, err := c.do(context.Background(), Key(k), func() (string, error) { return v, nil }); err != nil {
			t.Fatal(err)
		}
	}
	mustDo("a", "1")
	mustDo("b", "2")
	c.get(Key("a")) // refresh a; b becomes the eviction candidate
	mustDo("c", "3")
	if _, ok := c.get(Key("b")); ok {
		t.Error("b should have been evicted")
	}
	if _, ok := c.get(Key("a")); !ok {
		t.Error("recently used a was evicted")
	}
}
