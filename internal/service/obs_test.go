package service

import (
	"context"
	"testing"
	"time"

	"repro/internal/obs"
)

func waitTerminal(t *testing.T, s *Service, id string) JobView {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	jv, err := s.Wait(ctx, id)
	if err != nil {
		t.Fatalf("Wait(%s): %v", id, err)
	}
	return jv
}

func TestStatsCacheHitRatio(t *testing.T) {
	s, err := New(Config{Workers: 1, Runner: func(ctx context.Context, req Request) (string, error) {
		return "r", nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Stop(context.Background())

	if got := s.Stats().CacheHitRatio; got != 0 {
		t.Fatalf("hit ratio before traffic = %v, want 0", got)
	}
	jv, err := s.Submit(Request{ID: "x", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, s, jv.ID)
	jv2, err := s.Submit(Request{ID: "x", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, s, jv2.ID)

	st := s.Stats()
	if st.CacheHits != 1 || st.CacheMisses != 1 {
		t.Fatalf("stats = %+v, want one hit and one miss", st)
	}
	if st.CacheHitRatio != 0.5 {
		t.Fatalf("hit ratio = %v, want 0.5", st.CacheHitRatio)
	}
}

func TestJobViewTimestampsAndProgress(t *testing.T) {
	s, err := New(Config{Workers: 1, Runner: func(ctx context.Context, req Request) (string, error) {
		p := obs.ProgressFrom(ctx)
		p.AddTotal(4)
		p.Add(4)
		return "r", nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Stop(context.Background())

	before := time.Now()
	jv, err := s.Submit(Request{ID: "x", Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if jv.Queued.Before(before.Add(-time.Second)) || jv.Queued.IsZero() {
		t.Fatalf("queued_at not recorded: %v", jv.Queued)
	}
	done := waitTerminal(t, s, jv.ID)
	if done.Started.IsZero() || done.Finished.IsZero() {
		t.Fatalf("terminal job missing timestamps: %+v", done)
	}
	if done.Started.Before(done.Queued) || done.Finished.Before(done.Started) {
		t.Fatalf("timestamps out of order: queued=%v started=%v finished=%v",
			done.Queued, done.Started, done.Finished)
	}
	if done.Progress == nil {
		t.Fatal("terminal job missing progress")
	}
	if done.Progress.DoneTrials != 4 || done.Progress.TotalTrials != 4 {
		t.Fatalf("progress = %+v, want 4/4", done.Progress)
	}
	if done.Progress.ElapsedSeconds < 0 {
		t.Fatalf("elapsed negative: %v", done.Progress.ElapsedSeconds)
	}
}

func TestSubmitCtxCarriesTraceID(t *testing.T) {
	gotTrace := make(chan string, 1)
	s, err := New(Config{Workers: 1, Runner: func(ctx context.Context, req Request) (string, error) {
		gotTrace <- obs.TraceID(ctx)
		return "r", nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Stop(context.Background())

	ctx := obs.WithTraceID(context.Background(), "deadbeef")
	jv, err := s.SubmitCtx(ctx, Request{ID: "x", Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if jv.TraceID != "deadbeef" {
		t.Fatalf("JobView trace id = %q", jv.TraceID)
	}
	waitTerminal(t, s, jv.ID)
	if trace := <-gotTrace; trace != "deadbeef" {
		t.Fatalf("runner ctx trace id = %q, want deadbeef", trace)
	}
}
