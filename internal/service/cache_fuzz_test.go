package service

import (
	"encoding/json"
	"strings"
	"testing"
)

// FuzzCanonicalKey pins the content-address invariant behind the result
// cache: the key depends only on the request's meaning, never on how
// its JSON was laid out. Two documents with the same fields in
// different orders, arbitrary whitespace, and params in any sequence
// must decode to requests with identical keys — and a request with a
// different seed must not collide.
func FuzzCanonicalKey(f *testing.F) {
	f.Add("fig6a", int64(1), true, "snr", "10", "bits", "64", " ")
	f.Add("table2", int64(-42), false, "a", "", "b", "x y", "\n\t ")
	f.Add("ext-coopber", int64(0), true, "k", "v", "k2", "v2", "  \t")
	f.Fuzz(func(t *testing.T, id string, seed int64, quick bool, p1k, p1v, p2k, p2v, ws string) {
		// JSON strings come from json.Marshal, so any input is legal;
		// only the whitespace filler must actually be whitespace.
		ws = sanitizeWS(ws)
		if p1k == p2k {
			// Duplicate JSON object keys are last-one-wins: reordering
			// them legitimately changes the decoded request.
			p2v = p1v
		}
		q := func(s string) string {
			b, _ := json.Marshal(s)
			return string(b)
		}
		seedJSON, _ := json.Marshal(seed)
		quickJSON, _ := json.Marshal(quick)

		docA := `{"id":` + q(id) + `,"seed":` + string(seedJSON) + `,"quick":` + string(quickJSON) +
			`,"params":{` + q(p1k) + `:` + q(p1v) + `,` + q(p2k) + `:` + q(p2v) + `}}`
		// Same request: reversed field order, reversed params, noisy
		// whitespace everywhere JSON allows it.
		docB := "{" + ws + `"params"` + ws + ":" + ws + "{" + ws + q(p2k) + ws + ":" + ws + q(p2v) +
			ws + "," + ws + q(p1k) + ws + ":" + ws + q(p1v) + ws + "}" + ws +
			"," + ws + `"quick"` + ws + ":" + ws + string(quickJSON) +
			"," + ws + `"seed"` + ws + ":" + ws + string(seedJSON) +
			"," + ws + `"id"` + ws + ":" + ws + q(id) + ws + "}"

		var a, b Request
		if err := json.Unmarshal([]byte(docA), &a); err != nil {
			t.Fatalf("docA did not parse: %v\n%s", err, docA)
		}
		if err := json.Unmarshal([]byte(docB), &b); err != nil {
			t.Fatalf("docB did not parse: %v\n%s", err, docB)
		}
		ka, kb := CanonicalKey(a), CanonicalKey(b)
		if ka != kb {
			t.Errorf("layout changed the key:\n%s -> %s\n%s -> %s", docA, ka, docB, kb)
		}

		// Sensitivity: the key must track meaning, not just ignore form.
		c := a
		c.Seed = a.Seed + 1
		if CanonicalKey(c) == ka {
			t.Errorf("seed change did not change the key (seed %d)", a.Seed)
		}
	})
}

// sanitizeWS maps arbitrary fuzz bytes onto legal JSON whitespace.
func sanitizeWS(s string) string {
	if s == "" {
		return ""
	}
	var b strings.Builder
	for _, r := range s {
		switch r % 4 {
		case 0:
			b.WriteByte(' ')
		case 1:
			b.WriteByte('\t')
		case 2:
			b.WriteByte('\n')
		case 3:
			b.WriteByte('\r')
		}
	}
	return b.String()
}

// TestCanonicalKeyParamOrderIrrelevant is the deterministic companion
// of the fuzz target, kept for plain `go test` runs.
func TestCanonicalKeyParamOrderIrrelevant(t *testing.T) {
	a := Request{ID: "fig7", Seed: 3, Quick: true, Params: map[string]string{"x": "1", "y": "2", "z": "3"}}
	b := Request{Params: map[string]string{"z": "3", "y": "2", "x": "1"}, Quick: true, Seed: 3, ID: "fig7"}
	if CanonicalKey(a) != CanonicalKey(b) {
		t.Fatal("param construction order changed the key")
	}
	// Workers is excluded by design: identical computation, same key.
	c := a
	c.Workers = 8
	if CanonicalKey(c) != CanonicalKey(a) {
		t.Fatal("Workers leaked into the cache key")
	}
}
