package service

import (
	"encoding/json"
	"strconv"
	"strings"
	"testing"
)

// FuzzCanonicalKey pins the content-address invariant behind the result
// cache: the key depends only on the request's meaning, never on how
// its JSON was laid out. Two documents with the same fields in
// different orders, arbitrary whitespace, and params in any sequence
// must decode to requests with identical keys — and a request with a
// different seed must not collide.
func FuzzCanonicalKey(f *testing.F) {
	f.Add("fig6a", int64(1), true, "snr", "10", "bits", "64", " ")
	f.Add("table2", int64(-42), false, "a", "", "b", "x y", "\n\t ")
	f.Add("ext-coopber", int64(0), true, "k", "v", "k2", "v2", "  \t")
	f.Fuzz(func(t *testing.T, id string, seed int64, quick bool, p1k, p1v, p2k, p2v, ws string) {
		// JSON strings come from json.Marshal, so any input is legal;
		// only the whitespace filler must actually be whitespace.
		ws = sanitizeWS(ws)
		q := func(s string) string {
			b, _ := json.Marshal(s)
			return string(b)
		}
		if q(p1k) == q(p2k) {
			// Duplicate JSON object keys are last-one-wins: reordering
			// them legitimately changes the decoded request. Compare the
			// marshaled forms — distinct raw strings can collide after
			// invalid UTF-8 is sanitized to U+FFFD.
			p2v = p1v
		}
		seedJSON, _ := json.Marshal(seed)
		quickJSON, _ := json.Marshal(quick)

		docA := `{"id":` + q(id) + `,"seed":` + string(seedJSON) + `,"quick":` + string(quickJSON) +
			`,"params":{` + q(p1k) + `:` + q(p1v) + `,` + q(p2k) + `:` + q(p2v) + `}}`
		// Same request: reversed field order, reversed params, noisy
		// whitespace everywhere JSON allows it.
		docB := "{" + ws + `"params"` + ws + ":" + ws + "{" + ws + q(p2k) + ws + ":" + ws + q(p2v) +
			ws + "," + ws + q(p1k) + ws + ":" + ws + q(p1v) + ws + "}" + ws +
			"," + ws + `"quick"` + ws + ":" + ws + string(quickJSON) +
			"," + ws + `"seed"` + ws + ":" + ws + string(seedJSON) +
			"," + ws + `"id"` + ws + ":" + ws + q(id) + ws + "}"

		var a, b Request
		if err := json.Unmarshal([]byte(docA), &a); err != nil {
			t.Fatalf("docA did not parse: %v\n%s", err, docA)
		}
		if err := json.Unmarshal([]byte(docB), &b); err != nil {
			t.Fatalf("docB did not parse: %v\n%s", err, docB)
		}
		ka, kb := CanonicalKey(a), CanonicalKey(b)
		if ka != kb {
			t.Errorf("layout changed the key:\n%s -> %s\n%s -> %s", docA, ka, docB, kb)
		}

		// Sensitivity: the key must track meaning, not just ignore form.
		c := a
		c.Seed = a.Seed + 1
		if CanonicalKey(c) == ka {
			t.Errorf("seed change did not change the key (seed %d)", a.Seed)
		}

		// Numeric canonicalization: respelling an integer-valued param as
		// a decimal, with whitespace padding, must not change the key.
		// Restricted to float64's exact-integer range — the ".0" spelling
		// goes through the float path, so beyond 2^53 the two spellings
		// legitimately diverge.
		respelled := Request{ID: a.ID, Seed: a.Seed, Quick: a.Quick,
			Params: make(map[string]string, len(a.Params))}
		changed := false
		for k, v := range a.Params {
			if i, err := strconv.ParseInt(strings.TrimSpace(v), 10, 64); err == nil &&
				i > -(1<<53) && i < 1<<53 {
				respelled.Params[k] = "  " + strconv.FormatInt(i, 10) + ".0\t"
				changed = true
			} else {
				respelled.Params[k] = v
			}
		}
		if changed && CanonicalKey(respelled) != ka {
			t.Errorf("numeric respelling changed the key: %v vs %v", a.Params, respelled.Params)
		}
	})
}

// sanitizeWS maps arbitrary fuzz bytes onto legal JSON whitespace.
func sanitizeWS(s string) string {
	if s == "" {
		return ""
	}
	var b strings.Builder
	for _, r := range s {
		switch r % 4 {
		case 0:
			b.WriteByte(' ')
		case 1:
			b.WriteByte('\t')
		case 2:
			b.WriteByte('\n')
		case 3:
			b.WriteByte('\r')
		}
	}
	return b.String()
}

// TestCanonicalKeyParamOrderIrrelevant is the deterministic companion
// of the fuzz target, kept for plain `go test` runs.
func TestCanonicalKeyParamOrderIrrelevant(t *testing.T) {
	a := Request{ID: "fig7", Seed: 3, Quick: true, Params: map[string]string{"x": "1", "y": "2", "z": "3"}}
	b := Request{Params: map[string]string{"z": "3", "y": "2", "x": "1"}, Quick: true, Seed: 3, ID: "fig7"}
	if CanonicalKey(a) != CanonicalKey(b) {
		t.Fatal("param construction order changed the key")
	}
	// Workers is excluded by design: identical computation, same key.
	c := a
	c.Workers = 8
	if CanonicalKey(c) != CanonicalKey(a) {
		t.Fatal("Workers leaked into the cache key")
	}
}

// TestCanonicalParamValueSpellings pins the numeric normalization:
// every spelling of one number shares a key, different numbers and
// non-numbers do not.
func TestCanonicalParamValueSpellings(t *testing.T) {
	key := func(v string) Key {
		return CanonicalKey(Request{ID: "fig7", Seed: 1, Params: map[string]string{"snr": v}})
	}
	base := key("10")
	for _, same := range []string{"10.0", " 10 ", "1e1", "+10", "10.000", "\t1.0e1\n", "0010"} {
		if key(same) != base {
			t.Errorf("spelling %q does not share a key with \"10\"", same)
		}
	}
	for _, diff := range []string{"10.5", "-10", "11", "1e10", "ten", "", "10x"} {
		if key(diff) == base {
			t.Errorf("value %q collided with \"10\"", diff)
		}
	}
	// Non-numeric values are trimmed but otherwise preserved.
	if key(" v1 ") != key("v1") {
		t.Error("whitespace around a text value changed the key")
	}
	if key("v1") == key("v2") {
		t.Error("distinct text values collided")
	}
	// NaN and infinities fall through to the text path, distinct from
	// each other and from real numbers.
	if key("NaN") == key("Inf") || key("NaN") == base {
		t.Error("NaN collapsed onto another value")
	}
	// Integers beyond float64 precision keep exact identity via the
	// int64/uint64 paths.
	big, bigger := "9007199254740993", "9007199254740994" // 2^53+1, 2^53+2
	if key(big) == key(bigger) {
		t.Error("adjacent big integers collided")
	}
	if key("18446744073709551615") == key("18446744073709551614") {
		t.Error("adjacent uint64 values collided")
	}
}
