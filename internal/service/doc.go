// Package service turns the blocking experiment drivers into a
// long-lived simulation service: a bounded job queue feeding a fixed
// worker pool, with a content-addressed, single-flight result cache in
// front of the computation. cmd/cogmimod exposes it over HTTP.
//
// # Job lifecycle
//
// Every submitted request becomes a Job that moves through exactly one
// of these paths:
//
//	queued ──► running ──► done
//	  │           │    └──► failed
//	  │           └───────► canceled   (job context cancelled mid-run)
//	  └───────────────────► canceled   (cancelled before a worker picked it up,
//	                                    or the service stopped while it waited)
//
// States are terminal once the job reaches done, failed or canceled;
// Wait unblocks at that instant. Cancellation is best-effort: drivers
// observe the job context between sweep points and runs, so a cancel
// that arrives after the last checkpoint loses the race — the
// computation completes, its result is cached, and the job finishes
// done. Submit rejects work with ErrQueueFull
// when the queue is at capacity — callers should back off and retry —
// and the HTTP layer translates that into 429 with a Retry-After hint.
//
// # Caching
//
// Results are keyed by a canonical SHA-256 over the request's
// experiment ID, seed, quick flag and solver parameters (sorted by
// name), so any field ordering or JSON formatting of the same logical
// request maps to the same Key. Identical concurrent requests are
// single-flighted: one worker computes while the rest wait on the same
// cache entry, and a computation that fails or is cancelled leaves no
// entry behind, so later requests recompute from scratch. Completed
// entries are bounded by an LRU eviction policy.
package service
