package service

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// blockingRunner returns a runner that signals when it starts and then
// holds its worker until the job context is cancelled or release closes.
func blockingRunner(started chan<- string, release <-chan struct{}) Runner {
	return func(ctx context.Context, req Request) (string, error) {
		select {
		case started <- req.ID:
		default:
		}
		select {
		case <-ctx.Done():
			return "", ctx.Err()
		case <-release:
			return "report:" + req.ID, nil
		}
	}
}

func startService(t *testing.T, cfg Config) *Service {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := s.Stop(ctx); err != nil {
			t.Errorf("Stop: %v", err)
		}
	})
	return s
}

func TestJobLifecycleDone(t *testing.T) {
	var runs atomic.Int64
	s := startService(t, Config{
		Workers: 2,
		Runner: func(ctx context.Context, req Request) (string, error) {
			runs.Add(1)
			return "== " + req.ID + " ==", nil
		},
	})
	jv, err := s.Submit(Request{ID: "fig6a", Seed: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if jv.State != StateQueued || jv.Key == "" {
		t.Fatalf("submitted job = %+v", jv)
	}
	done, err := s.Wait(context.Background(), jv.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done.State != StateDone || done.CacheHit {
		t.Fatalf("first run = %+v", done)
	}
	if v, ok := s.Result(done.Key); !ok || !strings.Contains(v, "fig6a") {
		t.Errorf("Result(%s) = %q, %v", done.Key, v, ok)
	}

	// The identical request again: served from cache, no second run.
	jv2, err := s.Submit(Request{ID: "fig6a", Seed: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	done2, err := s.Wait(context.Background(), jv2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done2.State != StateDone || !done2.CacheHit {
		t.Fatalf("second run = %+v", done2)
	}
	if done2.Key != done.Key {
		t.Errorf("keys differ: %s vs %s", done.Key, done2.Key)
	}
	if runs.Load() != 1 {
		t.Errorf("runner ran %d times, want 1", runs.Load())
	}
	st := s.Stats()
	if st.Done != 2 || st.CacheHits != 1 || st.CacheMisses != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestCancelRunningJobReleasesWorker(t *testing.T) {
	started := make(chan string, 1)
	release := make(chan struct{})
	defer close(release)
	s := startService(t, Config{Workers: 1, Runner: blockingRunner(started, release)})

	jv, err := s.Submit(Request{ID: "slow", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	<-started // the single worker is now pinned by this job
	if view, _ := s.Job(jv.ID); view.State != StateRunning {
		t.Fatalf("state = %s, want running", view.State)
	}
	if _, err := s.Cancel(jv.ID); err != nil {
		t.Fatal(err)
	}
	done, err := s.Wait(context.Background(), jv.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done.State != StateCanceled {
		t.Fatalf("state = %s, want canceled", done.State)
	}
	if _, ok := s.Result(done.Key); ok {
		t.Error("cancelled job left a cached result behind")
	}

	// The freed worker must still serve new jobs: run one to done.
	jv2, err := s.Submit(Request{ID: "fast", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("worker never picked up the next job after a cancel")
	}
	release <- struct{}{}
	if done2, err := s.Wait(context.Background(), jv2.ID); err != nil || done2.State != StateDone {
		t.Fatalf("post-cancel job = %+v, %v", done2, err)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	started := make(chan string, 1)
	release := make(chan struct{})
	defer close(release)
	s := startService(t, Config{Workers: 1, QueueDepth: 4, Runner: blockingRunner(started, release)})

	if _, err := s.Submit(Request{ID: "pin", Seed: 1}); err != nil {
		t.Fatal(err)
	}
	<-started
	queued, err := s.Submit(Request{ID: "victim", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	view, err := s.Cancel(queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if view.State != StateCanceled {
		t.Fatalf("state = %s, want canceled immediately", view.State)
	}
	// Idempotent on terminal jobs.
	if again, err := s.Cancel(queued.ID); err != nil || again.State != StateCanceled {
		t.Errorf("re-cancel = %+v, %v", again, err)
	}
}

func TestQueueFull(t *testing.T) {
	started := make(chan string, 1)
	release := make(chan struct{})
	defer close(release)
	s := startService(t, Config{Workers: 1, QueueDepth: 2, Runner: blockingRunner(started, release)})

	if _, err := s.Submit(Request{ID: "pin", Seed: 1}); err != nil {
		t.Fatal(err)
	}
	<-started
	for i := 0; i < 2; i++ {
		if _, err := s.Submit(Request{ID: "queued", Seed: int64(i)}); err != nil {
			t.Fatalf("fill %d: %v", i, err)
		}
	}
	if _, err := s.Submit(Request{ID: "overflow", Seed: 9}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	if st := s.Stats(); st.Rejected != 1 || st.QueueDepth != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestUnknownExperimentRejected(t *testing.T) {
	s := startService(t, Config{
		Workers:  1,
		Runner:   ExperimentRunner,
		KnownIDs: KnownExperimentIDs(),
	})
	if _, err := s.Submit(Request{ID: "fig99", Seed: 1}); !errors.Is(err, ErrUnknownExperiment) {
		t.Fatalf("err = %v, want ErrUnknownExperiment", err)
	}
	jv, err := s.Submit(Request{ID: "table1", Seed: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	done, err := s.Wait(context.Background(), jv.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done.State != StateDone {
		t.Fatalf("table1 = %+v", done)
	}
}

func TestConcurrentIdenticalSubmitsSingleFlight(t *testing.T) {
	var runs atomic.Int64
	gate := make(chan struct{})
	s := startService(t, Config{
		Workers: 4,
		Runner: func(ctx context.Context, req Request) (string, error) {
			runs.Add(1)
			<-gate
			return "r", nil
		},
	})
	ids := make([]string, 4)
	for i := range ids {
		jv, err := s.Submit(Request{ID: "same", Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = jv.ID
	}
	// Let all four workers pick the jobs up, then open the gate.
	time.Sleep(50 * time.Millisecond)
	close(gate)
	for _, id := range ids {
		done, err := s.Wait(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		if done.State != StateDone {
			t.Fatalf("job %s = %+v", id, done)
		}
	}
	if runs.Load() != 1 {
		t.Errorf("runner ran %d times for 4 identical jobs, want 1", runs.Load())
	}
}

func TestStopCancelsQueuedAndRunning(t *testing.T) {
	started := make(chan string, 1)
	release := make(chan struct{})
	defer close(release)
	s, err := New(Config{Workers: 1, QueueDepth: 4, Runner: blockingRunner(started, release)})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	running, err := s.Submit(Request{ID: "running", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	queued, err := s.Submit(Request{ID: "queued", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Stop(ctx); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{running.ID, queued.ID} {
		view, err := s.Job(id)
		if err != nil {
			t.Fatal(err)
		}
		if view.State != StateCanceled {
			t.Errorf("%s state = %s, want canceled", view.Request.ID, view.State)
		}
	}
	if _, err := s.Submit(Request{ID: "late", Seed: 1}); !errors.Is(err, ErrStopped) {
		t.Errorf("submit after stop: err = %v, want ErrStopped", err)
	}
}

func TestJobTableBounded(t *testing.T) {
	s := startService(t, Config{
		Workers: 2,
		MaxJobs: 8,
		Runner:  func(ctx context.Context, req Request) (string, error) { return "r", nil },
	})
	var last string
	for i := 0; i < 40; i++ {
		jv, err := s.Submit(Request{ID: "x", Seed: int64(i)})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Wait(context.Background(), jv.ID); err != nil {
			t.Fatal(err)
		}
		last = jv.ID
	}
	s.mu.Lock()
	n := len(s.jobs)
	s.mu.Unlock()
	if n > 9 { // MaxJobs plus at most the one in flight
		t.Errorf("job table holds %d entries, bound is 8", n)
	}
	if _, err := s.Job(last); err != nil {
		t.Errorf("latest job was forgotten: %v", err)
	}
}
