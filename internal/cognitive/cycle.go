// Package cognitive runs the interweave cognitive cycle end to end:
// primary users occupy channels following on/off Markov activity,
// secondary users periodically sense the band with cooperative energy
// detection, transmit frames on a channel fused as idle, and vacate at
// the next sensing epoch if the primary returns. This is the loop the
// paper's introduction ascribes to interweave systems — "sense and learn
// from the environment in a nonintrusive manner" — built from
// internal/sensing and the discrete-event engine.
package cognitive

import (
	"fmt"

	"repro/internal/mathx"
	"repro/internal/sensing"
	"repro/internal/sim"
)

// CycleConfig parameterises a cognitive-cycle run.
type CycleConfig struct {
	// Channels is the number of primary bands available.
	Channels int
	// MeanBusy and MeanIdle are the PU activity holding times (s).
	MeanBusy, MeanIdle float64
	// SensePeriod is the time between sensing epochs (s).
	SensePeriod float64
	// SenseSamples and TargetPfa size the per-SU energy detector.
	SenseSamples int
	TargetPfa    float64
	// Sensors cooperate with the given fusion rule.
	Sensors int
	Rule    sensing.FusionRule
	// PUSNR is the primary's per-sample SNR at the sensing SUs (linear).
	PUSNR float64
	// FrameTime is one secondary frame's airtime (s).
	FrameTime float64
	// Horizon is the simulated duration (s).
	Horizon float64
	// Blind disables sensing: the SU transmits on channel 0 regardless
	// (the no-cognition baseline).
	Blind bool
	// Seed drives everything.
	Seed int64
}

// Validate rejects unusable configurations.
func (c CycleConfig) Validate() error {
	switch {
	case c.Channels < 1:
		return fmt.Errorf("cognitive: need at least one channel, got %d", c.Channels)
	case c.MeanBusy <= 0 || c.MeanIdle <= 0:
		return fmt.Errorf("cognitive: holding times must be positive")
	case c.SensePeriod <= 0:
		return fmt.Errorf("cognitive: sense period must be positive")
	case c.FrameTime <= 0 || c.FrameTime > c.SensePeriod:
		return fmt.Errorf("cognitive: frame time %g must be in (0, sense period %g]", c.FrameTime, c.SensePeriod)
	case c.Horizon <= c.SensePeriod:
		return fmt.Errorf("cognitive: horizon %g must exceed the sense period", c.Horizon)
	case !c.Blind && (c.SenseSamples < 1 || c.Sensors < 1):
		return fmt.Errorf("cognitive: sensing needs samples and sensors")
	case !c.Blind && (c.TargetPfa <= 0 || c.TargetPfa >= 1):
		return fmt.Errorf("cognitive: target Pfa %g outside (0, 1)", c.TargetPfa)
	}
	return nil
}

// CycleResult summarises a run.
type CycleResult struct {
	// FramesSent counts secondary transmissions.
	FramesSent int
	// CollidedFrames were sent while the chosen channel's PU was
	// actually busy at the frame start — the harm the cycle exists to
	// avoid.
	CollidedFrames int
	// Epochs and IdleEpochs count sensing rounds and those where an
	// idle channel was found.
	Epochs, IdleEpochs int
	// Utilization is airtime fraction: FramesSent*FrameTime/Horizon.
	Utilization float64
	// CollisionRate is CollidedFrames/FramesSent (0 if none sent).
	CollisionRate float64
}

// Run executes the cycle.
func Run(cfg CycleConfig) (CycleResult, error) {
	if err := cfg.Validate(); err != nil {
		return CycleResult{}, err
	}
	rng := mathx.NewRand(cfg.Seed)
	var eng sim.Engine

	channels := make([]sensing.Channel, cfg.Channels)
	for i := range channels {
		act, err := sensing.NewPUActivity(&eng, rng, cfg.MeanBusy, cfg.MeanIdle)
		if err != nil {
			return CycleResult{}, err
		}
		channels[i] = sensing.Channel{Activity: act, SNR: cfg.PUSNR}
	}

	var selector sensing.ChannelSelector
	if !cfg.Blind {
		det, err := sensing.NewDetectorForPfa(cfg.SenseSamples, cfg.TargetPfa)
		if err != nil {
			return CycleResult{}, err
		}
		selector = sensing.ChannelSelector{Detector: det, Sensors: cfg.Sensors, Rule: cfg.Rule}
	}

	var res CycleResult
	framesPerEpoch := int(cfg.SensePeriod / cfg.FrameTime)

	var epoch func()
	epoch = func() {
		res.Epochs++
		chosen := -1
		if cfg.Blind {
			chosen = 0
		} else {
			idx, err := selector.Select(rng, channels)
			if err == nil {
				chosen = idx
			}
		}
		if chosen >= 0 {
			res.IdleEpochs++
			for f := 0; f < framesPerEpoch; f++ {
				ch := chosen
				eng.ScheduleAfter(float64(f)*cfg.FrameTime, func() {
					res.FramesSent++
					if channels[ch].Activity.Busy() {
						res.CollidedFrames++
					}
				})
			}
		}
		if eng.Now()+cfg.SensePeriod < cfg.Horizon {
			eng.ScheduleAfter(cfg.SensePeriod, epoch)
		}
	}
	eng.Schedule(0, epoch)
	eng.Run(cfg.Horizon)

	res.Utilization = float64(res.FramesSent) * cfg.FrameTime / cfg.Horizon
	if res.FramesSent > 0 {
		res.CollisionRate = float64(res.CollidedFrames) / float64(res.FramesSent)
	}
	return res, nil
}
