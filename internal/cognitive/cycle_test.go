package cognitive

import (
	"testing"

	"repro/internal/sensing"
)

func base() CycleConfig {
	return CycleConfig{
		Channels: 3,
		MeanBusy: 2, MeanIdle: 3,
		SensePeriod:  0.5,
		SenseSamples: 800, TargetPfa: 0.05,
		Sensors: 3, Rule: sensing.FusionOR,
		PUSNR:     0.5,
		FrameTime: 0.05,
		Horizon:   2000,
		Seed:      1,
	}
}

func TestValidate(t *testing.T) {
	if err := base().Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*CycleConfig){
		func(c *CycleConfig) { c.Channels = 0 },
		func(c *CycleConfig) { c.MeanBusy = 0 },
		func(c *CycleConfig) { c.SensePeriod = 0 },
		func(c *CycleConfig) { c.FrameTime = 0 },
		func(c *CycleConfig) { c.FrameTime = 1 }, // > sense period
		func(c *CycleConfig) { c.Horizon = 0.1 },
		func(c *CycleConfig) { c.SenseSamples = 0 },
		func(c *CycleConfig) { c.Sensors = 0 },
		func(c *CycleConfig) { c.TargetPfa = 0 },
	}
	for i, mutate := range cases {
		c := base()
		mutate(&c)
		if c.Validate() == nil {
			t.Errorf("case %d should fail", i)
		}
	}
	// Blind mode skips the sensing parameter checks.
	blind := base()
	blind.Blind = true
	blind.SenseSamples = 0
	blind.Sensors = 0
	if err := blind.Validate(); err != nil {
		t.Errorf("blind config should validate: %v", err)
	}
}

// TestSensingProtectsPrimary is the cycle's reason to exist: sensing
// slashes the fraction of secondary frames that land on a busy primary
// relative to blind transmission.
func TestSensingProtectsPrimary(t *testing.T) {
	sensed, err := Run(base())
	if err != nil {
		t.Fatal(err)
	}
	blind := base()
	blind.Blind = true
	blindRes, err := Run(blind)
	if err != nil {
		t.Fatal(err)
	}
	if sensed.FramesSent == 0 || blindRes.FramesSent == 0 {
		t.Fatalf("no traffic: sensed %d, blind %d", sensed.FramesSent, blindRes.FramesSent)
	}
	// Blind collisions track the PU duty cycle (2/5 = 0.4).
	if blindRes.CollisionRate < 0.3 || blindRes.CollisionRate > 0.5 {
		t.Errorf("blind collision rate %v, want ~0.4", blindRes.CollisionRate)
	}
	if sensed.CollisionRate > blindRes.CollisionRate/4 {
		t.Errorf("sensing should slash collisions: %v vs blind %v",
			sensed.CollisionRate, blindRes.CollisionRate)
	}
}

// TestMoreChannelsMoreThroughput: extra primary bands give the SU more
// idle opportunities.
func TestMoreChannelsMoreThroughput(t *testing.T) {
	one := base()
	one.Channels = 1
	oneRes, err := Run(one)
	if err != nil {
		t.Fatal(err)
	}
	four := base()
	four.Channels = 4
	fourRes, err := Run(four)
	if err != nil {
		t.Fatal(err)
	}
	if fourRes.Utilization <= oneRes.Utilization {
		t.Errorf("4 channels (%v) should beat 1 (%v)", fourRes.Utilization, oneRes.Utilization)
	}
}

func TestUtilizationBounds(t *testing.T) {
	r, err := Run(base())
	if err != nil {
		t.Fatal(err)
	}
	if r.Utilization <= 0 || r.Utilization > 1 {
		t.Errorf("utilization = %v", r.Utilization)
	}
	if r.IdleEpochs > r.Epochs {
		t.Errorf("idle epochs %d exceed epochs %d", r.IdleEpochs, r.Epochs)
	}
	if r.Epochs < int(base().Horizon/base().SensePeriod)-2 {
		t.Errorf("only %d epochs over the horizon", r.Epochs)
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Run(base())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(base())
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same seed diverged: %+v vs %+v", a, b)
	}
}

// TestConservativeFusionTradesThroughput: OR fusion protects the PU
// harder than majority but finds fewer transmit opportunities (its
// fused false-alarm rate is higher).
func TestConservativeFusionTradesThroughput(t *testing.T) {
	or := base()
	or.Rule = sensing.FusionOR
	orRes, err := Run(or)
	if err != nil {
		t.Fatal(err)
	}
	maj := base()
	maj.Rule = sensing.FusionMajority
	majRes, err := Run(maj)
	if err != nil {
		t.Fatal(err)
	}
	if majRes.Utilization < orRes.Utilization {
		t.Errorf("majority fusion (%v) should transmit at least as much as OR (%v)",
			majRes.Utilization, orRes.Utilization)
	}
	if orRes.CollisionRate > majRes.CollisionRate+0.02 {
		t.Errorf("OR (%v) should not collide more than majority (%v)",
			orRes.CollisionRate, majRes.CollisionRate)
	}
}
