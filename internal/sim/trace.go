package sim

import "fmt"

// StratumAlloc records how many chunks one stratum of a stratified
// adaptive run ended up executing. The stratified controller
// (internal/adaptive) fills these; plain adaptive runs leave the slice
// empty.
type StratumAlloc struct {
	Name   string `json:"name"`
	Chunks int    `json:"chunks"`
}

// PlanTrace is the realized chunk plan of an adaptive run: which chunk
// prefix of the MaxTrials budget actually executed, round by round. It
// is the replay contract — a trace plus the original (kernel, params,
// seed) reproduces the adaptive result bit-identically, because chunk
// seeds are prefix-stable and the fold order is the chunk order. Traces
// travel inside results and campaign checkpoints, so the encoding is
// part of the persistence format.
type PlanTrace struct {
	// ChunkSize pins the chunk decomposition the trace was recorded
	// under; replay on a binary with a different ChunkSize must refuse.
	ChunkSize int `json:"chunk_size"`
	// MaxTrials is the budget the adaptive run was allowed to spend.
	// Replay derives the chunk plan from it, so chunk seeds and lengths
	// match the adaptive run exactly.
	MaxTrials int `json:"max_trials"`
	// Trials is the realized spend: the trials covered by the executed
	// chunk prefix.
	Trials int `json:"trials"`
	// Stopped records whether the stopping rule fired (as opposed to
	// the budget running out first).
	Stopped bool `json:"stopped"`
	// Rounds holds the cumulative chunk count after each stopping-rule
	// evaluation; the last entry is the executed prefix length.
	Rounds []int `json:"rounds"`
	// Strata carries per-stratum chunk allocations for stratified runs.
	Strata []StratumAlloc `json:"strata,omitempty"`
}

// Chunks returns the executed chunk-prefix length.
func (t PlanTrace) Chunks() int {
	if len(t.Rounds) == 0 {
		return 0
	}
	return t.Rounds[len(t.Rounds)-1]
}

// Saved returns how many budgeted trials the run did not spend.
func (t PlanTrace) Saved() int { return t.MaxTrials - t.Trials }

// realizedTrials maps an executed chunk-prefix length back to trials
// under the budget's plan: every prefix chunk is full except possibly
// the budget's own final chunk.
func realizedTrials(maxTrials, chunks int) int {
	if n := chunks * ChunkSize; n < maxTrials {
		return n
	}
	return maxTrials
}

// Validate checks the trace's internal consistency and its
// compatibility with this binary's chunk decomposition. A trace that
// fails validation must never be replayed — it would silently produce
// different statistics.
func (t PlanTrace) Validate() error {
	if t.ChunkSize != ChunkSize {
		return fmt.Errorf("sim: trace chunk size %d, this binary uses %d", t.ChunkSize, ChunkSize)
	}
	if t.MaxTrials <= 0 {
		return fmt.Errorf("sim: trace budget %d trials", t.MaxTrials)
	}
	if len(t.Rounds) == 0 {
		return fmt.Errorf("sim: trace has no rounds")
	}
	prev := 0
	for i, r := range t.Rounds {
		if r <= prev {
			return fmt.Errorf("sim: trace round %d ends at chunk %d, not after previous end %d", i, r, prev)
		}
		prev = r
	}
	budgetChunks := Plan{Trials: t.MaxTrials}.Chunks()
	if prev > budgetChunks {
		return fmt.Errorf("sim: trace covers %d chunks, budget plan has only %d", prev, budgetChunks)
	}
	if len(t.Strata) > 0 {
		// Stratified trace: the chunk total decomposes across strata,
		// each stratum a prefix of its own budget-sized plan.
		sum, trials := 0, 0
		for i, s := range t.Strata {
			if s.Chunks < 0 {
				return fmt.Errorf("sim: trace stratum %d has %d chunks", i, s.Chunks)
			}
			sum += s.Chunks
			trials += realizedTrials(t.MaxTrials, s.Chunks)
		}
		if sum != prev {
			return fmt.Errorf("sim: trace strata cover %d chunks, rounds end at %d", sum, prev)
		}
		if t.Trials != trials {
			return fmt.Errorf("sim: trace records %d trials, strata cover %d", t.Trials, trials)
		}
		return nil
	}
	if want := realizedTrials(t.MaxTrials, prev); t.Trials != want {
		return fmt.Errorf("sim: trace records %d trials, %d chunks cover %d", t.Trials, prev, want)
	}
	return nil
}
