package sim

import (
	"context"
	"fmt"
	"strconv"

	"repro/internal/mathx"
	"repro/internal/obs"
)

// mcTrialsSaved counts budgeted trials adaptive runs did not have to
// spend because their stopping rule fired early.
var mcTrialsSaved = obs.Default.Counter("cogmimod_mc_trials_saved_total",
	"Monte-Carlo trials saved by adaptive early stopping, summed over all runs.")

// A StopRule decides, from the statistics of the chunk prefix executed
// so far, whether an adaptive run has met its accuracy target. It is
// consulted only at chunk boundaries — between rounds, on the merged
// prefix — so the chunk-seeded determinism contract is untouched: the
// rule chooses how many chunks run, never what any chunk computes.
// Implementations must be pure functions of the prefix statistics; that
// is what makes a recorded PlanTrace replayable.
type StopRule interface {
	Done(prefix mathx.Running) bool
}

// A RangeExecutor computes one contiguous chunk range of a run
// somewhere and returns the per-chunk partials indexed from lo. It is
// the round-granular counterpart of Executor: adaptive runs issue one
// range per stopping round, fold, and decide the next round, so an
// executor that also implements RangeExecutor (internal/cluster's
// Coordinator, internal/campaign's checkpoint executor) has each round
// routed through it. Implementations must report completed trials via
// the context's progress sink but must NOT grow the progress total —
// the adaptive driver accounts the budget.
type RangeExecutor interface {
	RunChunkRange(ctx context.Context, run KernelRun, lo, hi int) ([]mathx.Running, error)
}

// A TraceSink receives the realized PlanTrace of an adaptive run. An
// executor that implements it (the campaign checkpoint executor does)
// gets every adaptive run's trace handed over for persistence the
// moment the run completes.
type TraceSink interface {
	RecordPlanTrace(run KernelRun, trace PlanTrace)
}

// AdaptiveResult pairs the statistics of an adaptive run with the
// realized chunk plan that produced them.
type AdaptiveResult struct {
	Stats mathx.Running
	Trace PlanTrace
}

// adaptiveRound is the growth schedule of the stopping rounds: the
// cumulative chunk target doubles each round (1, 2, 4, ...), so a run
// that stops early has spent at most 2x the minimum prefix that meets
// the target, while a run that exhausts the budget pays only
// O(log chunks) stopping evaluations.
func adaptiveRound(prev, chunks int) int {
	next := prev * 2
	if prev == 0 {
		next = 1
	}
	if next > chunks {
		next = chunks
	}
	return next
}

// RunAdaptiveCtx executes a registered kernel under a trial budget with
// sequential stopping: chunks run in rounds of doubling size, the
// merged chunk-prefix statistics are handed to stop at every round
// boundary, and the run ends as soon as the rule reports done (or the
// budget is exhausted). The executed prefix is exactly a prefix of the
// budget's Plan — same chunk seeds, same chunk lengths, same fold
// order — so the result for a given realized chunk count is
// bit-identical to a fixed run of that prefix, and the returned
// PlanTrace makes the realized count reproducible (RunTraceCtx).
//
// When ctx carries an Executor that implements RangeExecutor, each
// round's chunk range is delegated to it; otherwise rounds run on the
// local pool. Progress accounting: the full budget is reported up
// front (the honest expectation until the rule fires) and shrunk by
// the saved trials at stop, keeping done <= total throughout. A nil
// stop degenerates to a fixed-budget run with round-boundary
// bookkeeping.
func (mc MonteCarlo) RunAdaptiveCtx(ctx context.Context, kernel string, params map[string]float64, maxTrials int, stop StopRule) (AdaptiveResult, error) {
	plan := Plan{Seed: mc.Seed, Trials: maxTrials}
	chunks := plan.Chunks()
	if chunks == 0 {
		return AdaptiveResult{}, fmt.Errorf("sim: adaptive run needs a positive trial budget, got %d", maxTrials)
	}
	run := KernelRun{Kernel: kernel, Params: params, Seed: mc.Seed, Trials: maxTrials}
	// Build the batch up front even when an executor will do the work:
	// parameter errors must surface before any round is dispatched.
	if _, err := NewKernelBatch(kernel, params); err != nil {
		return AdaptiveResult{}, err
	}

	ctx, span := obs.StartSpan(ctx, "mc.adaptive")
	span.SetAttr("kernel", kernel).SetAttr("max_trials", strconv.Itoa(maxTrials))
	defer span.End()

	progress := obs.ProgressFrom(ctx)
	progress.AddTotal(int64(maxTrials))

	trace := PlanTrace{ChunkSize: ChunkSize, MaxTrials: maxTrials}
	var prefix mathx.Running
	lo := 0
	for lo < chunks {
		hi := adaptiveRound(lo, chunks)
		parts, err := mc.runRange(ctx, run, lo, hi)
		if err != nil {
			return AdaptiveResult{}, err
		}
		// Incremental fold in chunk order: the same left-to-right merge
		// sequence a fixed run of this prefix performs.
		for _, p := range parts {
			prefix.Merge(p)
		}
		trace.Rounds = append(trace.Rounds, hi)
		lo = hi
		if stop != nil && stop.Done(prefix) {
			trace.Stopped = true
			break
		}
	}
	trace.Trials = realizedTrials(maxTrials, lo)
	if saved := trace.Saved(); saved > 0 {
		progress.AddTotal(-int64(saved))
		mcTrialsSaved.Add(int64(saved))
	}
	span.SetAttr("trials", strconv.Itoa(trace.Trials)).
		SetAttr("rounds", strconv.Itoa(len(trace.Rounds)))

	if ts, ok := ExecutorFrom(ctx).(TraceSink); ok {
		ts.RecordPlanTrace(run, trace)
	}
	return AdaptiveResult{Stats: prefix, Trace: trace}, nil
}

// RunTraceCtx replays a recorded PlanTrace: it executes exactly the
// traced rounds of the original budget's Plan, with no stopping-rule
// evaluation, and returns statistics bit-identical to the adaptive run
// that recorded the trace. The MonteCarlo seed must be the one the
// trace was recorded under — the trace pins the chunk counts, the seed
// pins the chunk streams. Progress reports the realized trials only.
func (mc MonteCarlo) RunTraceCtx(ctx context.Context, kernel string, params map[string]float64, trace PlanTrace) (AdaptiveResult, error) {
	if err := trace.Validate(); err != nil {
		return AdaptiveResult{}, err
	}
	// Trials = MaxTrials reconstructs the original plan: chunk seeds and
	// the final chunk's length depend on the budget, not the spend.
	run := KernelRun{Kernel: kernel, Params: params, Seed: mc.Seed, Trials: trace.MaxTrials}
	if _, err := NewKernelBatch(kernel, params); err != nil {
		return AdaptiveResult{}, err
	}

	ctx, span := obs.StartSpan(ctx, "mc.replay")
	span.SetAttr("kernel", kernel).SetAttr("trials", strconv.Itoa(trace.Trials))
	defer span.End()

	progress := obs.ProgressFrom(ctx)
	progress.AddTotal(int64(trace.Trials))

	var prefix mathx.Running
	lo := 0
	for _, hi := range trace.Rounds {
		parts, err := mc.runRange(ctx, run, lo, hi)
		if err != nil {
			return AdaptiveResult{}, err
		}
		for _, p := range parts {
			prefix.Merge(p)
		}
		lo = hi
	}
	return AdaptiveResult{Stats: prefix, Trace: trace}, nil
}

// runRange executes chunks [lo, hi) of run: through the context's
// RangeExecutor when one is attached, on the local pool otherwise.
// Both paths return per-chunk partials indexed from lo, so the caller's
// fold is executor-independent.
func (mc MonteCarlo) runRange(ctx context.Context, run KernelRun, lo, hi int) ([]mathx.Running, error) {
	if re, ok := ExecutorFrom(ctx).(RangeExecutor); ok {
		parts, err := re.RunChunkRange(ctx, run, lo, hi)
		if err != nil {
			return nil, err
		}
		if len(parts) != hi-lo {
			return nil, fmt.Errorf("sim: range executor returned %d chunk partials for [%d, %d)", len(parts), lo, hi)
		}
		return parts, nil
	}
	return mc.RunKernelChunksCtx(ctx, run.Kernel, run.Params, run.Trials, lo, hi)
}
