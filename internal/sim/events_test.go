package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	var e Engine
	var got []float64
	for _, tm := range []float64{3, 1, 2, 5, 4} {
		tm := tm
		e.Schedule(tm, func() { got = append(got, tm) })
	}
	if n := e.RunAll(); n != 5 {
		t.Fatalf("fired %d events", n)
	}
	if !sort.Float64sAreSorted(got) {
		t.Errorf("events out of order: %v", got)
	}
	if e.Now() != 5 {
		t.Errorf("Now = %v", e.Now())
	}
	if e.Steps() != 5 {
		t.Errorf("Steps = %v", e.Steps())
	}
}

func TestEngineFIFOAtEqualTimes(t *testing.T) {
	var e Engine
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(1, func() { got = append(got, i) })
	}
	e.RunAll()
	for i, v := range got {
		if v != i {
			t.Fatalf("equal-time events not FIFO: %v", got)
		}
	}
}

func TestEngineScheduleDuringRun(t *testing.T) {
	var e Engine
	var order []string
	e.Schedule(1, func() {
		order = append(order, "a")
		e.ScheduleAfter(0.5, func() { order = append(order, "b") })
	})
	e.Schedule(2, func() { order = append(order, "c") })
	e.RunAll()
	want := []string{"a", "b", "c"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestEngineCancel(t *testing.T) {
	var e Engine
	fired := false
	ev := e.Schedule(1, func() { fired = true })
	e.Schedule(2, func() {})
	e.Cancel(ev)
	if !ev.Cancelled() {
		t.Error("event should report cancelled")
	}
	e.Cancel(ev) // double cancel is a no-op
	e.Cancel(nil)
	e.RunAll()
	if fired {
		t.Error("cancelled event fired")
	}
	if e.Now() != 2 {
		t.Errorf("Now = %v", e.Now())
	}
}

func TestEngineRunUntil(t *testing.T) {
	var e Engine
	var got []float64
	for _, tm := range []float64{1, 2, 3, 4} {
		tm := tm
		e.Schedule(tm, func() { got = append(got, tm) })
	}
	if n := e.Run(2.5); n != 2 {
		t.Errorf("fired %d, want 2", n)
	}
	if e.Pending() != 2 {
		t.Errorf("pending %d, want 2", e.Pending())
	}
	// Empty queue advances clock to the horizon.
	e.RunAll()
	e.Run(10)
	if e.Now() != 10 {
		t.Errorf("Now = %v, want 10", e.Now())
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	var e Engine
	e.Schedule(5, func() {})
	e.RunAll()
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past should panic")
		}
	}()
	e.Schedule(1, func() {})
}

func TestEngineStepEmpty(t *testing.T) {
	var e Engine
	if e.Step() {
		t.Error("Step on empty queue should return false")
	}
}

func TestEngineRandomisedHeapProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var e Engine
		var got []float64
		n := 1 + rng.Intn(64)
		events := make([]*Event, 0, n)
		for i := 0; i < n; i++ {
			tm := rng.Float64() * 100
			events = append(events, e.Schedule(tm, func() { got = append(got, tm) }))
		}
		// Cancel a random subset; cancelled events must not fire.
		for _, ev := range events {
			if rng.Intn(4) == 0 {
				e.Cancel(ev)
			}
		}
		e.RunAll()
		return sort.Float64sAreSorted(got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
