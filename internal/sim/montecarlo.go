package sim

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/mathx"
	"repro/internal/obs"
)

// mcTrials counts every completed Monte-Carlo trial process-wide; the
// cogmimod prefix is the stack's metric namespace (cmd/cogmimod serves
// the registry, but cogsim runs feed the same counter).
var mcTrials = obs.Default.Counter("cogmimod_mc_trials_total",
	"Monte-Carlo trials completed, summed over all runs.")

// MonteCarlo distributes independent trials over a worker pool.
//
// Reproducibility contract: the trial set is split into fixed-size chunks;
// chunk i is always driven by the i-th seed derived from Seed via
// splitmix64, and per-chunk results are merged in chunk order. Any Workers
// value therefore yields bit-identical statistics.
type MonteCarlo struct {
	// Seed is the master seed all chunk streams derive from.
	Seed int64
	// Workers caps the pool size; 0 means GOMAXPROCS.
	Workers int
}

// RunMean executes trials calls of trial, each with a chunk-local PRNG,
// and returns merged streaming statistics of the returned values.
func (mc MonteCarlo) RunMean(trials int, trial func(rng *rand.Rand) float64) mathx.Running {
	r, _ := mc.RunMeanCtx(context.Background(), trials, trial)
	return r
}

// RunMeanCtx is RunMean with cancellation: workers stop claiming chunks
// once ctx is done and the statistics of every chunk that did complete
// merge in chunk order, so the partial result is still deterministic for
// a given set of completed chunks. The returned error is ctx.Err() when
// the run was cut short and nil when it ran to completion.
func (mc MonteCarlo) RunMeanCtx(ctx context.Context, trials int, trial func(rng *rand.Rand) float64) (mathx.Running, error) {
	parts, done, err := runChunks(mc, ctx, trials, func(rng *rand.Rand, n int) mathx.Running {
		var acc mathx.Running
		for i := 0; i < n; i++ {
			acc.Add(trial(rng))
		}
		return acc
	})
	return mergeDone(parts, done), err
}

// RunCount executes trials calls of trial and returns how many returned
// true, e.g. bit errors out of bits sent.
func (mc MonteCarlo) RunCount(trials int, trial func(rng *rand.Rand) bool) int64 {
	n, _ := mc.RunCountCtx(context.Background(), trials, trial)
	return n
}

// RunCountCtx is RunCount with cancellation; see RunMeanCtx for the
// partial-result contract. Chunks accumulate exact integer counts, so no
// floating-point rounding can ever perturb the total.
func (mc MonteCarlo) RunCountCtx(ctx context.Context, trials int, trial func(rng *rand.Rand) bool) (int64, error) {
	parts, done, err := runChunks(mc, ctx, trials, func(rng *rand.Rand, n int) int64 {
		var hits int64
		for i := 0; i < n; i++ {
			if trial(rng) {
				hits++
			}
		}
		return hits
	})
	var total int64
	for c, p := range parts {
		if done[c] {
			total += p
		}
	}
	return total, err
}

// RunBatches partitions trials into chunks and hands each chunk's size to
// batch, so trial loops that amortise setup (e.g. drawing one channel
// matrix and sending many symbols through it) can run without per-trial
// overhead. Batch results merge in chunk order.
func (mc MonteCarlo) RunBatches(trials int, batch func(rng *rand.Rand, n int) mathx.Running) mathx.Running {
	r, _ := mc.RunBatchesCtx(context.Background(), trials, batch)
	return r
}

// RunBatchesCtx is RunBatches with cancellation; see RunMeanCtx for the
// partial-result contract.
func (mc MonteCarlo) RunBatchesCtx(ctx context.Context, trials int, batch func(rng *rand.Rand, n int) mathx.Running) (mathx.Running, error) {
	parts, done, err := runChunks(mc, ctx, trials, batch)
	return mergeDone(parts, done), err
}

// RunBatchesScratch is RunBatches with a per-worker scratch workspace:
// newScratch runs once per worker goroutine and its value is handed to
// every batch that worker executes, so batches can reuse preallocated
// buffers (e.g. a coop.Workspace) without any cross-goroutine sharing.
// Chunk seeding and merge order are unchanged: results are bit-identical
// to RunBatches whenever batch consumes the same rng stream.
func RunBatchesScratch[S any](mc MonteCarlo, trials int, newScratch func() S, batch func(scratch S, rng *rand.Rand, n int) mathx.Running) mathx.Running {
	r, _ := RunBatchesScratchCtx(mc, context.Background(), trials, newScratch, batch)
	return r
}

// RunBatchesScratchCtx is RunBatchesScratch with cancellation; see
// RunMeanCtx for the partial-result contract.
func RunBatchesScratchCtx[S any](mc MonteCarlo, ctx context.Context, trials int, newScratch func() S, batch func(scratch S, rng *rand.Rand, n int) mathx.Running) (mathx.Running, error) {
	parts, done, err := runChunksScratch(mc, ctx, trials, newScratch, batch)
	return mergeDone(parts, done), err
}

// mergeDone folds the completed chunks in chunk order, skipping the ones
// a cancellation left unrun.
func mergeDone(parts []mathx.Running, done []bool) mathx.Running {
	var total mathx.Running
	for c, p := range parts {
		if done[c] {
			total.Merge(p)
		}
	}
	return total
}

// runChunks fans the chunk list out to the worker pool and returns the
// per-chunk results indexed by chunk, plus a mask of which chunks ran.
// Cancellation is observed between chunks — never inside one — so a
// chunk is either absent or bit-identical to what an uncancelled run
// produces: chunk i always draws from the i-th derived seed and the
// derivation is a sequential splitmix64 walk, making seed prefixes
// independent of the total chunk count.
//
// Completed trials are reported per chunk to the context's progress
// sink (obs.ProgressFrom) and to the cogmimod_mc_trials_total counter;
// each chunk is also timed as an "mc.chunk" span. None of this touches
// the trial math, so instrumented runs stay bit-identical.
func runChunks[T any](mc MonteCarlo, ctx context.Context, trials int, batch func(rng *rand.Rand, n int) T) ([]T, []bool, error) {
	return runChunksScratch(mc, ctx, trials,
		func() struct{} { return struct{}{} },
		func(_ struct{}, rng *rand.Rand, n int) T { return batch(rng, n) })
}

// runChunksScratch is the chunk pool shared by every run mode. Each
// worker goroutine builds one scratch value and one reusable rng; chunk
// c reseeds that rng to the c-th derived seed, which yields exactly the
// stream a freshly allocated generator would, so worker-local reuse
// never changes the statistics.
func runChunksScratch[S, T any](mc MonteCarlo, ctx context.Context, trials int, newScratch func() S, batch func(scratch S, rng *rand.Rand, n int) T) ([]T, []bool, error) {
	if trials <= 0 {
		return nil, nil, ctx.Err()
	}
	plan := Plan{Seed: mc.Seed, Trials: trials}
	chunks := plan.Chunks()
	seeds := plan.Seeds()
	parts := make([]T, chunks)
	done := make([]bool, chunks)

	progress := obs.ProgressFrom(ctx)
	progress.AddTotal(int64(trials))

	workers := mc.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > chunks {
		workers = chunks
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			scratch := newScratch()
			rng := mathx.NewReusableRand()
			for ctx.Err() == nil {
				c := int(next.Add(1)) - 1
				if c >= chunks {
					return
				}
				n := plan.ChunkTrials(c)
				rng.Reseed(seeds[c])
				_, span := obs.StartSpan(ctx, "mc.chunk")
				if span.Recording() {
					span.SetAttr("chunk", strconv.Itoa(c))
				}
				parts[c] = batch(scratch, rng.Rand, n)
				span.End()
				done[c] = true
				mcTrials.Add(int64(n))
				progress.Add(int64(n))
			}
		}()
	}
	wg.Wait()
	return parts, done, ctx.Err()
}

// RunChunkRangeCtx executes only chunks [lo, hi) of the run's Plan and
// returns their per-chunk partials indexed from lo. It is the worker
// side of the distributed executor: a shard covers a contiguous chunk
// range, each chunk is driven by exactly the seed the full local run
// would use, and the caller merges partials back in global chunk order.
// An incomplete range (cancellation) returns the context error and no
// partials — a shard is all-or-nothing, so a retried or re-assigned
// shard can never double-count chunks.
func (mc MonteCarlo) RunChunkRangeCtx(ctx context.Context, trials, lo, hi int, batch func(rng *rand.Rand, n int) mathx.Running) ([]mathx.Running, error) {
	plan := Plan{Seed: mc.Seed, Trials: trials}
	chunks := plan.Chunks()
	if lo < 0 || hi > chunks || lo >= hi {
		return nil, fmt.Errorf("sim: chunk range [%d, %d) outside plan of %d chunks", lo, hi, chunks)
	}
	seeds := plan.Seeds()
	parts := make([]mathx.Running, hi-lo)
	done := make([]bool, hi-lo)

	progress := obs.ProgressFrom(ctx)

	workers := mc.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > hi-lo {
		workers = hi - lo
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := mathx.NewReusableRand()
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= hi-lo {
					return
				}
				c := lo + i
				n := plan.ChunkTrials(c)
				rng.Reseed(seeds[c])
				_, span := obs.StartSpan(ctx, "mc.chunk")
				if span.Recording() {
					span.SetAttr("chunk", strconv.Itoa(c))
				}
				parts[i] = batch(rng.Rand, n)
				span.End()
				done[i] = true
				mcTrials.Add(int64(n))
				progress.Add(int64(n))
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, ok := range done {
		if !ok {
			return nil, context.Canceled
		}
	}
	return parts, nil
}
