package sim

import (
	"math/rand"
	"testing"

	"repro/internal/mathx"
)

// TestRunBatchesScratchMatchesRunBatches checks the per-worker scratch
// path against the plain one for several worker counts: chunk seeding
// and merge order are shared, so rng-equivalent batches must agree bit
// for bit.
func TestRunBatchesScratchMatchesRunBatches(t *testing.T) {
	const trials = 10000
	batch := func(rng *rand.Rand, n int) mathx.Running {
		var acc mathx.Running
		for i := 0; i < n; i++ {
			acc.Add(rng.NormFloat64())
		}
		return acc
	}
	want := MonteCarlo{Seed: 9}.RunBatches(trials, batch)
	for _, workers := range []int{1, 2, 5} {
		mc := MonteCarlo{Seed: 9, Workers: workers}
		got := RunBatchesScratch(mc, trials,
			func() []float64 { return make([]float64, 16) },
			func(scratch []float64, rng *rand.Rand, n int) mathx.Running {
				var acc mathx.Running
				for i := 0; i < n; i++ {
					scratch[i%len(scratch)] = rng.NormFloat64()
					acc.Add(scratch[i%len(scratch)])
				}
				return acc
			})
		if got != want {
			t.Errorf("workers=%d: scratch path = %+v, plain = %+v", workers, got, want)
		}
	}
}

// TestRunCountExact checks the counting path returns exact integers:
// a known deterministic pattern must be counted without any rounding,
// including across the chunk boundary.
func TestRunCountExact(t *testing.T) {
	const trials = chunkSize*3 + 17
	for _, workers := range []int{1, 4} {
		mc := MonteCarlo{Seed: 5, Workers: workers}
		var want int64
		for c := 0; c < 4; c++ {
			n := chunkSize
			if c == 3 {
				n = 17
			}
			rng := mathx.NewRand(mathx.DeriveSeeds(5, 4)[c])
			for i := 0; i < n; i++ {
				if rng.Float64() < 0.3 {
					want++
				}
			}
		}
		got := mc.RunCount(trials, func(rng *rand.Rand) bool { return rng.Float64() < 0.3 })
		if got != want {
			t.Errorf("workers=%d: RunCount = %d, want %d", workers, got, want)
		}
	}
}
