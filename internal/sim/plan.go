package sim

import "repro/internal/mathx"

// ChunkSize is the number of trials served by one PRNG stream. Chunks —
// not workers — own random streams, which is what makes a run independent
// of the worker count: chunk i always uses the i-th derived seed and
// always covers the same trial indices, so parallelism changes wall-clock
// time but never the answer. The constant is part of the distributed
// protocol: a coordinator and its workers must agree on it, so shard
// requests carry it and workers reject a mismatch.
const ChunkSize = 2048

// chunkSize is the package-internal alias predating the exported name.
const chunkSize = ChunkSize

// Plan is the chunk decomposition of one Monte-Carlo run: the single
// source of truth for how a (seed, trials) pair maps onto chunk seeds
// and chunk lengths. Both the local worker pool (runChunksScratch) and
// the distributed shard executor (internal/cluster) derive their work
// from the same Plan, which is what makes a sharded run bit-identical
// to a local one.
type Plan struct {
	// Seed is the master seed all chunk streams derive from.
	Seed int64
	// Trials is the total trial count of the run.
	Trials int
}

// Chunks returns the number of chunks the run decomposes into.
func (p Plan) Chunks() int {
	if p.Trials <= 0 {
		return 0
	}
	return (p.Trials + ChunkSize - 1) / ChunkSize
}

// ChunkTrials returns the number of trials chunk c covers: ChunkSize for
// every chunk but possibly the last.
func (p Plan) ChunkTrials(c int) int {
	if c == p.Chunks()-1 {
		return p.Trials - c*ChunkSize
	}
	return ChunkSize
}

// Seeds derives the per-chunk seeds: a sequential splitmix64 walk from
// the master seed. The derivation is prefix-stable — chunk i's seed
// never depends on the total chunk count — so any contiguous range of
// chunks can be recomputed anywhere from (Seed, Trials) alone.
func (p Plan) Seeds() []int64 {
	return mathx.DeriveSeeds(p.Seed, p.Chunks())
}
