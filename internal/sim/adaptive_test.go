package sim

import (
	"context"
	"testing"

	"repro/internal/mathx"
	"repro/internal/obs"
)

func init() { RegisterKernel("ztest.kernel.adapt", testBatch) }

// stopAfterTrials stops once the prefix holds at least n trials — a
// deterministic rule for pinning round behavior in tests.
type stopAfterTrials struct{ n int64 }

func (s stopAfterTrials) Done(prefix mathx.Running) bool { return prefix.N() >= s.n }

// neverStop exhausts the budget.
type neverStop struct{}

func (neverStop) Done(mathx.Running) bool { return false }

func TestAdaptiveRoundSchedule(t *testing.T) {
	for _, tc := range []struct{ prev, chunks, want int }{
		{0, 10, 1},
		{1, 10, 2},
		{2, 10, 4},
		{4, 10, 8},
		{8, 10, 10}, // capped at the budget
		{0, 1, 1},
	} {
		if got := adaptiveRound(tc.prev, tc.chunks); got != tc.want {
			t.Errorf("adaptiveRound(%d, %d) = %d, want %d", tc.prev, tc.chunks, got, tc.want)
		}
	}
}

// TestRunAdaptivePrefixIdentity is the core determinism contract: the
// statistics of an adaptive run are bit-identical to a fixed run of the
// realized chunk prefix, because the executed chunks and the fold order
// are exactly that prefix of the budget's plan.
func TestRunAdaptivePrefixIdentity(t *testing.T) {
	mc := MonteCarlo{Seed: 42}
	budget := 10 * ChunkSize

	res, err := mc.RunAdaptiveCtx(context.Background(), "ztest.kernel.adapt", nil,
		budget, stopAfterTrials{n: 3 * ChunkSize})
	if err != nil {
		t.Fatal(err)
	}
	// Rounds 1, 2, 4: the rule fires at the 4-chunk boundary.
	if got := res.Trace.Chunks(); got != 4 {
		t.Fatalf("realized chunks = %d, want 4 (rounds %v)", got, res.Trace.Rounds)
	}
	if !res.Trace.Stopped {
		t.Fatal("trace not marked stopped")
	}
	if res.Trace.Trials != 4*ChunkSize {
		t.Fatalf("realized trials = %d, want %d", res.Trace.Trials, 4*ChunkSize)
	}
	if err := res.Trace.Validate(); err != nil {
		t.Fatalf("recorded trace fails validation: %v", err)
	}

	// A fixed run of the same prefix: same chunks of the same plan,
	// folded left to right.
	parts, err := mc.RunKernelChunksCtx(context.Background(), "ztest.kernel.adapt", nil, budget, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	var want mathx.Running
	for _, p := range parts {
		want.Merge(p)
	}
	if res.Stats.Snapshot() != want.Snapshot() {
		t.Fatalf("adaptive stats %+v != fixed prefix stats %+v", res.Stats.Snapshot(), want.Snapshot())
	}
}

// TestRunAdaptiveExhaustsBudget checks the degenerate path: a rule that
// never fires spends the whole budget and matches the plain fixed run
// bit for bit — adaptive wrapping costs nothing in accuracy.
func TestRunAdaptiveExhaustsBudget(t *testing.T) {
	mc := MonteCarlo{Seed: 7}
	trials := 3*ChunkSize + 17 // partial final chunk

	res, err := mc.RunAdaptiveCtx(context.Background(), "ztest.kernel.adapt", nil, trials, neverStop{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace.Stopped {
		t.Fatal("trace marked stopped; rule never fired")
	}
	if res.Trace.Trials != trials || res.Trace.Saved() != 0 {
		t.Fatalf("realized %d of %d trials, saved %d", res.Trace.Trials, trials, res.Trace.Saved())
	}
	want, err := mc.RunKernelCtx(context.Background(), "ztest.kernel.adapt", nil, trials)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Snapshot() != want.Snapshot() {
		t.Fatalf("exhausted adaptive run %+v != fixed run %+v", res.Stats.Snapshot(), want.Snapshot())
	}
	// Nil rule takes the same degenerate path.
	res2, err := mc.RunAdaptiveCtx(context.Background(), "ztest.kernel.adapt", nil, trials, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stats.Snapshot() != want.Snapshot() {
		t.Fatal("nil-rule adaptive run differs from fixed run")
	}
}

// TestRunTraceReplayIdentity: replaying a recorded trace reproduces the
// adaptive run's statistics bit-identically, serial and parallel alike.
func TestRunTraceReplayIdentity(t *testing.T) {
	mc := MonteCarlo{Seed: 99}
	res, err := mc.RunAdaptiveCtx(context.Background(), "ztest.kernel.adapt", nil,
		8*ChunkSize, stopAfterTrials{n: 2 * ChunkSize})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 3} {
		replayer := MonteCarlo{Seed: 99, Workers: workers}
		rep, err := replayer.RunTraceCtx(context.Background(), "ztest.kernel.adapt", nil, res.Trace)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if rep.Stats.Snapshot() != res.Stats.Snapshot() {
			t.Fatalf("workers=%d: replay %+v != original %+v", workers, rep.Stats.Snapshot(), res.Stats.Snapshot())
		}
	}
}

// TestRunAdaptiveParallelIdentity: worker count never changes what an
// adaptive run computes, including where it stops.
func TestRunAdaptiveParallelIdentity(t *testing.T) {
	base, err := MonteCarlo{Seed: 5}.RunAdaptiveCtx(context.Background(),
		"ztest.kernel.adapt", nil, 16*ChunkSize, stopAfterTrials{n: 5 * ChunkSize})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 7} {
		got, err := MonteCarlo{Seed: 5, Workers: workers}.RunAdaptiveCtx(context.Background(),
			"ztest.kernel.adapt", nil, 16*ChunkSize, stopAfterTrials{n: 5 * ChunkSize})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got.Stats.Snapshot() != base.Stats.Snapshot() || got.Trace.Trials != base.Trace.Trials {
			t.Fatalf("workers=%d: adaptive run diverged", workers)
		}
	}
}

// TestRunAdaptiveProgressShrinks: the run advertises the full budget up
// front and shrinks the total to the realized spend at stop, keeping
// done <= total at the end.
func TestRunAdaptiveProgressShrinks(t *testing.T) {
	tracker := obs.NewTracker()
	ctx := obs.WithProgress(context.Background(), tracker)
	res, err := MonteCarlo{Seed: 1}.RunAdaptiveCtx(ctx, "ztest.kernel.adapt", nil,
		32*ChunkSize, stopAfterTrials{n: 2 * ChunkSize})
	if err != nil {
		t.Fatal(err)
	}
	snap := tracker.Snapshot()
	if snap.Total != int64(res.Trace.Trials) {
		t.Fatalf("final total %d, want realized trials %d", snap.Total, res.Trace.Trials)
	}
	if snap.Done != snap.Total {
		t.Fatalf("done %d != total %d after completed run", snap.Done, snap.Total)
	}
	if res.Trace.Saved() == 0 {
		t.Fatal("test run saved nothing; stopping rule never fired")
	}
}

func TestRunAdaptiveErrors(t *testing.T) {
	mc := MonteCarlo{Seed: 1}
	if _, err := mc.RunAdaptiveCtx(context.Background(), "ztest.kernel.adapt", nil, 0, nil); err == nil {
		t.Fatal("zero budget accepted")
	}
	if _, err := mc.RunAdaptiveCtx(context.Background(), "ztest.kernel.nope", nil, ChunkSize, nil); err == nil {
		t.Fatal("unknown kernel accepted")
	}
}

func TestPlanTraceValidate(t *testing.T) {
	valid := PlanTrace{ChunkSize: ChunkSize, MaxTrials: 4 * ChunkSize, Trials: 2 * ChunkSize, Rounds: []int{1, 2}}
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
	for name, tr := range map[string]PlanTrace{
		"wrong chunk size":   {ChunkSize: ChunkSize + 1, MaxTrials: ChunkSize, Trials: ChunkSize, Rounds: []int{1}},
		"no rounds":          {ChunkSize: ChunkSize, MaxTrials: ChunkSize, Trials: ChunkSize},
		"zero budget":        {ChunkSize: ChunkSize, MaxTrials: 0, Trials: 0, Rounds: []int{1}},
		"non-monotonic":      {ChunkSize: ChunkSize, MaxTrials: 4 * ChunkSize, Trials: 2 * ChunkSize, Rounds: []int{2, 1}},
		"beyond budget":      {ChunkSize: ChunkSize, MaxTrials: 2 * ChunkSize, Trials: 2 * ChunkSize, Rounds: []int{1, 5}},
		"trials mismatch":    {ChunkSize: ChunkSize, MaxTrials: 4 * ChunkSize, Trials: ChunkSize, Rounds: []int{1, 2}},
		"strata sum wrong":   {ChunkSize: ChunkSize, MaxTrials: 4 * ChunkSize, Trials: 2 * ChunkSize, Rounds: []int{2}, Strata: []StratumAlloc{{Name: "a", Chunks: 1}}},
		"strata trial wrong": {ChunkSize: ChunkSize, MaxTrials: 4 * ChunkSize, Trials: ChunkSize, Rounds: []int{2}, Strata: []StratumAlloc{{Name: "a", Chunks: 1}, {Name: "b", Chunks: 1}}},
	} {
		if err := tr.Validate(); err == nil {
			t.Errorf("%s: trace accepted", name)
		}
	}
	strat := PlanTrace{ChunkSize: ChunkSize, MaxTrials: 4 * ChunkSize, Trials: 3 * ChunkSize,
		Rounds: []int{2, 3}, Strata: []StratumAlloc{{Name: "a", Chunks: 2}, {Name: "b", Chunks: 1}}}
	if err := strat.Validate(); err != nil {
		t.Fatalf("valid stratified trace rejected: %v", err)
	}
}

func TestKernelCapsRegistry(t *testing.T) {
	RegisterKernelCaps("ztest.kernel.caps", testBatch,
		KernelCaps{Batch: true, Adaptive: true, BernoulliUnits: func(map[string]float64) float64 { return 8 }})
	caps, ok := KernelCapsFor("ztest.kernel.caps")
	if !ok || !caps.Batch || !caps.Adaptive || caps.BernoulliUnits == nil {
		t.Fatalf("caps not stored: %+v ok=%v", caps, ok)
	}
	if _, ok := KernelCapsFor("ztest.kernel.caps.nope"); ok {
		t.Fatal("caps reported for unknown kernel")
	}
	var found bool
	for _, info := range KernelInfos() {
		if info.Name == "ztest.kernel.caps" {
			found = true
			if !info.Batch || !info.Adaptive {
				t.Fatalf("KernelInfos entry lost flags: %+v", info)
			}
		}
	}
	if !found {
		t.Fatal("KernelInfos missing registered kernel")
	}
}
