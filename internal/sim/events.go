// Package sim provides the two execution substrates every experiment in
// the repository runs on:
//
//   - a discrete-event engine (Engine) with a binary-heap event queue and
//     a simulated clock, used by the CSMA/CA MAC and the testbed; and
//   - a parallel Monte-Carlo runner (MonteCarlo) that fans trials out over
//     a worker pool with independent, deterministically derived PRNG
//     streams and merges the results in a fixed order, so a run is
//     reproducible regardless of GOMAXPROCS.
package sim

import (
	"container/heap"
	"fmt"
)

// Event is a scheduled callback. Fire runs at the event's simulated time.
type Event struct {
	Time float64
	Fire func()

	seq   uint64 // tie-breaker: FIFO among equal times
	index int    // heap bookkeeping; -1 once popped or cancelled
}

// Cancelled reports whether the event has been removed from the queue.
func (e *Event) Cancelled() bool { return e.index == -2 }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].Time != h[j].Time {
		return h[i].Time < h[j].Time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event simulator. The zero value is
// ready to use at time 0.
type Engine struct {
	queue eventHeap
	now   float64
	seq   uint64
	steps uint64
}

// Now returns the current simulated time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Steps returns the number of events fired so far.
func (e *Engine) Steps() uint64 { return e.steps }

// Pending returns the number of scheduled (uncancelled) events.
func (e *Engine) Pending() int { return len(e.queue) }

// Schedule queues fire at absolute simulated time t and returns a handle
// that can be cancelled. Scheduling in the past panics: that is always a
// protocol-logic bug, never a recoverable condition.
func (e *Engine) Schedule(t float64, fire func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %g before now %g", t, e.now))
	}
	ev := &Event{Time: t, Fire: fire, seq: e.seq}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// ScheduleAfter queues fire delay seconds from now.
func (e *Engine) ScheduleAfter(delay float64, fire func()) *Event {
	return e.Schedule(e.now+delay, fire)
}

// Cancel removes ev from the queue if it is still pending.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.index < 0 {
		return
	}
	heap.Remove(&e.queue, ev.index)
	ev.index = -2
}

// Step fires the earliest pending event and returns true, or returns
// false if the queue is empty.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*Event)
	e.now = ev.Time
	e.steps++
	ev.Fire()
	return true
}

// Run fires events until the queue drains or until the clock would pass
// until (exclusive). It returns the number of events fired.
func (e *Engine) Run(until float64) uint64 {
	fired := uint64(0)
	for len(e.queue) > 0 && e.queue[0].Time <= until {
		e.Step()
		fired++
	}
	if e.now < until && len(e.queue) == 0 {
		e.now = until
	}
	return fired
}

// RunAll drains the queue completely and returns the number of events fired.
func (e *Engine) RunAll() uint64 {
	fired := uint64(0)
	for e.Step() {
		fired++
	}
	return fired
}
