package sim

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/obs"
)

// recordingSink captures every progress report so the test can check
// the cumulative done count is monotonic and lands exactly on total.
type recordingSink struct {
	mu     sync.Mutex
	total  int64
	deltas []int64
}

func (r *recordingSink) AddTotal(n int64) {
	r.mu.Lock()
	r.total += n
	r.mu.Unlock()
}

func (r *recordingSink) Add(n int64) {
	r.mu.Lock()
	r.deltas = append(r.deltas, n)
	r.mu.Unlock()
}

func TestMonteCarloReportsProgress(t *testing.T) {
	const trials = 3*chunkSize + 123 // force a short tail chunk
	sink := &recordingSink{}
	ctx := obs.WithProgress(context.Background(), sink)

	mc := MonteCarlo{Seed: 42, Workers: 3}
	if _, err := mc.RunMeanCtx(ctx, trials, func(rng *rand.Rand) float64 {
		return rng.Float64()
	}); err != nil {
		t.Fatal(err)
	}

	sink.mu.Lock()
	defer sink.mu.Unlock()
	if sink.total != trials {
		t.Fatalf("AddTotal sum = %d, want %d", sink.total, trials)
	}
	var done int64
	for i, d := range sink.deltas {
		if d <= 0 {
			t.Fatalf("delta %d = %d; progress must be monotonic", i, d)
		}
		done += d
	}
	if done != trials {
		t.Fatalf("completed trials = %d, want %d", done, trials)
	}
	if len(sink.deltas) != 4 {
		t.Errorf("chunk reports = %d, want 4", len(sink.deltas))
	}
}

func TestMonteCarloProgressViaTracker(t *testing.T) {
	tr := obs.NewTracker()
	ctx := obs.WithProgress(context.Background(), tr)
	mc := MonteCarlo{Seed: 7}
	want := mc.RunMean(5000, func(rng *rand.Rand) float64 { return rng.Float64() })
	got, err := mc.RunMeanCtx(ctx, 5000, func(rng *rand.Rand) float64 { return rng.Float64() })
	if err != nil {
		t.Fatal(err)
	}
	if got.Mean() != want.Mean() || got.N() != want.N() {
		t.Fatal("progress instrumentation changed the statistics")
	}
	s := tr.Snapshot()
	if s.Done != 5000 || s.Total != 5000 {
		t.Fatalf("tracker = %+v, want 5000/5000", s)
	}
}

func TestMonteCarloCanceledProgressStaysPartial(t *testing.T) {
	tr := obs.NewTracker()
	ctx, cancel := context.WithCancel(context.Background())
	ctx = obs.WithProgress(ctx, tr)
	mc := MonteCarlo{Seed: 1, Workers: 1}
	trials := 10 * chunkSize
	fired := false
	_, err := mc.RunMeanCtx(ctx, trials, func(rng *rand.Rand) float64 {
		if !fired {
			fired = true
			cancel()
		}
		return 0
	})
	if err == nil {
		t.Fatal("expected cancellation error")
	}
	s := tr.Snapshot()
	if s.Total != int64(trials) {
		t.Fatalf("total = %d, want %d", s.Total, trials)
	}
	if s.Done >= s.Total {
		t.Fatalf("cancelled run reported done=%d >= total=%d", s.Done, s.Total)
	}
}
