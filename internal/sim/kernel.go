package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"

	"repro/internal/mathx"
)

// BatchFunc runs n Monte-Carlo trials on the given chunk stream and
// returns their streaming statistics. It is the unit of work a chunk
// executes, locally or on a remote shard worker.
type BatchFunc func(rng *rand.Rand, n int) mathx.Running

// KernelFunc builds a BatchFunc from flat numeric parameters. Building
// must validate the parameters — the returned batch runs on hot paths
// and on remote workers, so it has no error channel of its own. The
// flat map is deliberate: it is the whole cross-process contract, which
// keeps the shard wire format free of per-kernel types.
type KernelFunc func(params map[string]float64) (BatchFunc, error)

// KernelCaps advertises what a kernel supports beyond plain fixed-budget
// execution. Capabilities are discovery metadata — they never change
// what a chunk computes — and are served to clients via GET /v1/kernels
// so a caller can tell which kernels accept adaptive budgets.
type KernelCaps struct {
	// Batch marks kernels whose chunk executes through a
	// structure-of-arrays batch engine rather than a per-trial loop.
	Batch bool
	// Adaptive marks kernels whose estimator is well-defined under
	// sequential stopping, i.e. safe to run via RunAdaptiveCtx.
	Adaptive bool
	// BernoulliUnits, when non-nil, declares the kernel's estimate to be
	// a Bernoulli rate and returns how many Bernoulli units (e.g. bits)
	// one trial contributes under the given parameters. Stopping rules
	// use it to convert trial counts into unit counts for binomial
	// (Wilson / Clopper-Pearson) intervals; nil means the estimate is a
	// general mean and CLT rules apply.
	BernoulliUnits func(params map[string]float64) float64
}

// kernelEntry pairs a kernel constructor with its capabilities.
type kernelEntry struct {
	fn   KernelFunc
	caps KernelCaps
}

// kernels is the process-wide registry of named Monte-Carlo kernels.
// A kernel name is meaningful across processes: a coordinator ships
// (kernel, params, seed, trials, chunk range) and the worker rebuilds
// the identical batch from its own registry, so both binaries must
// register the same kernels (cmd/cogmimod does, via the experiments
// package's dependency on internal/simkern).
var kernels = struct {
	sync.RWMutex
	m map[string]kernelEntry
}{m: make(map[string]kernelEntry)}

// RegisterKernel adds a named kernel with no advertised capabilities;
// duplicate names panic, exactly like duplicate experiment IDs would,
// because registration happens at package init time.
func RegisterKernel(name string, k KernelFunc) {
	RegisterKernelCaps(name, k, KernelCaps{})
}

// RegisterKernelCaps adds a named kernel together with its capability
// flags. Duplicate names panic; see RegisterKernel.
func RegisterKernelCaps(name string, k KernelFunc, caps KernelCaps) {
	if name == "" || k == nil {
		panic("sim: RegisterKernel needs a name and a kernel")
	}
	kernels.Lock()
	defer kernels.Unlock()
	if _, dup := kernels.m[name]; dup {
		panic(fmt.Sprintf("sim: kernel %q registered twice", name))
	}
	kernels.m[name] = kernelEntry{fn: k, caps: caps}
}

// Kernels lists the registered kernel names in sorted order. It is the
// discovery surface both for operators (GET /v1/kernels on the daemon)
// and for error messages, so its order must be stable across processes.
func Kernels() []string {
	kernels.RLock()
	defer kernels.RUnlock()
	ids := make([]string, 0, len(kernels.m))
	for id := range kernels.m {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// KernelCapsFor returns the registered capabilities of a kernel; ok is
// false for an unknown name.
func KernelCapsFor(name string) (KernelCaps, bool) {
	kernels.RLock()
	defer kernels.RUnlock()
	e, ok := kernels.m[name]
	return e.caps, ok
}

// KernelInfo is the wire form of one registry entry: the name plus its
// boolean capability flags, as served by GET /v1/kernels.
type KernelInfo struct {
	Name     string `json:"name"`
	Batch    bool   `json:"batch"`
	Adaptive bool   `json:"adaptive"`
}

// KernelInfos lists every registered kernel with its capabilities, in
// name order.
func KernelInfos() []KernelInfo {
	kernels.RLock()
	defer kernels.RUnlock()
	infos := make([]KernelInfo, 0, len(kernels.m))
	for id, e := range kernels.m {
		infos = append(infos, KernelInfo{Name: id, Batch: e.caps.Batch, Adaptive: e.caps.Adaptive})
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	return infos
}

// NewKernelBatch builds the batch function of a registered kernel.
func NewKernelBatch(name string, params map[string]float64) (BatchFunc, error) {
	kernels.RLock()
	e, ok := kernels.m[name]
	kernels.RUnlock()
	if !ok {
		return nil, fmt.Errorf("sim: unknown kernel %q (have %s)", name, strings.Join(Kernels(), ", "))
	}
	return e.fn(params)
}
