package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"

	"repro/internal/mathx"
)

// BatchFunc runs n Monte-Carlo trials on the given chunk stream and
// returns their streaming statistics. It is the unit of work a chunk
// executes, locally or on a remote shard worker.
type BatchFunc func(rng *rand.Rand, n int) mathx.Running

// KernelFunc builds a BatchFunc from flat numeric parameters. Building
// must validate the parameters — the returned batch runs on hot paths
// and on remote workers, so it has no error channel of its own. The
// flat map is deliberate: it is the whole cross-process contract, which
// keeps the shard wire format free of per-kernel types.
type KernelFunc func(params map[string]float64) (BatchFunc, error)

// kernels is the process-wide registry of named Monte-Carlo kernels.
// A kernel name is meaningful across processes: a coordinator ships
// (kernel, params, seed, trials, chunk range) and the worker rebuilds
// the identical batch from its own registry, so both binaries must
// register the same kernels (cmd/cogmimod does, via the experiments
// package's dependency on internal/simkern).
var kernels = struct {
	sync.RWMutex
	m map[string]KernelFunc
}{m: make(map[string]KernelFunc)}

// RegisterKernel adds a named kernel; duplicate names panic, exactly
// like duplicate experiment IDs would, because registration happens at
// package init time.
func RegisterKernel(name string, k KernelFunc) {
	if name == "" || k == nil {
		panic("sim: RegisterKernel needs a name and a kernel")
	}
	kernels.Lock()
	defer kernels.Unlock()
	if _, dup := kernels.m[name]; dup {
		panic(fmt.Sprintf("sim: kernel %q registered twice", name))
	}
	kernels.m[name] = k
}

// Kernels lists the registered kernel names in sorted order. It is the
// discovery surface both for operators (GET /v1/kernels on the daemon)
// and for error messages, so its order must be stable across processes.
func Kernels() []string {
	kernels.RLock()
	defer kernels.RUnlock()
	ids := make([]string, 0, len(kernels.m))
	for id := range kernels.m {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// NewKernelBatch builds the batch function of a registered kernel.
func NewKernelBatch(name string, params map[string]float64) (BatchFunc, error) {
	kernels.RLock()
	k, ok := kernels.m[name]
	kernels.RUnlock()
	if !ok {
		return nil, fmt.Errorf("sim: unknown kernel %q (have %s)", name, strings.Join(Kernels(), ", "))
	}
	return k(params)
}
