package sim

import (
	"context"
	"math"
	"math/rand"
	"sync/atomic"
	"testing"

	"repro/internal/mathx"
)

func TestRunMeanCtxUncancelledMatchesRunMean(t *testing.T) {
	trial := func(rng *rand.Rand) float64 { return rng.NormFloat64() }
	want := MonteCarlo{Seed: 4, Workers: 3}.RunMean(3*chunkSize+11, trial)
	got, err := MonteCarlo{Seed: 4, Workers: 3}.RunMeanCtx(context.Background(), 3*chunkSize+11, trial)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != want.N() || got.Mean() != want.Mean() {
		t.Errorf("ctx variant diverged: %v/%v vs %v/%v", got.N(), got.Mean(), want.N(), want.Mean())
	}
}

func TestRunBatchesCtxCancellationStopsEarly(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	const chunks = 64
	var calls atomic.Int64
	r, err := MonteCarlo{Seed: 1, Workers: 2}.RunBatchesCtx(ctx, chunks*chunkSize,
		func(rng *rand.Rand, n int) mathx.Running {
			if calls.Add(1) == 3 {
				cancel()
			}
			var acc mathx.Running
			for i := 0; i < n; i++ {
				acc.Add(rng.Float64())
			}
			return acc
		})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Cancellation after the third chunk must stop the fan-out well
	// short of the full run: at most one extra in-flight chunk per
	// worker can slip through.
	if got := calls.Load(); got >= chunks {
		t.Errorf("ran %d chunks of %d despite cancellation", got, chunks)
	}
	if r.N() == 0 || r.N() >= chunks*chunkSize {
		t.Errorf("partial N = %d, want in (0, %d)", r.N(), chunks*chunkSize)
	}
	if r.N()%chunkSize != 0 {
		t.Errorf("partial N = %d is not a whole number of chunks", r.N())
	}
}

func TestRunMeanCtxPartialMergesDeterministically(t *testing.T) {
	// With one worker, chunks complete strictly in order, and a cancel
	// landing on chunk 2's last trial lets chunk 2 finish but stops the
	// worker before chunk 3: exactly chunks 0-2 merge. Those chunks are
	// seeded by index via a sequential splitmix64 walk, so the partial
	// result must be bit-identical to a full 3-chunk run from the same
	// master seed.
	trial := func(rng *rand.Rand) float64 { return rng.NormFloat64() }
	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int64
	got, err := MonteCarlo{Seed: 42, Workers: 1}.RunMeanCtx(ctx, 20*chunkSize, func(rng *rand.Rand) float64 {
		if calls.Add(1) == 3*chunkSize {
			cancel()
		}
		return trial(rng)
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	want := MonteCarlo{Seed: 42, Workers: 1}.RunMean(3*chunkSize, trial)
	if got.N() != want.N() {
		t.Fatalf("partial N = %d, want %d", got.N(), want.N())
	}
	if math.Abs(got.Mean()-want.Mean()) > 0 || math.Abs(got.Variance()-want.Variance()) > 0 {
		t.Errorf("partial merge not deterministic: mean %v vs %v, var %v vs %v",
			got.Mean(), want.Mean(), got.Variance(), want.Variance())
	}
}

func TestRunCountCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var calls atomic.Int64
	n, err := MonteCarlo{Seed: 1}.RunCountCtx(ctx, 10*chunkSize, func(rng *rand.Rand) bool {
		calls.Add(1)
		return true
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n != 0 || calls.Load() != 0 {
		t.Errorf("pre-cancelled run did work: count=%d calls=%d", n, calls.Load())
	}
}
