package sim

import (
	"context"
	"fmt"
	"strconv"
	"time"

	"repro/internal/mathx"
	"repro/internal/obs"
)

// KernelRun names one complete Monte-Carlo computation in transportable
// form: a registered kernel, its flat parameters, the master seed and
// the trial budget. Everything an executor needs — chunk count, chunk
// seeds, chunk lengths — derives from it via Plan.
type KernelRun struct {
	Kernel string
	Params map[string]float64
	Seed   int64
	Trials int
}

// Plan returns the run's chunk decomposition.
func (r KernelRun) Plan() Plan { return Plan{Seed: r.Seed, Trials: r.Trials} }

// An Executor computes every chunk of a KernelRun somewhere — typically
// sharded across remote worker nodes — and returns the per-chunk
// partials in chunk order, one per chunk of the run's Plan. The caller
// folds them left to right, exactly as the local runner folds its own
// chunks, so any executor that returns bit-identical per-chunk partials
// yields a bit-identical total. internal/cluster's Coordinator is the
// distributed implementation.
type Executor interface {
	RunShards(ctx context.Context, run KernelRun) ([]mathx.Running, error)
}

type executorKey struct{}

// WithExecutor routes every kernel-named Monte-Carlo run under ctx
// through e instead of the local worker pool.
func WithExecutor(ctx context.Context, e Executor) context.Context {
	return context.WithValue(ctx, executorKey{}, e)
}

// ExecutorFrom returns the executor attached to ctx, or nil.
func ExecutorFrom(ctx context.Context) Executor {
	e, _ := ctx.Value(executorKey{}).(Executor)
	return e
}

// RunKernelCtx executes trials of a registered kernel and returns the
// merged statistics. When ctx carries an Executor the chunk work is
// delegated to it (and fanned out to worker nodes); otherwise the run
// executes on the local pool via RunBatchesCtx. Both paths fold the
// same per-chunk partials in the same chunk order, so they are
// bit-identical — the property pinned by the cluster golden tests.
func (mc MonteCarlo) RunKernelCtx(ctx context.Context, kernel string, params map[string]float64, trials int) (mathx.Running, error) {
	if ex := ExecutorFrom(ctx); ex != nil {
		run := KernelRun{Kernel: kernel, Params: params, Seed: mc.Seed, Trials: trials}
		ctx, span := obs.StartSpan(ctx, "cluster.run")
		span.SetAttr("kernel", kernel).
			SetAttr("trials", strconv.Itoa(trials)).
			SetAttr("chunks", strconv.Itoa(run.Plan().Chunks()))
		defer span.End()
		parts, err := ex.RunShards(ctx, run)
		if err != nil {
			return mathx.Running{}, err
		}
		if want := run.Plan().Chunks(); len(parts) != want {
			return mathx.Running{}, fmt.Errorf("sim: executor returned %d chunk partials, want %d", len(parts), want)
		}
		foldStart := time.Now()
		var total mathx.Running
		for _, p := range parts {
			total.Merge(p)
		}
		obs.RecordSpan(ctx, "mc.fold", foldStart, time.Now(),
			obs.Attr{Key: "chunks", Value: strconv.Itoa(len(parts))})
		return total, nil
	}
	batch, err := NewKernelBatch(kernel, params)
	if err != nil {
		return mathx.Running{}, err
	}
	return mc.RunBatchesCtx(ctx, trials, batch)
}

// RunKernelChunksCtx is the worker-side counterpart of RunKernelCtx: it
// rebuilds the batch from the registry and executes only chunks
// [lo, hi) of the run, returning their per-chunk partials. Shard
// servers (cmd/cogmimod's POST /v1/shards) and the loopback transport
// both call it, so the in-process test path exercises exactly the code
// a remote worker runs.
func (mc MonteCarlo) RunKernelChunksCtx(ctx context.Context, kernel string, params map[string]float64, trials, lo, hi int) ([]mathx.Running, error) {
	batch, err := NewKernelBatch(kernel, params)
	if err != nil {
		return nil, err
	}
	return mc.RunChunkRangeCtx(ctx, trials, lo, hi, batch)
}
