package sim

import (
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/mathx"
)

func testBatch(params map[string]float64) (BatchFunc, error) {
	return func(rng *rand.Rand, n int) mathx.Running {
		var acc mathx.Running
		for i := 0; i < n; i++ {
			acc.Add(rng.Float64())
		}
		return acc
	}, nil
}

func TestKernelsSortedAndDiscoverable(t *testing.T) {
	RegisterKernel("ztest.kernel.b", testBatch)
	RegisterKernel("ztest.kernel.a", testBatch)
	names := Kernels()
	if !sort.StringsAreSorted(names) {
		t.Fatalf("Kernels() not sorted: %v", names)
	}
	for _, want := range []string{"ztest.kernel.a", "ztest.kernel.b"} {
		i := sort.SearchStrings(names, want)
		if i >= len(names) || names[i] != want {
			t.Fatalf("Kernels() = %v missing %q", names, want)
		}
	}
	if _, err := NewKernelBatch("ztest.kernel.a", nil); err != nil {
		t.Fatalf("registered kernel not buildable: %v", err)
	}
	// Unknown names fail with the full catalog in the message, so a
	// typo'd campaign spec tells the operator what exists.
	_, err := NewKernelBatch("ztest.kernel.nope", nil)
	if err == nil || !strings.Contains(err.Error(), "ztest.kernel.a") {
		t.Fatalf("unknown-kernel error should list kernels, got %v", err)
	}
}

func TestRegisterKernelDuplicatePanics(t *testing.T) {
	RegisterKernel("ztest.kernel.dup", testBatch)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("duplicate registration did not panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, `kernel "ztest.kernel.dup" registered twice`) {
			t.Fatalf("panic %v does not name the duplicate kernel", r)
		}
	}()
	RegisterKernel("ztest.kernel.dup", testBatch)
}

func TestRegisterKernelRejectsEmpty(t *testing.T) {
	for _, tc := range []struct {
		name string
		k    KernelFunc
	}{{"", testBatch}, {"ztest.kernel.nil", nil}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("RegisterKernel(%q, %v) did not panic", tc.name, tc.k == nil)
				}
			}()
			RegisterKernel(tc.name, tc.k)
		}()
	}
}
