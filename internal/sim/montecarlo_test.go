package sim

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/mathx"
)

func TestRunMeanUniform(t *testing.T) {
	mc := MonteCarlo{Seed: 1}
	r := mc.RunMean(200000, func(rng *rand.Rand) float64 { return rng.Float64() })
	if r.N() != 200000 {
		t.Fatalf("N = %d", r.N())
	}
	if math.Abs(r.Mean()-0.5) > 0.005 {
		t.Errorf("mean = %v, want ~0.5", r.Mean())
	}
	if math.Abs(r.Variance()-1.0/12) > 0.005 {
		t.Errorf("variance = %v, want ~1/12", r.Variance())
	}
}

func TestDeterminismAcrossWorkerCounts(t *testing.T) {
	trial := func(rng *rand.Rand) float64 { return rng.NormFloat64() }
	ref := MonteCarlo{Seed: 42, Workers: 1}.RunMean(10000, trial)
	for _, w := range []int{2, 3, 4, 7, 16} {
		got := MonteCarlo{Seed: 42, Workers: w}.RunMean(10000, trial)
		if got.N() != ref.N() {
			t.Fatalf("workers=%d: N=%d want %d", w, got.N(), ref.N())
		}
		if math.Abs(got.Mean()-ref.Mean()) > 1e-12 {
			t.Errorf("workers=%d: mean=%v want %v", w, got.Mean(), ref.Mean())
		}
		if math.Abs(got.Variance()-ref.Variance()) > 1e-9 {
			t.Errorf("workers=%d: var=%v want %v", w, got.Variance(), ref.Variance())
		}
	}
}

func TestRunCount(t *testing.T) {
	mc := MonteCarlo{Seed: 9}
	n := mc.RunCount(100000, func(rng *rand.Rand) bool { return rng.Float64() < 0.3 })
	if p := float64(n) / 100000; math.Abs(p-0.3) > 0.01 {
		t.Errorf("fraction = %v, want ~0.3", p)
	}
	// Deterministic across worker counts too.
	a := MonteCarlo{Seed: 5, Workers: 1}.RunCount(5000, func(rng *rand.Rand) bool { return rng.Intn(2) == 0 })
	b := MonteCarlo{Seed: 5, Workers: 8}.RunCount(5000, func(rng *rand.Rand) bool { return rng.Intn(2) == 0 })
	if a != b {
		t.Errorf("RunCount not deterministic: %d vs %d", a, b)
	}
}

func TestRunBatches(t *testing.T) {
	mc := MonteCarlo{Seed: 3, Workers: 4}
	r := mc.RunBatches(100000, func(rng *rand.Rand, n int) mathx.Running {
		var acc mathx.Running
		for i := 0; i < n; i++ {
			acc.Add(rng.Float64())
		}
		return acc
	})
	if r.N() != 100000 {
		t.Fatalf("N = %d", r.N())
	}
	if math.Abs(r.Mean()-0.5) > 0.01 {
		t.Errorf("mean = %v", r.Mean())
	}
}

func TestEdgeCases(t *testing.T) {
	mc := MonteCarlo{Seed: 1, Workers: 64}
	// More workers than trials must not deadlock or double-count.
	r := mc.RunMean(3, func(rng *rand.Rand) float64 { return 1 })
	if r.N() != 3 || r.Mean() != 1 {
		t.Errorf("N=%d mean=%v", r.N(), r.Mean())
	}
	// Zero trials.
	r = mc.RunMean(0, func(rng *rand.Rand) float64 { return 1 })
	if r.N() != 0 {
		t.Errorf("zero trials N=%d", r.N())
	}
	if c := mc.RunCount(0, func(rng *rand.Rand) bool { return true }); c != 0 {
		t.Errorf("zero trials count=%d", c)
	}
}

func TestChunkingCoversExactly(t *testing.T) {
	// Trial counts straddling chunk boundaries must all be visited exactly
	// once: the merged N is the proof.
	for _, n := range []int{1, chunkSize - 1, chunkSize, chunkSize + 1, 3*chunkSize + 17} {
		r := MonteCarlo{Seed: 2, Workers: 5}.RunMean(n, func(rng *rand.Rand) float64 { return 1 })
		if r.N() != int64(n) {
			t.Errorf("trials=%d: N=%d", n, r.N())
		}
	}
}

func TestRunBatchesDeterministicAcrossWorkers(t *testing.T) {
	batch := func(rng *rand.Rand, n int) mathx.Running {
		var acc mathx.Running
		for i := 0; i < n; i++ {
			acc.Add(rng.NormFloat64())
		}
		return acc
	}
	ref := MonteCarlo{Seed: 77, Workers: 1}.RunBatches(3*chunkSize+5, batch)
	got := MonteCarlo{Seed: 77, Workers: 9}.RunBatches(3*chunkSize+5, batch)
	if ref.N() != got.N() || math.Abs(ref.Mean()-got.Mean()) > 1e-15 {
		t.Errorf("RunBatches not worker-count independent: %v/%v vs %v/%v",
			ref.N(), ref.Mean(), got.N(), got.Mean())
	}
}
