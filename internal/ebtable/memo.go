package ebtable

import "sync"

// Memoized caches EbBar results of an underlying solver. ēb(p, b, mt,
// mr) is a pure function of its arguments for every solver in this
// package, and the experiment sweeps re-solve the same handful of
// operating points hundreds of times (Fig. 7 alone queries 9 distances
// x 6 antenna pairs x 16 constellations with distance-independent ēb),
// so a small table removes the bisection from the hot path entirely.
// The cache returns exactly the value and error the first solve
// produced, keeping memoized sweeps bit-identical to unmemoized ones.
//
// Memoized is safe for concurrent use.
type Memoized struct {
	solver Solver
	mu     sync.RWMutex
	cache  map[memoKey]memoVal
}

type memoKey struct {
	p         float64
	b, mt, mr int
}

type memoVal struct {
	v   float64
	err error
}

// Memoize wraps solver in a concurrency-safe EbBar cache. Wrapping an
// already-memoized solver returns it unchanged.
func Memoize(solver Solver) Solver {
	if m, ok := solver.(*Memoized); ok {
		return m
	}
	return &Memoized{solver: solver, cache: make(map[memoKey]memoVal)}
}

// EbBar returns the cached ēb for the operating point, solving and
// recording it on first use.
func (m *Memoized) EbBar(p float64, b, mt, mr int) (float64, error) {
	k := memoKey{p: p, b: b, mt: mt, mr: mr}
	m.mu.RLock()
	val, ok := m.cache[k]
	m.mu.RUnlock()
	if ok {
		return val.v, val.err
	}
	v, err := m.solver.EbBar(p, b, mt, mr)
	m.mu.Lock()
	m.cache[k] = memoVal{v: v, err: err}
	m.mu.Unlock()
	return v, err
}
