package ebtable

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/channel"
	"repro/internal/mathx"
	"repro/internal/modulation"
)

// MonteCarlo estimates ēb by averaging eq. (5)/(6) over sampled channel
// matrices and inverting by bisection — the paper's preprocessing
// procedure. Common random numbers (one ||H||_F^2 sample set reused for
// every bisection probe) make the estimated BER curve strictly monotone
// in ēb, so the bisection is well-posed despite the sampling noise.
type MonteCarlo struct {
	// N0 is the noise spectral density in W/Hz; 0 means DefaultN0.
	N0 float64
	// Samples is the number of channel draws; 0 means 20000.
	Samples int
	// Seed drives the channel sampling.
	Seed int64
	// Workers caps the parallel BER reduction; 0 means GOMAXPROCS.
	Workers int
	// RicianK, when positive, samples Rician instead of Rayleigh fading —
	// a what-if the closed form cannot cover.
	RicianK float64
	// Convention selects the gamma_b normalisation (default ConvPaper).
	Convention Convention

	mu    sync.Mutex
	cache map[[2]int][]float64 // (mt, mr) -> ||H||_F^2 samples
}

// norms returns (computing once) the channel-power samples for an
// mt-by-mr link.
func (mc *MonteCarlo) norms(mt, mr int) []float64 {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	if mc.cache == nil {
		mc.cache = make(map[[2]int][]float64)
	}
	key := [2]int{mt, mr}
	if s, ok := mc.cache[key]; ok {
		return s
	}
	n := mc.Samples
	if n <= 0 {
		n = 20000
	}
	// Seed is salted per antenna pair so pairs are independent.
	rng := mathx.NewRand(mc.Seed ^ int64(mt)<<32 ^ int64(mr)<<40)
	s := make([]float64, n)
	for i := range s {
		var h2 float64
		if mc.RicianK > 0 {
			h2 = channel.RicianMatrix(rng, mt, mr, mc.RicianK).FrobeniusNorm2()
		} else {
			h2 = channel.Rayleigh(rng, mt, mr).FrobeniusNorm2()
		}
		s[i] = h2
	}
	mc.cache[key] = s
	return s
}

// BER estimates the average BER at per-bit receive energy eb.
func (mc *MonteCarlo) BER(b, mt, mr int, eb float64) float64 {
	n0 := mc.N0
	if n0 == 0 {
		n0 = DefaultN0
	}
	samples := mc.norms(mt, mr)
	norm := float64(mt)
	if mc.Convention == ConvArray {
		norm = 1
	}
	scale := eb / (n0 * norm)
	return parallelMeanBER(samples, b, scale, mc.Workers)
}

// EbBar inverts the Monte-Carlo BER estimate for the target p.
func (mc *MonteCarlo) EbBar(p float64, b, mt, mr int) (float64, error) {
	if err := checkArgs(p, b, mt, mr); err != nil {
		return 0, err
	}
	if p >= saturationBER(b) {
		return 0, fmt.Errorf("ebtable: BER target %g unreachable with b=%d (saturates at %g)",
			p, b, saturationBER(b))
	}
	f := func(eb float64) float64 { return mc.BER(b, mt, mr, eb) - p }
	eb, err := mathx.BisectLog(f, ebFloor, ebCeiling, 1e-6)
	if err != nil {
		return 0, fmt.Errorf("ebtable: MC solve ēb(p=%g, b=%d, %dx%d): %w", p, b, mt, mr, err)
	}
	return eb, nil
}

// parallelMeanBER averages BER_AWGN(b, h2*scale) over the sample set,
// fanning fixed slice chunks out to a bounded worker group. The chunk
// partition is index-based, so the reduction order — and therefore the
// result — is independent of scheduling.
func parallelMeanBER(samples []float64, b int, scale float64, workers int) float64 {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(samples) {
		workers = len(samples)
	}
	if workers <= 1 {
		var s float64
		for _, h2 := range samples {
			s += modulation.BERAWGN(b, h2*scale)
		}
		return s / float64(len(samples))
	}
	sums := make([]float64, workers)
	var wg sync.WaitGroup
	per := (len(samples) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * per
		hi := lo + per
		if hi > len(samples) {
			hi = len(samples)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			var s float64
			for _, h2 := range samples[lo:hi] {
				s += modulation.BERAWGN(b, h2*scale)
			}
			sums[w] = s
		}(w, lo, hi)
	}
	wg.Wait()
	var total float64
	for _, s := range sums {
		total += s
	}
	return total / float64(len(samples))
}
