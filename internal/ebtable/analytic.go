// Package ebtable computes and stores ēb(p, b, mt, mr) — the per-bit
// receive energy at which an mt-by-mr orthogonal-STBC link over iid flat
// Rayleigh fading, using constellation size b, achieves average BER p.
//
// The quantity is defined implicitly by the paper's equations (5) and
// (6): p = E_H[BER_AWGN(b, gamma_b)] with
// gamma_b = ||H||_F^2 * ēb / (N0 * mt). Two solvers are provided:
//
//   - Analytic: since ||H||_F^2 is Gamma(mt*mr, 1) distributed, the
//     average has the same closed form as L-branch maximal-ratio
//     combining, so ēb reduces to a one-dimensional root find on an
//     exact expression.
//   - MonteCarlo: the paper's "numerical analysis" — draw channel
//     matrices, average eq. (5)/(6) over them, and invert by bisection.
//     It generalises to non-Rayleigh fading and is the ablation baseline
//     for the analytic path.
//
// Preprocessing (Algorithm 1/2) builds a Table over a (p, b, mt, mr)
// grid with either solver; the table serialises with encoding/gob for
// loading "in each SU node".
package ebtable

import (
	"fmt"
	"math"

	"repro/internal/mathx"
	"repro/internal/modulation"
)

// DefaultN0 is the long-haul noise spectral density of Section 2.3
// (-171 dBm/Hz) in W/Hz.
const DefaultN0 = 7.943282347242789e-21

// ebCeiling and ebFloor bracket every physically sensible ēb in joules;
// the bisection searches this range on a log grid.
const (
	ebFloor   = 1e-26
	ebCeiling = 1e-8
)

// Convention selects the gamma_b normalisation used when solving ēb.
// The paper prints gamma_b = ||H||_F^2 ēb/(N0 mt) (ConvPaper), but its
// Figure 6 evaluation is only consistent with the mt division omitted
// (ConvArray): the reported D3/D2 ratio is exactly sqrt(m). Both are
// supported; ConvPaper is the default everywhere except the Figure 6
// reproduction. See DESIGN.md.
type Convention int

// Conventions.
const (
	// ConvPaper divides the SNR by mt, as eq. (5)/(6) print.
	ConvPaper Convention = iota
	// ConvArray omits the division, matching the paper's evaluated
	// Figure 6 distance ratios.
	ConvArray
)

// AnalyticBER returns the exact Rayleigh-average BER of eq. (5)/(6) for
// per-bit receive energy eb on an mt-by-mr link with noise density n0
// under the given convention: pre * MRC(mt*mr, k/2 * eb/(n0*mtNorm))
// where k = 3b/(M-1) (k = 2, pre = 1 for b = 1) and mtNorm is mt under
// ConvPaper, 1 under ConvArray.
func AnalyticBER(b, mt, mr int, eb, n0 float64, conv Convention) float64 {
	if eb <= 0 {
		return saturationBER(b)
	}
	l := mt * mr
	pre, k := berShape(b)
	norm := float64(mt)
	if conv == ConvArray {
		norm = 1
	}
	return pre * modulation.BERRayleighMRC(l, k/2*eb/(n0*norm))
}

// berShape returns the prefactor and Q-argument coefficient of the
// paper's BER expressions: p = pre * Q(sqrt(k * gamma_b)).
func berShape(b int) (pre, k float64) {
	if b <= 1 {
		return 1, 2
	}
	m := math.Pow(2, float64(b))
	pre = 4 / float64(b) * (1 - math.Pow(2, -float64(b)/2))
	k = 3 * float64(b) / (m - 1)
	return pre, k
}

// saturationBER is the zero-energy limit of eq. (5)/(6): pre * 1/2.
// BER targets at or above it are unreachable for that constellation.
func saturationBER(b int) float64 {
	pre, _ := berShape(b)
	return pre / 2
}

// Analytic solves ēb from the closed-form average. The zero value uses
// the paper's N0 and the printed gamma_b convention.
type Analytic struct {
	// N0 is the noise spectral density in W/Hz; 0 means DefaultN0.
	N0 float64
	// Convention selects the gamma_b normalisation (default ConvPaper).
	Convention Convention
}

// EbBar returns ēb(p, b, mt, mr). It errors when the target BER is
// unreachable for the constellation (p >= saturation) or the arguments
// are out of domain.
func (a Analytic) EbBar(p float64, b, mt, mr int) (float64, error) {
	n0 := a.N0
	if n0 == 0 {
		n0 = DefaultN0
	}
	if err := checkArgs(p, b, mt, mr); err != nil {
		return 0, err
	}
	if p >= saturationBER(b) {
		return 0, fmt.Errorf("ebtable: BER target %g unreachable with b=%d (saturates at %g)",
			p, b, saturationBER(b))
	}
	f := func(eb float64) float64 { return AnalyticBER(b, mt, mr, eb, n0, a.Convention) - p }
	eb, err := mathx.BisectLog(f, ebFloor, ebCeiling, 1e-9)
	if err != nil {
		return 0, fmt.Errorf("ebtable: solving ēb(p=%g, b=%d, %dx%d): %w", p, b, mt, mr, err)
	}
	return eb, nil
}

func checkArgs(p float64, b, mt, mr int) error {
	switch {
	case p <= 0 || p >= 1:
		return fmt.Errorf("ebtable: BER target %g outside (0, 1)", p)
	case b < 1 || b > 16:
		return fmt.Errorf("ebtable: constellation size %d outside [1, 16]", b)
	case mt < 1 || mr < 1 || mt > 8 || mr > 8:
		return fmt.Errorf("ebtable: antenna counts %dx%d outside [1, 8]", mt, mr)
	}
	return nil
}
