package ebtable

import (
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"sort"
	"sync"
)

// Solver produces ēb values; Analytic, MonteCarlo and Table itself all
// satisfy it (and, structurally, energy.EbProvider).
type Solver interface {
	EbBar(p float64, b, mt, mr int) (float64, error)
}

// Grid declares the axes a Table is built over — the "set of p, b, mt,
// and mr" of the preprocessing steps in Algorithms 1 and 2.
type Grid struct {
	Ps       []float64
	Bs       []int
	Mts, Mrs []int
}

// DefaultGrid covers the paper's sweeps: BER from 0.1 to 0.0005,
// b in 1..16, and 1..4 cooperating nodes per side.
func DefaultGrid() Grid {
	return Grid{
		Ps:  []float64{0.1, 0.05, 0.01, 0.005, 0.001, 0.0005},
		Bs:  []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16},
		Mts: []int{1, 2, 3, 4},
		Mrs: []int{1, 2, 3, 4},
	}
}

// Validate reports an empty or malformed axis.
func (g Grid) Validate() error {
	if len(g.Ps) == 0 || len(g.Bs) == 0 || len(g.Mts) == 0 || len(g.Mrs) == 0 {
		return fmt.Errorf("ebtable: grid has an empty axis")
	}
	for _, p := range g.Ps {
		if p <= 0 || p >= 1 {
			return fmt.Errorf("ebtable: grid BER %g outside (0, 1)", p)
		}
	}
	return nil
}

// Key identifies one table cell. P is indexed, the rest are literal.
type Key struct {
	PIdx, B, Mt, Mr int
}

// Table is the precomputed ēb lookup loaded into every SU node. Cells
// whose BER target is unreachable for their constellation are absent.
type Table struct {
	Grid Grid
	Vals map[Key]float64
}

// Build fills a table over grid using solver, parallelising across
// cells. A cell whose target is unreachable (saturation) is skipped;
// any other solver failure aborts the build.
func Build(solver Solver, grid Grid) (*Table, error) {
	if err := grid.Validate(); err != nil {
		return nil, err
	}
	type cell struct {
		key Key
		p   float64
	}
	var cells []cell
	for pi, p := range grid.Ps {
		for _, b := range grid.Bs {
			if p >= saturationBER(b) {
				continue // unreachable by construction; skip silently
			}
			for _, mt := range grid.Mts {
				for _, mr := range grid.Mrs {
					cells = append(cells, cell{Key{pi, b, mt, mr}, p})
				}
			}
		}
	}
	vals := make([]float64, len(cells))
	errs := make([]error, len(cells))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(cells) {
		workers = len(cells)
	}
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= len(cells) {
					return
				}
				c := cells[i]
				vals[i], errs[i] = solver.EbBar(c.p, c.key.B, c.key.Mt, c.key.Mr)
			}
		}()
	}
	wg.Wait()
	t := &Table{Grid: grid, Vals: make(map[Key]float64, len(cells))}
	for i, c := range cells {
		if errs[i] != nil {
			return nil, fmt.Errorf("ebtable: building cell %+v: %w", c.key, errs[i])
		}
		t.Vals[c.key] = vals[i]
	}
	return t, nil
}

// EbBar looks ēb up, matching p to the nearest grid point within 1%
// relative tolerance. It implements energy.EbProvider, so a loaded table
// is a drop-in replacement for a live solver.
func (t *Table) EbBar(p float64, b, mt, mr int) (float64, error) {
	pi := -1
	for i, gp := range t.Grid.Ps {
		if math.Abs(gp-p) <= 0.01*gp {
			pi = i
			break
		}
	}
	if pi < 0 {
		return 0, fmt.Errorf("ebtable: BER %g not on the table grid %v", p, t.Grid.Ps)
	}
	v, ok := t.Vals[Key{pi, b, mt, mr}]
	if !ok {
		return 0, fmt.Errorf("ebtable: no cell for p=%g b=%d %dx%d (unreachable or off-grid)", p, b, mt, mr)
	}
	return v, nil
}

// Len returns the number of populated cells.
func (t *Table) Len() int { return len(t.Vals) }

// MinOverB returns the constellation with the smallest ēb for the given
// (p, mt, mr) — the "determine constellation size b which minimizes ēb"
// step the SU nodes run against the loaded table.
func (t *Table) MinOverB(p float64, mt, mr int) (b int, eb float64, err error) {
	bestB, bestEb := -1, math.Inf(1)
	for _, bb := range t.Grid.Bs {
		v, lerr := t.EbBar(p, bb, mt, mr)
		if lerr != nil {
			continue
		}
		if v < bestEb {
			bestB, bestEb = bb, v
		}
	}
	if bestB < 0 {
		return 0, 0, fmt.Errorf("ebtable: no feasible b for p=%g %dx%d", p, mt, mr)
	}
	return bestB, bestEb, nil
}

// gobTable mirrors Table with a flat cell list, since gob cannot encode
// struct-keyed maps deterministically enough for our golden tests.
type gobTable struct {
	Grid  Grid
	Cells []gobCell
}

type gobCell struct {
	Key Key
	Val float64
}

// Save writes the table in gob encoding.
func (t *Table) Save(w io.Writer) error {
	cells := make([]gobCell, 0, len(t.Vals))
	for k, v := range t.Vals {
		cells = append(cells, gobCell{k, v})
	}
	sort.Slice(cells, func(i, j int) bool {
		a, b := cells[i].Key, cells[j].Key
		if a.PIdx != b.PIdx {
			return a.PIdx < b.PIdx
		}
		if a.B != b.B {
			return a.B < b.B
		}
		if a.Mt != b.Mt {
			return a.Mt < b.Mt
		}
		return a.Mr < b.Mr
	})
	return gob.NewEncoder(w).Encode(gobTable{Grid: t.Grid, Cells: cells})
}

// Load reads a table written by Save.
func Load(r io.Reader) (*Table, error) {
	var gt gobTable
	if err := gob.NewDecoder(r).Decode(&gt); err != nil {
		return nil, fmt.Errorf("ebtable: decoding table: %w", err)
	}
	t := &Table{Grid: gt.Grid, Vals: make(map[Key]float64, len(gt.Cells))}
	for _, c := range gt.Cells {
		t.Vals[c.Key] = c.Val
	}
	return t, nil
}

// SaveFile writes the table to path.
func (t *Table) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := t.Save(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads a table from path.
func LoadFile(path string) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
