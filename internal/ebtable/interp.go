package ebtable

import (
	"fmt"
	"math"
	"sort"
)

// EbBarInterp looks ēb up for a BER target that may lie between grid
// points, interpolating log(ēb) linearly in log(p) between the two
// bracketing grid cells. Within grid tolerance it behaves exactly like
// EbBar; outside the grid's p range it refuses rather than extrapolate
// (an extrapolated link budget is a silent lie).
func (t *Table) EbBarInterp(p float64, b, mt, mr int) (float64, error) {
	if v, err := t.EbBar(p, b, mt, mr); err == nil {
		return v, nil
	}
	if p <= 0 || p >= 1 {
		return 0, fmt.Errorf("ebtable: BER %g outside (0, 1)", p)
	}
	// Sort the grid BERs ascending and find the bracket.
	ps := append([]float64(nil), t.Grid.Ps...)
	sort.Float64s(ps)
	if p < ps[0] || p > ps[len(ps)-1] {
		return 0, fmt.Errorf("ebtable: BER %g outside the table range [%g, %g]; refusing to extrapolate",
			p, ps[0], ps[len(ps)-1])
	}
	hiIdx := sort.SearchFloat64s(ps, p)
	lo, hi := ps[hiIdx-1], ps[hiIdx]
	vLo, errLo := t.EbBar(lo, b, mt, mr)
	vHi, errHi := t.EbBar(hi, b, mt, mr)
	if errLo != nil || errHi != nil {
		return 0, fmt.Errorf("ebtable: bracket cells missing for b=%d %dx%d (p in [%g, %g])", b, mt, mr, lo, hi)
	}
	// log-log interpolation: ēb is near power-law in p.
	frac := (math.Log(p) - math.Log(lo)) / (math.Log(hi) - math.Log(lo))
	return math.Exp(math.Log(vLo) + frac*(math.Log(vHi)-math.Log(vLo))), nil
}
