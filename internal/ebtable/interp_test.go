package ebtable

import (
	"math"
	"testing"
)

func interpTable(t *testing.T) *Table {
	t.Helper()
	tab, err := Build(Analytic{}, Grid{
		Ps:  []float64{0.05, 0.01, 0.002, 0.0005},
		Bs:  []int{1, 2},
		Mts: []int{1, 2},
		Mrs: []int{1, 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestInterpExactOnGrid(t *testing.T) {
	tab := interpTable(t)
	want, _ := tab.EbBar(0.01, 2, 2, 2)
	got, err := tab.EbBarInterp(0.01, 2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("on-grid interp %g != lookup %g", got, want)
	}
}

func TestInterpBetweenPoints(t *testing.T) {
	tab := interpTable(t)
	// Off-grid p between 0.01 and 0.002: compare against the live solver.
	p := 0.005
	got, err := tab.EbBarInterp(p, 2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := Analytic{}.EbBar(p, 2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got/exact-1) > 0.10 {
		t.Errorf("interpolated %g vs exact %g (>10%% off)", got, exact)
	}
	// Interpolant is bracketed by the neighbouring cells.
	lo, _ := tab.EbBar(0.01, 2, 2, 2)  // looser target: smaller ēb
	hi, _ := tab.EbBar(0.002, 2, 2, 2) // tighter: larger ēb
	if got < lo || got > hi {
		t.Errorf("interpolant %g outside bracket [%g, %g]", got, lo, hi)
	}
}

func TestInterpRefusesExtrapolation(t *testing.T) {
	tab := interpTable(t)
	if _, err := tab.EbBarInterp(0.2, 2, 2, 2); err == nil {
		t.Error("above-range p should fail")
	}
	if _, err := tab.EbBarInterp(1e-5, 2, 2, 2); err == nil {
		t.Error("below-range p should fail")
	}
	if _, err := tab.EbBarInterp(0, 2, 2, 2); err == nil {
		t.Error("p=0 should fail")
	}
	if _, err := tab.EbBarInterp(0.005, 4, 2, 2); err == nil {
		t.Error("off-grid b should fail (missing bracket cells)")
	}
}

func TestInterpMonotoneAcrossRange(t *testing.T) {
	tab := interpTable(t)
	prev := 0.0
	// Tighter targets (smaller p) need monotonically more energy.
	for _, p := range []float64{0.04, 0.02, 0.008, 0.004, 0.001, 0.0006} {
		v, err := tab.EbBarInterp(p, 1, 2, 1)
		if err != nil {
			t.Fatalf("p=%g: %v", p, err)
		}
		if v <= prev {
			t.Errorf("interp not increasing at p=%g: %g <= %g", p, v, prev)
		}
		prev = v
	}
}
