package ebtable

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/modulation"
)

func TestAnalyticBERShape(t *testing.T) {
	// Zero or negative energy saturates.
	if got := AnalyticBER(1, 1, 1, 0, DefaultN0, ConvPaper); got != 0.5 {
		t.Errorf("saturation b=1: %v", got)
	}
	if got, want := AnalyticBER(4, 1, 1, -1, DefaultN0, ConvPaper), saturationBER(4); got != want {
		t.Errorf("saturation b=4: %v want %v", got, want)
	}
	// Strictly decreasing in eb.
	prev := AnalyticBER(2, 2, 2, 1e-22, DefaultN0, ConvPaper)
	for eb := 2e-22; eb < 1e-17; eb *= 2 {
		cur := AnalyticBER(2, 2, 2, eb, DefaultN0, ConvPaper)
		if cur >= prev {
			t.Fatalf("BER not decreasing at eb=%g", eb)
		}
		prev = cur
	}
}

// TestPaperAnchorSISO reproduces the Section 6.2 spot value: "when b = 2,
// ēb = 1.90e-18 if mt = mr = 1". Our closed form gives 1.98e-18 at
// p = 0.001; the paper's own number carries MC noise, so 10% tolerance.
func TestPaperAnchorSISO(t *testing.T) {
	eb, err := Analytic{}.EbBar(0.001, 2, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(eb/1.90e-18-1) > 0.10 {
		t.Errorf("ēb(0.001, b=2, 1x1) = %.3g, paper anchor 1.90e-18", eb)
	}
}

// TestPaperAnchorMIMO reproduces "ēb = 3.20e-20 if mt = 2 and mr = 3".
// Our exact closed form gives 2.04e-20; the paper's own figure comes from
// its (unpublished) numerical averaging, so the anchor is order-of-
// magnitude: within 2x.
func TestPaperAnchorMIMO(t *testing.T) {
	eb, err := Analytic{}.EbBar(0.001, 2, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if eb < 3.20e-20/2 || eb > 3.20e-20*2 {
		t.Errorf("ēb(0.001, b=2, 2x3) = %.3g, paper anchor 3.20e-20", eb)
	}
	// The headline claim: cooperation buys orders of magnitude.
	siso, _ := Analytic{}.EbBar(0.001, 2, 1, 1)
	if ratio := siso / eb; ratio < 30 {
		t.Errorf("SISO/MIMO ēb ratio = %v, paper reports ~60x for this pair", ratio)
	}
}

func TestEbBarMonotonicity(t *testing.T) {
	a := Analytic{}
	// Decreasing in diversity order.
	prev := math.Inf(1)
	for _, pair := range [][2]int{{1, 1}, {1, 2}, {2, 2}, {2, 3}, {4, 4}} {
		eb, err := a.EbBar(0.001, 2, pair[0], pair[1])
		if err != nil {
			t.Fatal(err)
		}
		if eb >= prev {
			t.Errorf("%dx%d: ēb=%g not below %g", pair[0], pair[1], eb, prev)
		}
		prev = eb
	}
	// Increasing as the BER target tightens.
	e1, _ := a.EbBar(0.01, 2, 2, 2)
	e2, _ := a.EbBar(0.001, 2, 2, 2)
	e3, _ := a.EbBar(0.0001, 2, 2, 2)
	if !(e1 < e2 && e2 < e3) {
		t.Errorf("ēb not increasing with tighter BER: %g %g %g", e1, e2, e3)
	}
}

func TestEbBarVerifiesDefiningEquation(t *testing.T) {
	a := Analytic{}
	for _, b := range []int{1, 2, 4, 8} {
		for _, p := range []float64{0.01, 0.001} {
			eb, err := a.EbBar(p, b, 2, 2)
			if err != nil {
				t.Fatal(err)
			}
			if got := AnalyticBER(b, 2, 2, eb, DefaultN0, ConvPaper); math.Abs(got/p-1) > 1e-6 {
				t.Errorf("b=%d p=%g: BER(ēb)=%g", b, p, got)
			}
		}
	}
}

func TestEbBarDomainErrors(t *testing.T) {
	a := Analytic{}
	cases := []struct {
		p         float64
		b, mt, mr int
	}{
		{0, 2, 1, 1},
		{1, 2, 1, 1},
		{0.001, 0, 1, 1},
		{0.001, 17, 1, 1},
		{0.001, 2, 0, 1},
		{0.001, 2, 1, 9},
	}
	for _, c := range cases {
		if _, err := a.EbBar(c.p, c.b, c.mt, c.mr); err == nil {
			t.Errorf("EbBar(%v, %d, %d, %d) should fail", c.p, c.b, c.mt, c.mr)
		}
	}
	// Saturation: b=16 caps near 0.125, so p=0.2 is unreachable.
	if _, err := a.EbBar(0.2, 16, 1, 1); err == nil {
		t.Error("unreachable target should fail")
	}
}

func TestMonteCarloMatchesAnalytic(t *testing.T) {
	mc := &MonteCarlo{Samples: 60000, Seed: 71}
	a := Analytic{}
	for _, tc := range []struct {
		p         float64
		b, mt, mr int
	}{
		{0.005, 1, 1, 1},
		{0.001, 2, 2, 1},
		{0.001, 2, 2, 3},
		{0.01, 4, 3, 2},
	} {
		want, err := a.EbBar(tc.p, tc.b, tc.mt, tc.mr)
		if err != nil {
			t.Fatal(err)
		}
		got, err := mc.EbBar(tc.p, tc.b, tc.mt, tc.mr)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got/want-1) > 0.10 {
			t.Errorf("%+v: MC %.3g vs analytic %.3g", tc, got, want)
		}
	}
}

func TestMonteCarloDeterministic(t *testing.T) {
	m1 := &MonteCarlo{Samples: 5000, Seed: 9}
	m2 := &MonteCarlo{Samples: 5000, Seed: 9}
	a, _ := m1.EbBar(0.005, 2, 2, 2)
	b, _ := m2.EbBar(0.005, 2, 2, 2)
	if a != b {
		t.Errorf("same seed gave %g and %g", a, b)
	}
	// Worker count must not change the estimate.
	m3 := &MonteCarlo{Samples: 5000, Seed: 9, Workers: 1}
	c, _ := m3.EbBar(0.005, 2, 2, 2)
	if a != c {
		t.Errorf("worker count changed result: %g vs %g", a, c)
	}
}

func TestMonteCarloRicianNeedsLessEnergy(t *testing.T) {
	// A strong line-of-sight component reduces fading margin, so the
	// required ēb drops relative to Rayleigh.
	ray := &MonteCarlo{Samples: 30000, Seed: 5}
	ric := &MonteCarlo{Samples: 30000, Seed: 5, RicianK: 10}
	a, err1 := ray.EbBar(0.001, 1, 1, 1)
	b, err2 := ric.EbBar(0.001, 1, 1, 1)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if b >= a {
		t.Errorf("Rician ēb %g should be below Rayleigh %g", b, a)
	}
}

func TestBuildAndLookup(t *testing.T) {
	grid := Grid{
		Ps:  []float64{0.01, 0.001},
		Bs:  []int{1, 2, 4},
		Mts: []int{1, 2},
		Mrs: []int{1, 3},
	}
	tab, err := Build(Analytic{}, grid)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 2*3*2*2 {
		t.Errorf("Len = %d, want 24", tab.Len())
	}
	// Lookup matches the live solver.
	want, _ := Analytic{}.EbBar(0.001, 2, 2, 3)
	got, err := tab.EbBar(0.001, 2, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("table %g vs solver %g", got, want)
	}
	// Near-miss p within 1% tolerance resolves to the grid point.
	if _, err := tab.EbBar(0.001002, 2, 2, 3); err != nil {
		t.Errorf("1%% tolerance lookup failed: %v", err)
	}
	// Off-grid p fails.
	if _, err := tab.EbBar(0.5, 2, 2, 3); err == nil {
		t.Error("off-grid p should fail")
	}
	// Off-grid b fails.
	if _, err := tab.EbBar(0.001, 3, 2, 3); err == nil {
		t.Error("off-grid b should fail")
	}
}

func TestBuildSkipsSaturatedCells(t *testing.T) {
	grid := Grid{
		Ps:  []float64{0.2}, // unreachable for b=16 (caps at ~0.125)
		Bs:  []int{1, 16},
		Mts: []int{1},
		Mrs: []int{1},
	}
	tab, err := Build(Analytic{}, grid)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tab.EbBar(0.2, 1, 1, 1); err != nil {
		t.Errorf("reachable cell missing: %v", err)
	}
	if _, err := tab.EbBar(0.2, 16, 1, 1); err == nil {
		t.Error("saturated cell should be absent")
	}
}

func TestBuildValidatesGrid(t *testing.T) {
	if _, err := Build(Analytic{}, Grid{}); err == nil {
		t.Error("empty grid should fail")
	}
	if _, err := Build(Analytic{}, Grid{Ps: []float64{2}, Bs: []int{1}, Mts: []int{1}, Mrs: []int{1}}); err == nil {
		t.Error("invalid p should fail")
	}
}

func TestMinOverB(t *testing.T) {
	tab, err := Build(Analytic{}, Grid{
		Ps:  []float64{0.001},
		Bs:  []int{1, 2, 4, 8},
		Mts: []int{2},
		Mrs: []int{2},
	})
	if err != nil {
		t.Fatal(err)
	}
	b, eb, err := tab.MinOverB(0.001, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, bb := range []int{1, 2, 4, 8} {
		v, _ := tab.EbBar(0.001, bb, 2, 2)
		if v < eb {
			t.Errorf("MinOverB picked b=%d (%g) but b=%d gives %g", b, eb, bb, v)
		}
	}
	if _, _, err := tab.MinOverB(0.001, 7, 7); err == nil {
		t.Error("off-grid antennas should fail")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	tab, err := Build(Analytic{}, Grid{
		Ps:  []float64{0.005, 0.0005},
		Bs:  []int{1, 2},
		Mts: []int{1, 2},
		Mrs: []int{1, 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tab.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != tab.Len() {
		t.Fatalf("Len %d vs %d", back.Len(), tab.Len())
	}
	for k, v := range tab.Vals {
		if back.Vals[k] != v {
			t.Errorf("cell %+v: %g vs %g", k, back.Vals[k], v)
		}
	}
	// Corrupt stream fails cleanly.
	if _, err := Load(bytes.NewReader([]byte("not a gob"))); err == nil {
		t.Error("garbage stream should fail")
	}
}

func TestSaveLoadFile(t *testing.T) {
	tab, err := Build(Analytic{}, Grid{
		Ps: []float64{0.001}, Bs: []int{2}, Mts: []int{1}, Mrs: []int{1},
	})
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/eb.gob"
	if err := tab.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 1 {
		t.Errorf("Len = %d", back.Len())
	}
	if _, err := LoadFile(path + ".missing"); err == nil {
		t.Error("missing file should fail")
	}
}

// TestQPSKEquivalence cross-checks AnalyticBER against the independent
// closed form in modulation: for b<=2 the expression is exactly BPSK
// with L-branch MRC.
func TestQPSKEquivalence(t *testing.T) {
	for _, eb := range []float64{1e-20, 1e-19, 1e-18} {
		got := AnalyticBER(2, 2, 2, eb, DefaultN0, ConvPaper)
		want := modulation.BERRayleighMRC(4, eb/(2*DefaultN0))
		if math.Abs(got/want-1) > 1e-12 {
			t.Errorf("eb=%g: %g vs %g", eb, got, want)
		}
	}
}

func TestConventions(t *testing.T) {
	// Under ConvArray the solved ēb is exactly the ConvPaper value
	// divided by mt (the SNR expressions differ by that factor alone).
	paper := Analytic{}
	array := Analytic{Convention: ConvArray}
	for _, mt := range []int{1, 2, 3, 4} {
		a, err := paper.EbBar(0.001, 2, mt, 2)
		if err != nil {
			t.Fatal(err)
		}
		b, err := array.EbBar(0.001, 2, mt, 2)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(b*float64(mt)/a-1) > 1e-6 {
			t.Errorf("mt=%d: array %g * mt != paper %g", mt, b, a)
		}
	}
	// Monte Carlo honours the convention the same way.
	mcPaper := &MonteCarlo{Samples: 20000, Seed: 3}
	mcArray := &MonteCarlo{Samples: 20000, Seed: 3, Convention: ConvArray}
	a, err1 := mcPaper.EbBar(0.005, 2, 3, 1)
	b, err2 := mcArray.EbBar(0.005, 2, 3, 1)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if math.Abs(b*3/a-1) > 1e-3 {
		t.Errorf("MC conventions differ: %g vs %g", a, b)
	}
}

func TestBuildWithMonteCarloSolver(t *testing.T) {
	grid := Grid{
		Ps: []float64{0.005}, Bs: []int{1, 2}, Mts: []int{1, 2}, Mrs: []int{1},
	}
	tab, err := Build(&MonteCarlo{Samples: 8000, Seed: 17}, grid)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 4 {
		t.Fatalf("Len = %d", tab.Len())
	}
	// Cells track the analytic values.
	for _, b := range []int{1, 2} {
		got, err := tab.EbBar(0.005, b, 2, 1)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := Analytic{}.EbBar(0.005, b, 2, 1)
		if math.Abs(got/want-1) > 0.15 {
			t.Errorf("b=%d: MC table %g vs analytic %g", b, got, want)
		}
	}
}
