package httpapi

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/service"
	"repro/internal/store"
)

// newPersistentTestServer is newTestServer over a durable store,
// including warming and the campaign endpoints — the full -data-dir
// boot sequence in miniature.
func newPersistentTestServer(t *testing.T, dir string, cfg service.Config) (*httptest.Server, *service.Service, *campaign.Manager) {
	t.Helper()
	st, err := store.Open(store.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Store = st
	if cfg.Runner == nil {
		cfg.Runner = service.ExperimentRunner
		cfg.KnownIDs = service.KnownExperimentIDs()
	}
	svc, err := service.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	svc.WarmFromStore()
	svc.Start()
	PublishMetrics(svc)
	mgr := campaign.NewManager(st, 2, cfg.Logger)
	mgr.ResumeAll()
	ts := httptest.NewServer(NewMux(svc, Config{Campaigns: mgr}))
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := mgr.Stop(ctx); err != nil {
			t.Errorf("campaign stop: %v", err)
		}
		if err := svc.Stop(ctx); err != nil {
			t.Errorf("Stop: %v", err)
		}
		st.Close()
	})
	return ts, svc, mgr
}

// TestRestartServesResultFromDiskAsCacheHit is the HTTP-level
// acceptance test for durability: compute a report, tear the whole
// server down, boot a fresh one over the same data dir, and the same
// request answers cached=true with identical report bytes.
func TestRestartServesResultFromDiskAsCacheHit(t *testing.T) {
	dir := t.TempDir()
	const body = `{"id":"table1","seed":5,"wait":true}`

	ts1, _, _ := newPersistentTestServer(t, dir, service.Config{Workers: 2})
	resp, first := postJSON(t, ts1.URL+"/v1/experiments", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first run status = %d, body = %v", resp.StatusCode, first)
	}
	if first["state"] != "done" || first["cached"] != false {
		t.Fatalf("first response = %v", first)
	}
	report := first["report"].(string)
	if report == "" {
		t.Fatal("first response has no report")
	}
	ts1.Close() // the rest of cleanup runs at test end; close transport now

	ts2, svc2, _ := newPersistentTestServer(t, dir, service.Config{Workers: 2})
	resp, second := postJSON(t, ts2.URL+"/v1/experiments", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("restart run status = %d, body = %v", resp.StatusCode, second)
	}
	if second["cached"] != true {
		t.Fatalf("restarted server did not serve from disk: %v", second)
	}
	if second["report"] != report {
		t.Error("restarted report differs from the original bytes")
	}
	// Warming put the result in the LRU, so the hit was served from
	// memory; a cold key would count as a disk hit instead.
	if st := svc2.Stats(); st.CacheHits+st.CacheDiskHits != 1 {
		t.Errorf("stats after restart = hits %d, disk hits %d; want exactly one hit",
			st.CacheHits, st.CacheDiskHits)
	}
}

func TestCampaignEndpoints(t *testing.T) {
	dir := t.TempDir()
	ts, _, mgr := newPersistentTestServer(t, dir, service.Config{Workers: 2})

	spec := `{"name":"http-campaign","experiments":[{"id":"ext-conv","seed":3}]}`
	resp, body := postJSON(t, ts.URL+"/v1/campaigns", spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, body = %v", resp.StatusCode, body)
	}
	id, _ := body["campaign"].(string)
	if id == "" || body["started"] != true {
		t.Fatalf("submit response = %v", body)
	}

	// Resubmission is idempotent: same content address, no new run.
	resp, body = postJSON(t, ts.URL+"/v1/campaigns", spec)
	if resp.StatusCode != http.StatusOK || body["campaign"] != id || body["started"] != false {
		t.Fatalf("resubmit = %d %v", resp.StatusCode, body)
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if _, err := mgr.Wait(ctx, id); err != nil {
		t.Fatalf("waiting for campaign: %v", err)
	}

	resp, body = getJSON(t, fmt.Sprintf("%s/v1/campaigns/%s", ts.URL, id))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get status = %d", resp.StatusCode)
	}
	if body["status"] != "done" {
		t.Fatalf("campaign status = %v", body)
	}
	report, _ := body["report"].(string)
	if !strings.Contains(report, "ext-conv") {
		t.Errorf("campaign report missing experiment section:\n%s", report)
	}
	exps, _ := body["experiments"].([]any)
	if len(exps) != 1 {
		t.Fatalf("experiments = %v", body["experiments"])
	}
	if st, _ := exps[0].(map[string]any); st["status"] != "done" {
		t.Errorf("experiment status = %v", exps[0])
	}

	resp, body = getJSON(t, ts.URL+"/v1/campaigns")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list status = %d", resp.StatusCode)
	}
	if list, _ := body["campaigns"].([]any); len(list) != 1 {
		t.Errorf("campaign list = %v", body)
	}

	if resp, _ := getJSON(t, ts.URL+"/v1/campaigns/c0000000000000000"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing campaign status = %d, want 404", resp.StatusCode)
	}

	// A campaign's registry result doubles as a service cache entry: the
	// equivalent experiment request is a hit, not a recomputation.
	resp, body = postJSON(t, ts.URL+"/v1/experiments", `{"id":"ext-conv","seed":3,"wait":true}`)
	if resp.StatusCode != http.StatusOK || body["cached"] != true {
		t.Errorf("campaign-warmed request = %d cached=%v, want a cache hit", resp.StatusCode, body["cached"])
	}
}

func TestCampaignEndpointsWithoutStore(t *testing.T) {
	ts, _ := newTestServer(t, service.Config{Workers: 1})
	resp, body := postJSON(t, ts.URL+"/v1/campaigns", `{"name":"x","experiments":[{"id":"fig6a","seed":1}]}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, body = %v; want 503 without -data-dir", resp.StatusCode, body)
	}
	if msg, _ := body["error"].(string); !strings.Contains(msg, "data-dir") {
		t.Errorf("error %q does not point at -data-dir", msg)
	}
}
