package httpapi

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/service"
	"repro/internal/sim"
)

// TestShardEndpoint drives the worker-side shard API: a valid request
// returns the per-chunk partials, malformed ones get 400s.
func TestShardEndpoint(t *testing.T) {
	ts, _ := newTestServer(t, service.Config{Workers: 1})

	good := cluster.ShardRequest{
		Kernel: "coop.ber",
		Params: map[string]float64{"bits": 8},
		Seed:   7, Trials: 3 * sim.ChunkSize,
		ChunkLo: 1, ChunkHi: 3, ChunkSize: sim.ChunkSize,
	}
	body, _ := json.Marshal(good)
	resp, err := http.Post(ts.URL+"/v1/shards", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	var res cluster.ShardResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if len(res.Partials) != 2 {
		t.Fatalf("%d partials, want 2", len(res.Partials))
	}
	for i, p := range res.Partials {
		if p.N != sim.ChunkSize {
			t.Errorf("partial %d covers %d trials, want %d", i, p.N, sim.ChunkSize)
		}
	}

	for name, bad := range map[string]cluster.ShardRequest{
		"chunk size mismatch": {Kernel: "coop.ber", Seed: 7, Trials: sim.ChunkSize, ChunkHi: 1, ChunkSize: 1024},
		"range out of plan":   {Kernel: "coop.ber", Seed: 7, Trials: sim.ChunkSize, ChunkLo: 0, ChunkHi: 2, ChunkSize: sim.ChunkSize},
		"no kernel":           {Seed: 7, Trials: sim.ChunkSize, ChunkHi: 1, ChunkSize: sim.ChunkSize},
	} {
		body, _ := json.Marshal(bad)
		resp, err := http.Post(ts.URL+"/v1/shards", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", name, resp.StatusCode)
		}
	}
}

// TestHealthzDrainingReturns503 covers the graceful-shutdown health
// flip: once draining, /healthz answers 503 with a JSON body and the
// shard endpoint refuses new work, so coordinators reroute.
func TestHealthzDrainingReturns503(t *testing.T) {
	svc, err := service.New(service.Config{
		Workers: 1,
		Runner:  service.ExperimentRunner,
	})
	if err != nil {
		t.Fatal(err)
	}
	svc.Start()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		svc.Stop(ctx)
	}()

	var draining atomic.Bool
	ts := httptest.NewServer(NewMux(svc, Config{Draining: &draining}))
	defer ts.Close()

	resp, body := getJSON(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("healthy: status %d body %v", resp.StatusCode, body)
	}

	draining.Store(true)
	resp, body = getJSON(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz status = %d, want 503", resp.StatusCode)
	}
	if body["status"] != "draining" {
		t.Fatalf("draining healthz body = %v, want status=draining", body)
	}

	req := cluster.ShardRequest{Kernel: "coop.ber", Seed: 1, Trials: sim.ChunkSize, ChunkHi: 1, ChunkSize: sim.ChunkSize}
	raw, _ := json.Marshal(req)
	sresp, err := http.Post(ts.URL+"/v1/shards", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if sresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining shard status = %d, want 503", sresp.StatusCode)
	}
}

// TestRetryAfterHint pins the 429 hint derivation: queue backlog priced
// at the observed mean job duration, clamped to [1, 60], with the old
// fixed 1s before any job has run.
func TestRetryAfterHint(t *testing.T) {
	cases := []struct {
		st   service.Stats
		want string
	}{
		{service.Stats{}, "1"}, // no history → legacy fallback
		{service.Stats{MeanJobSeconds: 0.01, QueueDepth: 3, Workers: 2}, "1"},
		{service.Stats{MeanJobSeconds: 2, QueueDepth: 3, Workers: 2}, "4"},
		{service.Stats{MeanJobSeconds: 5, QueueDepth: 9, Workers: 1}, "50"},
		{service.Stats{MeanJobSeconds: 30, QueueDepth: 63, Workers: 4}, "60"}, // clamped
		{service.Stats{MeanJobSeconds: 2, QueueDepth: 0, Workers: 0}, "2"},    // worker floor
	}
	for _, tc := range cases {
		if got := retryAfterHint(tc.st); got != tc.want {
			t.Errorf("retryAfterHint(%+v) = %q, want %q", tc.st, got, tc.want)
		}
	}
}

// TestMeanJobSecondsAccumulates checks the Stats plumbing feeding the
// hint: jobs that ran move the mean; before any job it is zero.
func TestMeanJobSecondsAccumulates(t *testing.T) {
	block := make(chan struct{})
	svc, err := service.New(service.Config{
		Workers: 1,
		Runner: func(ctx context.Context, req service.Request) (string, error) {
			<-block
			return "report", nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	svc.Start()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		svc.Stop(ctx)
	}()

	if m := svc.Stats().MeanJobSeconds; m != 0 {
		t.Fatalf("mean before any job = %v, want 0", m)
	}
	jv, err := svc.Submit(service.Request{ID: "fig6a", Seed: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // let the job occupy the worker
	close(block)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := svc.Wait(ctx, jv.ID); err != nil {
		t.Fatal(err)
	}
	if m := svc.Stats().MeanJobSeconds; m <= 0 {
		t.Fatalf("mean after a ran job = %v, want > 0", m)
	}
}

// TestDeleteRunningJobCancelsContext is the running-job cancellation
// contract: DELETE on a job that holds a worker must cancel the job's
// context, land the job in "canceled", and leave no cache entry behind.
func TestDeleteRunningJobCancelsContext(t *testing.T) {
	started := make(chan struct{})
	ctxDone := make(chan struct{})
	cfg := service.Config{
		Workers: 1,
		Runner: func(ctx context.Context, req service.Request) (string, error) {
			close(started)
			<-ctx.Done() // block until cancelled; proves ctx fired
			close(ctxDone)
			return "", ctx.Err()
		},
		KnownIDs: []string{"blocky"},
	}
	ts, svc := newTestServer(t, cfg)

	resp, body := postJSON(t, ts.URL+"/v1/experiments", `{"id":"blocky","seed":1}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", resp.StatusCode)
	}
	jobID, _ := body["job"].(string)
	key, _ := body["key"].(string)
	if jobID == "" || key == "" {
		t.Fatalf("submit response missing job/key: %v", body)
	}

	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("job never started running")
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+jobID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("delete status = %d, want 200", dresp.StatusCode)
	}

	// The running job's context must actually fire — a cancel that only
	// flips the state but leaves the runner blocked would leak the
	// worker forever.
	select {
	case <-ctxDone:
	case <-time.After(5 * time.Second):
		t.Fatal("DELETE did not cancel the running job's context")
	}

	// The job must settle in "canceled" (never "failed": the runner
	// returning ctx.Err() after an explicit cancel is not a failure).
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, jbody := getJSON(t, fmt.Sprintf("%s/v1/jobs/%s", ts.URL, jobID))
		if st, _ := jbody["state"].(string); st == string(service.StateCanceled) {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("job state = %q, want %q", st, service.StateCanceled)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// No cache entry may exist for the cancelled job's key: a later
	// identical request must recompute, not read a poisoned result.
	if _, ok := svc.Result(service.Key(key)); ok {
		t.Fatal("cancelled job left a cache entry behind")
	}
	rresp, err := http.Get(ts.URL + "/v1/results/" + key)
	if err != nil {
		t.Fatal(err)
	}
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusNotFound {
		t.Fatalf("results status = %d, want 404", rresp.StatusCode)
	}
	if n := svc.Stats().CacheEntries; n != 0 {
		t.Fatalf("cache entries = %d, want 0", n)
	}
}
