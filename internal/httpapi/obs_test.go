package httpapi

import (
	"bufio"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/service"
)

var promSample = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [^ ]+$`)

func TestMetricsPromExposition(t *testing.T) {
	ts, _ := newTestServer(t, service.Config{Workers: 1})

	// Move the job counters so the scrape reflects real traffic.
	resp, body := postJSON(t, ts.URL+"/v1/experiments",
		`{"id":"fig6a","seed":11,"quick":true,"wait":true}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("seed job: status=%d body=%v", resp.StatusCode, body)
	}

	scrape, err := http.Get(ts.URL + "/metrics/prom")
	if err != nil {
		t.Fatal(err)
	}
	defer scrape.Body.Close()
	if scrape.StatusCode != http.StatusOK {
		t.Fatalf("scrape status = %d", scrape.StatusCode)
	}
	if ct := scrape.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	raw, err := io.ReadAll(scrape.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(raw)

	// The whole body parses: comments or exactly one sample per line.
	typed := map[string]bool{}
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			t.Fatal("blank line in exposition output")
		}
		if strings.HasPrefix(line, "# TYPE ") {
			typed[strings.Fields(line)[2]] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !promSample.MatchString(line) {
			t.Errorf("malformed sample line %q", line)
		}
	}

	// Core metric names from the acceptance list, with TYPE headers.
	for _, name := range []string{
		"cogmimod_jobs_total",
		"cogmimod_queue_depth",
		"cogmimod_cache_hits_total",
		"cogmimod_job_duration_seconds",
		"cogmimod_mc_trials_total",
		"cogmimod_uptime_seconds",
		"cogmimod_http_request_duration_seconds",
	} {
		if !typed[name] {
			t.Errorf("missing # TYPE header for %s", name)
		}
	}
	for _, sample := range []string{
		`cogmimod_jobs_total{status="done"} `,
		`cogmimod_jobs_total{status="rejected"} `,
		"cogmimod_job_duration_seconds_bucket{le=\"+Inf\"} ",
		"cogmimod_job_duration_seconds_count ",
		"cogmimod_cache_misses_total ",
	} {
		if !strings.Contains(out, sample) {
			t.Errorf("scrape missing sample %q", sample)
		}
	}
}

func TestTraceIDRoundTrip(t *testing.T) {
	ts, _ := newTestServer(t, service.Config{Workers: 1})

	// A caller-supplied trace id is honoured end to end: echoed in the
	// response header and recorded on the job itself.
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/experiments",
		strings.NewReader(`{"id":"fig6a","seed":21,"quick":true,"wait":true}`))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Trace-Id", "cafe0123")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("X-Trace-Id"); got != "cafe0123" {
		t.Fatalf("echoed trace id = %q, want cafe0123", got)
	}
	raw, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(raw), `"trace_id": "cafe0123"`) {
		t.Errorf("job view missing trace id:\n%s", raw)
	}

	// Without the header the server generates one.
	resp2, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if got := resp2.Header.Get("X-Trace-Id"); len(got) != 32 {
		t.Fatalf("generated trace id = %q, want 32 hex chars", got)
	}
}

func TestJobProgressOverHTTP(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	runner := func(ctx context.Context, req service.Request) (string, error) {
		p := obs.ProgressFrom(ctx)
		p.AddTotal(3)
		p.Add(1)
		close(started)
		select {
		case <-ctx.Done():
			return "", ctx.Err()
		case <-release:
		}
		p.Add(2)
		return "r", nil
	}
	ts, _ := newTestServer(t, service.Config{Workers: 1, Runner: runner})

	resp, body := postJSON(t, ts.URL+"/v1/experiments", `{"id":"x","seed":1}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	jobID, _ := body["job"].(string)
	<-started

	// Mid-flight the endpoint reports partial progress.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, body = getJSON(t, ts.URL+"/v1/jobs/"+jobID)
		if p, ok := body["progress"].(map[string]any); ok && p["done_trials"].(float64) >= 1 {
			if p["total_trials"].(float64) != 3 {
				t.Fatalf("total_trials = %v, want 3", p["total_trials"])
			}
			if body["started_at"] == nil || body["queued_at"] == nil {
				t.Fatalf("running job missing timestamps: %v", body)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no progress reported: %v", body)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// After completion done_trials reaches total_trials and stays there.
	close(release)
	for {
		_, body = getJSON(t, ts.URL+"/v1/jobs/"+jobID)
		if body["state"] == "done" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job did not finish: %v", body)
		}
		time.Sleep(5 * time.Millisecond)
	}
	p, ok := body["progress"].(map[string]any)
	if !ok {
		t.Fatalf("finished job missing progress: %v", body)
	}
	if p["done_trials"].(float64) != 3 || p["total_trials"].(float64) != 3 {
		t.Fatalf("final progress = %v, want 3/3", p)
	}
	if body["finished_at"] == nil {
		t.Fatalf("finished job missing finished_at: %v", body)
	}
	if es, ok := p["elapsed_seconds"].(float64); !ok || es < 0 {
		t.Fatalf("elapsed_seconds = %v", p["elapsed_seconds"])
	}
}

func TestPprofMountGated(t *testing.T) {
	ts, _ := newTestServer(t, service.Config{Workers: 1})
	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof must be off by default, got %d", resp.StatusCode)
	}

	svc, err := service.New(service.Config{Workers: 1, Runner: func(ctx context.Context, req service.Request) (string, error) {
		return "r", nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	svc.Start()
	defer svc.Stop(context.Background())
	tsOn := httptest.NewServer(NewMux(svc, Config{Pprof: true}))
	t.Cleanup(tsOn.Close)
	resp2, err := http.Get(tsOn.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("pprof index status = %d with -pprof", resp2.StatusCode)
	}
}
