package httpapi

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/service"
)

// defaultEventInterval floors the snapshot rate of job event streams
// when the config leaves EventInterval zero: frequent enough to feel
// live, coarse enough that a thousand watchers cost almost nothing.
const defaultEventInterval = 100 * time.Millisecond

// serveJobEvents streams a job's snapshots as server-sent events until
// the job finishes or the client disconnects:
//
//	event: progress            non-terminal snapshot (JobView JSON)
//	event: complete            terminal snapshot, report attached
//
// Snapshots are pushed from the job's own progress signal — no polling
// on either side of the connection. ?interval= (a Go duration) slows
// the stream below the server floor; the terminal event always flushes
// immediately regardless of interval.
func serveJobEvents(svc *service.Service, cfg Config, w http.ResponseWriter, r *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "streaming unsupported by connection")
		return
	}
	interval := cfg.EventInterval
	if interval <= 0 {
		interval = defaultEventInterval
	}
	if q := r.URL.Query().Get("interval"); q != "" {
		d, err := time.ParseDuration(q)
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("bad interval %q: %v", q, err))
			return
		}
		if d > interval {
			interval = d
		}
	}
	ch, err := svc.Watch(r.Context(), r.PathValue("id"), interval)
	if err != nil {
		httpError(w, http.StatusNotFound, err.Error())
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	h.Set("X-Accel-Buffering", "no") // defeat buffering reverse proxies
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	seq := 0
	for jv := range ch {
		name := "progress"
		var payload any = jv
		if jv.State.Terminal() {
			name = "complete"
			payload = withReport(svc, jv)
		}
		if err := writeEvent(w, seq, name, payload); err != nil {
			return // client gone; Watch unwinds via r.Context()
		}
		flusher.Flush()
		seq++
	}
}

// writeEvent emits one SSE frame. The JSON payload is a single line
// (encoding/json never emits raw newlines), so one data: field holds
// the whole event.
func writeEvent(w io.Writer, id int, name string, payload any) error {
	data, err := json.Marshal(payload)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", id, name, data)
	return err
}

// Event is one parsed server-sent event.
type Event struct {
	ID   string
	Name string
	Data []byte
}

// ReadSSE parses a text/event-stream body, calling fn for each event
// until the stream ends, ctx-free: cancel by closing the reader (the
// HTTP response body). fn returning an error stops the scan and
// returns that error; a clean end of stream returns nil. Shared by
// cogsim's follow mode, the load generator and the tests, so all
// clients agree with the server on framing.
func ReadSSE(r io.Reader, fn func(Event) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var ev Event
	pending := false
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "": // blank line terminates an event
			if pending {
				if err := fn(ev); err != nil {
					return err
				}
				ev, pending = Event{}, false
			}
		case strings.HasPrefix(line, ":"): // comment / keep-alive
		case strings.HasPrefix(line, "id:"):
			ev.ID, pending = strings.TrimSpace(line[len("id:"):]), true
		case strings.HasPrefix(line, "event:"):
			ev.Name, pending = strings.TrimSpace(line[len("event:"):]), true
		case strings.HasPrefix(line, "data:"):
			chunk := strings.TrimPrefix(line[len("data:"):], " ")
			if len(ev.Data) > 0 {
				ev.Data = append(ev.Data, '\n')
			}
			ev.Data, pending = append(ev.Data, chunk...), true
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if pending { // stream ended without a trailing blank line
		return fn(ev)
	}
	return nil
}
