package httpapi

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/tenant"
)

// TestTenantHeaderFlowsIntoJob: the X-Tenant-Id header names the job's
// tenant; an explicit body field wins over the header; anonymous
// requests land on the default tenant; invalid ids are 400s.
func TestTenantHeaderFlowsIntoJob(t *testing.T) {
	ts, _ := newTestServer(t, service.Config{Workers: 1})

	do := func(hdr, body string) (int, map[string]any) {
		t.Helper()
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/experiments", strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		if hdr != "" {
			req.Header.Set(tenant.Header, hdr)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var decoded map[string]any
		json.NewDecoder(resp.Body).Decode(&decoded)
		return resp.StatusCode, decoded
	}

	code, body := do("acme", `{"id":"fig6a","seed":31,"quick":true,"wait":true}`)
	if code != http.StatusOK || body["tenant"] != "acme" {
		t.Fatalf("header tenant: code=%d tenant=%v", code, body["tenant"])
	}
	code, body = do("acme", `{"id":"fig6a","seed":32,"quick":true,"wait":true,"tenant":"explicit"}`)
	if code != http.StatusOK || body["tenant"] != "explicit" {
		t.Fatalf("body tenant should win: code=%d tenant=%v", code, body["tenant"])
	}
	code, body = do("", `{"id":"fig6a","seed":33,"quick":true,"wait":true}`)
	if code != http.StatusOK || body["tenant"] != tenant.DefaultID {
		t.Fatalf("anonymous tenant: code=%d tenant=%v", code, body["tenant"])
	}
	code, body = do("not a valid id!", `{"id":"fig6a","seed":34,"quick":true}`)
	if code != http.StatusBadRequest {
		t.Fatalf("invalid tenant id: code=%d body=%v", code, body)
	}
}

// TestQuotaReturns429WithTenantRetryAfter: an over-quota tenant gets a
// 429 whose Retry-After reflects its own bucket, while another tenant
// submits freely.
func TestQuotaReturns429WithTenantRetryAfter(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	runner := func(ctx context.Context, req service.Request) (string, error) {
		select {
		case <-ctx.Done():
			return "", ctx.Err()
		case <-release:
			return "r", nil
		}
	}
	ts, _ := newTestServer(t, service.Config{
		Workers: 1,
		Runner:  runner,
		// One job every 100 seconds: the second submission is over quota
		// with a large, clearly bucket-derived Retry-After.
		Quota: tenant.Quota{Rate: 0.01, Burst: 1},
	})

	submit := func(tid string, seed int) *http.Response {
		t.Helper()
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/experiments",
			strings.NewReader(fmt.Sprintf(`{"id":"x","seed":%d}`, seed)))
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(tenant.Header, tid)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	if resp := submit("greedy", 1); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submission status = %d", resp.StatusCode)
	}
	resp := submit("greedy", 2)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota status = %d, want 429", resp.StatusCode)
	}
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q", resp.Header.Get("Retry-After"))
	}
	if secs < 10 { // bucket refills in ~100s; hint must reflect that, not "1"
		t.Errorf("Retry-After = %d, want a bucket-derived wait", secs)
	}
	if resp := submit("modest", 3); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("bystander tenant status = %d", resp.StatusCode)
	}
}

// TestJobEventsStreamsToCompletion is the SSE acceptance path: a
// client receives monotonic progress events without polling and the
// stream ends with a complete event carrying the report.
func TestJobEventsStreamsToCompletion(t *testing.T) {
	const steps = 4
	gate := make(chan struct{}, steps)
	runner := func(ctx context.Context, req service.Request) (string, error) {
		p := obs.ProgressFrom(ctx)
		p.AddTotal(steps)
		for i := 0; i < steps; i++ {
			select {
			case <-gate:
			case <-ctx.Done():
				return "", ctx.Err()
			}
			p.Add(1)
		}
		return "sse-report", nil
	}
	ts, _ := newTestServer(t, service.Config{Workers: 1, Runner: runner})

	resp, body := postJSON(t, ts.URL+"/v1/experiments", `{"id":"x","seed":1,"tenant":"streamer"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	jobID, _ := body["job"].(string)

	sresp, err := http.Get(ts.URL + "/v1/jobs/" + jobID + "/events?interval=1ms")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("events status = %d", sresp.StatusCode)
	}
	if ct := sresp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}

	go func() {
		for i := 0; i < steps; i++ {
			gate <- struct{}{}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	var events []Event
	var prevDone float64 = -1
	err = ReadSSE(sresp.Body, func(ev Event) error {
		events = append(events, ev)
		var jv map[string]any
		if err := json.Unmarshal(ev.Data, &jv); err != nil {
			return fmt.Errorf("event %q payload: %w", ev.Name, err)
		}
		if jv["job"] != jobID || jv["tenant"] != "streamer" {
			return fmt.Errorf("event for wrong job: %v", jv)
		}
		if p, ok := jv["progress"].(map[string]any); ok {
			done := p["done_trials"].(float64)
			if done < prevDone {
				return fmt.Errorf("progress went backwards: %v after %v", done, prevDone)
			}
			prevDone = done
		}
		if ev.Name == "complete" {
			if jv["state"] != "done" {
				return fmt.Errorf("complete event state = %v", jv["state"])
			}
			if jv["report"] != "sse-report" {
				return fmt.Errorf("complete event missing report: %v", jv["report"])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) < 2 {
		t.Fatalf("stream carried %d events, want initial + completion at least", len(events))
	}
	last := events[len(events)-1]
	if last.Name != "complete" {
		t.Fatalf("final event = %q, want complete", last.Name)
	}
	if prevDone != steps {
		t.Fatalf("final done_trials = %v, want %d", prevDone, steps)
	}
	for _, ev := range events[:len(events)-1] {
		if ev.Name != "progress" {
			t.Fatalf("non-terminal event named %q", ev.Name)
		}
	}

	// Unknown jobs 404 before any stream starts.
	missing, err := http.Get(ts.URL + "/v1/jobs/j99999999/events")
	if err != nil {
		t.Fatal(err)
	}
	missing.Body.Close()
	if missing.StatusCode != http.StatusNotFound {
		t.Fatalf("missing job events status = %d", missing.StatusCode)
	}
}

// TestHealthzReportsQueueAndTenants: the probe carries live scheduler
// detail next to the status flag.
func TestHealthzReportsQueueAndTenants(t *testing.T) {
	started := make(chan string, 2)
	release := make(chan struct{})
	defer close(release)
	ts, _ := newTestServer(t, service.Config{
		Workers: 1,
		Runner: func(ctx context.Context, req service.Request) (string, error) {
			select {
			case started <- req.ID:
			default:
			}
			select {
			case <-ctx.Done():
				return "", ctx.Err()
			case <-release:
				return "r", nil
			}
		},
	})

	// One running job plus one queued job across two tenants.
	for i, tid := range []string{"a", "b"} {
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/experiments",
			strings.NewReader(fmt.Sprintf(`{"id":"x","seed":%d}`, i)))
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(tenant.Header, tid)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %s status = %d", tid, resp.StatusCode)
		}
	}
	<-started

	resp, body := getJSON(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("healthz = %d %v", resp.StatusCode, body)
	}
	if body["queue_depth"].(float64) != 1 {
		t.Errorf("queue_depth = %v, want 1", body["queue_depth"])
	}
	if body["active_tenants"].(float64) != 2 {
		t.Errorf("active_tenants = %v, want 2", body["active_tenants"])
	}
	workers, ok := body["workers"].(map[string]any)
	if !ok {
		t.Fatalf("healthz missing workers detail: %v", body)
	}
	if workers["total"].(float64) != 1 || workers["busy"].(float64) != 1 || workers["idle"].(float64) != 0 {
		t.Errorf("worker counts = %v, want total 1 busy 1 idle 0", workers)
	}

	resp, body = getJSON(t, ts.URL+"/v1/tenants")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tenants status = %d", resp.StatusCode)
	}
	if list, _ := body["tenants"].([]any); len(list) != 2 {
		t.Errorf("tenants list = %v", body["tenants"])
	}
}

// TestReadSSEFraming pins the client-side parser against hand-written
// streams: multi-line data, comments, missing trailing blank line.
func TestReadSSEFraming(t *testing.T) {
	stream := ": keep-alive\n" +
		"id: 0\nevent: progress\ndata: {\"a\":1}\n\n" +
		"data: line1\ndata: line2\n\n" +
		"event: complete\ndata: {\"b\":2}\n" // no trailing blank line
	var got []Event
	err := ReadSSE(strings.NewReader(stream), func(ev Event) error {
		got = append(got, ev)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d events, want 3: %+v", len(got), got)
	}
	if got[0].ID != "0" || got[0].Name != "progress" || string(got[0].Data) != `{"a":1}` {
		t.Errorf("event 0 = %+v", got[0])
	}
	if string(got[1].Data) != "line1\nline2" {
		t.Errorf("multi-line data = %q", got[1].Data)
	}
	if got[2].Name != "complete" || string(got[2].Data) != `{"b":2}` {
		t.Errorf("unterminated final event = %+v", got[2])
	}
	wantErr := fmt.Errorf("stop")
	err = ReadSSE(strings.NewReader(stream), func(ev Event) error { return wantErr })
	if err != wantErr {
		t.Errorf("callback error not propagated: %v", err)
	}
}

// TestJobEventsAdaptiveShrinkingTotal: adaptive runs retire unspent
// budget by shrinking the progress total mid-run. The SSE stream must
// keep done <= total in every event, done must stay monotonic, and the
// final state must read 100% of the realized (shrunk) total.
func TestJobEventsAdaptiveShrinkingTotal(t *testing.T) {
	gate := make(chan struct{}, 3)
	runner := func(ctx context.Context, req service.Request) (string, error) {
		p := obs.ProgressFrom(ctx)
		p.AddTotal(1000) // the full budget, advertised up front
		for i := 0; i < 3; i++ {
			select {
			case <-gate:
			case <-ctx.Done():
				return "", ctx.Err()
			}
			p.Add(100)
		}
		p.AddTotal(-700) // stopping rule fired: retire the unspent budget
		return "adaptive-report", nil
	}
	ts, _ := newTestServer(t, service.Config{Workers: 1, Runner: runner})

	resp, body := postJSON(t, ts.URL+"/v1/experiments", `{"id":"x","seed":1}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	jobID, _ := body["job"].(string)

	sresp, err := http.Get(ts.URL + "/v1/jobs/" + jobID + "/events?interval=1ms")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()

	go func() {
		for i := 0; i < 3; i++ {
			gate <- struct{}{}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	var prevDone float64 = -1
	var finalDone, finalTotal float64
	err = ReadSSE(sresp.Body, func(ev Event) error {
		var jv map[string]any
		if err := json.Unmarshal(ev.Data, &jv); err != nil {
			return err
		}
		p, ok := jv["progress"].(map[string]any)
		if !ok {
			return nil
		}
		done, total := p["done_trials"].(float64), p["total_trials"].(float64)
		if done < prevDone {
			return fmt.Errorf("done went backwards: %v after %v", done, prevDone)
		}
		if total > 0 && done > total {
			return fmt.Errorf("done %v > total %v: shrink broke the invariant", done, total)
		}
		prevDone = done
		finalDone, finalTotal = done, total
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if finalTotal != 300 || finalDone != 300 {
		t.Fatalf("final progress %v/%v, want 300/300 after budget retire", finalDone, finalTotal)
	}
}
