// Package httpapi is cogmimod's HTTP transport: the v1 JSON API over a
// service.Service, the shard and campaign endpoints, both metric
// surfaces and the observability middleware. It lives outside
// cmd/cogmimod so tools (internal/tools/loadgen) and tests can run the
// real stack in-process against httptest servers.
//
// Multi-tenancy: callers name themselves with the X-Tenant-Id header
// (or a "tenant" field in the submit body); anonymous requests map to
// the default tenant. The id rides on the job through scheduling,
// logs and metrics. Per-tenant quota and backlog rejections answer 429
// with a Retry-After derived from that tenant's own standing, not the
// global queue.
package httpapi

import (
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"net/http/pprof"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/campaign"
	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/sim"
	"repro/internal/tenant"
)

// SubmitRequest is the POST /v1/experiments body: a service.Request
// plus transport-level options.
type SubmitRequest struct {
	service.Request
	// Wait blocks the response until the job finishes; cancellation of
	// the HTTP request (client disconnect, timeout) cancels the job.
	Wait bool `json:"wait,omitempty"`
}

// JobResponse is the JSON envelope for job state; Report is attached
// once the job is done.
type JobResponse struct {
	service.JobView
	Report string `json:"report,omitempty"`
}

// Config carries the transport options main resolves from flags.
type Config struct {
	// Logger receives access logs; nil means slog.Default().
	Logger *slog.Logger
	// Pprof mounts net/http/pprof under /debug/pprof/.
	Pprof bool
	// Draining, when set and true, flips /healthz to 503 and makes the
	// shard endpoint refuse new work — the signal remote coordinators
	// use to stop routing to a node that is shutting down.
	Draining *atomic.Bool
	// NodeID tags shard results served by this node; defaults to the
	// listen address in main.
	NodeID string
	// ShardWorkers caps goroutines per shard execution; 0 = GOMAXPROCS.
	ShardWorkers int
	// Campaigns serves the /v1/campaigns endpoints; nil (no -data-dir)
	// makes them answer 503, since campaigns without durable storage
	// could not keep their crash-safety promise.
	Campaigns *campaign.Manager
	// EventInterval floors the snapshot rate of /v1/jobs/{id}/events
	// streams; 0 means 100ms. Clients may ask for a slower stream with
	// ?interval=, never a faster one.
	EventInterval time.Duration
	// Recorder, when non-nil, enables distributed tracing: /v1 requests
	// run under recording http.request spans, and GET /v1/traces/{id} /
	// GET /debug/traces serve the merged timelines. Nil keeps tracing
	// off with near-zero per-request cost.
	Recorder *obs.TraceRecorder
}

// draining reports the drain state, tolerating a nil flag (tests).
func (c Config) draining() bool {
	return c.Draining != nil && c.Draining.Load()
}

// requestTenant resolves the effective tenant of a submission: an
// explicit body field wins, then the X-Tenant-Id header, and an
// anonymous request falls through to the default tenant inside the
// service. Validation happens in the service so all transports share
// one rule.
func requestTenant(r *http.Request, body string) string {
	if body != "" {
		return body
	}
	return r.Header.Get(tenant.Header)
}

// NewMux wires the service into the v1 JSON API, wrapped in the
// observability middleware (trace ids, access logs, request spans).
func NewMux(svc *service.Service, cfg Config) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/experiments", func(w http.ResponseWriter, r *http.Request) {
		var req SubmitRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
			return
		}
		if strings.TrimSpace(req.ID) == "" {
			httpError(w, http.StatusBadRequest, "missing experiment id")
			return
		}
		req.Tenant = requestTenant(r, req.Tenant)
		jv, err := svc.SubmitCtx(r.Context(), req.Request)
		var qe *service.QuotaError
		switch {
		case errors.Is(err, service.ErrUnknownExperiment),
			errors.Is(err, service.ErrBadTenant):
			httpError(w, http.StatusBadRequest, err.Error())
			return
		case errors.As(err, &qe):
			w.Header().Set("Retry-After", retrySeconds(qe.RetryAfter))
			httpError(w, http.StatusTooManyRequests, err.Error())
			return
		case errors.Is(err, service.ErrQueueFull):
			w.Header().Set("Retry-After", retryAfterFor(svc, err, req.Tenant))
			httpError(w, http.StatusTooManyRequests, err.Error())
			return
		case errors.Is(err, service.ErrStopped):
			httpError(w, http.StatusServiceUnavailable, err.Error())
			return
		case err != nil:
			httpError(w, http.StatusInternalServerError, err.Error())
			return
		}
		if !req.Wait {
			writeJSON(w, http.StatusAccepted, JobResponse{JobView: jv})
			return
		}
		done, err := svc.Wait(r.Context(), jv.ID)
		if err != nil {
			// The waiting client went away: release the worker.
			svc.Cancel(jv.ID)
			httpError(w, http.StatusServiceUnavailable, "request cancelled while waiting")
			return
		}
		writeJSON(w, statusFor(done), withReport(svc, done))
	})

	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		jv, err := svc.Job(r.PathValue("id"))
		if err != nil {
			httpError(w, http.StatusNotFound, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, withReport(svc, jv))
	})

	mux.HandleFunc("GET /v1/jobs/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		serveJobEvents(svc, cfg, w, r)
	})

	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		jv, err := svc.Cancel(r.PathValue("id"))
		if err != nil {
			httpError(w, http.StatusNotFound, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, JobResponse{JobView: jv})
	})

	mux.HandleFunc("GET /v1/results/{key}", func(w http.ResponseWriter, r *http.Request) {
		key := service.Key(r.PathValue("key"))
		_, span := obs.StartSpan(r.Context(), "cache.lookup")
		report, ok := svc.Result(key)
		span.End()
		if !ok {
			httpError(w, http.StatusNotFound, "no result for key")
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"key": string(key), "report": report})
	})

	mux.HandleFunc("GET /v1/experiments", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"experiments": service.KnownExperimentIDs()})
	})

	mux.HandleFunc("GET /v1/kernels", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"kernels": sim.KernelInfos()})
	})

	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, svc.Stats())
	})

	mux.HandleFunc("GET /v1/tenants", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"tenants": svc.Tenants()})
	})

	mux.HandleFunc("POST /v1/campaigns", func(w http.ResponseWriter, r *http.Request) {
		if cfg.Campaigns == nil {
			httpError(w, http.StatusServiceUnavailable, "campaigns need durable storage: start cogmimod with -data-dir")
			return
		}
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("reading spec: %v", err))
			return
		}
		spec, err := campaign.ParseSpec(body)
		if err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		id, started, err := cfg.Campaigns.Submit(spec)
		if err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		// Idempotent by content address: resubmitting a spec returns the
		// existing campaign instead of starting a duplicate.
		code := http.StatusAccepted
		if !started {
			code = http.StatusOK
		}
		st, _ := cfg.Campaigns.Get(id)
		writeJSON(w, code, map[string]any{
			"campaign": id, "started": started, "status": st.Status,
		})
	})

	mux.HandleFunc("GET /v1/campaigns", func(w http.ResponseWriter, r *http.Request) {
		if cfg.Campaigns == nil {
			httpError(w, http.StatusServiceUnavailable, "campaigns need durable storage: start cogmimod with -data-dir")
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"campaigns": cfg.Campaigns.List()})
	})

	mux.HandleFunc("GET /v1/campaigns/{id}", func(w http.ResponseWriter, r *http.Request) {
		if cfg.Campaigns == nil {
			httpError(w, http.StatusServiceUnavailable, "campaigns need durable storage: start cogmimod with -data-dir")
			return
		}
		st, ok := cfg.Campaigns.Get(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, "no such campaign")
			return
		}
		writeJSON(w, http.StatusOK, st)
	})

	mux.HandleFunc("GET /v1/traces/{id}", func(w http.ResponseWriter, r *http.Request) {
		if cfg.Recorder == nil {
			httpError(w, http.StatusServiceUnavailable, "tracing disabled: start cogmimod with -trace-buffer > 0")
			return
		}
		tr, ok := cfg.Recorder.Trace(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, "no such trace (evicted or never recorded)")
			return
		}
		if r.URL.Query().Get("format") == "chrome" {
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("Content-Disposition",
				fmt.Sprintf("attachment; filename=%q", "trace-"+tr.TraceID+".json"))
			if err := obs.WriteChromeTrace(w, tr); err != nil {
				obs.Logger(r.Context()).Warn("chrome trace export failed", "error", err)
			}
			return
		}
		writeJSON(w, http.StatusOK, tr)
	})

	mux.HandleFunc("GET /debug/traces", func(w http.ResponseWriter, r *http.Request) {
		if cfg.Recorder == nil {
			httpError(w, http.StatusServiceUnavailable, "tracing disabled: start cogmimod with -trace-buffer > 0")
			return
		}
		limit := 0
		if n := r.URL.Query().Get("n"); n != "" {
			limit, _ = strconv.Atoi(n)
		}
		writeJSON(w, http.StatusOK, map[string]any{"traces": cfg.Recorder.Recent(limit)})
	})

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		st := svc.Stats()
		body := map[string]any{
			"status":         "ok",
			"version":        buildVersion(),
			"go_version":     runtime.Version(),
			"queue_depth":    st.QueueDepth,
			"queue_capacity": st.QueueCapacity,
			"active_tenants": st.ActiveTenants,
			"workers": map[string]int{
				"total": st.Workers,
				"busy":  st.BusyWorkers,
				"idle":  st.Workers - st.BusyWorkers,
			},
		}
		code := http.StatusOK
		if cfg.draining() {
			body["status"] = "draining"
			code = http.StatusServiceUnavailable
		}
		writeJSON(w, code, body)
	})

	mux.HandleFunc("POST /v1/shards", func(w http.ResponseWriter, r *http.Request) {
		if cfg.draining() {
			httpError(w, http.StatusServiceUnavailable, "draining: not accepting shards")
			return
		}
		var req cluster.ShardRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("bad shard body: %v", err))
			return
		}
		if err := req.Validate(); err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		res, err := cluster.ExecuteShard(r.Context(), cfg.NodeID, cfg.ShardWorkers, req)
		if err != nil {
			if r.Context().Err() != nil {
				// Coordinator cancelled (lost hedge race or aborted run);
				// nobody reads the response.
				httpError(w, http.StatusServiceUnavailable, "shard cancelled")
				return
			}
			httpError(w, http.StatusInternalServerError, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, res)
	})

	// expvar stays on /metrics for existing scrapers; the Prometheus
	// text form of the obs registry is the new first-class endpoint.
	mux.Handle("GET /metrics", expvar.Handler())
	mux.Handle("GET /metrics/prom", obs.Default.Handler())

	if cfg.Pprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}

	logger := cfg.Logger
	if logger == nil {
		logger = slog.Default()
	}
	return withObs(logger, cfg.Recorder, mux)
}

// buildVersion resolves this binary's module version from the embedded
// build info: the tagged version when built from a module, else the VCS
// revision, else "(devel)".
func buildVersion() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	v := bi.Main.Version
	if v == "" || v == "(devel)" {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" && s.Value != "" {
				if len(s.Value) > 12 {
					return s.Value[:12]
				}
				return s.Value
			}
		}
	}
	if v == "" {
		return "(devel)"
	}
	return v
}

// retrySeconds renders a duration as a Retry-After header value,
// rounded up and floored at 1s — a zero hint would invite an immediate
// identical retry.
func retrySeconds(d time.Duration) string {
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// retryAfterFor picks the Retry-After hint for a queue-full rejection.
// A per-tenant bound prices only that tenant's own backlog against its
// fair share of workers; a global bound falls back to the whole queue.
func retryAfterFor(svc *service.Service, err error, rawTenant string) string {
	st := svc.Stats()
	if !errors.Is(err, tenant.ErrTenantQueueFull) {
		return retryAfterHint(st)
	}
	tid, cerr := tenant.Canonicalize(rawTenant)
	if cerr != nil {
		return retryAfterHint(st)
	}
	snap := svc.Tenant(tid)
	mean := st.MeanJobSeconds
	if mean <= 0 || math.IsNaN(mean) || math.IsInf(mean, 0) {
		return "1"
	}
	workers := st.Workers
	if workers < 1 {
		workers = 1
	}
	// The tenant's share of the pool, same arithmetic as the scheduler's
	// soft concurrency caps (never below one worker).
	share := 1.0
	if snap.ActiveWeight > 0 {
		share = math.Max(1, float64(workers)*float64(snap.Weight)/float64(snap.ActiveWeight))
	}
	secs := math.Ceil(mean * float64(snap.Queued+1) / share)
	if secs < 1 {
		secs = 1
	} else if secs > 60 {
		secs = 60
	}
	return strconv.Itoa(int(secs))
}

// retryAfterHint estimates when a 429'd client should come back: the
// queued work ahead of it (plus its own job) divided across the worker
// pool, priced at the observed mean job duration. Before any job has
// run — or if the arithmetic degenerates — the old fixed hint of 1s is
// kept, and the estimate is clamped to [1s, 60s] so a pathological
// backlog cannot tell clients to go away for an hour.
func retryAfterHint(st service.Stats) string {
	mean := st.MeanJobSeconds
	if mean <= 0 || math.IsNaN(mean) || math.IsInf(mean, 0) {
		return "1"
	}
	workers := st.Workers
	if workers < 1 {
		workers = 1
	}
	secs := math.Ceil(mean * float64(st.QueueDepth+1) / float64(workers))
	if secs < 1 {
		secs = 1
	} else if secs > 60 {
		secs = 60
	}
	return strconv.Itoa(int(secs))
}

// httpDuration times full request handling, split by method.
var httpDuration = obs.Default.HistogramVec("cogmimod_http_request_duration_seconds",
	"HTTP request handling time by method.", "method", nil)

// statusWriter captures the response code for the access log.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the wrapped writer so SSE streaming works through
// the middleware.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// traceEligible decides whether a request path gets a recording span.
// Only the v1 API is traced; /v1/shards is excluded because a shard's
// trace belongs to the coordinating node (the worker records locally
// and ships spans back in the result), and /v1/traces because tracing
// the trace reader only fills the recorder with noise.
func traceEligible(path string) bool {
	if !strings.HasPrefix(path, "/v1/") {
		return false
	}
	return path != "/v1/shards" && !strings.HasPrefix(path, "/v1/traces")
}

// withObs is the observability middleware: it assigns every request a
// trace id (accepting a caller-supplied X-Trace-Id), echoes it in the
// X-Trace-Id response header, attaches a request-scoped logger to the
// context, times the request as an "http.request" span and emits an
// access log line. With a recorder, eligible requests get a recording
// root span (method/path/status attributes) that downstream job and
// shard spans parent to. Scrape and probe endpoints log at debug so a
// monitoring loop does not drown the job history.
func withObs(logger *slog.Logger, rec *obs.TraceRecorder, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		traceID := r.Header.Get("X-Trace-Id")
		if traceID == "" {
			traceID = obs.NewTraceID()
		}
		w.Header().Set("X-Trace-Id", traceID)

		reqLogger := logger.With("trace_id", traceID)
		ctx := obs.WithTraceID(r.Context(), traceID)
		ctx = obs.WithLogger(ctx, reqLogger)
		if rec != nil && traceEligible(r.URL.Path) {
			ctx = obs.WithRecorder(ctx, rec)
		}
		ctx, span := obs.StartSpan(ctx, "http.request")
		span.SetAttr("method", r.Method).SetAttr("path", r.URL.Path)

		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(sw, r.WithContext(ctx))
		elapsed := time.Since(start)

		httpDuration.With(r.Method).Observe(elapsed.Seconds())
		span.SetAttr("status", strconv.Itoa(sw.status))
		span.End()
		level := slog.LevelInfo
		if r.Method == http.MethodGet && (r.URL.Path == "/healthz" ||
			strings.HasPrefix(r.URL.Path, "/metrics")) {
			level = slog.LevelDebug
		}
		reqLogger.Log(ctx, level, "http request",
			"method", r.Method, "path", r.URL.Path,
			"status", sw.status, "duration", elapsed)
	})
}

// withReport attaches the cached report to terminal done jobs.
func withReport(svc *service.Service, jv service.JobView) JobResponse {
	resp := JobResponse{JobView: jv}
	if jv.State == service.StateDone {
		if report, ok := svc.Result(jv.Key); ok {
			resp.Report = report
		}
	}
	return resp
}

// statusFor maps a terminal job state to a response code.
func statusFor(jv service.JobView) int {
	switch jv.State {
	case service.StateDone:
		return http.StatusOK
	case service.StateCanceled:
		return http.StatusConflict
	default:
		return http.StatusInternalServerError
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

// processStart anchors the uptime metric; package initialisation runs
// once per process, so the value is a monotonic elapsed time no matter
// how often the metric is evaluated.
var processStart = time.Now()

// PublishMetrics exposes service state on both metric surfaces: the
// legacy expvar dump at /metrics and live gauges in the obs registry at
// /metrics/prom. It is idempotent so tests can spin up several servers
// in one process — expvar publication happens once (expvar panics on
// duplicates) and obs gauge callbacks rebind to the newest service.
func PublishMetrics(svc *service.Service) {
	if expvar.Get("cogmimod_uptime_seconds") == nil {
		expvar.Publish("cogmimod_uptime_seconds", expvar.Func(func() any {
			return time.Since(processStart).Seconds()
		}))
		expvar.Publish("cogmimod", expvar.Func(func() any {
			return svc.Stats()
		}))
	}

	obs.Default.GaugeFunc("cogmimod_uptime_seconds",
		"Seconds since process start.",
		func() float64 { return time.Since(processStart).Seconds() })
	obs.Default.GaugeFunc("cogmimod_queue_depth",
		"Jobs waiting for a worker.",
		func() float64 { return float64(svc.Stats().QueueDepth) })
	obs.Default.GaugeFunc("cogmimod_queue_capacity",
		"Queue bound before submissions are rejected with 429.",
		func() float64 { return float64(svc.Stats().QueueCapacity) })
	obs.Default.GaugeFunc("cogmimod_workers",
		"Worker pool size.",
		func() float64 { return float64(svc.Stats().Workers) })
	obs.Default.GaugeFunc("cogmimod_busy_workers",
		"Workers currently executing a job.",
		func() float64 { return float64(svc.Stats().BusyWorkers) })
	obs.Default.GaugeFunc("cogmimod_active_tenants",
		"Tenants with queued or running jobs.",
		func() float64 { return float64(svc.Stats().ActiveTenants) })
	obs.Default.GaugeFunc("cogmimod_cache_entries",
		"Completed results currently cached.",
		func() float64 { return float64(svc.Stats().CacheEntries) })
	obs.Default.GaugeFunc("cogmimod_cache_hit_ratio",
		"Cache hits over completed lookups (hits+misses).",
		func() float64 { return svc.Stats().CacheHitRatio })
	obs.Default.InfoGauge("cogmimod_build_info",
		"Build metadata; value is always 1, the information is in the labels.",
		obs.Label{Name: "version", Value: buildVersion()},
		obs.Label{Name: "go_version", Value: runtime.Version()}).Set(1)
}
