package httpapi

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/service"
)

// newTestServer spins up the full HTTP stack over a real service.
func newTestServer(t *testing.T, cfg service.Config) (*httptest.Server, *service.Service) {
	t.Helper()
	if cfg.Runner == nil {
		cfg.Runner = service.ExperimentRunner
		cfg.KnownIDs = service.KnownExperimentIDs()
	}
	svc, err := service.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	svc.Start()
	PublishMetrics(svc)
	ts := httptest.NewServer(NewMux(svc, Config{}))
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := svc.Stop(ctx); err != nil {
			t.Errorf("Stop: %v", err)
		}
	})
	return ts, svc
}

func postJSON(t *testing.T, url string, body string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var decoded map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&decoded); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp, decoded
}

func getJSON(t *testing.T, url string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var decoded map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&decoded); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp, decoded
}

func TestServeFig6aEndToEndWithCacheHit(t *testing.T) {
	ts, svc := newTestServer(t, service.Config{Workers: 2})

	// First request computes.
	resp, body := postJSON(t, ts.URL+"/v1/experiments",
		`{"id":"fig6a","seed":1,"quick":true,"wait":true}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body = %v", resp.StatusCode, body)
	}
	if body["state"] != "done" || body["cached"] != false {
		t.Fatalf("first response = %v", body)
	}
	report, _ := body["report"].(string)
	if !strings.Contains(report, "fig6a") || !strings.Contains(report, "D(Pt,Pr) m") {
		t.Fatalf("report does not look like fig6a:\n%s", report)
	}
	key, _ := body["key"].(string)
	if key == "" {
		t.Fatal("response missing cache key")
	}

	// The identical request again: same report, served from cache.
	resp2, body2 := postJSON(t, ts.URL+"/v1/experiments",
		`{"quick":true,"wait":true,"seed":1,"id":"fig6a"}`) // reordered fields on purpose
	if resp2.StatusCode != http.StatusOK || body2["cached"] != true {
		t.Fatalf("second response: status=%d body=%v", resp2.StatusCode, body2)
	}
	if body2["key"] != key {
		t.Errorf("reordered JSON produced a different key: %v vs %v", body2["key"], key)
	}
	if body2["report"] != report {
		t.Error("cached report differs from the computed one")
	}
	if st := svc.Stats(); st.CacheMisses != 1 || st.CacheHits != 1 {
		t.Errorf("stats = %+v, want exactly one computation and one hit", st)
	}

	// The result is addressable directly by its content key.
	resp3, body3 := getJSON(t, ts.URL+"/v1/results/"+key)
	if resp3.StatusCode != http.StatusOK || body3["report"] != report {
		t.Errorf("GET /v1/results/%s: status=%d", key, resp3.StatusCode)
	}
}

func TestAsyncJobAndPolling(t *testing.T) {
	ts, _ := newTestServer(t, service.Config{Workers: 2})
	resp, body := postJSON(t, ts.URL+"/v1/experiments", `{"id":"table1","seed":3,"quick":true}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status = %d, want 202", resp.StatusCode)
	}
	jobID, _ := body["job"].(string)
	if jobID == "" {
		t.Fatalf("no job id in %v", body)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, body = getJSON(t, ts.URL+"/v1/jobs/"+jobID)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll status = %d", resp.StatusCode)
		}
		if state, _ := body["state"].(string); state == "done" {
			break
		} else if state == "failed" || state == "canceled" {
			t.Fatalf("job ended %s: %v", state, body)
		}
		if time.Now().After(deadline) {
			t.Fatal("job did not finish in time")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if report, _ := body["report"].(string); !strings.Contains(report, "table1") {
		t.Errorf("polled report missing table1:\n%v", body["report"])
	}
}

func TestCancelReleasesWorkerWithoutCorruptingCache(t *testing.T) {
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	defer close(release)
	runner := func(ctx context.Context, req service.Request) (string, error) {
		if req.ID == "fig7" { // stand-in for a long sweep
			select {
			case started <- struct{}{}:
			default:
			}
			select {
			case <-ctx.Done():
				return "", ctx.Err()
			case <-release:
			}
		}
		return service.ExperimentRunner(ctx, service.Request{ID: "fig6a", Seed: req.Seed, Quick: true})
	}
	ts, svc := newTestServer(t, service.Config{
		Workers:  1,
		Runner:   runner,
		KnownIDs: service.KnownExperimentIDs(),
	})

	// Pin the only worker on a slow job.
	resp, body := postJSON(t, ts.URL+"/v1/experiments", `{"id":"fig7","seed":1}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	jobID, _ := body["job"].(string)
	<-started

	// Cancel it over HTTP.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+jobID, nil)
	delResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	delResp.Body.Close()
	if delResp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status = %d", delResp.StatusCode)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, body = getJSON(t, ts.URL+"/v1/jobs/"+jobID)
		if body["state"] == "canceled" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %v after cancel", body["state"])
		}
		time.Sleep(5 * time.Millisecond)
	}

	// No partial result leaked into the cache under the cancelled key.
	key, _ := body["key"].(string)
	if resp, err := http.Get(ts.URL + "/v1/results/" + key); err != nil {
		t.Fatal(err)
	} else if resp.Body.Close(); resp.StatusCode != http.StatusNotFound {
		t.Errorf("cancelled job left a result: status %d", resp.StatusCode)
	}

	// The worker must be free again: a fresh quick job completes.
	resp2, body2 := postJSON(t, ts.URL+"/v1/experiments", `{"id":"fig6a","seed":2,"quick":true,"wait":true}`)
	if resp2.StatusCode != http.StatusOK || body2["state"] != "done" {
		t.Fatalf("post-cancel job: status=%d body=%v", resp2.StatusCode, body2)
	}
	if st := svc.Stats(); st.Canceled != 1 || st.Done != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestQueueSaturationReturns429(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	runner := func(ctx context.Context, req service.Request) (string, error) {
		select {
		case <-ctx.Done():
			return "", ctx.Err()
		case <-release:
			return "r", nil
		}
	}
	ts, _ := newTestServer(t, service.Config{Workers: 1, QueueDepth: 1, Runner: runner})

	// One running + one queued fills the system; submissions use
	// distinct seeds so the cache cannot absorb them.
	saw429 := false
	var retryAfter string
	for i := 0; i < 8 && !saw429; i++ {
		resp, _ := postJSON(t, ts.URL+"/v1/experiments", fmt.Sprintf(`{"id":"x","seed":%d}`, i))
		if resp.StatusCode == http.StatusTooManyRequests {
			saw429 = true
			retryAfter = resp.Header.Get("Retry-After")
		} else if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: status %d", i, resp.StatusCode)
		}
	}
	if !saw429 {
		t.Fatal("queue never saturated into a 429")
	}
	if retryAfter == "" {
		t.Error("429 missing Retry-After header")
	}
}

func TestValidationAndHealth(t *testing.T) {
	ts, _ := newTestServer(t, service.Config{Workers: 1})

	resp, body := postJSON(t, ts.URL+"/v1/experiments", `{"id":"fig99","wait":true}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown id: status=%d body=%v", resp.StatusCode, body)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/experiments", `{"wait":true}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing id: status=%d", resp.StatusCode)
	}

	resp, body = getJSON(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK || body["status"] != "ok" {
		t.Errorf("healthz: status=%d body=%v", resp.StatusCode, body)
	}

	resp, body = getJSON(t, ts.URL+"/v1/experiments")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list: status=%d", resp.StatusCode)
	}
	if ids, _ := body["experiments"].([]any); len(ids) != 17 {
		t.Errorf("experiment list = %v", body["experiments"])
	}

	resp, body = getJSON(t, ts.URL+"/v1/kernels")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("kernels: status=%d", resp.StatusCode)
	}
	kernels, _ := body["kernels"].([]any)
	found := map[string]map[string]any{}
	for _, k := range kernels {
		info, _ := k.(map[string]any)
		name, _ := info["name"].(string)
		found[name] = info
	}
	for _, want := range []string{"coop.ber", "multihop.ber", "cellfree.se", "cellfree.se.mmse"} {
		if found[want] == nil {
			t.Errorf("GET /v1/kernels = %v missing %q", body["kernels"], want)
		}
	}
	// Capability flags: the adaptive registration advertises both caps,
	// the scalar oracle neither.
	if info := found["coop.ber.adaptive"]; info == nil || info["batch"] != true || info["adaptive"] != true {
		t.Errorf("coop.ber.adaptive caps = %v, want batch+adaptive", found["coop.ber.adaptive"])
	}
	if info := found["coop.ber.scalar"]; info == nil || info["batch"] != false || info["adaptive"] != false {
		t.Errorf("coop.ber.scalar caps = %v, want no caps", found["coop.ber.scalar"])
	}

	httpResp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		t.Errorf("metrics: status=%d", httpResp.StatusCode)
	}

	resp, body = getJSON(t, ts.URL+"/v1/stats")
	if resp.StatusCode != http.StatusOK || body["queue_capacity"] == nil {
		t.Errorf("stats: status=%d body=%v", resp.StatusCode, body)
	}

	if missing, _ := http.Get(ts.URL + "/v1/jobs/j99999999"); missing.StatusCode != http.StatusNotFound {
		t.Errorf("missing job: status=%d", missing.StatusCode)
	}
	if missing, _ := http.Get(ts.URL + "/v1/results/deadbeef"); missing.StatusCode != http.StatusNotFound {
		t.Errorf("missing result: status=%d", missing.StatusCode)
	}
}

func TestWaitingClientDisconnectCancelsJob(t *testing.T) {
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	defer close(release)
	runner := func(ctx context.Context, req service.Request) (string, error) {
		select {
		case started <- struct{}{}:
		default:
		}
		select {
		case <-ctx.Done():
			return "", ctx.Err()
		case <-release:
			return "r", nil
		}
	}
	ts, svc := newTestServer(t, service.Config{Workers: 1, Runner: runner})

	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/experiments",
		bytes.NewReader([]byte(`{"id":"x","seed":1,"wait":true}`)))
	req.Header.Set("Content-Type", "application/json")
	errCh := make(chan error, 1)
	go func() {
		_, err := http.DefaultClient.Do(req)
		errCh <- err
	}()
	<-started
	cancel() // client gives up
	if err := <-errCh; err == nil {
		t.Fatal("request should have failed after client cancel")
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		if st := svc.Stats(); st.Canceled == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job not cancelled after client disconnect: %+v", svc.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
}
