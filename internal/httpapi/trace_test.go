package httpapi

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/sim"
)

// newTracedClusterServer wires the full distributed stack the way main
// does in coordinator mode — loopback transport, 3 workers, tracing on —
// and returns the server plus the loopback for failure injection.
func newTracedClusterServer(t *testing.T, rec *obs.TraceRecorder) (*httptest.Server, *cluster.Loopback) {
	t.Helper()
	lb := cluster.NewLoopback("w1", "w2", "w3")
	reg := cluster.NewRegistry(lb, "w1", "w2", "w3")
	co := cluster.NewCoordinator(lb, reg, cluster.Config{
		Shards:    3,
		RetryBase: time.Millisecond,
		RetryMax:  5 * time.Millisecond,
	})
	svc, err := service.New(service.Config{
		Workers:  2,
		Recorder: rec,
		Runner: func(jctx context.Context, req service.Request) (string, error) {
			return service.ExperimentRunner(sim.WithExecutor(jctx, co), req)
		},
		KnownIDs: service.KnownExperimentIDs(),
	})
	if err != nil {
		t.Fatal(err)
	}
	svc.Start()
	ts := httptest.NewServer(NewMux(svc, Config{Recorder: rec}))
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		svc.Stop(ctx)
	})
	return ts, lb
}

// fetchTrace polls GET /v1/traces/{id} until the trace holds a span
// with each of the wanted names (the http.request root only lands in
// the recorder after the response has been written, so one fetch can
// race the middleware).
func fetchTrace(t *testing.T, base, id string, want ...string) obs.Trace {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	var tr obs.Trace
	for {
		resp, err := http.Get(base + "/v1/traces/" + id)
		if err != nil {
			t.Fatal(err)
		}
		ok := resp.StatusCode == http.StatusOK
		if ok {
			if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
				t.Fatalf("decoding trace: %v", err)
			}
		}
		resp.Body.Close()
		if ok {
			have := map[string]bool{}
			for _, sd := range tr.Spans {
				have[sd.Name] = true
			}
			missing := false
			for _, w := range want {
				if !have[w] {
					missing = true
				}
			}
			if !missing {
				return tr
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace %s never complete: %d spans recorded", id, len(tr.Spans))
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestTraceEndpointMergedDistributedTimeline is the acceptance run from
// the issue: a distributed job over 3 loopback workers with one induced
// transient failure must yield, via GET /v1/traces/{id}, one merged
// timeline from HTTP arrival through per-worker shard execution to the
// fold — including the retry evidence — and the Chrome export of that
// trace must be valid JSON.
func TestTraceEndpointMergedDistributedTimeline(t *testing.T) {
	rec := obs.NewTraceRecorder(16, 8192)
	ts, lb := newTracedClusterServer(t, rec)
	lb.Node("w1").FailNext(1) // one transient failure → retry + worker_dead

	body := `{"id":"ext-coopber","seed":1,"quick":true,"wait":true}`
	resp, err := http.Post(ts.URL+"/v1/experiments", "application/json",
		bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	var jr JobResponse
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit status = %d, want 200", resp.StatusCode)
	}
	tid := resp.Header.Get("X-Trace-Id")
	if tid == "" {
		t.Fatal("no X-Trace-Id on response")
	}
	if jr.TraceID != tid {
		t.Fatalf("job view trace id %q != header %q", jr.TraceID, tid)
	}

	tr := fetchTrace(t, ts.URL, tid,
		"http.request", "job.run", "queue.wait", "driver.run",
		"cluster.run", "cluster.shard", "shard.execute", "mc.fold")

	byName := map[string][]obs.SpanData{}
	byID := map[string]obs.SpanData{}
	for _, sd := range tr.Spans {
		byName[sd.Name] = append(byName[sd.Name], sd)
		byID[sd.SpanID] = sd
	}

	// One timeline: job.run hangs off http.request, the cluster spans
	// hang off the job, worker spans hang off their shard dispatch.
	httpSpan := byName["http.request"][0]
	if httpSpan.ParentID != "" {
		t.Fatalf("http.request has parent %q, want root", httpSpan.ParentID)
	}
	job := byName["job.run"][0]
	if job.ParentID != httpSpan.SpanID {
		t.Fatalf("job.run parent = %q, want http.request %q", job.ParentID, httpSpan.SpanID)
	}
	// ext-coopber sweeps several SNR points, each a 3-shard cluster.run;
	// every shard dispatch must parent to one of those runs.
	runIDs := map[string]bool{}
	for _, cr := range byName["cluster.run"] {
		runIDs[cr.SpanID] = true
	}
	shards := byName["cluster.shard"]
	if len(shards) < 3 || len(shards)%3 != 0 {
		t.Fatalf("cluster.shard spans = %d, want a positive multiple of 3", len(shards))
	}
	shardIDs := map[string]bool{}
	for _, sh := range shards {
		if !runIDs[sh.ParentID] {
			t.Fatalf("cluster.shard parent %q is not a cluster.run", sh.ParentID)
		}
		shardIDs[sh.SpanID] = true
	}
	nodes := map[string]bool{}
	for _, ex := range byName["shard.execute"] {
		if !shardIDs[ex.ParentID] {
			t.Fatalf("shard.execute parent %q is not a cluster.shard", ex.ParentID)
		}
		if n := ex.Attr("node"); n != "" {
			nodes[n] = true
		}
	}
	if len(nodes) < 2 {
		t.Fatalf("shard.execute spans name %d distinct workers, want >= 2", len(nodes))
	}

	events := map[string]int{}
	for _, sd := range tr.Spans {
		for _, ev := range sd.Events {
			events[ev.Name]++
		}
	}
	if events["retry"] == 0 || events["worker_dead"] == 0 {
		t.Fatalf("induced failure left no evidence; events = %v", events)
	}

	// The Chrome export must be valid JSON with a traceEvents array.
	cresp, err := http.Get(ts.URL + "/v1/traces/" + tid + "?format=chrome")
	if err != nil {
		t.Fatal(err)
	}
	defer cresp.Body.Close()
	if cresp.StatusCode != http.StatusOK {
		t.Fatalf("chrome export status = %d, want 200", cresp.StatusCode)
	}
	if cd := cresp.Header.Get("Content-Disposition"); !strings.Contains(cd, "trace-"+tid) {
		t.Fatalf("Content-Disposition = %q", cd)
	}
	raw, err := io.ReadAll(cresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(raw) {
		t.Fatal("chrome export is not valid JSON")
	}
	var chrome struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &chrome); err != nil {
		t.Fatal(err)
	}
	if len(chrome.TraceEvents) < len(tr.Spans) {
		t.Fatalf("chrome export has %d events for %d spans", len(chrome.TraceEvents), len(tr.Spans))
	}

	// The index lists the trace.
	_, idx := getJSON(t, ts.URL+"/debug/traces")
	listed, _ := idx["traces"].([]any)
	found := false
	for _, e := range listed {
		if m, ok := e.(map[string]any); ok && m["trace_id"] == tid {
			found = true
		}
	}
	if !found {
		t.Fatalf("/debug/traces does not list %s: %v", tid, idx)
	}
}

// TestTraceEndpointsDisabledWithoutRecorder pins the off-by-default
// contract: no recorder, both trace endpoints answer 503 and job
// submission is unaffected.
func TestTraceEndpointsDisabledWithoutRecorder(t *testing.T) {
	ts, _ := newTestServer(t, service.Config{Workers: 1})

	for _, path := range []string{"/v1/traces/deadbeef", "/debug/traces"} {
		resp, body := getJSON(t, ts.URL+path)
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("%s status = %d, want 503", path, resp.StatusCode)
		}
		if msg, _ := body["error"].(string); !strings.Contains(msg, "tracing disabled") {
			t.Fatalf("%s error = %q", path, msg)
		}
	}

	resp, _ := postJSON(t, ts.URL+"/v1/experiments", `{"id":"fig6a","seed":1,"quick":true,"wait":true}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("untraced submit status = %d, want 200", resp.StatusCode)
	}
}

// TestTraceNotFound distinguishes "tracing on, unknown id" (404) from
// "tracing off" (503).
func TestTraceNotFound(t *testing.T) {
	rec := obs.NewTraceRecorder(4, 64)
	ts, _ := newTracedClusterServer(t, rec)
	resp, body := getJSON(t, ts.URL+"/v1/traces/00000000000000000000000000000000")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
	if msg, _ := body["error"].(string); !strings.Contains(msg, "no such trace") {
		t.Fatalf("error = %q", msg)
	}
}
