package channel

import (
	"math"
	"math/rand"

	"repro/internal/mathx"
)

// Batched structure-of-arrays channel draws. A batch holds one lane
// per channel tap (lane j*mt+a for receive antenna j, transmit a) and
// one column per block, so the batched transmit/decode kernels stream
// contiguous taps across N blocks. Draw order is the scalar order —
// block by block, taps row-major within a block — so a batch consumes
// exactly the rng stream N sequential RayleighInto/Next calls would,
// which is what keeps batched runs bit-identical to per-block ones.

// RayleighBatchInto draws n iid mt-by-mr flat Rayleigh channel matrices
// into dst (resized to mr*mt lanes by n columns): column i consumes
// exactly the stream RayleighInto would for the i-th draw.
func RayleighBatchInto(rng *rand.Rand, mt, mr, n int, dst *mathx.BatchCF64) *mathx.BatchCF64 {
	dst.Resize(mr*mt, n)
	lanes := mr * mt
	for i := 0; i < n; i++ {
		for l := 0; l < lanes; l++ {
			dst.Set(l, i, mathx.ComplexCN(rng, 1))
		}
	}
	return dst
}

// NextBatch writes the channel for one more block into column i of dst
// (which must already be shaped mr*mt lanes by >= i+1 columns),
// redrawing at block boundaries exactly as Next would: the same rng
// stream, the same matrices, just scattered into SoA lanes. Mixing
// Next and NextBatch on one process is valid — both advance the same
// per-block state.
func (b *BlockFading) NextBatch(dst *mathx.BatchCF64, i int) {
	if b.blockLen <= 0 && b.k == 0 {
		// Redraw-every-block Rayleigh (the coop default): draw straight
		// into the column, skipping the AoS round trip. Same stream and
		// the same 1/sqrt(2) scaling RandCN applies, so values are
		// bit-identical; b.current goes stale but the next Next() call
		// unconditionally redraws it.
		const s = 1 / math.Sqrt2
		n := dst.N
		idx := i
		for l := 0; l < b.mr*b.mt; l++ {
			dst.Data[idx] = complex(b.rng.NormFloat64()*s, b.rng.NormFloat64()*s)
			idx += n
		}
		return
	}
	h := b.Next()
	for l, v := range h.Data {
		dst.Set(l, i, v)
	}
}
