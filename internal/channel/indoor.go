package channel

import (
	"math"

	"repro/internal/geom"
)

// Obstacle is a wall or board that attenuates any link crossing it.
// The Section 6.4 experiments place a thick board between the primary
// transmitter and receiver, and several concrete walls between labs.
type Obstacle struct {
	Wall geom.Segment
	// LossDB is the penetration loss in dB each crossing adds.
	LossDB float64
	// Label names the obstacle in reports ("board", "wall-1", ...).
	Label string
}

// IndoorModel computes average link gains in the simulated indoor testbed:
// log-distance path loss plus the penetration loss of every obstacle the
// line-of-sight segment crosses. Fast fading on top of the average gain is
// drawn separately (Rician with the model's K-factor).
type IndoorModel struct {
	// RefDist is the reference distance d0 in metres (typically 1 m).
	RefDist float64
	// RefLossDB is the path loss at d0 in dB.
	RefLossDB float64
	// Exponent is the log-distance path-loss exponent; ~3 indoors.
	Exponent float64
	// RicianK is the fading K-factor for unobstructed links; obstructed
	// links degrade toward Rayleigh (K = 0).
	RicianK float64
	// Obstacles are the walls of the floor plan.
	Obstacles []Obstacle
}

// PathLossDB returns the average path loss in dB between a and b,
// including the penetration loss of each crossed obstacle.
func (m IndoorModel) PathLossDB(a, b geom.Point) float64 {
	d := a.Dist(b)
	if d < m.RefDist {
		d = m.RefDist
	}
	loss := m.RefLossDB + 10*m.Exponent*math.Log10(d/m.RefDist)
	los := geom.Segment{A: a, B: b}
	for _, o := range m.Obstacles {
		if los.Intersects(o.Wall) {
			loss += o.LossDB
		}
	}
	return loss
}

// Crossings returns how many obstacles the a-b segment penetrates.
func (m IndoorModel) Crossings(a, b geom.Point) int {
	los := geom.Segment{A: a, B: b}
	n := 0
	for _, o := range m.Obstacles {
		if los.Intersects(o.Wall) {
			n++
		}
	}
	return n
}

// LinkK returns the Rician K-factor for the a-b link: the configured K
// when the path is clear, halved per crossed obstacle (obstructions kill
// the line-of-sight component first).
func (m IndoorModel) LinkK(a, b geom.Point) float64 {
	k := m.RicianK
	for i := 0; i < m.Crossings(a, b); i++ {
		k /= 2
	}
	return k
}

// MeanGain returns the average power gain (linear) between a and b.
func (m IndoorModel) MeanGain(a, b geom.Point) float64 {
	return math.Pow(10, -m.PathLossDB(a, b)/10)
}
