package channel

import (
	"testing"

	"repro/internal/mathx"
)

// TestRayleighBatchMatchesScalar pins the batched draw against N
// sequential RayleighInto calls on the same seed: identical stream
// consumption, identical matrices, just scattered into lanes.
func TestRayleighBatchMatchesScalar(t *testing.T) {
	const mt, mr, n = 3, 2, 21
	var batch mathx.BatchCF64
	RayleighBatchInto(mathx.NewRand(5), mt, mr, n, &batch)

	rng := mathx.NewRand(5)
	var h mathx.CMat
	for i := 0; i < n; i++ {
		RayleighInto(rng, mt, mr, &h)
		for r := 0; r < h.Rows; r++ {
			for c := 0; c < h.Cols; c++ {
				if got := batch.At(r*h.Cols+c, i); got != h.At(r, c) {
					t.Fatalf("draw %d tap (%d,%d): batch %v, scalar %v", i, r, c, got, h.At(r, c))
				}
			}
		}
	}
}

// TestNextBatchMatchesNext drives one BlockFading per path over the
// same seed and compares every block: the redraw-every-block fast path
// (the coop default) and the coherent slow path must both consume the
// rng stream exactly as Next and land the same taps.
func TestNextBatchMatchesNext(t *testing.T) {
	const mt, mr, n = 2, 3, 24
	for _, blockLen := range []int{0, 1, 5} {
		var batch mathx.BatchCF64
		batch.Resize(mr*mt, n)
		bf := NewBlockFading(mathx.NewRand(9), mt, mr, blockLen, 0)
		for i := 0; i < n; i++ {
			bf.NextBatch(&batch, i)
		}

		ref := NewBlockFading(mathx.NewRand(9), mt, mr, blockLen, 0)
		for i := 0; i < n; i++ {
			h := ref.Next()
			for l, v := range h.Data {
				if got := batch.At(l, i); got != v {
					t.Fatalf("blockLen=%d block %d lane %d: batch %v, scalar %v", blockLen, i, l, got, v)
				}
			}
		}
	}
}

// TestNextBatchInterleavesWithNext checks the documented mixing
// contract: alternating Next and NextBatch on one fader advances the
// same per-block state as Next alone.
func TestNextBatchInterleavesWithNext(t *testing.T) {
	const mt, mr, n = 2, 2, 10
	var batch mathx.BatchCF64
	batch.Resize(mr*mt, n)
	mixed := NewBlockFading(mathx.NewRand(31), mt, mr, 0, 0)
	ref := NewBlockFading(mathx.NewRand(31), mt, mr, 0, 0)
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			mixed.NextBatch(&batch, i)
		} else {
			h := mixed.Next()
			batch.ScatterMat(i, h)
		}
		want := ref.Next()
		for l, v := range want.Data {
			if got := batch.At(l, i); got != v {
				t.Fatalf("block %d lane %d: mixed %v, reference %v", i, l, got, v)
			}
		}
	}
}
