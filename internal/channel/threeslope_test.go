package channel

import (
	"math"
	"testing"
)

func TestThreeSlopeSegments(t *testing.T) {
	p := ThreeSlopePathLoss{LRefDB: 140.7, D0: 10, D1: 50}

	// Outer slope: 35 dB per decade.
	if got := p.GainDB(1000) - p.GainDB(100); math.Abs(got+35) > 1e-9 {
		t.Errorf("outer decade drop = %g dB, want -35", got)
	}
	// Middle slope: 20 dB per decade (D0..D1 only spans part of a
	// decade, so check the exponent directly over a factor of 2).
	if got := p.GainDB(40) - p.GainDB(20); math.Abs(got+20*math.Log10(2)) > 1e-9 {
		t.Errorf("middle octave drop = %g dB, want %g", got, -20*math.Log10(2))
	}
	// Below D0 the loss is flat.
	if p.GainDB(0) != p.GainDB(10) || p.GainDB(3) != p.GainDB(10) {
		t.Error("inner segment is not constant")
	}
	// Continuity at both breakpoints.
	if got, want := p.GainDB(50), p.GainDB(50.0000001); math.Abs(got-want) > 1e-5 {
		t.Errorf("discontinuity at D1: %g vs %g", got, want)
	}
	// Anchor: at 1 km the outer branch reads exactly -LRef.
	if got := p.GainDB(1000); math.Abs(got+140.7) > 1e-9 {
		t.Errorf("GainDB(1km) = %g, want -140.7", got)
	}
	// Linear form matches the dB form.
	if got, want := p.Gain(200), math.Pow(10, p.GainDB(200)/10); got != want {
		t.Errorf("Gain(200) = %g, want %g", got, want)
	}
	// Monotone non-increasing in distance.
	prev := math.Inf(1)
	for d := 1.0; d < 2000; d *= 1.3 {
		g := p.GainDB(d)
		if g > prev {
			t.Fatalf("gain increased at d=%g", d)
		}
		prev = g
	}
}
