package channel

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/mathx"
)

// Shadowing is log-normal large-scale fading: a dB-domain Gaussian
// offset on top of the deterministic path loss, spatially correlated
// with an exponential decay (Gudmundson model). The deployment analyses
// use it for what-if studies beyond the paper's nominal models.
type Shadowing struct {
	// SigmaDB is the dB standard deviation (typically 4-8 dB indoors).
	SigmaDB float64
	// DecorrDist is the distance at which correlation falls to 1/e.
	DecorrDist float64
}

// Draw samples one shadowing value in dB.
func (s Shadowing) Draw(rng *rand.Rand) float64 {
	return rng.NormFloat64() * s.SigmaDB
}

// DrawPair samples shadowing at two points separated by dist metres with
// the Gudmundson correlation rho = exp(-dist/DecorrDist).
func (s Shadowing) DrawPair(rng *rand.Rand, dist float64) (a, b float64) {
	rho := s.Correlation(dist)
	a = rng.NormFloat64()
	b = rho*a + math.Sqrt(1-rho*rho)*rng.NormFloat64()
	return a * s.SigmaDB, b * s.SigmaDB
}

// Correlation returns the model correlation at the given separation.
func (s Shadowing) Correlation(dist float64) float64 {
	if s.DecorrDist <= 0 {
		return 0
	}
	if dist < 0 {
		dist = -dist
	}
	return math.Exp(-dist / s.DecorrDist)
}

// GaussMarkov is a first-order autoregressive complex fading process:
// h[n+1] = rho h[n] + sqrt(1-rho^2) w, w ~ CN(0, 1). It models temporal
// channel correlation between coherence blocks — the middle ground
// between the paper's block-fading assumption and full Jakes spectra.
type GaussMarkov struct {
	// Rho is the one-step correlation in [0, 1).
	Rho float64

	rng *rand.Rand
	h   complex128
	ok  bool
}

// NewGaussMarkov validates and constructs the process.
func NewGaussMarkov(rng *rand.Rand, rho float64) (*GaussMarkov, error) {
	if rho < 0 || rho >= 1 {
		return nil, fmt.Errorf("channel: Gauss-Markov rho %g outside [0, 1)", rho)
	}
	return &GaussMarkov{Rho: rho, rng: rng}, nil
}

// Next advances the process one step and returns the new coefficient.
// The stationary distribution is CN(0, 1) regardless of rho.
func (g *GaussMarkov) Next() complex128 {
	if !g.ok {
		g.h = mathx.ComplexCN(g.rng, 1)
		g.ok = true
		return g.h
	}
	innov := mathx.ComplexCN(g.rng, 1-g.Rho*g.Rho)
	g.h = complex(g.Rho, 0)*g.h + innov
	return g.h
}

// RhoForDoppler maps a normalised Doppler frequency (fd * Ts, Doppler
// times the block duration) to the AR(1) coefficient via the Jakes
// autocorrelation rho = J0(2 pi fd Ts), clamped to the model's [0, 1)
// domain.
func RhoForDoppler(fdTs float64) float64 {
	return mathx.Clamp(math.J0(2*math.Pi*fdTs), 0, 0.999999)
}
