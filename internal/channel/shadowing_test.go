package channel

import (
	"math"
	"math/cmplx"
	"testing"

	"repro/internal/mathx"
)

func TestShadowingMoments(t *testing.T) {
	rng := mathx.NewRand(201)
	s := Shadowing{SigmaDB: 6, DecorrDist: 20}
	var acc mathx.Running
	for i := 0; i < 100000; i++ {
		acc.Add(s.Draw(rng))
	}
	if math.Abs(acc.Mean()) > 0.1 {
		t.Errorf("shadowing mean = %v, want 0", acc.Mean())
	}
	if math.Abs(acc.StdDev()-6) > 0.1 {
		t.Errorf("shadowing sigma = %v, want 6", acc.StdDev())
	}
}

func TestShadowingPairCorrelation(t *testing.T) {
	rng := mathx.NewRand(202)
	s := Shadowing{SigmaDB: 4, DecorrDist: 20}
	for _, dist := range []float64{0, 10, 40, 1000} {
		var prod, va, vb mathx.Running
		for i := 0; i < 60000; i++ {
			a, b := s.DrawPair(rng, dist)
			prod.Add(a * b)
			va.Add(a * a)
			vb.Add(b * b)
		}
		got := prod.Mean() / math.Sqrt(va.Mean()*vb.Mean())
		want := s.Correlation(dist)
		if math.Abs(got-want) > 0.03 {
			t.Errorf("dist=%v: correlation %v, want %v", dist, got, want)
		}
	}
	// Degenerate decorrelation distance means uncorrelated.
	if (Shadowing{SigmaDB: 4}).Correlation(5) != 0 {
		t.Error("zero DecorrDist should give zero correlation")
	}
	// Negative separations are distances too.
	if s.Correlation(-20) != s.Correlation(20) {
		t.Error("correlation should be symmetric in distance")
	}
}

func TestGaussMarkovValidation(t *testing.T) {
	rng := mathx.NewRand(203)
	if _, err := NewGaussMarkov(rng, -0.1); err == nil {
		t.Error("negative rho should fail")
	}
	if _, err := NewGaussMarkov(rng, 1); err == nil {
		t.Error("rho=1 should fail")
	}
}

func TestGaussMarkovStationarity(t *testing.T) {
	rng := mathx.NewRand(204)
	g, err := NewGaussMarkov(rng, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	var pow mathx.Running
	for i := 0; i < 200000; i++ {
		h := g.Next()
		pow.Add(real(h)*real(h) + imag(h)*imag(h))
	}
	if math.Abs(pow.Mean()-1) > 0.05 {
		t.Errorf("stationary power = %v, want 1", pow.Mean())
	}
}

func TestGaussMarkovAutocorrelation(t *testing.T) {
	rng := mathx.NewRand(205)
	const rho = 0.8
	g, err := NewGaussMarkov(rng, rho)
	if err != nil {
		t.Fatal(err)
	}
	const n = 200000
	hs := make([]complex128, n)
	for i := range hs {
		hs[i] = g.Next()
	}
	for _, lag := range []int{1, 2, 5} {
		var corr mathx.Running
		for i := 0; i+lag < n; i++ {
			corr.Add(real(hs[i] * cmplx.Conj(hs[i+lag])))
		}
		want := math.Pow(rho, float64(lag))
		if math.Abs(corr.Mean()-want) > 0.02 {
			t.Errorf("lag %d: autocorrelation %v, want %v", lag, corr.Mean(), want)
		}
	}
}

func TestRhoForDoppler(t *testing.T) {
	// Slow fading: rho near 1; fast: rho clamped at 0 near J0 zeros.
	if rho := RhoForDoppler(0.001); rho < 0.999 {
		t.Errorf("slow-fading rho = %v", rho)
	}
	if rho := RhoForDoppler(0.3827); rho > 0.01 { // 2 pi fdTs ~ 2.4048
		t.Errorf("rho at J0's first zero = %v, want ~0", rho)
	}
	// Monotone decreasing over the main lobe.
	prev := RhoForDoppler(0.0)
	for f := 0.05; f < 0.38; f += 0.05 {
		cur := RhoForDoppler(f)
		if cur >= prev {
			t.Errorf("rho not decreasing at fdTs=%v", f)
		}
		prev = cur
	}
}
