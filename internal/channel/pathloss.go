// Package channel models the propagation environments of the paper:
//
//   - local/intra-cluster links: kappa-power path loss with AWGN
//     (Section 2.3, eq. 1: Gd = G1 * d^kappa * Ml);
//   - long-haul cooperative links: square-law free-space loss with flat
//     Rayleigh block fading (eq. 3: (4*pi*D)^2 / (Gt*Gr*lambda^2) * Ml * Nf);
//   - indoor testbed links: Rician multipath plus per-obstacle attenuation
//     (Section 6.4's USRP environment substitute).
package channel

import (
	"fmt"
	"math"
)

// LocalPathLoss is the intra-cluster attenuation model Gd = G1 * d^kappa * Ml.
type LocalPathLoss struct {
	// G1 is the linear gain factor at one metre. The paper prints
	// "G1 = 10mw"; following the Cui et al. convention it is treated as a
	// dimensionless linear factor of 10 (see DESIGN.md).
	G1 float64
	// Kappa is the path-loss exponent (paper: 3.5).
	Kappa float64
	// Ml is the link margin as a linear ratio (paper: 40 dB -> 1e4).
	Ml float64
}

// Gain returns Gd at distance d metres: the factor by which the required
// transmit energy exceeds the received energy.
func (l LocalPathLoss) Gain(d float64) float64 {
	if d < 0 {
		panic(fmt.Sprintf("channel: negative distance %g", d))
	}
	return l.G1 * math.Pow(d, l.Kappa) * l.Ml
}

// LongHaulPathLoss is the square-law loss of the cooperative MIMO hop:
// (4*pi*D)^2 / (Gt*Gr*lambda^2) * Ml * Nf.
type LongHaulPathLoss struct {
	// GtGr is the combined transmit/receive antenna gain (linear).
	GtGr float64
	// Lambda is the carrier wavelength in metres (paper: 0.1199 m).
	Lambda float64
	// Ml is the link margin (linear).
	Ml float64
	// Nf is the receiver noise figure (linear).
	Nf float64
}

// Gain returns the loss factor at distance D metres.
func (l LongHaulPathLoss) Gain(D float64) float64 {
	if D < 0 {
		panic(fmt.Sprintf("channel: negative distance %g", D))
	}
	x := 4 * math.Pi * D
	return x * x / (l.GtGr * l.Lambda * l.Lambda) * l.Ml * l.Nf
}

// DistanceForGain inverts Gain: the D at which the loss factor equals g.
// The overlay analysis (Section 6.1) solves for the largest relay
// distances this way.
func (l LongHaulPathLoss) DistanceForGain(g float64) float64 {
	if g <= 0 {
		panic(fmt.Sprintf("channel: non-positive gain %g", g))
	}
	return math.Sqrt(g*l.GtGr*l.Lambda*l.Lambda/(l.Ml*l.Nf)) / (4 * math.Pi)
}

// ThreeSlopePathLoss is the piecewise model of the cell-free massive
// MIMO literature (Ngo et al., "Cell-Free Massive MIMO Versus Small
// Cells"): free-space-like decay (exponent 2) between the breakpoints
// D0 and D1, exponent 3.5 beyond D1, and a constant floor below D0 so
// a user standing next to an access point cannot see unbounded gain.
// The segments join continuously at both breakpoints.
type ThreeSlopePathLoss struct {
	// LRefDB is the reference loss at 1 km on the outer slope, in dB
	// (Ngo's constants for 1.9 GHz and 15 m/1.65 m antenna heights give
	// 140.7).
	LRefDB float64
	// D0, D1 are the inner and outer breakpoint distances in metres
	// (typically 10 and 50).
	D0, D1 float64
}

// GainDB returns the channel gain (negative of the path loss) in dB at
// distance d metres.
func (p ThreeSlopePathLoss) GainDB(d float64) float64 {
	if d < 0 {
		panic(fmt.Sprintf("channel: negative distance %g", d))
	}
	if d < p.D0 {
		d = p.D0
	}
	km := d / 1000
	if d > p.D1 {
		return -p.LRefDB - 35*math.Log10(km)
	}
	// Inside D1 the exponent drops to 2; the -15 log10(D1) term makes
	// the two segments meet: at d = D1 both branches read
	// -LRef - 35 log10(D1/1000).
	return -p.LRefDB - 15*math.Log10(p.D1/1000) - 20*math.Log10(km)
}

// Gain returns the linear channel gain at distance d metres.
func (p ThreeSlopePathLoss) Gain(d float64) float64 {
	return math.Pow(10, p.GainDB(d)/10)
}
