package channel

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/mathx"
)

func paperLocal() LocalPathLoss {
	return LocalPathLoss{G1: 10, Kappa: 3.5, Ml: 1e4}
}

func paperLongHaul() LongHaulPathLoss {
	return LongHaulPathLoss{GtGr: math.Pow(10, 0.5), Lambda: 0.1199, Ml: 1e4, Nf: 10}
}

func TestLocalPathLossMonotone(t *testing.T) {
	l := paperLocal()
	prev := l.Gain(0.5)
	for d := 1.0; d <= 16; d *= 2 {
		g := l.Gain(d)
		if g <= prev {
			t.Fatalf("gain not increasing at d=%v", d)
		}
		prev = g
	}
	// Doubling distance multiplies loss by 2^kappa.
	r := l.Gain(8) / l.Gain(4)
	if math.Abs(r-math.Pow(2, 3.5)) > 1e-9 {
		t.Errorf("scaling ratio = %v, want 2^3.5", r)
	}
	// d = 1 reduces to G1*Ml.
	if g := l.Gain(1); math.Abs(g-1e5) > 1e-6 {
		t.Errorf("Gain(1) = %v, want 1e5", g)
	}
}

func TestLocalPathLossNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative distance should panic")
		}
	}()
	paperLocal().Gain(-1)
}

func TestLongHaulSquareLaw(t *testing.T) {
	l := paperLongHaul()
	r := l.Gain(500) / l.Gain(250)
	if math.Abs(r-4) > 1e-9 {
		t.Errorf("square law ratio = %v, want 4", r)
	}
	// Spot value: (4*pi*100)^2 / (10^0.5 * 0.1199^2) * 1e4 * 10.
	want := math.Pow(4*math.Pi*100, 2) / (math.Pow(10, 0.5) * 0.1199 * 0.1199) * 1e5
	if g := l.Gain(100); math.Abs(g/want-1) > 1e-12 {
		t.Errorf("Gain(100) = %v, want %v", g, want)
	}
}

func TestDistanceForGainRoundTrip(t *testing.T) {
	l := paperLongHaul()
	for _, d := range []float64{10, 150, 250, 406} {
		back := l.DistanceForGain(l.Gain(d))
		if math.Abs(back-d) > 1e-9*d {
			t.Errorf("round trip %v -> %v", d, back)
		}
	}
}

func TestDistanceForGainPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-positive gain should panic")
		}
	}()
	paperLongHaul().DistanceForGain(0)
}

func TestRayleighStatistics(t *testing.T) {
	rng := mathx.NewRand(21)
	var pow mathx.Running
	for i := 0; i < 5000; i++ {
		h := Rayleigh(rng, 2, 3)
		if h.Rows != 3 || h.Cols != 2 {
			t.Fatalf("H dims %dx%d, want 3x2 (mr x mt)", h.Rows, h.Cols)
		}
		pow.Add(h.FrobeniusNorm2())
	}
	// E||H||_F^2 = mt*mr = 6.
	if math.Abs(pow.Mean()-6) > 0.15 {
		t.Errorf("mean ||H||^2 = %v, want 6", pow.Mean())
	}
}

func TestRicianMatrixStatistics(t *testing.T) {
	rng := mathx.NewRand(22)
	// Unit mean-square gain per entry for any K.
	for _, k := range []float64{0, 1, 10, -2} {
		var pow mathx.Running
		for i := 0; i < 4000; i++ {
			h := RicianMatrix(rng, 2, 2, k)
			pow.Add(h.FrobeniusNorm2() / 4)
		}
		if math.Abs(pow.Mean()-1) > 0.08 {
			t.Errorf("K=%v: mean |h|^2 = %v, want 1", k, pow.Mean())
		}
	}
	// Large K concentrates around the LOS value.
	var dev mathx.Running
	for i := 0; i < 2000; i++ {
		h := RicianMatrix(rng, 1, 1, 1e6)
		dev.Add(h.FrobeniusNorm())
	}
	if dev.StdDev() > 0.01 {
		t.Errorf("K->inf envelope stddev = %v", dev.StdDev())
	}
}

func TestAWGNStatistics(t *testing.T) {
	rng := mathx.NewRand(23)
	n := make([]complex128, 200000)
	AWGN(rng, n, 2.0)
	var pow mathx.Running
	for _, z := range n {
		pow.Add(real(z)*real(z) + imag(z)*imag(z))
	}
	if math.Abs(pow.Mean()-2) > 0.05 {
		t.Errorf("noise power = %v, want 2", pow.Mean())
	}
}

func TestAWGNAddsInPlace(t *testing.T) {
	rng := mathx.NewRand(24)
	y := []complex128{10, 20}
	AWGN(rng, y, 1e-6)
	if math.Abs(real(y[0])-10) > 0.1 || math.Abs(real(y[1])-20) > 0.1 {
		t.Errorf("AWGN should perturb, not replace: %v", y)
	}
}

func TestBlockFadingCoherence(t *testing.T) {
	rng := mathx.NewRand(25)
	bf := NewBlockFading(rng, 2, 2, 3, 0)
	h1 := bf.Next().Clone()
	h2 := bf.Next()
	h3 := bf.Next()
	if !h1.Equal(h2, 0) || !h1.Equal(h3, 0) {
		t.Error("H changed within a block")
	}
	h4 := bf.Next()
	if h1.Equal(h4, 1e-12) {
		t.Error("H did not change at block boundary")
	}
}

func TestBlockFadingRedrawEveryUse(t *testing.T) {
	rng := mathx.NewRand(26)
	bf := NewBlockFading(rng, 1, 1, 0, 0)
	a := bf.Next().At(0, 0)
	b := bf.Next().At(0, 0)
	if a == b {
		t.Error("blockLen<=0 should redraw every call")
	}
	// Rician block fading uses the K factor.
	bfr := NewBlockFading(rng, 1, 1, 1, 1e9)
	if m := bfr.Next().FrobeniusNorm(); math.Abs(m-1) > 0.01 {
		t.Errorf("huge-K Rician magnitude = %v, want ~1", m)
	}
}

func TestIndoorModel(t *testing.T) {
	m := IndoorModel{
		RefDist:   1,
		RefLossDB: 40,
		Exponent:  3,
		RicianK:   8,
		Obstacles: []Obstacle{
			{Wall: geom.Segment{A: geom.Pt(1, -1), B: geom.Pt(1, 1)}, LossDB: 12, Label: "board"},
		},
	}
	a, b := geom.Pt(0, 0), geom.Pt(2, 0)
	// Crosses the board: base loss + 12 dB.
	base := 40 + 10*3*math.Log10(2)
	if got := m.PathLossDB(a, b); math.Abs(got-(base+12)) > 1e-9 {
		t.Errorf("obstructed loss = %v, want %v", got, base+12)
	}
	// A path around the board pays no penetration loss.
	c := geom.Pt(0, 5)
	if got := m.PathLossDB(c, geom.Pt(2, 5)); math.Abs(got-base) > 1e-9 {
		t.Errorf("clear loss = %v, want %v", got, base)
	}
	if m.Crossings(a, b) != 1 || m.Crossings(c, geom.Pt(2, 5)) != 0 {
		t.Error("Crossings wrong")
	}
	if k := m.LinkK(a, b); k != 4 {
		t.Errorf("obstructed K = %v, want 4", k)
	}
	if k := m.LinkK(c, geom.Pt(2, 5)); k != 8 {
		t.Errorf("clear K = %v, want 8", k)
	}
	// Sub-reference distances clamp to d0.
	if got := m.PathLossDB(geom.Pt(0, 0), geom.Pt(0.1, 0)); got != 40 {
		t.Errorf("sub-ref loss = %v, want 40", got)
	}
	// MeanGain is the linear inverse of the loss.
	g := m.MeanGain(c, geom.Pt(2, 5))
	if math.Abs(-10*math.Log10(g)-base) > 1e-9 {
		t.Errorf("MeanGain inconsistent: %v", g)
	}
}
