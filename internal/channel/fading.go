package channel

import (
	"math"
	"math/rand"

	"repro/internal/mathx"
)

// Rayleigh draws an mt-by-mr flat Rayleigh block-fading channel matrix H
// with iid CN(0, 1) entries — the channel assumed for every long-haul
// cooperative MIMO link (Section 2.3). The matrix stays constant for a
// codeword (block fading) and is redrawn per block.
func Rayleigh(rng *rand.Rand, mt, mr int) *mathx.CMat {
	return mathx.NewCMat(mr, mt).RandCN(rng)
}

// RicianMatrix draws an mt-by-mr Rician channel with K-factor k: a fixed
// unit-modulus line-of-sight component plus scattered CN entries, each
// entry normalised to unit mean-square gain.
func RicianMatrix(rng *rand.Rand, mt, mr int, k float64) *mathx.CMat {
	if k < 0 {
		k = 0
	}
	h := mathx.NewCMat(mr, mt)
	los := math.Sqrt(k / (k + 1))
	scatter := math.Sqrt(1 / (k + 1))
	for i := range h.Data {
		z := mathx.ComplexCN(rng, 1)
		h.Data[i] = complex(los, 0) + z*complex(scatter, 0)
	}
	return h
}

// AWGN adds circularly-symmetric complex Gaussian noise of the given
// per-sample variance (total power across both components) to each
// element of y in place.
func AWGN(rng *rand.Rand, y []complex128, variance float64) {
	s := math.Sqrt(variance / 2)
	for i := range y {
		y[i] += complex(rng.NormFloat64()*s, rng.NormFloat64()*s)
	}
}

// BlockFading yields successive channel matrices: Next() redraws H every
// blockLen uses, modelling a channel whose coherence time spans one
// space-time codeword.
type BlockFading struct {
	rng      *rand.Rand
	mt, mr   int
	blockLen int
	used     int
	current  *mathx.CMat
	k        float64 // Rician K; 0 = Rayleigh
}

// NewBlockFading constructs a block-fading process. blockLen <= 0 redraws
// on every call.
func NewBlockFading(rng *rand.Rand, mt, mr, blockLen int, k float64) *BlockFading {
	return &BlockFading{rng: rng, mt: mt, mr: mr, blockLen: blockLen, k: k}
}

// Next returns the channel matrix for the next use, redrawing at block
// boundaries. Callers must not retain the matrix across calls.
func (b *BlockFading) Next() *mathx.CMat {
	if b.current == nil || b.blockLen <= 0 || b.used >= b.blockLen {
		if b.k > 0 {
			b.current = RicianMatrix(b.rng, b.mt, b.mr, b.k)
		} else {
			b.current = Rayleigh(b.rng, b.mt, b.mr)
		}
		b.used = 0
	}
	b.used++
	return b.current
}
