package channel

import (
	"math"
	"math/rand"

	"repro/internal/mathx"
)

// Rayleigh draws an mt-by-mr flat Rayleigh block-fading channel matrix H
// with iid CN(0, 1) entries — the channel assumed for every long-haul
// cooperative MIMO link (Section 2.3). The matrix stays constant for a
// codeword (block fading) and is redrawn per block.
func Rayleigh(rng *rand.Rand, mt, mr int) *mathx.CMat {
	return RayleighInto(rng, mt, mr, nil)
}

// RayleighInto is Rayleigh drawing into h (reshaped as needed; allocated
// when nil), consuming exactly the same rng stream, so pooled workspaces
// reproduce per-allocation runs bit for bit.
func RayleighInto(rng *rand.Rand, mt, mr int, h *mathx.CMat) *mathx.CMat {
	return mathx.EnsureShape(h, mr, mt).RandCN(rng)
}

// RicianMatrix draws an mt-by-mr Rician channel with K-factor k: a fixed
// unit-modulus line-of-sight component plus scattered CN entries, each
// entry normalised to unit mean-square gain.
func RicianMatrix(rng *rand.Rand, mt, mr int, k float64) *mathx.CMat {
	return RicianMatrixInto(rng, mt, mr, k, nil)
}

// RicianMatrixInto is RicianMatrix drawing into h (reshaped as needed;
// allocated when nil), consuming exactly the same rng stream.
func RicianMatrixInto(rng *rand.Rand, mt, mr int, k float64, h *mathx.CMat) *mathx.CMat {
	if k < 0 {
		k = 0
	}
	h = mathx.EnsureShape(h, mr, mt)
	los := math.Sqrt(k / (k + 1))
	scatter := math.Sqrt(1 / (k + 1))
	for i := range h.Data {
		z := mathx.ComplexCN(rng, 1)
		h.Data[i] = complex(los, 0) + z*complex(scatter, 0)
	}
	return h
}

// AWGN adds circularly-symmetric complex Gaussian noise of the given
// per-sample variance (total power across both components) to each
// element of y in place.
func AWGN(rng *rand.Rand, y []complex128, variance float64) {
	s := math.Sqrt(variance / 2)
	for i := range y {
		y[i] += complex(rng.NormFloat64()*s, rng.NormFloat64()*s)
	}
}

// BlockFading yields successive channel matrices: Next() redraws H every
// blockLen uses, modelling a channel whose coherence time spans one
// space-time codeword.
type BlockFading struct {
	rng      *rand.Rand
	mt, mr   int
	blockLen int
	used     int
	current  *mathx.CMat
	k        float64 // Rician K; 0 = Rayleigh
}

// NewBlockFading constructs a block-fading process. blockLen <= 0 redraws
// on every call.
func NewBlockFading(rng *rand.Rand, mt, mr, blockLen int, k float64) *BlockFading {
	return &BlockFading{rng: rng, mt: mt, mr: mr, blockLen: blockLen, k: k}
}

// Reset reinitialises the process in place for a new run, keeping the
// backing matrix for reuse. The first Next after Reset redraws, exactly
// as a freshly constructed process would.
func (b *BlockFading) Reset(rng *rand.Rand, mt, mr, blockLen int, k float64) {
	b.rng, b.mt, b.mr, b.blockLen, b.k = rng, mt, mr, blockLen, k
	b.used = b.blockLen // force a redraw on the next call
	if b.used < 1 {
		b.used = 1
	}
}

// Next returns the channel matrix for the next use, redrawing at block
// boundaries. Callers must not retain the matrix across calls: the
// backing matrix is reused across redraws so the fading process itself
// is allocation-free after the first block.
func (b *BlockFading) Next() *mathx.CMat {
	if b.current == nil || b.blockLen <= 0 || b.used >= b.blockLen {
		if b.k > 0 {
			b.current = RicianMatrixInto(b.rng, b.mt, b.mr, b.k, b.current)
		} else {
			b.current = RayleighInto(b.rng, b.mt, b.mr, b.current)
		}
		b.used = 0
	}
	b.used++
	return b.current
}
