package powergame

import (
	"math"
	"testing"

	"repro/internal/geom"
)

func baseCfg() Config {
	return Config{
		Players: []Player{
			{Tx: geom.Pt(0, 0), Rx: geom.Pt(10, 0)},
			{Tx: geom.Pt(0, 50), Rx: geom.Pt(10, 50)},
			{Tx: geom.Pt(0, 100), Rx: geom.Pt(10, 100)},
		},
		PrimaryRx:     geom.Pt(200, 50),
		NoisePower:    1e-9,
		PriceC:        1e4,
		MaxPower:      1e-3,
		PathLossExp:   3,
		MaxIterations: 200,
		Tolerance:     1e-9,
	}
}

func TestValidate(t *testing.T) {
	if err := baseCfg().Validate(); err != nil {
		t.Fatal(err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.Players = nil },
		func(c *Config) { c.NoisePower = 0 },
		func(c *Config) { c.PriceC = 0 },
		func(c *Config) { c.MaxPower = 0 },
		func(c *Config) { c.PathLossExp = 0 },
		func(c *Config) { c.MaxIterations = 0 },
		func(c *Config) { c.Tolerance = 0 },
	}
	for i, m := range mutations {
		c := baseCfg()
		m(&c)
		if c.Validate() == nil {
			t.Errorf("mutation %d should fail", i)
		}
	}
}

func TestConvergence(t *testing.T) {
	r, err := Run(baseCfg())
	if err != nil {
		t.Fatal(err)
	}
	if !r.Converged {
		t.Fatalf("did not converge in %d iterations", r.Iterations)
	}
	for i, p := range r.Powers {
		if p < 0 || p > baseCfg().MaxPower {
			t.Errorf("player %d power %v outside [0, cap]", i, p)
		}
	}
	for i, s := range r.SINRs {
		if s <= 0 {
			t.Errorf("player %d SINR %v", i, s)
		}
	}
}

func TestNashStability(t *testing.T) {
	// At the converged point, no unilateral deviation improves utility.
	cfg := baseCfg()
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	utility := func(powers []float64, i int, pi float64) float64 {
		interf := cfg.NoisePower
		for j := range powers {
			if j == i {
				continue
			}
			interf += powers[j] * cfg.gain(cfg.Players[j].Tx, cfg.Players[i].Rx)
		}
		g := cfg.gain(cfg.Players[i].Tx, cfg.Players[i].Rx)
		return math.Log(1+pi*g/interf) - cfg.PriceC*pi
	}
	for i := range r.Powers {
		base := utility(r.Powers, i, r.Powers[i])
		for _, dev := range []float64{0.5, 0.9, 1.1, 2} {
			alt := r.Powers[i] * dev
			if alt > cfg.MaxPower {
				continue
			}
			if u := utility(r.Powers, i, alt); u > base+1e-9 {
				t.Errorf("player %d improves by deviating x%v: %v > %v", i, dev, u, base)
			}
		}
	}
}

// TestHigherPriceLowersPower: the pricing knob is the game's only
// interference control.
func TestHigherPriceLowersPower(t *testing.T) {
	cheap := baseCfg()
	cheap.PriceC = 1e3
	expensive := baseCfg()
	expensive.PriceC = 1e5
	rc, err := Run(cheap)
	if err != nil {
		t.Fatal(err)
	}
	re, err := Run(expensive)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rc.Powers {
		if re.Powers[i] > rc.Powers[i] {
			t.Errorf("player %d: higher price raised power %v -> %v", i, rc.Powers[i], re.Powers[i])
		}
	}
	if re.InterferenceAtPU > rc.InterferenceAtPU {
		t.Error("higher price should reduce interference at the PU")
	}
}

// TestNoGuaranteeNearPU is the paper's Section 1 point: the same game
// that behaves when SUs are far from the primary receiver violates the
// noise-floor constraint when they are close — the utility gives an
// incentive, not a guarantee.
func TestNoGuaranteeNearPU(t *testing.T) {
	far := baseCfg()
	far.PrimaryRx = geom.Pt(500, 50)
	rFar, err := Run(far)
	if err != nil {
		t.Fatal(err)
	}
	near := baseCfg()
	near.PrimaryRx = geom.Pt(12, 50) // right next to player 2's receiver
	rNear, err := Run(near)
	if err != nil {
		t.Fatal(err)
	}
	if m := rFar.InterferenceMargin(far.NoisePower); m > 1 {
		t.Errorf("far PU: margin %v should satisfy the constraint", m)
	}
	if m := rNear.InterferenceMargin(near.NoisePower); m < 10 {
		t.Errorf("near PU: margin %v should violate the constraint badly", m)
	}
	// The game's powers do not even change: the PU is not in any
	// player's utility.
	for i := range rFar.Powers {
		if math.Abs(rFar.Powers[i]-rNear.Powers[i]) > 1e-15 {
			t.Errorf("player %d power changed with PU position: the game cannot see the PU", i)
		}
	}
}

func TestIterationCap(t *testing.T) {
	c := baseCfg()
	c.MaxIterations = 1
	c.Tolerance = 1e-300
	r, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if r.Converged {
		t.Error("one sweep at absurd tolerance should not be declared converged")
	}
	if r.Iterations != 1 {
		t.Errorf("iterations = %d", r.Iterations)
	}
}
