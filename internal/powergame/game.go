// Package powergame implements the game-theoretic underlay baseline the
// paper positions itself against (Section 1, refs [1, 4, 5]): each
// secondary transmitter selfishly picks its power to maximise a utility
// u_i = log(1 + SINR_i) - c * p_i via iterated best response. The
// paper's criticism — "the maximization of the game utility function
// represents an incentive to reduce the interference at the PUs'
// receiver, but not a guarantee" — is exactly what the ext-game
// experiment measures: the Nash point's aggregate interference at the
// primary receiver can exceed the noise floor when SUs sit close to it,
// while Algorithm 2's cooperative budget satisfies the constraint by
// construction.
package powergame

import (
	"fmt"
	"math"

	"repro/internal/geom"
)

// Player is one secondary transmitter-receiver pair.
type Player struct {
	// Tx and Rx are the pair's endpoints.
	Tx, Rx geom.Point
	// Power is the current transmit power (linear). Best response
	// updates it in place.
	Power float64
}

// Config describes the game.
type Config struct {
	// Players are the competing SU links.
	Players []Player
	// PrimaryRx is the protected primary receiver's position.
	PrimaryRx geom.Point
	// NoisePower is the receiver noise floor (linear) at every receiver.
	NoisePower float64
	// PriceC is the power price c in the utility.
	PriceC float64
	// MaxPower caps every player's strategy space.
	MaxPower float64
	// PathLossExp is the propagation exponent.
	PathLossExp float64
	// MaxIterations bounds the best-response sweeps.
	MaxIterations int
	// Tolerance declares convergence when no player moves more than
	// this fraction of MaxPower in one sweep.
	Tolerance float64
}

// Validate rejects unusable configurations.
func (c Config) Validate() error {
	switch {
	case len(c.Players) < 1:
		return fmt.Errorf("powergame: need at least one player")
	case c.NoisePower <= 0:
		return fmt.Errorf("powergame: noise power must be positive")
	case c.PriceC <= 0:
		return fmt.Errorf("powergame: power price must be positive")
	case c.MaxPower <= 0:
		return fmt.Errorf("powergame: power cap must be positive")
	case c.PathLossExp <= 0:
		return fmt.Errorf("powergame: path-loss exponent must be positive")
	case c.MaxIterations < 1:
		return fmt.Errorf("powergame: need at least one iteration")
	case c.Tolerance <= 0:
		return fmt.Errorf("powergame: tolerance must be positive")
	}
	return nil
}

// gain returns the link power gain between two points.
func (c Config) gain(a, b geom.Point) float64 {
	d := a.Dist(b)
	if d < 1 {
		d = 1
	}
	return math.Pow(d, -c.PathLossExp)
}

// Result reports the converged (or iteration-capped) game state.
type Result struct {
	// Powers are the final strategies.
	Powers []float64
	// SINRs are each player's achieved SINR.
	SINRs []float64
	// InterferenceAtPU is the aggregate secondary power arriving at the
	// primary receiver.
	InterferenceAtPU float64
	// Converged reports whether a sweep moved no player beyond the
	// tolerance before the iteration cap.
	Converged bool
	// Iterations used.
	Iterations int
}

// Run iterates synchronous best responses until convergence or the cap.
//
// The best response to u_i = log(1 + p_i g_ii / I_i) - c p_i is the
// water-filling point p_i = 1/c - I_i/g_ii clipped to [0, MaxPower],
// where I_i is the noise-plus-interference the player sees.
func Run(cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	players := append([]Player(nil), cfg.Players...)
	n := len(players)
	res := Result{Powers: make([]float64, n), SINRs: make([]float64, n)}
	for it := 0; it < cfg.MaxIterations; it++ {
		res.Iterations = it + 1
		maxMove := 0.0
		for i := range players {
			interf := cfg.NoisePower
			for j := range players {
				if j == i {
					continue
				}
				interf += players[j].Power * cfg.gain(players[j].Tx, players[i].Rx)
			}
			gii := cfg.gain(players[i].Tx, players[i].Rx)
			best := 1/cfg.PriceC - interf/gii
			if best < 0 {
				best = 0
			}
			if best > cfg.MaxPower {
				best = cfg.MaxPower
			}
			if move := math.Abs(best - players[i].Power); move > maxMove {
				maxMove = move
			}
			players[i].Power = best
		}
		if maxMove <= cfg.Tolerance*cfg.MaxPower {
			res.Converged = true
			break
		}
	}
	for i := range players {
		res.Powers[i] = players[i].Power
		interf := cfg.NoisePower
		for j := range players {
			if j == i {
				continue
			}
			interf += players[j].Power * cfg.gain(players[j].Tx, players[i].Rx)
		}
		res.SINRs[i] = players[i].Power * cfg.gain(players[i].Tx, players[i].Rx) / interf
		res.InterferenceAtPU += players[i].Power * cfg.gain(players[i].Tx, cfg.PrimaryRx)
	}
	return res, nil
}

// InterferenceMargin is the game's aggregate interference at the primary
// receiver relative to the noise floor: > 1 violates the underlay
// constraint the paper's cooperative scheme guarantees.
func (r Result) InterferenceMargin(noisePower float64) float64 {
	return r.InterferenceAtPU / noisePower
}
