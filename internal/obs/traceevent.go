package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// chromeEvent is one entry of the Chrome trace_event format (the JSON
// array flavor understood by chrome://tracing and Perfetto).
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	Ts    float64        `json:"ts"`            // microseconds
	Dur   float64        `json:"dur,omitempty"` // microseconds, "X" only
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Scope string         `json:"s,omitempty"` // instant scope
	Args  map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace renders one merged trace as Chrome trace_event JSON.
// Open the file at chrome://tracing or https://ui.perfetto.dev to get
// the flame timeline. Spans become complete ("X") events; span events
// become instant ("i") markers. Each node (the "node" attribute, walked
// up through ancestors when a span lacks its own) gets its own thread
// lane so per-worker shard execution reads as parallel tracks;
// coordinator-side spans share lane 0.
func WriteChromeTrace(w io.Writer, tr Trace) error {
	byID := make(map[string]*SpanData, len(tr.Spans))
	for i := range tr.Spans {
		byID[tr.Spans[i].SpanID] = &tr.Spans[i]
	}

	// nodeOf resolves the lane label for a span: its own node attr, or
	// the nearest ancestor's, else the coordinator lane.
	nodeOf := func(sd *SpanData) string {
		for hops := 0; sd != nil && hops < 64; hops++ {
			if n := sd.Attr("node"); n != "" {
				return n
			}
			sd = byID[sd.ParentID]
		}
		return "coordinator"
	}

	// Deterministic lane numbering: coordinator first, then nodes sorted.
	laneSet := map[string]bool{}
	for i := range tr.Spans {
		laneSet[nodeOf(&tr.Spans[i])] = true
	}
	lanes := make([]string, 0, len(laneSet))
	for n := range laneSet {
		if n != "coordinator" {
			lanes = append(lanes, n)
		}
	}
	sort.Strings(lanes)
	lanes = append([]string{"coordinator"}, lanes...)
	laneID := make(map[string]int, len(lanes))
	for i, n := range lanes {
		laneID[n] = i
	}

	var t0 time.Time
	for i := range tr.Spans {
		if t0.IsZero() || tr.Spans[i].Start.Before(t0) {
			t0 = tr.Spans[i].Start
		}
	}
	us := func(t time.Time) float64 { return float64(t.Sub(t0).Nanoseconds()) / 1e3 }

	events := make([]chromeEvent, 0, 2*len(tr.Spans)+len(lanes))
	for i, n := range lanes {
		events = append(events, chromeEvent{
			Name: "thread_name", Phase: "M", Pid: 1, Tid: i,
			Args: map[string]any{"name": n},
		})
	}
	for i := range tr.Spans {
		sd := &tr.Spans[i]
		tid := laneID[nodeOf(sd)]
		args := map[string]any{
			"trace_id": sd.TraceID,
			"span_id":  sd.SpanID,
		}
		if sd.ParentID != "" {
			args["parent_id"] = sd.ParentID
		}
		for _, a := range sd.Attrs {
			args[a.Key] = a.Value
		}
		dur := us(sd.End) - us(sd.Start)
		if dur < 0.001 {
			dur = 0.001 // keep zero-length spans visible
		}
		events = append(events, chromeEvent{
			Name: sd.Name, Phase: "X", Ts: us(sd.Start), Dur: dur,
			Pid: 1, Tid: tid, Args: args,
		})
		for _, ev := range sd.Events {
			eargs := map[string]any{"span": sd.Name}
			for _, a := range ev.Attrs {
				eargs[a.Key] = a.Value
			}
			events = append(events, chromeEvent{
				Name: ev.Name, Phase: "i", Ts: us(ev.Time),
				Pid: 1, Tid: tid, Scope: "t", Args: eargs,
			})
		}
	}

	enc := json.NewEncoder(w)
	if err := enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"}); err != nil {
		return fmt.Errorf("encode chrome trace: %w", err)
	}
	return nil
}
