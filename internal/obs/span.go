package obs

import (
	"context"
	"log/slog"
	"sync"
	"time"
)

// spanDurations is the one histogram family all spans feed; the span
// name is the label, so keep names to a small fixed vocabulary
// ("http.request", "job.run", "cluster.shard", "mc.chunk", ...).
var spanDurations = Default.HistogramVec("obs_span_duration_seconds",
	"Duration of instrumented stages, labeled by span name.", "span", nil)

// Span is one timed stage. Every span feeds the duration histogram;
// when a TraceRecorder is attached to the starting context, the span
// additionally carries structural identity (trace id, span id, parent
// link) plus attributes and events, and records a SpanData on End.
//
// All methods are safe on a nil receiver, and the structural methods
// are no-ops when recording is off, so instrumentation sites never
// need to branch on whether tracing is enabled.
type Span struct {
	name  string
	start time.Time
	log   *slog.Logger
	lctx  context.Context // the starting ctx; log-enabled probes use it

	// Structural state; zero/nil unless a recorder was attached.
	rec    *TraceRecorder
	sc     SpanContext
	parent string

	mu     sync.Mutex
	ended  bool
	attrs  []Attr
	events []SpanEvent
}

// StartSpan begins timing a named stage. End records the duration into
// the Default registry and emits a debug log line through the context
// logger (with whatever trace/job attributes it carries).
//
// When ctx carries a TraceRecorder (see WithRecorder), the span gets
// structural identity — its trace id comes from the active parent span,
// a WithSpanParent link, the ctx trace id, or a fresh one, in that
// order — and the returned context carries the span so children parent
// themselves to it. Without a recorder the returned context is the
// input unchanged and the per-span cost stays what it always was: one
// histogram observation.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	s := &Span{name: name, start: time.Now(), log: Logger(ctx), lctx: ctx}
	rec := RecorderFrom(ctx)
	if rec == nil {
		return ctx, s
	}
	s.rec = rec
	if p := ActiveSpan(ctx); p != nil {
		s.sc.TraceID = p.sc.TraceID
		s.parent = p.sc.SpanID
	} else if rp, ok := spanParentFrom(ctx); ok {
		s.sc.TraceID = rp.TraceID
		s.parent = rp.SpanID
	} else if id := TraceID(ctx); id != "" {
		s.sc.TraceID = id
	} else {
		s.sc.TraceID = NewTraceID()
	}
	s.sc.SpanID = nextSpanID()
	return context.WithValue(ctx, ctxSpan, s), s
}

// End finishes the span: one histogram observation, an optional debug
// log line, and — when recording — one SpanData into the recorder.
// Idempotent; safe on a nil receiver.
func (s *Span) End() {
	if s == nil {
		return
	}
	end := time.Now()
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	sd := SpanData{
		TraceID:  s.sc.TraceID,
		SpanID:   s.sc.SpanID,
		ParentID: s.parent,
		Name:     s.name,
		Start:    s.start,
		End:      end,
		Attrs:    s.attrs,
		Events:   s.events,
	}
	s.mu.Unlock()

	d := end.Sub(s.start)
	spanDurations.With(s.name).Observe(d.Seconds())
	if s.rec != nil {
		s.rec.Record(sd)
	}
	lctx := s.lctx
	if lctx == nil {
		lctx = context.Background()
	}
	if s.log.Enabled(lctx, slog.LevelDebug) {
		s.log.DebugContext(lctx, "span", "span", s.name, "duration", d)
	}
}

// SetAttr annotates the span; chainable. No-op unless recording.
func (s *Span) SetAttr(key, value string) *Span {
	if s == nil || s.rec == nil {
		return s
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
	return s
}

// SetStart backdates the span — used when the stage began before the
// observing code ran (a job span starts at submission, not when the
// worker picks it up). Only meaningful before End.
func (s *Span) SetStart(t time.Time) {
	if s == nil || t.IsZero() {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.start = t
	}
	s.mu.Unlock()
}

// Event marks a point in time inside the span — a retry, a hedge, a
// worker death. No-op unless recording.
func (s *Span) Event(name string, attrs ...Attr) {
	if s == nil || s.rec == nil {
		return
	}
	ev := SpanEvent{Name: name, Time: time.Now(), Attrs: attrs}
	s.mu.Lock()
	if !s.ended {
		s.events = append(s.events, ev)
	}
	s.mu.Unlock()
}

// Recording reports whether this span records structural data.
func (s *Span) Recording() bool { return s != nil && s.rec != nil }

// TraceID returns the span's trace id, or "" when not recording.
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.sc.TraceID
}

// SpanID returns the span's own id, or "" when not recording.
func (s *Span) SpanID() string {
	if s == nil {
		return ""
	}
	return s.sc.SpanID
}

// SpanContext returns the span's wire-portable identity; the zero
// value when not recording.
func (s *Span) SpanContext() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.sc
}

// RecordSpan records an already-measured stage — the retroactive form
// of StartSpan/End, used when the interval's start predates the
// observing code (e.g. queue wait). It feeds the same histogram and,
// when ctx carries a recorder, a SpanData parented like StartSpan
// would parent a child.
func RecordSpan(ctx context.Context, name string, start, end time.Time, attrs ...Attr) {
	d := end.Sub(start)
	spanDurations.With(name).Observe(d.Seconds())
	if rec := RecorderFrom(ctx); rec != nil {
		sd := SpanData{Name: name, Start: start, End: end, Attrs: attrs}
		if p := ActiveSpan(ctx); p != nil {
			sd.TraceID = p.sc.TraceID
			sd.ParentID = p.sc.SpanID
		} else if rp, ok := spanParentFrom(ctx); ok {
			sd.TraceID = rp.TraceID
			sd.ParentID = rp.SpanID
		} else {
			sd.TraceID = TraceID(ctx)
		}
		if sd.TraceID != "" {
			sd.SpanID = nextSpanID()
			rec.Record(sd)
		}
	}
	l := Logger(ctx)
	if l.Enabled(ctx, slog.LevelDebug) {
		l.DebugContext(ctx, "span", "span", name, "duration", d)
	}
}

// ObserveSpan records a stage that ended now and lasted d. Kept for
// call sites that only have a duration; RecordSpan is the precise form.
func ObserveSpan(ctx context.Context, name string, d time.Duration) {
	now := time.Now()
	RecordSpan(ctx, name, now.Add(-d), now)
}
