package obs

import (
	"context"
	"log/slog"
	"time"
)

// spanDurations is the one histogram family all spans feed; the span
// name is the label, so keep names to a small fixed vocabulary
// ("http.request", "driver.run", "mc.chunk", ...).
var spanDurations = Default.HistogramVec("obs_span_duration_seconds",
	"Duration of instrumented stages, labeled by span name.", "span", nil)

// Span is one timed stage; see StartSpan.
type Span struct {
	name  string
	start time.Time
	log   *slog.Logger
}

// StartSpan begins timing a named stage. End records the duration into
// the Default registry and emits a debug log line through the context
// logger (with whatever trace/job attributes it carries). The returned
// context is the input unchanged — spans do not nest structurally,
// they only measure.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	return ctx, &Span{name: name, start: time.Now(), log: Logger(ctx)}
}

// End finishes the span. Safe on a nil receiver.
func (s *Span) End() {
	if s == nil {
		return
	}
	d := time.Since(s.start)
	spanDurations.With(s.name).Observe(d.Seconds())
	if s.log.Enabled(context.Background(), slog.LevelDebug) {
		s.log.Debug("span", "span", s.name, "duration", d)
	}
}

// ObserveSpan records an already-measured stage duration — the
// retroactive form of StartSpan/End, used when the interval's start
// predates the observing code (e.g. queue wait).
func ObserveSpan(ctx context.Context, name string, d time.Duration) {
	spanDurations.With(name).Observe(d.Seconds())
	l := Logger(ctx)
	if l.Enabled(ctx, slog.LevelDebug) {
		l.Debug("span", "span", name, "duration", d)
	}
}
