package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTrackerSnapshot(t *testing.T) {
	tr := NewTracker()
	tr.AddTotal(100)
	tr.Add(30)
	tr.Add(20)
	s := tr.Snapshot()
	if s.Done != 50 || s.Total != 100 {
		t.Fatalf("snapshot = %+v, want done=50 total=100", s)
	}
	if s.Elapsed < 0 {
		t.Errorf("elapsed negative: %v", s.Elapsed)
	}
	// Negative done deltas are ignored; negative total deltas shrink
	// the expectation (adaptive early stopping) but never below done.
	tr.Add(-10)
	tr.AddTotal(-10)
	if s2 := tr.Snapshot(); s2.Done != 50 || s2.Total != 90 {
		t.Errorf("after shrink, got %+v, want done=50 total=90", s2)
	}
}

func TestTrackerConcurrent(t *testing.T) {
	tr := NewTracker()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				tr.AddTotal(1)
				tr.Add(1)
			}
		}()
	}
	wg.Wait()
	if s := tr.Snapshot(); s.Done != 4000 || s.Total != 4000 {
		t.Fatalf("snapshot = %+v, want 4000/4000", s)
	}
}

func TestNilTrackerIsSafe(t *testing.T) {
	var tr *Tracker
	tr.Add(1)
	tr.AddTotal(1)
	if s := tr.Snapshot(); s != (ProgressSnapshot{}) {
		t.Fatalf("nil tracker snapshot = %+v", s)
	}
}

func TestProgressContextRoundTrip(t *testing.T) {
	if ProgressFrom(context.Background()) != Nop {
		t.Fatal("empty context must yield the Nop sink")
	}
	tr := NewTracker()
	ctx := WithProgress(context.Background(), tr)
	p := ProgressFrom(ctx)
	p.AddTotal(2)
	p.Add(2)
	if s := tr.Snapshot(); s.Done != 2 || s.Total != 2 {
		t.Fatalf("context-carried sink not wired: %+v", s)
	}
}

func TestProgressPrinter(t *testing.T) {
	var mu sync.Mutex
	var b strings.Builder
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return b.Write(p)
	})
	tr := NewTracker()
	tr.AddTotal(10)
	tr.Add(5)
	stop := StartProgressPrinter(w, "unit", tr, time.Millisecond)
	time.Sleep(20 * time.Millisecond)
	stop()
	stop() // idempotent
	mu.Lock()
	out := b.String()
	mu.Unlock()
	if !strings.Contains(out, "unit: 5/10 trials") {
		t.Fatalf("printer output missing progress line: %q", out)
	}
	if !strings.HasSuffix(out, "\n") {
		t.Errorf("stop must end the line with a newline: %q", out)
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

// TestTrackerShrinkTotal: adaptive runs shrink the advertised total
// when a stopping rule saves budget; the tracker clamps so done never
// exceeds total.
func TestTrackerShrinkTotal(t *testing.T) {
	tr := NewTracker()
	tr.AddTotal(1000)
	tr.Add(300)
	tr.AddTotal(-700)
	if s := tr.Snapshot(); s.Total != 300 || s.Done != 300 {
		t.Fatalf("after shrink: done %d total %d, want 300/300", s.Done, s.Total)
	}
	// Over-shrink clamps at done rather than going below it.
	tr2 := NewTracker()
	tr2.AddTotal(100)
	tr2.Add(80)
	tr2.AddTotal(-90)
	if s := tr2.Snapshot(); s.Total != s.Done || s.Total != 80 {
		t.Fatalf("over-shrink: done %d total %d, want 80/80", s.Done, s.Total)
	}
	// Zero delta is a no-op.
	tr2.AddTotal(0)
	if s := tr2.Snapshot(); s.Total != 80 {
		t.Fatalf("zero AddTotal moved total to %d", s.Total)
	}
}

// TestTrackerShrinkConcurrent hammers the clamp: whatever interleaving
// of adds and shrinks, the tracker must never publish done > total.
func TestTrackerShrinkConcurrent(t *testing.T) {
	tr := NewTracker()
	tr.AddTotal(1 << 20)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 10000; i++ {
			tr.Add(10)
		}
	}()
	for i := 0; i < 1000; i++ {
		tr.AddTotal(-50)
	}
	<-done
	if s := tr.Snapshot(); s.Done > s.Total {
		t.Fatalf("done %d > total %d after concurrent shrink", s.Done, s.Total)
	}
}
