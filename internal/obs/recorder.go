package obs

import (
	"sort"
	"sync"
	"time"
)

// Attr is one key/value annotation on a span or event. Values are
// strings by design: attributes are for humans reading timelines, not
// for computation, and a single type keeps the wire form trivial.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// SpanEvent is a point-in-time marker inside a span — a retry fired, a
// hedge launched, a worker declared dead.
type SpanEvent struct {
	Name  string    `json:"name"`
	Time  time.Time `json:"time"`
	Attrs []Attr    `json:"attrs,omitempty"`
}

// SpanData is one finished span in wire form. It is what the recorder
// stores, what ShardResult carries back from workers, and what the
// trace endpoints serve. Timestamps are the recording node's clock;
// cross-node skew shifts lanes slightly but never breaks the tree,
// which hangs on ids alone.
type SpanData struct {
	TraceID  string      `json:"trace_id"`
	SpanID   string      `json:"span_id"`
	ParentID string      `json:"parent_id,omitempty"`
	Name     string      `json:"name"`
	Start    time.Time   `json:"start"`
	End      time.Time   `json:"end"`
	Attrs    []Attr      `json:"attrs,omitempty"`
	Events   []SpanEvent `json:"events,omitempty"`
}

// Duration is the span's wall-clock extent.
func (d SpanData) Duration() time.Duration { return d.End.Sub(d.Start) }

// Attr returns the value of the named attribute, or "".
func (d SpanData) Attr(key string) string {
	for _, a := range d.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// Trace is one merged timeline: every recorded span of a trace id, in
// start order.
type Trace struct {
	TraceID string     `json:"trace_id"`
	Spans   []SpanData `json:"spans"`
	// Dropped counts spans lost to the per-trace bound; a non-zero value
	// means the timeline is a prefix, not a lie.
	Dropped int  `json:"dropped_spans,omitempty"`
	Pinned  bool `json:"pinned,omitempty"`
}

// TraceSummary is one row of the recent-traces index.
type TraceSummary struct {
	TraceID  string    `json:"trace_id"`
	Root     string    `json:"root"`
	Start    time.Time `json:"start"`
	Duration float64   `json:"duration_seconds"`
	Spans    int       `json:"spans"`
	Pinned   bool      `json:"pinned,omitempty"`
}

// traceEntry is the recorder's per-trace bucket.
type traceEntry struct {
	spans   []SpanData
	dropped int
	pinned  bool
	first   time.Time // earliest span start seen
	last    time.Time // latest span end seen; recency for the index
}

// TraceRecorder is a bounded in-process sink for finished spans. Traces
// occupy slots in arrival order; when the trace bound is hit, the
// oldest unpinned trace is evicted to make room (a pinned trace — see
// Pin — survives until unpinned). Within a trace, spans beyond the
// per-trace bound are counted as dropped rather than stored, so one
// pathological run cannot eat the process.
//
// All methods are safe for concurrent use; Record is a short critical
// section (append + map lookup), cheap enough for per-chunk spans.
type TraceRecorder struct {
	mu        sync.Mutex
	maxTraces int
	maxSpans  int
	traces    map[string]*traceEntry
	order     []string // trace ids in first-seen order, for eviction
}

// NewTraceRecorder builds a recorder bounded to maxTraces distinct
// traces of maxSpansPerTrace spans each; zero or negative picks the
// defaults (256 traces × 4096 spans).
func NewTraceRecorder(maxTraces, maxSpansPerTrace int) *TraceRecorder {
	if maxTraces <= 0 {
		maxTraces = 256
	}
	if maxSpansPerTrace <= 0 {
		maxSpansPerTrace = 4096
	}
	return &TraceRecorder{
		maxTraces: maxTraces,
		maxSpans:  maxSpansPerTrace,
		traces:    make(map[string]*traceEntry),
	}
}

// Record stores one finished span. Spans without a trace id are
// dropped — they cannot be fetched, so storing them only burns slots.
func (r *TraceRecorder) Record(sd SpanData) {
	if sd.TraceID == "" {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.traces[sd.TraceID]
	if e == nil {
		if len(r.traces) >= r.maxTraces && !r.evictLocked() {
			return // every slot pinned; drop the new trace
		}
		e = &traceEntry{first: sd.Start, last: sd.End}
		r.traces[sd.TraceID] = e
		r.order = append(r.order, sd.TraceID)
	}
	if len(e.spans) >= r.maxSpans {
		e.dropped++
	} else {
		e.spans = append(e.spans, sd)
	}
	if sd.Start.Before(e.first) {
		e.first = sd.Start
	}
	if sd.End.After(e.last) {
		e.last = sd.End
	}
}

// evictLocked removes the oldest unpinned trace; false when every
// resident trace is pinned.
func (r *TraceRecorder) evictLocked() bool {
	for i, id := range r.order {
		e, ok := r.traces[id]
		if ok && e.pinned {
			continue
		}
		delete(r.traces, id)
		r.order = append(r.order[:i], r.order[i+1:]...)
		return true
	}
	return false
}

// Import merges externally recorded spans — typically a worker's
// shard spans carried home in a ShardResult — into the recorder.
func (r *TraceRecorder) Import(spans []SpanData) {
	for _, sd := range spans {
		r.Record(sd)
	}
}

// Spans returns a copy of the recorded spans of one trace, in
// insertion order. Empty when the trace is unknown.
func (r *TraceRecorder) Spans(id string) []SpanData {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.traces[id]
	if e == nil {
		return nil
	}
	return append([]SpanData(nil), e.spans...)
}

// Trace returns one merged timeline, spans sorted by start time (ties
// by span id so the order is deterministic).
func (r *TraceRecorder) Trace(id string) (Trace, bool) {
	r.mu.Lock()
	e := r.traces[id]
	if e == nil {
		r.mu.Unlock()
		return Trace{}, false
	}
	t := Trace{
		TraceID: id,
		Spans:   append([]SpanData(nil), e.spans...),
		Dropped: e.dropped,
		Pinned:  e.pinned,
	}
	r.mu.Unlock()
	sort.SliceStable(t.Spans, func(i, j int) bool {
		if !t.Spans[i].Start.Equal(t.Spans[j].Start) {
			return t.Spans[i].Start.Before(t.Spans[j].Start)
		}
		return t.Spans[i].SpanID < t.Spans[j].SpanID
	})
	return t, true
}

// Recent returns summaries of up to limit traces, most recently active
// first; limit <= 0 means 64. The root name is the earliest span with
// no resident parent — for a complete trace, the entry point.
func (r *TraceRecorder) Recent(limit int) []TraceSummary {
	if limit <= 0 {
		limit = 64
	}
	r.mu.Lock()
	out := make([]TraceSummary, 0, len(r.traces))
	for id, e := range r.traces {
		out = append(out, TraceSummary{
			TraceID:  id,
			Root:     rootName(e.spans),
			Start:    e.first,
			Duration: e.last.Sub(e.first).Seconds(),
			Spans:    len(e.spans),
			Pinned:   e.pinned,
		})
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		ti := out[i].Start.Add(time.Duration(out[i].Duration * float64(time.Second)))
		tj := out[j].Start.Add(time.Duration(out[j].Duration * float64(time.Second)))
		if !ti.Equal(tj) {
			return ti.After(tj)
		}
		return out[i].TraceID < out[j].TraceID
	})
	if len(out) > limit {
		out = out[:limit]
	}
	return out
}

// rootName picks the name of the trace's apparent root: the earliest
// span whose parent is absent from the recorded set.
func rootName(spans []SpanData) string {
	if len(spans) == 0 {
		return ""
	}
	present := make(map[string]bool, len(spans))
	for _, sd := range spans {
		present[sd.SpanID] = true
	}
	best := -1
	for i, sd := range spans {
		if sd.ParentID != "" && present[sd.ParentID] {
			continue
		}
		if best < 0 || sd.Start.Before(spans[best].Start) {
			best = i
		}
	}
	if best < 0 {
		best = 0
	}
	return spans[best].Name
}

// Pin protects a trace from eviction — slow-job auto-capture uses it
// so the interesting trace is still there when an operator comes
// looking. Returns false for unknown traces.
func (r *TraceRecorder) Pin(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.traces[id]
	if e == nil {
		return false
	}
	e.pinned = true
	return true
}

// Unpin releases a pinned trace back to normal eviction.
func (r *TraceRecorder) Unpin(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e := r.traces[id]; e != nil {
		e.pinned = false
	}
}

// Len reports how many traces are resident.
func (r *TraceRecorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.traces)
}
