package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"
)

func mkSpan(trace, id, parent, name string, start, end time.Time) SpanData {
	return SpanData{TraceID: trace, SpanID: id, ParentID: parent, Name: name, Start: start, End: end}
}

func TestRecorderRecordAndTrace(t *testing.T) {
	r := NewTraceRecorder(4, 16)
	t0 := time.Now()
	r.Record(mkSpan("t1", "b", "a", "child", t0.Add(time.Millisecond), t0.Add(2*time.Millisecond)))
	r.Record(mkSpan("t1", "a", "", "root", t0, t0.Add(3*time.Millisecond)))

	tr, ok := r.Trace("t1")
	if !ok {
		t.Fatal("trace t1 not found")
	}
	if len(tr.Spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(tr.Spans))
	}
	if tr.Spans[0].Name != "root" || tr.Spans[1].Name != "child" {
		t.Fatalf("spans not sorted by start: %s, %s", tr.Spans[0].Name, tr.Spans[1].Name)
	}
	if _, ok := r.Trace("nope"); ok {
		t.Fatal("unknown trace reported found")
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d, want 1", r.Len())
	}
}

func TestRecorderEvictionOrderAndPin(t *testing.T) {
	r := NewTraceRecorder(2, 16)
	t0 := time.Now()
	r.Record(mkSpan("old", "a", "", "x", t0, t0))
	r.Record(mkSpan("mid", "b", "", "x", t0, t0))
	if !r.Pin("old") {
		t.Fatal("Pin(old) = false")
	}
	// Third trace: "mid" (oldest unpinned) must go, "old" survives.
	r.Record(mkSpan("new", "c", "", "x", t0, t0))
	if _, ok := r.Trace("mid"); ok {
		t.Fatal("mid should have been evicted")
	}
	if _, ok := r.Trace("old"); !ok {
		t.Fatal("pinned trace was evicted")
	}
	if _, ok := r.Trace("new"); !ok {
		t.Fatal("new trace missing")
	}
	// Pin everything: a further trace is dropped, residents survive.
	r.Pin("new")
	r.Record(mkSpan("extra", "d", "", "x", t0, t0))
	if _, ok := r.Trace("extra"); ok {
		t.Fatal("extra admitted despite all slots pinned")
	}
	r.Unpin("old")
	r.Record(mkSpan("extra2", "e", "", "x", t0, t0))
	if _, ok := r.Trace("old"); ok {
		t.Fatal("unpinned old should now be evictable")
	}
	if r.Pin("ghost") {
		t.Fatal("Pin(unknown) = true")
	}
}

func TestRecorderPerTraceSpanCap(t *testing.T) {
	r := NewTraceRecorder(2, 3)
	t0 := time.Now()
	for i := 0; i < 5; i++ {
		r.Record(mkSpan("t", fmt.Sprintf("s%d", i), "", "x", t0, t0))
	}
	tr, _ := r.Trace("t")
	if len(tr.Spans) != 3 {
		t.Fatalf("spans = %d, want cap 3", len(tr.Spans))
	}
	if tr.Dropped != 2 {
		t.Fatalf("dropped = %d, want 2", tr.Dropped)
	}
}

func TestRecorderIgnoresEmptyTraceID(t *testing.T) {
	r := NewTraceRecorder(2, 4)
	r.Record(SpanData{SpanID: "x", Name: "orphan"})
	if r.Len() != 0 {
		t.Fatalf("Len = %d, want 0", r.Len())
	}
}

func TestRecorderRecent(t *testing.T) {
	r := NewTraceRecorder(8, 16)
	t0 := time.Now()
	r.Record(mkSpan("first", "a", "", "alpha", t0, t0.Add(time.Millisecond)))
	r.Record(mkSpan("second", "b", "", "beta", t0.Add(time.Second), t0.Add(2*time.Second)))
	rec := r.Recent(10)
	if len(rec) != 2 {
		t.Fatalf("recent = %d entries, want 2", len(rec))
	}
	if rec[0].TraceID != "second" {
		t.Fatalf("most recent = %s, want second", rec[0].TraceID)
	}
	if rec[0].Root != "beta" || rec[1].Root != "alpha" {
		t.Fatalf("roots = %s,%s", rec[0].Root, rec[1].Root)
	}
	if got := r.Recent(1); len(got) != 1 {
		t.Fatalf("limit 1 returned %d", len(got))
	}
}

func TestRecorderRootNamePicksParentlessSpan(t *testing.T) {
	r := NewTraceRecorder(2, 16)
	t0 := time.Now()
	// Child inserted first; root has the earliest start and no parent.
	r.Record(mkSpan("t", "c", "r", "child", t0.Add(time.Millisecond), t0.Add(2*time.Millisecond)))
	r.Record(mkSpan("t", "r", "", "entry", t0, t0.Add(3*time.Millisecond)))
	rec := r.Recent(1)
	if rec[0].Root != "entry" {
		t.Fatalf("root = %q, want entry", rec[0].Root)
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewTraceRecorder(16, 64)
	var wg sync.WaitGroup
	t0 := time.Now()
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				id := fmt.Sprintf("trace-%d", i%20)
				r.Record(mkSpan(id, fmt.Sprintf("s-%d-%d", g, i), "", "x", t0, t0))
				r.Trace(id)
				r.Recent(5)
			}
		}(g)
	}
	wg.Wait()
	if r.Len() > 16 {
		t.Fatalf("Len = %d exceeds bound 16", r.Len())
	}
}

func TestStartSpanStructural(t *testing.T) {
	r := NewTraceRecorder(4, 64)
	ctx := WithRecorder(context.Background(), r)

	rctx, root := StartSpan(ctx, "outer")
	if !root.Recording() {
		t.Fatal("root not recording under recorder ctx")
	}
	if ActiveSpan(rctx) != root {
		t.Fatal("returned ctx does not carry the span")
	}
	if len(root.TraceID()) != 32 || len(root.SpanID()) != 16 {
		t.Fatalf("id lengths: trace %d, span %d", len(root.TraceID()), len(root.SpanID()))
	}

	cctx, child := StartSpan(rctx, "inner")
	if child.TraceID() != root.TraceID() {
		t.Fatal("child trace id differs from parent")
	}
	_ = cctx
	child.SetAttr("k", "v").SetAttr("k2", "v2")
	child.Event("retry", Attr{Key: "attempt", Value: "1"})
	child.End()
	root.End()
	root.End() // idempotent

	tr, ok := r.Trace(root.TraceID())
	if !ok {
		t.Fatal("trace not recorded")
	}
	if len(tr.Spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(tr.Spans))
	}
	var childSD *SpanData
	for i := range tr.Spans {
		if tr.Spans[i].Name == "inner" {
			childSD = &tr.Spans[i]
		}
	}
	if childSD == nil {
		t.Fatal("inner span not recorded")
	}
	if childSD.ParentID != root.SpanID() {
		t.Fatalf("child parent = %q, want %q", childSD.ParentID, root.SpanID())
	}
	if childSD.Attr("k") != "v" || childSD.Attr("k2") != "v2" {
		t.Fatalf("attrs = %+v", childSD.Attrs)
	}
	if len(childSD.Events) != 1 || childSD.Events[0].Name != "retry" {
		t.Fatalf("events = %+v", childSD.Events)
	}
}

func TestStartSpanWithoutRecorderIsStructureless(t *testing.T) {
	ctx := context.Background()
	rctx, s := StartSpan(ctx, "plain")
	if rctx != ctx {
		t.Fatal("ctx changed without a recorder")
	}
	if s.Recording() || s.TraceID() != "" || s.SpanID() != "" {
		t.Fatal("span has structure without a recorder")
	}
	s.SetAttr("a", "b") // all no-ops, must not panic
	s.Event("e")
	s.End()
}

func TestStartSpanParentResolutionOrder(t *testing.T) {
	r := NewTraceRecorder(8, 64)
	base := WithRecorder(context.Background(), r)

	// Remote parent beats ctx trace id.
	rp := SpanContext{TraceID: strings.Repeat("a", 32), SpanID: strings.Repeat("b", 16)}
	ctx := WithTraceID(WithSpanParent(base, rp), "ignored")
	_, s := StartSpan(ctx, "shard.execute")
	if s.TraceID() != rp.TraceID {
		t.Fatalf("trace = %s, want remote parent's", s.TraceID())
	}
	s.End()
	sp := r.Spans(rp.TraceID)
	if len(sp) != 1 || sp[0].ParentID != rp.SpanID {
		t.Fatalf("parent = %+v", sp)
	}

	// Ctx trace id adopted when no span/remote parent.
	ctx2 := WithTraceID(base, strings.Repeat("c", 32))
	_, s2 := StartSpan(ctx2, "job.run")
	if s2.TraceID() != strings.Repeat("c", 32) {
		t.Fatalf("trace = %s, want ctx trace id", s2.TraceID())
	}
	if s2.SpanContext().SpanID == "" {
		t.Fatal("no span id assigned")
	}
	s2.End()
}

func TestSpanSetStartBackdates(t *testing.T) {
	r := NewTraceRecorder(2, 8)
	ctx := WithRecorder(context.Background(), r)
	_, s := StartSpan(ctx, "job.run")
	past := time.Now().Add(-time.Hour)
	s.SetStart(past)
	s.SetStart(time.Time{}) // zero is ignored
	s.End()
	sp := r.Spans(s.TraceID())
	if len(sp) != 1 || !sp[0].Start.Equal(past) {
		t.Fatalf("start = %v, want %v", sp[0].Start, past)
	}
	if sp[0].Duration() < time.Hour {
		t.Fatalf("duration = %v, want >= 1h", sp[0].Duration())
	}
}

func TestRecordSpanParentsToActiveSpan(t *testing.T) {
	r := NewTraceRecorder(2, 8)
	ctx := WithRecorder(context.Background(), r)
	sctx, s := StartSpan(ctx, "job.run")
	t0 := time.Now().Add(-time.Second)
	RecordSpan(sctx, "queue.wait", t0, time.Now(), Attr{Key: "tenant", Value: "acme"})
	s.End()
	tr, _ := r.Trace(s.TraceID())
	var qw *SpanData
	for i := range tr.Spans {
		if tr.Spans[i].Name == "queue.wait" {
			qw = &tr.Spans[i]
		}
	}
	if qw == nil {
		t.Fatal("queue.wait not recorded")
	}
	if qw.ParentID != s.SpanID() {
		t.Fatalf("parent = %q, want %q", qw.ParentID, s.SpanID())
	}
	if qw.Attr("tenant") != "acme" {
		t.Fatalf("attrs = %+v", qw.Attrs)
	}
}

func TestRecordSpanNoTraceNoRecord(t *testing.T) {
	r := NewTraceRecorder(2, 8)
	ctx := WithRecorder(context.Background(), r)
	RecordSpan(ctx, "queue.wait", time.Now().Add(-time.Second), time.Now())
	if r.Len() != 0 {
		t.Fatal("recorded a span with no resolvable trace id")
	}
}

func TestWithRecorderNilMasks(t *testing.T) {
	r := NewTraceRecorder(2, 8)
	ctx := WithRecorder(context.Background(), r)
	masked := WithRecorder(ctx, nil)
	if RecorderFrom(masked) != nil {
		t.Fatal("nil recorder did not mask")
	}
	_, s := StartSpan(masked, "x")
	if s.Recording() {
		t.Fatal("span recording under masked recorder")
	}
}

// ctxMarkHandler enables debug logging only when the context carries a
// marker value — distinguishing "probed the passed ctx" from "probed
// context.Background()", which is exactly the satellite bug.
type ctxMark struct{}

type ctxMarkHandler struct {
	mu    sync.Mutex
	lines []string
}

func (h *ctxMarkHandler) Enabled(ctx context.Context, _ slog.Level) bool {
	on, _ := ctx.Value(ctxMark{}).(bool)
	return on
}

func (h *ctxMarkHandler) Handle(_ context.Context, rec slog.Record) error {
	h.mu.Lock()
	h.lines = append(h.lines, rec.Message)
	h.mu.Unlock()
	return nil
}

func (h *ctxMarkHandler) WithAttrs([]slog.Attr) slog.Handler { return h }
func (h *ctxMarkHandler) WithGroup(string) slog.Handler      { return h }

func (h *ctxMarkHandler) count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.lines)
}

func TestSpanEndProbesStartingContext(t *testing.T) {
	h := &ctxMarkHandler{}
	logger := slog.New(h)

	// Marked ctx: End must emit even though context.Background would say no.
	on := context.WithValue(context.Background(), ctxMark{}, true)
	_, s := StartSpan(WithLogger(on, logger), "probe.on")
	s.End()
	if h.count() != 1 {
		t.Fatalf("marked ctx: %d log lines, want 1", h.count())
	}

	// Unmarked ctx: End must stay silent.
	_, s2 := StartSpan(WithLogger(context.Background(), logger), "probe.off")
	s2.End()
	if h.count() != 1 {
		t.Fatalf("unmarked ctx: %d log lines, want still 1", h.count())
	}

	// ObserveSpan uses the same passed-ctx probe.
	ObserveSpan(WithLogger(on, logger), "probe.obs", time.Millisecond)
	if h.count() != 2 {
		t.Fatalf("ObserveSpan marked ctx: %d lines, want 2", h.count())
	}
}

func TestNextSpanIDUniqueAndPadded(t *testing.T) {
	seen := make(map[string]bool, 1000)
	for i := 0; i < 1000; i++ {
		id := nextSpanID()
		if len(id) != 16 {
			t.Fatalf("span id %q len %d", id, len(id))
		}
		if seen[id] {
			t.Fatalf("duplicate span id %q", id)
		}
		seen[id] = true
	}
}

func TestWriteChromeTrace(t *testing.T) {
	t0 := time.Now()
	root := mkSpan("t", "r", "", "cluster.run", t0, t0.Add(10*time.Millisecond))
	shard := mkSpan("t", "s1", "r", "cluster.shard", t0.Add(time.Millisecond), t0.Add(9*time.Millisecond))
	shard.Events = []SpanEvent{{Name: "retry", Time: t0.Add(4 * time.Millisecond), Attrs: []Attr{{Key: "attempt", Value: "1"}}}}
	exec := mkSpan("t", "w1", "s1", "shard.execute", t0.Add(2*time.Millisecond), t0.Add(8*time.Millisecond))
	exec.Attrs = []Attr{{Key: "node", Value: "worker-0"}}
	tr := Trace{TraceID: "t", Spans: []SpanData{root, shard, exec}}

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Unit        string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if out.Unit != "ms" {
		t.Fatalf("displayTimeUnit = %q", out.Unit)
	}
	var lanes, complete, instants int
	laneNames := map[string]bool{}
	for _, ev := range out.TraceEvents {
		switch ev["ph"] {
		case "M":
			lanes++
			if args, ok := ev["args"].(map[string]any); ok {
				laneNames[args["name"].(string)] = true
			}
		case "X":
			complete++
			if ev["ts"].(float64) < 0 {
				t.Fatalf("negative ts in %+v", ev)
			}
		case "i":
			instants++
		}
	}
	if complete != 3 {
		t.Fatalf("complete events = %d, want 3", complete)
	}
	if instants != 1 {
		t.Fatalf("instant events = %d, want 1", instants)
	}
	if !laneNames["coordinator"] || !laneNames["worker-0"] {
		t.Fatalf("lanes = %v, want coordinator + worker-0", laneNames)
	}
	if lanes != 2 {
		t.Fatalf("lane metadata events = %d, want 2", lanes)
	}
}

func TestWriteChromeTraceNodeInheritedFromAncestor(t *testing.T) {
	t0 := time.Now()
	exec := mkSpan("t", "w1", "", "shard.execute", t0, t0.Add(time.Millisecond))
	exec.Attrs = []Attr{{Key: "node", Value: "worker-2"}}
	chunk := mkSpan("t", "c1", "w1", "mc.chunk", t0, t0.Add(time.Millisecond))
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, Trace{TraceID: "t", Spans: []SpanData{exec, chunk}}); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	// Both spans must land on the worker-2 lane (same non-zero tid).
	var tids []float64
	for _, ev := range out.TraceEvents {
		if ev["ph"] == "X" {
			tids = append(tids, ev["tid"].(float64))
		}
	}
	if len(tids) != 2 || tids[0] != tids[1] {
		t.Fatalf("tids = %v, want both on the same lane", tids)
	}
	if tids[0] == 0 {
		t.Fatal("worker spans placed on the coordinator lane")
	}
}
