package obs

import (
	"regexp"
	"strings"
	"sync"
	"testing"
)

func TestCounterConcurrentIncrements(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_concurrent_total", "concurrency check")
	const goroutines, perG = 16, 1000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
	if c.Add(-5); c.Value() != goroutines*perG {
		t.Error("negative Add must not move a counter")
	}
}

func TestCounterVecSeries(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("test_jobs_total", "jobs", "status")
	v.With("done").Add(3)
	v.With("failed").Inc()
	if v.With("done").Value() != 3 || v.With("failed").Value() != 1 {
		t.Fatalf("series values wrong: done=%d failed=%d",
			v.With("done").Value(), v.With("failed").Value())
	}
	// Same name and label resolve to the same family and series.
	if r.CounterVec("test_jobs_total", "jobs", "status").With("done") != v.With("done") {
		t.Error("CounterVec is not get-or-create")
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_hist", "boundaries", []float64{1, 2, 5})
	// An observation exactly on a boundary belongs to that bucket
	// (le = less-or-equal), and values beyond the last bound land in
	// +Inf overflow.
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 5, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	want := []uint64{2, 2, 2, 1} // (≤1)=2, (1,2]=2, (2,5]=2, +Inf=1
	if len(s.Counts) != len(want) {
		t.Fatalf("bucket count = %d, want %d", len(s.Counts), len(want))
	}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, s.Counts[i], w)
		}
	}
	if s.Count != 7 {
		t.Errorf("count = %d, want 7", s.Count)
	}
	if s.Sum != 0.5+1+1.5+2+3+5+100 {
		t.Errorf("sum = %g", s.Sum)
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("alpha_total", "a counter").Add(7)
	r.Gauge("beta", "a gauge").Set(2.5)
	r.GaugeFunc("gamma", "a callback gauge", func() float64 { return 42 })
	r.CounterVec("delta_total", "labeled", "kind").With(`we"ird\v`).Inc()
	r.Histogram("eps_seconds", "a histogram", []float64{0.1, 1}).Observe(0.5)

	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()

	// Every family carries a TYPE header.
	for _, want := range []string{
		"# TYPE alpha_total counter",
		"# TYPE beta gauge",
		"# TYPE gamma gauge",
		"# TYPE delta_total counter",
		"# TYPE eps_seconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	for _, want := range []string{
		"alpha_total 7\n",
		"beta 2.5\n",
		"gamma 42\n",
		`delta_total{kind="we\"ird\\v"} 1` + "\n",
		`eps_seconds_bucket{le="0.1"} 0` + "\n",
		`eps_seconds_bucket{le="1"} 1` + "\n",
		`eps_seconds_bucket{le="+Inf"} 1` + "\n",
		"eps_seconds_sum 0.5\n",
		"eps_seconds_count 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}

	// Exactly one metric per non-comment line, in exposition syntax.
	sample := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [^ ]+$`)
	for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !sample.MatchString(line) {
			t.Errorf("malformed sample line %q", line)
		}
	}
}

func TestRegistryShapeConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("shape_total", "counter first")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge must panic")
		}
	}()
	r.Gauge("shape_total", "now a gauge")
}

func TestGaugeFuncRebinds(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("rebind", "x", func() float64 { return 1 })
	r.GaugeFunc("rebind", "x", func() float64 { return 2 })
	var b strings.Builder
	r.WritePrometheus(&b)
	if !strings.Contains(b.String(), "rebind 2\n") {
		t.Fatalf("last GaugeFunc registration should win:\n%s", b.String())
	}
}
