package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"log/slog"
)

type ctxKey int

const (
	ctxLogger ctxKey = iota
	ctxTrace
	ctxProgress
)

// NewTraceID returns a fresh 128-bit identifier as 32 hex characters.
func NewTraceID() string {
	var b [16]byte
	_, _ = rand.Read(b[:]) // never fails; panics on a broken entropy source
	return hex.EncodeToString(b[:])
}

// WithTraceID attaches a trace identifier to the context.
func WithTraceID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ctxTrace, id)
}

// TraceID returns the context's trace identifier, or "" when none is
// attached.
func TraceID(ctx context.Context) string {
	id, _ := ctx.Value(ctxTrace).(string)
	return id
}

// WithLogger attaches a logger to the context.
func WithLogger(ctx context.Context, l *slog.Logger) context.Context {
	return context.WithValue(ctx, ctxLogger, l)
}

// Logger returns the context's logger, falling back to slog.Default so
// instrumented code can always log without nil checks.
func Logger(ctx context.Context) *slog.Logger {
	if l, ok := ctx.Value(ctxLogger).(*slog.Logger); ok {
		return l
	}
	return slog.Default()
}
