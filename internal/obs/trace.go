package obs

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"log/slog"
	"strconv"
	"sync/atomic"
)

type ctxKey int

const (
	ctxLogger ctxKey = iota
	ctxTrace
	ctxProgress
	ctxSpan
	ctxRecorder
	ctxSpanParent
)

// NewTraceID returns a fresh 128-bit identifier as 32 hex characters.
func NewTraceID() string {
	var b [16]byte
	_, _ = rand.Read(b[:]) // never fails; panics on a broken entropy source
	return hex.EncodeToString(b[:])
}

// spanIDState drives span-id generation: a splitmix64 walk from a
// random starting point, so ids are unique within a process and do not
// collide across processes in practice. Span ids only need to be
// distinct within one trace, never secret.
var spanIDState atomic.Uint64

func init() {
	var b [8]byte
	_, _ = rand.Read(b[:])
	spanIDState.Store(binary.LittleEndian.Uint64(b[:]))
}

// nextSpanID returns a fresh 64-bit span identifier as 16 hex chars.
func nextSpanID() string {
	x := spanIDState.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	if x == 0 {
		x = 1
	}
	s := strconv.FormatUint(x, 16)
	for len(s) < 16 {
		s = "0" + s
	}
	return s
}

// WithTraceID attaches a trace identifier to the context.
func WithTraceID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ctxTrace, id)
}

// TraceID returns the context's trace identifier, or "" when none is
// attached.
func TraceID(ctx context.Context) string {
	id, _ := ctx.Value(ctxTrace).(string)
	return id
}

// WithLogger attaches a logger to the context.
func WithLogger(ctx context.Context, l *slog.Logger) context.Context {
	return context.WithValue(ctx, ctxLogger, l)
}

// Logger returns the context's logger, falling back to slog.Default so
// instrumented code can always log without nil checks.
func Logger(ctx context.Context) *slog.Logger {
	if l, ok := ctx.Value(ctxLogger).(*slog.Logger); ok {
		return l
	}
	return slog.Default()
}

// WithRecorder attaches a trace recorder to the context: spans started
// under it record structural SpanData on End. Attaching nil masks any
// recorder further up the chain, which is how process boundaries are
// simulated in-process (see cluster.Loopback).
func WithRecorder(ctx context.Context, r *TraceRecorder) context.Context {
	return context.WithValue(ctx, ctxRecorder, r)
}

// RecorderFrom returns the context's trace recorder, or nil when
// recording is off.
func RecorderFrom(ctx context.Context) *TraceRecorder {
	if r, ok := ctx.Value(ctxRecorder).(*TraceRecorder); ok {
		return r
	}
	return nil
}

// SpanContext is the wire-portable identity of a span: the 128-bit
// trace it belongs to and its own 64-bit id, both hex-encoded. It is
// what crosses process boundaries (shard requests) and asynchronous
// gaps (HTTP submission → queued job) to keep one causal tree.
type SpanContext struct {
	TraceID string `json:"trace_id"`
	SpanID  string `json:"span_id"`
}

// WithSpanParent attaches a remote or asynchronous parent: the next
// span started under ctx (with no in-process active span) parents
// itself to p. Used by shard workers (parent on the coordinator) and
// by queued jobs (parent on the submitting HTTP request).
func WithSpanParent(ctx context.Context, p SpanContext) context.Context {
	return context.WithValue(ctx, ctxSpanParent, p)
}

// spanParentFrom returns the remote parent attached to ctx, if any.
func spanParentFrom(ctx context.Context) (SpanContext, bool) {
	p, ok := ctx.Value(ctxSpanParent).(SpanContext)
	return p, ok
}

// ActiveSpan returns the span carried by ctx — the one StartSpan put
// there — or nil. Only recording spans are carried, so a nil result
// means either "no span" or "recording disabled"; both read the same
// to children.
func ActiveSpan(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxSpan).(*Span)
	return s
}
