package obs

import (
	"bytes"
	"context"
	"log/slog"
	"strings"
	"testing"
	"time"
)

func TestTraceIDContext(t *testing.T) {
	if TraceID(context.Background()) != "" {
		t.Fatal("empty context must have no trace id")
	}
	id := NewTraceID()
	if len(id) != 32 {
		t.Fatalf("trace id %q, want 32 hex chars", id)
	}
	if id == NewTraceID() {
		t.Fatal("trace ids must not repeat")
	}
	ctx := WithTraceID(context.Background(), id)
	if got := TraceID(ctx); got != id {
		t.Fatalf("TraceID = %q, want %q", got, id)
	}
}

func TestLoggerContext(t *testing.T) {
	if Logger(context.Background()) != slog.Default() {
		t.Fatal("empty context must fall back to slog.Default")
	}
	var buf bytes.Buffer
	l := slog.New(slog.NewTextHandler(&buf, nil))
	ctx := WithLogger(context.Background(), l)
	Logger(ctx).Info("hello", "k", "v")
	if !strings.Contains(buf.String(), "hello") {
		t.Fatalf("context logger not used: %q", buf.String())
	}
}

func TestSpanRecordsDurationAndLog(t *testing.T) {
	var buf bytes.Buffer
	l := slog.New(slog.NewTextHandler(&buf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	ctx := WithLogger(context.Background(), l)

	before := spanDurations.With("test.span").Snapshot().Count
	_, span := StartSpan(ctx, "test.span")
	span.End()
	after := spanDurations.With("test.span").Snapshot().Count
	if after != before+1 {
		t.Fatalf("span histogram count %d -> %d, want +1", before, after)
	}
	if !strings.Contains(buf.String(), "test.span") {
		t.Errorf("span debug log missing: %q", buf.String())
	}

	ObserveSpan(ctx, "test.span", 3*time.Millisecond)
	if got := spanDurations.With("test.span").Snapshot().Count; got != after+1 {
		t.Fatalf("ObserveSpan did not record: count = %d", got)
	}

	var nilSpan *Span
	nilSpan.End() // must not panic
}
