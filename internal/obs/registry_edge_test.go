package obs

import (
	"math"
	"strings"
	"testing"
)

// exposition renders one registry to a string.
func exposition(r *Registry) string {
	var b strings.Builder
	r.WritePrometheus(&b)
	return b.String()
}

func TestLabelValueEscaping(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("edge_total", "edge cases", "kind")
	cases := map[string]string{
		`quote "inside"`:   `quote \"inside\"`,
		`back\slash`:       `back\\slash`,
		"new\nline":        `new\nline`,
		`mixed "\` + "\n":  `mixed \"\\\n`,
		"plain":            "plain",
		`trailing\`:        `trailing\\`,
		"\n\nleading":      `\n\nleading`,
		`""`:               `\"\"`,
		`C:\path\to"file"`: `C:\\path\\to\"file\"`,
	}
	for raw := range cases {
		v.With(raw).Inc()
	}
	out := exposition(r)
	for raw, escaped := range cases {
		want := `edge_total{kind="` + escaped + `"} 1`
		if !strings.Contains(out, want+"\n") {
			t.Errorf("label %q: exposition missing %q\ngot:\n%s", raw, want, out)
		}
	}
	// No raw newline may survive inside a label value: every line must be
	// a comment or a complete sample.
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.HasPrefix(line, "edge_total{kind=\"") || !strings.HasSuffix(line, "\"} 1") {
			t.Errorf("malformed exposition line %q", line)
		}
	}
}

func TestHistogramVecLabelEscaping(t *testing.T) {
	r := NewRegistry()
	hv := r.HistogramVec("edge_seconds", "", "span", []float64{1})
	hv.With(`a"b`).Observe(0.5)
	out := exposition(r)
	for _, want := range []string{
		`edge_seconds_bucket{span="a\"b",le="1"} 1`,
		`edge_seconds_bucket{span="a\"b",le="+Inf"} 1`,
		`edge_seconds_sum{span="a\"b"} 0.5`,
		`edge_seconds_count{span="a\"b"} 1`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestExplicitInfBucketRendering(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("inf_seconds", "", []float64{0.1, 1})
	h.Observe(0.05)  // first bucket
	h.Observe(0.5)   // second bucket
	h.Observe(100)   // overflow
	h.Observe(1e300) // still finite, still overflow
	h.Observe(math.Inf(1))
	out := exposition(r)
	for _, want := range []string{
		`inf_seconds_bucket{le="0.1"} 1`,
		`inf_seconds_bucket{le="1"} 2`,
		`inf_seconds_bucket{le="+Inf"} 5`,
		`inf_seconds_count 5`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// +Inf must be spelled exactly that way, not Go's "+Inf"-adjacent
	// renderings like "Inf" or "inf".
	if strings.Contains(out, `le="Inf"`) || strings.Contains(out, `le="inf"`) {
		t.Errorf("wrong +Inf spelling in:\n%s", out)
	}
	// The +Inf cumulative count must equal _count even though one
	// observation was literally infinite.
	if !strings.Contains(out, `inf_seconds_sum`) {
		t.Errorf("missing _sum in:\n%s", out)
	}
}

func TestEmptyHistogramStillRendersInfBucket(t *testing.T) {
	r := NewRegistry()
	r.Histogram("idle_seconds", "", []float64{1})
	out := exposition(r)
	for _, want := range []string{
		`idle_seconds_bucket{le="1"} 0`,
		`idle_seconds_bucket{le="+Inf"} 0`,
		`idle_seconds_count 0`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestHelpEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("helpy_total", "line one\nline two with \\backslash")
	out := exposition(r)
	want := `# HELP helpy_total line one\nline two with \\backslash`
	if !strings.Contains(out, want+"\n") {
		t.Errorf("missing %q in:\n%s", want, out)
	}
}

func TestInfoGauge(t *testing.T) {
	r := NewRegistry()
	g := r.InfoGauge("build_info", "Build metadata.",
		Label{Name: "version", Value: `v1.2.3"dev"`},
		Label{Name: "go_version", Value: "go1.22"})
	g.Set(1)
	out := exposition(r)
	// Labels sorted by name regardless of call order; values escaped.
	want := `build_info{go_version="go1.22",version="v1.2.3\"dev\""} 1`
	if !strings.Contains(out, want+"\n") {
		t.Errorf("missing %q in:\n%s", want, out)
	}
	// Same labels in a different order must return the same series.
	g2 := r.InfoGauge("build_info", "Build metadata.",
		Label{Name: "go_version", Value: "go1.22"},
		Label{Name: "version", Value: `v1.2.3"dev"`})
	if g2 != g {
		t.Error("label order created a second series")
	}
}

func TestInfoGaugeInvalidLabelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on invalid label name")
		}
	}()
	NewRegistry().InfoGauge("x_info", "", Label{Name: "bad-name", Value: "v"})
}
