package obs

import (
	"sync"
	"testing"
	"time"
)

func TestSignalRaiseWakesSubscribers(t *testing.T) {
	s := NewSignal()
	ch1, cancel1 := s.Subscribe()
	ch2, cancel2 := s.Subscribe()
	defer cancel1()
	defer cancel2()
	if got := s.Subscribers(); got != 2 {
		t.Fatalf("subscribers = %d", got)
	}
	s.Raise()
	for i, ch := range []<-chan struct{}{ch1, ch2} {
		select {
		case <-ch:
		case <-time.After(time.Second):
			t.Fatalf("subscriber %d never notified", i)
		}
	}
}

// TestSignalCoalesces: a burst of raises leaves at most one pending
// notification, and raising never blocks on a slow subscriber.
func TestSignalCoalesces(t *testing.T) {
	s := NewSignal()
	ch, cancel := s.Subscribe()
	defer cancel()
	for i := 0; i < 1000; i++ {
		s.Raise()
	}
	<-ch
	select {
	case <-ch:
		t.Fatal("burst of raises queued more than one notification")
	default:
	}
}

func TestSignalCancelIdempotentAndNilSafe(t *testing.T) {
	s := NewSignal()
	_, cancel := s.Subscribe()
	cancel()
	cancel()
	if got := s.Subscribers(); got != 0 {
		t.Fatalf("subscribers after cancel = %d", got)
	}
	var nilSig *Signal
	nilSig.Raise() // must not panic
	if nilSig.Subscribers() != 0 {
		t.Fatal("nil signal has subscribers")
	}
}

func TestNotifyProgressForwardsAndRaises(t *testing.T) {
	tr := NewTracker()
	sig := NewSignal()
	ch, cancel := sig.Subscribe()
	defer cancel()
	p := NotifyProgress(tr, sig)
	p.AddTotal(10)
	p.Add(3)
	snap := tr.Snapshot()
	if snap.Total != 10 || snap.Done != 3 {
		t.Fatalf("tracker = %+v, updates not forwarded", snap)
	}
	select {
	case <-ch:
	case <-time.After(time.Second):
		t.Fatal("progress update did not raise the signal")
	}
	// Degenerate wrappers stay usable.
	NotifyProgress(nil, sig).Add(1)
	if got := NotifyProgress(tr, nil); got != Progress(tr) {
		t.Fatal("nil signal should return the plain sink")
	}
}

func TestSignalConcurrent(t *testing.T) {
	s := NewSignal()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					s.Raise()
				}
			}
		}()
	}
	for i := 0; i < 50; i++ {
		ch, cancel := s.Subscribe()
		select {
		case <-ch:
		case <-time.After(time.Second):
			t.Error("subscriber starved during concurrent raises")
		}
		cancel()
	}
	close(stop)
	wg.Wait()
}
