package obs

import (
	"context"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// Progress receives work accounting from instrumented code: AddTotal
// adjusts the expected amount of work (totals may arrive incrementally,
// e.g. one sweep at a time, and may shrink — an adaptive run that stops
// early retires its unspent budget with a negative AddTotal) and Add
// records completed work. Both must be safe for concurrent use.
type Progress interface {
	AddTotal(n int64)
	Add(n int64)
}

type nopProgress struct{}

func (nopProgress) AddTotal(int64) {}
func (nopProgress) Add(int64)      {}

// Nop is a Progress sink that discards everything.
var Nop Progress = nopProgress{}

// Tracker is the standard Progress implementation: atomic done/total
// counters plus the wall-clock start, snapshotted without locks.
type Tracker struct {
	start time.Time
	total atomic.Int64
	done  atomic.Int64
}

// NewTracker returns a tracker whose elapsed time starts now.
func NewTracker() *Tracker { return &Tracker{start: time.Now()} }

// AddTotal adjusts the expected work. Negative n shrinks the total —
// how adaptive early stopping retires unspent budget so a finished run
// reads 100%, not 12% forever — but never below the work already done:
// the done <= total invariant every consumer (progress lines, SSE
// percentages) relies on survives any call sequence. Safe on a nil
// receiver.
func (t *Tracker) AddTotal(n int64) {
	if t == nil || n == 0 {
		return
	}
	t.total.Add(n)
	if n < 0 {
		// Clamp a shrink that undershot the completed work. The CAS loop
		// races only against other shrinks (Add never lowers done), so
		// settling at done is the correct floor.
		for {
			cur := t.total.Load()
			done := t.done.Load()
			if cur >= done || t.total.CompareAndSwap(cur, done) {
				return
			}
		}
	}
}

// Add records completed work. Safe on a nil receiver.
func (t *Tracker) Add(n int64) {
	if t != nil && n > 0 {
		t.done.Add(n)
	}
}

// ProgressSnapshot is a point-in-time view of a Tracker.
type ProgressSnapshot struct {
	Done    int64
	Total   int64
	Elapsed time.Duration
}

// Snapshot reads the tracker. Safe on a nil receiver, which reads as
// all-zero.
func (t *Tracker) Snapshot() ProgressSnapshot {
	if t == nil {
		return ProgressSnapshot{}
	}
	return ProgressSnapshot{
		Done:    t.done.Load(),
		Total:   t.total.Load(),
		Elapsed: time.Since(t.start),
	}
}

// WithProgress attaches a progress sink to the context.
func WithProgress(ctx context.Context, p Progress) context.Context {
	return context.WithValue(ctx, ctxProgress, p)
}

// ProgressFrom returns the context's progress sink, or Nop when none
// is attached — callers report unconditionally.
func ProgressFrom(ctx context.Context) Progress {
	if p, ok := ctx.Value(ctxProgress).(Progress); ok && p != nil {
		return p
	}
	return Nop
}

// StartProgressPrinter renders a live single-line progress display for
// t on w (meant for a terminal's stderr), refreshing every interval.
// The returned stop function prints a final line ending in a newline
// and waits for the printer goroutine to exit; it is idempotent.
func StartProgressPrinter(w io.Writer, label string, t *Tracker, interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = 200 * time.Millisecond
	}
	done := make(chan struct{})
	exited := make(chan struct{})
	go func() {
		defer close(exited)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-done:
				fmt.Fprintf(w, "\r%s\n", progressLine(label, t.Snapshot()))
				return
			case <-tick.C:
				fmt.Fprintf(w, "\r%s", progressLine(label, t.Snapshot()))
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			<-exited
		})
	}
}

// progressLine formats one display line; trailing spaces erase residue
// from a previous, longer line after the carriage return.
func progressLine(label string, s ProgressSnapshot) string {
	el := s.Elapsed.Truncate(100 * time.Millisecond)
	if s.Total > 0 {
		pct := 100 * float64(s.Done) / float64(s.Total)
		return fmt.Sprintf("%s: %d/%d trials (%3.0f%%) %s   ", label, s.Done, s.Total, pct, el)
	}
	return fmt.Sprintf("%s: %d trials %s   ", label, s.Done, el)
}

// IsTerminal reports whether f is attached to a character device —
// the gate for live progress lines and carriage-return redraws.
func IsTerminal(f *os.File) bool {
	st, err := f.Stat()
	return err == nil && st.Mode()&os.ModeCharDevice != 0
}
