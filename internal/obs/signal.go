package obs

import "sync"

// Signal is a coalescing broadcast: Raise marks "something changed"
// and wakes every subscriber, collapsing bursts of raises into at most
// one pending notification per subscriber. It carries no payload —
// subscribers re-read whatever state they watch — which is what makes
// raising cheap enough to call from a Monte-Carlo chunk loop with
// thousands of SSE watchers attached.
type Signal struct {
	mu   sync.Mutex
	subs map[chan struct{}]struct{}
}

// NewSignal returns an empty signal.
func NewSignal() *Signal {
	return &Signal{subs: make(map[chan struct{}]struct{})}
}

// Raise notifies every subscriber. Safe on a nil receiver, and never
// blocks: a subscriber that already has a pending notification is
// skipped (it will re-read state anyway).
func (s *Signal) Raise() {
	if s == nil {
		return
	}
	s.mu.Lock()
	for ch := range s.subs {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
	s.mu.Unlock()
}

// Subscribe registers a watcher. The returned channel receives (at
// least) one value after every Raise since the last read; cancel
// unregisters and is idempotent.
func (s *Signal) Subscribe() (ch <-chan struct{}, cancel func()) {
	c := make(chan struct{}, 1)
	s.mu.Lock()
	s.subs[c] = struct{}{}
	s.mu.Unlock()
	var once sync.Once
	return c, func() {
		once.Do(func() {
			s.mu.Lock()
			delete(s.subs, c)
			s.mu.Unlock()
		})
	}
}

// Subscribers reports how many watchers are registered.
func (s *Signal) Subscribers() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.subs)
}

// notifyProgress forwards progress into p and raises sig on every
// update, so watchers learn about new work without polling the sink.
type notifyProgress struct {
	p   Progress
	sig *Signal
}

func (n notifyProgress) AddTotal(v int64) {
	n.p.AddTotal(v)
	n.sig.Raise()
}

func (n notifyProgress) Add(v int64) {
	n.p.Add(v)
	n.sig.Raise()
}

// NotifyProgress wraps a progress sink so every AddTotal/Add also
// raises sig. A nil sink forwards into Nop; a nil signal degrades to
// the plain sink.
func NotifyProgress(p Progress, sig *Signal) Progress {
	if p == nil {
		p = Nop
	}
	if sig == nil {
		return p
	}
	return notifyProgress{p: p, sig: sig}
}
