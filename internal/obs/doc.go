// Package obs is the observability layer of the cogmimod stack: a
// stdlib-only metrics registry, structured logging helpers, lightweight
// spans and a progress sink — shared by the service, the simulation
// kernels and the CLIs.
//
// # Metrics
//
// A Registry holds counters, gauges and fixed-bucket histograms,
// optionally split by a single label, and renders them in the
// Prometheus text exposition format (one sample per line, preceded by
// # HELP and # TYPE headers). All constructors have get-or-create
// semantics — calling Counter twice with the same name returns the same
// counter — so packages can declare their metrics in vars without
// coordinating registration order. Default is the process-wide registry
// that cmd/cogmimod serves at GET /metrics/prom; expvar stays on
// /metrics for compatibility.
//
// # Logging and tracing
//
// Loggers ride on context.Context: WithLogger attaches a *slog.Logger,
// Logger retrieves it (falling back to slog.Default), and WithTraceID /
// TraceID carry a request- or job-scoped trace identifier that the HTTP
// layer generates (or accepts from an X-Trace-Id request header) and
// echoes back in the X-Trace-Id response header. A job inherits the
// trace id of the request that submitted it, so one id follows a
// computation from HTTP arrival through queueing to driver completion.
//
// # Spans
//
// StartSpan(ctx, name) marks the beginning of a stage; Span.End records
// its duration into the obs_span_duration_seconds{span=name} histogram
// of the Default registry and emits a debug log line through the
// context logger. ObserveSpan records an already-measured duration the
// same way (used for retroactive stages such as queue wait). Span names
// become label values — keep them to a small fixed vocabulary.
//
// # Progress
//
// A Progress sink receives AddTotal (expected work) and Add (completed
// work) calls; Tracker is the standard implementation with an atomic
// snapshot of done/total/elapsed. WithProgress / ProgressFrom propagate
// the sink through context — ProgressFrom returns a no-op sink when
// none is attached, so instrumented code never branches. sim.MonteCarlo
// reports completed trials per chunk, experiment drivers report sweep
// points, the service exposes the snapshot on GET /v1/jobs/{id}, and
// StartProgressPrinter renders a live progress line on a terminal.
package obs
