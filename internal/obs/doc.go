// Package obs is the observability layer of the cogmimod stack: a
// stdlib-only metrics registry, structured logging helpers, a
// distributed tracing span tree with a bounded in-process recorder, and
// a progress sink — shared by the service, the simulation kernels, the
// cluster coordinator/workers and the CLIs.
//
// # Metrics
//
// A Registry holds counters, gauges and fixed-bucket histograms,
// optionally split by a single label, and renders them in the
// Prometheus text exposition format (one sample per line, preceded by
// # HELP and # TYPE headers). All constructors have get-or-create
// semantics — calling Counter twice with the same name returns the same
// counter — so packages can declare their metrics in vars without
// coordinating registration order. InfoGauge covers the multi-label
// "info metric" idiom (build_info{version=...,go_version=...} 1).
// Default is the process-wide registry that cmd/cogmimod serves at
// GET /metrics/prom; expvar stays on /metrics for compatibility.
//
// # Logging
//
// Loggers ride on context.Context: WithLogger attaches a *slog.Logger,
// Logger retrieves it (falling back to slog.Default), and WithTraceID /
// TraceID carry a request- or job-scoped trace identifier that the HTTP
// layer generates (or accepts from an X-Trace-Id request header) and
// echoes back in the X-Trace-Id response header. A job inherits the
// trace id of the request that submitted it, so one id follows a
// computation from HTTP arrival through queueing to driver completion.
//
// # Spans and the trace tree
//
// StartSpan(ctx, name) begins a timed stage and returns a context
// carrying the new span; Span.End records the duration into the
// obs_span_duration_seconds{span=name} histogram and emits a debug log
// line. That much always happens and is all that happens by default —
// with no recorder attached a span is a name, a timestamp and one
// histogram observation, and the returned context is the input
// unchanged.
//
// Attach a TraceRecorder (WithRecorder) and spans become structural: a
// 128-bit trace id, a 64-bit span id, a parent link resolved from the
// active span in ctx (or a WithSpanParent link across process and
// queue boundaries, or the ctx trace id), string attributes (SetAttr),
// and point-in-time events (Event — "retry", "hedge_fired",
// "worker_dead", ...). End then also records a SpanData into the
// recorder. RecordSpan is the retroactive form for intervals whose
// start predates the observing code (queue wait); ObserveSpan is its
// duration-only shorthand. Span names become histogram label values —
// keep them to the small fixed vocabulary already in use:
// http.request, job.run, queue.wait, driver.run, cache.lookup,
// cluster.run, cluster.shard, shard.execute, mc.chunk, mc.fold,
// cogsim.run.
//
// # The recorder and cross-node merge
//
// TraceRecorder is a bounded map of trace id → finished spans: oldest
// unpinned trace evicted when the trace bound is hit, per-trace span
// counts capped (overflow is counted, not stored), Pin protecting a
// trace from eviction (slow-job auto-capture pins). Workers run a
// local recorder per shard and ship the finished spans back inside
// cluster.ShardResult; the coordinator Imports them into its own
// recorder, so GET /v1/traces/{id} serves one merged timeline covering
// HTTP arrival → queue wait → scheduling → per-shard execution on each
// worker → fold. WriteChromeTrace renders a merged Trace in the Chrome
// trace_event JSON format, viewable at chrome://tracing or
// ui.perfetto.dev, with one thread lane per worker node.
//
// # Progress
//
// A Progress sink receives AddTotal (expected work) and Add (completed
// work) calls; Tracker is the standard implementation with an atomic
// snapshot of done/total/elapsed. WithProgress / ProgressFrom propagate
// the sink through context — ProgressFrom returns a no-op sink when
// none is attached, so instrumented code never branches. sim.MonteCarlo
// reports completed trials per chunk, experiment drivers report sweep
// points, the service exposes the snapshot on GET /v1/jobs/{id}, and
// StartProgressPrinter renders a live progress line on a terminal.
package obs
