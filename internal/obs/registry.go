package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// DefBuckets are the default histogram boundaries for durations in
// seconds: 1 ms to 1 minute, roughly logarithmic — wide enough for a
// cache hit and a full-resolution Fig. 7 sweep on the same scale.
var DefBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
	1, 2.5, 5, 10, 30, 60,
}

// Counter is a monotonically increasing integer metric.
type Counter struct{ n atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.n.Add(1) }

// Add increases the counter; negative deltas are ignored so the value
// stays monotonic.
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.n.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n.Load() }

// Gauge is a settable float metric.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the gauge value by d.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram accumulates observations into fixed buckets. Buckets use
// Prometheus le semantics: an observation lands in the first bucket
// whose upper bound is >= the value, and the exposition renders
// cumulative counts plus _sum and _count.
type Histogram struct {
	uppers []float64
	mu     sync.Mutex
	counts []uint64 // len(uppers)+1; the last slot is the +Inf overflow
	sum    float64
	count  uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.uppers, v)
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	h.count++
	h.mu.Unlock()
}

// HistogramSnapshot is a consistent copy of a histogram's state.
// Counts are per-bucket (not cumulative) and the final entry is the
// +Inf overflow bucket.
type HistogramSnapshot struct {
	Uppers []float64
	Counts []uint64
	Sum    float64
	Count  uint64
}

// Snapshot copies the histogram state under its lock.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistogramSnapshot{
		Uppers: h.uppers,
		Counts: append([]uint64(nil), h.counts...),
		Sum:    h.sum,
		Count:  h.count,
	}
}

// family is one exposition family: a name, a type, and the series
// under it (one for plain metrics, one per label value for vecs).
type family struct {
	name    string
	help    string
	kind    string // "counter", "gauge" or "histogram"
	label   string // label name; "" for unlabeled families
	buckets []float64
	// composite families key series by a pre-rendered label body
	// (`a="x",b="y"`) instead of a single label value; used by InfoGauge.
	composite bool

	mu     sync.Mutex
	series map[string]*series // keyed by label value; "" for unlabeled
}

type series struct {
	c  *Counter
	g  *Gauge
	fn func() float64 // gauge callback; takes precedence over g
	h  *Histogram
}

// Registry is a set of metric families renderable as Prometheus text.
// The zero value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// Default is the process-wide registry served at /metrics/prom.
var Default = NewRegistry()

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

var (
	nameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// getFamily returns the family for name, creating it on first use, and
// panics when the name is reused with a different shape — that is a
// programming error, not a runtime condition.
func (r *Registry) getFamily(name, help, kind, label string, buckets []float64) *family {
	if !nameRe.MatchString(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	if label != "" && !labelRe.MatchString(label) {
		panic(fmt.Sprintf("obs: invalid label name %q", label))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{
			name: name, help: help, kind: kind, label: label,
			buckets: append([]float64(nil), buckets...),
			series:  make(map[string]*series),
		}
		sort.Float64s(f.buckets)
		r.families[name] = f
		return f
	}
	if f.kind != kind || f.label != label {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s{%s}, was %s{%s}",
			name, kind, label, f.kind, f.label))
	}
	if kind == "histogram" && len(f.buckets) != len(buckets) {
		panic(fmt.Sprintf("obs: histogram %q re-registered with different buckets", name))
	}
	return f
}

// get returns the series for a label value, creating it on first use.
func (f *family) get(value string) *series {
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.series[value]
	if !ok {
		s = &series{}
		switch f.kind {
		case "counter":
			s.c = &Counter{}
		case "gauge":
			s.g = &Gauge{}
		case "histogram":
			s.h = &Histogram{
				uppers: f.buckets,
				counts: make([]uint64, len(f.buckets)+1),
			}
		}
		f.series[value] = s
	}
	return s
}

// Counter returns the counter registered under name, creating it on
// first use.
func (r *Registry) Counter(name, help string) *Counter {
	return r.getFamily(name, help, "counter", "", nil).get("").c
}

// CounterVec is a counter family split by one label.
type CounterVec struct{ fam *family }

// CounterVec returns the labeled counter family under name.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	return &CounterVec{fam: r.getFamily(name, help, "counter", label, nil)}
}

// With returns the counter for one label value.
func (v *CounterVec) With(value string) *Counter { return v.fam.get(value).c }

// Gauge returns the settable gauge registered under name.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.getFamily(name, help, "gauge", "", nil).get("").g
}

// Label is one name/value pair for multi-label metrics (see InfoGauge).
type Label struct {
	Name  string
	Value string
}

// InfoGauge returns a gauge carrying a fixed multi-label identity —
// the Prometheus "info metric" idiom (`build_info{version="...",...} 1`).
// Labels are sorted by name, so call order does not create duplicate
// series. Panics on invalid label names, like every other registrar.
func (r *Registry) InfoGauge(name, help string, labels ...Label) *Gauge {
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var b strings.Builder
	for i, l := range ls {
		if !labelRe.MatchString(l.Name) {
			panic(fmt.Sprintf("obs: invalid label name %q", l.Name))
		}
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	f := r.getFamily(name, help, "gauge", "", nil)
	f.mu.Lock()
	f.composite = true
	f.mu.Unlock()
	return f.get(b.String()).g
}

// GaugeFunc registers a gauge whose value is computed by fn at scrape
// time. Re-registering rebinds the callback (last writer wins), so a
// restarted component can re-point the gauge at its live state.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.getFamily(name, help, "gauge", "", nil)
	s := f.get("")
	f.mu.Lock()
	s.fn = fn
	f.mu.Unlock()
}

// Histogram returns the fixed-bucket histogram registered under name.
// A nil or empty buckets slice selects DefBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	return r.getFamily(name, help, "histogram", "", buckets).get("").h
}

// HistogramVec is a histogram family split by one label.
type HistogramVec struct{ fam *family }

// HistogramVec returns the labeled histogram family under name.
func (r *Registry) HistogramVec(name, help, label string, buckets []float64) *HistogramVec {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	return &HistogramVec{fam: r.getFamily(name, help, "histogram", label, buckets)}
}

// With returns the histogram for one label value.
func (v *HistogramVec) With(value string) *Histogram { return v.fam.get(value).h }

// WritePrometheus renders every family in the Prometheus text
// exposition format (version 0.0.4), families sorted by name and
// series by label value.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		f.write(w)
	}
}

func (f *family) write(w io.Writer) {
	f.mu.Lock()
	values := make([]string, 0, len(f.series))
	for v := range f.series {
		values = append(values, v)
	}
	sort.Strings(values)
	// Snapshot everything under the family lock so one scrape is
	// internally consistent per family.
	type snap struct {
		value string
		num   float64
		isInt bool
		hist  HistogramSnapshot
	}
	composite := f.composite
	snaps := make([]snap, 0, len(values))
	for _, v := range values {
		s := f.series[v]
		sn := snap{value: v}
		switch f.kind {
		case "counter":
			sn.num, sn.isInt = float64(s.c.Value()), true
		case "gauge":
			if s.fn != nil {
				sn.num = s.fn()
			} else {
				sn.num = s.g.Value()
			}
		case "histogram":
			sn.hist = s.h.Snapshot()
		}
		snaps = append(snaps, sn)
	}
	f.mu.Unlock()

	if f.help != "" {
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	}
	fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind)
	for _, sn := range snaps {
		labels := labelPair(f.label, sn.value)
		if composite && sn.value != "" {
			labels = "{" + sn.value + "}" // pre-rendered, already escaped
		}
		switch f.kind {
		case "counter", "gauge":
			if sn.isInt {
				fmt.Fprintf(w, "%s%s %d\n", f.name, labels, int64(sn.num))
			} else {
				fmt.Fprintf(w, "%s%s %s\n", f.name, labels, formatFloat(sn.num))
			}
		case "histogram":
			var cum uint64
			for i, upper := range sn.hist.Uppers {
				cum += sn.hist.Counts[i]
				fmt.Fprintf(w, "%s_bucket%s %d\n",
					f.name, bucketLabels(f.label, sn.value, formatFloat(upper)), cum)
			}
			cum += sn.hist.Counts[len(sn.hist.Uppers)]
			fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, bucketLabels(f.label, sn.value, "+Inf"), cum)
			fmt.Fprintf(w, "%s_sum%s %s\n", f.name, labelPair(f.label, sn.value), formatFloat(sn.hist.Sum))
			fmt.Fprintf(w, "%s_count%s %d\n", f.name, labelPair(f.label, sn.value), sn.hist.Count)
		}
	}
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func labelPair(label, value string) string {
	if label == "" {
		return ""
	}
	return "{" + label + `="` + escapeLabel(value) + `"}`
}

func bucketLabels(label, value, le string) string {
	if label == "" {
		return `{le="` + le + `"}`
	}
	return "{" + label + `="` + escapeLabel(value) + `",le="` + le + `"}`
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeLabel(s string) string { return labelEscaper.Replace(s) }

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeHelp(s string) string { return helpEscaper.Replace(s) }

// Handler serves the registry in the text exposition format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}
