package adaptive

import (
	"math"
	"math/rand"
	"testing"
)

// sampleBinomial draws Binomial(n, p) by geometric-gap inversion: the
// number of failures before each success is Geometric(p), so only the
// successes cost work. At p = 1e-6 and n = 5e7 a draw touches ~50
// random numbers instead of fifty million — what makes deep-tail
// coverage testing affordable.
func sampleBinomial(rng *rand.Rand, n int64, p float64) int64 {
	lnq := math.Log1p(-p)
	var k, pos int64
	for {
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		gap := int64(math.Ceil(math.Log(u) / lnq))
		if gap < 1 {
			gap = 1
		}
		pos += gap
		if pos > n {
			return k
		}
		k++
	}
}

// coverage estimates the empirical coverage of an interval constructor
// over reps binomial draws at true rate p.
func coverage(t *testing.T, p float64, n int64, interval func(k, n int64) (float64, float64)) float64 {
	t.Helper()
	rng := rand.New(rand.NewSource(20260808))
	const reps = 2000
	hits := 0
	for i := 0; i < reps; i++ {
		k := sampleBinomial(rng, n, p)
		lo, hi := interval(k, n)
		if lo <= p && p <= hi {
			hits++
		}
	}
	return float64(hits) / reps
}

// TestWilsonCoverage is the statistical contract behind the stopping
// rule: the Wilson 95% interval must keep near-nominal coverage at the
// rates deep-BER points live at, from 1e-2 down to 1e-6. Sample sizes
// put ~50 expected errors in each draw — the regime the rule stops in
// (wilsonMinErrors keeps it from stopping earlier).
func TestWilsonCoverage(t *testing.T) {
	for _, tc := range []struct {
		p float64
		n int64
	}{
		{1e-2, 5_000},
		{1e-4, 500_000},
		{1e-6, 50_000_000},
	} {
		cov := coverage(t, tc.p, tc.n, func(k, n int64) (float64, float64) {
			return Wilson(float64(k), float64(n), Z95)
		})
		// Nominal 0.95; allow discreteness and Monte-Carlo noise
		// (se ≈ 0.005 at 2000 reps) but fail on real undercoverage.
		if cov < 0.92 {
			t.Errorf("Wilson coverage at p=%g: %.3f < 0.92", tc.p, cov)
		}
	}
}

// TestClopperPearsonCoverage: the exact interval is conservative by
// construction — empirical coverage must sit at or above nominal, at
// every tail depth.
func TestClopperPearsonCoverage(t *testing.T) {
	for _, tc := range []struct {
		p float64
		n int64
	}{
		{1e-2, 5_000},
		{1e-4, 500_000},
		{1e-6, 50_000_000},
	} {
		cov := coverage(t, tc.p, tc.n, func(k, n int64) (float64, float64) {
			return ClopperPearson(k, n, 0.05)
		})
		if cov < 0.94 {
			t.Errorf("Clopper-Pearson coverage at p=%g: %.3f < 0.94", tc.p, cov)
		}
	}
}

// TestWilsonAgainstClopperPearson: across the operating range the two
// intervals must agree closely — Wilson is the cheap runtime stand-in
// for the exact interval, and this pins how much it can disagree.
func TestWilsonAgainstClopperPearson(t *testing.T) {
	for _, tc := range []struct {
		k, n int64
	}{
		{5, 1000}, {50, 5000}, {50, 500000}, {47, 50000000}, {500, 10000},
	} {
		wlo, whi := Wilson(float64(tc.k), float64(tc.n), Z95)
		clo, chi := ClopperPearson(tc.k, tc.n, 0.05)
		// Exact interval contains ~the Wilson one; widths within 35%.
		ww, cw := whi-wlo, chi-clo
		if ww <= 0 || cw <= 0 {
			t.Fatalf("k=%d n=%d: degenerate widths %g %g", tc.k, tc.n, ww, cw)
		}
		if r := cw / ww; r < 0.8 || r > 1.35 {
			t.Errorf("k=%d n=%d: CP/Wilson width ratio %.3f outside [0.8, 1.35]", tc.k, tc.n, r)
		}
	}
}

func TestWilsonEdges(t *testing.T) {
	if lo, hi := Wilson(0, 0, Z95); lo != 0 || hi != 1 {
		t.Errorf("Wilson(0,0) = [%g, %g], want [0, 1]", lo, hi)
	}
	// At k=0 the closed form's center and half-width agree to rounding;
	// lo must collapse to ~0 and hi stay a useful upper bound.
	if lo, hi := Wilson(0, 100, Z95); lo > 1e-15 || hi <= 0 || hi >= 1 {
		t.Errorf("Wilson(0,100) = [%g, %g]", lo, hi)
	}
	if lo, hi := Wilson(100, 100, Z95); hi < 1-1e-15 || lo <= 0 {
		t.Errorf("Wilson(100,100) = [%g, %g]", lo, hi)
	}
}

func TestClopperPearsonEdges(t *testing.T) {
	if lo, hi := ClopperPearson(0, 0, 0.05); lo != 0 || hi != 1 {
		t.Errorf("CP(0,0) = [%g, %g], want [0, 1]", lo, hi)
	}
	lo, hi := ClopperPearson(0, 100, 0.05)
	if lo != 0 {
		t.Errorf("CP(0,100) lo = %g, want 0", lo)
	}
	// The rule-of-three upper bound: ~3/n at k=0, alpha/2 tail exact
	// value is 1-(alpha/2)^(1/n).
	want := 1 - math.Pow(0.025, 1.0/100)
	if math.Abs(hi-want) > 1e-9 {
		t.Errorf("CP(0,100) hi = %g, want %g", hi, want)
	}
	lo, hi = ClopperPearson(100, 100, 0.05)
	if hi != 1 {
		t.Errorf("CP(100,100) hi = %g, want 1", hi)
	}
	if want := math.Pow(0.025, 1.0/100); math.Abs(lo-want) > 1e-9 {
		t.Errorf("CP(100,100) lo = %g, want %g", lo, want)
	}
}

// TestRegIncBeta pins the special function against closed forms:
// I_x(1, b) = 1-(1-x)^b and I_x(a, 1) = x^a, plus symmetry.
func TestRegIncBeta(t *testing.T) {
	for _, x := range []float64{0.01, 0.3, 0.7, 0.99} {
		for _, b := range []float64{1, 2.5, 10} {
			got := regIncBeta(1, b, x)
			want := 1 - math.Pow(1-x, b)
			if math.Abs(got-want) > 1e-12 {
				t.Errorf("I_%g(1, %g) = %g, want %g", x, b, got, want)
			}
			got = regIncBeta(b, 1, x)
			want = math.Pow(x, b)
			if math.Abs(got-want) > 1e-12 {
				t.Errorf("I_%g(%g, 1) = %g, want %g", x, b, got, want)
			}
		}
		if got, want := regIncBeta(3, 7, x)+regIncBeta(7, 3, 1-x), 1.0; math.Abs(got-want) > 1e-12 {
			t.Errorf("symmetry at x=%g: %g", x, got)
		}
	}
}
