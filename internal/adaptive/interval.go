package adaptive

import "math"

// Z95 is the two-sided 95% normal quantile, the same constant
// mathx.Running.CI95 uses, so CLT stopping and report error bars agree
// bit-for-bit.
const Z95 = 1.959963984540054

// z95 is the package-internal alias.
const z95 = Z95

// Wilson returns the Wilson score interval for k successes in n
// Bernoulli units at confidence level z (normal quantile). Unlike the
// Wald interval it stays inside [0, 1] and keeps near-nominal coverage
// at the tiny rates deep-BER points live at, which is why the stopping
// rules use it as the cheap closed-form check.
func Wilson(k, n, z float64) (lo, hi float64) {
	if n <= 0 {
		return 0, 1
	}
	p := k / n
	z2 := z * z
	denom := 1 + z2/n
	center := (p + z2/(2*n)) / denom
	half := z / denom * math.Sqrt(p*(1-p)/n+z2/(4*n*n))
	lo = center - half
	hi = center + half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// ClopperPearson returns the exact (conservative) binomial interval for
// k successes in n units at significance alpha, via Beta-distribution
// quantiles. It is the reference interval the statistical-contract
// tests check Wilson against; runtime stopping prefers Wilson because
// the continued fraction below costs ~100x a closed form.
func ClopperPearson(k, n int64, alpha float64) (lo, hi float64) {
	if n <= 0 {
		return 0, 1
	}
	if k > 0 {
		lo = betaInv(alpha/2, float64(k), float64(n-k+1))
	}
	hi = 1
	if k < n {
		hi = betaInv(1-alpha/2, float64(k+1), float64(n-k))
	}
	return lo, hi
}

// regIncBeta computes the regularized incomplete beta function
// I_x(a, b) by Lentz's continued fraction, switching to the symmetry
// I_x(a,b) = 1 - I_{1-x}(b,a) where the fraction converges faster.
func regIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	lga, _ := math.Lgamma(a)
	lgb, _ := math.Lgamma(b)
	lgab, _ := math.Lgamma(a + b)
	front := math.Exp(lgab - lga - lgb + a*math.Log(x) + b*math.Log1p(-x))
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

// betaCF evaluates the continued fraction of the incomplete beta
// function (modified Lentz), valid for x < (a+1)/(a+b+2).
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-16
		tiny    = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < tiny {
		d = tiny
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		// Even step.
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		h *= d * c
		// Odd step.
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// betaInv inverts the regularized incomplete beta function: the p-th
// quantile of Beta(a, b), found by bisection. Monotonicity of I_x makes
// bisection unconditionally safe; ~60 halvings reach full float64
// resolution on [0, 1].
func betaInv(p, a, b float64) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return 1
	}
	lo, hi := 0.0, 1.0
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if mid == lo || mid == hi {
			break
		}
		if regIncBeta(a, b, mid) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}
