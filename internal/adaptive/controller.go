package adaptive

import (
	"context"
	"fmt"

	"repro/internal/sim"
)

// Run executes a registered kernel under an adaptive budget: the
// kernel-appropriate stopping rule (RuleFor) is evaluated at chunk
// boundaries and the run ends at the first round that meets the CI
// target, or at MaxTrials. The returned result carries the realized
// sim.PlanTrace; handing that trace to Replay reproduces the result
// bit-identically, locally or across a cluster.
func Run(ctx context.Context, mc sim.MonteCarlo, kernel string, params map[string]float64, b Budget) (sim.AdaptiveResult, error) {
	if err := b.Validate(); err != nil {
		return sim.AdaptiveResult{}, err
	}
	if !b.Enabled() {
		return sim.AdaptiveResult{}, fmt.Errorf("adaptive: budget is disabled (target %g, max %d)", b.TargetRelCI, b.MaxTrials)
	}
	return mc.RunAdaptiveCtx(ctx, kernel, params, b.MaxTrials, b.RuleFor(kernel, params))
}

// Replay re-executes a recorded plan trace with no stopping-rule
// evaluation. The MonteCarlo seed, kernel and params must be the ones
// the trace was recorded under.
func Replay(ctx context.Context, mc sim.MonteCarlo, kernel string, params map[string]float64, trace sim.PlanTrace) (sim.AdaptiveResult, error) {
	return mc.RunTraceCtx(ctx, kernel, params, trace)
}
