package adaptive

import (
	"math/rand"
	"testing"

	"repro/internal/mathx"
	"repro/internal/sim"
)

func init() {
	// Test kernels for this package's contract tests. atest.bernoulli
	// emits per-trial error rates over "units" Bernoulli draws at rate
	// "p" — a miniature BER kernel; atest.mean emits Uniform(0, 2*"mu").
	sim.RegisterKernelCaps("atest.bernoulli", func(params map[string]float64) (sim.BatchFunc, error) {
		p := params["p"]
		units := int(params["units"])
		if units <= 0 {
			units = 16
		}
		return func(rng *rand.Rand, n int) mathx.Running {
			var acc mathx.Running
			for i := 0; i < n; i++ {
				errs := 0
				for u := 0; u < units; u++ {
					if rng.Float64() < p {
						errs++
					}
				}
				acc.Add(float64(errs) / float64(units))
			}
			return acc
		}, nil
	}, sim.KernelCaps{Batch: true, Adaptive: true, BernoulliUnits: func(params map[string]float64) float64 {
		if u := params["units"]; u > 0 {
			return u
		}
		return 16
	}})
	sim.RegisterKernelCaps("atest.mean", func(params map[string]float64) (sim.BatchFunc, error) {
		mu := params["mu"]
		return func(rng *rand.Rand, n int) mathx.Running {
			var acc mathx.Running
			for i := 0; i < n; i++ {
				acc.Add(2 * mu * rng.Float64())
			}
			return acc
		}, nil
	}, sim.KernelCaps{Batch: true, Adaptive: true})
}

func TestBudgetValidate(t *testing.T) {
	for _, tc := range []struct {
		b  Budget
		ok bool
	}{
		{Budget{}, true}, // disabled is fine
		{Budget{TargetRelCI: 0.05, MaxTrials: 1000}, true},
		{Budget{TargetRelCI: 1.5, MaxTrials: 1000}, false},
		{Budget{TargetRelCI: 0.05, MaxTrials: 100, MinTrials: 200}, false},
	} {
		err := tc.b.Validate()
		if (err == nil) != tc.ok {
			t.Errorf("Validate(%+v) = %v, want ok=%v", tc.b, err, tc.ok)
		}
	}
	if (Budget{TargetRelCI: 0.05}).Enabled() {
		t.Error("budget without MaxTrials reports enabled")
	}
	if (Budget{MaxTrials: 100}).Enabled() {
		t.Error("budget without TargetRelCI reports enabled")
	}
}

// TestRuleForSelection: Bernoulli-capable kernels get the Wilson rule
// with the kernel's own units; everything else gets CLT.
func TestRuleForSelection(t *testing.T) {
	b := Budget{TargetRelCI: 0.1, MaxTrials: 10000, MinTrials: 128}
	r := b.RuleFor("atest.bernoulli", map[string]float64{"units": 64})
	w, ok := r.(WilsonRule)
	if !ok {
		t.Fatalf("RuleFor(bernoulli kernel) = %T, want WilsonRule", r)
	}
	if w.UnitsPerTrial != 64 || w.Target != 0.1 || w.MinTrials != 128 {
		t.Fatalf("WilsonRule misconfigured: %+v", w)
	}
	if _, ok := b.RuleFor("atest.mean", nil).(CLTRule); !ok {
		t.Fatal("RuleFor(mean kernel) not a CLTRule")
	}
	if _, ok := b.RuleFor("no.such.kernel", nil).(CLTRule); !ok {
		t.Fatal("RuleFor(unknown kernel) should fall back to CLT")
	}
	if (Budget{}).RuleFor("atest.mean", nil) != nil {
		t.Fatal("disabled budget should compile to a nil rule")
	}
}

func TestCLTRuleFloors(t *testing.T) {
	r := CLTRule{Target: 0.5}
	var tight mathx.Running
	for i := 0; i < cltMinTrials-1; i++ {
		tight.Add(1.0) // zero variance: would stop instantly if allowed
	}
	if r.Done(tight) {
		t.Fatal("CLT rule stopped below the absolute trial floor")
	}
	tight.Add(1.0)
	if !r.Done(tight) {
		t.Fatal("CLT rule refused a zero-variance prefix at the floor")
	}
	var zero mathx.Running
	for i := 0; i < 2*cltMinTrials; i++ {
		zero.Add(0)
	}
	if r.Done(zero) {
		t.Fatal("CLT rule certified a zero mean")
	}
}

func TestWilsonRuleFloors(t *testing.T) {
	r := WilsonRule{Target: 0.5, UnitsPerTrial: 100}
	// 4 errors over 10000 units: below wilsonMinErrors, must not stop
	// however tight the interval looks.
	var few mathx.Running
	for i := 0; i < 100; i++ {
		x := 0.0
		if i == 0 {
			x = 0.04 // the only errored trial: 4 of its 100 units
		}
		few.Add(x)
	}
	if r.Done(few) {
		t.Fatal("Wilson rule stopped with fewer than wilsonMinErrors errors")
	}
	// Plenty of errors at a loose target: stops.
	var many mathx.Running
	for i := 0; i < 1000; i++ {
		many.Add(0.1)
	}
	if !r.Done(many) {
		t.Fatal("Wilson rule refused 10000 errors in 100000 units at ±50%")
	}
	if r.Done(mathx.Running{}) {
		t.Fatal("Wilson rule stopped an empty prefix")
	}
}
