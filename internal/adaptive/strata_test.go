package adaptive

import (
	"context"
	"math"
	"testing"

	"repro/internal/sim"
)

func testStrata() []Stratum {
	// A miniature operating distribution: most mass on an easy cell,
	// a light tail cell with a 50x rarer error rate.
	return []Stratum{
		{Name: "easy", Params: map[string]float64{"p": 0.05, "units": 16}, Weight: 0.7},
		{Name: "mid", Params: map[string]float64{"p": 0.01, "units": 16}, Weight: 0.2},
		{Name: "tail", Params: map[string]float64{"p": 0.001, "units": 16}, Weight: 0.1},
	}
}

// trueMixtureMean is the analytic estimand of testStrata: each
// stratum's per-trial mean is exactly its p, so the mixture mean is
// the weight-normalized Σ w_s·p_s.
func trueMixtureMean(strata []Stratum) float64 {
	var num, den float64
	for _, s := range strata {
		num += s.Weight * s.Params["p"]
		den += s.Weight
	}
	return num / den
}

// TestStratifiedUnbiased is the A/B estimator test behind the Neyman
// tier: however the adaptive allocation skews trials toward
// high-variance strata, the reweighted estimator must stay unbiased.
// A = the stratified adaptive estimate; B = a fixed proportional
// estimate of the same mixture; both must agree with the analytic
// truth within their own (generous) confidence bands.
func TestStratifiedUnbiased(t *testing.T) {
	strata := testStrata()
	truth := trueMixtureMean(strata)
	b := Budget{TargetRelCI: 0.02, MaxTrials: 128 * sim.ChunkSize}

	resA, err := RunStratified(context.Background(), sim.MonteCarlo{Seed: 11}, "atest.bernoulli", strata, b)
	if err != nil {
		t.Fatal(err)
	}
	if diff := math.Abs(resA.Mean - truth); diff > 5*resA.StdErr {
		t.Fatalf("stratified estimate %g vs truth %g: off by %.1f standard errors",
			resA.Mean, truth, diff/resA.StdErr)
	}

	// B: fixed proportional allocation, same total spend, combined with
	// the same weight fold — the textbook unbiased baseline.
	var meanB, varB, wsum float64
	for _, s := range strata {
		wsum += s.Weight
	}
	for i, s := range strata {
		n := resA.Trials / len(strata)
		stats, err := sim.MonteCarlo{Seed: 1000 + int64(i)}.RunKernelCtx(
			context.Background(), "atest.bernoulli", s.Params, n)
		if err != nil {
			t.Fatal(err)
		}
		w := s.Weight / wsum
		meanB += w * stats.Mean()
		varB += w * w * stats.Variance() / float64(stats.N())
	}
	if diff, band := math.Abs(resA.Mean-meanB), 5*math.Sqrt(resA.StdErr*resA.StdErr+varB); diff > band {
		t.Fatalf("A/B estimators disagree: stratified %g vs proportional %g (band %g)", resA.Mean, meanB, band)
	}
}

// TestStratifiedTailAware: with equal weights, the high-variance
// stratum must receive more chunks than the near-deterministic one —
// the whole point of Neyman allocation.
func TestStratifiedTailAware(t *testing.T) {
	strata := []Stratum{
		{Name: "noisy", Params: map[string]float64{"p": 0.5, "units": 1}, Weight: 1},
		{Name: "quiet", Params: map[string]float64{"p": 0.5, "units": 4096}, Weight: 1},
	}
	b := Budget{TargetRelCI: 0.01, MaxTrials: 64 * sim.ChunkSize}
	res, err := RunStratified(context.Background(), sim.MonteCarlo{Seed: 2}, "atest.bernoulli", strata, b)
	if err != nil {
		t.Fatal(err)
	}
	var noisy, quiet int
	for _, s := range res.PerStratum {
		switch s.Name {
		case "noisy":
			noisy = s.Chunks
		case "quiet":
			quiet = s.Chunks
		}
	}
	if noisy <= quiet {
		t.Fatalf("allocation not tail-aware: noisy stratum got %d chunks, quiet got %d", noisy, quiet)
	}
}

// TestStratifiedReplayIdentity: the recorded trace reproduces the
// stratified result bit for bit, including per-stratum statistics, at a
// different worker count.
func TestStratifiedReplayIdentity(t *testing.T) {
	strata := testStrata()
	b := Budget{TargetRelCI: 0.05, MaxTrials: 32 * sim.ChunkSize}
	res, err := RunStratified(context.Background(), sim.MonteCarlo{Seed: 17}, "atest.bernoulli", strata, b)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Trace.Validate(); err != nil {
		t.Fatalf("stratified trace invalid: %v", err)
	}
	rep, err := ReplayStratified(context.Background(), sim.MonteCarlo{Seed: 17, Workers: 3}, "atest.bernoulli", strata, res.Trace)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mean != res.Mean || rep.StdErr != res.StdErr || rep.Trials != res.Trials {
		t.Fatalf("replay (%g ± %g, %d) != original (%g ± %g, %d)",
			rep.Mean, rep.StdErr, rep.Trials, res.Mean, res.StdErr, res.Trials)
	}
	for i := range res.PerStratum {
		if rep.PerStratum[i].Stats.Snapshot() != res.PerStratum[i].Stats.Snapshot() {
			t.Fatalf("stratum %q stats diverged on replay", res.PerStratum[i].Name)
		}
	}
	// Replay refuses mismatched strata.
	if _, err := ReplayStratified(context.Background(), sim.MonteCarlo{Seed: 17}, "atest.bernoulli", strata[:2], res.Trace); err == nil {
		t.Fatal("stratum count mismatch accepted")
	}
	renamed := append([]Stratum(nil), strata...)
	renamed[0].Name = "other"
	if _, err := ReplayStratified(context.Background(), sim.MonteCarlo{Seed: 17}, "atest.bernoulli", renamed, res.Trace); err == nil {
		t.Fatal("stratum name mismatch accepted")
	}
}

// TestNeymanAllocDeterministic: apportionment is exact, exhaustive and
// index-stable under ties.
func TestNeymanAllocDeterministic(t *testing.T) {
	mk := func(vals ...float64) stratRun {
		var r stratRun
		r.weight = 1
		for _, v := range vals {
			r.stats.Add(v)
		}
		return r
	}
	runs := []stratRun{
		mk(0, 1, 0, 1, 0, 1), // sd ~0.55
		mk(1, 1, 1, 1, 1, 1), // sd 0 -> floored
		mk(0, 2, 0, 2, 0, 2), // sd ~1.1
	}
	alloc := neymanAlloc(runs, 10)
	sum := 0
	for _, a := range alloc {
		sum += a
	}
	if sum != 10 {
		t.Fatalf("allocation %v does not exhaust the round", alloc)
	}
	if alloc[2] <= alloc[1] || alloc[0] <= alloc[1] {
		t.Fatalf("allocation %v ignores variance ordering", alloc)
	}
	for i := 0; i < 5; i++ {
		again := neymanAlloc(runs, 10)
		for j := range alloc {
			if again[j] != alloc[j] {
				t.Fatalf("allocation not deterministic: %v vs %v", alloc, again)
			}
		}
	}
	// All-zero variance: uniform exploration.
	flat := []stratRun{mk(1, 1), mk(1, 1), mk(1, 1), mk(1, 1)}
	if got := neymanAlloc(flat, 8); got[0] != 2 || got[1] != 2 || got[2] != 2 || got[3] != 2 {
		t.Fatalf("zero-variance allocation %v not uniform", got)
	}
}

// TestStratifiedRejects: input validation before any chunk runs.
func TestStratifiedRejects(t *testing.T) {
	mc := sim.MonteCarlo{Seed: 1}
	ctx := context.Background()
	if _, err := RunStratified(ctx, mc, "atest.bernoulli", nil, Budget{TargetRelCI: 0.1, MaxTrials: 4 * sim.ChunkSize}); err == nil {
		t.Fatal("no strata accepted")
	}
	bad := []Stratum{{Name: "x", Weight: -1}}
	if _, err := RunStratified(ctx, mc, "atest.bernoulli", bad, Budget{TargetRelCI: 0.1, MaxTrials: 4 * sim.ChunkSize}); err == nil {
		t.Fatal("negative weight accepted")
	}
	three := testStrata()
	if _, err := RunStratified(ctx, mc, "atest.bernoulli", three, Budget{TargetRelCI: 0.1, MaxTrials: 2 * sim.ChunkSize}); err == nil {
		t.Fatal("budget smaller than the pilot accepted")
	}
	if _, err := RunStratified(ctx, mc, "atest.bernoulli", three, Budget{}); err == nil {
		t.Fatal("disabled budget accepted")
	}
}
