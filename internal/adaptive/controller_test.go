package adaptive

import (
	"context"
	"encoding/json"
	"math/rand"
	"testing"

	"repro/internal/sim"
)

// TestRunMeetsTarget: an adaptive run that stops must actually satisfy
// the budget's relative-CI contract on its own statistics.
func TestRunMeetsTarget(t *testing.T) {
	mc := sim.MonteCarlo{Seed: 3}
	b := Budget{TargetRelCI: 0.05, MaxTrials: 256 * sim.ChunkSize}
	res, err := Run(context.Background(), mc, "atest.mean", map[string]float64{"mu": 1}, b)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Trace.Stopped {
		t.Fatalf("uniform mean never met ±5%% in %d trials", b.MaxTrials)
	}
	if ci, m := res.Stats.CI95(), res.Stats.Mean(); ci > b.TargetRelCI*m {
		t.Fatalf("stopped with CI %g > %g (mean %g)", ci, b.TargetRelCI*m, m)
	}
	if res.Trace.Saved() <= 0 {
		t.Fatal("easy estimate saved no budget")
	}
}

func TestRunRejectsBadBudgets(t *testing.T) {
	mc := sim.MonteCarlo{Seed: 1}
	if _, err := Run(context.Background(), mc, "atest.mean", nil, Budget{}); err == nil {
		t.Fatal("disabled budget accepted")
	}
	if _, err := Run(context.Background(), mc, "atest.mean", nil, Budget{TargetRelCI: 2, MaxTrials: 100}); err == nil {
		t.Fatal("target >= 1 accepted")
	}
}

// TestReplayFuzz is the replay contract under fire: random seeds,
// budgets, targets and kernels; every recorded trace must replay to
// statistics and JSON-encoded traces that are byte-identical to the
// recording run, at any worker count.
func TestReplayFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(808))
	kernels := []struct {
		name   string
		params func() map[string]float64
	}{
		{"atest.mean", func() map[string]float64 {
			return map[string]float64{"mu": 0.5 + rng.Float64()}
		}},
		{"atest.bernoulli", func() map[string]float64 {
			return map[string]float64{"p": 0.001 + 0.05*rng.Float64(), "units": float64(int(8) << rng.Intn(3))}
		}},
	}
	for i := 0; i < 25; i++ {
		k := kernels[rng.Intn(len(kernels))]
		params := k.params()
		mc := sim.MonteCarlo{Seed: rng.Int63(), Workers: rng.Intn(4)}
		b := Budget{
			TargetRelCI: 0.02 + 0.3*rng.Float64(),
			MaxTrials:   (1 + rng.Intn(32)) * sim.ChunkSize / (1 + rng.Intn(2)),
		}
		res, err := Run(context.Background(), mc, k.name, params, b)
		if err != nil {
			t.Fatalf("case %d (%s %v %+v): %v", i, k.name, params, b, err)
		}
		if err := res.Trace.Validate(); err != nil {
			t.Fatalf("case %d: recorded trace invalid: %v", i, err)
		}
		// The trace round-trips through its persistence encoding.
		enc, err := json.Marshal(res.Trace)
		if err != nil {
			t.Fatal(err)
		}
		var decoded sim.PlanTrace
		if err := json.Unmarshal(enc, &decoded); err != nil {
			t.Fatal(err)
		}
		replayMC := sim.MonteCarlo{Seed: mc.Seed, Workers: rng.Intn(4)}
		rep, err := Replay(context.Background(), replayMC, k.name, params, decoded)
		if err != nil {
			t.Fatalf("case %d: replay: %v", i, err)
		}
		if rep.Stats.Snapshot() != res.Stats.Snapshot() {
			t.Fatalf("case %d (%s seed %d): replay %+v != original %+v",
				i, k.name, mc.Seed, rep.Stats.Snapshot(), res.Stats.Snapshot())
		}
		enc2, err := json.Marshal(rep.Trace)
		if err != nil {
			t.Fatal(err)
		}
		if string(enc) != string(enc2) {
			t.Fatalf("case %d: trace encoding changed across replay:\n%s\n%s", i, enc, enc2)
		}
	}
}

// TestReplayRefusesForeignTrace: validation failures surface before any
// chunk runs.
func TestReplayRefusesForeignTrace(t *testing.T) {
	mc := sim.MonteCarlo{Seed: 1}
	bad := sim.PlanTrace{ChunkSize: sim.ChunkSize + 1, MaxTrials: sim.ChunkSize, Trials: sim.ChunkSize, Rounds: []int{1}}
	if _, err := Replay(context.Background(), mc, "atest.mean", nil, bad); err == nil {
		t.Fatal("foreign chunk size accepted")
	}
}
