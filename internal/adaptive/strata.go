package adaptive

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strconv"

	"repro/internal/mathx"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Stratum is one cell of a stratified run: a parameter point with its
// population weight (e.g. the probability mass an SNR cell carries in
// the operating distribution). Weights need not be normalized; the
// estimator normalizes them, which is exactly what keeps it unbiased
// under any realized allocation.
type Stratum struct {
	Name   string
	Params map[string]float64
	Weight float64
}

// StratumStats is the realized outcome of one stratum.
type StratumStats struct {
	Name   string
	Stats  mathx.Running
	Chunks int
}

// StratifiedResult is the combined estimate of a stratified adaptive
// run plus everything needed to audit and replay it.
type StratifiedResult struct {
	// Mean is the weight-combined estimate Σ w_s·mean_s.
	Mean float64
	// StdErr is the standard error of Mean: sqrt(Σ w_s²·var_s/n_s).
	StdErr float64
	// Trials is the realized total spend across strata.
	Trials int
	// PerStratum holds each stratum's own statistics, in stratum order.
	PerStratum []StratumStats
	// Trace is the realized plan: Rounds carries cumulative total chunks
	// per stopping round, Strata the final per-stratum chunk counts.
	Trace sim.PlanTrace
}

// CI95 returns the 95% half-width of the combined estimate.
func (r *StratifiedResult) CI95() float64 { return z95 * r.StdErr }

// stratRun is the per-stratum execution state of one stratified run.
type stratRun struct {
	name   string
	run    sim.KernelRun
	mc     sim.MonteCarlo
	stats  mathx.Running
	chunks int
	weight float64 // normalized
}

// RunStratified splits an adaptive budget across strata with
// tail-aware allocation: every stratum gets one pilot chunk, then each
// round's chunks go where w_s·σ_s is largest (Neyman allocation), so
// high-variance and rare-error cells — the deep tail — soak up budget
// that low-variance cells would waste. Stopping follows the budget's
// relative-CI target on the combined estimate.
//
// Determinism: stratum s draws from the s-th seed derived from
// mc.Seed, allocation is a pure function of prefix statistics with
// index-order tie-breaks, and the realized per-stratum chunk counts are
// recorded in the returned trace — ReplayStratified reproduces the
// result bit-identically from them.
func RunStratified(ctx context.Context, mc sim.MonteCarlo, kernel string, strata []Stratum, b Budget) (*StratifiedResult, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	if !b.Enabled() {
		return nil, fmt.Errorf("adaptive: stratified run needs an enabled budget")
	}
	runs, err := newStratRuns(mc, kernel, strata, b.MaxTrials)
	if err != nil {
		return nil, err
	}
	budgetChunks := sim.Plan{Trials: b.MaxTrials}.Chunks()
	if budgetChunks < len(runs) {
		return nil, fmt.Errorf("adaptive: budget of %d chunks cannot pilot %d strata", budgetChunks, len(runs))
	}

	ctx, span := obs.StartSpan(ctx, "mc.adaptive.stratified")
	span.SetAttr("kernel", kernel).SetAttr("strata", strconv.Itoa(len(runs)))
	defer span.End()

	progress := obs.ProgressFrom(ctx)
	progress.AddTotal(int64(b.MaxTrials))

	trace := sim.PlanTrace{ChunkSize: sim.ChunkSize, MaxTrials: b.MaxTrials}
	total := 0

	// Pilot round: one chunk per stratum, so every variance estimate
	// exists before any allocation decision.
	alloc := make([]int, len(runs))
	for s := range runs {
		alloc[s] = 1
	}
	for {
		for s := range runs {
			if alloc[s] == 0 {
				continue
			}
			if err := runs[s].extend(ctx, alloc[s]); err != nil {
				return nil, err
			}
			total += alloc[s]
		}
		trace.Rounds = append(trace.Rounds, total)

		mean, se := combine(runs)
		if stopStratified(runs, mean, se, b) {
			trace.Stopped = true
			break
		}
		if total >= budgetChunks {
			break
		}
		// Next round doubles the spend (like the flat adaptive
		// schedule), capped at the remaining budget, and lands it by
		// Neyman shares.
		round := total
		if round > budgetChunks-total {
			round = budgetChunks - total
		}
		alloc = neymanAlloc(runs, round)
	}

	res := finishStratified(runs, trace)
	// Shrink the advertised total to the realized spend, same contract
	// as the flat adaptive driver: done never exceeds total.
	if saved := res.Trace.Saved(); saved > 0 {
		progress.AddTotal(-int64(saved))
	}
	span.SetAttr("trials", strconv.Itoa(res.Trials))
	return res, nil
}

// ReplayStratified re-executes a stratified trace: each stratum runs
// exactly its recorded chunk count, in one round, and the combination
// is the same weight fold — bit-identical to the adaptive run that
// recorded the trace.
func ReplayStratified(ctx context.Context, mc sim.MonteCarlo, kernel string, strata []Stratum, trace sim.PlanTrace) (*StratifiedResult, error) {
	if err := trace.Validate(); err != nil {
		return nil, err
	}
	if len(trace.Strata) != len(strata) {
		return nil, fmt.Errorf("adaptive: trace has %d strata, caller gave %d", len(trace.Strata), len(strata))
	}
	runs, err := newStratRuns(mc, kernel, strata, trace.MaxTrials)
	if err != nil {
		return nil, err
	}
	progress := obs.ProgressFrom(ctx)
	progress.AddTotal(int64(trace.Trials))
	for s := range runs {
		rec := trace.Strata[s]
		if rec.Name != strata[s].Name {
			return nil, fmt.Errorf("adaptive: trace stratum %d is %q, caller gave %q", s, rec.Name, strata[s].Name)
		}
		if err := runs[s].extend(ctx, rec.Chunks); err != nil {
			return nil, err
		}
	}
	return finishStratified(runs, trace), nil
}

// newStratRuns validates strata, normalizes weights and derives the
// per-stratum seeds and kernel runs.
func newStratRuns(mc sim.MonteCarlo, kernel string, strata []Stratum, maxTrials int) ([]stratRun, error) {
	if len(strata) == 0 {
		return nil, fmt.Errorf("adaptive: no strata")
	}
	var wsum float64
	for _, s := range strata {
		if s.Weight <= 0 || math.IsNaN(s.Weight) || math.IsInf(s.Weight, 0) {
			return nil, fmt.Errorf("adaptive: stratum %q has weight %v", s.Name, s.Weight)
		}
		wsum += s.Weight
	}
	seeds := mathx.DeriveSeeds(mc.Seed, len(strata))
	runs := make([]stratRun, len(strata))
	for i, s := range strata {
		if _, err := sim.NewKernelBatch(kernel, s.Params); err != nil {
			return nil, fmt.Errorf("adaptive: stratum %q: %w", s.Name, err)
		}
		runs[i] = stratRun{
			name:   s.Name,
			run:    sim.KernelRun{Kernel: kernel, Params: s.Params, Seed: seeds[i], Trials: maxTrials},
			mc:     sim.MonteCarlo{Seed: seeds[i], Workers: mc.Workers},
			weight: s.Weight / wsum,
		}
	}
	return runs, nil
}

// extend runs the stratum's next n chunks (prefix [chunks, chunks+n))
// and folds them into its statistics in chunk order.
func (r *stratRun) extend(ctx context.Context, n int) error {
	if n <= 0 {
		return nil
	}
	lo, hi := r.chunks, r.chunks+n
	var parts []mathx.Running
	var err error
	if re, ok := sim.ExecutorFrom(ctx).(sim.RangeExecutor); ok {
		parts, err = re.RunChunkRange(ctx, r.run, lo, hi)
		if err == nil && len(parts) != n {
			err = fmt.Errorf("adaptive: range executor returned %d partials for [%d, %d)", len(parts), lo, hi)
		}
	} else {
		parts, err = r.mc.RunKernelChunksCtx(ctx, r.run.Kernel, r.run.Params, r.run.Trials, lo, hi)
	}
	if err != nil {
		return err
	}
	for _, p := range parts {
		r.stats.Merge(p)
	}
	r.chunks = hi
	return nil
}

// combine folds the per-stratum statistics into the reweighted
// estimator: mean = Σ w_s·m_s, se² = Σ w_s²·var_s/n_s. The weights are
// the declared population weights, not the realized sample shares —
// that substitution is the whole unbiasedness argument, checked by the
// A/B test.
func combine(runs []stratRun) (mean, se float64) {
	var v float64
	for i := range runs {
		r := &runs[i]
		mean += r.weight * r.stats.Mean()
		if n := r.stats.N(); n > 0 {
			v += r.weight * r.weight * r.stats.Variance() / float64(n)
		}
	}
	return mean, math.Sqrt(v)
}

// stopStratified applies the budget's relative-CI target to the
// combined estimate, with the same floors the flat rules use.
func stopStratified(runs []stratRun, mean, se float64, b Budget) bool {
	var n int64
	for i := range runs {
		n += runs[i].stats.N()
	}
	min := int64(b.MinTrials)
	if min < cltMinTrials {
		min = cltMinTrials
	}
	if n < min || mean == 0 {
		return false
	}
	return z95*se <= b.TargetRelCI*math.Abs(mean)
}

// neymanAlloc apportions round chunks by Neyman shares w_s·σ_s,
// flooring each σ at 5% of the largest so a stratum that has seen no
// errors yet keeps receiving exploration budget. Integer apportionment
// is largest-remainder with index-order tie-breaks — fully
// deterministic.
func neymanAlloc(runs []stratRun, round int) []int {
	shares := make([]float64, len(runs))
	var maxSD float64
	for i := range runs {
		if sd := runs[i].stats.StdDev(); sd > maxSD {
			maxSD = sd
		}
	}
	floor := maxSD * 0.05
	if maxSD == 0 {
		// No stratum has any variance yet; explore uniformly.
		floor = 1
	}
	var sum float64
	for i := range runs {
		sd := runs[i].stats.StdDev()
		if sd < floor {
			sd = floor
		}
		shares[i] = runs[i].weight * sd
		sum += shares[i]
	}
	alloc := make([]int, len(runs))
	type frac struct {
		i int
		f float64
	}
	fracs := make([]frac, len(runs))
	given := 0
	for i := range runs {
		exact := float64(round) * shares[i] / sum
		alloc[i] = int(exact)
		given += alloc[i]
		fracs[i] = frac{i: i, f: exact - float64(alloc[i])}
	}
	sort.SliceStable(fracs, func(a, b int) bool { return fracs[a].f > fracs[b].f })
	for k := 0; given < round; k++ {
		alloc[fracs[k%len(fracs)].i]++
		given++
	}
	return alloc
}

// finishStratified assembles the result, completes the trace and
// accounts saved budget.
func finishStratified(runs []stratRun, trace sim.PlanTrace) *StratifiedResult {
	res := &StratifiedResult{PerStratum: make([]StratumStats, len(runs))}
	trace.Strata = make([]sim.StratumAlloc, len(runs))
	for i := range runs {
		r := &runs[i]
		res.PerStratum[i] = StratumStats{Name: r.name, Stats: r.stats, Chunks: r.chunks}
		trace.Strata[i] = sim.StratumAlloc{Name: r.name, Chunks: r.chunks}
		res.Trials += int(r.stats.N())
	}
	res.Mean, res.StdErr = combine(runs)
	trace.Trials = res.Trials
	res.Trace = trace
	return res
}
