package adaptive

import (
	"fmt"
	"math"

	"repro/internal/mathx"
	"repro/internal/sim"
)

// Budget is the user-facing adaptive contract: keep sampling until the
// 95% confidence half-width shrinks below TargetRelCI times the
// estimate, but never beyond MaxTrials. The zero Budget is disabled —
// every existing fixed-budget caller stays byte-identical.
type Budget struct {
	// TargetRelCI is the target relative half-width of the 95% CI,
	// e.g. 0.05 stops once the estimate is known to ±5%.
	TargetRelCI float64
	// MaxTrials caps the spend; the run degrades to a fixed budget of
	// MaxTrials when the target is never met.
	MaxTrials int
	// MinTrials optionally floors the spend so a lucky early prefix
	// cannot stop a run before the estimator has settled. 0 applies
	// only the rules' own sanity floors.
	MinTrials int
}

// Enabled reports whether the budget asks for adaptive execution.
func (b Budget) Enabled() bool { return b.TargetRelCI > 0 && b.MaxTrials > 0 }

// Validate rejects budgets that could never stop or never start.
func (b Budget) Validate() error {
	if !b.Enabled() {
		return nil
	}
	if b.TargetRelCI >= 1 {
		return fmt.Errorf("adaptive: target relative CI %g >= 1", b.TargetRelCI)
	}
	if b.MinTrials > b.MaxTrials {
		return fmt.Errorf("adaptive: min trials %d exceeds budget %d", b.MinTrials, b.MaxTrials)
	}
	return nil
}

// RuleFor compiles the budget into the stopping rule appropriate for a
// registered kernel: a Wilson binomial rule when the kernel declares a
// Bernoulli-units capability (BER-style rates, where one trial carries
// many bits), the CLT rule otherwise. A disabled budget compiles to
// nil, which sim.RunAdaptiveCtx treats as "run the whole budget".
func (b Budget) RuleFor(kernel string, params map[string]float64) sim.StopRule {
	if !b.Enabled() {
		return nil
	}
	if caps, ok := sim.KernelCapsFor(kernel); ok && caps.BernoulliUnits != nil {
		if u := caps.BernoulliUnits(params); u > 0 {
			return WilsonRule{Target: b.TargetRelCI, UnitsPerTrial: u, MinTrials: int64(b.MinTrials)}
		}
	}
	return CLTRule{Target: b.TargetRelCI, MinTrials: int64(b.MinTrials)}
}

// CLTRule stops a mean estimator once the normal-approximation 95%
// half-width falls below Target times the absolute mean. It is the
// right rule when the per-trial observable is a general real value
// (spectral efficiency, latency); for tiny Bernoulli rates its variance
// estimate is noisy and WilsonRule should be used instead.
type CLTRule struct {
	// Target is the relative half-width to reach.
	Target float64
	// MinTrials floors the prefix length before stopping may trigger.
	MinTrials int64
}

// cltMinTrials is the absolute floor: below this the sample variance is
// too unstable to certify anything.
const cltMinTrials = 64

// Done implements sim.StopRule.
func (r CLTRule) Done(prefix mathx.Running) bool {
	min := r.MinTrials
	if min < cltMinTrials {
		min = cltMinTrials
	}
	if prefix.N() < min {
		return false
	}
	m := math.Abs(prefix.Mean())
	if m == 0 {
		return false
	}
	return prefix.CI95() <= r.Target*m
}

// WilsonRule stops a Bernoulli-rate estimator once the Wilson 95%
// interval half-width falls below Target times the observed rate. The
// prefix mean is interpreted as a rate over N()*UnitsPerTrial Bernoulli
// units — e.g. a BER over trials*bits transmitted bits — which is what
// makes stopping sound in the deep tail where per-trial CLT variance
// would need millions of trials to stabilise.
type WilsonRule struct {
	// Target is the relative half-width to reach.
	Target float64
	// UnitsPerTrial converts trials to Bernoulli units.
	UnitsPerTrial float64
	// MinTrials floors the prefix length before stopping may trigger.
	MinTrials int64
}

// wilsonMinErrors is the floor on observed errors: with fewer, the rate
// estimate is dominated by discreteness and no interval is trustworthy.
const wilsonMinErrors = 5

// Done implements sim.StopRule.
func (r WilsonRule) Done(prefix mathx.Running) bool {
	if prefix.N() < r.MinTrials {
		return false
	}
	n := float64(prefix.N()) * r.UnitsPerTrial
	p := prefix.Mean()
	if n <= 0 || p <= 0 {
		return false
	}
	k := p * n
	if k < wilsonMinErrors {
		return false
	}
	lo, hi := Wilson(k, n, z95)
	return (hi-lo)/2 <= r.Target*p
}
