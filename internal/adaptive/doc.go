// Package adaptive is the sampling-controller tier above sim.MonteCarlo:
// it decides how many trials a kernel run spends, never what any trial
// computes.
//
// Three layers:
//
//   - Confidence intervals (interval.go): Wilson score and
//     Clopper-Pearson binomial intervals for Bernoulli-rate estimators
//     (BER-style kernels, where one trial contributes many bits), plus
//     the CLT normal-approximation interval for general means.
//
//   - Sequential stopping (stop.go, controller.go): a Budget
//     {TargetRelCI, MaxTrials} compiles into a sim.StopRule chosen from
//     the kernel's registered capabilities, and Run drives
//     sim.MonteCarlo.RunAdaptiveCtx with it. Stopping is evaluated only
//     at chunk boundaries on the merged chunk-prefix statistics, so the
//     chunk-seeded determinism contract is untouched and the realized
//     plan is replayable (sim.PlanTrace, Replay).
//
//   - Tail-aware stratification (strata.go): RunStratified splits a
//     budget across parameter strata (e.g. SNR cells), pilots each one,
//     and shifts subsequent rounds toward high-variance strata by
//     Neyman allocation. The estimator reweights by the declared
//     stratum weights, so it stays unbiased no matter how the realized
//     allocation tilted — the property pinned by the A/B estimator
//     test.
//
// Everything here is deterministic given (seed, kernel, params, budget):
// stopping rules are pure functions of prefix statistics, stratum seeds
// derive from the master seed, and integer chunk apportionment breaks
// ties by stratum index.
package adaptive
