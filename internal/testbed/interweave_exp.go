package testbed

import (
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/beamform"
	"repro/internal/geom"
	"repro/internal/mathx"
)

// InterweaveExperiment reproduces the Figure 8 measurement: two transmit
// radios form a null-steering beamformer; the receiver walks a
// semicircle of the given radius around the pair midpoint and records
// the signal amplitude at each angle. Indoor multipath adds a scattered
// component, so the measured null is deep but not perfect — exactly the
// effect the paper observes ("the received signal amplitude in the null
// direction is not zero").
type InterweaveExperiment struct {
	// Spacing is the element separation in metres.
	Spacing float64
	// Wavelength of the 2.45 GHz carrier.
	Wavelength float64
	// NullAngleDeg is the steered null direction (paper: 120 degrees).
	NullAngleDeg float64
	// Radius of the receiver semicircle (paper: 1 m).
	Radius float64
	// MultipathFrac is the RMS amplitude of the scattered component
	// relative to one element's direct field.
	MultipathFrac float64
	// Averages is how many fading draws are averaged per angle.
	Averages int
	// Seed drives the multipath draws.
	Seed int64
}

// PaperInterweave returns the calibrated Figure 8 configuration.
func PaperInterweave(seed int64) InterweaveExperiment {
	return InterweaveExperiment{
		Spacing:       0.0612, // half wavelength at 2.45 GHz
		Wavelength:    0.1224,
		NullAngleDeg:  120,
		Radius:        1,
		MultipathFrac: 0.18,
		Averages:      64,
		Seed:          seed,
	}
}

// PatternPoint is one Figure 8 sample.
type PatternPoint struct {
	AngleDeg float64
	// Ideal is the simulated (free-space) beamformer amplitude.
	Ideal float64
	// Measured is the beamformer amplitude with indoor multipath.
	Measured float64
	// SISO is the single-transmitter amplitude with the same multipath,
	// the baseline curve of Figure 8.
	SISO float64
}

// Run samples the pattern at the given angles in degrees (the paper
// walks 0..180 in 20-degree steps).
func (x InterweaveExperiment) Run(anglesDeg []float64) ([]PatternPoint, error) {
	if x.Spacing <= 0 || x.Wavelength <= 0 || x.Radius <= 0 {
		return nil, fmt.Errorf("testbed: interweave geometry must be positive")
	}
	if x.Averages < 1 {
		return nil, fmt.Errorf("testbed: averages %d must be positive", x.Averages)
	}
	if len(anglesDeg) == 0 {
		for a := 0.0; a <= 180; a += 20 {
			anglesDeg = append(anglesDeg, a)
		}
	}
	st1 := geom.Pt(-x.Spacing/2, 0)
	st2 := geom.Pt(x.Spacing/2, 0)
	pair := &beamform.Pair{
		St1: st1, St2: st2,
		Wavelength: x.Wavelength,
		Delta1:     beamform.DesignNullAt(st1, st2, x.Wavelength, x.NullAngleDeg*math.Pi/180),
		Amp1:       1, Amp2: 1,
	}
	rng := mathx.NewRand(x.Seed)
	out := make([]PatternPoint, 0, len(anglesDeg))
	for _, deg := range anglesDeg {
		q := geom.PolarPoint(geom.Pt(0, 0), x.Radius, deg*math.Pi/180)
		ideal := pair.AmplitudeAt(q)
		field := pair.FieldAt(q)
		var meas, siso mathx.Running
		for i := 0; i < x.Averages; i++ {
			// The scattered component is common to the environment but
			// independent per draw; the beamformer's two elements each
			// contribute scatter, the SISO baseline one.
			mp := mathx.ComplexCN(rng, 2*x.MultipathFrac*x.MultipathFrac)
			meas.Add(cmplx.Abs(field + mp))
			mpS := mathx.ComplexCN(rng, x.MultipathFrac*x.MultipathFrac)
			siso.Add(cmplx.Abs(complex(1, 0) + mpS))
		}
		out = append(out, PatternPoint{
			AngleDeg: deg,
			Ideal:    ideal,
			Measured: meas.Mean(),
			SISO:     siso.Mean(),
		})
	}
	return out, nil
}
