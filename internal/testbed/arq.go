package testbed

import (
	"fmt"
	"math"

	"repro/internal/mathx"
	"repro/internal/modulation"
)

// ARQResult reports an image transfer with stop-and-wait retransmission:
// the paper's underlay receiver recovers the image "with some
// distortions" from whatever frames survive; with ARQ the link trades
// airtime for completeness instead.
type ARQResult struct {
	Amplitude float64
	// Delivered is the fraction of frames that eventually passed CRC.
	Delivered float64
	// MeanTransmissions is the average number of over-the-air sends per
	// frame (1.0 = every frame passed first try).
	MeanTransmissions float64
	// Goodput is delivered payload bits per transmitted wire bit.
	Goodput float64
}

// RunARQ repeats the Table 4 transfer with up to maxRetries
// retransmissions per frame on the cooperative arm. maxRetries = 0
// degenerates to the plain single-shot PER measurement.
func (x UnderlayExperiment) RunARQ(amplitude float64, maxRetries int) (ARQResult, error) {
	if x.Image == nil || len(x.Image.Frames) == 0 {
		return ARQResult{}, fmt.Errorf("testbed: ARQ needs an image")
	}
	if amplitude <= 0 || x.RefAmplitude <= 0 {
		return ARQResult{}, fmt.Errorf("testbed: amplitudes must be positive")
	}
	if maxRetries < 0 {
		return ARQResult{}, fmt.Errorf("testbed: retries %d must be non-negative", maxRetries)
	}
	rng := mathx.NewRand(x.Seed)
	gamma0 := math.Pow(10, x.SNRRefDB/10) * (amplitude / x.RefAmplitude) * (amplitude / x.RefAmplitude)
	los := complex(math.Sqrt(x.RicianK/(x.RicianK+1)), 0)
	scatterVar := 1 / (x.RicianK + 1)

	delivered := 0
	transmissions := 0
	payloadBits := 0
	wireBits := 0
	var ws frameScratch
	for _, f := range x.Image.Frames {
		ws.wire = f.MarshalInto(ws.wire)
		wire := ws.wire
		payloadBits += len(f.Payload) * 8
		ok := false
		for attempt := 0; attempt <= maxRetries; attempt++ {
			transmissions++
			wireBits += len(wire) * 8
			// Fresh fading per attempt: retransmissions ride new channel
			// realisations, which is where ARQ's diversity comes from.
			h1 := los + mathx.ComplexCN(rng, scatterVar)
			h2 := los + mathx.ComplexCN(rng, scatterVar)
			phi := rng.NormFloat64() * x.PhaseJitter
			sum := h1 + h2*complex(math.Cos(phi), math.Sin(phi))
			gc := real(sum)*real(sum) + imag(sum)*imag(sum)
			p := modulation.GMSKBERAWGN(gc * gamma0)
			if !corruptFrame(rng, wire, p, &ws) {
				ok = true
				break
			}
		}
		if ok {
			delivered++
		}
	}
	n := float64(len(x.Image.Frames))
	res := ARQResult{
		Amplitude:         amplitude,
		Delivered:         float64(delivered) / n,
		MeanTransmissions: float64(transmissions) / n,
	}
	if wireBits > 0 {
		res.Goodput = float64(delivered) / float64(len(x.Image.Frames)) *
			float64(payloadBits) / float64(wireBits)
	}
	return res, nil
}
