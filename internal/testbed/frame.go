package testbed

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math/rand"
)

// Frame is one link-layer packet: a sequence number, a payload, and a
// CRC-32 trailer. The underlay experiment transmits a 474-frame image
// with 1500-byte payloads, exactly as in Section 6.4.
type Frame struct {
	Seq     uint16
	Payload []byte
}

// frameOverhead is the wire overhead: 2 sequence bytes + 4 CRC bytes.
const frameOverhead = 6

// Marshal serialises the frame with its CRC-32 (IEEE) trailer.
func (f Frame) Marshal() []byte {
	buf := make([]byte, 2+len(f.Payload)+4)
	binary.BigEndian.PutUint16(buf[:2], f.Seq)
	copy(buf[2:], f.Payload)
	crc := crc32.ChecksumIEEE(buf[:2+len(f.Payload)])
	binary.BigEndian.PutUint32(buf[2+len(f.Payload):], crc)
	return buf
}

// UnmarshalFrame parses a received buffer, verifying the CRC. A CRC
// mismatch is the packet-error event the PER metric counts.
func UnmarshalFrame(buf []byte) (Frame, error) {
	if len(buf) < frameOverhead {
		return Frame{}, fmt.Errorf("testbed: frame too short (%d bytes)", len(buf))
	}
	body := buf[:len(buf)-4]
	want := binary.BigEndian.Uint32(buf[len(buf)-4:])
	if crc32.ChecksumIEEE(body) != want {
		return Frame{}, fmt.Errorf("testbed: CRC mismatch on frame %d", binary.BigEndian.Uint16(buf[:2]))
	}
	return Frame{
		Seq:     binary.BigEndian.Uint16(buf[:2]),
		Payload: append([]byte(nil), body[2:]...),
	}, nil
}

// Bits expands bytes to one bit per entry, MSB first.
func Bits(data []byte) []byte {
	out := make([]byte, len(data)*8)
	for i, b := range data {
		for j := 0; j < 8; j++ {
			out[i*8+j] = (b >> (7 - j)) & 1
		}
	}
	return out
}

// Bytes packs bits (len must be a multiple of 8) back into bytes.
func Bytes(bits []byte) ([]byte, error) {
	if len(bits)%8 != 0 {
		return nil, fmt.Errorf("testbed: %d bits not a multiple of 8", len(bits))
	}
	out := make([]byte, len(bits)/8)
	for i := range out {
		var b byte
		for j := 0; j < 8; j++ {
			b = b<<1 | (bits[i*8+j] & 1)
		}
		out[i] = b
	}
	return out, nil
}

// Image is the test payload standing in for the paper's image file:
// deterministic pseudo-random pixel bytes split into fixed-size frames.
type Image struct {
	Frames []Frame
}

// NewImage builds an image of the given frame count and payload size,
// seeded deterministically (pixel content does not affect PER, but
// determinism keeps runs reproducible).
func NewImage(frames, payloadBytes int, seed int64) (*Image, error) {
	if frames < 1 || frames > 1<<16 {
		return nil, fmt.Errorf("testbed: frame count %d outside [1, 65536]", frames)
	}
	if payloadBytes < 1 {
		return nil, fmt.Errorf("testbed: payload size %d must be positive", payloadBytes)
	}
	rng := rand.New(rand.NewSource(seed))
	img := &Image{Frames: make([]Frame, frames)}
	for i := range img.Frames {
		payload := make([]byte, payloadBytes)
		rng.Read(payload)
		img.Frames[i] = Frame{Seq: uint16(i), Payload: payload}
	}
	return img, nil
}

// PaperImage is the Section 6.4 payload: 474 frames of 1500 bytes.
func PaperImage(seed int64) *Image {
	img, err := NewImage(474, 1500, seed)
	if err != nil {
		panic(err) // constants are valid by construction
	}
	return img
}

// BitsPerFrame returns the on-air size of one frame in bits.
func (img *Image) BitsPerFrame() int {
	if len(img.Frames) == 0 {
		return 0
	}
	return (len(img.Frames[0].Payload) + frameOverhead) * 8
}
