package testbed

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math/rand"
)

// Frame is one link-layer packet: a sequence number, a payload, and a
// CRC-32 trailer. The underlay experiment transmits a 474-frame image
// with 1500-byte payloads, exactly as in Section 6.4.
type Frame struct {
	Seq     uint16
	Payload []byte
}

// frameOverhead is the wire overhead: 2 sequence bytes + 4 CRC bytes.
const frameOverhead = 6

// Marshal serialises the frame with its CRC-32 (IEEE) trailer.
func (f Frame) Marshal() []byte {
	return f.MarshalInto(nil)
}

// MarshalInto serialises the frame into dst's backing array when it has
// the capacity, allocating only on growth. The experiment loops marshal
// hundreds of identically-sized frames, so one buffer serves them all.
func (f Frame) MarshalInto(dst []byte) []byte {
	n := 2 + len(f.Payload) + 4
	if cap(dst) < n {
		dst = make([]byte, n)
	}
	buf := dst[:n]
	binary.BigEndian.PutUint16(buf[:2], f.Seq)
	copy(buf[2:], f.Payload)
	crc := crc32.ChecksumIEEE(buf[:2+len(f.Payload)])
	binary.BigEndian.PutUint32(buf[2+len(f.Payload):], crc)
	return buf
}

// FrameIntact reports whether a received buffer passes the length and
// CRC checks. It allocates nothing — not even an error — so the PER
// loops can call it per frame.
func FrameIntact(buf []byte) bool {
	if len(buf) < frameOverhead {
		return false
	}
	body := buf[:len(buf)-4]
	return crc32.ChecksumIEEE(body) == binary.BigEndian.Uint32(buf[len(buf)-4:])
}

// CheckFrame verifies a received buffer's length and CRC trailer,
// describing the failure when there is one.
func CheckFrame(buf []byte) error {
	if len(buf) < frameOverhead {
		return fmt.Errorf("testbed: frame too short (%d bytes)", len(buf))
	}
	if !FrameIntact(buf) {
		return fmt.Errorf("testbed: CRC mismatch on frame %d", binary.BigEndian.Uint16(buf[:2]))
	}
	return nil
}

// UnmarshalFrame parses a received buffer, verifying the CRC. A CRC
// mismatch is the packet-error event the PER metric counts.
func UnmarshalFrame(buf []byte) (Frame, error) {
	if err := CheckFrame(buf); err != nil {
		return Frame{}, err
	}
	return Frame{
		Seq:     binary.BigEndian.Uint16(buf[:2]),
		Payload: append([]byte(nil), buf[2:len(buf)-4]...),
	}, nil
}

// Bits expands bytes to one bit per entry, MSB first.
func Bits(data []byte) []byte {
	return BitsInto(nil, data)
}

// BitsInto expands bytes into dst's backing array when it has the
// capacity, allocating only on growth.
func BitsInto(dst, data []byte) []byte {
	n := len(data) * 8
	if cap(dst) < n {
		dst = make([]byte, n)
	}
	out := dst[:n]
	for i, b := range data {
		for j := 0; j < 8; j++ {
			out[i*8+j] = (b >> (7 - j)) & 1
		}
	}
	return out
}

// Bytes packs bits (len must be a multiple of 8) back into bytes.
func Bytes(bits []byte) ([]byte, error) {
	return BytesInto(nil, bits)
}

// BytesInto packs bits into dst's backing array when it has the
// capacity, allocating only on growth.
func BytesInto(dst, bits []byte) ([]byte, error) {
	if len(bits)%8 != 0 {
		return nil, fmt.Errorf("testbed: %d bits not a multiple of 8", len(bits))
	}
	n := len(bits) / 8
	if cap(dst) < n {
		dst = make([]byte, n)
	}
	out := dst[:n]
	for i := range out {
		var b byte
		for j := 0; j < 8; j++ {
			b = b<<1 | (bits[i*8+j] & 1)
		}
		out[i] = b
	}
	return out, nil
}

// Image is the test payload standing in for the paper's image file:
// deterministic pseudo-random pixel bytes split into fixed-size frames.
type Image struct {
	Frames []Frame
}

// NewImage builds an image of the given frame count and payload size,
// seeded deterministically (pixel content does not affect PER, but
// determinism keeps runs reproducible).
func NewImage(frames, payloadBytes int, seed int64) (*Image, error) {
	if frames < 1 || frames > 1<<16 {
		return nil, fmt.Errorf("testbed: frame count %d outside [1, 65536]", frames)
	}
	if payloadBytes < 1 {
		return nil, fmt.Errorf("testbed: payload size %d must be positive", payloadBytes)
	}
	rng := rand.New(rand.NewSource(seed))
	img := &Image{Frames: make([]Frame, frames)}
	// One backing block for every payload: rand.Read carries its byte
	// stream across calls, so slicing a shared array draws exactly the
	// bytes per-frame allocations would.
	backing := make([]byte, frames*payloadBytes)
	for i := range img.Frames {
		payload := backing[i*payloadBytes : (i+1)*payloadBytes : (i+1)*payloadBytes]
		rng.Read(payload)
		img.Frames[i] = Frame{Seq: uint16(i), Payload: payload}
	}
	return img, nil
}

// PaperImage is the Section 6.4 payload: 474 frames of 1500 bytes.
func PaperImage(seed int64) *Image {
	img, err := NewImage(474, 1500, seed)
	if err != nil {
		panic(err) // constants are valid by construction
	}
	return img
}

// BitsPerFrame returns the on-air size of one frame in bits.
func (img *Image) BitsPerFrame() int {
	if len(img.Frames) == 0 {
		return 0
	}
	return (len(img.Frames[0].Payload) + frameOverhead) * 8
}
