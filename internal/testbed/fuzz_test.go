package testbed

import (
	"bytes"
	"testing"
)

// FuzzUnmarshalFrame checks the frame parser never panics and never
// accepts a buffer whose CRC does not match.
func FuzzUnmarshalFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5})
	f.Add(Frame{Seq: 7, Payload: []byte("payload")}.Marshal())
	wire := Frame{Seq: 9, Payload: []byte("x")}.Marshal()
	wire[0] ^= 0xFF
	f.Add(wire)
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := UnmarshalFrame(data)
		if err != nil {
			return
		}
		// Anything accepted must re-marshal to the identical bytes.
		if !bytes.Equal(fr.Marshal(), data) {
			t.Fatalf("accepted frame does not round-trip: %x", data)
		}
	})
}

// FuzzBitsBytes checks the bit packing round-trips for arbitrary input.
func FuzzBitsBytes(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00, 0xFF, 0xA5})
	f.Fuzz(func(t *testing.T, data []byte) {
		back, err := Bytes(Bits(data))
		if err != nil {
			t.Fatalf("Bits always yields a multiple of 8: %v", err)
		}
		if !bytes.Equal(back, data) {
			t.Fatalf("round trip mangled %x -> %x", data, back)
		}
	})
}
