package testbed

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"

	"repro/internal/geom"
	"repro/internal/mathx"
)

// OverlayExperiment measures the BER of a primary link with and without
// decode-and-forward SU relays, reproducing the Section 6.4 overlay
// testbed: BPSK, equal-gain combining at the receiver, 100 000 bits.
type OverlayExperiment struct {
	Env    Env
	Tx, Rx Radio
	Relays []Radio
	// Bits is the number of information bits (paper: 100 000).
	Bits int
	// CoherenceBits is the fading block length in bits.
	CoherenceBits int
	// Combiner selects the receive combining: "egc" (default — what the
	// paper's testbed ran), "mrc", or "selection". The combining
	// ablation experiment contrasts them on identical channels.
	Combiner string
	// Seed drives fading and noise.
	Seed int64
}

// OverlayResult reports both arms of the experiment.
type OverlayResult struct {
	DirectBER float64
	CoopBER   float64
}

// link is one fading radio link's per-block state.
type link struct {
	meanSNR float64
	k       float64
	h       complex128 // current fading coefficient
}

func newLink(e Env, a, b geom.Point) *link {
	return &link{meanSNR: e.MeanSNR(a, b), k: e.LinkK(a, b)}
}

// redraw samples a new fading coefficient for the next coherence block.
func (l *link) redraw(rng *rand.Rand) {
	amp := mathx.Rician(rng, l.k, 1)
	phase := 2 * math.Pi * rng.Float64()
	l.h = cmplx.Rect(amp, phase)
}

// observe returns the receiver sample for BPSK symbol s (+1/-1) and the
// effective complex channel gain: y = g*s + CN(0,1) with g = h*sqrt(snr).
func (l *link) observe(rng *rand.Rand, s float64) (y, g complex128) {
	g = l.h * complex(math.Sqrt(l.meanSNR), 0)
	n := mathx.ComplexCN(rng, 1)
	return g*complex(s, 0) + n, g
}

// Run simulates the experiment. Both arms share fading and transmit
// bits, so the comparison is paired.
func (x OverlayExperiment) Run() (OverlayResult, error) {
	if err := x.Env.Validate(); err != nil {
		return OverlayResult{}, err
	}
	if x.Bits < 1 {
		return OverlayResult{}, fmt.Errorf("testbed: bit count %d must be positive", x.Bits)
	}
	coh := x.CoherenceBits
	if coh < 1 {
		coh = 500
	}
	combine, err := combinerFor(x.Combiner)
	if err != nil {
		return OverlayResult{}, err
	}
	rng := mathx.NewRand(x.Seed)

	direct := newLink(x.Env, x.Tx.Pos, x.Rx.Pos)
	up := make([]*link, len(x.Relays))   // Tx -> relay
	down := make([]*link, len(x.Relays)) // relay -> Rx
	for i, r := range x.Relays {
		up[i] = newLink(x.Env, x.Tx.Pos, r.Pos)
		down[i] = newLink(x.Env, r.Pos, x.Rx.Pos)
	}

	var errDirect, errCoop int
	ys := make([]complex128, 0, 1+len(x.Relays))
	gs := make([]complex128, 0, 1+len(x.Relays))
	for bit := 0; bit < x.Bits; bit++ {
		if bit%coh == 0 {
			direct.redraw(rng)
			for i := range x.Relays {
				up[i].redraw(rng)
				down[i].redraw(rng)
			}
		}
		s := float64(1 - 2*rng.Intn(2)) // +1 or -1

		// Phase 1: source broadcast; Rx and every relay listen.
		y0, g0 := direct.observe(rng, s)
		if decideBPSK(y0, g0) != s {
			errDirect++
		}
		ys = append(ys[:0], y0)
		gs = append(gs[:0], g0)

		// Phase 2: each relay forwards its hard decision; Rx equal-gain
		// combines the direct and relayed branches.
		for i := range x.Relays {
			yi, gi := up[i].observe(rng, s)
			sHat := decideBPSK(yi, gi)
			yr, gr := down[i].observe(rng, sHat)
			ys = append(ys, yr)
			gs = append(gs, gr)
		}
		if combine(ys, gs) != s {
			errCoop++
		}
	}
	return OverlayResult{
		DirectBER: float64(errDirect) / float64(x.Bits),
		CoopBER:   float64(errCoop) / float64(x.Bits),
	}, nil
}

// decideBPSK coherently detects one BPSK symbol.
func decideBPSK(y, g complex128) float64 {
	if real(cmplx.Conj(g)*y) >= 0 {
		return 1
	}
	return -1
}

// combinerFor maps a name to a multi-branch decision function.
func combinerFor(name string) (func(ys, gs []complex128) float64, error) {
	switch name {
	case "", "egc":
		return egcDecide, nil
	case "mrc":
		return mrcDecide, nil
	case "selection":
		return selectionDecide, nil
	default:
		return nil, fmt.Errorf("testbed: unknown combiner %q (egc, mrc, selection)", name)
	}
}

// egcDecide co-phases each branch (equal gain, no amplitude weighting —
// the combiner the paper's testbed uses) and decides on the sum.
func egcDecide(ys, gs []complex128) float64 {
	var sum float64
	for i := range ys {
		a := cmplx.Abs(gs[i])
		if a == 0 {
			continue
		}
		sum += real(cmplx.Conj(gs[i]/complex(a, 0)) * ys[i])
	}
	if sum >= 0 {
		return 1
	}
	return -1
}

// mrcDecide weighs each branch by its full complex gain — optimal for
// equal-noise branches (but not for relayed branches carrying decision
// errors, which is why MRC's edge over EGC shrinks in relaying).
func mrcDecide(ys, gs []complex128) float64 {
	var sum float64
	for i := range ys {
		sum += real(cmplx.Conj(gs[i]) * ys[i])
	}
	if sum >= 0 {
		return 1
	}
	return -1
}

// selectionDecide uses only the strongest branch.
func selectionDecide(ys, gs []complex128) float64 {
	best, bestGain := 0, -1.0
	for i := range gs {
		if a := cmplx.Abs(gs[i]); a > bestGain {
			best, bestGain = i, a
		}
	}
	if bestGain <= 0 {
		return 1
	}
	return decideBPSK(ys[best], gs[best])
}

// Table2Setup is the single-relay overlay layout: transmitter, relay and
// receiver on a 2 m equilateral triangle with a thick board obstructing
// the direct path.
func Table2Setup(seed int64) OverlayExperiment {
	env := DefaultEnv()
	env.NoisePowerDBm = -68
	env.Indoor.Obstacles = append(env.Indoor.Obstacles,
		Board(geom.Pt(1, -0.5), geom.Pt(1, 0.5), 6, "board"))
	return OverlayExperiment{
		Env:    env,
		Tx:     Radio{Name: "Pt", Pos: geom.Pt(0, 0)},
		Rx:     Radio{Name: "Pr", Pos: geom.Pt(2, 0)},
		Relays: []Radio{{Name: "relay", Pos: geom.Pt(1, 1.732)}},
		Bits:   100000,
		Seed:   seed,
	}
}

// Table3Setup is the multi-relay layout: the labs are ~10 m apart with
// two concrete walls across the direct path; relays sit mid-corridor so
// their two legs have comparable quality (the configuration the paper's
// "uniformly put in the corridor" achieved — a relay with one very bad
// leg poisons equal-gain combining with confident errors). relays
// selects how many of the three corridor positions are used (0 = direct
// only, 1 = the middle relay, 3 = all).
func Table3Setup(seed int64, relays int) OverlayExperiment {
	env := DefaultEnv()
	env.NoisePowerDBm = -68
	env.TxPowerDBm = -0.5
	env.Indoor.Obstacles = append(env.Indoor.Obstacles,
		Board(geom.Pt(3.3, -1), geom.Pt(3.3, 1.2), 3, "wall-1"),
		Board(geom.Pt(6.6, -1), geom.Pt(6.6, 1.2), 3, "wall-2"),
	)
	all := []Radio{
		{Name: "relay-1", Pos: geom.Pt(4.2, 1)},
		{Name: "relay-2", Pos: geom.Pt(5.0, 1)},
		{Name: "relay-3", Pos: geom.Pt(5.8, 1)},
	}
	var chosen []Radio
	switch relays {
	case 0:
	case 1:
		chosen = all[1:2] // the middle relay
	default:
		chosen = all[:relays]
	}
	return OverlayExperiment{
		Env:    env,
		Tx:     Radio{Name: "Pt", Pos: geom.Pt(0, 0)},
		Rx:     Radio{Name: "Pr", Pos: geom.Pt(10, 0)},
		Relays: chosen,
		Bits:   100000,
		Seed:   seed,
	}
}
