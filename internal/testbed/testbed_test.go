package testbed

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/mathx"
)

func TestEnvSNR(t *testing.T) {
	e := DefaultEnv()
	a, b := geom.Pt(0, 0), geom.Pt(2, 0)
	snr := e.MeanSNR(a, b)
	// -14 dBm - (40 + 30*log10(2)) dB + 75 dB = 11.97 dB.
	want := math.Pow(10, (-14-(40+30*math.Log10(2))+75)/10)
	if math.Abs(snr/want-1) > 1e-9 {
		t.Errorf("SNR = %v, want %v", snr, want)
	}
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := e
	bad.BitRate = 0
	if bad.Validate() == nil {
		t.Error("zero bit rate should fail")
	}
	bad = e
	bad.Indoor.RefDist = 0
	if bad.Validate() == nil {
		t.Error("zero RefDist should fail")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	f := Frame{Seq: 42, Payload: []byte("hello cognitive radio")}
	wire := f.Marshal()
	back, err := UnmarshalFrame(wire)
	if err != nil {
		t.Fatal(err)
	}
	if back.Seq != 42 || string(back.Payload) != "hello cognitive radio" {
		t.Errorf("round trip mangled: %+v", back)
	}
	// A flipped bit must fail the CRC.
	wire[3] ^= 0x10
	if _, err := UnmarshalFrame(wire); err == nil {
		t.Error("corrupted frame should fail CRC")
	}
	// Too-short buffers fail cleanly.
	if _, err := UnmarshalFrame([]byte{1, 2, 3}); err == nil {
		t.Error("short frame should fail")
	}
}

func TestBitsBytes(t *testing.T) {
	data := []byte{0xA5, 0x01, 0xFF, 0x00}
	bits := Bits(data)
	if len(bits) != 32 {
		t.Fatalf("%d bits", len(bits))
	}
	if bits[0] != 1 || bits[1] != 0 || bits[7] != 1 {
		t.Errorf("0xA5 bits wrong: %v", bits[:8])
	}
	back, err := Bytes(bits)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if back[i] != data[i] {
			t.Fatalf("byte %d: %x vs %x", i, back[i], data[i])
		}
	}
	if _, err := Bytes(make([]byte, 7)); err == nil {
		t.Error("non-multiple-of-8 should fail")
	}
}

func TestImage(t *testing.T) {
	img := PaperImage(1)
	if len(img.Frames) != 474 {
		t.Fatalf("%d frames", len(img.Frames))
	}
	if len(img.Frames[0].Payload) != 1500 {
		t.Fatalf("payload %d bytes", len(img.Frames[0].Payload))
	}
	if img.BitsPerFrame() != (1500+6)*8 {
		t.Errorf("BitsPerFrame = %d", img.BitsPerFrame())
	}
	// Deterministic per seed.
	img2 := PaperImage(1)
	if string(img.Frames[7].Payload) != string(img2.Frames[7].Payload) {
		t.Error("same seed produced different images")
	}
	img3 := PaperImage(2)
	if string(img.Frames[7].Payload) == string(img3.Frames[7].Payload) {
		t.Error("different seeds produced identical frames")
	}
	if _, err := NewImage(0, 10, 1); err == nil {
		t.Error("zero frames should fail")
	}
	if _, err := NewImage(10, 0, 1); err == nil {
		t.Error("zero payload should fail")
	}
	if (&Image{}).BitsPerFrame() != 0 {
		t.Error("empty image BitsPerFrame")
	}
}

// TestTable2 reproduces the single-relay overlay experiment: the paper
// reports ~10.9% BER without cooperation and ~2.5% with; the calibrated
// testbed must land in the same bands with cooperation winning by >= 3x.
func TestTable2(t *testing.T) {
	r, err := Table2Setup(11).Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.DirectBER < 0.06 || r.DirectBER > 0.20 {
		t.Errorf("direct BER = %.4f, paper ~0.109", r.DirectBER)
	}
	if r.CoopBER < 0.005 || r.CoopBER > 0.06 {
		t.Errorf("coop BER = %.4f, paper ~0.025", r.CoopBER)
	}
	if r.CoopBER*3 > r.DirectBER {
		t.Errorf("cooperation should win by >= 3x: %.4f vs %.4f", r.CoopBER, r.DirectBER)
	}
}

// TestTable3 reproduces the multi-relay ordering: direct > single-relay
// > multi-relay, with magnitudes near the paper's 22.7% / 10.6% / 2.9%.
func TestTable3(t *testing.T) {
	direct, err := Table3Setup(12, 0).Run()
	if err != nil {
		t.Fatal(err)
	}
	single, err := Table3Setup(12, 1).Run()
	if err != nil {
		t.Fatal(err)
	}
	multi, err := Table3Setup(12, 3).Run()
	if err != nil {
		t.Fatal(err)
	}
	if direct.DirectBER < 0.15 || direct.DirectBER > 0.40 {
		t.Errorf("direct BER = %.4f, paper ~0.227", direct.DirectBER)
	}
	if single.CoopBER < 0.04 || single.CoopBER > 0.16 {
		t.Errorf("single-relay BER = %.4f, paper ~0.106", single.CoopBER)
	}
	if multi.CoopBER < 0.01 || multi.CoopBER > 0.06 {
		t.Errorf("multi-relay BER = %.4f, paper ~0.029", multi.CoopBER)
	}
	if !(multi.CoopBER < single.CoopBER && single.CoopBER < direct.DirectBER) {
		t.Errorf("ordering violated: %.4f / %.4f / %.4f",
			multi.CoopBER, single.CoopBER, direct.DirectBER)
	}
}

func TestOverlayExperimentValidation(t *testing.T) {
	x := Table2Setup(1)
	x.Bits = 0
	if _, err := x.Run(); err == nil {
		t.Error("zero bits should fail")
	}
	x = Table2Setup(1)
	x.Env.BitRate = 0
	if _, err := x.Run(); err == nil {
		t.Error("invalid env should fail")
	}
}

func TestOverlayDeterminism(t *testing.T) {
	x := Table2Setup(3)
	x.Bits = 20000
	a, err := x.Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := x.Run()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same seed diverged: %+v vs %+v", a, b)
	}
}

// TestTable4 reproduces the underlay PER sweep: cooperation keeps the
// image recoverable (low PER) at every amplitude while the single
// transmitter degrades from ~25% loss to near-total loss.
func TestTable4(t *testing.T) {
	rows, err := PaperUnderlay(13).RunTable(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.CoopPER >= r.DirectPER {
			t.Errorf("A=%v: coop %.3f should beat direct %.3f", r.Amplitude, r.CoopPER, r.DirectPER)
		}
	}
	// Amplitude 800: coop near zero, direct ~25%.
	if rows[0].CoopPER > 0.05 {
		t.Errorf("coop@800 = %.3f, paper reports 0", rows[0].CoopPER)
	}
	if rows[0].DirectPER < 0.10 || rows[0].DirectPER > 0.45 {
		t.Errorf("direct@800 = %.3f, paper ~0.25", rows[0].DirectPER)
	}
	// Amplitude 400: direct near-total loss, coop still usable.
	if rows[2].DirectPER < 0.80 {
		t.Errorf("direct@400 = %.3f, paper ~0.97", rows[2].DirectPER)
	}
	if rows[2].CoopPER > 0.35 {
		t.Errorf("coop@400 = %.3f, paper ~0.14", rows[2].CoopPER)
	}
	// PER grows as amplitude falls, in both arms.
	for i := 1; i < len(rows); i++ {
		if rows[i].DirectPER < rows[i-1].DirectPER {
			t.Errorf("direct PER should grow as amplitude falls")
		}
	}
}

func TestUnderlayValidation(t *testing.T) {
	x := PaperUnderlay(1)
	if _, err := x.Run(0); err == nil {
		t.Error("zero amplitude should fail")
	}
	x.Image = nil
	if _, err := x.Run(800); err == nil {
		t.Error("missing image should fail")
	}
}

// TestFigure8 checks the beamformer pattern measurement: a pronounced
// dip at the 120-degree null that multipath keeps above zero, and a
// beamformer amplitude above the SISO baseline away from the null.
func TestFigure8(t *testing.T) {
	pts, err := PaperInterweave(14).Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 10 { // 0..180 step 20
		t.Fatalf("%d points", len(pts))
	}
	var atNull PatternPoint
	for _, p := range pts {
		if p.AngleDeg == 120 {
			atNull = p
		}
	}
	if atNull.Ideal > 0.05 {
		t.Errorf("ideal pattern at null = %v, want ~0", atNull.Ideal)
	}
	if atNull.Measured <= 0.01 {
		t.Errorf("measured null = %v; multipath should keep it above zero", atNull.Measured)
	}
	if atNull.Measured > 0.6 {
		t.Errorf("measured null = %v; should remain a deep dip", atNull.Measured)
	}
	// Away from the null (beyond 20 degrees), beamformer > SISO.
	above := 0
	count := 0
	for _, p := range pts {
		if math.Abs(p.AngleDeg-120) <= 20 {
			continue
		}
		count++
		if p.Measured > p.SISO {
			above++
		}
	}
	if above < count-1 {
		t.Errorf("beamformer above SISO in only %d of %d off-null samples", above, count)
	}
}

func TestFigure8Validation(t *testing.T) {
	x := PaperInterweave(1)
	x.Averages = 0
	if _, err := x.Run(nil); err == nil {
		t.Error("zero averages should fail")
	}
	x = PaperInterweave(1)
	x.Radius = 0
	if _, err := x.Run(nil); err == nil {
		t.Error("zero radius should fail")
	}
}

func TestCorruptFrame(t *testing.T) {
	rng := mathx.NewRand(15)
	wire := Frame{Seq: 1, Payload: []byte("payload")}.Marshal()
	var ws frameScratch
	// p=0: never corrupted, and the wire itself must stay untouched.
	for i := 0; i < 10; i++ {
		if corruptFrame(rng, wire, 0, &ws) {
			t.Fatal("p=0 corrupted a frame")
		}
	}
	// p=0.5: essentially always corrupted.
	hits := 0
	for i := 0; i < 50; i++ {
		if corruptFrame(rng, wire, 0.5, &ws) {
			hits++
		}
	}
	if err := CheckFrame(wire); err != nil {
		t.Fatalf("corruptFrame mutated the caller's wire: %v", err)
	}
	if hits < 49 {
		t.Errorf("p=0.5 corrupted only %d of 50", hits)
	}
}

// TestCorruptFrameNoAllocs pins the steady state of the Table 4 hot
// path: once the scratch buffers are warm, passing a full-size frame
// through the bit-flip channel must not allocate at all.
func TestCorruptFrameNoAllocs(t *testing.T) {
	rng := mathx.NewRand(2)
	wire := Frame{Seq: 3, Payload: make([]byte, 1500)}.Marshal()
	var ws frameScratch
	corruptFrame(rng, wire, 0.01, &ws) // warm the scratch
	avg := testing.AllocsPerRun(50, func() {
		corruptFrame(rng, wire, 0.01, &ws)
	})
	if avg != 0 {
		t.Fatalf("corruptFrame allocates %.1f per call with warm scratch", avg)
	}
}
