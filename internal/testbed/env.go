// Package testbed is the repository's substitute for the paper's
// GNU Radio + USRP indoor testbed (Section 6.4): a calibrated
// discrete-time radio simulation with BPSK/GMSK links at 250 kbps,
// obstacle-attenuated indoor propagation with Rician fast fading,
// decode-and-forward relays with equal-gain combining, packet framing
// with CRC-32, and the four experiments of the paper's Tables 2-4 and
// Figure 8. See DESIGN.md for the substitution rationale.
package testbed

import (
	"fmt"
	"math"

	"repro/internal/channel"
	"repro/internal/geom"
)

// Radio is one USRP node of the testbed.
type Radio struct {
	// Name labels the node in reports ("Pt", "relay-1", ...).
	Name string
	// Pos is the node position in metres.
	Pos geom.Point
}

// Env is the indoor radio environment.
type Env struct {
	// Indoor is the propagation model (log-distance + obstacles).
	Indoor channel.IndoorModel
	// TxPowerDBm is the transmit power every radio uses.
	TxPowerDBm float64
	// NoisePowerDBm is the receiver noise power over the signal
	// bandwidth.
	NoisePowerDBm float64
	// BitRate is the link bit rate (paper: 250 kbps); it only scales
	// simulated time, not error rates.
	BitRate float64
}

// DefaultEnv calibrates the environment so an unobstructed 2 m BPSK
// link is essentially error-free while the obstructed links of the
// Table 2/3 layouts land in the paper's BER ranges.
func DefaultEnv() Env {
	return Env{
		Indoor: channel.IndoorModel{
			RefDist:   1,
			RefLossDB: 40,
			Exponent:  3,
			RicianK:   8,
		},
		TxPowerDBm:    -14,
		NoisePowerDBm: -75,
		BitRate:       250e3,
	}
}

// MeanSNR returns the average per-bit SNR (linear) of the a-to-b link:
// transmit power minus path loss minus noise power. Fast fading
// multiplies this by |h|^2 per coherence block.
func (e Env) MeanSNR(a, b geom.Point) float64 {
	snrDB := e.TxPowerDBm - e.Indoor.PathLossDB(a, b) - e.NoisePowerDBm
	return math.Pow(10, snrDB/10)
}

// LinkK returns the Rician K of the a-to-b link (obstructions degrade
// toward Rayleigh).
func (e Env) LinkK(a, b geom.Point) float64 { return e.Indoor.LinkK(a, b) }

// Validate rejects unusable environments.
func (e Env) Validate() error {
	if e.BitRate <= 0 {
		return fmt.Errorf("testbed: bit rate %g must be positive", e.BitRate)
	}
	if e.Indoor.RefDist <= 0 || e.Indoor.Exponent <= 0 {
		return fmt.Errorf("testbed: indoor model needs positive RefDist and Exponent")
	}
	return nil
}

// Board returns an obstacle modelling the "thick board" of the Table 2
// experiment: a short wall with the given penetration loss.
func Board(a, b geom.Point, lossDB float64, label string) channel.Obstacle {
	return channel.Obstacle{Wall: geom.Segment{A: a, B: b}, LossDB: lossDB, Label: label}
}
