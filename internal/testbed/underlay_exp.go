package testbed

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/fec"
	"repro/internal/mathx"
	"repro/internal/modulation"
)

// UnderlayExperiment measures the packet error rate of an image transfer
// from two adjacent secondary transmitters to one receiver, with and
// without cooperation, at several transmit amplitudes — the Section 6.4
// underlay testbed (GMSK, 1500-byte packets, 474-packet image).
//
// Amplitudes scale the transmit voltage: power follows (A/RefAmplitude)^2
// relative to the SNR calibrated at RefAmplitude. The cooperative arm
// runs Alamouti across the two transmitters with each at full amplitude
// (as the testbed did); the non-cooperative arm uses one transmitter.
type UnderlayExperiment struct {
	// Image is the payload (paper: 474 x 1500 B).
	Image *Image
	// SNRRefDB is the mean per-bit SNR at the receiver when transmitting
	// at RefAmplitude.
	SNRRefDB float64
	// RefAmplitude anchors the amplitude scale (paper uses 800).
	RefAmplitude float64
	// RicianK is the fading K-factor of the 12-foot indoor link.
	RicianK float64
	// PhaseJitter is the standard deviation (radians) of the relative
	// carrier phase between the two cooperative transmitters. The paper's
	// testbed sent the same GMSK stream from both radios simultaneously;
	// over a stable 12-foot line-of-sight the carriers add near-
	// coherently, so small jitter means close to +6 dB of array gain.
	PhaseJitter float64
	// UseFEC wraps every frame in Hamming(7,4) — the channel-coding
	// block Section 2.3 omits and names as the natural extension. Coded
	// frames are 7/4 longer on air but survive scattered bit errors.
	UseFEC bool
	// Seed drives fading and bit noise.
	Seed int64
}

// PaperUnderlay returns the calibrated Section 6.4 configuration.
func PaperUnderlay(seed int64) UnderlayExperiment {
	return UnderlayExperiment{
		Image:        PaperImage(seed),
		SNRRefDB:     13.5,
		RefAmplitude: 800,
		RicianK:      4,
		PhaseJitter:  0.4,
		Seed:         seed,
	}
}

// PERResult is one Table 4 row.
type PERResult struct {
	Amplitude float64
	CoopPER   float64
	DirectPER float64
}

// frameScratch holds the per-run buffers the frame loop reuses: every
// frame in an image marshals to the same wire size, so one wire buffer,
// one bit expansion and one repacked-byte buffer serve the whole
// transfer. Corruption happens in the bit buffer; the wire stays
// read-only across both arms.
type frameScratch struct {
	wire []byte // marshalled frame
	bits []byte // bit-expanded wire, flipped in place
	data []byte // bits repacked for the CRC check
}

// Run measures both arms at the given amplitude. Every frame is
// marshalled, corrupted bit-by-bit at the fading-dependent GMSK BER,
// and checked through the CRC — a packet error is a CRC failure, as at
// a real receiver.
func (x UnderlayExperiment) Run(amplitude float64) (PERResult, error) {
	if x.Image == nil || len(x.Image.Frames) == 0 {
		return PERResult{}, fmt.Errorf("testbed: underlay experiment needs an image")
	}
	if amplitude <= 0 || x.RefAmplitude <= 0 {
		return PERResult{}, fmt.Errorf("testbed: amplitudes must be positive")
	}
	rng := mathx.NewRand(x.Seed)
	gamma0 := math.Pow(10, x.SNRRefDB/10) * (amplitude / x.RefAmplitude) * (amplitude / x.RefAmplitude)

	coopErrs, directErrs := 0, 0
	los := complex(math.Sqrt(x.RicianK/(x.RicianK+1)), 0)
	scatterVar := 1 / (x.RicianK + 1)
	var ws frameScratch
	for _, f := range x.Image.Frames {
		ws.wire = f.MarshalInto(ws.wire)
		wire := ws.wire

		// Fading is block-constant per frame on each transmit branch.
		h1 := los + mathx.ComplexCN(rng, scatterVar)
		h2 := los + mathx.ComplexCN(rng, scatterVar)

		// Non-cooperative: single branch.
		g1 := real(h1)*real(h1) + imag(h1)*imag(h1)
		pDirect := modulation.GMSKBERAWGN(g1 * gamma0)
		if x.frameLost(rng, wire, pDirect, &ws) {
			directErrs++
		}

		// Cooperative: both radios send the same stream at full
		// amplitude; the carriers add with a small residual phase
		// offset, so the received power is |h1 + h2 e^{j phi}|^2 gamma0.
		phi := rng.NormFloat64() * x.PhaseJitter
		sum := h1 + h2*complex(math.Cos(phi), math.Sin(phi))
		gc := real(sum)*real(sum) + imag(sum)*imag(sum)
		pCoop := modulation.GMSKBERAWGN(gc * gamma0)
		if x.frameLost(rng, wire, pCoop, &ws) {
			coopErrs++
		}
	}
	n := float64(len(x.Image.Frames))
	return PERResult{
		Amplitude: amplitude,
		CoopPER:   float64(coopErrs) / n,
		DirectPER: float64(directErrs) / n,
	}, nil
}

// RunTable evaluates the paper's amplitude sweep {800, 600, 400}.
func (x UnderlayExperiment) RunTable(amplitudes []float64) ([]PERResult, error) {
	if len(amplitudes) == 0 {
		amplitudes = []float64{800, 600, 400}
	}
	out := make([]PERResult, 0, len(amplitudes))
	for _, a := range amplitudes {
		r, err := x.Run(a)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// frameLost passes one frame through the bit-flip channel, optionally
// under Hamming(7,4), and reports whether the CRC rejects it. wire is
// read-only; the corruption happens in ws's bit buffer.
func (x UnderlayExperiment) frameLost(rng *rand.Rand, wire []byte, p float64, ws *frameScratch) bool {
	if !x.UseFEC {
		return corruptFrame(rng, wire, p, ws)
	}
	h := fec.Hamming74{}
	ws.bits = BitsInto(ws.bits, wire)
	coded, err := h.Encode(ws.bits)
	if err != nil {
		return true
	}
	for i := range coded {
		if rng.Float64() < p {
			coded[i] ^= 1
		}
	}
	bits, _, err := h.Decode(coded)
	if err != nil {
		return true
	}
	ws.data, err = BytesInto(ws.data, bits)
	if err != nil {
		return true
	}
	return !FrameIntact(ws.data)
}

// corruptFrame flips each wire bit independently with probability p and
// reports whether the CRC rejects the received frame. wire itself is
// never written; the flips land in ws.bits.
func corruptFrame(rng *rand.Rand, wire []byte, p float64, ws *frameScratch) bool {
	ws.bits = BitsInto(ws.bits, wire)
	bits := ws.bits
	flipped := false
	for i := range bits {
		if rng.Float64() < p {
			bits[i] ^= 1
			flipped = true
		}
	}
	if !flipped {
		return false
	}
	data, err := BytesInto(ws.data, bits)
	if err != nil {
		return true
	}
	ws.data = data
	return !FrameIntact(data)
}
