package testbed

import (
	"math"
	"testing"
)

func arqExp(t *testing.T) UnderlayExperiment {
	t.Helper()
	x := PaperUnderlay(31)
	img, err := NewImage(200, 1500, 31)
	if err != nil {
		t.Fatal(err)
	}
	x.Image = img
	return x
}

func TestRunARQValidation(t *testing.T) {
	x := arqExp(t)
	if _, err := x.RunARQ(0, 3); err == nil {
		t.Error("zero amplitude should fail")
	}
	if _, err := x.RunARQ(600, -1); err == nil {
		t.Error("negative retries should fail")
	}
	x.Image = nil
	if _, err := x.RunARQ(600, 3); err == nil {
		t.Error("missing image should fail")
	}
}

// TestARQZeroRetriesMatchesPER: with no retransmissions the delivered
// fraction equals 1 - coop PER of the plain experiment at that
// amplitude (same channel model, independent noise draws).
func TestARQZeroRetriesMatchesPER(t *testing.T) {
	x := arqExp(t)
	arq, err := x.RunARQ(400, 0)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := x.Run(400)
	if err != nil {
		t.Fatal(err)
	}
	if arq.MeanTransmissions != 1 {
		t.Errorf("no retries but %v transmissions per frame", arq.MeanTransmissions)
	}
	if math.Abs((1-arq.Delivered)-plain.CoopPER) > 0.08 {
		t.Errorf("single-shot loss %v vs PER %v", 1-arq.Delivered, plain.CoopPER)
	}
}

// TestARQRecoversEverything: at the paper's marginal amplitude 400
// (coop PER ~ 15-20%), a handful of retries delivers essentially the
// whole image.
func TestARQRecoversEverything(t *testing.T) {
	x := arqExp(t)
	r, err := x.RunARQ(400, 8)
	if err != nil {
		t.Fatal(err)
	}
	if r.Delivered < 0.995 {
		t.Errorf("delivered %v with 8 retries, want ~1", r.Delivered)
	}
	// The price: more than one transmission per frame on average.
	if r.MeanTransmissions <= 1.05 {
		t.Errorf("mean transmissions %v should reflect the retries", r.MeanTransmissions)
	}
}

// TestARQGoodputFallsWithAmplitude: lower transmit amplitude means more
// retransmissions per delivered bit.
func TestARQGoodputFallsWithAmplitude(t *testing.T) {
	x := arqExp(t)
	hi, err := x.RunARQ(800, 8)
	if err != nil {
		t.Fatal(err)
	}
	lo, err := x.RunARQ(400, 8)
	if err != nil {
		t.Fatal(err)
	}
	if lo.Goodput >= hi.Goodput {
		t.Errorf("goodput should fall with amplitude: %v vs %v", lo.Goodput, hi.Goodput)
	}
	if hi.Goodput <= 0 || hi.Goodput > 1 {
		t.Errorf("goodput %v outside (0, 1]", hi.Goodput)
	}
	if lo.MeanTransmissions <= hi.MeanTransmissions {
		t.Errorf("retransmissions should grow as amplitude falls: %v vs %v",
			lo.MeanTransmissions, hi.MeanTransmissions)
	}
}

func TestCombinerAblation(t *testing.T) {
	ber := func(combiner string) float64 {
		x := Table2Setup(41)
		x.Combiner = combiner
		x.Bits = 60000
		r, err := x.Run()
		if err != nil {
			t.Fatal(err)
		}
		return r.CoopBER
	}
	egc := ber("egc")
	mrc := ber("mrc")
	sel := ber("selection")
	// MRC weighs branches optimally; selection throws information away.
	if mrc > egc*1.3 {
		t.Errorf("MRC (%v) should not trail EGC (%v) badly", mrc, egc)
	}
	if sel < egc/1.5 {
		t.Errorf("selection (%v) should not beat EGC (%v) clearly", sel, egc)
	}
	// Default is EGC.
	x := Table2Setup(41)
	x.Bits = 60000
	def, err := x.Run()
	if err != nil {
		t.Fatal(err)
	}
	x.Combiner = "egc"
	named, err := x.Run()
	if err != nil {
		t.Fatal(err)
	}
	if def != named {
		t.Error("default combiner should be EGC")
	}
	// Unknown combiner errors.
	x.Combiner = "ratio"
	if _, err := x.Run(); err == nil {
		t.Error("unknown combiner should fail")
	}
}

// TestFECImprovesMarginalPER: Hamming(7,4) under the frame path lowers
// the packet error rate at the marginal amplitudes, where bit errors
// are scattered enough to correct.
func TestFECImprovesMarginalPER(t *testing.T) {
	plain := arqExp(t)
	coded := arqExp(t)
	coded.UseFEC = true
	for _, amp := range []float64{600, 400} {
		p, err := plain.Run(amp)
		if err != nil {
			t.Fatal(err)
		}
		c, err := coded.Run(amp)
		if err != nil {
			t.Fatal(err)
		}
		if c.CoopPER >= p.CoopPER && p.CoopPER > 0.02 {
			t.Errorf("A=%v: FEC coop PER %v should beat plain %v", amp, c.CoopPER, p.CoopPER)
		}
		if c.DirectPER > p.DirectPER*1.2+0.02 {
			t.Errorf("A=%v: FEC direct PER %v should not be much worse than plain %v", amp, c.DirectPER, p.DirectPER)
		}
	}
}
