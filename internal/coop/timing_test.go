package coop

import (
	"math"
	"testing"
)

func TestHopTimingValidation(t *testing.T) {
	cases := []struct{ mt, mr, b, n int }{
		{0, 1, 1, 100}, {1, 0, 1, 100}, {1, 1, 0, 100},
		{1, 1, 17, 100}, {1, 1, 1, 0}, {5, 1, 1, 100},
	}
	for _, c := range cases {
		if _, err := HopTiming(c.mt, c.mr, c.b, c.n, 1e5); err == nil {
			t.Errorf("HopTiming(%+v) should fail", c)
		}
	}
	if _, err := HopTiming(1, 1, 1, 100, 0); err == nil {
		t.Error("zero symbol rate should fail")
	}
}

func TestSISOTiming(t *testing.T) {
	// 1000 bits, BPSK at 100 ksym/s: 10 ms on air, no local steps.
	ti, err := HopTiming(1, 1, 1, 1000, 1e5)
	if err != nil {
		t.Fatal(err)
	}
	if ti.LocalBroadcastS != 0 || ti.CollectS != 0 {
		t.Errorf("SISO should have no local steps: %+v", ti)
	}
	if math.Abs(ti.LongHaulS-0.01) > 1e-12 {
		t.Errorf("SISO long-haul = %v, want 0.01", ti.LongHaulS)
	}
	base, err := SISOBaselineS(1, 1000, 1e5)
	if err != nil {
		t.Fatal(err)
	}
	if base != ti.Total() {
		t.Errorf("baseline %v != SISO total %v", base, ti.Total())
	}
}

func TestTimingComponents(t *testing.T) {
	// 2x3 Alamouti hop: broadcast (1x) + long-haul (rate 1) + 2 forwards.
	ti, err := HopTiming(2, 3, 2, 1200, 1e5)
	if err != nil {
		t.Fatal(err)
	}
	sym := 1200.0 / 2 / 1e5 // payload symbols / rate
	if math.Abs(ti.LocalBroadcastS-sym) > 1e-12 {
		t.Errorf("broadcast %v, want %v", ti.LocalBroadcastS, sym)
	}
	if math.Abs(ti.LongHaulS-sym) > 1e-12 {
		t.Errorf("long-haul %v, want %v (rate-1 code)", ti.LongHaulS, sym)
	}
	if math.Abs(ti.CollectS-2*sym) > 1e-12 {
		t.Errorf("collect %v, want %v", ti.CollectS, 2*sym)
	}
	// 3-antenna hop pays the rate-3/4 stretch on the long haul.
	t3, err := HopTiming(3, 1, 2, 1200, 1e5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(t3.LongHaulS-sym/0.75) > 1e-12 {
		t.Errorf("rate-3/4 long-haul %v, want %v", t3.LongHaulS, sym/0.75)
	}
}

func TestCooperationOverhead(t *testing.T) {
	// SISO overhead is exactly 1.
	if o, err := CooperationOverhead(1, 1, 2, 1000, 1e5); err != nil || o != 1 {
		t.Errorf("SISO overhead = %v, %v", o, err)
	}
	// Cooperation always costs airtime, monotonically with mr.
	o21, _ := CooperationOverhead(2, 1, 2, 1000, 1e5)
	o22, _ := CooperationOverhead(2, 2, 2, 1000, 1e5)
	o23, _ := CooperationOverhead(2, 3, 2, 1000, 1e5)
	if !(1 < o21 && o21 < o22 && o22 < o23) {
		t.Errorf("overhead not increasing: %v %v %v", o21, o22, o23)
	}
	// 2x1 MISO = broadcast + long haul = 2x SISO airtime.
	if math.Abs(o21-2) > 1e-12 {
		t.Errorf("2x1 overhead = %v, want 2", o21)
	}
	// Denser constellations do not change the ratio.
	o16, _ := CooperationOverhead(2, 2, 16, 1600, 1e5)
	if math.Abs(o16-o22) > 1e-12 {
		t.Errorf("overhead ratio should be b-independent: %v vs %v", o16, o22)
	}
}
