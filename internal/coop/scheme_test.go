package coop

// Derivation used by the energy scaling and these tests: with
// per-antenna per-slot symbol energy ea and unit-variance noise, an
// orthogonal STBC's matched filter yields per-symbol SNR
// ||H||_F^2 * ea, so per-bit gamma_b = ||H||^2 ea / b. Setting
// ea = SNRPerBit * b * R / mt makes gamma_b = ||H||^2 SNRPerBit R / mt,
// i.e. the paper's normalisation with the code rate R folded in (R = 1
// for SISO/Alamouti, 3/4 for the 3- and 4-antenna designs).

import (
	"math"
	"testing"
)

func base(mt, mr int) Config {
	return Config{
		Mt: mt, Mr: mr, B: 1,
		SNRPerBit: math.Pow(10, 1.2), // 12 dB
		Bits:      200000,
		Seed:      1,
	}
}

func TestValidate(t *testing.T) {
	good := base(2, 2)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*Config){
		func(c *Config) { c.Mt = 0 },
		func(c *Config) { c.Mr = 5 },
		func(c *Config) { c.B = 0 },
		func(c *Config) { c.B = 17 },
		func(c *Config) { c.SNRPerBit = 0 },
		func(c *Config) { c.LocalSNRPerBit = -1 },
		func(c *Config) { c.ForwardSNR = -1 },
		func(c *Config) { c.Bits = 0 },
	}
	for i, mutate := range cases {
		c := base(2, 2)
		mutate(&c)
		if c.Validate() == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestSchemeNames(t *testing.T) {
	cases := []struct {
		mt, mr int
		want   string
	}{
		{1, 1, "SISO"}, {2, 1, "MISO"}, {1, 2, "SIMO"}, {3, 2, "MIMO"},
	}
	for _, c := range cases {
		cfg := base(c.mt, c.mr)
		if got := cfg.SchemeName(); got != c.want {
			t.Errorf("%dx%d = %s, want %s", c.mt, c.mr, got, c.want)
		}
	}
}

// TestMatchesClosedForm is the package's core contract: with ideal local
// links, the measured end-to-end BER approaches the eq. (5)/(6) average
// with the code rate folded in, for every scheme.
func TestMatchesClosedForm(t *testing.T) {
	for _, pair := range [][2]int{{1, 1}, {2, 1}, {1, 2}, {2, 2}, {3, 1}, {4, 1}} {
		cfg := base(pair[0], pair[1])
		// Keep predicted BER around 1e-2..1e-1 so 200k bits give tight
		// estimates: lower SNR for low diversity, higher for high.
		switch pair[0] * pair[1] {
		case 1:
			cfg.SNRPerBit = math.Pow(10, 0.8)
		case 2:
			cfg.SNRPerBit = math.Pow(10, 0.6)
		default:
			cfg.SNRPerBit = math.Pow(10, 0.4)
		}
		got, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		want := PredictBER(cfg)
		if math.Abs(got.BER-want) > 0.15*want+2e-4 {
			t.Errorf("%dx%d: measured %v vs closed form %v", pair[0], pair[1], got.BER, want)
		}
		if got.LocalBER != 0 {
			t.Errorf("%dx%d: ideal local links reported BER %v", pair[0], pair[1], got.LocalBER)
		}
	}
}

func TestQPSKMatchesClosedForm(t *testing.T) {
	cfg := base(2, 2)
	cfg.B = 2
	cfg.SNRPerBit = math.Pow(10, 0.6)
	got, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := PredictBER(cfg)
	if math.Abs(got.BER-want) > 0.15*want+2e-4 {
		t.Errorf("QPSK 2x2: measured %v vs %v", got.BER, want)
	}
}

// TestDiversityOrdering: more cooperating nodes, fewer errors, at equal
// SNRPerBit — the gain the whole paper rides on.
func TestDiversityOrdering(t *testing.T) {
	snr := math.Pow(10, 0.9)
	ber := func(mt, mr int) float64 {
		cfg := base(mt, mr)
		cfg.SNRPerBit = snr
		r, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return r.BER
	}
	siso := ber(1, 1)
	miso := ber(2, 1)
	mimo := ber(2, 2)
	if !(siso > 1.5*miso && miso > 1.5*mimo) {
		t.Errorf("diversity ordering violated: %v / %v / %v", siso, miso, mimo)
	}
}

// TestLocalErrorsPropagate: corrupted Step 1 copies floor the end-to-end
// BER no matter how strong the long-haul link is.
func TestLocalErrorsPropagate(t *testing.T) {
	cfg := base(2, 1)
	cfg.SNRPerBit = 1e4                    // long-haul essentially error-free
	cfg.LocalSNRPerBit = math.Pow(10, 0.3) // ~2 dB: sloppy broadcast
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.LocalBER < 1e-3 {
		t.Fatalf("local BER %v too small to exercise propagation", r.LocalBER)
	}
	if r.BER < r.LocalBER/10 {
		t.Errorf("end-to-end BER %v should be floored by local errors %v", r.BER, r.LocalBER)
	}
	// Ideal local links remove the floor entirely.
	cfg.LocalSNRPerBit = 0
	clean, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if clean.BER > r.BER/5 {
		t.Errorf("clean run %v should be far below corrupted %v", clean.BER, r.BER)
	}
}

// TestForwardingNoiseDegrades: Step 3 sample forwarding at finite SNR
// costs BER relative to ideal collection.
func TestForwardingNoiseDegrades(t *testing.T) {
	cfg := base(2, 2)
	cfg.SNRPerBit = math.Pow(10, 0.6)
	ideal, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.ForwardSNR = 1 // 0 dB forwarding: very noisy
	noisy, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if noisy.BER <= ideal.BER {
		t.Errorf("forwarding noise should degrade: %v vs %v", noisy.BER, ideal.BER)
	}
	// Very clean forwarding approaches ideal.
	cfg.ForwardSNR = 1e6
	clean, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(clean.BER-ideal.BER) > 0.2*ideal.BER+1e-4 {
		t.Errorf("clean forwarding %v should match ideal %v", clean.BER, ideal.BER)
	}
}

func TestDeterminism(t *testing.T) {
	cfg := base(2, 2)
	cfg.Bits = 30000
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestTinyBitCountRoundsUp(t *testing.T) {
	cfg := base(2, 1)
	cfg.Bits = 1 // less than one block
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Bits < 2 {
		t.Errorf("should run at least one block, got %d bits", r.Bits)
	}
}

func TestCoherenceBlocksRespected(t *testing.T) {
	// A long coherence time with few bits means one channel draw: the
	// measured BER is then strongly seed-dependent, while per-block
	// redraws average out. This is a smoke check that the knob wires
	// through (exact distributional tests live in internal/channel).
	cfg := base(1, 1)
	cfg.Bits = 2000
	cfg.CoherenceBlocks = 1 << 20
	var spread float64
	for seed := int64(0); seed < 4; seed++ {
		cfg.Seed = seed
		r, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		spread += math.Abs(r.BER - PredictBER(cfg))
	}
	if spread == 0 {
		t.Error("single-draw runs should scatter around the average")
	}
}
