package coop

import (
	"fmt"

	"repro/internal/stbc"
)

// Timing accounts the airtime of one cooperative hop under the paper's
// time-slot structure: Step 1's broadcast occupies one local slot,
// Step 2's space-time codeword stretches payload time by 1/R (the code
// rate), and Step 3's collection serialises mr-1 local forwards — the
// latency price of cooperation that the energy equations do not show.
type Timing struct {
	// LocalBroadcastS is Step 1's duration (0 when mt = 1).
	LocalBroadcastS float64
	// LongHaulS is Step 2's duration including the STBC rate penalty.
	LongHaulS float64
	// CollectS is Step 3's duration (0 when mr = 1).
	CollectS float64
}

// Total returns the hop's end-to-end airtime.
func (t Timing) Total() float64 { return t.LocalBroadcastS + t.LongHaulS + t.CollectS }

// HopTiming computes the airtime of transporting n bits over one
// cooperative hop at symbol rate symbolRate (symbols/s) with
// constellation size b: every link moves b bits per symbol; local links
// are uncoded, the long-haul link pays the orthogonal design's rate.
func HopTiming(mt, mr, b, n int, symbolRate float64) (Timing, error) {
	if mt < 1 || mr < 1 {
		return Timing{}, fmt.Errorf("coop: node counts %dx%d must be positive", mt, mr)
	}
	if b < 1 || b > 16 {
		return Timing{}, fmt.Errorf("coop: constellation size %d outside [1, 16]", b)
	}
	if n < 1 {
		return Timing{}, fmt.Errorf("coop: bit count %d must be positive", n)
	}
	if symbolRate <= 0 {
		return Timing{}, fmt.Errorf("coop: symbol rate %g must be positive", symbolRate)
	}
	code, err := stbc.ForTransmitters(mt)
	if err != nil {
		return Timing{}, err
	}
	symbolTime := 1 / symbolRate
	payloadSymbols := float64(n) / float64(b)
	var t Timing
	if mt > 1 {
		t.LocalBroadcastS = payloadSymbols * symbolTime
	}
	t.LongHaulS = payloadSymbols / code.Rate() * symbolTime
	if mr > 1 {
		t.CollectS = float64(mr-1) * payloadSymbols / code.Rate() * symbolTime
	}
	return t, nil
}

// SISOBaselineS is the airtime of the same payload over a plain SISO
// link — the reference the cooperation overhead is measured against.
func SISOBaselineS(b, n int, symbolRate float64) (float64, error) {
	t, err := HopTiming(1, 1, b, n, symbolRate)
	if err != nil {
		return 0, err
	}
	return t.Total(), nil
}

// CooperationOverhead returns hop airtime relative to the SISO baseline:
// the "multiple time slots" cost of Section 2.2's schemes.
func CooperationOverhead(mt, mr, b, n int, symbolRate float64) (float64, error) {
	hop, err := HopTiming(mt, mr, b, n, symbolRate)
	if err != nil {
		return 0, err
	}
	base, err := SISOBaselineS(b, n, symbolRate)
	if err != nil {
		return 0, err
	}
	return hop.Total() / base, nil
}
