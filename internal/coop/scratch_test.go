package coop

import (
	"testing"
)

// TestRunWithMatchesRun pins the workspace path to the pooled one: the
// same config must yield identical results whether the workspace is
// fresh, pooled, or reused across differently shaped runs (buffer reuse
// must never leak state between runs).
func TestRunWithMatchesRun(t *testing.T) {
	cfgs := []Config{
		{Mt: 2, Mr: 2, B: 2, SNRPerBit: 10, Bits: 1200, Seed: 7},
		{Mt: 4, Mr: 3, B: 4, SNRPerBit: 8, LocalSNRPerBit: 12, ForwardSNR: 20, Bits: 3000, Seed: 11, CoherenceBlocks: 3},
		{Mt: 1, Mr: 1, B: 1, SNRPerBit: 6, Bits: 600, Seed: 3},
	}
	want := make([]Result, len(cfgs))
	for i, cfg := range cfgs {
		r, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = r
	}
	// One workspace reused across all shapes, twice over: results must
	// not depend on what ran before.
	ws := NewWorkspace()
	for pass := 0; pass < 2; pass++ {
		for i, cfg := range cfgs {
			r, err := RunWith(ws, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if r != want[i] {
				t.Errorf("pass %d cfg %d: RunWith = %+v, Run = %+v", pass, i, r, want[i])
			}
		}
	}
}

// TestTransportIntoMatchesTransport checks the in-place relay path
// produces the same bits and rates as the allocating one.
func TestTransportIntoMatchesTransport(t *testing.T) {
	cfg := Config{Mt: 2, Mr: 2, B: 2, SNRPerBit: 9, LocalSNRPerBit: 10, Bits: 1200, Seed: 5}
	src := make([]byte, 1200)
	for i := range src {
		src[i] = byte(i % 2)
	}
	wantOut, wantRes, err := Transport(cfg, src)
	if err != nil {
		t.Fatal(err)
	}
	ws := NewWorkspace()
	dst := make([]byte, len(src))
	res, err := TransportInto(ws, cfg, src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if res != wantRes {
		t.Errorf("TransportInto res = %+v, Transport = %+v", res, wantRes)
	}
	for i := range dst {
		if dst[i] != wantOut[i] {
			t.Fatalf("bit %d: TransportInto = %d, Transport = %d", i, dst[i], wantOut[i])
		}
	}
	if _, err := TransportInto(ws, cfg, src, make([]byte, len(src)-1)); err == nil {
		t.Error("short dst accepted")
	}
}

// TestRunWithAllocationFree proves the tentpole claim: a warmed
// workspace runs the whole hop kernel without allocating.
func TestRunWithAllocationFree(t *testing.T) {
	cfg := Config{Mt: 2, Mr: 2, B: 2, SNRPerBit: 10, Bits: 1200, Seed: 1}
	ws := NewWorkspace()
	if _, err := RunWith(ws, cfg); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := RunWith(ws, cfg); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("RunWith allocates %.1f objects per run on a warm workspace, want 0", allocs)
	}
}
