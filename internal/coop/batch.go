package coop

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/mathx"
	"repro/internal/stbc"
)

// The batched structure-of-arrays hop engine. The scalar transport loop
// (transport_scalar.go) walks one STBC block at a time: every block
// pays a modulate call, per-antenna encodes, a 4x4-at-most matrix
// multiply, a matched-filter decode and per-symbol hard decisions —
// short, pointer-chased loops the compiler cannot do much with. The
// batch engine processes blocks in tiles of batchTile, one SoA lane per
// generator cell / channel tap / receive sample, so the same arithmetic
// runs as long, branch-free passes over contiguous memory.
//
// Bit-identity contract: for every configuration the batch engine
// consumes exactly the rng stream the scalar loop consumes (randomness
// is drawn block-by-block in the scalar order into noise tapes, then
// applied in compute passes) and performs the same floating-point
// operations in the same order per block. TestTransportBatchMatchesScalar
// pins this across codes, constellations and impairment combinations;
// the experiment golden files pin it end to end.

// Tile width bounds and the per-tile footprint budget. The tile must be
// long enough that per-pass overhead amortises to nothing, and small
// enough that one tile's lanes stay cache-resident: tileFor picks the
// widest tile whose complex lanes fit the budget. Tiling is invisible
// to the rng stream — the draw pass runs block by block regardless of
// where tile boundaries fall — so the width is a pure tuning knob.
const (
	batchTileMin    = 64
	batchTileMax    = 512
	batchTileBudget = 96 << 10 // bytes of hot lane data per tile
)

// tileFor returns the tile width for a hop touching the given number of
// complex lanes per block.
func tileFor(lanes int) int {
	tile := batchTileBudget / (lanes * 16)
	if tile < batchTileMin {
		return batchTileMin
	}
	if tile > batchTileMax {
		return batchTileMax
	}
	return tile
}

// batchScratch holds every lane buffer one tile touches. It lives
// inside Workspace so warmed workspaces run the batch engine without
// allocating.
type batchScratch struct {
	h        mathx.BatchCF64 // channel taps, lane j*mt+a
	x        mathx.BatchCF64 // encoded cells, lane t*mt+a
	y        mathx.BatchCF64 // receive samples, lane t*mr+j
	est      mathx.BatchCF64 // decoded symbol estimates, lane k
	awgn     mathx.BatchCF64 // long-haul noise tape, lane t*mr+j
	fwd      mathx.BatchCF64 // forwarding noise tape, lane t*(mr-1)+j-1
	locNoise mathx.BatchCF64 // broadcast noise tape, lane (m-1)*K+k
	locSyms  mathx.BatchCF64 // broadcast symbols, lane k
	noisy    mathx.BatchCF64 // broadcast symbols + noise, lane k
	syms     []mathx.BatchCF64
	symsPtr  []*mathx.BatchCF64
	copies   []byte // per-antenna tile bit copies, antenna-major
	fs       []float64
	dec      stbc.BatchWorkspace
}

// ensureSyms sizes count per-antenna symbol batches of k lanes by n.
func (bs *batchScratch) ensureSyms(count, k, n int) {
	for cap(bs.syms) < count {
		bs.syms = append(bs.syms[:cap(bs.syms)], mathx.BatchCF64{})
	}
	bs.syms = bs.syms[:count]
	for cap(bs.symsPtr) < count {
		bs.symsPtr = append(bs.symsPtr[:cap(bs.symsPtr)], nil)
	}
	bs.symsPtr = bs.symsPtr[:count]
	for i := range bs.syms {
		bs.syms[i].Resize(k, n)
		bs.symsPtr[i] = &bs.syms[i]
	}
}

// transport pushes src through one cooperative hop with the batched
// engine, writing decoded bits into dst. It is the default path under
// Run/RunWith/TransportInto; transportScalar is the per-block oracle.
func transport(ws *Workspace, cfg Config, src, dst []byte) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	ws.rng.Reseed(cfg.Seed)
	rng := ws.rng.Rand
	mod, err := ws.scheme(cfg.B)
	if err != nil {
		return Result{}, err
	}
	code, err := stbc.ForTransmitters(cfg.Mt)
	if err != nil {
		return Result{}, err
	}
	bitsPerBlock := code.BlockSymbols() * cfg.B
	if len(src) == 0 || len(src)%bitsPerBlock != 0 {
		return Result{}, fmt.Errorf("coop: %d source bits not a positive multiple of the %d-bit block",
			len(src), bitsPerBlock)
	}
	if len(dst) != len(src) {
		return Result{}, fmt.Errorf("coop: dst holds %d bits, need %d", len(dst), len(src))
	}
	blocks := len(src) / bitsPerBlock
	res := Result{Scheme: cfg.SchemeName(), Bits: len(src)}

	// Per-antenna per-slot symbol energy; see transportScalar.
	ea := cfg.SNRPerBit * float64(cfg.B) * code.Rate() / float64(cfg.Mt)
	scale := complex(math.Sqrt(ea), 0)

	mt, mr := cfg.Mt, cfg.Mr
	kSyms := code.BlockSymbols()
	tUses := code.BlockLen()
	localFinite := mt > 1 && cfg.LocalSNRPerBit != 0 && !math.IsInf(cfg.LocalSNRPerBit, 1)
	fwdOn := mr > 1 && cfg.ForwardSNR > 0

	ws.fading.Reset(rng, mt, mr, cfg.CoherenceBlocks, 0)

	bs := &ws.batch
	var bitErrs, localErrs, localBits int
	sqAWGN := math.Sqrt(1.0 / 2) // channel.AWGN with unit variance
	var sqLocal float64
	if localFinite {
		n0 := 1 / (float64(mod.BitsPerSymbol) * cfg.LocalSNRPerBit)
		sqLocal = math.Sqrt(n0 / 2)
	}

	// Hot complex lanes per block: channel taps, noise tapes, encoded
	// cells, receive samples, symbol lanes and estimates.
	hotLanes := mr*mt + 2*tUses*mr + tUses*mt + 3*kSyms
	if localFinite {
		hotLanes += (mt-1)*kSyms + (mt+1)*kSyms
	}
	if fwdOn {
		hotLanes += tUses * (mr - 1)
	}
	tile := tileFor(hotLanes)

	for b0 := 0; b0 < blocks; b0 += tile {
		n := blocks - b0
		if n > tile {
			n = tile
		}
		srcTile := src[b0*bitsPerBlock : (b0+n)*bitsPerBlock]
		dstTile := dst[b0*bitsPerBlock : (b0+n)*bitsPerBlock]
		tileBits := n * bitsPerBlock

		// Draw pass: consume the rng exactly as the scalar loop does,
		// block by block — broadcast noise, channel redraw, long-haul
		// noise, forwarding noise — into SoA tapes. Fixed-variance
		// tapes are stored pre-scaled (the scalar path also scales at
		// draw time), so the compute passes just add them.
		bs.h.Resize(mr*mt, n)
		bs.awgn.Resize(tUses*mr, n)
		if localFinite {
			bs.locNoise.Resize((mt-1)*kSyms, n)
		}
		if fwdOn {
			bs.fwd.Resize(tUses*(mr-1), n)
		}
		for i := 0; i < n; i++ {
			if localFinite {
				idx := i
				for l := 0; l < (mt-1)*kSyms; l++ {
					bs.locNoise.Data[idx] = complex(rng.NormFloat64()*sqLocal, rng.NormFloat64()*sqLocal)
					idx += n
				}
			}
			ws.fading.NextBatch(&bs.h, i)
			idx := i
			for l := 0; l < tUses*mr; l++ {
				bs.awgn.Data[idx] = complex(rng.NormFloat64()*sqAWGN, rng.NormFloat64()*sqAWGN)
				idx += n
			}
			if fwdOn {
				idx = i
				for l := 0; l < tUses*(mr-1); l++ {
					bs.fwd.Data[idx] = complex(rng.NormFloat64(), rng.NormFloat64())
					idx += n
				}
			}
		}

		// Step 1: intra-cluster broadcast. Each non-head antenna's copy
		// is the hard decision on the head's symbols plus its own noise.
		if localFinite {
			bs.locSyms.Resize(kSyms, n)
			if err := mod.ModulateBatchInto(srcTile, &bs.locSyms, kSyms, n); err != nil {
				panic(err) // tile sizes are whole blocks by construction
			}
			bs.noisy.Resize(kSyms, n)
			if cap(bs.copies) < mt*tileBits {
				bs.copies = make([]byte, mt*tileBits)
			}
			bs.copies = bs.copies[:mt*tileBits]
			for m := 1; m < mt; m++ {
				for k := 0; k < kSyms; k++ {
					sL := bs.locSyms.Lane(k)[:n]
					nzL := bs.locNoise.Lane((m-1)*kSyms + k)[:n]
					dL := bs.noisy.Lane(k)[:n]
					for i := range dL {
						dL[i] = sL[i] + nzL[i]
					}
				}
				cb := bs.copies[m*tileBits : (m+1)*tileBits]
				if err := mod.DemodulateBatchInto(&bs.noisy, kSyms, n, cb); err != nil {
					panic(err)
				}
				localBits += tileBits
				for i, v := range cb {
					if v != srcTile[i] {
						localErrs++
					}
				}
			}
		}

		// Step 2: encode every antenna's copy and cross the long haul.
		if localFinite {
			bs.ensureSyms(mt, kSyms, n)
			for a := 0; a < mt; a++ {
				bits := srcTile
				if a > 0 {
					bits = bs.copies[a*tileBits : (a+1)*tileBits]
				}
				if err := mod.ModulateBatchInto(bits, &bs.syms[a], kSyms, n); err != nil {
					panic(err)
				}
				scaleLanes(&bs.syms[a], kSyms, n, scale)
			}
			code.EncodeBatchPerAntennaInto(bs.symsPtr[:mt], &bs.x)
		} else {
			bs.ensureSyms(1, kSyms, n)
			if err := mod.ModulateBatchInto(srcTile, &bs.syms[0], kSyms, n); err != nil {
				panic(err)
			}
			scaleLanes(&bs.syms[0], kSyms, n, scale)
			code.EncodeBatchInto(&bs.syms[0], &bs.x)
		}
		code.TransmitBatchInto(&bs.x, &bs.h, &bs.awgn, &bs.y, mr)

		// Step 3: sample forwarding adds noise scaled by the block's
		// mean sample power (forwardNoise in the scalar path).
		if fwdOn {
			if cap(bs.fs) < n {
				bs.fs = make([]float64, n)
			}
			fs := bs.fs[:n]
			taps := mr * mt
			for i := range fs {
				frob := 0.0
				for l := 0; l < taps; l++ {
					v := bs.h.At(l, i)
					re, im := real(v), imag(v)
					frob += re*re + im*im
				}
				meanPower := ea * frob / float64(mr)
				variance := meanPower / cfg.ForwardSNR
				fs[i] = math.Sqrt(variance / 2)
			}
			for t := 0; t < tUses; t++ {
				for j := 1; j < mr; j++ {
					yL := bs.y.Lane(t*mr + j)[:n]
					nzL := bs.fwd.Lane(t*(mr-1) + j - 1)[:n]
					for i := range yL {
						nz := nzL[i]
						yL[i] += complex(real(nz)*fs[i], imag(nz)*fs[i])
					}
				}
			}
		}

		// Joint decode and hard decisions at the head of B: estimates are
		// rescaled by the same complex division the scalar path applies,
		// fused into the decision pass.
		code.DecodeBatchInto(&bs.dec, &bs.y, &bs.h, mr, &bs.est)
		if err := mod.DemodulateBatchDivInto(&bs.est, scale, kSyms, n, dstTile); err != nil {
			panic(err)
		}
		for i, v := range dstTile {
			if v != srcTile[i] {
				bitErrs++
			}
		}
	}
	res.BER = float64(bitErrs) / float64(res.Bits)
	if localBits > 0 {
		res.LocalBER = float64(localErrs) / float64(localBits)
	}
	return res, nil
}

// scaleLanes applies the per-antenna energy scale in place, the same
// per-symbol multiply the scalar path runs after modulating.
func scaleLanes(b *mathx.BatchCF64, lanes, n int, scale complex128) {
	for k := 0; k < lanes; k++ {
		lane := b.Lane(k)[:n]
		for i := range lane {
			lane[i] *= scale
		}
	}
}

// RunBatchWith executes n Monte-Carlo trials of the hop on a
// caller-owned workspace, drawing each trial's seed from rng exactly as
// the per-trial coop.ber kernel does, and folds the per-trial BERs into
// one running statistic. It is the chunk-level entry point the
// coop.ber.batch kernel registers: bit-identical to n sequential
// RunWith calls with c.Seed = rng.Int63() per trial.
func RunBatchWith(ws *Workspace, cfg Config, rng *rand.Rand, n int) (mathx.Running, error) {
	var acc mathx.Running
	if err := cfg.Validate(); err != nil {
		return acc, err
	}
	c := cfg
	for i := 0; i < n; i++ {
		c.Seed = rng.Int63()
		r, err := RunWith(ws, c)
		if err != nil {
			return acc, err
		}
		acc.Add(r.BER)
	}
	return acc, nil
}
