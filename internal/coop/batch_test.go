package coop

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"testing"

	"repro/internal/mathx"
)

// batchIdentityConfigs sweeps the impairment space the transport
// branches on: every antenna geometry, multi-bit constellations, finite
// and ideal local links, forwarding noise and channel coherence.
func batchIdentityConfigs() []Config {
	var cfgs []Config
	for _, geom := range [][2]int{{1, 1}, {2, 1}, {1, 2}, {2, 2}, {3, 2}, {4, 4}} {
		cfgs = append(cfgs, Config{
			Mt: geom[0], Mr: geom[1], B: 1, SNRPerBit: 8, Bits: 240, Seed: 4,
		})
	}
	cfgs = append(cfgs,
		Config{Mt: 2, Mr: 2, B: 2, SNRPerBit: 12, Bits: 256, Seed: 5},
		Config{Mt: 3, Mr: 1, B: 4, SNRPerBit: 18, Bits: 480, Seed: 6},
		Config{Mt: 2, Mr: 2, B: 1, SNRPerBit: 8, LocalSNRPerBit: 9, Bits: 240, Seed: 7},
		Config{Mt: 4, Mr: 2, B: 2, SNRPerBit: 10, LocalSNRPerBit: 6, Bits: 360, Seed: 8},
		Config{Mt: 2, Mr: 2, B: 1, SNRPerBit: 8, LocalSNRPerBit: math.Inf(1), Bits: 240, Seed: 9},
		Config{Mt: 2, Mr: 3, B: 1, SNRPerBit: 8, ForwardSNR: 14, Bits: 240, Seed: 10},
		Config{Mt: 3, Mr: 3, B: 2, SNRPerBit: 12, LocalSNRPerBit: 8, ForwardSNR: 11, Bits: 300, Seed: 11},
		Config{Mt: 2, Mr: 2, B: 1, SNRPerBit: 8, CoherenceBlocks: 4, Bits: 400, Seed: 12},
		Config{Mt: 4, Mr: 4, B: 2, SNRPerBit: 10, LocalSNRPerBit: 7, ForwardSNR: 13, CoherenceBlocks: 3, Bits: 600, Seed: 13},
	)
	return cfgs
}

// TestTransportBatchMatchesScalar is the tentpole identity: the SoA
// engine behind RunWith must reproduce the per-block scalar oracle's
// Result — the BER, not an approximation of it — for every impairment
// combination and several seeds each.
func TestTransportBatchMatchesScalar(t *testing.T) {
	wsB, wsS := NewWorkspace(), NewWorkspace()
	for _, cfg := range batchIdentityConfigs() {
		for ds := int64(0); ds < 3; ds++ {
			c := cfg
			c.Seed += ds * 1000003
			name := fmt.Sprintf("%dx%d/b=%d/loc=%v/fwd=%v/coh=%d/seed=%d",
				c.Mt, c.Mr, c.B, c.LocalSNRPerBit, c.ForwardSNR, c.CoherenceBlocks, c.Seed)
			got, err := RunWith(wsB, c)
			if err != nil {
				t.Fatalf("%s: batch: %v", name, err)
			}
			want, err := RunScalarWith(wsS, c)
			if err != nil {
				t.Fatalf("%s: scalar: %v", name, err)
			}
			if got != want {
				t.Fatalf("%s: batch %+v differs from scalar %+v", name, got, want)
			}
		}
	}
}

// TestRunBatchWithMatchesScalarLoop checks the chunk kernel: one
// RunBatchWith call must equal a hand loop of scalar runs reseeded
// from the same stream — the contract the simkern registration and the
// cluster shard executor distribute.
func TestRunBatchWithMatchesScalarLoop(t *testing.T) {
	cfg := Config{Mt: 2, Mr: 2, B: 1, SNRPerBit: 9, LocalSNRPerBit: 10, Bits: 96, Seed: 1}
	const n = 40

	ws := NewWorkspace()
	got, err := RunBatchWith(ws, cfg, mathx.NewRand(77), n)
	if err != nil {
		t.Fatal(err)
	}

	rng := mathx.NewRand(77)
	var want mathx.Running
	c := cfg
	for i := 0; i < n; i++ {
		c.Seed = rng.Int63()
		r, err := RunScalarWith(ws, c)
		if err != nil {
			t.Fatal(err)
		}
		want.Add(r.BER)
	}
	if got != want {
		t.Fatalf("RunBatchWith %+v differs from scalar loop %+v", got, want)
	}
}

// TestTransportBatchParallelWorkers runs the batch engine on every
// impairment combination from several goroutines at once (one
// workspace per worker, as the pool hands out) and checks each against
// the scalar oracle — under -race this also proves the SoA scratch
// holds no hidden shared state.
func TestTransportBatchParallelWorkers(t *testing.T) {
	cfgs := batchIdentityConfigs()
	want := make([]Result, len(cfgs))
	ws := NewWorkspace()
	for i, cfg := range cfgs {
		r, err := RunScalarWith(ws, cfg)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = r
	}

	workers := runtime.GOMAXPROCS(0)
	if workers > 4 {
		workers = 4
	}
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ws := GetWorkspace()
			defer PutWorkspace(ws)
			for round := 0; round < 3; round++ {
				for i, cfg := range cfgs {
					got, err := RunWith(ws, cfg)
					if err != nil {
						errs <- err
						return
					}
					if got != want[i] {
						errs <- fmt.Errorf("config %d: parallel batch %+v differs from scalar %+v", i, got, want[i])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
