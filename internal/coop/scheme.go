// Package coop simulates the cooperative communication schemes of
// Section 2.2 at symbol level: one hop of the data relay path between a
// transmit cluster A (mt nodes, head x) and a receive cluster B (mr
// nodes, head y).
//
//	Step 1  intra/local broadcast at A   (AWGN links; may corrupt copies)
//	Step 2  long-haul mt-by-mr STBC transmission over flat Rayleigh fading
//	Step 3  intra/local sample forwarding at B; head decodes jointly
//
// Unlike the energy-level analyses (internal/overlay, internal/underlay)
// this package transports actual bits, so it exposes the effects the
// closed forms abstract away: intra-cluster bit errors desynchronise the
// cooperative antennas' copies, the rate-3/4 codes pay their rate
// penalty, and sample forwarding adds noise before joint decoding.
package coop

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"repro/internal/channel"
	"repro/internal/mathx"
	"repro/internal/modulation"
	"repro/internal/stbc"
)

// Config parameterises one cooperative hop simulation.
type Config struct {
	// Mt and Mr are the cooperating node counts (1..4 each).
	Mt, Mr int
	// B is the constellation size in bits per symbol.
	B int
	// SNRPerBit is the long-haul mean per-bit receive SNR scale: the
	// paper's gamma_b equals ||H||_F^2 * SNRPerBit / mt per codeword.
	SNRPerBit float64
	// LocalSNRPerBit is the intra-cluster per-bit SNR for Step 1's
	// broadcast; +Inf (or 0, meaning "ideal") disables local errors.
	LocalSNRPerBit float64
	// ForwardSNR is the Step 3 sample-forwarding SNR (signal-to-added-
	// noise per sample); 0 means ideal forwarding.
	ForwardSNR float64
	// CoherenceBlocks redraws the channel every so many STBC blocks;
	// <= 0 redraws per block.
	CoherenceBlocks int
	// Bits is the number of information bits to push through the hop.
	Bits int
	// Seed drives all randomness.
	Seed int64
}

// Validate rejects unusable configurations.
func (c Config) Validate() error {
	switch {
	case c.Mt < 1 || c.Mt > 4 || c.Mr < 1 || c.Mr > 4:
		return fmt.Errorf("coop: node counts %dx%d outside [1, 4]", c.Mt, c.Mr)
	case c.B < 1 || c.B > 16:
		return fmt.Errorf("coop: constellation size %d outside [1, 16]", c.B)
	case c.SNRPerBit <= 0:
		return fmt.Errorf("coop: SNR per bit %g must be positive", c.SNRPerBit)
	case c.LocalSNRPerBit < 0:
		return fmt.Errorf("coop: local SNR %g must be non-negative", c.LocalSNRPerBit)
	case c.ForwardSNR < 0:
		return fmt.Errorf("coop: forward SNR %g must be non-negative", c.ForwardSNR)
	case c.Bits < 1:
		return fmt.Errorf("coop: bit count %d must be positive", c.Bits)
	}
	return nil
}

// SchemeName returns the paper's name for the hop configuration.
func (c Config) SchemeName() string {
	return string(linkKind(c.Mt, c.Mr))
}

func linkKind(mt, mr int) string {
	switch {
	case mt == 1 && mr == 1:
		return "SISO"
	case mt > 1 && mr == 1:
		return "MISO"
	case mt == 1 && mr > 1:
		return "SIMO"
	default:
		return "MIMO"
	}
}

// Result reports one simulated hop.
type Result struct {
	// BER is the end-to-end bit error rate measured at the head of B.
	BER float64
	// LocalBER is the bit error rate of Step 1's broadcast copies
	// (zero when mt = 1 or local links are ideal).
	LocalBER float64
	// Bits is the number of information bits actually transported
	// (rounded down to whole STBC blocks).
	Bits int
	// Scheme is the link classification.
	Scheme string
}

// Workspace holds the reusable scratch state for one goroutine's hop
// simulations: the generator, modulation schemes, fading process and
// every buffer the per-block loop touches. Reusing a Workspace across
// runs makes the kernel allocation-free in steady state while consuming
// exactly the rng stream a fresh run would, so results stay bit-identical.
// A Workspace is not safe for concurrent use; keep one per worker.
type Workspace struct {
	rng    *mathx.ReusableRand
	fading *channel.BlockFading
	mods   [17]*modulation.Scheme // index = bits per symbol

	src     []byte
	out     []byte
	decided []byte
	copies  [][]byte
	locSyms []complex128
	syms    []complex128
	est     []complex128
	perAnt  []*mathx.CMat
	x       *mathx.CMat
	hT      *mathx.CMat
	y       *mathx.CMat

	// batch holds the SoA tile buffers of the batched engine (batch.go),
	// the default transport path.
	batch batchScratch
}

// NewWorkspace returns an empty workspace; buffers grow on first use.
func NewWorkspace() *Workspace {
	return &Workspace{
		rng:    mathx.NewReusableRand(),
		fading: channel.NewBlockFading(nil, 1, 1, 0, 0),
	}
}

var wsPool = sync.Pool{New: func() any { return NewWorkspace() }}

// GetWorkspace takes a workspace from the shared pool.
func GetWorkspace() *Workspace { return wsPool.Get().(*Workspace) }

// PutWorkspace returns a workspace to the shared pool. The caller must
// not retain any buffer handed out by the workspace's run.
func PutWorkspace(ws *Workspace) { wsPool.Put(ws) }

// scheme returns the cached modulation scheme for b bits per symbol.
func (ws *Workspace) scheme(b int) (*modulation.Scheme, error) {
	if b >= 1 && b < len(ws.mods) && ws.mods[b] != nil {
		return ws.mods[b], nil
	}
	mod, err := modulation.New(b)
	if err != nil {
		return nil, err
	}
	if b >= 1 && b < len(ws.mods) {
		ws.mods[b] = mod
	}
	return mod, nil
}

// growBytes returns buf resized to n, reusing its backing array when
// possible.
func growBytes(buf []byte, n int) []byte {
	if cap(buf) < n {
		return make([]byte, n)
	}
	return buf[:n]
}

// Run simulates the hop on random source bits and returns measured
// error rates, using a pooled workspace.
func Run(cfg Config) (Result, error) {
	ws := GetWorkspace()
	defer PutWorkspace(ws)
	return RunWith(ws, cfg)
}

// RunWith is Run on a caller-owned workspace, for hot loops that keep
// one workspace per goroutine instead of hitting the pool per trial.
func RunWith(ws *Workspace, cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	code, err := stbc.ForTransmitters(cfg.Mt)
	if err != nil {
		return Result{}, err
	}
	bitsPerBlock := code.BlockSymbols() * cfg.B
	blocks := cfg.Bits / bitsPerBlock
	if blocks == 0 {
		blocks = 1
	}
	ws.rng.Reseed(cfg.Seed)
	rng := ws.rng.Rand
	ws.src = growBytes(ws.src, blocks*bitsPerBlock)
	for i := range ws.src {
		ws.src[i] = byte(rng.Intn(2))
	}
	ws.out = growBytes(ws.out, len(ws.src))
	return transport(ws, cfg, ws.src, ws.out)
}

// Transport pushes the given source bits through one cooperative hop and
// returns the bits decoded at the head of the receive cluster alongside
// the measured rates. len(src) must be a positive multiple of the STBC
// block payload (BlockSymbols * b); multi-hop relays chain Transport
// calls, feeding each hop's output to the next.
func Transport(cfg Config, src []byte) ([]byte, Result, error) {
	ws := GetWorkspace()
	defer PutWorkspace(ws)
	dst := make([]byte, len(src))
	res, err := TransportInto(ws, cfg, src, dst)
	if err != nil {
		return nil, res, err
	}
	return dst, res, nil
}

// TransportInto is Transport on a caller-owned workspace, writing the
// decoded bits into dst (which must have length len(src)). Relay chains
// ping-pong two buffers through it so the whole route stays
// allocation-free.
func TransportInto(ws *Workspace, cfg Config, src, dst []byte) (Result, error) {
	return transport(ws, cfg, src, dst)
}

// RunScalarWith is RunWith on the per-block scalar engine — the oracle
// the batched default path is tested against. It consumes the same rng
// stream and performs the same floating-point operations per block, so
// its results are bit-identical to RunWith's.
func RunScalarWith(ws *Workspace, cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	code, err := stbc.ForTransmitters(cfg.Mt)
	if err != nil {
		return Result{}, err
	}
	bitsPerBlock := code.BlockSymbols() * cfg.B
	blocks := cfg.Bits / bitsPerBlock
	if blocks == 0 {
		blocks = 1
	}
	ws.rng.Reseed(cfg.Seed)
	rng := ws.rng.Rand
	ws.src = growBytes(ws.src, blocks*bitsPerBlock)
	for i := range ws.src {
		ws.src[i] = byte(rng.Intn(2))
	}
	ws.out = growBytes(ws.out, len(ws.src))
	return transportScalar(ws, cfg, ws.src, ws.out)
}

// TransportScalarInto is TransportInto on the per-block scalar engine,
// kept as the bit-identity oracle for the batched default path.
func TransportScalarInto(ws *Workspace, cfg Config, src, dst []byte) (Result, error) {
	return transportScalar(ws, cfg, src, dst)
}

func transportScalar(ws *Workspace, cfg Config, src, dst []byte) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	ws.rng.Reseed(cfg.Seed)
	rng := ws.rng.Rand
	mod, err := ws.scheme(cfg.B)
	if err != nil {
		return Result{}, err
	}
	code, err := stbc.ForTransmitters(cfg.Mt)
	if err != nil {
		return Result{}, err
	}
	bitsPerBlock := code.BlockSymbols() * cfg.B
	if len(src) == 0 || len(src)%bitsPerBlock != 0 {
		return Result{}, fmt.Errorf("coop: %d source bits not a positive multiple of the %d-bit block",
			len(src), bitsPerBlock)
	}
	if len(dst) != len(src) {
		return Result{}, fmt.Errorf("coop: dst holds %d bits, need %d", len(dst), len(src))
	}
	blocks := len(src) / bitsPerBlock
	res := Result{Scheme: cfg.SchemeName(), Bits: len(src)}

	// Per-antenna per-slot symbol energy so that the post-combining
	// per-bit SNR is ||H||^2 * SNRPerBit / mt, including the code's rate
	// penalty (see the derivation in scheme_test.go).
	ea := cfg.SNRPerBit * float64(cfg.B) * code.Rate() / float64(cfg.Mt)
	scale := complex(math.Sqrt(ea), 0)

	ws.fading.Reset(rng, cfg.Mt, cfg.Mr, cfg.CoherenceBlocks, 0)

	if cap(ws.copies) < cfg.Mt {
		ws.copies = append(ws.copies[:cap(ws.copies)], make([][]byte, cfg.Mt-cap(ws.copies))...)
	}
	ws.copies = ws.copies[:cfg.Mt]
	for i := range ws.copies {
		ws.copies[i] = growBytes(ws.copies[i], bitsPerBlock)
	}
	if cap(ws.perAnt) < cfg.Mt {
		ws.perAnt = append(ws.perAnt[:cap(ws.perAnt)], make([]*mathx.CMat, cfg.Mt-cap(ws.perAnt))...)
	}
	ws.perAnt = ws.perAnt[:cfg.Mt]
	ws.decided = growBytes(ws.decided, cfg.B)

	var bitErrs, localErrs, localBits int
	for blk := 0; blk < blocks; blk++ {
		blockSrc := src[blk*bitsPerBlock : (blk+1)*bitsPerBlock]

		// Step 1: head x broadcasts; each other member receives its own
		// noisy copy (the head's copy is exact).
		copy(ws.copies[0], blockSrc)
		for m := 1; m < cfg.Mt; m++ {
			broadcastCopy(ws, mod, blockSrc, ws.copies[m], cfg.LocalSNRPerBit)
			for i := range blockSrc {
				localBits++
				if ws.copies[m][i] != blockSrc[i] {
					localErrs++
				}
			}
		}

		// Step 2: each antenna encodes its own copy; disagreement between
		// copies corrupts the space-time structure, exactly as it would
		// over the air.
		h := ws.fading.Next()
		y := transmitPerAntenna(ws, code, mod, scale, h)
		channel.AWGN(rng, y.Data, 1)

		// Step 3: members forward their samples to head y; forwarding
		// adds noise per sample when ForwardSNR is finite.
		if cfg.Mr > 1 && cfg.ForwardSNR > 0 {
			forwardNoise(rng, y, ea, h, cfg.ForwardSNR)
		}

		ws.est = code.DecodeInto(y, h, ws.est)
		for k, sym := range ws.est {
			mod.DecideSymbol(sym/scale, ws.decided)
			for j := 0; j < cfg.B; j++ {
				if ws.decided[j] != blockSrc[k*cfg.B+j] {
					bitErrs++
				}
			}
			copy(dst[blk*bitsPerBlock+k*cfg.B:], ws.decided)
		}
	}
	res.BER = float64(bitErrs) / float64(res.Bits)
	if localBits > 0 {
		res.LocalBER = float64(localErrs) / float64(localBits)
	}
	return res, nil
}

// broadcastCopy sends bits over one AWGN local link and writes the
// receiver's hard decisions to dst. localSNR = 0 means ideal.
func broadcastCopy(ws *Workspace, mod *modulation.Scheme, src, dst []byte, localSNR float64) {
	if localSNR == 0 || math.IsInf(localSNR, 1) {
		copy(dst, src)
		return
	}
	syms, err := mod.ModulateInto(src, ws.locSyms)
	if err != nil {
		// Block sizes are whole multiples of b by construction.
		panic(err)
	}
	ws.locSyms = syms
	// Unit-energy symbols; noise variance sets the per-bit SNR:
	// Es/N0 = b * localSNR.
	n0 := 1 / (float64(mod.BitsPerSymbol) * localSNR)
	channel.AWGN(ws.rng.Rand, syms, n0)
	mod.DemodulateInto(syms, dst)
}

// transmitPerAntenna builds the received block when each antenna encodes
// its own (possibly divergent) bit copy. With identical copies this
// reduces exactly to code.Transmit(code.Encode(...)). The returned matrix
// is workspace scratch, valid until the next call.
func transmitPerAntenna(ws *Workspace, code *stbc.Code, mod *modulation.Scheme, scale complex128, h *mathx.CMat) *mathx.CMat {
	mt := code.Nt()
	// Encode each antenna's view of the block.
	for a := 0; a < mt; a++ {
		syms, err := mod.ModulateInto(ws.copies[a], ws.syms)
		if err != nil {
			panic(err)
		}
		ws.syms = syms
		for i := range syms {
			syms[i] *= scale
		}
		ws.perAnt[a] = code.EncodeInto(syms, ws.perAnt[a])
	}
	// Antenna a transmits column a of its own encoding.
	x := mathx.EnsureShape(ws.x, ws.perAnt[0].Rows, mt)
	ws.x = x
	for t := 0; t < x.Rows; t++ {
		for a := 0; a < mt; a++ {
			x.Set(t, a, ws.perAnt[a].At(t, a))
		}
	}
	// y[t][j] = sum_a x[t][a] h[j][a].
	ws.hT = h.TransposeInto(ws.hT)
	ws.y = x.MulInto(ws.hT, ws.y)
	return ws.y
}

// forwardNoise models Step 3: every sample travelling from a non-head
// receiver to the head picks up noise proportional to the mean sample
// power. Receiver 0 is the head and forwards nothing.
func forwardNoise(rng *rand.Rand, y *mathx.CMat, ea float64, h *mathx.CMat, fwdSNR float64) {
	meanPower := ea * h.FrobeniusNorm2() / float64(h.Rows)
	variance := meanPower / fwdSNR
	for t := 0; t < y.Rows; t++ {
		for j := 1; j < y.Cols; j++ {
			y.Set(t, j, y.At(t, j)+mathx.ComplexCN(rng, variance))
		}
	}
}

// PredictBER returns the closed-form BER this hop should approach when
// the local links are ideal: the paper's eq. (5)/(6) average with the
// code's rate folded into the energy (rate-1 codes match exactly).
func PredictBER(cfg Config) float64 {
	code, err := stbc.ForTransmitters(cfg.Mt)
	if err != nil {
		return math.NaN()
	}
	pre, k := berShape(cfg.B)
	return pre * modulation.BERRayleighMRC(cfg.Mt*cfg.Mr, k/2*cfg.SNRPerBit*code.Rate()/float64(cfg.Mt))
}

func berShape(b int) (pre, k float64) {
	if b <= 1 {
		return 1, 2
	}
	m := math.Pow(2, float64(b))
	return 4 / float64(b) * (1 - math.Pow(2, -float64(b)/2)), 3 * float64(b) / (m - 1)
}
