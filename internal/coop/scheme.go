// Package coop simulates the cooperative communication schemes of
// Section 2.2 at symbol level: one hop of the data relay path between a
// transmit cluster A (mt nodes, head x) and a receive cluster B (mr
// nodes, head y).
//
//	Step 1  intra/local broadcast at A   (AWGN links; may corrupt copies)
//	Step 2  long-haul mt-by-mr STBC transmission over flat Rayleigh fading
//	Step 3  intra/local sample forwarding at B; head decodes jointly
//
// Unlike the energy-level analyses (internal/overlay, internal/underlay)
// this package transports actual bits, so it exposes the effects the
// closed forms abstract away: intra-cluster bit errors desynchronise the
// cooperative antennas' copies, the rate-3/4 codes pay their rate
// penalty, and sample forwarding adds noise before joint decoding.
package coop

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/channel"
	"repro/internal/mathx"
	"repro/internal/modulation"
	"repro/internal/stbc"
)

// Config parameterises one cooperative hop simulation.
type Config struct {
	// Mt and Mr are the cooperating node counts (1..4 each).
	Mt, Mr int
	// B is the constellation size in bits per symbol.
	B int
	// SNRPerBit is the long-haul mean per-bit receive SNR scale: the
	// paper's gamma_b equals ||H||_F^2 * SNRPerBit / mt per codeword.
	SNRPerBit float64
	// LocalSNRPerBit is the intra-cluster per-bit SNR for Step 1's
	// broadcast; +Inf (or 0, meaning "ideal") disables local errors.
	LocalSNRPerBit float64
	// ForwardSNR is the Step 3 sample-forwarding SNR (signal-to-added-
	// noise per sample); 0 means ideal forwarding.
	ForwardSNR float64
	// CoherenceBlocks redraws the channel every so many STBC blocks;
	// <= 0 redraws per block.
	CoherenceBlocks int
	// Bits is the number of information bits to push through the hop.
	Bits int
	// Seed drives all randomness.
	Seed int64
}

// Validate rejects unusable configurations.
func (c Config) Validate() error {
	switch {
	case c.Mt < 1 || c.Mt > 4 || c.Mr < 1 || c.Mr > 4:
		return fmt.Errorf("coop: node counts %dx%d outside [1, 4]", c.Mt, c.Mr)
	case c.B < 1 || c.B > 16:
		return fmt.Errorf("coop: constellation size %d outside [1, 16]", c.B)
	case c.SNRPerBit <= 0:
		return fmt.Errorf("coop: SNR per bit %g must be positive", c.SNRPerBit)
	case c.LocalSNRPerBit < 0:
		return fmt.Errorf("coop: local SNR %g must be non-negative", c.LocalSNRPerBit)
	case c.ForwardSNR < 0:
		return fmt.Errorf("coop: forward SNR %g must be non-negative", c.ForwardSNR)
	case c.Bits < 1:
		return fmt.Errorf("coop: bit count %d must be positive", c.Bits)
	}
	return nil
}

// SchemeName returns the paper's name for the hop configuration.
func (c Config) SchemeName() string {
	return string(linkKind(c.Mt, c.Mr))
}

func linkKind(mt, mr int) string {
	switch {
	case mt == 1 && mr == 1:
		return "SISO"
	case mt > 1 && mr == 1:
		return "MISO"
	case mt == 1 && mr > 1:
		return "SIMO"
	default:
		return "MIMO"
	}
}

// Result reports one simulated hop.
type Result struct {
	// BER is the end-to-end bit error rate measured at the head of B.
	BER float64
	// LocalBER is the bit error rate of Step 1's broadcast copies
	// (zero when mt = 1 or local links are ideal).
	LocalBER float64
	// Bits is the number of information bits actually transported
	// (rounded down to whole STBC blocks).
	Bits int
	// Scheme is the link classification.
	Scheme string
}

// Run simulates the hop on random source bits and returns measured
// error rates.
func Run(cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	rng := mathx.NewRand(cfg.Seed)
	code, err := stbc.ForTransmitters(cfg.Mt)
	if err != nil {
		return Result{}, err
	}
	bitsPerBlock := code.BlockSymbols() * cfg.B
	blocks := cfg.Bits / bitsPerBlock
	if blocks == 0 {
		blocks = 1
	}
	src := make([]byte, blocks*bitsPerBlock)
	for i := range src {
		src[i] = byte(rng.Intn(2))
	}
	_, res, err := Transport(cfg, src)
	return res, err
}

// Transport pushes the given source bits through one cooperative hop and
// returns the bits decoded at the head of the receive cluster alongside
// the measured rates. len(src) must be a positive multiple of the STBC
// block payload (BlockSymbols * b); multi-hop relays chain Transport
// calls, feeding each hop's output to the next.
func Transport(cfg Config, src []byte) ([]byte, Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, Result{}, err
	}
	rng := mathx.NewRand(cfg.Seed)
	mod, err := modulation.New(cfg.B)
	if err != nil {
		return nil, Result{}, err
	}
	code, err := stbc.ForTransmitters(cfg.Mt)
	if err != nil {
		return nil, Result{}, err
	}
	bitsPerBlock := code.BlockSymbols() * cfg.B
	if len(src) == 0 || len(src)%bitsPerBlock != 0 {
		return nil, Result{}, fmt.Errorf("coop: %d source bits not a positive multiple of the %d-bit block",
			len(src), bitsPerBlock)
	}
	blocks := len(src) / bitsPerBlock
	res := Result{Scheme: cfg.SchemeName(), Bits: len(src)}

	// Per-antenna per-slot symbol energy so that the post-combining
	// per-bit SNR is ||H||^2 * SNRPerBit / mt, including the code's rate
	// penalty (see the derivation in scheme_test.go).
	ea := cfg.SNRPerBit * float64(cfg.B) * code.Rate() / float64(cfg.Mt)
	scale := complex(math.Sqrt(ea), 0)

	fading := channel.NewBlockFading(rng, cfg.Mt, cfg.Mr, cfg.CoherenceBlocks, 0)

	var bitErrs, localErrs, localBits int
	out := make([]byte, 0, len(src))
	copies := make([][]byte, cfg.Mt)
	for i := range copies {
		copies[i] = make([]byte, bitsPerBlock)
	}
	decided := make([]byte, cfg.B)
	for blk := 0; blk < blocks; blk++ {
		blockSrc := src[blk*bitsPerBlock : (blk+1)*bitsPerBlock]

		// Step 1: head x broadcasts; each other member receives its own
		// noisy copy (the head's copy is exact).
		copy(copies[0], blockSrc)
		for m := 1; m < cfg.Mt; m++ {
			broadcastCopy(rng, mod, blockSrc, copies[m], cfg.LocalSNRPerBit)
			for i := range blockSrc {
				localBits++
				if copies[m][i] != blockSrc[i] {
					localErrs++
				}
			}
		}

		// Step 2: each antenna encodes its own copy; disagreement between
		// copies corrupts the space-time structure, exactly as it would
		// over the air.
		h := fading.Next()
		y := transmitPerAntenna(code, mod, copies, scale, h)
		channel.AWGN(rng, y.Data, 1)

		// Step 3: members forward their samples to head y; forwarding
		// adds noise per sample when ForwardSNR is finite.
		if cfg.Mr > 1 && cfg.ForwardSNR > 0 {
			forwardNoise(rng, y, ea, h, cfg.ForwardSNR)
		}

		est := code.Decode(y, h)
		for k, sym := range est {
			mod.DecideSymbol(sym/scale, decided)
			for j := 0; j < cfg.B; j++ {
				if decided[j] != blockSrc[k*cfg.B+j] {
					bitErrs++
				}
			}
			out = append(out, decided...)
		}
	}
	res.BER = float64(bitErrs) / float64(res.Bits)
	if localBits > 0 {
		res.LocalBER = float64(localErrs) / float64(localBits)
	}
	return out, res, nil
}

// broadcastCopy sends bits over one AWGN local link and writes the
// receiver's hard decisions to dst. localSNR = 0 means ideal.
func broadcastCopy(rng *rand.Rand, mod *modulation.Scheme, src, dst []byte, localSNR float64) {
	if localSNR == 0 || math.IsInf(localSNR, 1) {
		copy(dst, src)
		return
	}
	syms, err := mod.Modulate(src)
	if err != nil {
		// Block sizes are whole multiples of b by construction.
		panic(err)
	}
	// Unit-energy symbols; noise variance sets the per-bit SNR:
	// Es/N0 = b * localSNR.
	n0 := 1 / (float64(mod.BitsPerSymbol) * localSNR)
	channel.AWGN(rng, syms, n0)
	copy(dst, mod.Demodulate(syms))
}

// transmitPerAntenna builds the received block when each antenna encodes
// its own (possibly divergent) bit copy. With identical copies this
// reduces exactly to code.Transmit(code.Encode(...)).
func transmitPerAntenna(code *stbc.Code, mod *modulation.Scheme, copies [][]byte, scale complex128, h *mathx.CMat) *mathx.CMat {
	mt := code.Nt()
	// Encode each antenna's view of the block.
	perAntenna := make([]*mathx.CMat, mt)
	for a := 0; a < mt; a++ {
		syms, err := mod.Modulate(copies[a])
		if err != nil {
			panic(err)
		}
		for i := range syms {
			syms[i] *= scale
		}
		perAntenna[a] = code.Encode(syms)
	}
	// Antenna a transmits column a of its own encoding.
	x := mathx.NewCMat(perAntenna[0].Rows, mt)
	for t := 0; t < x.Rows; t++ {
		for a := 0; a < mt; a++ {
			x.Set(t, a, perAntenna[a].At(t, a))
		}
	}
	// y[t][j] = sum_a x[t][a] h[j][a].
	return x.Mul(h.Transpose())
}

// forwardNoise models Step 3: every sample travelling from a non-head
// receiver to the head picks up noise proportional to the mean sample
// power. Receiver 0 is the head and forwards nothing.
func forwardNoise(rng *rand.Rand, y *mathx.CMat, ea float64, h *mathx.CMat, fwdSNR float64) {
	meanPower := ea * h.FrobeniusNorm2() / float64(h.Rows)
	variance := meanPower / fwdSNR
	for t := 0; t < y.Rows; t++ {
		for j := 1; j < y.Cols; j++ {
			y.Set(t, j, y.At(t, j)+mathx.ComplexCN(rng, variance))
		}
	}
}

// PredictBER returns the closed-form BER this hop should approach when
// the local links are ideal: the paper's eq. (5)/(6) average with the
// code's rate folded into the energy (rate-1 codes match exactly).
func PredictBER(cfg Config) float64 {
	code, err := stbc.ForTransmitters(cfg.Mt)
	if err != nil {
		return math.NaN()
	}
	pre, k := berShape(cfg.B)
	return pre * modulation.BERRayleighMRC(cfg.Mt*cfg.Mr, k/2*cfg.SNRPerBit*code.Rate()/float64(cfg.Mt))
}

func berShape(b int) (pre, k float64) {
	if b <= 1 {
		return 1, 2
	}
	m := math.Pow(2, float64(b))
	return 4 / float64(b) * (1 - math.Pow(2, -float64(b)/2)), 3 * float64(b) / (m - 1)
}
