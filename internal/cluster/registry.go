package cluster

import (
	"context"
	"sync"
	"time"
)

// WorkerState is the registry's view of one worker node.
type WorkerState int

const (
	// Ready workers accept shards.
	Ready WorkerState = iota
	// Draining workers are shutting down gracefully: no new shards, but
	// the node is not counted dead — it may finish in-flight work.
	Draining
	// Dead workers failed probeFailLimit consecutive probes (or a shard
	// attempt observed a hard failure); their shards are re-assigned.
	Dead
)

func (s WorkerState) String() string {
	switch s {
	case Ready:
		return "ready"
	case Draining:
		return "draining"
	case Dead:
		return "dead"
	}
	return "unknown"
}

// probeFailLimit is how many consecutive failed probes demote a worker
// to Dead. One lost probe is noise; three in a row is a crash.
const probeFailLimit = 3

type workerEntry struct {
	addr  string
	state WorkerState
	fails int
}

// Registry tracks the health of a fixed peer set. States move on probe
// evidence only:
//
//	Ready ──(probe fails ×3 | shard hard-fails)──► Dead
//	Ready ──(probe says draining)────────────────► Draining
//	Dead / Draining ──(probe succeeds)───────────► Ready
//
// Recovery is intentional: a worker that restarts rejoins the pool at
// the next successful probe, and determinism does not care which worker
// computes a chunk — only the chunk seed does.
type Registry struct {
	mu      sync.Mutex
	workers []*workerEntry
	tr      Transport
}

// NewRegistry tracks the given peer addresses, all initially Ready.
func NewRegistry(tr Transport, addrs ...string) *Registry {
	r := &Registry{tr: tr}
	for _, a := range addrs {
		r.workers = append(r.workers, &workerEntry{addr: a, state: Ready})
	}
	return r
}

// Ready returns the addresses currently accepting shards, in the stable
// configuration order.
func (r *Registry) Ready() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []string
	for _, w := range r.workers {
		if w.state == Ready {
			out = append(out, w.addr)
		}
	}
	return out
}

// State reports a worker's current state; unknown addresses are Dead.
func (r *Registry) State(addr string) WorkerState {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, w := range r.workers {
		if w.addr == addr {
			return w.state
		}
	}
	return Dead
}

// MarkFailed records a hard shard failure (connection refused/reset)
// observed outside the probe loop, demoting the worker immediately so
// pending shards stop being routed to it.
func (r *Registry) MarkFailed(addr string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, w := range r.workers {
		if w.addr == addr {
			w.state = Dead
			w.fails = probeFailLimit
			return
		}
	}
}

// ProbeOnce probes every worker once and applies the state transitions.
func (r *Registry) ProbeOnce(ctx context.Context) {
	r.mu.Lock()
	addrs := make([]string, len(r.workers))
	for i, w := range r.workers {
		addrs[i] = w.addr
	}
	r.mu.Unlock()

	results := make([]error, len(addrs))
	var wg sync.WaitGroup
	for i, a := range addrs {
		wg.Add(1)
		go func(i int, a string) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, 2*time.Second)
			defer cancel()
			results[i] = r.tr.Probe(pctx, a)
		}(i, a)
	}
	wg.Wait()

	r.mu.Lock()
	defer r.mu.Unlock()
	for i, w := range r.workers {
		if results[i] == nil {
			w.fails = 0
			w.state = Ready
			continue
		}
		w.fails++
		if w.fails >= probeFailLimit {
			w.state = Dead
		} else if w.state == Ready {
			// Soft-fail: treat as draining until the verdict is in, so
			// new shards avoid a wobbly node without declaring it dead.
			w.state = Draining
		}
	}
}

// Run probes the peer set every interval until ctx is done. Call it in
// a goroutine next to the coordinator.
func (r *Registry) Run(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		interval = 5 * time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			r.ProbeOnce(ctx)
		}
	}
}
