package cluster

import (
	"context"

	"repro/internal/mathx"
	"repro/internal/sim"
)

// ExecuteShard runs one shard on this node: it validates the request
// against the local plan geometry, rebuilds the kernel batch from the
// registry, executes exactly the requested chunk range with workers
// goroutines, and returns the per-chunk partials in chunk order. Both
// the HTTP shard endpoint (cmd/cogmimod) and the loopback transport
// call it, so the in-process test path exercises the same code a remote
// worker runs.
//
// workerID tags the result so coordinators can attribute partials;
// workers <= 0 uses GOMAXPROCS.
func ExecuteShard(ctx context.Context, workerID string, workers int, req ShardRequest) (ShardResult, error) {
	if err := req.Validate(); err != nil {
		metWorkerShards.With("failed").Inc()
		return ShardResult{}, err
	}
	mc := sim.MonteCarlo{Seed: req.Seed, Workers: workers}
	parts, err := mc.RunKernelChunksCtx(ctx, req.Kernel, req.Params, req.Trials, req.ChunkLo, req.ChunkHi)
	if err != nil {
		metWorkerShards.With("failed").Inc()
		return ShardResult{}, err
	}
	snaps := make([]mathx.RunningSnapshot, len(parts))
	for i := range parts {
		snaps[i] = parts[i].Snapshot()
	}
	metWorkerShards.With("ok").Inc()
	return ShardResult{Partials: snaps, WorkerID: workerID}, nil
}
