package cluster

import (
	"context"
	"strconv"

	"repro/internal/mathx"
	"repro/internal/obs"
	"repro/internal/sim"
)

// ExecuteShard runs one shard on this node: it validates the request
// against the local plan geometry, rebuilds the kernel batch from the
// registry, executes exactly the requested chunk range with workers
// goroutines, and returns the per-chunk partials in chunk order. Both
// the HTTP shard endpoint (cmd/cogmimod) and the loopback transport
// call it, so the in-process test path exercises the same code a remote
// worker runs.
//
// workerID tags the result so coordinators can attribute partials;
// workers <= 0 uses GOMAXPROCS.
func ExecuteShard(ctx context.Context, workerID string, workers int, req ShardRequest) (ShardResult, error) {
	if err := req.Validate(); err != nil {
		metWorkerShards.With("failed").Inc()
		return ShardResult{}, err
	}

	// When the coordinator asked for tracing, record this shard's spans
	// into a private single-trace recorder and ship them back in the
	// result — the worker keeps nothing. The span parents itself to the
	// coordinator's shard span via the request's trace/parent ids.
	var rec *obs.TraceRecorder
	var span *obs.Span
	if req.Trace && req.TraceID != "" {
		rec = obs.NewTraceRecorder(1, 2048)
		ctx = obs.WithRecorder(ctx, rec)
		ctx = obs.WithTraceID(ctx, req.TraceID)
		if req.ParentSpan != "" {
			ctx = obs.WithSpanParent(ctx, obs.SpanContext{TraceID: req.TraceID, SpanID: req.ParentSpan})
		}
		ctx, span = obs.StartSpan(ctx, "shard.execute")
		span.SetAttr("node", workerID).
			SetAttr("chunk_lo", strconv.Itoa(req.ChunkLo)).
			SetAttr("chunk_hi", strconv.Itoa(req.ChunkHi))
	}

	mc := sim.MonteCarlo{Seed: req.Seed, Workers: workers}
	parts, err := mc.RunKernelChunksCtx(ctx, req.Kernel, req.Params, req.Trials, req.ChunkLo, req.ChunkHi)
	if err != nil {
		metWorkerShards.With("failed").Inc()
		return ShardResult{}, err
	}
	snaps := make([]mathx.RunningSnapshot, len(parts))
	for i := range parts {
		snaps[i] = parts[i].Snapshot()
	}
	metWorkerShards.With("ok").Inc()
	res := ShardResult{Partials: snaps, WorkerID: workerID}
	if rec != nil {
		span.End() // must end before collection or the span is lost
		res.Spans = rec.Spans(req.TraceID)
	}
	return res, nil
}
