// Package cluster is the distributed shard executor: it fans one
// Monte-Carlo run out across cogmimod worker nodes and merges the
// partials into a result bit-identical to a single-process run.
//
// # Why distribution cannot change the answer
//
// The sim package's reproducibility contract is chunk-based: a run of
// (seed, trials) decomposes into fixed-size chunks, chunk i is always
// driven by the i-th splitmix64-derived seed, and per-chunk statistics
// merge in chunk order (sim.Plan is the single source of truth). A
// shard is just a contiguous chunk range, so a worker computing chunks
// [lo, hi) from (kernel, params, seed, trials) produces exactly the
// partials the local pool would have produced for those chunks. The
// coordinator places every returned partial at its global chunk index
// and the caller folds them left to right — the same fold the local
// runner does. Scheduling (which worker, how many retries, whether a
// hedge won) decides where chunks are computed, never what they
// compute.
//
// # Lifecycle
//
//	           ┌─────────────┐   POST /v1/shards    ┌──────────────┐
//	sweep ───► │ Coordinator │ ───────────────────► │ worker node  │
//	(sim.      │             │ ◄─────────────────── │ ExecuteShard │
//	 With-     │  Registry ──┼──── GET /healthz ──► │              │
//	 Executor) └─────────────┘                      └──────────────┘
//
//	shard lifecycle (per contiguous chunk range):
//
//	  dispatch ──► running ──► ok ──► partials placed at chunk index
//	     │            │
//	     │            ├─ straggler (> HedgeAfter) ──► hedge on 2nd
//	     │            │     worker, first result wins, loser cancelled
//	     │            │
//	     │            └─ error ──► worker marked Dead, shard retried
//	     │                         with backoff+jitter on another
//	     │                         worker ("reassigned")
//	     │
//	     └─ no ready worker ──► local fallback (optional) or error
//
//	worker states (Registry, probe-driven):
//
//	  Ready ──(3 failed probes | shard hard-fails)──► Dead
//	  Ready ──(probe refused: node shutting down)───► Draining
//	  Dead/Draining ──(probe succeeds)──────────────► Ready
//
// A run fails only when some shard exhausts MaxAttempts; there are no
// partial results, because a silently shorter run would be a silently
// different statistic.
//
// # Transports
//
// HTTPTransport speaks to real cogmimod nodes (POST /v1/shards,
// GET /healthz, trace ids via X-Trace-Id). Loopback implements the same
// interface in-process with injectable failures — kill, transient
// errors, stragglers, draining — so the whole retry/hedge/reassignment
// machinery is exercised by `go test -race` without a socket.
package cluster
