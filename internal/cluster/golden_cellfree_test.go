package cluster

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/sim"
)

// TestCellfreeDistributedMatchesSerialGolden extends the distribution
// witness to the cell-free scenario kernels: ext-cellfree sharded over
// three loopback workers, with one worker killed mid-run, renders
// byte-identically to the serial golden snapshot. Unlike ext-coopber's
// scalar trials, each cellfree trial is a full network snapshot ending
// in an L*N-dimensional batched Cholesky solve, so this pins that the
// heavy mathx path is as reassignment-proof as the light one.
func TestCellfreeDistributedMatchesSerialGolden(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("..", "experiments", "testdata", "golden", "ext-cellfree_quick_seed1.txt"))
	if err != nil {
		t.Fatalf("golden snapshot missing (run go run ./internal/tools/goldengen): %v", err)
	}

	lb := NewLoopback("a", "b", "c")
	lb.Node("a").SetDelay(time.Millisecond) // widen the mid-run kill window
	reg := NewRegistry(lb, "a", "b", "c")
	co := NewCoordinator(lb, reg, Config{Shards: 3, RetryBase: time.Millisecond, RetryMax: 5 * time.Millisecond})

	killed := make(chan struct{})
	go func() {
		defer close(killed)
		time.Sleep(3 * time.Millisecond)
		lb.Node("a").Kill()
	}()

	okBefore := metShards.With("ok").Value()

	ctx := sim.WithExecutor(context.Background(), co)
	rep, err := experiments.RunCtx(ctx, "ext-cellfree", experiments.Options{Seed: 1, Quick: true, Workers: 2})
	if err != nil {
		t.Fatalf("distributed ext-cellfree: %v", err)
	}
	<-killed

	if got := rep.String(); got != string(want) {
		t.Errorf("distributed report drifted from serial golden\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
	if b, c := lb.Node("b").Shards(), lb.Node("c").Shards(); b == 0 || c == 0 {
		t.Errorf("surviving workers did not both compute shards (b=%d c=%d)", b, c)
	}
	if metShards.With("ok").Value() == okBefore {
		t.Error("no shard completed through the coordinator")
	}
}
