package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/obs"
)

// A Transport moves shard requests to one worker node and health probes
// to the same node. HTTPTransport is the production implementation;
// Loopback keeps everything in-process so the scheduler's full retry /
// hedge / reassignment machinery runs under go test -race without
// opening a socket.
type Transport interface {
	// ExecShard runs the shard on the addressed worker and returns its
	// partials. Implementations must honour ctx cancellation — the
	// coordinator cancels losing hedge attempts through it.
	ExecShard(ctx context.Context, addr string, req ShardRequest) (ShardResult, error)
	// Probe reports whether the addressed worker is alive and ready to
	// accept shards. An error or non-ready state counts as a failed
	// probe toward the registry's death threshold.
	Probe(ctx context.Context, addr string) error
}

// HTTPTransport speaks the cogmimod wire protocol: POST /v1/shards for
// work, GET /healthz for probes. The coordinator's trace id rides the
// X-Trace-Id header so worker-side logs and spans of one experiment
// correlate across nodes.
type HTTPTransport struct {
	// Client is the underlying HTTP client; nil means a client with a
	// 10-minute timeout (shards are long-running by design — stragglers
	// are handled by hedging, not by short timeouts).
	Client *http.Client
}

func (t *HTTPTransport) client() *http.Client {
	if t.Client != nil {
		return t.Client
	}
	return &http.Client{Timeout: 10 * time.Minute}
}

func normalizeAddr(addr string) string {
	if strings.HasPrefix(addr, "http://") || strings.HasPrefix(addr, "https://") {
		return strings.TrimSuffix(addr, "/")
	}
	return "http://" + strings.TrimSuffix(addr, "/")
}

// ExecShard posts the shard and decodes the partials.
func (t *HTTPTransport) ExecShard(ctx context.Context, addr string, req ShardRequest) (ShardResult, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return ShardResult{}, fmt.Errorf("cluster: encode shard: %w", err)
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, normalizeAddr(addr)+"/v1/shards", bytes.NewReader(body))
	if err != nil {
		return ShardResult{}, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	if id := obs.TraceID(ctx); id != "" {
		hreq.Header.Set("X-Trace-Id", id)
	}
	resp, err := t.client().Do(hreq)
	if err != nil {
		return ShardResult{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return ShardResult{}, fmt.Errorf("cluster: worker %s: %s: %s", addr, resp.Status, strings.TrimSpace(string(msg)))
	}
	var res ShardResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		return ShardResult{}, fmt.Errorf("cluster: decode shard result from %s: %w", addr, err)
	}
	if want := req.ChunkHi - req.ChunkLo; len(res.Partials) != want {
		return ShardResult{}, fmt.Errorf("cluster: worker %s returned %d partials, want %d", addr, len(res.Partials), want)
	}
	return res, nil
}

// Probe hits the worker's health endpoint. A 200 means ready; 503 is
// how a draining worker refuses new shards; anything else is a failure.
func (t *HTTPTransport) Probe(ctx context.Context, addr string) error {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, normalizeAddr(addr)+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := t.client().Do(hreq)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 512))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: worker %s health: %s", addr, resp.Status)
	}
	return nil
}
