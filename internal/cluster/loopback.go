package cluster

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
)

// LoopbackNode is one simulated worker behind a Loopback transport. Its
// knobs model the failure modes the scheduler must survive: a node can
// be killed mid-run (every in-flight and future call fails), told to
// fail its first N shards (transient errors → retry path), delayed
// (straggler → hedge path), or set draining (probe fails, shards
// refused).
type LoopbackNode struct {
	mu       sync.Mutex
	killed   bool
	draining bool
	failNext int
	delay    time.Duration
	shards   int // completed shards, for test assertions
}

// Kill marks the node dead; all subsequent calls fail.
func (n *LoopbackNode) Kill() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.killed = true
}

// SetDraining toggles the drain state; probes fail but the node stays
// alive.
func (n *LoopbackNode) SetDraining(d bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.draining = d
}

// FailNext makes the next k shard executions return an error before
// running any chunk, then recover.
func (n *LoopbackNode) FailNext(k int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.failNext = k
}

// SetDelay stalls every shard execution by d before computing, to
// simulate a straggler.
func (n *LoopbackNode) SetDelay(d time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.delay = d
}

// Shards reports how many shards the node completed.
func (n *LoopbackNode) Shards() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.shards
}

// Loopback is an in-process Transport over a set of named nodes. Shard
// execution goes through the same ExecuteShard path a real worker's
// HTTP handler uses, so loopback tests cover the full worker code —
// only the socket is missing.
type Loopback struct {
	mu    sync.Mutex
	nodes map[string]*LoopbackNode
	// Workers caps per-shard goroutines on each simulated node; keep it
	// small in tests so many nodes can compute concurrently.
	Workers int
}

// NewLoopback builds a transport with one node per address.
func NewLoopback(addrs ...string) *Loopback {
	l := &Loopback{nodes: make(map[string]*LoopbackNode), Workers: 1}
	for _, a := range addrs {
		l.nodes[a] = &LoopbackNode{}
	}
	return l
}

// Node returns the named node for test manipulation.
func (l *Loopback) Node(addr string) *LoopbackNode {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nodes[addr]
}

func (l *Loopback) get(addr string) (*LoopbackNode, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	n, ok := l.nodes[addr]
	if !ok {
		return nil, fmt.Errorf("cluster: no loopback node %q", addr)
	}
	return n, nil
}

// ExecShard implements Transport.
func (l *Loopback) ExecShard(ctx context.Context, addr string, req ShardRequest) (ShardResult, error) {
	n, err := l.get(addr)
	if err != nil {
		return ShardResult{}, err
	}
	n.mu.Lock()
	killed, draining, delay := n.killed, n.draining, n.delay
	failing := n.failNext > 0
	if failing {
		n.failNext--
	}
	n.mu.Unlock()
	switch {
	case killed:
		return ShardResult{}, fmt.Errorf("cluster: loopback node %s: connection refused", addr)
	case draining:
		return ShardResult{}, fmt.Errorf("cluster: loopback node %s: draining", addr)
	case failing:
		return ShardResult{}, fmt.Errorf("cluster: loopback node %s: injected failure", addr)
	}
	if delay > 0 {
		t := time.NewTimer(delay)
		select {
		case <-ctx.Done():
			t.Stop()
			return ShardResult{}, ctx.Err()
		case <-t.C:
		}
	}
	// A real worker is a separate process: the coordinator's progress
	// sink and trace recorder do not reach it. Detach both here so the
	// coordinator's per-shard accounting is the single source of
	// progress and worker spans travel home only inside the result, in
	// both transports.
	wctx := obs.WithRecorder(obs.WithProgress(ctx, obs.Nop), nil)
	res, err := ExecuteShard(wctx, addr, l.Workers, req)
	if err != nil {
		return ShardResult{}, err
	}
	// A node killed while the shard was computing models a crash before
	// the response made it back to the coordinator.
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.killed {
		return ShardResult{}, fmt.Errorf("cluster: loopback node %s: connection reset", addr)
	}
	n.shards++
	return res, nil
}

// Probe implements Transport.
func (l *Loopback) Probe(ctx context.Context, addr string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	n, err := l.get(addr)
	if err != nil {
		return err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.killed {
		return fmt.Errorf("cluster: loopback node %s: connection refused", addr)
	}
	if n.draining {
		return fmt.Errorf("cluster: loopback node %s: draining", addr)
	}
	return nil
}
