package cluster

import (
	"fmt"

	"repro/internal/mathx"
	"repro/internal/obs"
	"repro/internal/sim"
)

// ShardRequest is the wire form of one shard: a contiguous chunk range
// of a named kernel run. Everything the worker needs to reproduce the
// chunks bit-exactly is here — the kernel name and flat params rebuild
// the batch, Seed and Trials rebuild the Plan (and thus the per-chunk
// seeds), and [ChunkLo, ChunkHi) selects the slice of that plan this
// shard owns. ChunkSize is carried explicitly so a worker built with a
// different chunk constant refuses the shard instead of silently
// computing different statistics.
type ShardRequest struct {
	Kernel    string             `json:"kernel"`
	Params    map[string]float64 `json:"params,omitempty"`
	Seed      int64              `json:"seed"`
	Trials    int                `json:"trials"`
	ChunkLo   int                `json:"chunk_lo"`
	ChunkHi   int                `json:"chunk_hi"`
	ChunkSize int                `json:"chunk_size"`

	// Tracing propagation. When Trace is set the worker records its
	// shard execution spans locally and ships them back in the result;
	// TraceID/ParentSpan parent them into the coordinator's timeline.
	// None of this can affect the statistics — spans observe, the chunk
	// plan computes.
	TraceID    string `json:"trace_id,omitempty"`
	ParentSpan string `json:"parent_span,omitempty"`
	Trace      bool   `json:"trace,omitempty"`
}

// Validate checks the request against this binary's plan geometry.
func (r ShardRequest) Validate() error {
	if r.Kernel == "" {
		return fmt.Errorf("cluster: shard request has no kernel")
	}
	if r.ChunkSize != sim.ChunkSize {
		return fmt.Errorf("cluster: shard chunk size %d != worker chunk size %d", r.ChunkSize, sim.ChunkSize)
	}
	if r.Trials <= 0 {
		return fmt.Errorf("cluster: shard trials %d must be positive", r.Trials)
	}
	chunks := sim.Plan{Seed: r.Seed, Trials: r.Trials}.Chunks()
	if r.ChunkLo < 0 || r.ChunkHi > chunks || r.ChunkLo >= r.ChunkHi {
		return fmt.Errorf("cluster: shard range [%d, %d) outside plan of %d chunks", r.ChunkLo, r.ChunkHi, chunks)
	}
	return nil
}

// ShardResult carries the per-chunk partials of a completed shard, in
// chunk order starting at the request's ChunkLo. Partials travel as
// RunningSnapshot — Go's shortest-representation float encoding makes
// the JSON round-trip bit-exact, so merging remote partials is
// indistinguishable from merging local ones.
type ShardResult struct {
	Partials []mathx.RunningSnapshot `json:"partials"`
	WorkerID string                  `json:"worker_id,omitempty"`
	// Spans are the worker's finished spans for this shard, present only
	// when the request asked for tracing; the coordinator imports them
	// into its recorder to build one cross-node timeline.
	Spans []obs.SpanData `json:"spans,omitempty"`
}

// Runnings decodes the snapshots back into mergeable statistics.
func (r ShardResult) Runnings() []mathx.Running {
	out := make([]mathx.Running, len(r.Partials))
	for i, s := range r.Partials {
		out[i] = mathx.RunningFromSnapshot(s)
	}
	return out
}
