package cluster

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"time"

	"repro/internal/mathx"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Config tunes the coordinator's scheduling. Zero values pick sane
// defaults; none of the knobs can affect the statistics — scheduling
// decides where and when a chunk is computed, never what it computes.
type Config struct {
	// Shards is how many shards to split a run into; 0 means one per
	// ready worker. More shards than workers is fine (they queue) and
	// gives finer-grained reassignment when a worker dies.
	Shards int
	// MaxAttempts bounds dispatch attempts per shard, hedges included.
	// Default 4.
	MaxAttempts int
	// RetryBase is the first backoff delay; doubles per failed attempt
	// up to RetryMax, with ±50% jitter so a wounded cluster is not hit
	// by synchronized retries. Defaults 50ms / 2s.
	RetryBase time.Duration
	RetryMax  time.Duration
	// HedgeAfter launches a duplicate attempt on a second worker when
	// the primary has not answered within this duration; first result
	// wins and the loser is cancelled. 0 disables hedging.
	HedgeAfter time.Duration
	// LocalFallback lets a shard run in-process when no worker can take
	// it, so a coordinator with a dead peer set degrades to a slow
	// local run instead of failing.
	LocalFallback bool
	// LocalWorkers caps goroutines for fallback shards; 0 = GOMAXPROCS.
	LocalWorkers int
}

func (c Config) withDefaults() Config {
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 4
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 50 * time.Millisecond
	}
	if c.RetryMax <= 0 {
		c.RetryMax = 2 * time.Second
	}
	return c
}

// Coordinator shards kernel runs across a worker pool. It implements
// sim.Executor: attach it with sim.WithExecutor and every RunKernelCtx
// under that context fans out to the pool and merges to a bit-identical
// result (see doc.go for why scheduling cannot perturb the statistics).
type Coordinator struct {
	tr  Transport
	reg *Registry
	cfg Config

	mu   sync.Mutex
	rr   int        // round-robin cursor over ready workers
	jrng *rand.Rand // backoff jitter; timing-only, never statistics
}

// NewCoordinator schedules over the registry's ready workers via tr.
func NewCoordinator(tr Transport, reg *Registry, cfg Config) *Coordinator {
	return &Coordinator{tr: tr, reg: reg, cfg: cfg.withDefaults(), jrng: rand.New(rand.NewSource(time.Now().UnixNano()))}
}

// shard is one contiguous chunk range of the run.
type shard struct{ lo, hi int }

// shardRanges splits chunks into at most want contiguous ranges of
// near-equal size: shard s covers [s*chunks/S, (s+1)*chunks/S).
func shardRanges(chunks, want int) []shard {
	if want <= 0 {
		want = 1
	}
	if want > chunks {
		want = chunks
	}
	out := make([]shard, want)
	for s := 0; s < want; s++ {
		out[s] = shard{lo: s * chunks / want, hi: (s + 1) * chunks / want}
	}
	return out
}

// pick returns the next ready worker in round-robin order, skipping
// addresses in exclude. ok is false when every ready worker is
// excluded or none are ready.
func (c *Coordinator) pick(exclude map[string]bool) (string, bool) {
	ready := c.reg.Ready()
	if len(ready) == 0 {
		return "", false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := 0; i < len(ready); i++ {
		addr := ready[(c.rr+i)%len(ready)]
		if !exclude[addr] {
			c.rr = (c.rr + i + 1) % len(ready)
			return addr, true
		}
	}
	return "", false
}

// backoff returns the jittered delay before attempt n (1-based).
func (c *Coordinator) backoff(attempt int) time.Duration {
	d := c.cfg.RetryBase << (attempt - 1)
	if d > c.cfg.RetryMax || d <= 0 {
		d = c.cfg.RetryMax
	}
	c.mu.Lock()
	f := 0.5 + c.jrng.Float64() // ±50% jitter
	c.mu.Unlock()
	return time.Duration(float64(d) * f)
}

// RunShards implements sim.Executor: it splits the run into shards,
// dispatches them concurrently, and returns every chunk's partial in
// global chunk order. Any shard exhausting its attempts fails the whole
// run — a partial distributed result would silently change statistics.
func (c *Coordinator) RunShards(ctx context.Context, run sim.KernelRun) ([]mathx.Running, error) {
	plan := run.Plan()
	chunks := plan.Chunks()
	if chunks == 0 {
		return nil, nil
	}
	want := c.cfg.Shards
	if want <= 0 {
		want = len(c.reg.Ready())
		if want == 0 {
			want = 1
		}
	}
	shards := shardRanges(chunks, want)

	progress := obs.ProgressFrom(ctx)
	progress.AddTotal(int64(run.Trials))

	log := obs.Logger(ctx)
	parts := make([]mathx.Running, chunks)
	errs := make([]error, len(shards))
	var wg sync.WaitGroup
	for i, sh := range shards {
		wg.Add(1)
		go func(i int, sh shard) {
			defer wg.Done()
			res, err := c.runShard(ctx, run, sh)
			if err != nil {
				errs[i] = err
				return
			}
			copy(parts[sh.lo:sh.hi], res)
			n := int64(0)
			for ch := sh.lo; ch < sh.hi; ch++ {
				n += int64(plan.ChunkTrials(ch))
			}
			progress.Add(n)
			log.Debug("shard done", "shard", i, "chunk_lo", sh.lo, "chunk_hi", sh.hi)
		}(i, sh)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	return parts, nil
}

// RunChunkRange implements sim.RangeExecutor: it computes chunks
// [lo, hi) of the run's plan across the worker pool and returns their
// partials indexed from lo. Adaptive runs call it once per stopping
// round — the coordinator folds nothing and issues exactly the ranges
// the round schedule asks for, so the realized prefix is bit-identical
// to a local adaptive run. Unlike RunShards it must not grow the
// progress total: the adaptive driver accounts the whole budget and
// retires the unspent part when the stopping rule fires; the
// coordinator only reports completion. Retry, hedging and dead-worker
// reassignment are the same per-shard machinery RunShards uses.
func (c *Coordinator) RunChunkRange(ctx context.Context, run sim.KernelRun, lo, hi int) ([]mathx.Running, error) {
	plan := run.Plan()
	chunks := plan.Chunks()
	if lo < 0 || hi > chunks || lo >= hi {
		return nil, fmt.Errorf("cluster: chunk range [%d, %d) outside plan of %d chunks", lo, hi, chunks)
	}
	want := c.cfg.Shards
	if want <= 0 {
		want = len(c.reg.Ready())
		if want == 0 {
			want = 1
		}
	}
	shards := shardRanges(hi-lo, want)

	progress := obs.ProgressFrom(ctx)
	log := obs.Logger(ctx)
	parts := make([]mathx.Running, hi-lo)
	errs := make([]error, len(shards))
	var wg sync.WaitGroup
	for i, sh := range shards {
		wg.Add(1)
		go func(i int, sh shard) {
			defer wg.Done()
			abs := shard{lo: lo + sh.lo, hi: lo + sh.hi}
			res, err := c.runShard(ctx, run, abs)
			if err != nil {
				errs[i] = err
				return
			}
			copy(parts[sh.lo:sh.hi], res)
			n := int64(0)
			for ch := abs.lo; ch < abs.hi; ch++ {
				n += int64(plan.ChunkTrials(ch))
			}
			progress.Add(n)
			log.Debug("round shard done", "shard", i, "chunk_lo", abs.lo, "chunk_hi", abs.hi)
		}(i, sh)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	return parts, nil
}

// runShard drives one shard to completion: pick a worker, execute with
// an optional hedge, and on failure back off and try the next worker.
func (c *Coordinator) runShard(ctx context.Context, run sim.KernelRun, sh shard) ([]mathx.Running, error) {
	ctx, span := obs.StartSpan(ctx, "cluster.shard")
	defer span.End()
	span.SetAttr("chunk_lo", strconv.Itoa(sh.lo)).SetAttr("chunk_hi", strconv.Itoa(sh.hi))

	req := ShardRequest{
		Kernel:    run.Kernel,
		Params:    run.Params,
		Seed:      run.Seed,
		Trials:    run.Trials,
		ChunkLo:   sh.lo,
		ChunkHi:   sh.hi,
		ChunkSize: sim.ChunkSize,
	}
	if span.Recording() {
		req.Trace = true
		req.TraceID = span.TraceID()
		req.ParentSpan = span.SpanID()
	}
	log := obs.Logger(ctx)
	// lastAddr is excluded from the immediately following pick so a
	// retried shard prefers a different worker; a dead worker's shard
	// is thereby reassigned rather than hammered.
	var lastAddr string
	var lastDead bool
	var lastErr error
	for attempt := 1; attempt <= c.cfg.MaxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		exclude := map[string]bool{}
		if lastAddr != "" {
			exclude[lastAddr] = true
		}
		addr, ok := c.pick(exclude)
		if !ok {
			// Nobody else is ready; a merely-suspect last worker may
			// still take the retry.
			addr, ok = c.pick(nil)
		}
		if !ok {
			if c.cfg.LocalFallback {
				metShards.With("local").Inc()
				span.Event("local_fallback")
				log.Warn("no ready workers, running shard locally", "chunk_lo", sh.lo, "chunk_hi", sh.hi)
				mc := sim.MonteCarlo{Seed: run.Seed, Workers: c.cfg.LocalWorkers}
				return mc.RunKernelChunksCtx(ctx, run.Kernel, run.Params, run.Trials, sh.lo, sh.hi)
			}
			lastErr = fmt.Errorf("cluster: no ready workers for shard [%d, %d)", sh.lo, sh.hi)
		} else {
			if lastDead && addr != lastAddr {
				metShards.With("reassigned").Inc()
				span.Event("reassigned", obs.Attr{Key: "from", Value: lastAddr}, obs.Attr{Key: "to", Value: addr})
				log.Info("shard reassigned off dead worker", "from", lastAddr, "to", addr, "chunk_lo", sh.lo)
			}
			res, err := c.execHedged(ctx, span, addr, req)
			if err == nil {
				metShards.With("ok").Inc()
				span.SetAttr("worker", res.WorkerID)
				if rec := obs.RecorderFrom(ctx); rec != nil {
					rec.Import(res.Spans)
				}
				return res.Runnings(), nil
			}
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			metShards.With("failed").Inc()
			c.reg.MarkFailed(addr)
			span.Event("worker_dead", obs.Attr{Key: "worker", Value: addr}, obs.Attr{Key: "error", Value: err.Error()})
			lastAddr, lastDead, lastErr = addr, true, err
			log.Warn("shard attempt failed", "worker", addr, "attempt", attempt, "err", err)
		}
		if attempt == c.cfg.MaxAttempts {
			break
		}
		metShards.With("retried").Inc()
		span.Event("retry", obs.Attr{Key: "attempt", Value: strconv.Itoa(attempt)})
		t := time.NewTimer(c.backoff(attempt))
		select {
		case <-ctx.Done():
			t.Stop()
			return nil, ctx.Err()
		case <-t.C:
		}
	}
	return nil, fmt.Errorf("cluster: shard [%d, %d) failed after %d attempts: %w", sh.lo, sh.hi, c.cfg.MaxAttempts, lastErr)
}

// execHedged runs one dispatch attempt, optionally racing a hedge
// launched HedgeAfter into the primary's silence. The first success
// cancels the other call; both failing returns the last error. Chunk
// determinism makes hedging safe: both calls compute identical
// partials, so whichever wins, the merged result is the same.
func (c *Coordinator) execHedged(ctx context.Context, span *obs.Span, primary string, req ShardRequest) (ShardResult, error) {
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type outcome struct {
		res  ShardResult
		addr string
		err  error
	}
	ch := make(chan outcome, 2)
	start := time.Now()
	exec := func(addr string) {
		res, err := c.tr.ExecShard(hctx, addr, req)
		ch <- outcome{res: res, addr: addr, err: err}
	}
	go exec(primary)
	inflight := 1

	var hedgeC <-chan time.Time
	if c.cfg.HedgeAfter > 0 {
		t := time.NewTimer(c.cfg.HedgeAfter)
		defer t.Stop()
		hedgeC = t.C
	}

	var lastErr error
	for {
		select {
		case <-ctx.Done():
			return ShardResult{}, ctx.Err()
		case <-hedgeC:
			hedgeC = nil
			if addr, ok := c.pick(map[string]bool{primary: true}); ok {
				metShards.With("hedged").Inc()
				span.Event("hedge_fired", obs.Attr{Key: "primary", Value: primary}, obs.Attr{Key: "hedge", Value: addr})
				obs.Logger(ctx).Info("hedging straggler shard", "primary", primary, "hedge", addr, "chunk_lo", req.ChunkLo)
				go exec(addr)
				inflight++
			}
		case o := <-ch:
			if o.err == nil {
				metShardDuration.Observe(time.Since(start).Seconds())
				if inflight > 1 || o.addr != primary {
					span.Event("hedge_won", obs.Attr{Key: "winner", Value: o.addr})
				}
				cancel() // first result wins; the loser sees ctx.Canceled
				return o.res, nil
			}
			lastErr = o.err
			if o.addr != primary {
				// A failed hedge must not poison the primary's verdict,
				// but a dead hedge target should stop being picked.
				c.reg.MarkFailed(o.addr)
			}
			inflight--
			if inflight == 0 {
				return ShardResult{}, lastErr
			}
		}
	}
}
