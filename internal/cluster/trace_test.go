package cluster

import (
	"context"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
)

// traceByName indexes a merged trace's spans by name.
func traceByName(tr obs.Trace) map[string][]obs.SpanData {
	out := map[string][]obs.SpanData{}
	for _, sd := range tr.Spans {
		out[sd.Name] = append(out[sd.Name], sd)
	}
	return out
}

// eventNames flattens every event name in the trace.
func eventNames(tr obs.Trace) map[string]int {
	out := map[string]int{}
	for _, sd := range tr.Spans {
		for _, ev := range sd.Events {
			out[ev.Name]++
		}
	}
	return out
}

// TestDistributedTraceMergesWorkerSpans runs a traced distributed run
// over 3 loopback workers with one induced transient failure and
// asserts the coordinator's recorder ends up holding one timeline:
// cluster.run → cluster.shard per shard → shard.execute per worker →
// mc.chunk leaves, with a retry event on the failed shard.
func TestDistributedTraceMergesWorkerSpans(t *testing.T) {
	run := testRun()
	want := localResult(t, run)

	lb := NewLoopback("a", "b", "c")
	lb.Node("a").FailNext(1) // one transient failure → one retry event
	reg := NewRegistry(lb, "a", "b", "c")
	co := NewCoordinator(lb, reg, Config{Shards: 3, RetryBase: time.Millisecond, RetryMax: 5 * time.Millisecond})

	rec := obs.NewTraceRecorder(8, 4096)
	ctx := obs.WithRecorder(context.Background(), rec)
	ctx = sim.WithExecutor(ctx, co)

	mc := sim.MonteCarlo{Seed: run.Seed}
	got, err := mc.RunKernelCtx(ctx, run.Kernel, run.Params, run.Trials)
	if err != nil {
		t.Fatalf("RunKernelCtx: %v", err)
	}
	if got != want {
		t.Fatalf("traced distributed stats differ from local:\n got %+v\nwant %+v", got, want)
	}

	if rec.Len() != 1 {
		t.Fatalf("recorder holds %d traces, want 1", rec.Len())
	}
	sum := rec.Recent(1)
	tr, ok := rec.Trace(sum[0].TraceID)
	if !ok {
		t.Fatal("trace vanished")
	}
	byName := traceByName(tr)

	roots := byName["cluster.run"]
	if len(roots) != 1 {
		t.Fatalf("cluster.run spans = %d, want 1", len(roots))
	}
	root := roots[0]
	if root.Attr("kernel") != run.Kernel {
		t.Fatalf("cluster.run kernel attr = %q", root.Attr("kernel"))
	}

	shards := byName["cluster.shard"]
	if len(shards) != 3 {
		t.Fatalf("cluster.shard spans = %d, want 3", len(shards))
	}
	shardIDs := map[string]bool{}
	for _, sh := range shards {
		if sh.ParentID != root.SpanID {
			t.Fatalf("cluster.shard parent = %q, want cluster.run %q", sh.ParentID, root.SpanID)
		}
		shardIDs[sh.SpanID] = true
	}

	execs := byName["shard.execute"]
	if len(execs) < 3 {
		t.Fatalf("shard.execute spans = %d, want >= 3", len(execs))
	}
	nodes := map[string]bool{}
	for _, ex := range execs {
		if !shardIDs[ex.ParentID] {
			t.Fatalf("shard.execute parent %q is not a cluster.shard span", ex.ParentID)
		}
		if n := ex.Attr("node"); n != "" {
			nodes[n] = true
		}
	}
	if len(nodes) < 2 {
		t.Fatalf("shard.execute spans name %d distinct nodes, want >= 2", len(nodes))
	}

	// Worker-side chunk spans rode home inside ShardResult.Spans and
	// must parent to their shard.execute span.
	chunks := byName["mc.chunk"]
	if len(chunks) == 0 {
		t.Fatal("no mc.chunk spans in merged trace")
	}
	execIDs := map[string]bool{}
	for _, ex := range execs {
		execIDs[ex.SpanID] = true
	}
	for _, ch := range chunks {
		if !execIDs[ch.ParentID] {
			t.Fatalf("mc.chunk parent %q is not a shard.execute span", ch.ParentID)
		}
	}

	if byName["mc.fold"] == nil {
		t.Fatal("no mc.fold span")
	}

	evs := eventNames(tr)
	if evs["retry"] == 0 {
		t.Fatalf("no retry event despite induced failure; events = %v", evs)
	}
	if evs["worker_dead"] == 0 {
		t.Fatalf("no worker_dead event despite induced failure; events = %v", evs)
	}
}

// TestDistributedTraceOffByDefault proves the whole path records
// nothing and changes nothing when no recorder is attached.
func TestDistributedTraceOffByDefault(t *testing.T) {
	run := testRun()
	want := localResult(t, run)

	lb := NewLoopback("a", "b", "c")
	reg := NewRegistry(lb, "a", "b", "c")
	co := NewCoordinator(lb, reg, Config{Shards: 3})

	ctx := sim.WithExecutor(context.Background(), co)
	mc := sim.MonteCarlo{Seed: run.Seed}
	got, err := mc.RunKernelCtx(ctx, run.Kernel, run.Params, run.Trials)
	if err != nil {
		t.Fatalf("RunKernelCtx: %v", err)
	}
	if got != want {
		t.Fatalf("untraced distributed stats differ from local")
	}
}

// TestShardRequestTracePropagation checks the worker side in isolation:
// a traced request returns spans parented under the given parent id,
// an untraced request returns none.
func TestShardRequestTracePropagation(t *testing.T) {
	run := testRun()
	req := ShardRequest{
		Kernel: run.Kernel, Params: run.Params, Seed: run.Seed,
		Trials: run.Trials, ChunkLo: 0, ChunkHi: 2, ChunkSize: sim.ChunkSize,
		Trace: true, TraceID: "0123456789abcdef0123456789abcdef", ParentSpan: "00000000deadbeef",
	}
	res, err := ExecuteShard(context.Background(), "w0", 1, req)
	if err != nil {
		t.Fatalf("ExecuteShard: %v", err)
	}
	if len(res.Spans) == 0 {
		t.Fatal("traced shard returned no spans")
	}
	var exec *obs.SpanData
	for i := range res.Spans {
		if res.Spans[i].Name == "shard.execute" {
			exec = &res.Spans[i]
		}
		if res.Spans[i].TraceID != req.TraceID {
			t.Fatalf("span trace id %q != request %q", res.Spans[i].TraceID, req.TraceID)
		}
	}
	if exec == nil {
		t.Fatal("no shard.execute span")
	}
	if exec.ParentID != req.ParentSpan {
		t.Fatalf("shard.execute parent = %q, want %q", exec.ParentID, req.ParentSpan)
	}
	if exec.Attr("node") != "w0" {
		t.Fatalf("node attr = %q", exec.Attr("node"))
	}

	req.Trace, req.TraceID, req.ParentSpan = false, "", ""
	res, err = ExecuteShard(context.Background(), "w0", 1, req)
	if err != nil {
		t.Fatalf("untraced ExecuteShard: %v", err)
	}
	if len(res.Spans) != 0 {
		t.Fatalf("untraced shard returned %d spans", len(res.Spans))
	}
}
