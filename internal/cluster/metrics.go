package cluster

import "repro/internal/obs"

// Shard scheduling outcomes, labelled by what happened to the attempt:
//
//	ok         shard completed and its partials were accepted
//	failed     an attempt errored (each failure counts once)
//	retried    shard was re-dispatched after a failed attempt
//	hedged     a duplicate attempt was launched against a straggler
//	reassigned shard moved off a worker the registry declared dead
//	local      shard fell back to in-process execution
var metShards = obs.Default.CounterVec("cogmimod_shards_total",
	"Distributed shard attempts by outcome.", "status")

var metShardDuration = obs.Default.Histogram("cogmimod_shard_duration_seconds",
	"Wall-clock time of successful shard executions.",
	[]float64{0.005, 0.02, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30})

// metWorkerShards counts shards served by this process's worker
// endpoint, as opposed to shards this process dispatched.
var metWorkerShards = obs.Default.CounterVec("cogmimod_worker_shards_total",
	"Shards executed by this node's worker endpoint.", "status")

func init() {
	// Pre-seed the label values so dashboards see zeroes instead of
	// absent series before the first distributed run.
	for _, s := range []string{"ok", "failed", "retried", "hedged", "reassigned", "local"} {
		metShards.With(s)
	}
	for _, s := range []string{"ok", "failed"} {
		metWorkerShards.With(s)
	}
}
