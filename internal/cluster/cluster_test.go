package cluster

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/mathx"
	"repro/internal/sim"

	_ "repro/internal/simkern" // register coop.ber / multihop.ber
)

// testRun is a small but multi-chunk kernel run shared by the scheduler
// tests: 5 chunks so 3 workers get uneven shards.
func testRun() sim.KernelRun {
	return sim.KernelRun{
		Kernel: "coop.ber",
		Params: map[string]float64{"mt": 2, "mr": 2, "snr_db": 6, "bits": 16},
		Seed:   1,
		Trials: 5 * sim.ChunkSize,
	}
}

// localResult computes the run on the plain in-process pool — the
// reference every distributed result must equal bit-for-bit.
func localResult(t *testing.T, run sim.KernelRun) mathx.Running {
	t.Helper()
	mc := sim.MonteCarlo{Seed: run.Seed, Workers: 2}
	got, err := mc.RunKernelCtx(context.Background(), run.Kernel, run.Params, run.Trials)
	if err != nil {
		t.Fatalf("local run: %v", err)
	}
	return got
}

// merge folds shard partials exactly as RunKernelCtx does.
func merge(parts []mathx.Running) mathx.Running {
	var total mathx.Running
	for _, p := range parts {
		total.Merge(p)
	}
	return total
}

func TestShardRanges(t *testing.T) {
	cases := []struct {
		chunks, want int
		ranges       []shard
	}{
		{5, 3, []shard{{0, 1}, {1, 3}, {3, 5}}},
		{4, 2, []shard{{0, 2}, {2, 4}}},
		{2, 5, []shard{{0, 1}, {1, 2}}},
		{1, 1, []shard{{0, 1}}},
	}
	for _, tc := range cases {
		got := shardRanges(tc.chunks, tc.want)
		if len(got) != len(tc.ranges) {
			t.Fatalf("shardRanges(%d, %d) = %v, want %v", tc.chunks, tc.want, got, tc.ranges)
		}
		for i := range got {
			if got[i] != tc.ranges[i] {
				t.Errorf("shardRanges(%d, %d)[%d] = %v, want %v", tc.chunks, tc.want, i, got[i], tc.ranges[i])
			}
		}
		// Ranges must tile [0, chunks) exactly: no gap, no overlap.
		next := 0
		for _, s := range got {
			if s.lo != next || s.hi <= s.lo {
				t.Fatalf("shardRanges(%d, %d): range %v breaks tiling at %d", tc.chunks, tc.want, s, next)
			}
			next = s.hi
		}
		if next != tc.chunks {
			t.Fatalf("shardRanges(%d, %d) covers [0, %d), want [0, %d)", tc.chunks, tc.want, next, tc.chunks)
		}
	}
}

func TestShardRequestValidate(t *testing.T) {
	good := ShardRequest{Kernel: "coop.ber", Seed: 1, Trials: 3 * sim.ChunkSize, ChunkLo: 0, ChunkHi: 3, ChunkSize: sim.ChunkSize}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid request rejected: %v", err)
	}
	bad := []ShardRequest{
		{Kernel: "", Seed: 1, Trials: sim.ChunkSize, ChunkHi: 1, ChunkSize: sim.ChunkSize},
		{Kernel: "k", Seed: 1, Trials: sim.ChunkSize, ChunkHi: 1, ChunkSize: 1024},
		{Kernel: "k", Seed: 1, Trials: 0, ChunkHi: 1, ChunkSize: sim.ChunkSize},
		{Kernel: "k", Seed: 1, Trials: sim.ChunkSize, ChunkLo: 1, ChunkHi: 1, ChunkSize: sim.ChunkSize},
		{Kernel: "k", Seed: 1, Trials: sim.ChunkSize, ChunkLo: 0, ChunkHi: 2, ChunkSize: sim.ChunkSize},
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("bad request %d accepted: %+v", i, r)
		}
	}
}

func TestRegistryTransitions(t *testing.T) {
	lb := NewLoopback("a", "b")
	reg := NewRegistry(lb, "a", "b")
	ctx := context.Background()

	if got := reg.Ready(); len(got) != 2 {
		t.Fatalf("initial ready = %v, want both", got)
	}

	// One failed probe demotes to Draining, not Dead.
	lb.Node("a").Kill()
	reg.ProbeOnce(ctx)
	if s := reg.State("a"); s != Draining {
		t.Fatalf("after 1 failed probe state = %v, want Draining", s)
	}
	reg.ProbeOnce(ctx)
	reg.ProbeOnce(ctx)
	if s := reg.State("a"); s != Dead {
		t.Fatalf("after 3 failed probes state = %v, want Dead", s)
	}
	if got := reg.Ready(); len(got) != 1 || got[0] != "b" {
		t.Fatalf("ready = %v, want [b]", got)
	}

	// Draining node refuses probes but b staying up keeps it Ready.
	lb.Node("b").SetDraining(true)
	reg.ProbeOnce(ctx)
	if s := reg.State("b"); s != Draining {
		t.Fatalf("draining node state = %v, want Draining", s)
	}
	if got := reg.Ready(); len(got) != 0 {
		t.Fatalf("ready = %v, want none", got)
	}

	// Recovery: a successful probe restores Ready from either state.
	lb.Node("b").SetDraining(false)
	reg.ProbeOnce(ctx)
	if s := reg.State("b"); s != Ready {
		t.Fatalf("recovered node state = %v, want Ready", s)
	}

	// MarkFailed demotes immediately.
	reg.MarkFailed("b")
	if s := reg.State("b"); s != Dead {
		t.Fatalf("after MarkFailed state = %v, want Dead", s)
	}
	if s := reg.State("nope"); s != Dead {
		t.Fatalf("unknown worker state = %v, want Dead", s)
	}
}

func TestRegistryRunLoop(t *testing.T) {
	lb := NewLoopback("a")
	reg := NewRegistry(lb, "a")
	reg.MarkFailed("a")
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); reg.Run(ctx, 5*time.Millisecond) }()
	deadline := time.After(2 * time.Second)
	for reg.State("a") != Ready {
		select {
		case <-deadline:
			t.Fatal("probe loop never revived the worker")
		case <-time.After(2 * time.Millisecond):
		}
	}
	cancel()
	<-done
}

// TestCoordinatorMatchesLocal is the heart of the subsystem: a run
// sharded across 3 loopback workers is bit-identical to the local pool.
func TestCoordinatorMatchesLocal(t *testing.T) {
	run := testRun()
	want := localResult(t, run)

	lb := NewLoopback("a", "b", "c")
	reg := NewRegistry(lb, "a", "b", "c")
	co := NewCoordinator(lb, reg, Config{Shards: 3})

	parts, err := co.RunShards(context.Background(), run)
	if err != nil {
		t.Fatalf("RunShards: %v", err)
	}
	if got := merge(parts); got != want {
		t.Fatalf("distributed stats differ from local:\n got %+v\nwant %+v", got, want)
	}
	used := 0
	for _, a := range []string{"a", "b", "c"} {
		if lb.Node(a).Shards() > 0 {
			used++
		}
	}
	if used < 2 {
		t.Fatalf("only %d workers computed shards; want the fan-out to spread", used)
	}
}

// TestCoordinatorViaExecutorContext checks the sim-side wiring: a
// RunKernelCtx under WithExecutor routes through the coordinator and
// still equals the plain local run.
func TestCoordinatorViaExecutorContext(t *testing.T) {
	run := testRun()
	want := localResult(t, run)

	lb := NewLoopback("a", "b", "c")
	reg := NewRegistry(lb, "a", "b", "c")
	co := NewCoordinator(lb, reg, Config{Shards: 3})

	ctx := sim.WithExecutor(context.Background(), co)
	mc := sim.MonteCarlo{Seed: run.Seed}
	got, err := mc.RunKernelCtx(ctx, run.Kernel, run.Params, run.Trials)
	if err != nil {
		t.Fatalf("RunKernelCtx: %v", err)
	}
	if got != want {
		t.Fatalf("executor-context stats differ from local:\n got %+v\nwant %+v", got, want)
	}
}

// TestRetryReassignsFromFailedWorker injects transient failures on one
// worker and expects its shards to land elsewhere with the same result.
func TestRetryReassignsFromFailedWorker(t *testing.T) {
	run := testRun()
	want := localResult(t, run)

	lb := NewLoopback("a", "b", "c")
	lb.Node("a").FailNext(10) // every attempt at a fails
	reg := NewRegistry(lb, "a", "b", "c")
	co := NewCoordinator(lb, reg, Config{Shards: 3, RetryBase: time.Millisecond, RetryMax: 5 * time.Millisecond})

	before := metShards.With("reassigned").Value()
	parts, err := co.RunShards(context.Background(), run)
	if err != nil {
		t.Fatalf("RunShards with failing worker: %v", err)
	}
	if got := merge(parts); got != want {
		t.Fatalf("stats after reassignment differ from local:\n got %+v\nwant %+v", got, want)
	}
	if lb.Node("a").Shards() != 0 {
		t.Fatalf("failing worker completed %d shards, want 0", lb.Node("a").Shards())
	}
	if after := metShards.With("reassigned").Value(); after <= before {
		t.Fatalf("reassigned counter did not move (%d -> %d)", before, after)
	}
	if reg.State("a") != Dead {
		t.Fatalf("failing worker state = %v, want Dead", reg.State("a"))
	}
}

// TestWorkerKilledMidRun kills a worker while shards are in flight; the
// coordinator must reroute and still produce the exact local result.
func TestWorkerKilledMidRun(t *testing.T) {
	run := testRun()
	want := localResult(t, run)

	lb := NewLoopback("a", "b", "c")
	lb.Node("a").SetDelay(20 * time.Millisecond) // ensure kill lands mid-shard
	reg := NewRegistry(lb, "a", "b", "c")
	co := NewCoordinator(lb, reg, Config{Shards: 5, RetryBase: time.Millisecond, RetryMax: 5 * time.Millisecond})

	go func() {
		time.Sleep(5 * time.Millisecond)
		lb.Node("a").Kill()
	}()
	parts, err := co.RunShards(context.Background(), run)
	if err != nil {
		t.Fatalf("RunShards with killed worker: %v", err)
	}
	if got := merge(parts); got != want {
		t.Fatalf("stats after worker death differ from local:\n got %+v\nwant %+v", got, want)
	}
}

// TestHedgingBeatsStraggler makes one worker pathologically slow and
// expects a hedge to win without perturbing the statistics.
func TestHedgingBeatsStraggler(t *testing.T) {
	run := testRun()
	want := localResult(t, run)

	lb := NewLoopback("slow", "b", "c")
	lb.Node("slow").SetDelay(10 * time.Second)
	reg := NewRegistry(lb, "slow", "b", "c")
	co := NewCoordinator(lb, reg, Config{Shards: 3, HedgeAfter: 10 * time.Millisecond})

	before := metShards.With("hedged").Value()
	start := time.Now()
	parts, err := co.RunShards(context.Background(), run)
	if err != nil {
		t.Fatalf("RunShards with straggler: %v", err)
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("run took %v; hedge should have beaten the 10s straggler", took)
	}
	if got := merge(parts); got != want {
		t.Fatalf("stats after hedging differ from local:\n got %+v\nwant %+v", got, want)
	}
	if after := metShards.With("hedged").Value(); after <= before {
		t.Fatalf("hedged counter did not move (%d -> %d)", before, after)
	}
}

// TestLocalFallback runs with every worker dead and LocalFallback on.
func TestLocalFallback(t *testing.T) {
	run := testRun()
	want := localResult(t, run)

	lb := NewLoopback("a")
	lb.Node("a").Kill()
	reg := NewRegistry(lb, "a")
	reg.MarkFailed("a")
	co := NewCoordinator(lb, reg, Config{Shards: 2, LocalFallback: true, LocalWorkers: 2})

	parts, err := co.RunShards(context.Background(), run)
	if err != nil {
		t.Fatalf("RunShards with local fallback: %v", err)
	}
	if got := merge(parts); got != want {
		t.Fatalf("fallback stats differ from local:\n got %+v\nwant %+v", got, want)
	}
}

// TestAllWorkersDeadFailsCleanly: no fallback → a clear terminal error,
// not a hang or a partial result.
func TestAllWorkersDeadFailsCleanly(t *testing.T) {
	run := testRun()
	lb := NewLoopback("a")
	lb.Node("a").Kill()
	reg := NewRegistry(lb, "a")
	co := NewCoordinator(lb, reg, Config{Shards: 2, MaxAttempts: 2, RetryBase: time.Millisecond, RetryMax: time.Millisecond})

	_, err := co.RunShards(context.Background(), run)
	if err == nil {
		t.Fatal("RunShards succeeded with every worker dead")
	}
	if !strings.Contains(err.Error(), "failed after 2 attempts") {
		t.Fatalf("error %q does not name the attempt budget", err)
	}
}

func TestRunShardsHonoursCancellation(t *testing.T) {
	run := testRun()
	lb := NewLoopback("a")
	lb.Node("a").SetDelay(10 * time.Second)
	reg := NewRegistry(lb, "a")
	co := NewCoordinator(lb, reg, Config{Shards: 1})

	ctx, cancel := context.WithCancel(context.Background())
	time.AfterFunc(10*time.Millisecond, cancel)
	start := time.Now()
	_, err := co.RunShards(ctx, run)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("cancellation did not interrupt the in-flight shard")
	}
}

func TestExecuteShardValidates(t *testing.T) {
	ctx := context.Background()
	_, err := ExecuteShard(ctx, "w", 1, ShardRequest{Kernel: "coop.ber", Seed: 1, Trials: sim.ChunkSize, ChunkLo: 0, ChunkHi: 1, ChunkSize: 1024})
	if err == nil || !strings.Contains(err.Error(), "chunk size") {
		t.Fatalf("chunk-size mismatch not rejected: %v", err)
	}
	_, err = ExecuteShard(ctx, "w", 1, ShardRequest{Kernel: "no.such", Seed: 1, Trials: sim.ChunkSize, ChunkLo: 0, ChunkHi: 1, ChunkSize: sim.ChunkSize})
	if err == nil || !strings.Contains(err.Error(), "unknown kernel") {
		t.Fatalf("unknown kernel not rejected: %v", err)
	}
}

// TestSnapshotRoundTrip pins the wire-format exactness claim: a Running
// that crossed Snapshot/FromSnapshot merges identically to the original.
func TestSnapshotRoundTrip(t *testing.T) {
	run := testRun()
	mc := sim.MonteCarlo{Seed: run.Seed, Workers: 1}
	parts, err := mc.RunKernelChunksCtx(context.Background(), run.Kernel, run.Params, run.Trials, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	res := ShardResult{Partials: make([]mathx.RunningSnapshot, len(parts))}
	for i := range parts {
		res.Partials[i] = parts[i].Snapshot()
	}
	back := res.Runnings()
	for i := range parts {
		if back[i] != parts[i] {
			t.Fatalf("chunk %d changed across snapshot round-trip", i)
		}
	}
}

// adaptiveStop fires once the prefix holds at least n trials — the
// cluster tests pin stopping behavior without statistical noise.
type adaptiveStop struct{ n int64 }

func (s adaptiveStop) Done(prefix mathx.Running) bool { return prefix.N() >= s.n }

// TestAdaptiveRunAcrossCluster is the distributed determinism contract
// for the adaptive tier: an adaptive run sharded over a 3-worker
// loopback — with one worker killed mid-campaign — must produce the
// same statistics, the same realized trace, and the same replay as a
// plain serial run. Worker death moves shards, never results.
func TestAdaptiveRunAcrossCluster(t *testing.T) {
	kernel := "coop.ber"
	params := map[string]float64{"mt": 2, "mr": 2, "snr_db": 6, "bits": 16}
	budget := 12 * sim.ChunkSize
	stop := adaptiveStop{n: 5 * sim.ChunkSize}

	serial, err := sim.MonteCarlo{Seed: 9}.RunAdaptiveCtx(context.Background(), kernel, params, budget, stop)
	if err != nil {
		t.Fatal(err)
	}
	if !serial.Trace.Stopped || serial.Trace.Chunks() != 8 {
		t.Fatalf("unexpected serial trace %+v; the test wants a mid-budget stop", serial.Trace)
	}

	lb := NewLoopback("w1", "w2", "w3")
	reg := NewRegistry(lb, "w1", "w2", "w3")
	co := NewCoordinator(lb, reg, Config{Shards: 3, RetryBase: time.Millisecond, RetryMax: 5 * time.Millisecond})
	ctx := sim.WithExecutor(context.Background(), co)

	// Kill one worker before the run: its shards must be reassigned and
	// the rounds still merge to the serial result.
	lb.Node("w2").Kill()
	dist, err := sim.MonteCarlo{Seed: 9}.RunAdaptiveCtx(ctx, kernel, params, budget, stop)
	if err != nil {
		t.Fatal(err)
	}
	if dist.Stats != serial.Stats {
		t.Fatalf("distributed adaptive stats differ:\n got %+v\nwant %+v", dist.Stats, serial.Stats)
	}
	if dist.Trace.Trials != serial.Trace.Trials || dist.Trace.Chunks() != serial.Trace.Chunks() {
		t.Fatalf("distributed trace %+v != serial trace %+v", dist.Trace, serial.Trace)
	}

	// Replaying the recorded trace across the (degraded) cluster is
	// bit-identical too.
	rep, err := sim.MonteCarlo{Seed: 9}.RunTraceCtx(ctx, kernel, params, dist.Trace)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats != serial.Stats {
		t.Fatalf("cluster replay stats differ:\n got %+v\nwant %+v", rep.Stats, serial.Stats)
	}
	if lb.Node("w1").Shards()+lb.Node("w3").Shards() == 0 {
		t.Fatal("no live worker computed any shard")
	}
}

// TestCoordinatorRunChunkRange exercises the round-granular entry
// point directly: partials for [lo, hi) must match the local chunk
// computation and reject bad ranges.
func TestCoordinatorRunChunkRange(t *testing.T) {
	run := testRun()
	lb := NewLoopback("a", "b")
	reg := NewRegistry(lb, "a", "b")
	co := NewCoordinator(lb, reg, Config{Shards: 2})

	mc := sim.MonteCarlo{Seed: run.Seed}
	want, err := mc.RunKernelChunksCtx(context.Background(), run.Kernel, run.Params, run.Trials, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	got, err := co.RunChunkRange(context.Background(), run, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d partials, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("chunk %d partial differs: %+v vs %+v", 1+i, got[i], want[i])
		}
	}
	for _, r := range [][2]int{{-1, 2}, {0, 99}, {3, 3}, {4, 2}} {
		if _, err := co.RunChunkRange(context.Background(), run, r[0], r[1]); err == nil {
			t.Errorf("range %v accepted", r)
		}
	}
}
