// Command cellfreesmoke is the end-to-end check of the cell-free
// massive MIMO scenario path: it runs the ext-cellfree experiment
// (quick preset) serially, asserts the physics-level invariant that
// centralized MMSE combining beats MR combining at every reported SE
// quantile — exact, not statistical, because both columns of a row run
// from the same seed — then repeats the experiment through a loopback
// coordinator with three workers, one killed mid-run, and requires the
// merged report to be byte-identical to the serial golden snapshot.
// Run from the repo root:
//
//	go run ./internal/tools/cellfreesmoke
//	make cellfree-smoke
//
// Exit status 0 means the scenario kernels are deterministic under
// distribution and the combiner ordering holds; anything else is a
// modeling or scheduling bug.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/sim"
)

func main() {
	golden := flag.String("golden",
		filepath.Join("internal", "experiments", "testdata", "golden", "ext-cellfree_quick_seed1.txt"),
		"serial golden report to compare against")
	flag.Parse()

	want, err := os.ReadFile(*golden)
	if err != nil {
		fatal(fmt.Errorf("reading golden (run from the repo root): %w", err))
	}

	// Serial run: check the combiner ordering row by row. Columns are
	// [L N K quantile, MR SE, MR ci95, MMSE SE, MMSE ci95].
	start := time.Now()
	rep, err := experiments.Run("ext-cellfree", experiments.Options{Seed: 1, Quick: true})
	if err != nil {
		fatal(fmt.Errorf("serial ext-cellfree: %w", err))
	}
	if rep.String() != string(want) {
		fatal(fmt.Errorf("serial report differs from golden — regenerate with go run ./internal/tools/goldengen if the change is intentional"))
	}
	for _, row := range rep.Rows {
		mr, err1 := strconv.ParseFloat(row[4], 64)
		mmse, err2 := strconv.ParseFloat(row[6], 64)
		if err1 != nil || err2 != nil {
			fatal(fmt.Errorf("unparseable SE cells in row %v", row))
		}
		if !(mr > 0) || mmse < mr {
			fatal(fmt.Errorf("combiner ordering violated at quantile %s: MMSE %v < MR %v", row[3], mmse, mr))
		}
		fmt.Printf("cellfreesmoke: q=%-5s MR %.4f <= MMSE %.4f bit/s/Hz\n", row[3], mr, mmse)
	}

	// Distributed run: 3 loopback workers, one killed mid-run.
	lb := cluster.NewLoopback("w1", "w2", "w3")
	lb.Node("w1").SetDelay(time.Millisecond) // widen the mid-run kill window
	reg := cluster.NewRegistry(lb, "w1", "w2", "w3")
	co := cluster.NewCoordinator(lb, reg, cluster.Config{
		Shards:    3,
		RetryBase: time.Millisecond,
		RetryMax:  10 * time.Millisecond,
	})

	killed := make(chan struct{})
	go func() {
		defer close(killed)
		time.Sleep(3 * time.Millisecond)
		lb.Node("w1").Kill()
		fmt.Println("cellfreesmoke: killed worker w1 mid-run")
	}()

	ctx := sim.WithExecutor(context.Background(), co)
	drep, err := experiments.RunCtx(ctx, "ext-cellfree", experiments.Options{Seed: 1, Quick: true, Workers: 2})
	if err != nil {
		fatal(fmt.Errorf("distributed ext-cellfree: %w", err))
	}
	<-killed

	if got := drep.String(); got != string(want) {
		fmt.Fprintf(os.Stderr, "cellfreesmoke: FAIL — distributed report differs from serial golden\n--- got ---\n%s--- want ---\n%s", got, want)
		os.Exit(1)
	}
	surviving := 0
	for _, w := range []string{"w2", "w3"} {
		if lb.Node(w).Shards() > 0 {
			surviving++
		}
	}
	if surviving == 0 {
		fatal(fmt.Errorf("no surviving worker computed a shard — the fan-out never happened"))
	}
	fmt.Printf("cellfreesmoke: ok — MMSE >= MR at every quantile, distributed report matches golden (w1=%d w2=%d w3=%d shards, %v)\n",
		lb.Node("w1").Shards(), lb.Node("w2").Shards(), lb.Node("w3").Shards(), time.Since(start).Round(time.Millisecond))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cellfreesmoke:", err)
	os.Exit(1)
}
